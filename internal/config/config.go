// Package config defines the experimental system configuration of the ReACH
// compute hierarchy — the Go encoding of the paper's Table II ("Experimental
// setup of the compute hierarchy system") plus the tunables the evaluation
// sweeps over (number of near-memory and near-storage accelerator
// instances).
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// Byte-size units.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// Bandwidth units in bytes/second.
const (
	MBps = 1e6
	GBps = 1e9
)

// CPUConfig models the host processor (Table II: one x86-64 OoO core at
// 2 GHz, 8-wide issue, 32 KB L1, 2 MB shared L2). The CPU is nearly idle in
// the evaluated workload (it only submits jobs to the GAM), so only the
// parameters that affect job submission latency and the cache hierarchy
// matter.
type CPUConfig struct {
	FreqMHz     float64 `json:"freq_mhz"`
	IssueWidth  int     `json:"issue_width"`
	L1Bytes     int64   `json:"l1_bytes"`
	SharedL2    int64   `json:"shared_l2_bytes"`
	L2Assoc     int     `json:"l2_assoc"`
	L2LineBytes int     `json:"l2_line_bytes"`
}

// MemoryConfig models the main-memory system (Table II: 2 memory
// controllers with 64/64-entry read/write queues, FR-FCFS scheduling;
// 8 DDR4 DIMMs, of which 4 serve near-memory accelerators and 4 serve the
// CPU and the on-chip accelerator).
type MemoryConfig struct {
	Controllers     int     `json:"controllers"`
	ReadQueueDepth  int     `json:"read_queue_depth"`
	WriteQueueDepth int     `json:"write_queue_depth"`
	HostDIMMs       int     `json:"host_dimms"`     // reserved for CPU + on-chip acc
	NearMemDIMMs    int     `json:"near_mem_dimms"` // paired with AIM modules
	DIMMBytes       int64   `json:"dimm_bytes"`
	ChannelGBps     float64 `json:"channel_gbps"`      // DDR4-2400 peak per channel
	StreamEfficieny float64 `json:"stream_efficiency"` // sequential-access FR-FCFS efficiency
	RandomEfficieny float64 `json:"random_efficiency"` // random-access efficiency
	// NearMemGBps is the bandwidth each AIM module sees from its attached
	// DIMM (Table II: 18 GB/s to DDR4).
	NearMemGBps float64 `json:"near_mem_gbps"`
	// AIMBusGBps is the inter-DIMM accelerator bus bandwidth.
	AIMBusGBps float64 `json:"aimbus_gbps"`
}

// StorageConfig models the storage system (Table II: 4 NVMe SSDs attached
// via PCIe Gen3 x16; near-storage accelerators see 12 GB/s effective to
// their SSD).
type StorageConfig struct {
	SSDs int `json:"ssds"`
	// HostPCIeGBps is the effective host-side IO bandwidth shared by all
	// SSDs (16 GB/s raw Gen3 x16, ~12 GB/s after IO-stack inefficiency [6]).
	HostPCIeGBps    float64 `json:"host_pcie_gbps"`
	HostPCIeRawGBps float64 `json:"host_pcie_raw_gbps"`
	// DeviceGBps is the effective bandwidth a near-storage accelerator sees
	// from its attached SSD over the local PCIe link (Table II: 12 GB/s).
	DeviceGBps float64 `json:"device_gbps"`
	// FlashChannels is the number of internal NVM channels per SSD.
	FlashChannels int `json:"flash_channels"`
	// PageBytes is the flash read granularity.
	PageBytes int64 `json:"page_bytes"`
	// ReadLatencyUS is the device-internal page read latency (microseconds).
	ReadLatencyUS float64 `json:"read_latency_us"`
	// RandomIOPS caps 4K-page random read operations per second per SSD.
	RandomIOPS float64 `json:"random_iops"`
	// GatherGrainBytes is the stripe size of candidate-gather reads.
	GatherGrainBytes int64 `json:"gather_grain_bytes"`
	// HostGatherEff derates the effective host IO bandwidth for scattered
	// gather reads (per-stripe NVMe commands through the IO stack).
	HostGatherEff float64 `json:"host_gather_eff"`
	// NSBufferBytes is the near-storage accelerator's private DRAM buffer
	// (Table II: 1 GB), used to cache accelerator parameters.
	NSBufferBytes int64 `json:"ns_buffer_bytes"`
}

// OnChipConfig models the on-chip accelerator's integration (Table II:
// Virtex UltraScale+ with 100 GB/s to the shared cache, coherent
// interconnect, TLB + page-table walkers).
type OnChipConfig struct {
	NoCGBps float64 `json:"noc_gbps"`
	// CachePollutionFactor derates effective streaming bandwidth when a
	// streaming working set far exceeds the LLC: the accelerator contends
	// with its own evictions on the shared cache (paper §IV-B).
	CachePollutionFactor float64 `json:"cache_pollution_factor"`
	// TLBMissLatencyNS and TLBMissRate model the address-translation cost
	// of the unified-address-space support [14].
	TLBMissLatencyNS float64 `json:"tlb_miss_latency_ns"`
	TLBMissRate      float64 `json:"tlb_miss_rate"`
}

// GAMConfig models the global accelerator manager's overheads (§II-D).
type GAMConfig struct {
	// CommandLatencyNS is the latency of one ACC command packet from GAM to
	// a device (and of a status request/response leg).
	CommandLatencyNS float64 `json:"command_latency_ns"`
	// DispatchCycles is GAM's internal processing per task dispatch at the
	// chip clock.
	DispatchCycles int `json:"dispatch_cycles"`
	// StatusSlackFraction: when a status poll finds a task unfinished, the
	// device reports a new wait estimate of (remaining × (1+slack)). Models
	// the estimated-wait-time refresh in the progress table.
	StatusSlackFraction float64 `json:"status_slack_fraction"`
	// EstimateErrorFraction models how much the initial synthesis-report
	// based runtime estimate undershoots reality (causing extra polls).
	EstimateErrorFraction float64 `json:"estimate_error_fraction"`
	// CrossJobPipelining enables dispatching tasks of job N+1 before all
	// tasks of job N finish when no dependency exists (§II-D). Disabling it
	// is an ablation.
	CrossJobPipelining bool `json:"cross_job_pipelining"`
	// StreamDepth is the default depth of inter-level stream buffers
	// (number of batches in flight).
	StreamDepth int `json:"stream_depth"`
}

// InstanceConfig selects how many accelerator modules exist at each level
// for a given experiment. The paper's default deployment is 1 on-chip,
// 4 near-memory (one per NM DIMM) and 4 near-storage (one per SSD); the
// per-stage sweeps (Figs. 9-11) scale NM/NS from 1 to 16.
type InstanceConfig struct {
	OnChip      int `json:"on_chip"`
	NearMemory  int `json:"near_memory"`
	NearStorage int `json:"near_storage"`
}

// SystemConfig is the complete hardware description consumed by the
// simulator.
type SystemConfig struct {
	CPU       CPUConfig      `json:"cpu"`
	Memory    MemoryConfig   `json:"memory"`
	Storage   StorageConfig  `json:"storage"`
	OnChip    OnChipConfig   `json:"on_chip"`
	GAM       GAMConfig      `json:"gam"`
	Instances InstanceConfig `json:"instances"`
}

// Default returns the paper's Table II configuration.
func Default() SystemConfig {
	return SystemConfig{
		CPU: CPUConfig{
			FreqMHz:     2000,
			IssueWidth:  8,
			L1Bytes:     32 * KiB,
			SharedL2:    2 * MiB,
			L2Assoc:     16,
			L2LineBytes: 64,
		},
		Memory: MemoryConfig{
			Controllers:     2,
			ReadQueueDepth:  64,
			WriteQueueDepth: 64,
			HostDIMMs:       4,
			NearMemDIMMs:    4,
			DIMMBytes:       16 * GiB,
			ChannelGBps:     19.2, // DDR4-2400
			StreamEfficieny: 0.82,
			RandomEfficieny: 0.35,
			NearMemGBps:     18.0,
			AIMBusGBps:      12.8,
		},
		Storage: StorageConfig{
			SSDs:             4,
			HostPCIeGBps:     12.0,
			HostPCIeRawGBps:  16.0,
			DeviceGBps:       12.0,
			FlashChannels:    16,
			PageBytes:        4 * KiB,
			ReadLatencyUS:    80,
			RandomIOPS:       800_000,
			GatherGrainBytes: 64 * KiB,
			HostGatherEff:    0.75,
			NSBufferBytes:    1 * GiB,
		},
		OnChip: OnChipConfig{
			NoCGBps:              100.0,
			CachePollutionFactor: 0.70,
			TLBMissLatencyNS:     120,
			TLBMissRate:          0.001,
		},
		GAM: GAMConfig{
			CommandLatencyNS:      500,
			DispatchCycles:        24,
			StatusSlackFraction:   0.10,
			EstimateErrorFraction: 0.05,
			CrossJobPipelining:    true,
			StreamDepth:           2,
		},
		Instances: InstanceConfig{
			OnChip:      1,
			NearMemory:  4,
			NearStorage: 4,
		},
	}
}

// Validate checks internal consistency and reports the first problem found.
func (c *SystemConfig) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{c.CPU.FreqMHz > 0, "cpu.freq_mhz must be positive"},
		{c.CPU.SharedL2 > 0, "cpu.shared_l2_bytes must be positive"},
		{c.CPU.L2LineBytes > 0 && c.CPU.L2LineBytes&(c.CPU.L2LineBytes-1) == 0,
			"cpu.l2_line_bytes must be a positive power of two"},
		{c.CPU.L2Assoc > 0, "cpu.l2_assoc must be positive"},
		{c.Memory.Controllers > 0, "memory.controllers must be positive"},
		{c.Memory.HostDIMMs > 0, "memory.host_dimms must be positive"},
		{c.Memory.NearMemDIMMs >= 0, "memory.near_mem_dimms must be non-negative"},
		{c.Memory.ChannelGBps > 0, "memory.channel_gbps must be positive"},
		{c.Memory.StreamEfficieny > 0 && c.Memory.StreamEfficieny <= 1,
			"memory.stream_efficiency must be in (0,1]"},
		{c.Memory.RandomEfficieny > 0 && c.Memory.RandomEfficieny <= 1,
			"memory.random_efficiency must be in (0,1]"},
		{c.Memory.NearMemGBps > 0, "memory.near_mem_gbps must be positive"},
		{c.Memory.AIMBusGBps > 0, "memory.aimbus_gbps must be positive"},
		{c.Storage.SSDs > 0, "storage.ssds must be positive"},
		{c.Storage.HostPCIeGBps > 0, "storage.host_pcie_gbps must be positive"},
		{c.Storage.HostPCIeGBps <= c.Storage.HostPCIeRawGBps,
			"storage.host_pcie_gbps cannot exceed raw link bandwidth"},
		{c.Storage.DeviceGBps > 0, "storage.device_gbps must be positive"},
		{c.Storage.PageBytes > 0, "storage.page_bytes must be positive"},
		{c.Storage.RandomIOPS > 0, "storage.random_iops must be positive"},
		{c.Storage.GatherGrainBytes > 0, "storage.gather_grain_bytes must be positive"},
		{c.Storage.HostGatherEff > 0 && c.Storage.HostGatherEff <= 1,
			"storage.host_gather_eff must be in (0,1]"},
		{c.OnChip.NoCGBps > 0, "on_chip.noc_gbps must be positive"},
		{c.OnChip.CachePollutionFactor > 0 && c.OnChip.CachePollutionFactor <= 1,
			"on_chip.cache_pollution_factor must be in (0,1]"},
		{c.GAM.StreamDepth >= 1, "gam.stream_depth must be >= 1"},
		{c.GAM.CommandLatencyNS >= 0, "gam.command_latency_ns must be non-negative"},
		{c.Instances.OnChip >= 0, "instances.on_chip must be non-negative"},
		{c.Instances.NearMemory >= 0, "instances.near_memory must be non-negative"},
		{c.Instances.NearStorage >= 0, "instances.near_storage must be non-negative"},
		{c.Instances.OnChip+c.Instances.NearMemory+c.Instances.NearStorage > 0,
			"at least one accelerator instance is required"},
	}
	for _, chk := range checks {
		if !chk.ok {
			return fmt.Errorf("config: %s", chk.msg)
		}
	}
	return nil
}

// WithInstances returns a copy of c with the instance counts replaced —
// the knob the per-stage sweeps turn.
func (c SystemConfig) WithInstances(onChip, nearMem, nearStore int) SystemConfig {
	c.Instances = InstanceConfig{OnChip: onChip, NearMemory: nearMem, NearStorage: nearStore}
	// Sweeps beyond the default DIMM/SSD population grow the population to
	// match: Figs. 9-11 pair every instance with its own DIMM or SSD.
	if nearMem > c.Memory.NearMemDIMMs {
		c.Memory.NearMemDIMMs = nearMem
	}
	if nearStore > c.Storage.SSDs {
		c.Storage.SSDs = nearStore
	}
	return c
}

// Load reads a SystemConfig from a JSON file.
func Load(path string) (SystemConfig, error) {
	var c SystemConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("config: %s: %w", path, err)
	}
	return c, nil
}

// Save writes the configuration as indented JSON.
func (c SystemConfig) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
