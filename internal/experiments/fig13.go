package experiments

import (
	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig13Option is one of the four acceleration options compared in Fig. 13.
type Fig13Option struct {
	Name    string
	Mapping Mapping
	// Instances is the near-data population (the §VI-C setup: 4 NM DIMMs
	// and 4 SSDs paired with FPGAs).
	Instances int
}

// Fig13Options returns the paper's four configurations.
func Fig13Options() []Fig13Option {
	return []Fig13Option{
		{Name: "onchip", Mapping: SingleLevel(accel.OnChip), Instances: 1},
		{Name: "near mem", Mapping: SingleLevel(accel.NearMemory), Instances: 4},
		{Name: "near store", Mapping: SingleLevel(accel.NearStorage), Instances: 4},
		{Name: "ReACH", Mapping: ReACHMapping(), Instances: 4},
	}
}

// Fig13Cell holds one option's measurements.
type Fig13Cell struct {
	Option     Fig13Option
	Throughput float64 // batches per second, steady state
	Latency    sim.Time
	// EnergyPerBatch is the per-component breakdown (Fig. 13c).
	EnergyPerBatch map[energy.Component]float64
	TotalEnergyJ   float64
}

// Fig13Result holds the figure's three panels.
type Fig13Result struct {
	Cells []*Fig13Cell
}

// Fig13Batches is the number of pipelined batches used to measure steady
// state.
const Fig13Batches = 8

// fig13Specs is the run matrix: one pipeline run per acceleration option.
func fig13Specs(m workload.Model) []RunSpec {
	opts := Fig13Options()
	specs := make([]RunSpec, len(opts))
	for i, opt := range opts {
		specs[i] = PipelineSpec("fig13 "+opt.Name, m, opt.Mapping, opt.Instances, Fig13Batches)
	}
	return specs
}

// fig13Reduce assembles the figure's three panels from the option runs.
func fig13Reduce(runs []*RunResult) *Fig13Result {
	res := &Fig13Result{}
	for i, opt := range Fig13Options() {
		run := runs[i]
		cell := &Fig13Cell{
			Option:         opt,
			Throughput:     run.ThroughputBatchesPerSec(),
			Latency:        run.Latency,
			EnergyPerBatch: make(map[energy.Component]float64),
		}
		for _, c := range energy.Components() {
			v := run.EnergyPerBatch(c)
			cell.EnergyPerBatch[c] = v
			cell.TotalEnergyJ += v
		}
		res.Cells = append(res.Cells, cell)
	}
	return res
}

// Fig13 compares on-chip, near-memory, near-storage and the ReACH mapping
// on throughput (a), query latency (b) and energy per component (c),
// running the four configurations in parallel.
func Fig13(m workload.Model, opts ...Option) (*Fig13Result, error) {
	runs, err := RunSpecs(fig13Specs(m), opts...)
	if err != nil {
		return nil, err
	}
	return fig13Reduce(runs), nil
}

// baseline returns the on-chip cell.
func (r *Fig13Result) baseline() *Fig13Cell { return r.Cells[0] }

// ThroughputGain reports option i's throughput over on-chip (Fig. 13a).
func (r *Fig13Result) ThroughputGain(i int) float64 {
	return r.Cells[i].Throughput / r.baseline().Throughput
}

// LatencyGain reports on-chip latency over option i's (Fig. 13b —
// improvement factor).
func (r *Fig13Result) LatencyGain(i int) float64 {
	return float64(r.baseline().Latency) / float64(r.Cells[i].Latency)
}

// EnergyReduction reports 1 − energy(option)/energy(on-chip).
func (r *Fig13Result) EnergyReduction(i int) float64 {
	return 1 - r.Cells[i].TotalEnergyJ/r.baseline().TotalEnergyJ
}

// ReACH returns the ReACH cell index.
func (r *Fig13Result) ReACH() int { return len(r.Cells) - 1 }

// Table renders the three panels.
func (r *Fig13Result) Table() *report.Table {
	t := &report.Table{
		Title: "Fig 13 — CBIR on ReACH vs single-level acceleration",
		Columns: []string{"Option", "Throughput x", "Latency x", "Energy J/batch",
			"ACC", "Cache", "DRAM", "SSD", "MC+IC", "PCIe"},
	}
	for i, c := range r.Cells {
		row := []string{
			c.Option.Name,
			report.F(r.ThroughputGain(i), 2),
			report.F(r.LatencyGain(i), 2),
			report.F(c.TotalEnergyJ, 1),
		}
		for _, comp := range energy.Components() {
			row = append(row, report.F(c.EnergyPerBatch[comp], 2))
		}
		t.AddRow(row...)
	}
	i := r.ReACH()
	t.AddNote("ReACH: %.2fx throughput (paper: 4.5x), %.2fx latency (paper: 2.2x), %s energy reduction (paper: 52%%)",
		r.ThroughputGain(i), r.LatencyGain(i), report.Pct(r.EnergyReduction(i)))
	return t
}
