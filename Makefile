# Development workflow for the ReACH reproduction.
#
#   make check       — everything CI runs: formatting, build, vet, race tests
#   make test        — fast tier-1 gate (what ROADMAP.md calls the verify step)
#   make bench       — root + sim benchmarks with allocation stats
#   make bench-smoke — 1x pass over every benchmark, so benchmark code
#                      compiles and runs in CI without paying full benchtime
#   make metrics-smoke — end-to-end observability check: run reachsim with
#                      -metrics/-spans/-trace and validate the CSV schema,
#                      the Chrome-trace JSON and the bottleneck report
#   make qtrace-smoke — per-query tracing check: a Poisson tail-latency
#                      sweep with the live inspector on an ephemeral port,
#                      curl its progress/expvar endpoints mid-run, then
#                      validate the per-query CSV dumps
#   make cluster-smoke — cluster scatter-gather check: a pinned 4-node
#                      run with the inspector on an ephemeral port, its
#                      summary table diffed against the committed golden
#                      and the inspector snapshots validated
#   make cluster-par-smoke — parallel-determinism check: the same cluster
#                      run at -pj 1, 4 and 8 worker goroutines must emit
#                      byte-identical reports, plus the race detector over
#                      the multi-domain engine and cluster tests
#   make cache-smoke — front-end result-cache check: the pinned cluster
#                      run with -cache 32 at -pj 1, 4 and 8 must emit
#                      byte-identical reports (cache rows included), the
#                      cache-off run must still match the committed
#                      golden, and the race detector sweeps the cluster
#                      package with its cache tests
#   make cluster-obs-smoke — cluster observability check: the pinned run
#                      with -metrics, -spans, -trace and -slo on at -pj 1
#                      and -pj 8 must emit byte-identical reports and
#                      artifacts, the trace JSON must parse, the straggler
#                      and SLO tables must appear, and the obs-off report
#                      must still match the committed golden
#   make flight-smoke — flight-recorder check: the flash-crowd run with
#                      -flight -detect must cut exactly one diagnostic
#                      bundle (slo-burn verdict, queue-dominated window),
#                      the whole bundle directory must be byte-identical
#                      at -pj 1 and -pj 8, and the flight-off report must
#                      still match the committed golden

GO ?= go
SMOKE_DIR := metrics-smoke-out
QSMOKE_DIR := qtrace-smoke-out
CSMOKE_DIR := cluster-smoke-out
PSMOKE_DIR := cluster-par-smoke-out
CACHESMOKE_DIR := cache-smoke-out
OBSSMOKE_DIR := cluster-obs-smoke-out
FLIGHTSMOKE_DIR := flight-smoke-out

.PHONY: check fmt-check build vet test race bench bench-smoke metrics-smoke qtrace-smoke cluster-smoke cluster-par-smoke cache-smoke cluster-obs-smoke flight-smoke

check: fmt-check build vet race

# gofmt -l prints offending files; any output fails the target.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' . ./internal/sim/

bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./internal/sim/
	$(GO) test -bench BenchmarkFullEvaluation -benchtime 1x -run '^$$' .

# End-to-end observability smoke: a sampled experiment sweep (CSV dump +
# bottleneck tables) and an instrumented trace (counter lanes + GAM spans),
# then schema/JSON validation via the env-gated test in cmd/reachsim.
metrics-smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/reachsim -exp fig9 -metrics $(SMOKE_DIR)/metrics.csv \
		-metrics-interval 200us -spans > $(SMOKE_DIR)/report.txt
	$(GO) run ./cmd/reachsim -trace $(SMOKE_DIR)/trace.json -spans \
		-metrics-interval 500us
	METRICS_SMOKE_DIR=$$PWD/$(SMOKE_DIR) $(GO) test -run TestMetricsSmokeArtifacts -v ./cmd/reachsim/

# Per-query tracing smoke: the Poisson tail-latency sweep with -qtrace and
# the inspector on an ephemeral port. The recipe scrapes the bound address
# from stderr, snapshots /progress and /debug/vars while the sweep runs,
# waits for a clean exit, then validates every artifact via the env-gated
# test in cmd/reachsim.
qtrace-smoke:
	rm -rf $(QSMOKE_DIR) && mkdir -p $(QSMOKE_DIR)
	$(GO) build -o $(QSMOKE_DIR)/reachsim ./cmd/reachsim
	@set -e; \
	$(QSMOKE_DIR)/reachsim -exp taillatency -http 127.0.0.1:0 -http-linger 120s \
		-qtrace $(QSMOKE_DIR)/queries.csv \
		> $(QSMOKE_DIR)/report.txt 2> $(QSMOKE_DIR)/stderr.log & \
	pid=$$!; \
	for i in $$(seq 1 600); do \
		grep -q '^per-query traces' $(QSMOKE_DIR)/stderr.log && break; sleep 0.1; \
	done; \
	if ! grep -q '^per-query traces' $(QSMOKE_DIR)/stderr.log; then \
		echo "sweep never finished"; kill $$pid 2>/dev/null; exit 1; fi; \
	addr=$$(sed -n 's#^inspector listening on http://##p' $(QSMOKE_DIR)/stderr.log); \
	curl -sf "http://$$addr/progress" > $(QSMOKE_DIR)/progress.json || { kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf "http://$$addr/debug/vars" > $(QSMOKE_DIR)/expvar.json || { kill $$pid 2>/dev/null; exit 1; }; \
	kill $$pid; wait $$pid 2>/dev/null || true
	QTRACE_SMOKE_DIR=$$PWD/$(QSMOKE_DIR) $(GO) test -run TestQTraceSmokeArtifacts -v ./cmd/reachsim/

# Cluster scatter-gather smoke: the pinned 4-node -cluster run with the
# live inspector on an ephemeral port. The recipe waits for the run to
# drain, scrapes /progress and /debug/vars, diffs the summary table
# against the committed golden, then validates every artifact via the
# env-gated test in cmd/reachsim.
cluster-smoke:
	rm -rf $(CSMOKE_DIR) && mkdir -p $(CSMOKE_DIR)
	$(GO) build -o $(CSMOKE_DIR)/reachsim ./cmd/reachsim
	@set -e; \
	$(CSMOKE_DIR)/reachsim -cluster -http 127.0.0.1:0 -http-linger 120s \
		> $(CSMOKE_DIR)/report.txt 2> $(CSMOKE_DIR)/stderr.log & \
	pid=$$!; \
	for i in $$(seq 1 600); do \
		grep -q '^cluster run complete' $(CSMOKE_DIR)/stderr.log && break; sleep 0.1; \
	done; \
	if ! grep -q '^cluster run complete' $(CSMOKE_DIR)/stderr.log; then \
		echo "cluster run never finished"; kill $$pid 2>/dev/null; exit 1; fi; \
	addr=$$(sed -n 's#^inspector listening on http://##p' $(CSMOKE_DIR)/stderr.log); \
	curl -sf "http://$$addr/progress" > $(CSMOKE_DIR)/progress.json || { kill $$pid 2>/dev/null; exit 1; }; \
	curl -sf "http://$$addr/debug/vars" > $(CSMOKE_DIR)/expvar.json || { kill $$pid 2>/dev/null; exit 1; }; \
	kill $$pid; wait $$pid 2>/dev/null || true
	diff cmd/reachsim/testdata/cluster_smoke.golden $(CSMOKE_DIR)/report.txt
	CLUSTER_SMOKE_DIR=$$PWD/$(CSMOKE_DIR) $(GO) test -run TestClusterSmokeArtifacts -v ./cmd/reachsim/

# Parallel-determinism smoke: domain parallelism must never change the
# model. One binary, the same pinned cluster run at 1, 4 and 8 worker
# goroutines; any byte of divergence fails the diff. The race detector
# then sweeps the packages that own the barrier protocol.
cluster-par-smoke:
	rm -rf $(PSMOKE_DIR) && mkdir -p $(PSMOKE_DIR)
	$(GO) build -o $(PSMOKE_DIR)/reachsim ./cmd/reachsim
	$(PSMOKE_DIR)/reachsim -cluster -pj 1 > $(PSMOKE_DIR)/pj1.txt
	$(PSMOKE_DIR)/reachsim -cluster -pj 4 > $(PSMOKE_DIR)/pj4.txt
	$(PSMOKE_DIR)/reachsim -cluster -pj 8 > $(PSMOKE_DIR)/pj8.txt
	diff $(PSMOKE_DIR)/pj1.txt $(PSMOKE_DIR)/pj4.txt
	diff $(PSMOKE_DIR)/pj1.txt $(PSMOKE_DIR)/pj8.txt
	diff cmd/reachsim/testdata/cluster_smoke.golden $(PSMOKE_DIR)/pj1.txt
	$(GO) test -race ./internal/sim/ ./internal/cluster/

# Front-end cache smoke: cache-on determinism (the -cache 32 run is
# byte-identical at any -pj, cache accounting rows included), the
# cache-off golden untouched by the cache's existence, and the race
# detector over the cluster package — the live inspector reads the cache
# counters from another goroutine, so the atomics earn their keep here.
cache-smoke:
	rm -rf $(CACHESMOKE_DIR) && mkdir -p $(CACHESMOKE_DIR)
	$(GO) build -o $(CACHESMOKE_DIR)/reachsim ./cmd/reachsim
	$(CACHESMOKE_DIR)/reachsim -cluster -cache 32 -pj 1 > $(CACHESMOKE_DIR)/cache-pj1.txt
	$(CACHESMOKE_DIR)/reachsim -cluster -cache 32 -pj 4 > $(CACHESMOKE_DIR)/cache-pj4.txt
	$(CACHESMOKE_DIR)/reachsim -cluster -cache 32 -pj 8 > $(CACHESMOKE_DIR)/cache-pj8.txt
	diff $(CACHESMOKE_DIR)/cache-pj1.txt $(CACHESMOKE_DIR)/cache-pj4.txt
	diff $(CACHESMOKE_DIR)/cache-pj1.txt $(CACHESMOKE_DIR)/cache-pj8.txt
	grep -q 'cache hit rate %' $(CACHESMOKE_DIR)/cache-pj1.txt
	$(CACHESMOKE_DIR)/reachsim -cluster > $(CACHESMOKE_DIR)/cache-off.txt
	diff cmd/reachsim/testdata/cluster_smoke.golden $(CACHESMOKE_DIR)/cache-off.txt
	$(CACHESMOKE_DIR)/reachsim -exp cachesweep > $(CACHESMOKE_DIR)/cachesweep.txt
	grep -q 'cache-off p99' $(CACHESMOKE_DIR)/cachesweep.txt
	$(GO) test -race -run 'Cache' ./internal/cluster/ ./internal/experiments/ ./internal/inspect/

# Cluster observability smoke: the pinned -cluster run with every sink on.
# Domain parallelism must not move a byte of any artifact — the report
# (summary + straggler attribution + SLO windows), the sampled time
# series, or the Chrome trace. The trace must parse as JSON, the report
# must carry the straggler and SLO headlines, and turning observability
# off must reproduce the committed golden exactly.
cluster-obs-smoke:
	rm -rf $(OBSSMOKE_DIR) && mkdir -p $(OBSSMOKE_DIR)
	$(GO) build -o $(OBSSMOKE_DIR)/reachsim ./cmd/reachsim
	$(OBSSMOKE_DIR)/reachsim -cluster -pj 1 -metrics $(OBSSMOKE_DIR)/metrics-pj1.csv \
		-spans -trace $(OBSSMOKE_DIR)/trace-pj1.json -slo 250 > $(OBSSMOKE_DIR)/report-pj1.txt
	$(OBSSMOKE_DIR)/reachsim -cluster -pj 8 -metrics $(OBSSMOKE_DIR)/metrics-pj8.csv \
		-spans -trace $(OBSSMOKE_DIR)/trace-pj8.json -slo 250 > $(OBSSMOKE_DIR)/report-pj8.txt
	diff $(OBSSMOKE_DIR)/report-pj1.txt $(OBSSMOKE_DIR)/report-pj8.txt
	diff $(OBSSMOKE_DIR)/metrics-pj1.csv $(OBSSMOKE_DIR)/metrics-pj8.csv
	diff $(OBSSMOKE_DIR)/trace-pj1.json $(OBSSMOKE_DIR)/trace-pj8.json
	grep -q 'Straggler attribution' $(OBSSMOKE_DIR)/report-pj1.txt
	grep -q 'SLO windows' $(OBSSMOKE_DIR)/report-pj1.txt
	$(OBSSMOKE_DIR)/reachsim -cluster > $(OBSSMOKE_DIR)/report-off.txt
	diff cmd/reachsim/testdata/cluster_smoke.golden $(OBSSMOKE_DIR)/report-off.txt
	CLUSTER_OBS_SMOKE_DIR=$$PWD/$(OBSSMOKE_DIR) $(GO) test \
		-run 'TestClusterObsSmokeArtifacts|TestClusterObsArtifactsParallelInvariant|TestValidateFlagMatrix' -v ./cmd/reachsim/

# Flight-recorder smoke: the flash-crowd scenario must trigger the SLO
# burn-rate detector exactly once and cut one self-contained bundle whose
# five files are byte-identical at -pj 1 and -pj 8; the verdict must be
# queue-dominated; a flight-off run must still match the committed
# golden. The in-process acceptance tests then re-validate the bundle
# schema at -pj 1/4/8.
flight-smoke:
	rm -rf $(FLIGHTSMOKE_DIR) && mkdir -p $(FLIGHTSMOKE_DIR)
	$(GO) build -o $(FLIGHTSMOKE_DIR)/reachsim ./cmd/reachsim
	$(FLIGHTSMOKE_DIR)/reachsim -cluster -pj 1 -slo 400 -arrival flash \
		-flight $(FLIGHTSMOKE_DIR)/pj1 -detect > $(FLIGHTSMOKE_DIR)/report-pj1.txt
	$(FLIGHTSMOKE_DIR)/reachsim -cluster -pj 8 -slo 400 -arrival flash \
		-flight $(FLIGHTSMOKE_DIR)/pj8 -detect > $(FLIGHTSMOKE_DIR)/report-pj8.txt
	diff $(FLIGHTSMOKE_DIR)/report-pj1.txt $(FLIGHTSMOKE_DIR)/report-pj8.txt
	test "$$(ls $(FLIGHTSMOKE_DIR)/pj1 | wc -l)" -eq 1
	diff -r $(FLIGHTSMOKE_DIR)/pj1 $(FLIGHTSMOKE_DIR)/pj8
	grep -q '"detector": "slo-burn"' $(FLIGHTSMOKE_DIR)/pj1/bundle-*/verdict.json
	grep -q '"dominant_cause": "queue"' $(FLIGHTSMOKE_DIR)/pj1/bundle-*/verdict.json
	grep -q 'overall dominant cause queue' $(FLIGHTSMOKE_DIR)/pj1/bundle-*/stragglers.txt
	$(FLIGHTSMOKE_DIR)/reachsim -cluster > $(FLIGHTSMOKE_DIR)/report-off.txt
	diff cmd/reachsim/testdata/cluster_smoke.golden $(FLIGHTSMOKE_DIR)/report-off.txt
	$(GO) test -run TestClusterFlight -v ./cmd/reachsim/
