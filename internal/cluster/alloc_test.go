package cluster

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/sim"
)

// TestClusterQueryAllocBudget pins the per-query allocation budget of the
// scatter-gather hot path, in the spirit of the sim/mem zero-alloc gates.
// A cluster query cannot be allocation-free — every query builds 1+Shards
// core.Jobs with their task graphs — but everything around the jobs is
// pooled or precomputed: query objects and their per-shard timing slices
// recycle through the cluster's free list, interval labels are built once
// at construction, and routing uses precomputed candidate slices. The
// budget fails loudly if per-query garbage creeps back in (the 18-cell
// sweep benchmark ran ~900 allocations/query before pooling and the
// cached accelerator views, ~160 after).
func TestClusterQueryAllocBudget(t *testing.T) {
	cl, err := New(config.DefaultCluster(), testModel(), qtrace.Options{DropTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	submitBatch := func(n int) {
		base := cl.Multi().Now()
		for i := 0; i < n; i++ {
			cl.SubmitAt(base + sim.Time(i+1)*sim.Millisecond)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
	}
	submitBatch(16) // warm query pool, calendars, link histograms, GAM state

	const queries = 8
	perQuery := testing.AllocsPerRun(5, func() { submitBatch(queries) }) / queries
	// Measured ~140/query on go1.22 (job graphs + GAM bookkeeping dominate).
	// The bound leaves headroom for toolchain drift while still catching any
	// real regression (an unpooled slice or a fmt call per query costs
	// hundreds at cluster fan-out).
	const budget = 500.0
	t.Logf("cluster query allocates %.1f objects (budget %.0f)", perQuery, budget)
	if perQuery > budget {
		t.Errorf("cluster query allocates %.1f objects, budget %.0f", perQuery, budget)
	}
}

// TestClusterCachedQueryAllocBudget holds the cache-on path to the same
// budget: the LRU is a fixed slot array, singleflight entries and waiter
// slices recycle, and a hit never builds a query object — so enabling the
// cache must not add per-query garbage (hits and coalesced queries skip
// the job graphs entirely, so the mean typically drops).
func TestClusterCachedQueryAllocBudget(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.CacheEntries = 8
	cl, err := New(cfg, testModel(), qtrace.Options{DropTimelines: true})
	if err != nil {
		t.Fatal(err)
	}
	submitBatch := func(n int) {
		base := cl.Multi().Now()
		for i := 0; i < n; i++ {
			cl.SubmitAt(base + sim.Time(i+1)*sim.Millisecond)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
	}
	submitBatch(16) // warm query pool, cache, coalescer, GAM state

	const queries = 8
	perQuery := testing.AllocsPerRun(5, func() { submitBatch(queries) }) / queries
	const budget = 500.0
	t.Logf("cached cluster query allocates %.1f objects (budget %.0f)", perQuery, budget)
	if perQuery > budget {
		t.Errorf("cached cluster query allocates %.1f objects, budget %.0f", perQuery, budget)
	}
	if cl.CacheStats().Lookups == 0 {
		t.Error("alloc measurement never consulted the cache")
	}
}

// TestClusterParallelDomainsInvariant is the tentpole's acceptance bar at
// the cluster layer: identical configs differing only in ParallelDomains
// produce byte-identical node snapshots, identical latency sketches and
// identical router decisions. Domain parallelism must never be a
// modelling knob.
func TestClusterParallelDomainsInvariant(t *testing.T) {
	snap := func(pj int) (string, string) {
		cfg := config.DefaultCluster()
		cfg.ParallelDomains = pj
		c := buildAndRun(t, cfg, 12, sim.FromSeconds(5e-4))
		var b bytes.Buffer
		for _, n := range c.Nodes() {
			if err := n.WriteSnapshot(&b); err != nil {
				t.Fatal(err)
			}
		}
		sk := c.QLog().Sketch()
		lat := sk.Quantile(0.5).String() + "/" + sk.Quantile(0.99).String()
		return b.String(), lat
	}
	s1, l1 := snap(1)
	for _, pj := range []int{4, 8} {
		s, l := snap(pj)
		if s != s1 {
			t.Fatalf("ParallelDomains=%d produced different node snapshots than serial", pj)
		}
		if l != l1 {
			t.Fatalf("ParallelDomains=%d latencies %s diverged from serial %s", pj, l, l1)
		}
	}
}

// TestClusterRejectsZeroLatency: the wire latency is the conservative
// lookahead, so a zero-latency cluster network must be rejected at
// validation rather than deadlocking the barrier.
func TestClusterRejectsZeroLatency(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.NetLatencyUS = 0
	if _, err := New(cfg, testModel(), qtrace.Options{}); err == nil {
		t.Fatal("zero net latency accepted")
	}
	cfg = config.DefaultCluster()
	cfg.ParallelDomains = -1
	if _, err := New(cfg, testModel(), qtrace.Options{}); err == nil {
		t.Fatal("negative parallel_domains accepted")
	}
}

func BenchmarkClusterQuery(b *testing.B) {
	cl, err := New(config.DefaultCluster(), testModel(), qtrace.Options{DropTimelines: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.SubmitAt(cl.Multi().Now() + sim.Millisecond)
		if err := cl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
