package workload

import "fmt"

// TableIRow is one row of the paper's Table I: the memory and compute
// requirements of a CBIR pipeline stage.
type TableIRow struct {
	Stage       string
	MemoryBytes int64
	MemoryNote  string
	Compute     string
	ComputeNote string
}

// TableI derives the paper's Table I from the model. The reverse-lookup
// row reports the image-store estimate (200 TB–2 PB for a billion images);
// like the paper, the experiments exclude that stage.
func TableI(m Model) []TableIRow {
	return []TableIRow{
		{
			Stage:       "Feature extraction",
			MemoryBytes: m.CNN.ParamBytes(),
			MemoryNote: fmt.Sprintf("%.0f MB, %.1f MB if compressed — neural network model parameters",
				float64(m.CNN.ParamBytes())/1e6, float64(m.CNN.CompressedParamBytes())/1e6),
			Compute:     "High",
			ComputeNote: "Convolutional neural network",
		},
		{
			Stage:       "Short-list retrieval",
			MemoryBytes: m.CentroidStoreBytes(),
			MemoryNote: fmt.Sprintf("~%.1f GB — cluster centroids and cell info",
				float64(m.CentroidStoreBytes())/1e9),
			Compute:     "Medium",
			ComputeNote: "Non-square matrix multiplication",
		},
		{
			Stage:       "Rerank",
			MemoryBytes: m.FeatureStoreBytes(),
			MemoryNote: fmt.Sprintf("~%.0f GB — %d feature vectors",
				float64(m.FeatureStoreBytes())/1e9, m.DatasetSize),
			Compute:     "Low",
			ComputeNote: "K Nearest Neighbors",
		},
		{
			Stage:       "Reverse lookup",
			MemoryBytes: m.DatasetSize * 200_000, // ~200 KB/image lower bound
			MemoryNote:  "200 TB - 2 PB — raw image database (excluded from experiments)",
			Compute:     "Very low",
			ComputeNote: "Database access",
		},
	}
}
