// Quickstart: configure a minimal ReACH meta-accelerator and run one batch
// through the simulated hierarchy.
//
//	go run ./examples/quickstart
//
// The program registers one on-chip CNN and one near-storage KNN, wires
// them with a stream (the paper's Listing 2 in miniature), runs a batch
// (Listing 3), and prints the simulated latency and energy breakdown.
package main

import (
	"fmt"
	"log"

	"repro/reach"
)

func main() {
	// A system with one accelerator at each level (Table II hardware).
	sys, err := reach.NewSystem(reach.WithInstances(1, 1, 1))
	if err != nil {
		log.Fatal(err)
	}

	// --- Configuration (config.h) ----------------------------------------
	// Model parameters live on chip; a 96 GB feature shard on the SSD.
	if _, err := sys.CreateFixedBuffer("vgg16_param", reach.OnChip, 11_300_000); err != nil {
		log.Fatal(err)
	}
	db, err := sys.CreateFixedBuffer("feature_db0", reach.NearStor, 96_000_000_000)
	if err != nil {
		log.Fatal(err)
	}

	input, err := sys.CreateStream("Input", reach.CPU, reach.OnChip, reach.Pair, 16*224*224*3, 2)
	if err != nil {
		log.Fatal(err)
	}
	features, err := sys.CreateStream("Features", reach.OnChip, reach.NearStor, reach.BroadCast, 16*96*4, 2)
	if err != nil {
		log.Fatal(err)
	}
	result, err := sys.CreateStream("Result", reach.NearStor, reach.CPU, reach.Collect, 16*10*8, 2)
	if err != nil {
		log.Fatal(err)
	}

	cnn, err := sys.RegisterAcc("VGG16-VU9P", reach.OnChip)
	if err != nil {
		log.Fatal(err)
	}
	must(cnn.SetArg(0, input))
	must(cnn.SetArg(1, features))
	cnn.SetWork(reach.Work{
		Stage:       "FeatureExtraction",
		MACs:        16 * 15.47e9, // one VGG16 batch
		SPMResident: true,         // compressed params fit on-chip SRAM
		OutputBytes: 16 * 96 * 4,
	})

	knn, err := sys.RegisterAcc("KNN-ZCU9", reach.NearStor)
	if err != nil {
		log.Fatal(err)
	}
	must(knn.SetArg(0, features))
	must(knn.SetArg(1, db))
	must(knn.SetArg(2, result))
	knn.SetWork(reach.Work{
		Stage:       "Rerank",
		MACs:        590e6,
		StreamBytes: 2_460_000_000, // candidate scan per batch
		OutputBytes: 16 * 10 * 8,
	})

	// --- Deployment + host loop (host.cpp) --------------------------------
	if err := sys.Deploy(); err != nil {
		log.Fatal(err)
	}
	batch, err := sys.Begin()
	if err != nil {
		log.Fatal(err)
	}
	must(batch.Enqueue(input))
	must(batch.Execute(cnn))
	must(batch.Broadcast(features))
	must(batch.Execute(knn))
	must(batch.Collect(result))
	must(batch.Commit())
	sys.Run()

	fmt.Printf("batch completed in %v (simulated)\n", batch.Latency())
	fmt.Println("energy breakdown (J):")
	for comp, joules := range sys.Energy() {
		if joules > 0 {
			fmt.Printf("  %-20s %.3f\n", comp, joules)
		}
	}
	fmt.Printf("total: %.2f J\n", sys.TotalEnergy())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
