package kernels

import "fmt"

// im2col-based convolution: the lowering used by GeMM-centric accelerators
// (the paper's on-chip CNN kernel follows Caffeine [24], which maps
// convolution onto a unified GeMM engine). Functionally equivalent to the
// direct Conv2D; provided both as a second implementation for
// cross-checking and as the natural kernel shape for the FPGA GeMM
// datapath.

// Im2Col lowers a CHW tensor into the (inC·K·K) × (H·W) patch matrix of a
// same-padded, stride-1, K×K convolution.
func Im2Col(in *Tensor3, k int) *Matrix {
	if k <= 0 {
		panic("kernels: Im2Col kernel size must be positive")
	}
	pad := k / 2
	rows := in.C * k * k
	cols := in.H * in.W
	m := NewMatrix(rows, cols)
	for c := 0; c < in.C; c++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				r := (c*k+ky)*k + kx
				row := m.Row(r)
				for y := 0; y < in.H; y++ {
					sy := y + ky - pad
					for x := 0; x < in.W; x++ {
						sx := x + kx - pad
						if sy < 0 || sy >= in.H || sx < 0 || sx >= in.W {
							continue // zero padding
						}
						row[y*in.W+x] = in.At(c, sy, sx)
					}
				}
			}
		}
	}
	return m
}

// Conv2DGeMM computes the same result as Conv2D via im2col + GeMM.
func Conv2DGeMM(in *Tensor3, p *ConvParams) *Tensor3 {
	if in.C != p.InC {
		panic(fmt.Sprintf("kernels: Conv2DGeMM channel mismatch %d vs %d", in.C, p.InC))
	}
	patches := Im2Col(in, p.K) // (inC·K·K) × (H·W)
	// Weights as OutC × (inC·K·K).
	w := &Matrix{Rows: p.OutC, Cols: p.InC * p.K * p.K, Data: p.Weights}
	prod := GeMM(w, patches) // OutC × (H·W)
	out := NewTensor3(p.OutC, in.H, in.W)
	for o := 0; o < p.OutC; o++ {
		row := prod.Row(o)
		bias := p.Bias[o]
		dst := out.Data[o*in.H*in.W : (o+1)*in.H*in.W]
		for i := range dst {
			dst[i] = row[i] + bias
		}
	}
	return out
}
