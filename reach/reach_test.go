package reach

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// buildCBIR configures the paper's Listing 2 meta-accelerator: VGG16 on
// chip, GEMM shortlist on every near-memory instance, KNN rerank on every
// near-storage instance, with the Input/Features/Result streams.
func buildCBIR(t *testing.T, s *System, nm, ns int) (input, features, shortlists, result *Stream, cnn *ACC, sls, knns []*ACC) {
	t.Helper()
	m := workload.DefaultModel()

	var err error
	check := func(e error) {
		t.Helper()
		if e != nil {
			t.Fatal(e)
		}
	}

	// Fixed buffers: model parameters on chip, centroid shards per DIMM,
	// database shards per SSD (Listing 2 lines 4-6).
	_, err = s.CreateFixedBuffer("vgg16_param", OnChip, m.CNN.CompressedParamBytes())
	check(err)
	for i := 0; i < nm; i++ {
		_, err = s.CreateFixedBufferAt("centroids", NearMem, m.CentroidStoreBytes()/int64(nm), i)
		check(err)
	}
	dbShards := make([]*Buffer, ns)
	for i := 0; i < ns; i++ {
		dbShards[i], err = s.CreateFixedBufferAt("feature_db", NearStor, m.FeatureStoreBytes()/int64(ns), i)
		check(err)
	}

	// Streams (Listing 2 lines 8-13).
	input, err = s.CreateStream("Input", CPU, OnChip, Pair, m.BatchImageBytes(), 2)
	check(err)
	features, err = s.CreateStream("Features", OnChip, NearMem, BroadCast, m.BatchFeatureBytes(), 2)
	check(err)
	shortlists, err = s.CreateStream("Shortlists", NearMem, NearStor, BroadCast, m.ShortlistResultBytesPerBatch(), 2)
	check(err)
	result, err = s.CreateStream("Result", NearStor, CPU, Collect, m.ResultBytesPerBatch(), 2)
	check(err)

	// Accelerators (Listing 2 lines 15-26).
	cnn, err = s.RegisterAcc("VGG16-VU9P", OnChip)
	check(err)
	check(cnn.SetArg(0, input))
	check(cnn.SetArg(2, features))
	cnn.SetWork(Work{
		Stage: "FeatureExtraction", MACs: m.FeatureMACsPerBatch(),
		SPMResident: true, OutputBytes: m.BatchFeatureBytes(),
	})

	for i := 0; i < nm; i++ {
		sl, err := s.RegisterAcc("GEMM-ZCU9", NearMem)
		check(err)
		check(sl.SetArg(0, features))
		check(sl.SetArg(2, shortlists))
		sl.SetWork(Work{
			Stage:       "ShortlistRetrieval",
			MACs:        m.ShortlistMACsPerBatch() / float64(nm),
			StreamBytes: m.ShortlistScanBytesPerBatch() / int64(nm),
			OutputBytes: m.ShortlistResultBytesPerBatch() / int64(nm),
		})
		sls = append(sls, sl)
	}
	for i := 0; i < ns; i++ {
		knn, err := s.RegisterAcc("KNN-ZCU9", NearStor)
		check(err)
		check(knn.SetArg(0, shortlists))
		check(knn.SetArg(1, dbShards[i]))
		check(knn.SetArg(2, result))
		knn.SetWork(Work{
			Stage:       "Rerank",
			MACs:        m.RerankMACsPerBatch() / float64(ns),
			StreamBytes: m.RerankScanBytesPerBatch() / int64(ns),
			OutputBytes: m.ResultBytesPerBatch() / int64(ns),
		})
		knns = append(knns, knn)
	}
	return input, features, shortlists, result, cnn, sls, knns
}

// runBatches runs the Listing 3 host loop for n batches and returns the
// jobs.
func runBatches(t *testing.T, s *System, n int, input, features, result *Stream, cnn *ACC, sls, knns []*ACC) []*Job {
	t.Helper()
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		b, err := s.Begin()
		if err != nil {
			t.Fatal(err)
		}
		must := func(e error) {
			t.Helper()
			if e != nil {
				t.Fatal(e)
			}
		}
		must(b.Enqueue(input))
		must(b.Execute(cnn))
		must(b.Broadcast(features))
		for _, sl := range sls {
			must(b.Execute(sl))
		}
		for _, knn := range knns {
			must(b.Execute(knn))
		}
		must(b.Collect(result))
		must(b.Commit())
		jobs = append(jobs, b)
	}
	s.Run()
	return jobs
}

func TestListing2ConfigurationBuilds(t *testing.T) {
	s, err := NewSystem() // Table II defaults: 1/4/4
	if err != nil {
		t.Fatal(err)
	}
	buildCBIR(t, s, 4, 4)
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(); err == nil {
		t.Error("double Deploy accepted")
	}
}

func TestEndToEndBatchCompletes(t *testing.T) {
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	input, features, _, result, cnn, sls, knns := buildCBIR(t, s, 4, 4)
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	jobs := runBatches(t, s, 1, input, features, result, cnn, sls, knns)
	if !jobs[0].Done() {
		t.Fatal("batch did not complete")
	}
	ms := jobs[0].Latency().Milliseconds()
	// FE ~111ms + SL ~31ms + RR ~103ms + transfers/polling ≈ 250ms.
	if ms < 200 || ms > 330 {
		t.Errorf("batch latency = %.1f ms, want ~250", ms)
	}
	// Energy breakdown covers the expected components.
	e := s.Energy()
	for _, comp := range []string{"ACC", "DRAM", "SSD"} {
		if e[comp] <= 0 {
			t.Errorf("no %s energy", comp)
		}
	}
	// The central resource registry exposes the shared hardware the run
	// contended on, with traffic accounted at the base layer.
	reg := s.Resources()
	for _, name := range []string{"mem.aimbus", "noc.cpu.out", "ssd0.flash"} {
		if _, ok := reg.Lookup(name); !ok {
			t.Errorf("registry missing %s (have %v)", name, reg.Names())
		}
	}
	for _, name := range []string{"mem.host", "ssd.host_link"} {
		res, ok := reg.Lookup(name)
		if !ok {
			t.Errorf("registry missing %s (have %v)", name, reg.Names())
			continue
		}
		if res.ResourceStats().Bytes == 0 {
			t.Errorf("%s carried no traffic", name)
		}
	}
}

func TestPipelinedThroughputApproachesBottleneckStage(t *testing.T) {
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	input, features, _, result, cnn, sls, knns := buildCBIR(t, s, 4, 4)
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	const n = 8
	jobs := runBatches(t, s, n, input, features, result, cnn, sls, knns)
	last := jobs[n-1].FinishedAt()
	period := float64(last-start) / float64(n)
	// The FE stage (~111 ms on chip) bounds steady state; allow overheads.
	if period > float64(160*sim.Millisecond) {
		t.Errorf("steady-state period = %.1f ms/batch, want near ~115-130", period/float64(sim.Millisecond))
	}
	for _, j := range jobs {
		if !j.Done() {
			t.Fatal("a batch did not finish")
		}
	}
}

func TestConfigurationErrors(t *testing.T) {
	s, err := NewSystem(WithInstances(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterAcc("nonsense", OnChip); err == nil {
		t.Error("unknown template accepted")
	}
	if _, err := s.RegisterAcc("CNN-ZCU9", OnChip); err == nil {
		t.Error("ZCU9 bitstream accepted on the on-chip VU9P fabric")
	}
	if _, err := s.RegisterAcc("VGG16-VU9P", OnChip); err != nil {
		t.Errorf("valid registration failed: %v", err)
	}
	if _, err := s.RegisterAcc("VGG16-VU9P", OnChip); err == nil {
		t.Error("second registration on a 1-instance level accepted")
	}
	if _, err := s.CreateFixedBuffer("b", NearMem, 0); err == nil {
		t.Error("zero-size buffer accepted")
	}
	if _, err := s.CreateFixedBufferAt("b", NearStor, 10, 5); err == nil {
		t.Error("out-of-range pin accepted")
	}
	// Same-level streams are allowed (buffer handovers / sibling-instance
	// hops) but must be bound with explicit directions.
	same, err := s.CreateStream("same", NearStor, NearStor, Pair, 10, 1)
	if err != nil {
		t.Errorf("same-level stream rejected: %v", err)
	}
	knn, err := s.RegisterAcc("KNN-ZCU9", NearStor)
	if err != nil {
		t.Fatal(err)
	}
	if err := knn.SetArg(0, same); err == nil {
		t.Error("ambiguous SetArg on a same-level stream accepted")
	}
	if err := knn.SetInput(0, same); err != nil {
		t.Errorf("SetInput on same-level stream rejected: %v", err)
	}
	if _, err := s.CreateStream("s", CPU, OnChip, Pair, 0, 1); err == nil {
		t.Error("zero-size stream accepted")
	}
	if _, err := s.Begin(); err == nil {
		t.Error("Begin before Deploy accepted")
	}
}

func TestSetArgValidation(t *testing.T) {
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := s.RegisterAcc("GEMM-ZCU9", NearMem)
	if err != nil {
		t.Fatal(err)
	}
	bufWrongLevel, _ := s.CreateFixedBuffer("db", NearStor, 100)
	if err := acc.SetArg(0, bufWrongLevel); err == nil {
		t.Error("buffer at wrong level accepted")
	}
	stWrong, _ := s.CreateStream("x", CPU, OnChip, Pair, 10, 1)
	if err := acc.SetArg(0, stWrong); err == nil {
		t.Error("stream not touching the level accepted")
	}
	stIn, _ := s.CreateStream("in", OnChip, NearMem, BroadCast, 10, 1)
	if err := acc.SetArg(0, stIn); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
	if err := acc.SetArg(0, stIn); err == nil {
		t.Error("double binding of a slot accepted")
	}
	if err := acc.SetArg(1, nil); err == nil {
		t.Error("nil arg accepted")
	}
}

func TestStreamTypeValidationInJob(t *testing.T) {
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(); err != nil {
		t.Fatal(err)
	}
	b, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	pair, _ := s.CreateStream("p", CPU, OnChip, Pair, 10, 1)
	if err := b.Broadcast(pair); err == nil {
		t.Error("Broadcast on a Pair stream accepted")
	}
	if err := b.Collect(pair); err == nil {
		t.Error("Collect on a Pair stream accepted")
	}
	notHost, _ := s.CreateStream("nh", OnChip, NearMem, Pair, 10, 1)
	if err := b.Enqueue(notHost); err == nil {
		t.Error("Enqueue on a non-CPU-sourced stream accepted")
	}
	if err := b.Commit(); err == nil {
		t.Error("empty job committed")
	}
}

func TestLevelAndStreamTypeStrings(t *testing.T) {
	if OnChip.String() != "OnChip" || NearMem.String() != "NearMem" ||
		NearStor.String() != "NearStor" || CPU.String() != "CPU" {
		t.Error("level strings wrong")
	}
	if BroadCast.String() != "BroadCast" || Collect.String() != "Collect" || Pair.String() != "Pair" {
		t.Error("stream type strings wrong")
	}
	if StreamType(9).String() == "" {
		t.Error("unknown stream type empty")
	}
}
