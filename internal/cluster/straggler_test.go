package cluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildAndRunStragglers is buildAndRun with straggler tracking on.
func buildAndRunStragglers(t *testing.T, cfg config.ClusterConfig, n int, gap sim.Time) *Cluster {
	t.Helper()
	c, err := New(cfg, testModel(), qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableStragglers()
	for i := 0; i < n; i++ {
		c.SubmitAt(sim.Time(i) * gap)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStragglerRecordsCoverMerges: one record per scattered merge, and
// each record's breakdown tiles the query's end-to-end latency exactly —
// front leg + queue + exec + wire is the whole critical path.
func TestStragglerRecordsCoverMerges(t *testing.T) {
	c := buildAndRunStragglers(t, config.DefaultCluster(), 16, sim.FromSeconds(1e-3))
	recs := c.Stragglers()
	if len(recs) != c.Completed() {
		t.Fatalf("%d records for %d merges", len(recs), c.Completed())
	}
	for _, r := range recs {
		if r.Shard < 0 || r.Shard >= c.Config().Shards || r.Node < 0 || r.Node >= c.Config().Nodes {
			t.Fatalf("record names impossible leg shard%d@node%d", r.Shard, r.Node)
		}
		if sum := r.Front + r.Queue + r.Exec + r.Wire; sum != r.Latency {
			t.Fatalf("query %d: breakdown %v+%v+%v+%v = %v != latency %v",
				r.Query, r.Front, r.Queue, r.Exec, r.Wire, sum, r.Latency)
		}
		if r.Queue < 0 || r.Exec <= 0 || r.Wire <= 0 {
			t.Fatalf("query %d: non-positive components %+v", r.Query, r)
		}
	}
	tbl := StragglerTable(recs)
	if tbl == nil || len(tbl.Rows) == 0 {
		t.Fatal("empty straggler table")
	}
	if !strings.Contains(tbl.Title, "Straggler attribution") {
		t.Fatalf("headline missing: %q", tbl.Title)
	}
	if len(tbl.Notes) != 3 {
		t.Fatalf("want 3 footnotes, got %v", tbl.Notes)
	}
}

// TestStragglerOffByDefault: without EnableStragglers the run stores
// nothing — the attribution is strictly opt-in.
func TestStragglerOffByDefault(t *testing.T) {
	c := buildAndRun(t, config.DefaultCluster(), 8, sim.FromSeconds(1e-3))
	if got := c.Stragglers(); got != nil {
		t.Fatalf("untracked run recorded %d stragglers", len(got))
	}
	if StragglerTable(nil) != nil {
		t.Fatal("StragglerTable(nil) should be nil")
	}
}

// TestStragglerParallelInvariant: records are written at merge time in
// the front-end domain, so the full record stream is byte-identical at
// any domain parallelism.
func TestStragglerParallelInvariant(t *testing.T) {
	run := func(pj int) []StragglerRecord {
		cfg := config.DefaultCluster()
		cfg.ParallelDomains = pj
		return buildAndRunStragglers(t, cfg, 24, sim.FromSeconds(5e-4)).Stragglers()
	}
	base := run(1)
	for _, pj := range []int{4, 8} {
		if got := run(pj); !reflect.DeepEqual(got, base) {
			t.Fatalf("straggler records diverge at pj=%d", pj)
		}
	}
}

// hotShard is the shard carrying the largest work fraction for content:
// shard weights are the Zipf weights rotated by content, so the maximum
// (index 0 of the weights) lands on shard (S - content) mod S.
func hotShard(content, shards int) int {
	return (shards - content%shards) % shards
}

// TestStragglerSkewedHashTailAcceptance is the PR's acceptance pin: a
// Zipf-1.2, hash-routed run at saturating arrival rate must attribute
// its p999 tail to the hot shard, with queue wait as the dominant cause
// — hash routing keeps hammering the same replica for popular contents
// while the rotated work skew makes that shard's jobs the biggest, so
// its GAM queue is where the tail is manufactured.
func TestStragglerSkewedHashTailAcceptance(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.SkewExponent = 1.2
	cfg.RoutePolicy = "hash"
	// The paper-scale dataset (not the unit tests' hundredth): shard work
	// must outweigh per-batch feature extraction for the tail to form at
	// the shards. The 50 ms arrival gap sits between the home nodes' FE
	// service rate (no front-end pile-up) and the hot replica's shard
	// service rate (its scheduling queues grow without bound).
	m := workload.DefaultModel()
	c, err := New(cfg, m, qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableStragglers()
	const queries = 240
	gap := sim.FromSeconds(50e-3)
	for i := 0; i < queries; i++ {
		c.SubmitAt(sim.Time(i) * gap)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	recs := c.Stragglers()
	if len(recs) != queries {
		t.Fatalf("got %d records", len(recs))
	}

	// Every p999-tail record must sit on its content's hot shard with
	// queue as the dominant component.
	thresh := tailThreshold(recs, 0.999)
	tail := 0
	for _, r := range recs {
		if r.Latency < thresh {
			continue
		}
		tail++
		if want := hotShard(r.Content, cfg.Shards); r.Shard != want {
			t.Errorf("tail query %d (content %d): critical shard %d, want hot shard %d",
				r.Query, r.Content, r.Shard, want)
		}
		if got := r.Cause(); got != CauseQueue {
			t.Errorf("tail query %d: dominant cause %s (queue %v exec %v wire %v)",
				r.Query, got, r.Queue, r.Exec, r.Wire)
		}
	}
	if tail == 0 {
		t.Fatal("empty p999 tail")
	}
	// And the rendered report must say so in its p999 footnote.
	tbl := StragglerTable(recs)
	p999 := tbl.Notes[len(tbl.Notes)-1]
	if !strings.Contains(p999, "dominant cause queue") {
		t.Errorf("p999 footnote does not blame the queue: %q", p999)
	}
}
