package workload

import (
	"fmt"
	"math"
	"sort"
)

// Query skew: real retrieval traffic is not uniform over clusters — some
// visual concepts are far more popular than others. This file models
// cluster popularity as a Zipf distribution and computes how a popularity
// profile maps onto per-SSD rerank load under different cluster-placement
// policies, feeding the skew experiment.

// ZipfWeights returns n popularity weights following Zipf with exponent s
// (s = 0 is uniform), normalised to sum to 1, in rank order (most popular
// first).
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic("workload: ZipfWeights needs n > 0")
	}
	if s < 0 {
		panic("workload: Zipf exponent must be non-negative")
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Placement selects how clusters are assigned to storage shards.
type Placement int

const (
	// PlaceContiguous assigns clusters to shards in contiguous blocks
	// (cluster id order) — the naive layout.
	PlaceContiguous Placement = iota
	// PlaceRoundRobin deals clusters to shards round-robin in popularity
	// rank order, spreading hot clusters across devices.
	PlaceRoundRobin
)

func (p Placement) String() string {
	if p == PlaceRoundRobin {
		return "round-robin"
	}
	return "contiguous"
}

// ShardLoad maps popularity weights (rank order) onto `shards` storage
// devices under the placement policy and returns each shard's share of the
// total rerank load (sums to 1).
func ShardLoad(weights []float64, shards int, p Placement) []float64 {
	if shards <= 0 {
		panic("workload: ShardLoad needs shards > 0")
	}
	load := make([]float64, shards)
	switch p {
	case PlaceRoundRobin:
		for rank, w := range weights {
			load[rank%shards] += w
		}
	default:
		// Contiguous by cluster id: popularity rank is uncorrelated with
		// id, so model the adversarial-but-common case where hot clusters
		// landed together — block assignment in rank order.
		per := (len(weights) + shards - 1) / shards
		for rank, w := range weights {
			load[min(rank/per, shards-1)] += w
		}
	}
	return load
}

// ImbalanceFactor reports max-shard load over ideal (1/shards): 1.0 is
// perfectly balanced; the rerank stage's runtime scales with this factor
// when instances are bound to devices.
func ImbalanceFactor(load []float64) float64 {
	if len(load) == 0 {
		return 0
	}
	maxL := load[0]
	var sum float64
	for _, l := range load {
		sum += l
		if l > maxL {
			maxL = l
		}
	}
	if sum == 0 {
		return 0
	}
	return maxL * float64(len(load)) / sum
}

// DescribeSkew summarises a skew profile for reports.
func DescribeSkew(n, shards int, s float64, p Placement) string {
	load := ShardLoad(ZipfWeights(n, s), shards, p)
	sorted := append([]float64(nil), load...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return fmt.Sprintf("zipf %.1f, %s: hottest shard %.0f%%, imbalance %.2fx",
		s, p, sorted[0]*100, ImbalanceFactor(load))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
