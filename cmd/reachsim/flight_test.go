package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// bundleFiles is every file a flight bundle must contain.
var bundleFiles = []string{
	"verdict.json", "trace.json", "stragglers.txt", "domains.json", "state.json",
}

// readBundle finds the single bundle directory under dir and returns its
// base name plus each file's bytes.
func readBundle(t *testing.T, dir string) (string, map[string][]byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("want exactly one bundle directory, got %v", names)
	}
	name := entries[0].Name()
	files := map[string][]byte{}
	for _, f := range bundleFiles {
		raw, err := os.ReadFile(filepath.Join(dir, name, f))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		files[f] = raw
	}
	return name, files
}

// TestClusterFlightDetectionParallelInvariant is the flight recorder's
// acceptance bar: the pinned flash-crowd run (-cluster -slo 400 -flight
// -detect -arrival flash) fires the SLO burn-rate detector exactly once,
// the frozen window's straggler attribution is queue-dominated (the
// burst's signature: GAM ready-queue wait, not compute, stretches the
// tail), and the whole bundle directory is byte-identical at -pj 1, 4
// and 8 — freezing mid-run does not reintroduce worker-count
// sensitivity.
func TestClusterFlightDetectionParallelInvariant(t *testing.T) {
	type rendered struct {
		stdout string
		bundle string
		files  map[string][]byte
	}
	render := func(pj int) rendered {
		dir := t.TempDir()
		var out strings.Builder
		err := runCluster(&out, clusterOptions{
			pj:        pj,
			flightDir: dir,
			detect:    true,
			arrival:   "flash",
			sloMs:     400,
		})
		if err != nil {
			t.Fatalf("pj=%d: %v", pj, err)
		}
		name, files := readBundle(t, dir)
		return rendered{stdout: out.String(), bundle: name, files: files}
	}

	serial := render(1)
	if !strings.HasPrefix(serial.bundle, "bundle-") || !strings.HasSuffix(serial.bundle, "us") {
		t.Errorf("bundle %q not named for its trigger time", serial.bundle)
	}

	var v struct {
		Detector      string            `json:"detector"`
		Reason        string            `json:"reason"`
		TriggerMS     float64           `json:"trigger_ms"`
		Detections    map[string]uint64 `json:"detections"`
		DominantCause string            `json:"dominant_cause"`
		WindowQueries int               `json:"window_queries"`
		Observed      *struct {
			BurnShort float64 `json:"burn_short"`
			BurnLong  float64 `json:"burn_long"`
			LongN     int     `json:"long_n"`
		} `json:"observed"`
		Series []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(serial.files["verdict.json"], &v); err != nil {
		t.Fatalf("verdict.json: %v", err)
	}
	if v.Detector != "slo-burn" {
		t.Errorf("detector = %q, want slo-burn", v.Detector)
	}
	if len(v.Detections) != 1 || v.Detections["slo-burn"] != 1 {
		t.Errorf("detections = %v, want exactly one slo-burn", v.Detections)
	}
	if v.DominantCause != "queue" {
		t.Errorf("dominant_cause = %q, want queue (flash crowd saturates the GAM ready queue)", v.DominantCause)
	}
	if v.TriggerMS <= 0 || v.WindowQueries == 0 || len(v.Series) == 0 {
		t.Errorf("verdict not self-contained: trigger_ms=%v window_queries=%d series=%d",
			v.TriggerMS, v.WindowQueries, len(v.Series))
	}
	if v.Observed == nil || v.Observed.BurnShort < 0.5 || v.Observed.BurnLong < 0.5 {
		t.Errorf("observed point does not show a sustained burn: %+v", v.Observed)
	}
	if !strings.Contains(string(serial.files["stragglers.txt"]), "overall dominant cause queue") {
		t.Errorf("stragglers.txt not queue-dominated:\n%s", serial.files["stragglers.txt"])
	}

	var events []map[string]any
	if err := json.Unmarshal(serial.files["trace.json"], &events); err != nil {
		t.Fatalf("bundle trace is not valid Chrome-trace JSON: %v", err)
	}
	if len(events) == 0 {
		t.Error("bundle trace is empty")
	}
	var dom struct {
		WindowFromUS float64 `json:"window_from_us"`
		WindowToUS   float64 `json:"window_to_us"`
		Samples      []struct {
			FrontierUS float64 `json:"frontier_us"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(serial.files["domains.json"], &dom); err != nil {
		t.Fatalf("domains.json: %v", err)
	}
	if len(dom.Samples) == 0 || dom.WindowToUS <= dom.WindowFromUS {
		t.Errorf("domains.json window empty: %d samples in [%v, %v]",
			len(dom.Samples), dom.WindowFromUS, dom.WindowToUS)
	}

	for _, pj := range []int{4, 8} {
		got := render(pj)
		if got.stdout != serial.stdout {
			t.Errorf("-pj %d stdout diverged from -pj 1", pj)
		}
		if got.bundle != serial.bundle {
			t.Errorf("-pj %d bundle dir %q, want %q", pj, got.bundle, serial.bundle)
		}
		for _, f := range bundleFiles {
			if string(got.files[f]) != string(serial.files[f]) {
				t.Errorf("-pj %d %s diverged from -pj 1", pj, f)
			}
		}
	}
}

// TestClusterFlightEndOfRunBundle: a disarmed recorder (-flight without
// -detect) on the healthy pinned run never freezes and cuts a
// bundle-final dump whose verdict carries no detector but keeps the
// trailing observability series.
func TestClusterFlightEndOfRunBundle(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := runCluster(&out, clusterOptions{flightDir: dir}); err != nil {
		t.Fatal(err)
	}
	name, files := readBundle(t, dir)
	if name != "bundle-final" {
		t.Errorf("bundle dir = %q, want bundle-final", name)
	}
	var v struct {
		Detector   string            `json:"detector"`
		Detections map[string]uint64 `json:"detections"`
		Series     []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(files["verdict.json"], &v); err != nil {
		t.Fatal(err)
	}
	if v.Detector != "" || len(v.Detections) != 0 {
		t.Errorf("disarmed run produced a detection: detector=%q detections=%v",
			v.Detector, v.Detections)
	}
	if len(v.Series) == 0 {
		t.Error("end-of-run verdict lost the observability series")
	}
	// The summary table still matches the unobserved golden — recording
	// never moves a simulated number.
	golden, err := os.ReadFile(filepath.Join("testdata", "cluster_smoke.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), string(golden)) {
		t.Errorf("flight-on run's summary diverged from cluster_smoke.golden:\n%s", out.String())
	}
}

// TestClusterFlightWithFullObservability: the flight recorder composes
// with every other sink (metrics, spans, trace, SLO monitor) — the
// barrier tee carries both observers and the bundle embeds windowed
// counters and spans.
func TestClusterFlightWithFullObservability(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := runCluster(&out, clusterOptions{
		flightDir: dir,
		detect:    true,
		arrival:   "flash",
		sloMs:     400,
		metrics:   &metrics.Options{Spans: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, files := readBundle(t, dir)
	var events []map[string]any
	if err := json.Unmarshal(files["trace.json"], &events); err != nil {
		t.Fatal(err)
	}
	var counters, spans int
	for _, e := range events {
		switch e["ph"] {
		case "C":
			counters++
		case "X":
			if cat, _ := e["cat"].(string); strings.HasPrefix(cat, "gam.") {
				spans++
			}
		}
	}
	if counters == 0 || spans == 0 {
		t.Errorf("bundle trace missing windowed observability: %d counters, %d gam spans",
			counters, spans)
	}
}

// BenchmarkClusterRunFlight measures the pinned -cluster run end to end
// with the flight recorder off, recording-only, and fully armed
// (detectors evaluated on every completion). The off/armed delta is the
// PR's headline overhead number. The armed case uses a 2 s objective the
// healthy run never breaches, so the detectors evaluate on every
// completion instead of freezing early and going quiet.
func BenchmarkClusterRunFlight(b *testing.B) {
	for _, bc := range []struct {
		name string
		opt  func(dir string) clusterOptions
	}{
		{"off", func(string) clusterOptions { return clusterOptions{} }},
		{"record", func(dir string) clusterOptions { return clusterOptions{flightDir: dir} }},
		{"detect", func(dir string) clusterOptions {
			return clusterOptions{flightDir: dir, detect: true, sloMs: 2000}
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := runCluster(io.Discard, bc.opt(b.TempDir())); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
