package qtrace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// intervalHeader is the stable schema of the per-query interval CSV dump.
// The qtrace-smoke CI target validates files against it.
//
// The phase column takes every Phase* constant value, single-server and
// cluster alike (TestPhaseConstantsDocumented pins this list against the
// constants):
//
//   - "queue": GAM scheduling-queue wait — and, on cluster runs, the
//     front-end or shard job's submit-to-first-dispatch wait, with the
//     detail naming the node-local lane ("nodeH", "shardS@nodeR").
//   - "exec": accelerator execution; cluster shard legs use stage
//     "Rerank", level "nearmem+nearstor" and detail "shardS@nodeR" for
//     the whole scatter leg's device time.
//   - "reconfig": partial-reconfiguration stall before execution.
//   - "pollgap": device completion to GAM detection (polled tasks).
//   - "xfer": inter-level DMA on one server, and on cluster runs the
//     wire legs — image ingress ("client-nodeH", stage
//     "FeatureExtraction"), scatter ("nodeH-nodeR", stage
//     "ShortlistRetrieval") and response gather ("nodeR-fe", stage
//     "Rerank").
//   - "cache-hit": a query served by the cluster front end without a
//     scatter; detail "fe-cache" is a direct hit, "fe-coalesce" a query
//     coalesced onto an in-flight scatter for the same content.
//
// Cluster runs add the front-end stages to the stage column —
// "FeatureExtraction" for the home-node feature leg, "ShortlistRetrieval"
// for the scatter and "Rerank" for shard execution and gather — next to
// the single-server pipeline stage names.
var intervalHeader = []string{
	"run", "query", "job", "phase", "stage", "level", "detail",
	"start_us", "end_us", "dur_us",
}

// summaryHeader is the stable schema of the per-query summary CSV: one row
// per completed query with its latency and dominant attribution.
var summaryHeader = []string{
	"run", "query", "job", "arrival_us", "done_us", "latency_us",
	"intervals", "dominant_phase", "dominant_stage", "dominant_level",
	"dominant_share",
}

// IntervalCSVHeader returns a copy of the interval CSV schema.
func IntervalCSVHeader() []string { return append([]string(nil), intervalHeader...) }

// SummaryCSVHeader returns a copy of the summary CSV schema.
func SummaryCSVHeader() []string { return append([]string(nil), summaryHeader...) }

// CSVWriter streams one or more runs' query logs as CSV. Interval rows and
// summary rows go to two separate writers because their schemas differ;
// either may be nil to skip that output.
type CSVWriter struct {
	intervals *csv.Writer
	summary   *csv.Writer
	wroteIH   bool
	wroteSH   bool
}

// NewCSVWriter writes interval rows to intervals and per-query summary
// rows to summary (either may be nil).
func NewCSVWriter(intervals, summary io.Writer) *CSVWriter {
	w := &CSVWriter{}
	if intervals != nil {
		w.intervals = csv.NewWriter(intervals)
	}
	if summary != nil {
		w.summary = csv.NewWriter(summary)
	}
	return w
}

// WriteRun appends every query of one run, labelled run in the first
// column, in QueryID order. Headers are written once, before the first
// row of each file.
func (w *CSVWriter) WriteRun(run string, l *Log) error {
	for _, q := range l.Queries() {
		if w.intervals != nil {
			if !w.wroteIH {
				if err := w.intervals.Write(intervalHeader); err != nil {
					return err
				}
				w.wroteIH = true
			}
			for _, iv := range q.Intervals {
				err := w.intervals.Write([]string{
					run,
					fmt.Sprintf("%d", q.ID),
					fmt.Sprintf("%d", q.Job),
					iv.Phase, iv.Stage, iv.Level, iv.Detail,
					fmt.Sprintf("%.3f", iv.Start.Microseconds()),
					fmt.Sprintf("%.3f", iv.End.Microseconds()),
					fmt.Sprintf("%.3f", iv.Duration().Microseconds()),
				})
				if err != nil {
					return err
				}
			}
		}
		if w.summary != nil && q.Completed() {
			if !w.wroteSH {
				if err := w.summary.Write(summaryHeader); err != nil {
					return err
				}
				w.wroteSH = true
			}
			dom := q.Dominant()
			err := w.summary.Write([]string{
				run,
				fmt.Sprintf("%d", q.ID),
				fmt.Sprintf("%d", q.Job),
				fmt.Sprintf("%.3f", q.Arrival.Microseconds()),
				fmt.Sprintf("%.3f", q.Done.Microseconds()),
				fmt.Sprintf("%.3f", q.Latency().Microseconds()),
				fmt.Sprintf("%d", len(q.Intervals)),
				dom.Phase, dom.Stage, dom.Level,
				fmt.Sprintf("%.4f", dom.Share),
			})
			if err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// Flush flushes buffered rows and reports any write error.
func (w *CSVWriter) Flush() error {
	for _, cw := range []*csv.Writer{w.intervals, w.summary} {
		if cw == nil {
			continue
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// jsonInterval is the JSONL shape of one timeline interval.
type jsonInterval struct {
	Run     string  `json:"run"`
	Type    string  `json:"type"` // "interval"
	Query   int     `json:"query"`
	Job     int     `json:"job"`
	Phase   string  `json:"phase"`
	Stage   string  `json:"stage,omitempty"`
	Level   string  `json:"level,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	StartUS float64 `json:"start_us"`
	EndUS   float64 `json:"end_us"`
}

// jsonQuery is the JSONL shape of one completed query's summary.
type jsonQuery struct {
	Run           string  `json:"run"`
	Type          string  `json:"type"` // "query"
	Query         int     `json:"query"`
	Job           int     `json:"job"`
	ArrivalUS     float64 `json:"arrival_us"`
	DoneUS        float64 `json:"done_us"`
	LatencyUS     float64 `json:"latency_us"`
	DominantPhase string  `json:"dominant_phase,omitempty"`
	DominantStage string  `json:"dominant_stage,omitempty"`
	DominantLevel string  `json:"dominant_level,omitempty"`
	DominantShare float64 `json:"dominant_share,omitempty"`
}

// JSONLWriter streams query logs as JSON Lines: every interval as a
// {"type":"interval"} object and every completed query as a
// {"type":"query"} summary object.
type JSONLWriter struct {
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// WriteRun appends one run's queries, labelled run, in QueryID order.
func (j *JSONLWriter) WriteRun(run string, l *Log) error {
	for _, q := range l.Queries() {
		for _, iv := range q.Intervals {
			err := j.enc.Encode(jsonInterval{
				Run: run, Type: "interval", Query: q.ID, Job: q.Job,
				Phase: iv.Phase, Stage: iv.Stage, Level: iv.Level,
				Detail: iv.Detail, StartUS: iv.Start.Microseconds(),
				EndUS: iv.End.Microseconds(),
			})
			if err != nil {
				return err
			}
		}
		if !q.Completed() {
			continue
		}
		dom := q.Dominant()
		err := j.enc.Encode(jsonQuery{
			Run: run, Type: "query", Query: q.ID, Job: q.Job,
			ArrivalUS: q.Arrival.Microseconds(), DoneUS: q.Done.Microseconds(),
			LatencyUS:     q.Latency().Microseconds(),
			DominantPhase: dom.Phase, DominantStage: dom.Stage,
			DominantLevel: dom.Level, DominantShare: dom.Share,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
