package qtrace

import (
	"testing"

	"repro/internal/sim"
)

// feedRetainer wires a retainer to a fresh log and plays n queries
// through it, one completion per millisecond, each with a 2 ms exec
// interval and qid-proportional latency pattern.
func feedRetainer(window sim.Time, n int) (*Retainer, *Log) {
	r := NewRetainer(window)
	l := NewLog(Options{Observer: r})
	r.Attach(l)
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Millisecond
		l.Submitted(i, i, at)
		l.Add(i, Interval{Phase: PhaseExec, Stage: "FE", Level: "OnChip", Detail: "onchip0", Start: at, End: at + 2*sim.Millisecond})
		l.Completed(i, at+2*sim.Millisecond)
	}
	return r, l
}

// TestRetainerSlidesWindow: only completions within the trailing window
// of the newest one are retained; older clones are evicted as time moves.
func TestRetainerSlidesWindow(t *testing.T) {
	r, _ := feedRetainer(10*sim.Millisecond, 100)
	// Newest completion at 101 ms; retained: Done >= 91 ms → qids 89..99.
	if r.Len() != 11 {
		t.Fatalf("retained %d queries, want 11", r.Len())
	}
	from, to := r.Bounds()
	if to != 101*sim.Millisecond || from != 91*sim.Millisecond {
		t.Fatalf("bounds = [%v, %v], want [91ms, 101ms]", from, to)
	}
	qs := r.Queries()
	if qs[0].ID != 89 || qs[len(qs)-1].ID != 99 {
		t.Fatalf("retained qids %d..%d, want 89..99", qs[0].ID, qs[len(qs)-1].ID)
	}
	for _, q := range qs {
		if len(q.Intervals) != 1 || !q.Completed() {
			t.Fatalf("query %d retained without its timeline: %+v", q.ID, q)
		}
	}

	// The compaction path must not lose or reorder entries (head crossed
	// the >64 threshold many times above); an explicitly long run checks
	// a second regime.
	r2, _ := feedRetainer(sim.Millisecond, 500)
	if r2.Len() != 2 {
		t.Fatalf("1ms window retained %d, want 2", r2.Len())
	}
	if got := r2.Queries(); got[0].ID != 498 || got[1].ID != 499 {
		t.Fatalf("retained qids = %d,%d, want 498,499", got[0].ID, got[1].ID)
	}
}

// TestRetainerCopiesAreIndependent: the retained clone must not alias the
// live log's interval storage — DropTimelines or later mutation of the
// log cannot reach into an already-cut bundle.
func TestRetainerCopiesAreIndependent(t *testing.T) {
	r := NewRetainer(sim.Second)
	l := NewLog(Options{Observer: r})
	r.Attach(l)
	l.Submitted(0, 0, 0)
	l.Add(0, Interval{Phase: PhaseExec, Start: 0, End: sim.Millisecond})
	l.Completed(0, sim.Millisecond)
	l.Query(0).Intervals[0].Phase = "mutated"
	l.Query(0).Attribution[0].Phase = "mutated"
	q := r.Queries()[0]
	if q.Intervals[0].Phase != PhaseExec || q.Attribution[0].Phase != PhaseExec {
		t.Fatalf("retained copy aliases the live log: %+v", q)
	}

	// Detached or unknown completions are ignored, not a panic.
	detached := NewRetainer(sim.Second)
	detached.QueryDoneAt(0, 0, 0)
	if detached.Len() != 0 {
		t.Fatal("detached retainer retained a query")
	}
	r.QueryDoneAt(999, sim.Millisecond, 0)
	if r.Len() != 1 {
		t.Fatal("unknown qid retained")
	}
}

// TestRetainerWindowLog: the rebuilt window log is a self-contained Log —
// query table, timelines, recomputed attributions and latency sketch all
// restricted to the retained set.
func TestRetainerWindowLog(t *testing.T) {
	r, full := feedRetainer(10*sim.Millisecond, 100)
	wl := r.WindowLog()
	if got := wl.CompletedCount(); got != 11 {
		t.Fatalf("window log completed %d, want 11", got)
	}
	if got := wl.Sketch().Count(); got != 11 {
		t.Fatalf("window sketch count %d, want 11", got)
	}
	for _, q := range wl.Queries() {
		orig := full.Query(q.ID)
		if q.Arrival != orig.Arrival || q.Done != orig.Done || q.Job != orig.Job {
			t.Fatalf("window query %d bounds diverged: %+v vs %+v", q.ID, q, orig)
		}
		if len(q.Intervals) != len(orig.Intervals) {
			t.Fatalf("window query %d lost intervals", q.ID)
		}
		if q.Dominant() != orig.Dominant() {
			t.Fatalf("window query %d attribution diverged", q.ID)
		}
	}
	if empty := NewRetainer(sim.Second).WindowLog(); empty.CompletedCount() != 0 {
		t.Fatal("empty retainer should rebuild an empty log")
	}
}
