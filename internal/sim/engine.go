package sim

import "fmt"

// Handler is the closure-free scheduling interface: long-lived model
// objects (a memory controller, a task node, a job) implement Fire once and
// are scheduled with Engine.AtCall/ScheduleCall, passing per-event state
// through arg. This is the steady-state hot path — it allocates nothing —
// while the func()-based At/Schedule remain as a convenience for cold paths
// and tests (the closure itself is the caller's allocation; the calendar
// entry is pooled either way).
type Handler interface {
	// Fire runs the event. arg is the value passed at scheduling time;
	// handlers that multiplex several event kinds encode a phase tag (and,
	// if needed, a small index) in it.
	Fire(eng *Engine, arg uint64)
}

// event is one calendar entry: the ordering keys inline (so heap sifts
// touch one cache line per element, no pointer chasing, no interface
// boxing) plus the index of the slot holding its payload.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among same-time events
	slot int32
}

// eventSlot holds an event's payload. Slots are recycled through the
// engine's free list; gen increments on every release so stale EventHandles
// can never cancel a reused slot.
type eventSlot struct {
	h         Handler
	fn        func()
	arg       uint64
	gen       uint32
	heapIndex int32 // position in the heap, -1 once fired or cancelled
}

// EventHandle identifies a scheduled event for cancellation. It is a small
// value (no heap allocation); the zero value is inert. A handle becomes
// stale once its event fires or is cancelled — Cancel on a stale handle is
// a no-op even if the underlying slot has been reused, because the slot's
// generation stamp no longer matches.
type EventHandle struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Scheduled reports whether the event is still pending in the calendar.
func (h EventHandle) Scheduled() bool {
	e := h.eng
	if e == nil || int(h.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.slot]
	return s.gen == h.gen && s.heapIndex >= 0
}

// When reports the simulated time the event is scheduled for, or zero once
// it has fired or been cancelled.
func (h EventHandle) When() Time {
	e := h.eng
	if e == nil || int(h.slot) >= len(e.slots) {
		return 0
	}
	s := &e.slots[h.slot]
	if s.gen != h.gen || s.heapIndex < 0 {
		return 0
	}
	return e.heap[s.heapIndex].at
}

// Cancel prevents the event from firing and removes it from the calendar
// immediately, so long-lived simulations that schedule-and-cancel (e.g.
// timeout guards) do not accumulate dead events in the heap until their
// nominal time is reached; the slot returns to the free list at once.
// Cancelling an event that already fired (or was already cancelled) is a
// no-op: the generation check makes stale handles harmless.
func (h EventHandle) Cancel() {
	e := h.eng
	if e == nil || int(h.slot) >= len(e.slots) {
		return
	}
	s := &e.slots[h.slot]
	if s.gen != h.gen || s.heapIndex < 0 {
		return
	}
	e.removeAt(int(s.heapIndex))
	e.release(h.slot)
}

// Engine is a single-threaded discrete-event simulation kernel. All model
// components attached to an Engine share its virtual clock; the engine
// dispatches events in nondecreasing time order, FIFO among ties.
//
// The engine is deliberately not safe for concurrent use: determinism is a
// core requirement for the reproducibility of the experiments, so the whole
// simulation executes on one goroutine.
//
// The calendar is a hand-rolled 4-ary min-heap over a flat []event slice
// ordered by (at, seq): no container/heap interface boxing, no per-event
// pointer, and event payloads live in pooled slots recycled through a free
// list — steady-state scheduling and dispatch perform zero heap
// allocations (see TestScheduleCallZeroAlloc).
type Engine struct {
	now      Time
	seq      uint64
	heap     []event
	slots    []eventSlot
	free     []int32
	executed uint64
	running  bool
	stats    *StatsRegistry

	// Domain fields, zero/nil on a standalone engine. When multi is set the
	// engine is one domain of a MultiEngine: the coordinator drives it via
	// runBound, xseq orders its cross-domain exports, and inbox receives
	// events exported by sibling domains (see domain.go).
	id    int32
	multi *MultiEngine
	xseq  uint64
	inbox inbox
}

// NewEngine returns an engine with the clock at time zero and an empty
// calendar.
func NewEngine() *Engine {
	// Seed the calendar with room for a realistic pending-event population
	// so a fresh engine reaches its zero-alloc steady state without paying
	// a ladder of append regrowths (and slot copies) first.
	const seedCap = 1024
	return &Engine{
		stats: NewStatsRegistry(),
		heap:  make([]event, 0, seedCap),
		slots: make([]eventSlot, 0, seedCap),
		free:  make([]int32, 0, seedCap),
	}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Stats returns the engine's central resource registry: every shared
// resource (link, stream buffer, request queue, window) constructed on
// this engine registers itself here under a hierarchical name.
func (e *Engine) Stats() *StatsRegistry {
	if e.stats == nil {
		e.stats = NewStatsRegistry() // tolerate zero-value engines in tests
	}
	return e.stats
}

// Executed reports how many events have been dispatched so far; useful for
// progress reporting and as a runaway-simulation guard in tests.
func (e *Engine) Executed() uint64 { return e.executed }

// ID reports the engine's domain index within its MultiEngine (0 for a
// standalone engine).
func (e *Engine) ID() int { return int(e.id) }

// Pending reports the number of events currently scheduled. Cancelled
// events are removed from the calendar eagerly and do not count.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping would
// corrupt causality. Hot paths should prefer AtCall, which does not force
// the caller to allocate a closure.
func (e *Engine) At(t Time, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	return e.push(t, nil, 0, fn)
}

// Schedule schedules fn to run after delay from the current time.
// A negative delay panics.
func (e *Engine) Schedule(delay Time, fn func()) EventHandle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// AtCall schedules h.Fire(e, arg) at absolute simulated time t. This is the
// allocation-free fast path: the handler is a long-lived model object, arg
// carries the per-event state, and the calendar entry is a pooled slot.
func (e *Engine) AtCall(t Time, h Handler, arg uint64) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if h == nil {
		panic("sim: scheduling nil handler")
	}
	return e.push(t, h, arg, nil)
}

// ScheduleCall schedules h.Fire(e, arg) after delay from the current time.
// A negative delay panics.
func (e *Engine) ScheduleCall(delay Time, h Handler, arg uint64) EventHandle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.AtCall(e.now+delay, h, arg)
}

// push places a payload in a (recycled) slot and the ordering keys in the
// heap. Exactly one of h and fn is non-nil.
func (e *Engine) push(t Time, h Handler, arg uint64, fn func()) EventHandle {
	var si int32
	if n := len(e.free); n > 0 {
		si = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{})
		si = int32(len(e.slots) - 1)
	}
	s := &e.slots[si]
	s.h, s.fn, s.arg = h, fn, arg
	e.heap = append(e.heap, event{at: t, seq: e.seq, slot: si})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	return EventHandle{eng: e, slot: si, gen: s.gen}
}

// release returns a fired or cancelled event's slot to the free list,
// clearing payload references and bumping the generation so stale handles
// cannot touch the reused slot.
func (e *Engine) release(si int32) {
	s := &e.slots[si]
	s.h, s.fn, s.arg = nil, nil, 0
	s.gen++
	s.heapIndex = -1
	e.free = append(e.free, si)
}

// before orders calendar entries by (at, seq); seq is unique, so the order
// is total and same-time events dispatch FIFO regardless of heap shape.
func before(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary: children of i are 4i+1..4i+4, parent is (i-1)/4.
// Shallower than a binary heap (siftUp does fewer compares per level) and
// the four children share cache lines in the flat slice, which is where a
// specialized calendar queue wins over container/heap.

func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !before(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slots[e.heap[i].slot].heapIndex = int32(i)
		i = p
	}
	e.heap[i] = ev
	e.slots[ev.slot].heapIndex = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ev := e.heap[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(e.heap[j], e.heap[m]) {
				m = j
			}
		}
		if !before(e.heap[m], ev) {
			break
		}
		e.heap[i] = e.heap[m]
		e.slots[e.heap[i].slot].heapIndex = int32(i)
		i = m
	}
	e.heap[i] = ev
	e.slots[ev.slot].heapIndex = int32(i)
}

// popMin removes and returns the earliest calendar entry.
func (e *Engine) popMin() event {
	top := e.heap[0]
	n := len(e.heap) - 1
	if n > 0 {
		e.heap[0] = e.heap[n]
	}
	e.heap = e.heap[:n]
	if n > 0 {
		e.slots[e.heap[0].slot].heapIndex = 0
		e.siftDown(0)
	}
	return top
}

// removeAt deletes the entry at heap index i (cancellation).
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if i == n {
		return
	}
	e.heap[i] = last
	e.slots[last.slot].heapIndex = int32(i)
	e.siftUp(i)
	e.siftDown(int(e.slots[last.slot].heapIndex))
}

// dispatch fires one popped calendar entry. The slot is released before the
// callback runs so the callback's own scheduling can reuse it immediately.
func (e *Engine) dispatch(ev event) {
	s := &e.slots[ev.slot]
	h, fn, arg := s.h, s.fn, s.arg
	e.release(ev.slot)
	e.now = ev.at
	e.executed++
	if h != nil {
		h.Fire(e, arg)
	} else {
		fn()
	}
}

// Step dispatches the single earliest event. It reports false when the
// calendar is empty. Like RunUntil it panics on re-entrant invocation
// (calling Step from inside an event callback would corrupt dispatch
// order).
func (e *Engine) Step() bool {
	if e.running {
		panic("sim: re-entrant Step")
	}
	if len(e.heap) == 0 {
		return false
	}
	e.running = true
	defer func() { e.running = false }()
	e.dispatch(e.popMin())
	return true
}

// Run dispatches events until the calendar drains. It panics on re-entrant
// invocation (calling Run from inside an event callback).
func (e *Engine) Run() {
	e.RunUntil(MaxTime)
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to min(deadline, time of last event). Events scheduled beyond the deadline
// stay in the calendar.
func (e *Engine) RunUntil(deadline Time) {
	if e.multi != nil {
		panic("sim: domain of a MultiEngine; use MultiEngine.Run")
	}
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.heap) > 0 {
		if e.heap[0].at > deadline {
			break
		}
		e.dispatch(e.popMin())
	}
	if deadline != MaxTime && deadline > e.now {
		e.now = deadline
	}
}

// runBound dispatches every event strictly before bound — one domain's
// share of a MultiEngine barrier round. Unlike RunUntil's inclusive
// deadline, the bound is exclusive: events exactly at the bound may still
// be preempted by a cross-domain arrival at the same timestamp with a
// smaller merge key, so they wait for the next round. The clock is left at
// the last executed event, not advanced to the bound, because the next
// round's window is computed from real event times.
func (e *Engine) runBound(bound Time) {
	if e.running {
		panic("sim: re-entrant round execution")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.heap) > 0 && e.heap[0].at < bound {
		e.dispatch(e.popMin())
	}
}

// Advance moves the clock forward by d without dispatching events. It is
// intended for driving the engine from tests and from analytic fast-paths
// that account for long busy periods without per-cycle events.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic("sim: negative advance")
	}
	target := e.now + d
	if len(e.heap) > 0 && e.heap[0].at < target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event scheduled at %v", d, e.heap[0].at))
	}
	e.now = target
}
