package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/accel"
	"repro/internal/sim"
)

// StatEntry is one named counter in a system snapshot.
type StatEntry struct {
	Name  string
	Value string
}

// Snapshot harvests the observable state of every simulated component —
// the gem5-style statistics dump of a run: link traffic and utilisation,
// queueing delays, cache behaviour, storage traffic split by interface,
// fabric busy time, and the GAM's control-plane counters.
func (s *System) Snapshot() []StatEntry {
	var out []StatEntry
	add := func(name, format string, args ...any) {
		out = append(out, StatEntry{Name: name, Value: fmt.Sprintf(format, args...)})
	}
	p := s.plat

	add("sim.now", "%v", s.eng.Now())
	add("sim.events", "%d", s.eng.Executed())

	// GAM.
	g := s.gam.Stats()
	add("gam.jobs_submitted", "%d", g.JobsSubmitted)
	add("gam.jobs_completed", "%d", g.JobsCompleted)
	add("gam.tasks_dispatched", "%d", g.TasksDispatched)
	add("gam.command_packets", "%d", g.CommandPackets)
	add("gam.status_polls", "%d", g.StatusPolls)
	add("gam.transfers", "%d", g.Transfers)
	add("gam.interrupts", "%d", g.Interrupts)

	// Shared resources: every connection, stream buffer, request queue and
	// outstanding-ops window registered on the engine, walked in sorted
	// name order. The central registry is the single source of truth for
	// contention statistics — component packages no longer export bespoke
	// counters into the snapshot. On a shared-engine node only this node's
	// (prefix-scoped) resources are reported; sibling nodes and
	// cluster-level links belong to their own snapshots.
	s.eng.Stats().Walk(func(name string, res sim.Resource) {
		if s.prefix != "" && !strings.HasPrefix(name, s.prefix) {
			return
		}
		st := res.ResourceStats()
		switch st.Kind {
		case sim.KindConnection:
			add(name+".bytes", "%d", st.Bytes)
			if st.Ops > 0 {
				add(name+".busy", "%v", st.Busy)
				add(name+".queued_delay", "%v", st.Wait)
				add(name+".util", "%.3f", st.Utilization)
			}
		case sim.KindPort:
			if st.Ops == 0 {
				return
			}
			add(name+".items", "%d", st.Ops)
			add(name+".wait", "%v", st.Wait)
			add(name+".stalls", "%d", st.Stalls)
			add(name+".max_occ", "%d", st.MaxOccupancy)
		case sim.KindQueue:
			if st.Ops == 0 && st.Stalls == 0 {
				return
			}
			add(name+".served", "%d", st.Ops)
			add(name+".wait", "%v", st.Wait)
			add(name+".stalls", "%d", st.Stalls)
			add(name+".max_occ", "%d", st.MaxOccupancy)
		case sim.KindWindow:
			if st.Ops == 0 {
				return
			}
			add(name+".admitted", "%d", st.Ops)
			add(name+".wait", "%v", st.Wait)
			add(name+".stalls", "%d", st.Stalls)
			add(name+".max_occ", "%d", st.MaxOccupancy)
		}
	})

	// LLC.
	cs := p.LLC.Stats()
	add("llc.reads", "%d", cs.Reads)
	add("llc.writes", "%d", cs.Writes)
	add("llc.hit_rate", "%.3f", p.LLC.HitRate())
	add("llc.writebacks", "%d", cs.WriteBacks)

	// Storage device counters (per-interface traffic split; the host PCIe
	// link itself is covered by the registry walk above as
	// "ssd.host_link").
	for i := 0; i < p.Storage.Len(); i++ {
		st := p.Storage.SSD(i).Stats()
		if st.BytesRead == 0 {
			continue
		}
		add(fmt.Sprintf("ssd%d.bytes_read", i), "%d", st.BytesRead)
		add(fmt.Sprintf("ssd%d.bytes_device", i), "%d", st.BytesDevice)
		add(fmt.Sprintf("ssd%d.bytes_host", i), "%d", st.BytesHost)
		add(fmt.Sprintf("ssd%d.pages_read", i), "%d", st.PagesRead)
	}

	// Accelerator fabrics.
	for _, level := range []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage} {
		for _, a := range s.Accelerators(level) {
			f := a.Fabric()
			if f.Tasks() == 0 {
				continue
			}
			add(fmt.Sprintf("acc.%s.tasks", a.Name()), "%d", f.Tasks())
			add(fmt.Sprintf("acc.%s.busy", a.Name()), "%v", f.Busy())
			if now := s.eng.Now(); now > 0 {
				add(fmt.Sprintf("acc.%s.util", a.Name()), "%.3f",
					float64(f.Busy())/float64(now))
			}
			add(fmt.Sprintf("acc.%s.reconfigs", a.Name()), "%d", f.Reconfigs())
		}
	}

	// Energy.
	add("energy.total_J", "%.3f", s.meter.Total())
	add("energy.movement_share", "%.3f", s.meter.MovementShare())
	return out
}

// WriteSnapshot renders the snapshot as sorted name/value lines.
func (s *System) WriteSnapshot(w io.Writer) error {
	entries := s.Snapshot()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	width := 0
	for _, e := range entries {
		if len(e.Name) > width {
			width = len(e.Name)
		}
	}
	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, e.Name, e.Value); err != nil {
			return err
		}
	}
	return nil
}

// Utilization reports an accelerator level's mean fabric utilisation over
// the run so far.
func (s *System) Utilization(l accel.Level) float64 {
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	accs := s.Accelerators(l)
	if len(accs) == 0 {
		return 0
	}
	var busy sim.Time
	for _, a := range accs {
		busy += a.Fabric().Busy()
	}
	return float64(busy) / float64(now) / float64(len(accs))
}
