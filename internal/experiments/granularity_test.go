package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestAblationGranularity(t *testing.T) {
	r, err := AblationGranularity(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("%d cells", len(r.Cells))
	}
	byTasks := map[int]*GranularityCell{}
	for _, c := range r.Cells {
		byTasks[c.TasksPerStage] = c
	}
	// Control-plane traffic grows with task count.
	if byTasks[256].ControlPlane <= byTasks[4].ControlPlane {
		t.Errorf("256-task control traffic (%d) not above 4-task (%d)",
			byTasks[256].ControlPlane, byTasks[4].ControlPlane)
	}
	// The extreme decomposition must not be the best choice: overheads
	// take their bite (§II-D's "large enough to amortize").
	best := r.Best()
	if best.TasksPerStage == 256 {
		t.Errorf("finest granularity won (%d tasks); overheads not modelled?", best.TasksPerStage)
	}
	// Everything still completes with useful throughput.
	for _, c := range r.Cells {
		if c.Throughput <= 0 {
			t.Errorf("%d tasks: throughput %v", c.TasksPerStage, c.Throughput)
		}
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "Tasks/stage") {
		t.Error("table malformed")
	}
}
