package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSkewExperiment(t *testing.T) {
	r, err := SkewExperiment(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("%d cells", len(r.Cells))
	}
	byKey := map[string]*SkewCell{}
	for _, c := range r.Cells {
		byKey[c.Placement.String()+report0(c.Zipf)] = c
	}
	// Under heavy skew, naive placement must lose throughput vs balanced.
	contHot := byKey["contiguous1.2"]
	rrHot := byKey["round-robin1.2"]
	if contHot.Throughput >= rrHot.Throughput {
		t.Errorf("contiguous placement under skew (%.2f b/s) not below round-robin (%.2f b/s)",
			contHot.Throughput, rrHot.Throughput)
	}
	// Uniform popularity: placement is irrelevant.
	contU := byKey["contiguous0.0"]
	rrU := byKey["round-robin0.0"]
	ratio := contU.Throughput / rrU.Throughput
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("uniform-popularity throughputs differ: %.3f", ratio)
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
}

func report0(v float64) string {
	if v == 0 {
		return "0.0"
	}
	if v == 0.8 {
		return "0.8"
	}
	return "1.2"
}
