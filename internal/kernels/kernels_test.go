package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestGeMMKnownResult(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := GeMM(a, b)
	want := [][]float32{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestGeMMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(5, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := GeMM(a, id)
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatalf("A×I != A at %d", i)
		}
	}
}

func TestGeMMShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch accepted")
		}
	}()
	GeMM(NewMatrix(2, 3), NewMatrix(2, 3))
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ within float tolerance.
func TestGeMMTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		a, b := NewMatrix(m, k), NewMatrix(k, n)
		for i := range a.Data {
			a.Data[i] = rng.Float32() - 0.5
		}
		for i := range b.Data {
			b.Data[i] = rng.Float32() - 0.5
		}
		left := GeMM(a, b).Transpose()
		right := GeMM(b.Transpose(), a.Transpose())
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatVecMatchesGeMM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(4, 6)
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	x := make([]float32, 6)
	for i := range x {
		x[i] = rng.Float32()
	}
	y := MatVec(m, x)
	xm := NewMatrix(6, 1)
	copy(xm.Data, x)
	ym := GeMM(m, xm)
	for i := range y {
		if !almostEq(y[i], ym.At(i, 0), 1e-5) {
			t.Fatalf("MatVec[%d] = %v, GeMM gives %v", i, y[i], ym.At(i, 0))
		}
	}
}

func TestGeMMFLOPs(t *testing.T) {
	if got := GeMMFLOPs(16, 96, 1000); got != 2*16*96*1000 {
		t.Errorf("GeMMFLOPs = %v", got)
	}
}

func TestSquaredL2(t *testing.T) {
	p := []float32{1, 2, 3}
	q := []float32{4, 6, 3}
	if d := SquaredL2(p, q); d != 25 {
		t.Errorf("SquaredL2 = %v, want 25", d)
	}
	if d := SquaredL2(p, p); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

// Property: the Eq. 1 decomposition ‖q‖²+‖c‖²−2⟨q,c⟩ equals the direct
// Eq. 2 computation.
func TestEq1DecompositionMatchesEq2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const B, D, M = 3, 8, 5
		queries := NewMatrix(B, D)
		for i := range queries.Data {
			queries.Data[i] = rng.Float32() - 0.5
		}
		centroids := NewMatrix(M, D)
		for i := range centroids.Data {
			centroids.Data[i] = rng.Float32() - 0.5
		}
		norms := make([]float32, M)
		for m := 0; m < M; m++ {
			norms[m] = SquaredNorm(centroids.Row(m))
		}
		dists := BatchDistances(queries, centroids.Transpose(), norms)
		for b := 0; b < B; b++ {
			for m := 0; m < M; m++ {
				direct := SquaredL2(queries.Row(b), centroids.Row(m))
				if !almostEq(dists.At(b, m), direct, 1e-4) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopKSelectsSmallest(t *testing.T) {
	sel := NewTopK(3)
	dists := []float32{5, 1, 9, 3, 7, 2, 8}
	for i, d := range dists {
		sel.Offer(i, d)
	}
	res := sel.Results()
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	wantIDs := []int{1, 5, 3} // dists 1, 2, 3
	for i, want := range wantIDs {
		if res[i].ID != want {
			t.Errorf("result[%d] = %+v, want ID %d", i, res[i], want)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	sel := NewTopK(10)
	sel.Offer(0, 1)
	sel.Offer(1, 0.5)
	res := sel.Results()
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 0 {
		t.Errorf("results = %v", res)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	a := NewTopK(2)
	for _, id := range []int{5, 3, 9, 1} {
		a.Offer(id, 1.0)
	}
	res := a.Results()
	if res[0].ID != 1 || res[1].ID != 3 {
		t.Errorf("tie-break results = %v, want IDs 1,3", res)
	}
}

func TestTopKMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	all := NewTopK(10)
	parts := []*TopK{NewTopK(10), NewTopK(10), NewTopK(10)}
	for i := 0; i < 300; i++ {
		d := rng.Float32()
		all.Offer(i, d)
		parts[i%3].Offer(i, d)
	}
	merged := NewTopK(10)
	for _, p := range parts {
		merged.Merge(p)
	}
	a, b := all.Results(), merged.Results()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("merged[%d] = %+v, want %+v", i, b[i], a[i])
		}
	}
}

// Property: TopK(k) over any stream returns exactly the k smallest
// (id, dist) pairs a full sort would produce.
func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed int64, kSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kSeed%10)
		n := 1 + rng.Intn(100)
		sel := NewTopK(k)
		type pair struct {
			id int
			d  float32
		}
		items := make([]pair, n)
		for i := range items {
			items[i] = pair{i, float32(rng.Intn(20))} // many ties
			sel.Offer(items[i].id, items[i].d)
		}
		// Reference: full selection sort of all items.
		ref := make([]pair, len(items))
		copy(ref, items)
		for i := range ref {
			for j := i + 1; j < len(ref); j++ {
				if ref[j].d < ref[i].d || (ref[j].d == ref[i].d && ref[j].id < ref[i].id) {
					ref[i], ref[j] = ref[j], ref[i]
				}
			}
		}
		want := k
		if n < k {
			want = n
		}
		got := sel.Results()
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i].ID != ref[i].id || got[i].Dist != ref[i].d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceKNNAndRecall(t *testing.T) {
	db := FromRows([][]float32{
		{0, 0}, {1, 0}, {0, 1}, {5, 5}, {6, 6},
	})
	q := []float32{0.1, 0.1}
	nn := BruteForceKNN(db, q, 3)
	if nn[0].ID != 0 {
		t.Errorf("nearest = %d, want 0", nn[0].ID)
	}
	ids := map[int]bool{nn[0].ID: true, nn[1].ID: true, nn[2].ID: true}
	if !ids[0] || !ids[1] || !ids[2] {
		t.Errorf("3-NN = %v, want {0,1,2}", nn)
	}
	if r := RecallAtK(nn, nn); r != 1.0 {
		t.Errorf("self recall = %v", r)
	}
	partial := []Neighbor{{ID: 0}, {ID: 99}}
	if r := RecallAtK(partial, nn); math.Abs(r-1.0/3.0) > 1e-9 {
		t.Errorf("recall = %v, want 1/3", r)
	}
	if !math.IsNaN(RecallAtK(nn, nil)) {
		t.Error("recall with empty truth should be NaN")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := NewTensor3(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	p := NewConvParams(1, 1, 3)
	p.Weights[4] = 1 // centre tap: identity
	out := Conv2D(in, p)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv changed data at %d: %v != %v", i, out.Data[i], in.Data[i])
		}
	}
}

func TestConv2DSumKernelInterior(t *testing.T) {
	in := NewTensor3(1, 5, 5)
	for i := range in.Data {
		in.Data[i] = 1
	}
	p := NewConvParams(1, 1, 3)
	for i := range p.Weights {
		p.Weights[i] = 1
	}
	p.Bias[0] = 0.5
	out := Conv2D(in, p)
	// Interior: 9 ones + bias.
	if got := out.At(0, 2, 2); got != 9.5 {
		t.Errorf("interior = %v, want 9.5", got)
	}
	// Corner: 4 ones + bias (zero padding).
	if got := out.At(0, 0, 0); got != 4.5 {
		t.Errorf("corner = %v, want 4.5", got)
	}
}

func TestConv2DMultiChannel(t *testing.T) {
	in := NewTensor3(2, 3, 3)
	for i := range in.Data {
		in.Data[i] = 1
	}
	p := NewConvParams(3, 2, 1) // 1×1 conv: channel mixing only
	for o := 0; o < 3; o++ {
		for c := 0; c < 2; c++ {
			p.Weights[o*2+c] = float32(o + 1)
		}
	}
	out := Conv2D(in, p)
	for o := 0; o < 3; o++ {
		want := float32(2 * (o + 1))
		if got := out.At(o, 1, 1); got != want {
			t.Errorf("out ch %d = %v, want %v", o, got, want)
		}
	}
}

func TestReLU(t *testing.T) {
	tns := NewTensor3(1, 1, 4)
	copy(tns.Data, []float32{-1, 2, -3, 4})
	ReLU(tns)
	want := []float32{0, 2, 0, 4}
	for i := range want {
		if tns.Data[i] != want[i] {
			t.Errorf("ReLU[%d] = %v, want %v", i, tns.Data[i], want[i])
		}
	}
}

func TestMaxPool2x2(t *testing.T) {
	in := NewTensor3(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := MaxPool2x2(in)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("pooled shape = %dx%d, want 2x2", out.H, out.W)
	}
	// Window maxima of row-major 0..15.
	want := []float32{5, 7, 13, 15}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("pool[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestFullyConnected(t *testing.T) {
	w := FromRows([][]float32{{1, 2}, {3, 4}})
	y := FullyConnected([]float32{1, 1}, w, []float32{10, 20})
	if y[0] != 13 || y[1] != 27 {
		t.Errorf("FC = %v, want [13 27]", y)
	}
}

func TestPCAProject(t *testing.T) {
	comp := FromRows([][]float32{{1, 0, 0}, {0, 0, 1}})
	got := PCAProject([]float32{3, 9, 5}, []float32{1, 1, 1}, comp)
	if got[0] != 2 || got[1] != 4 {
		t.Errorf("PCA = %v, want [2 4]", got)
	}
}

func TestL2Normalize(t *testing.T) {
	v := L2Normalize([]float32{3, 4})
	if !almostEq(v[0], 0.6, 1e-6) || !almostEq(v[1], 0.8, 1e-6) {
		t.Errorf("normalised = %v", v)
	}
	z := L2Normalize([]float32{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector changed")
	}
	if n := SquaredNorm(v); !almostEq(n, 1, 1e-6) {
		t.Errorf("norm after normalise = %v", n)
	}
}

func TestConv2DMACs(t *testing.T) {
	// VGG conv1_1: 224×224×3→64, 3×3 = 86.7 MMACs.
	got := Conv2DMACs(224, 224, 3, 64, 3)
	want := 224.0 * 224 * 3 * 64 * 9
	if got != want {
		t.Errorf("Conv2DMACs = %v, want %v", got, want)
	}
}
