package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// SkewCell is one (zipf exponent, placement) measurement.
type SkewCell struct {
	Zipf       float64
	Placement  workload.Placement
	Imbalance  float64
	Throughput float64
	Latency    sim.Time
}

// SkewResult extends the evaluation with query skew: the paper's rerank
// stage assumes probed clusters spread evenly over the SSDs, but popular
// clusters concentrate load on whichever device holds them. The experiment
// runs the ReACH pipeline with per-instance rerank bytes proportional to
// each SSD's share of a Zipf-skewed cluster popularity profile, under
// naive contiguous placement and popularity-aware round-robin placement.
type SkewResult struct {
	Cells []*SkewCell
}

// skewAxes enumerates the sweep's (zipf exponent, placement) grid in row
// order.
func skewAxes() (zipfs []float64, placements []workload.Placement) {
	return []float64{0, 0.8, 1.2},
		[]workload.Placement{workload.PlaceContiguous, workload.PlaceRoundRobin}
}

// skewSpecs is the run matrix: the ReACH pipeline once per grid cell, with
// rerank bytes split per the cell's load shares instead of evenly.
func skewSpecs(m workload.Model) (specs []RunSpec, loads [][]float64) {
	const instances = 4
	zipfs, placements := skewAxes()
	for _, s := range zipfs {
		for _, p := range placements {
			load := workload.ShardLoad(workload.ZipfWeights(m.Centroids, s), instances, p)
			loads = append(loads, load)
			specs = append(specs, RunSpec{
				Name:      fmt.Sprintf("skew zipf=%.1f %v", s, p),
				Model:     m,
				Mapping:   ReACHMapping(),
				Instances: instances,
				Batches:   6,
				BuildJob: func(sys *core.System, id int) (*core.Job, error) {
					return buildSkewedJob(sys, id, m, load)
				},
			})
		}
	}
	return specs, loads
}

// SkewExperiment runs the sweep.
func SkewExperiment(m workload.Model, opts ...Option) (*SkewResult, error) {
	specs, loads := skewSpecs(m)
	runs, err := RunSpecs(specs, opts...)
	if err != nil {
		return nil, err
	}
	res := &SkewResult{}
	zipfs, placements := skewAxes()
	i := 0
	for _, s := range zipfs {
		for _, p := range placements {
			res.Cells = append(res.Cells, &SkewCell{
				Zipf:       s,
				Placement:  p,
				Imbalance:  workload.ImbalanceFactor(loads[i]),
				Throughput: runs[i].ThroughputBatchesPerSec(),
				Latency:    runs[i].Latency,
			})
			i++
		}
	}
	return res, nil
}

// buildSkewedJob is BuildPipelineJob with rerank bytes split per the load
// shares instead of evenly.
func buildSkewedJob(sys *core.System, id int, m workload.Model, shares []float64) (*core.Job, error) {
	reg := sys.Registry()
	cnn, _ := reg.Lookup("CNN-VU9P")
	gemm, _ := reg.Lookup("GEMM-ZCU9")
	knn, _ := reg.Lookup("KNN-ZCU9")

	j := core.NewJob(id)
	fe := j.AddTask(accel.Task{
		Name: "fe", Stage: StageFE, Kernel: cnn,
		MACs: m.FeatureMACsPerBatch(), Source: accel.SourceSPM,
	}, accel.OnChip)
	fe.OutBytes = m.BatchFeatureBytes()

	var slNodes []*core.TaskNode
	for i := range shares {
		n := j.AddTask(accel.Task{
			Name: fmt.Sprintf("sl%d", i), Stage: StageSL, Kernel: gemm,
			MACs:   m.ShortlistMACsPerBatch() / float64(len(shares)),
			Bytes:  m.ShortlistScanBytesPerBatch() / int64(len(shares)),
			Source: accel.SourceLocalDIMM,
		}, accel.NearMemory, fe)
		n.Pin = i
		n.OutBytes = m.ShortlistResultBytesPerBatch() / int64(len(shares))
		slNodes = append(slNodes, n)
	}
	for i, share := range shares {
		n := j.AddTask(accel.Task{
			Name: fmt.Sprintf("rr%d", i), Stage: StageRR, Kernel: knn,
			MACs:   m.RerankMACsPerBatch() * share,
			Bytes:  int64(float64(m.RerankScanBytesPerBatch()) * share),
			Source: accel.SourceSSD, Pattern: storage.RandomPages,
		}, accel.NearStorage, slNodes...)
		n.Pin = i
		n.OutBytes = m.ResultBytesPerBatch() / int64(len(shares))
		n.SinkToHost = true
	}
	return j, nil
}

// Table renders the sweep.
func (r *SkewResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension — query skew vs cluster placement (ReACH mapping, 4 SSDs)",
		Columns: []string{"Zipf s", "Placement", "Imbalance x", "Batches/s", "Latency ms"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			report.F(c.Zipf, 1),
			c.Placement.String(),
			report.F(c.Imbalance, 2),
			report.F(c.Throughput, 2),
			report.F(c.Latency.Milliseconds(), 1),
		)
	}
	t.AddNote("skewed popularity concentrates rerank load on the SSD holding hot clusters; popularity-aware placement restores balance")
	return t
}
