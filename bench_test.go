// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation section. Each benchmark runs
// the corresponding experiment end to end on the simulator and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. The rendered tables themselves come
// from `go run ./cmd/reachsim -exp all`.
package repro

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func BenchmarkTableI(b *testing.B) {
	m := workload.DefaultModel()
	for i := 0; i < b.N; i++ {
		rows := workload.TableI(m)
		if len(rows) != 4 {
			b.Fatal("Table I wrong shape")
		}
	}
	b.ReportMetric(float64(m.FeatureStoreBytes())/1e9, "featurestore_GB")
	b.ReportMetric(float64(m.CentroidStoreBytes())/1e9, "centroids_GB")
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableII(config.Default())
		if len(t.Rows) == 0 {
			b.Fatal("empty Table II")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableIII()
		if len(t.Rows) != 6 {
			b.Fatal("Table III wrong shape")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableIV(energy.DefaultCosts())
		if len(t.Rows) == 0 {
			b.Fatal("empty Table IV")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	m := workload.DefaultModel()
	var movement, rerank float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(m)
		if err != nil {
			b.Fatal(err)
		}
		movement = r.MovementShare
		rerank = r.StageMovement[experiments.StageRR]
	}
	b.ReportMetric(movement*100, "movement_%")
	b.ReportMetric(rerank*100, "rerank_movement_%")
}

func benchStageSweep(b *testing.B, fig func(workload.Model, ...experiments.Option) (*experiments.StageSweep, error)) *experiments.StageSweep {
	b.Helper()
	m := workload.DefaultModel()
	var sweep *experiments.StageSweep
	for i := 0; i < b.N; i++ {
		s, err := fig(m)
		if err != nil {
			b.Fatal(err)
		}
		sweep = s
	}
	return sweep
}

func BenchmarkFig9(b *testing.B) {
	s := benchStageSweep(b, experiments.Fig9)
	b.ReportMetric(s.NormRuntime(accel.NearMemory, 1), "NM1_runtime_x")
	b.ReportMetric(s.NormRuntime(accel.NearMemory, 16), "NM16_runtime_x")
	b.ReportMetric(s.NormEnergy(accel.NearMemory, 4), "NM4_energy_x")
}

func BenchmarkFig10(b *testing.B) {
	s := benchStageSweep(b, experiments.Fig10)
	b.ReportMetric(s.NormRuntime(accel.NearMemory, 1), "NM1_runtime_x")
	b.ReportMetric(s.NormRuntime(accel.NearMemory, 2), "NM2_runtime_x")
	b.ReportMetric(s.NormEnergy(accel.NearMemory, 4), "NM4_energy_x")
}

func BenchmarkFig11(b *testing.B) {
	s := benchStageSweep(b, experiments.Fig11)
	b.ReportMetric(s.NormRuntime(accel.NearMemory, 16), "NM16_runtime_x")
	b.ReportMetric(s.NormRuntime(accel.NearStorage, 16), "NS16_runtime_x")
	b.ReportMetric(s.NormEnergy(accel.NearStorage, 4), "NS4_energy_x")
}

func BenchmarkFig12(b *testing.B) {
	m := workload.DefaultModel()
	var nm4, ns4 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(m)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			norm := float64(c.Runtime) / float64(r.Baseline.Runtime)
			if c.Instances == 4 {
				switch c.Level {
				case accel.NearMemory:
					nm4 = norm
				case accel.NearStorage:
					ns4 = norm
				}
			}
		}
	}
	b.ReportMetric(nm4, "NM4_runtime_x")
	b.ReportMetric(ns4, "NS4_runtime_x")
}

func BenchmarkFig13(b *testing.B) {
	m := workload.DefaultModel()
	var tput, lat, er float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(m)
		if err != nil {
			b.Fatal(err)
		}
		idx := r.ReACH()
		tput = r.ThroughputGain(idx)
		lat = r.LatencyGain(idx)
		er = r.EnergyReduction(idx)
	}
	b.ReportMetric(tput, "throughput_x(paper:4.5)")
	b.ReportMetric(lat, "latency_x(paper:2.2)")
	b.ReportMetric(er*100, "energy_reduction_%(paper:52)")
}

func BenchmarkAblationGAM(b *testing.B) {
	m := workload.DefaultModel()
	var pipelineGain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGAM(m)
		if err != nil {
			b.Fatal(err)
		}
		base := r.Cells[0]
		for _, c := range r.Cells {
			if strings.HasPrefix(c.Variant.Name, "no cross-job") {
				pipelineGain = base.Throughput / c.Throughput
			}
		}
	}
	b.ReportMetric(pipelineGain, "pipelining_gain_x")
}

func BenchmarkAblationMapping(b *testing.B) {
	m := workload.DefaultModel()
	var bestIsReACH float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMapping(m)
		if err != nil {
			b.Fatal(err)
		}
		if r.Best().Mapping == experiments.ReACHMapping() {
			bestIsReACH = 1
		}
	}
	b.ReportMetric(bestIsReACH, "reach_mapping_ranks_first")
}

func BenchmarkMotivation(b *testing.B) {
	var exactRecall, pqRecall float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Motivation()
		if err != nil {
			b.Fatal(err)
		}
		exactRecall = r.Rows[0].Recall
		pqRecall = r.Rows[1].Recall
	}
	b.ReportMetric(exactRecall, "exact_recall@10")
	b.ReportMetric(pqRecall, "pq8B_recall@10")
}

func BenchmarkLoadSweep(b *testing.B) {
	m := workload.DefaultModel()
	var ratio float64
	for i := 0; i < b.N; i++ {
		onchip, reach, err := experiments.LoadSweepBoth(m)
		if err != nil {
			b.Fatal(err)
		}
		const bound = 2 * sim.Second
		ratio = reach.SaturationRate(bound) / onchip.SaturationRate(bound)
	}
	b.ReportMetric(ratio, "sustainable_rate_x")
}

func BenchmarkSkew(b *testing.B) {
	m := workload.DefaultModel()
	var worst, fixed float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.SkewExperiment(m)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Zipf == 1.2 {
				if c.Placement.String() == "contiguous" {
					worst = c.Throughput
				} else {
					fixed = c.Throughput
				}
			}
		}
	}
	b.ReportMetric(worst, "skewed_naive_bps")
	b.ReportMetric(fixed, "skewed_balanced_bps")
}

func BenchmarkReverseLookup(b *testing.B) {
	m := workload.DefaultModel()
	var cost float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.ReverseLookup(m)
		if err != nil {
			b.Fatal(err)
		}
		cost = r.ThroughputCost()
	}
	b.ReportMetric(cost*100, "throughput_cost_%")
}

// BenchmarkClusterScatterGather runs the full cluster scale-out sweep
// (2/4 nodes x hash/rr/p2c x three Poisson rates) and reports the headline
// routing-policy payoff: hash p99 over p2c p99 at the largest swept
// deployment and rate.
func BenchmarkClusterScatterGather(b *testing.B) {
	m := workload.DefaultModel()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.DefaultClusterSweep(m)
		if err != nil {
			b.Fatal(err)
		}
		nodes := experiments.DefaultClusterNodeCounts()
		rates := experiments.DefaultClusterRates()
		maxNodes, maxRate := nodes[len(nodes)-1], rates[len(rates)-1]
		hash := res.Point(maxNodes, "hash", maxRate)
		p2c := res.Point(maxNodes, "p2c", maxRate)
		if hash == nil || p2c == nil || p2c.P99 <= 0 {
			b.Fatal("sweep missing hash/p2c cells at peak")
		}
		ratio = float64(hash.P99) / float64(p2c.P99)
	}
	b.ReportMetric(ratio, "hash_over_p2c_p99_x")
}

// BenchmarkClusterCachedScatterGather runs the front-end cache sweep
// (off/8/32 entries x two TTLs x two skews x two Poisson rates) and
// reports the headline caching payoff: cache-off p99 over the best cached
// p99 at the heaviest (skew, rate) corner, plus that cell's hit rate.
func BenchmarkClusterCachedScatterGather(b *testing.B) {
	m := workload.DefaultModel()
	var ratio, hitRate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.DefaultCacheSweep(m)
		if err != nil {
			b.Fatal(err)
		}
		skews := experiments.DefaultCacheSkews()
		rates := experiments.DefaultCacheRates()
		maxSkew, maxRate := skews[len(skews)-1], rates[len(rates)-1]
		off := res.Point(0, 0, maxSkew, maxRate)
		var best *experiments.CachePoint
		for _, p := range res.Points {
			if p.Entries == 0 || p.Skew != maxSkew || p.OfferedQPS != maxRate {
				continue
			}
			if best == nil || p.P99 < best.P99 {
				best = p
			}
		}
		if off == nil || best == nil || best.P99 <= 0 {
			b.Fatal("sweep missing off/cached cells at peak")
		}
		ratio = float64(off.P99) / float64(best.P99)
		hitRate = best.Cache.HitRate
	}
	b.ReportMetric(ratio, "off_over_cached_p99_x")
	b.ReportMetric(hitRate*100, "best_hit_rate_%")
}

// runFullEvaluation executes every simulator-backed experiment once with at
// most `workers` simulations in flight across all of them — the same shape
// as `reachsim -exp all -j workers`.
func runFullEvaluation(workers int) error {
	m := workload.DefaultModel()
	pool := runner.NewPool(workers)
	opt := experiments.WithPool(pool)
	entries := []func() error{
		func() error { _, err := experiments.Fig8(m, opt); return err },
		func() error { _, err := experiments.Fig9(m, opt); return err },
		func() error { _, err := experiments.Fig10(m, opt); return err },
		func() error { _, err := experiments.Fig11(m, opt); return err },
		func() error { _, err := experiments.Fig12(m, opt); return err },
		func() error { _, err := experiments.Fig13(m, opt); return err },
		func() error { _, err := experiments.AblationGAM(m, opt); return err },
		func() error { _, err := experiments.AblationMapping(m, opt); return err },
		func() error { _, err := experiments.AblationGranularity(m, opt); return err },
		func() error { _, err := experiments.AblationNSBuffer(m, opt); return err },
		func() error { _, _, err := experiments.LoadSweepBoth(m, opt); return err },
		func() error { _, err := experiments.SkewExperiment(m, opt); return err },
		func() error { _, err := experiments.ReverseLookup(m, opt); return err },
		func() error { _, err := experiments.MultiTenant(m, opt); return err },
	}
	// Unbounded outer fan-out: only leaf simulations hold pool slots.
	_, err := runner.Map(context.Background(), runner.Options{Workers: len(entries)}, entries,
		func(_ context.Context, _ int, fn func() error) (struct{}, error) {
			return struct{}{}, fn()
		})
	return err
}

// BenchmarkFullEvaluation measures the whole evaluation's wall clock
// serially (-j 1) and on the default pool (-j GOMAXPROCS) — the headline
// numbers for the parallel runner.
func BenchmarkFullEvaluation(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := runFullEvaluation(bc.workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
