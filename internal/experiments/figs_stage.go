package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StageResult is one cell of the Figs. 9-11 sweeps.
type StageResult struct {
	Level     accel.Level
	Instances int
	Runtime   sim.Time
	EnergyJ   float64
}

// StageSpec declares a single pipeline stage run in isolation at one
// level with n instances, background charged over the stage runtime.
func StageSpec(stage string, l accel.Level, n int, m workload.Model) (RunSpec, error) {
	var cfg config.SystemConfig
	switch l {
	case accel.OnChip:
		cfg = config.Default().WithInstances(1, 0, 0)
	case accel.NearMemory:
		cfg = config.Default().WithInstances(0, n, 0)
	case accel.NearStorage:
		cfg = config.Default().WithInstances(0, 0, n)
	default:
		return RunSpec{}, fmt.Errorf("experiments: cannot run a stage on %v", l)
	}
	return RunSpec{
		Name:    fmt.Sprintf("%s@%v/%d", stage, l, n),
		Model:   m,
		Batches: 1,
		Config:  &cfg,
		BuildJob: func(sys *core.System, id int) (*core.Job, error) {
			j := core.NewJob(id)
			if _, err := addStage(sys, j, stage, l, m, nil); err != nil {
				return nil, err
			}
			return j, nil
		},
		Background:      BackgroundFirstLatency,
		BackgroundLabel: stage,
	}, nil
}

// NearMemInterleavedSpec is the shortlist stage at near-memory with the
// database interleaved across all n DIMMs instead of partitioned
// DIMM-locally: each instance finds (n-1)/n of its scan bytes on remote
// DIMMs and pulls them across the shared AIMbus. The configuration the
// bottleneck-attribution report is validated against — with the whole scan
// crossing one 12.8 GB/s bus, "mem.aimbus" must surface as the
// top-pressure resource.
func NearMemInterleavedSpec(n int, m workload.Model) (RunSpec, error) {
	spec, err := StageSpec(StageSL, accel.NearMemory, n, m)
	if err != nil {
		return RunSpec{}, err
	}
	if n < 2 {
		return RunSpec{}, fmt.Errorf("experiments: interleaving needs >= 2 DIMMs, got %d", n)
	}
	spec.Name = fmt.Sprintf("%s@%v/%d-interleaved", StageSL, accel.NearMemory, n)
	inner := spec.BuildJob
	spec.BuildJob = func(sys *core.System, id int) (*core.Job, error) {
		j, err := inner(sys, id)
		if err != nil {
			return nil, err
		}
		rf := float64(n-1) / float64(n)
		for _, node := range j.Nodes {
			node.Spec.RemoteFraction = rf
		}
		return j, nil
	}
	return spec, nil
}

// stageResult reduces one isolated-stage run to a Figs. 9-11 cell.
func stageResult(l accel.Level, n int, run *RunResult) *StageResult {
	return &StageResult{
		Level:     l,
		Instances: n,
		Runtime:   run.Latency,
		EnergyJ:   run.Sys.Meter().Total(),
	}
}

// RunStage executes a single pipeline stage in isolation at one level with
// n instances and reports its runtime and energy (background included over
// the stage runtime).
func RunStage(stage string, l accel.Level, n int, m workload.Model) (*StageResult, error) {
	spec, err := StageSpec(stage, l, n, m)
	if err != nil {
		return nil, err
	}
	run, err := spec.Run()
	if err != nil {
		return nil, err
	}
	return stageResult(l, n, run), nil
}

// StageSweep holds a Figs. 9-11 style sweep: near-memory and near-storage
// results over instance counts, normalised to the single on-chip
// accelerator.
type StageSweep struct {
	Stage    string
	Counts   []int
	OnChip   *StageResult
	NearMem  map[int]*StageResult
	NearStor map[int]*StageResult
}

// NormRuntime reports runtime(level, n) / runtime(on-chip).
func (s *StageSweep) NormRuntime(l accel.Level, n int) float64 {
	r := s.result(l, n)
	if r == nil || s.OnChip.Runtime == 0 {
		return 0
	}
	return float64(r.Runtime) / float64(s.OnChip.Runtime)
}

// NormEnergy reports energy(level, n) / energy(on-chip).
func (s *StageSweep) NormEnergy(l accel.Level, n int) float64 {
	r := s.result(l, n)
	if r == nil || s.OnChip.EnergyJ == 0 {
		return 0
	}
	return r.EnergyJ / s.OnChip.EnergyJ
}

func (s *StageSweep) result(l accel.Level, n int) *StageResult {
	switch l {
	case accel.NearMemory:
		return s.NearMem[n]
	case accel.NearStorage:
		return s.NearStor[n]
	default:
		return s.OnChip
	}
}

// SweepCounts is the instance axis of Figs. 9-11.
func SweepCounts() []int { return []int{1, 2, 4, 8, 16} }

// stageSweepSpecs builds the sweep's run matrix: the on-chip baseline
// followed by (near-memory, near-storage) pairs at each instance count.
func stageSweepSpecs(stage string, m workload.Model) ([]RunSpec, []func(*StageSweep, *RunResult), error) {
	var specs []RunSpec
	var place []func(*StageSweep, *RunResult)
	add := func(l accel.Level, n int, assign func(*StageSweep, *StageResult)) error {
		spec, err := StageSpec(stage, l, n, m)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		place = append(place, func(s *StageSweep, run *RunResult) {
			assign(s, stageResult(l, n, run))
		})
		return nil
	}
	if err := add(accel.OnChip, 1, func(s *StageSweep, r *StageResult) { s.OnChip = r }); err != nil {
		return nil, nil, err
	}
	for _, n := range SweepCounts() {
		n := n
		if err := add(accel.NearMemory, n, func(s *StageSweep, r *StageResult) { s.NearMem[n] = r }); err != nil {
			return nil, nil, err
		}
		if err := add(accel.NearStorage, n, func(s *StageSweep, r *StageResult) { s.NearStor[n] = r }); err != nil {
			return nil, nil, err
		}
	}
	return specs, place, nil
}

// RunStageSweep produces the data behind one of Figs. 9-11, running the
// eleven isolated-stage simulations in parallel.
func RunStageSweep(stage string, m workload.Model, opts ...Option) (*StageSweep, error) {
	specs, place, err := stageSweepSpecs(stage, m)
	if err != nil {
		return nil, err
	}
	runs, err := RunSpecs(specs, opts...)
	if err != nil {
		return nil, err
	}
	sweep := &StageSweep{
		Stage:    stage,
		Counts:   SweepCounts(),
		NearMem:  make(map[int]*StageResult),
		NearStor: make(map[int]*StageResult),
	}
	for i, run := range runs {
		place[i](sweep, run)
	}
	return sweep, nil
}

// Table renders the sweep in the layout of Figs. 9-11: one row per
// instance count, normalised runtime and energy for both levels.
func (s *StageSweep) Table(figure string) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("%s — %s runtime/energy vs on-chip (normalised)", figure, s.Stage),
		Columns: []string{"ACCs", "NearMem runtime", "NearMem energy",
			"NearStor runtime", "NearStor energy"},
	}
	for _, n := range s.Counts {
		t.AddRow(
			fmt.Sprintf("%d", n),
			report.F(s.NormRuntime(accel.NearMemory, n), 2),
			report.F(s.NormEnergy(accel.NearMemory, n), 2),
			report.F(s.NormRuntime(accel.NearStorage, n), 2),
			report.F(s.NormEnergy(accel.NearStorage, n), 2),
		)
	}
	t.AddNote("on-chip baseline: %.1f ms, %.2f J (normalised to 1.0)",
		s.OnChip.Runtime.Milliseconds(), s.OnChip.EnergyJ)
	return t
}

// Fig9 reproduces the feature-extraction sweep.
func Fig9(m workload.Model, opts ...Option) (*StageSweep, error) {
	return RunStageSweep(StageFE, m, opts...)
}

// Fig10 reproduces the shortlist-retrieval sweep.
func Fig10(m workload.Model, opts ...Option) (*StageSweep, error) {
	return RunStageSweep(StageSL, m, opts...)
}

// Fig11 reproduces the rerank sweep.
func Fig11(m workload.Model, opts ...Option) (*StageSweep, error) {
	return RunStageSweep(StageRR, m, opts...)
}
