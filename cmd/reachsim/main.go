// Command reachsim regenerates the tables and figures of the ReACH paper's
// evaluation section from the cycle-level simulator.
//
// Usage:
//
//	reachsim -exp fig13            # one experiment
//	reachsim -exp all              # everything
//	reachsim -exp all -j 8         # everything, 8 simulations in flight
//	reachsim -exp fig9 -csv        # CSV instead of aligned text
//	reachsim -exp taillatency      # Poisson open-loop tail-latency sweep
//	reachsim -exp clustersweep     # N-node scatter-gather scale-out sweep
//	reachsim -exp cachesweep       # front-end cache capacity × TTL × skew sweep
//	reachsim -cluster              # one 4-node cluster run, summary table
//	reachsim -cluster -nodes 8 -route hash
//	reachsim -cluster -cache 32    # same run with the front-end result cache on
//	reachsim -cluster -metrics m.csv -trace t.json   # cluster time series + Chrome trace
//	reachsim -cluster -slo 250     # rolling SLO windows against a 250 ms objective
//	reachsim -cluster -flight out -detect -arrival flash    # flight recorder: anomaly-triggered diagnostic bundle
//	reachsim -exp all -http :8080  # live inspector while experiments run
//	reachsim -list                 # list experiment ids
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/flight"
	"repro/internal/inspect"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

var experimentIDs = []string{
	"table1", "table2", "table3", "table4",
	"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"ablation-gam", "ablation-mapping", "ablation-nsbuffer", "ablation-granularity",
	"motivation", "loadsweep", "skew", "reverselookup", "multitenant", "recallsweep",
}

// extraIDs are runnable and listed but excluded from `-exp all`: the tail
// sweep's Poisson runs and the cluster scale-out don't belong to the
// paper's evaluation tables, and keeping them out preserves `-exp all`
// output byte-for-byte.
var extraIDs = []string{"cachesweep", "clustersweep", "taillatency"}

// Fixed inputs of the -cluster single run, pinned so its stdout is a
// stable golden for the CI cluster smoke.
const (
	clusterRunQueries = 32
	clusterRunQPS     = 20
	clusterRunSeed    = 1
)

// flashRunQueries/flashRunQPS replace the pinned inputs under -arrival
// flash: the detectors' trailing windows need queries before, during and
// after the burst, and the baseline must sit below the cluster's service
// capacity so the middle-third 8× burst — not the baseline — is what
// drives latency past the objective (see experiments.ArrivalFlash).
const (
	flashRunQueries = 96
	flashRunQPS     = 8
)

// defaultFlightWindowMS is the -flight-window default retention horizon.
const defaultFlightWindowMS = 1000

// defaultSLOWindowMS is the -slo-window default: wide enough that the
// pinned 32-query run still fills several windows.
const defaultSLOWindowMS = 250

// validateFlags rejects combinations the selected mode would silently
// ignore: every flag on the command line must do something. given holds
// the names of flags that were explicitly set (flag.Visit order).
func validateFlags(given map[string]bool) error {
	if given["cluster"] {
		// -cluster runs exactly one pinned deployment: the experiment
		// selection, config and sweep-concurrency knobs have nothing to
		// apply to (observability flags -metrics/-spans/-trace/-slo all do).
		for _, f := range []string{"exp", "stats", "list", "config", "benchout", "j", "qtrace", "progress"} {
			if given[f] {
				return fmt.Errorf("-%s does nothing with -cluster; drop one of them", f)
			}
		}
	} else {
		for _, f := range []string{"nodes", "route", "cache", "cache-ttl", "slo", "slo-window",
			"flight", "flight-window", "detect", "arrival"} {
			if given[f] {
				return fmt.Errorf("-%s requires -cluster", f)
			}
		}
	}
	if given["slo-window"] && !given["slo"] {
		return fmt.Errorf("-slo-window requires -slo")
	}
	if given["flight-window"] && !given["flight"] {
		return fmt.Errorf("-flight-window requires -flight")
	}
	if given["detect"] && !given["flight"] {
		return fmt.Errorf("-detect requires -flight")
	}
	if given["cache-ttl"] && !given["cache"] {
		return fmt.Errorf("-cache-ttl requires -cache")
	}
	if given["http-linger"] && !given["http"] {
		return fmt.Errorf("-http-linger requires -http")
	}
	return nil
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (see -list)")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		cfgPath   = flag.String("config", "", "optional system config JSON (defaults to Table II)")
		tracePath = flag.String("trace", "", "write a Chrome trace of a ReACH pipeline run to this file")
		stats     = flag.Bool("stats", false, "run a ReACH pipeline and dump all component statistics")
		jobs      = flag.Int("j", 0, "max simulations in flight across all experiments (0 = GOMAXPROCS)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (post-GC) to this file on exit")
		benchOut  = flag.String("benchout", "", "write a JSON wall-clock summary of the experiments to this file")
		metricsF  = flag.String("metrics", "", "sample every run's resources and write the time series here (CSV, or JSON Lines when the path ends in .jsonl); also prints per-run bottleneck-attribution tables")
		metricsIv = flag.Duration("metrics-interval", 0, "simulated-time sampling period for -metrics (default 10µs)")
		spans     = flag.Bool("spans", false, "record GAM decision spans (merged into -trace timelines and .jsonl metrics dumps)")
		progress  = flag.Bool("progress", false, "print per-run progress counters to stderr as experiments execute")
		qtraceF   = flag.String("qtrace", "", "trace every query and write per-query timelines here (interval CSV plus a *_summary.csv, or a single JSON Lines file when the path ends in .jsonl)")
		httpAddr  = flag.String("http", "", "serve a live run inspector on this address (/progress JSON, expvar at /debug/vars, pprof at /debug/pprof); implies per-query tracing")
		httpWait  = flag.Duration("http-linger", 0, "with -http, keep the inspector serving this long after the experiments finish, so scripts can scrape the final counters")
		clusterF  = flag.Bool("cluster", false, "run one sharded scatter-gather cluster deployment and print its summary table")
		nodesF    = flag.Int("nodes", 0, "with -cluster, override the node count (default 4)")
		routeF    = flag.String("route", "", "with -cluster, override the routing policy: hash, rr, p2c (default p2c)")
		pjF       = flag.Int("pj", 0, "worker goroutines per cluster simulation's event domains (0 = config default, 1 = serial); output is byte-identical at any -pj")
		cacheF    = flag.Int("cache", 0, "with -cluster, enable the front-end result cache with this many entries (0 = off, the default)")
		cacheTTLF = flag.Float64("cache-ttl", 0, "with -cluster -cache, override the cache TTL in milliseconds (0 = config default, 500)")
		sloF      = flag.Float64("slo", 0, "with -cluster, latency objective in milliseconds: track rolling sim-time windows of p50/p99/p999 and SLO burn, print the window table and serve it on -http (/progress, expvar)")
		sloWinF   = flag.Float64("slo-window", defaultSLOWindowMS, "with -cluster -slo, rolling window width in milliseconds")
		flightF   = flag.String("flight", "", "with -cluster, run the always-on flight recorder and write a diagnostic bundle directory under this path (triggered by -detect, else an end-of-run dump)")
		flightWin = flag.Float64("flight-window", defaultFlightWindowMS, "with -cluster -flight, retention window in simulated milliseconds")
		detectF   = flag.Bool("detect", false, "with -cluster -flight, arm the online anomaly detectors (SLO burn rate, queue divergence, cache collapse); the first trigger freezes the rings and the bundle captures the anomaly window")
		arrivalF  = flag.String("arrival", "", "with -cluster, arrival process: poisson (default) or flash (a seeded flash crowd — the middle third of a longer query sequence arrives 8x faster)")
	)
	flag.Parse()
	given := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { given[f.Name] = true })
	if err := validateFlags(given); err != nil {
		fatal(err)
	}

	mo := metrics.Options{Spans: *spans}
	if *metricsIv > 0 {
		mo.Interval = sim.Time(metricsIv.Nanoseconds()) * sim.Nanosecond
	}

	// Profiling wraps whichever mode runs below, so profiling the full
	// evaluation (`-exp all -cpuprofile cpu.pb.gz`) needs no custom build.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report retained heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *clusterF {
		co := clusterOptions{
			nodes:       *nodesF,
			route:       *routeF,
			pj:          *pjF,
			cache:       *cacheF,
			cacheTTL:    *cacheTTLF,
			csv:         *csvOut,
			httpAddr:    *httpAddr,
			httpWait:    *httpWait,
			metricsPath: *metricsF,
			tracePath:   *tracePath,
			sloMs:       *sloF,
			sloWindowMs: *sloWinF,
			flightDir:   *flightF,
			flightWinMs: *flightWin,
			detect:      *detectF,
			arrival:     *arrivalF,
		}
		if *metricsF != "" || *spans || *metricsIv > 0 {
			co.metrics = &mo
		}
		if err := runCluster(os.Stdout, co); err != nil {
			fatal(err)
		}
		return
	}

	if *stats {
		run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 4, 8)
		if err != nil {
			fatal(err)
		}
		if err := run.Sys.WriteSnapshot(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		t := report.ResourceTable(run.Sys.Engine().Stats())
		if err := emit(t, os.Stdout, *csvOut); err != nil {
			fatal(err)
		}
		return
	}

	if *tracePath != "" {
		var rec *metrics.Options
		if *metricsF != "" || *spans || *metricsIv > 0 {
			rec = &mo
		}
		if err := writeTrace(*tracePath, rec, *metricsF); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing or Perfetto)\n", *tracePath)
		return
	}

	if *list {
		fmt.Print(listOutput())
		return
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fatal(err)
		}
	}
	m := workload.DefaultModel()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentIDs
	}
	ra := runAllOptions{
		jobs:     *jobs,
		pj:       *pjF,
		csv:      *csvOut,
		benchOut: *benchOut,
		progress: *progress,
	}
	if *metricsF != "" {
		ra.metricsPath = *metricsF
		ra.metrics = &mo
	}
	if *httpAddr != "" {
		insp := inspect.New()
		if err := insp.Start(*httpAddr); err != nil {
			fatal(err)
		}
		defer insp.Close()
		fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", insp.Addr())
		ra.inspector = insp
	}
	if *qtraceF != "" || ra.inspector != nil {
		ra.qtracePath = *qtraceF
		qo := &qtrace.Options{}
		if ra.inspector != nil {
			qo.Observer = ra.inspector
		}
		ra.qtrace = qo
	}
	if err := runAll(os.Stdout, ids, cfg, m, ra); err != nil {
		fatal(err)
	}
	if ra.inspector != nil && *httpWait > 0 {
		fmt.Fprintf(os.Stderr, "experiments done; inspector lingering %s\n", *httpWait)
		time.Sleep(*httpWait)
	}
}

// listOutput renders the -list contract: the `-exp all` ids sorted, one
// per line, then the runnable extras grouped under a labeled section so
// scripts consuming the top block never pick up a non-default id by
// accident.
func listOutput() string {
	var b strings.Builder
	ids := append([]string(nil), experimentIDs...)
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintln(&b, id)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "extra (runnable, excluded from -exp all):")
	extras := append([]string(nil), extraIDs...)
	sort.Strings(extras)
	for _, id := range extras {
		fmt.Fprintln(&b, id)
	}
	return b.String()
}

// clusterOptions are the -cluster path's knobs: the deployment overrides
// and the observability sinks riding the run.
type clusterOptions struct {
	nodes    int
	route    string
	pj       int
	cache    int
	cacheTTL float64
	csv      bool

	httpAddr string
	httpWait time.Duration

	// metrics, when non-nil, attaches the barrier-driven cluster sampler
	// (plus per-node GAM span logs when Spans is set) and enables straggler
	// tracking, printing the per-merge attribution table after the summary.
	metrics *metrics.Options
	// metricsPath receives the sampled time series (CSV, or JSON Lines
	// when the path ends in .jsonl, spans included).
	metricsPath string
	// tracePath receives a Chrome trace with one process group per node.
	tracePath string
	// sloMs > 0 tracks rolling sim-time windows of latency quantiles
	// against this objective; sloWindowMs is the window width.
	sloMs       float64
	sloWindowMs float64
	// flightDir, when set, runs the flight recorder and writes one
	// diagnostic bundle directory beneath it; flightWinMs is the retention
	// window and detect arms the online anomaly detectors.
	flightDir   string
	flightWinMs float64
	detect      bool
	// arrival selects the pinned run's arrival process: "" or "poisson"
	// for the golden-pinned open loop, "flash" for the seeded flash crowd
	// (a longer sequence whose middle third arrives 8x faster).
	arrival string
}

// runCluster is the -cluster path: one pinned scatter-gather deployment
// (default cluster config; node count, routing policy, domain parallelism
// and the front-end result cache overridable), its summary table on w.
// With httpAddr set the run serves the live inspector, observing every
// query completion, the per-domain clocks/mailboxes, cache counters and
// SLO burn while the run executes, and the final registry. All output —
// the tables and every artifact — is byte-identical at any pj.
func runCluster(w io.Writer, o clusterOptions) error {
	ccfg := config.DefaultCluster()
	if o.nodes > 0 {
		ccfg.Nodes = o.nodes
		if ccfg.ShardMap == nil && ccfg.Replication > o.nodes {
			ccfg.Replication = o.nodes
		}
	}
	if o.route != "" {
		ccfg.RoutePolicy = o.route
	}
	if o.pj > 0 {
		ccfg.ParallelDomains = o.pj
	}
	if o.cache > 0 {
		ccfg.CacheEntries = o.cache
	}
	if o.cacheTTL > 0 {
		ccfg.CacheTTLMS = o.cacheTTL
	}
	qo := qtrace.Options{}
	var insp *inspect.Server
	if o.httpAddr != "" {
		insp = inspect.New()
		if err := insp.Start(o.httpAddr); err != nil {
			return err
		}
		defer insp.Close()
		fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", insp.Addr())
		qo.Observer = insp
	}
	var slo *inspect.SLOMonitor
	if o.sloMs > 0 {
		width := o.sloWindowMs
		if width <= 0 {
			width = defaultSLOWindowMS
		}
		slo = inspect.NewSLOMonitor(sim.FromSeconds(width/1e3), sim.FromSeconds(o.sloMs/1e3))
		qo.Observer = qtrace.Tee(qo.Observer, slo)
		if insp != nil {
			insp.ObserveSLO(slo)
		}
	}
	var fr *flight.Recorder
	if o.flightDir != "" {
		fc := flight.Config{Detect: o.detect}
		if o.flightWinMs > 0 {
			fc.Window = sim.FromSeconds(o.flightWinMs / 1e3)
		}
		// When the run tracks an SLO, the burn detector breaches against
		// the same objective the SLO monitor reports on.
		if o.sloMs > 0 {
			fc.Objective = sim.FromSeconds(o.sloMs / 1e3)
		}
		fr = flight.New(fc)
		qo.Observer = qtrace.Tee(qo.Observer, fr)
	}
	arr := experiments.ArrivalSpec{Process: experiments.ArrivalPoisson, Seed: clusterRunSeed}
	queries, rate := clusterRunQueries, float64(clusterRunQPS)
	switch o.arrival {
	case "", "poisson":
	case "flash":
		arr.Process = experiments.ArrivalFlash
		queries, rate = flashRunQueries, flashRunQPS
	default:
		return fmt.Errorf("unknown -arrival %q (valid: poisson, flash)", o.arrival)
	}
	var rec *metrics.MultiRecorder
	observe := func(cl *cluster.Cluster) {
		if o.metrics != nil {
			rec = metrics.AttachMulti(cl.Multi(), *o.metrics)
			if o.metrics.Spans {
				rec.Spans = cl.AttachSpans()
			}
			cl.EnableStragglers()
		}
		if fr != nil {
			fr.AttachLog(cl.QLog())
			fr.SetLoadProvider(cl.RouterStats().LoadsInto)
			if cl.CacheEnabled() {
				fr.SetCacheProvider(func() (uint64, uint64) {
					cs := cl.CacheStats()
					return cs.Lookups, cs.Hits
				})
			}
			// The MultiEngine exposes one barrier-observer slot; when both
			// the metrics sampler and the flight recorder ride the run, tee
			// the slot — sampler first, so its series stay identical to a
			// flight-off run.
			var sampler sim.BarrierObserver
			if rec != nil {
				sampler = rec.Sampler
			}
			cl.Multi().SetBarrierObserver(flight.BarrierTee(sampler, fr))
			cl.EnableStragglers()
			if insp != nil {
				insp.ObserveAnomalies(func() inspect.AnomalyStatus { return anomalyStatus(fr) })
			}
		}
		if insp == nil {
			return
		}
		insp.ObserveMulti(cl.Multi())
		if cl.CacheEnabled() {
			insp.ObserveCache(func() inspect.CacheCounters {
				cs := cl.CacheStats()
				return inspect.CacheCounters{
					Hits: cs.Hits, Misses: cs.Misses, Expired: cs.Expired,
					Coalesced: cs.Coalesced, Evictions: cs.Evictions,
					Lookups: cs.Lookups, HitRate: cs.HitRate,
				}
			})
		}
	}
	cl, t, err := experiments.ClusterRun(workload.DefaultModel(), ccfg,
		queries, rate, arr, qo, observe)
	if err != nil {
		return err
	}
	if insp != nil {
		insp.ObserveRun("cluster", cl.Engine().Stats())
	}
	if err := emit(t, w, o.csv); err != nil {
		return err
	}
	if o.metrics != nil {
		if st := cluster.StragglerTable(cl.Stragglers()); st != nil {
			if err := emit(st, w, o.csv); err != nil {
				return err
			}
		}
	}
	if slo != nil {
		if st := slo.Table(); st != nil {
			if err := emit(st, w, o.csv); err != nil {
				return err
			}
		}
	}
	if o.metricsPath != "" {
		if err := writeClusterMetrics(o.metricsPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cluster metrics written to %s\n", o.metricsPath)
	}
	if o.tracePath != "" {
		if err := writeClusterTrace(o.tracePath, ccfg.Nodes, cl, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (open in chrome://tracing or Perfetto)\n", o.tracePath)
	}
	if fr != nil {
		dir, err := writeFlightBundle(o.flightDir, fr, cl, ccfg.Nodes, rec)
		if err != nil {
			return err
		}
		if fr.Frozen() {
			v := fr.Verdict()
			fmt.Fprintf(os.Stderr, "flight: %s detected at %.3f ms; bundle written to %s\n",
				v.Detector, v.TriggerMS, dir)
		} else {
			fmt.Fprintf(os.Stderr, "flight: no anomaly detected; end-of-run bundle written to %s\n", dir)
		}
	}
	fmt.Fprintf(os.Stderr, "cluster run complete: %d queries\n", cl.Completed())
	if insp != nil && o.httpWait > 0 {
		fmt.Fprintf(os.Stderr, "inspector lingering %s\n", o.httpWait)
		time.Sleep(o.httpWait)
	}
	return nil
}

// writeClusterMetrics dumps the barrier sampler's time series — per-node
// resources, cluster links and the synthetic per-domain streams — to path
// (CSV, or JSONL with merged spans when the path ends in .jsonl).
func writeClusterMetrics(path string, rec *metrics.MultiRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return metrics.NewJSONLWriter(f).WriteMulti("cluster", rec)
	}
	cw := metrics.NewCSVWriter(f)
	if err := cw.WriteRun("cluster", rec.Sampler); err != nil {
		return err
	}
	return cw.Flush()
}

// writeClusterTrace renders the cluster run as a Chrome trace: one
// process group per node (fe/shard/net lanes, counters, GAM spans when
// recorded) plus the front-end process with its query and cache lanes.
// rec may be nil when -metrics/-spans are off — the trace then carries
// the query timelines alone.
func writeClusterTrace(path string, nodes int, cl *cluster.Cluster, rec *metrics.MultiRecorder) error {
	tl := trace.NewTimeline()
	var counters metrics.Source
	var spans []*metrics.SpanLog
	if rec != nil {
		counters = rec.Sampler
		spans = rec.Spans
	}
	tl.AddCluster(nodes, cl.QLog(), counters, spans)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tl.WriteJSON(f)
}

// runAllOptions are the execution/output knobs of runAll, beyond what to
// run: concurrency, output format, wall-clock summary, observability.
type runAllOptions struct {
	jobs     int
	pj       int // event-domain workers per cluster simulation (0 = config default)
	csv      bool
	benchOut string
	progress bool
	// metrics/metricsPath, when set, sample every RunSpec-based run and
	// write the combined time series to metricsPath (CSV, or JSONL for
	// .jsonl paths), plus a bottleneck-attribution table per sampled run.
	metrics     *metrics.Options
	metricsPath string
	// qtrace, when set, traces every query of every RunSpec-based run;
	// qtracePath (optional) receives the per-query timelines as an
	// interval CSV plus a *_summary.csv, or one JSONL file. The inspector,
	// when set, rides qtrace.Options.Observer for live query counters and
	// gets each finished run's resource utilization.
	qtrace     *qtrace.Options
	qtracePath string
	inspector  *inspect.Server
}

// obsEntry is one sampled run: the experiment it belongs to, the run name,
// and its result (carrying the recorder).
type obsEntry struct {
	exp string
	run string
	res *experiments.RunResult
}

// clusterObsEntry is one sampled cluster-sweep cell: cluster experiments
// carry a barrier-driven MultiRecorder instead of a RunSpec result.
type clusterObsEntry struct {
	exp string
	run string
	rec *metrics.MultiRecorder
}

// runAll executes the experiments concurrently on a shared simulation pool
// and emits their tables in id order. The pool bounds the total number of
// in-flight simulations at -j across all experiments (every experiment's
// internal sweep draws from the same budget), so the output is identical
// for any -j: tables are collected per experiment and printed in order,
// and sampled metrics are collected per experiment in spec order.
func runAll(w io.Writer, ids []string, cfg config.SystemConfig, m workload.Model, o runAllOptions) error {
	pool := runner.NewPool(o.jobs)
	start := time.Now()
	secs := make([]float64, len(ids)) // each index written by exactly one worker
	obs := make([][]obsEntry, len(ids))
	cobs := make([][]clusterObsEntry, len(ids))
	qobs := make([][]obsEntry, len(ids))
	// The outer fan-out is unbounded: experiments only hold pool slots
	// while leaf simulations run, so len(ids) goroutines cost nothing and
	// a bounded outer layer could not deadlock the inner sweeps anyway.
	results, err := runner.Map(context.Background(), runner.Options{Workers: len(ids)}, ids,
		func(_ context.Context, i int, id string) ([]*report.Table, error) {
			opts := []experiments.Option{experiments.WithPool(pool)}
			if o.pj > 0 {
				opts = append(opts, experiments.WithClusterParallel(o.pj))
			}
			if o.progress {
				opts = append(opts, experiments.WithProgress(func(done, total int, name string) {
					fmt.Fprintf(os.Stderr, "[%s] %d/%d %s\n", id, done, total, name)
				}))
			}
			if o.metrics != nil {
				// The observe callbacks run serially per experiment after
				// its runs complete, so obs[i]/cobs[i] need no lock.
				opts = append(opts, experiments.WithMetrics(*o.metrics,
					func(run string, res *experiments.RunResult) {
						obs[i] = append(obs[i], obsEntry{exp: id, run: run, res: res})
					}))
				opts = append(opts, experiments.WithClusterObs(*o.metrics,
					func(run string, rec *metrics.MultiRecorder, _ *cluster.Cluster) {
						cobs[i] = append(cobs[i], clusterObsEntry{exp: id, run: run, rec: rec})
					}))
			}
			if o.qtrace != nil {
				opts = append(opts, experiments.WithQTrace(*o.qtrace,
					func(run string, res *experiments.RunResult) {
						qobs[i] = append(qobs[i], obsEntry{exp: id, run: run, res: res})
						if o.inspector != nil {
							o.inspector.ObserveRun(id+"/"+run, res.Sys.Engine().Stats())
						}
					}))
			}
			t0 := time.Now()
			tables, err := run(id, cfg, m, opts...)
			secs[i] = time.Since(t0).Seconds()
			return tables, err
		})
	if err != nil {
		return err
	}
	total := time.Since(start).Seconds()
	for _, tables := range results {
		for _, t := range tables {
			if err := emit(t, w, o.csv); err != nil {
				return err
			}
		}
	}
	if o.metricsPath != "" {
		if err := writeMetrics(w, o.metricsPath, obs, cobs, o.csv); err != nil {
			return err
		}
	}
	if o.qtracePath != "" {
		if err := writeQTrace(o.qtracePath, qobs); err != nil {
			return err
		}
	}
	if o.benchOut != "" {
		if err := writeBenchOut(o.benchOut, ids, secs, total, o.jobs); err != nil {
			return err
		}
	}
	return nil
}

// writeMetrics dumps every sampled run's time series to path (CSV, or
// JSONL when the path ends in .jsonl) and emits one bottleneck-attribution
// table per run on w. Cluster-sweep cells follow their experiment's
// RunSpec entries, series only: a sweep cell has no single-engine phase
// windows to attribute. Entries are ordered (experiment id order, spec
// order), so output is identical for any -j.
func writeMetrics(w io.Writer, path string, obs [][]obsEntry, cobs [][]clusterObsEntry, csv bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	jsonl := strings.HasSuffix(path, ".jsonl")
	cw := metrics.NewCSVWriter(f)
	jw := metrics.NewJSONLWriter(f)
	sampled := 0
	for i, entries := range obs {
		for _, e := range entries {
			label := e.exp + "/" + e.run
			if jsonl {
				err = jw.WriteRun(label, e.res.Obs)
			} else {
				err = cw.WriteRun(label, e.res.Obs.Sampler)
			}
			if err != nil {
				return err
			}
			sampled++
			atts := metrics.Attribute(e.res.Obs.Sampler, e.res.PhaseWindows())
			t := report.Bottleneck("Bottleneck attribution — "+label, atts)
			if err := emit(t, w, csv); err != nil {
				return err
			}
		}
		if cobs == nil {
			continue
		}
		for _, e := range cobs[i] {
			label := e.exp + "/" + e.run
			if jsonl {
				err = jw.WriteMulti(label, e.rec)
			} else {
				err = cw.WriteRun(label, e.rec.Sampler)
			}
			if err != nil {
				return err
			}
			sampled++
		}
	}
	if !jsonl {
		if err := cw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "metrics for %d runs written to %s\n", sampled, path)
	return nil
}

// qtraceSummaryPath derives the per-query summary CSV's path from the
// interval CSV's: "q.csv" → "q_summary.csv".
func qtraceSummaryPath(path string) string {
	ext := ".csv"
	base := path
	if i := strings.LastIndex(path, "."); i > strings.LastIndexByte(path, os.PathSeparator) {
		base, ext = path[:i], path[i:]
	}
	return base + "_summary" + ext
}

// writeQTrace dumps every traced run's per-query timelines to path: the
// phase intervals as CSV plus a *_summary.csv of per-query latencies and
// dominant attributions, or both streams tagged by type in one JSON Lines
// file when the path ends in .jsonl. Entries are ordered (experiment id
// order, spec order), so output is identical for any -j.
func writeQTrace(path string, qobs [][]obsEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var write func(label string, l *qtrace.Log) error
	where := path
	if strings.HasSuffix(path, ".jsonl") {
		jw := qtrace.NewJSONLWriter(f)
		write = jw.WriteRun
	} else {
		sumPath := qtraceSummaryPath(path)
		sf, err := os.Create(sumPath)
		if err != nil {
			return err
		}
		defer sf.Close()
		cw := qtrace.NewCSVWriter(f, sf)
		write = cw.WriteRun
		where += " and " + sumPath
	}
	traced := 0
	for _, entries := range qobs {
		for _, e := range entries {
			if err := write(e.exp+"/"+e.run, e.res.QLog); err != nil {
				return err
			}
			traced++
		}
	}
	fmt.Fprintf(os.Stderr, "per-query traces for %d runs written to %s\n", traced, where)
	return nil
}

// writeBenchOut dumps per-experiment and total wall-clock seconds as JSON —
// the before/after evidence file for performance PRs (see BENCH_pr3.json).
func writeBenchOut(path string, ids []string, secs []float64, total float64, jobs int) error {
	type expTiming struct {
		ID      string  `json:"id"`
		Seconds float64 `json:"seconds"`
	}
	out := struct {
		Jobs         int         `json:"jobs"`
		TotalSeconds float64     `json:"total_seconds"`
		Experiments  []expTiming `json:"experiments"`
	}{Jobs: jobs, TotalSeconds: total}
	for i, id := range ids {
		out.Experiments = append(out.Experiments, expTiming{ID: id, Seconds: secs[i]})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func run(id string, cfg config.SystemConfig, m workload.Model, opts ...experiments.Option) ([]*report.Table, error) {
	switch strings.ToLower(id) {
	case "table1":
		return []*report.Table{experiments.TableI(m)}, nil
	case "table2":
		return []*report.Table{experiments.TableII(cfg)}, nil
	case "table3":
		return []*report.Table{experiments.TableIII()}, nil
	case "table4":
		return []*report.Table{experiments.TableIV(energy.DefaultCosts())}, nil
	case "fig8":
		r, err := experiments.Fig8(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "fig9":
		s, err := experiments.Fig9(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{s.Table("Fig 9")}, nil
	case "fig10":
		s, err := experiments.Fig10(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{s.Table("Fig 10")}, nil
	case "fig11":
		s, err := experiments.Fig11(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{s.Table("Fig 11")}, nil
	case "fig12":
		r, err := experiments.Fig12(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "fig13":
		r, err := experiments.Fig13(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "ablation-gam":
		r, err := experiments.AblationGAM(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "ablation-mapping":
		r, err := experiments.AblationMapping(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "ablation-granularity":
		r, err := experiments.AblationGranularity(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "recallsweep":
		r, err := experiments.RecallSweep(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "multitenant":
		r, err := experiments.MultiTenant(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "reverselookup":
		r, err := experiments.ReverseLookup(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "skew":
		r, err := experiments.SkewExperiment(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "loadsweep":
		onchip, reach, err := experiments.LoadSweepBoth(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{experiments.LoadSweepTable(onchip, reach)}, nil
	case "taillatency":
		onchip, reach, err := experiments.TailLatencyBoth(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{experiments.TailLatencyTable(onchip, reach)}, nil
	case "clustersweep":
		r, err := experiments.DefaultClusterSweep(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{experiments.ClusterSweepTable(r)}, nil
	case "cachesweep":
		r, err := experiments.DefaultCacheSweep(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{experiments.CacheSweepTable(r)}, nil
	case "ablation-nsbuffer":
		r, err := experiments.AblationNSBuffer(m, opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	case "motivation":
		r, err := experiments.Motivation(opts...)
		if err != nil {
			return nil, err
		}
		return []*report.Table{r.Table()}, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
	}
}

func emit(t *report.Table, w io.Writer, csv bool) error {
	if csv {
		return t.CSV(w)
	}
	return t.Render(w)
}

// writeTrace runs an 8-batch ReACH pipeline and dumps its timeline, one
// lane per query with its phase intervals merged in. With a non-nil
// metrics option the run is sampled: counter lanes and (when enabled) GAM
// decision spans are merged into the trace, and the raw time series
// additionally lands at metricsPath when set.
func writeTrace(path string, mo *metrics.Options, metricsPath string) error {
	spec := experiments.PipelineSpec("pipeline", workload.DefaultModel(), experiments.ReACHMapping(), 4, 8)
	spec.Metrics = mo
	spec.QTrace = &qtrace.Options{}
	run, err := spec.Run()
	if err != nil {
		return err
	}
	tl := trace.NewTimeline()
	// Keep every traceable job even when one errors; surface the first
	// failure after the timeline is as complete as it can be.
	addErr := tl.AddJobs(run.Jobs)
	tl.AddResources(run.Sys.Engine().Stats(), run.Sys.Engine().Now())
	tl.AddQueries(run.QLog)
	if run.Obs != nil {
		tl.AddCounters(run.Obs.Sampler)
		if run.Obs.Spans != nil {
			tl.AddSpans(run.Obs.Spans)
		}
		if metricsPath != "" {
			if err := writeMetrics(os.Stdout, metricsPath,
				[][]obsEntry{{{exp: "trace", run: spec.Name, res: run}}}, nil, false); err != nil {
				return err
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tl.WriteJSON(f); err != nil {
		return err
	}
	if addErr != nil {
		return fmt.Errorf("trace written incomplete: %w", addErr)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reachsim:", err)
	os.Exit(1)
}
