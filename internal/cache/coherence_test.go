package cache

import (
	"testing"
	"testing/quick"
)

func newDir(t *testing.T) *Directory {
	t.Helper()
	d, err := NewDirectory(2, 64) // CPU (0) + on-chip accelerator (1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(0, 64); err == nil {
		t.Error("0 agents accepted")
	}
	if _, err := NewDirectory(65, 64); err == nil {
		t.Error("65 agents accepted")
	}
	if _, err := NewDirectory(2, 48); err == nil {
		t.Error("non-pow2 line accepted")
	}
}

func TestReadSharing(t *testing.T) {
	d := newDir(t)
	a := d.Read(0, 0x1000)
	if !a.Fetch || a.Invalidations != 0 || a.WriteBack {
		t.Errorf("cold read action %+v", a)
	}
	if d.State(0x1000) != Shared || d.Sharers(0x1000) != 1 {
		t.Errorf("state %v sharers %d", d.State(0x1000), d.Sharers(0x1000))
	}
	// Second agent reads: both share, one more fetch, no invalidation.
	a = d.Read(1, 0x1000)
	if !a.Fetch || a.Invalidations != 0 {
		t.Errorf("second read action %+v", a)
	}
	if d.Sharers(0x1000) != 2 {
		t.Errorf("sharers = %d, want 2", d.Sharers(0x1000))
	}
	// Re-read by a sharer is free.
	a = d.Read(0, 0x1020) // same line
	if a.Fetch {
		t.Error("sharer re-read fetched")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := newDir(t)
	d.Read(0, 0)
	d.Read(1, 0)
	a := d.Write(0, 0)
	if a.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", a.Invalidations)
	}
	if a.Fetch {
		t.Error("upgrading sharer fetched from memory")
	}
	if d.State(0) != Modified || d.Sharers(0) != 1 {
		t.Errorf("state %v sharers %d after write", d.State(0), d.Sharers(0))
	}
	st := d.Stats()
	if st.UpgradeMisses != 1 {
		t.Errorf("upgrade misses = %d, want 1", st.UpgradeMisses)
	}
}

func TestRemoteDirtyReadForcesWriteBack(t *testing.T) {
	// The pattern behind GAM's forced write-backs: the CPU produced data
	// (Modified), the accelerator reads it.
	d := newDir(t)
	d.Write(0, 0x40)
	a := d.Read(1, 0x40)
	if !a.WriteBack || !a.Fetch {
		t.Errorf("remote dirty read action %+v, want writeback+fetch", a)
	}
	if d.State(0x40) != Shared || d.Sharers(0x40) != 2 {
		t.Errorf("post-downgrade state %v/%d", d.State(0x40), d.Sharers(0x40))
	}
	if d.Stats().CleanDowngrades != 1 {
		t.Error("downgrade not counted")
	}
}

func TestWriteOverRemoteDirty(t *testing.T) {
	d := newDir(t)
	d.Write(0, 0)
	a := d.Write(1, 0)
	if !a.WriteBack || a.Invalidations != 1 || !a.Fetch {
		t.Errorf("ownership transfer action %+v", a)
	}
	if d.State(0) != Modified {
		t.Errorf("state %v", d.State(0))
	}
	// Repeated writes by the owner are silent.
	a = d.Write(1, 0)
	if a.WriteBack || a.Fetch || a.Invalidations != 0 {
		t.Errorf("owner re-write action %+v", a)
	}
}

func TestEvict(t *testing.T) {
	d := newDir(t)
	d.Write(0, 0)
	if wb := d.Evict(0, 0); !wb {
		t.Error("evicting Modified did not write back")
	}
	if d.State(0) != Invalid {
		t.Errorf("state %v after eviction", d.State(0))
	}
	d.Read(0, 64)
	d.Read(1, 64)
	if wb := d.Evict(0, 64); wb {
		t.Error("evicting Shared wrote back")
	}
	if d.Sharers(64) != 1 {
		t.Errorf("sharers = %d after one eviction", d.Sharers(64))
	}
	if wb := d.Evict(1, 64); wb {
		t.Error("clean eviction wrote back")
	}
	if d.State(64) != Invalid {
		t.Error("line not Invalid after all evictions")
	}
	// Evicting a line you don't own is a no-op.
	d.Write(0, 128)
	if wb := d.Evict(1, 128); wb {
		t.Error("non-owner eviction wrote back")
	}
}

// Property: the directory's invariants hold under any access sequence —
// Modified lines have exactly one sharer; Shared lines have ≥1; Invalid
// have 0.
func TestDirectoryInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		d, err := NewDirectory(4, 64)
		if err != nil {
			return false
		}
		touched := map[int64]bool{}
		for _, op := range ops {
			agent := int(op % 4)
			addr := int64((op/4)%32) * 64
			touched[addr] = true
			switch (op / 128) % 3 {
			case 0:
				d.Read(agent, addr)
			case 1:
				d.Write(agent, addr)
			default:
				d.Evict(agent, addr)
			}
		}
		for addr := range touched {
			n := d.Sharers(addr)
			switch d.State(addr) {
			case Modified:
				if n != 1 {
					return false
				}
			case Shared:
				if n < 1 {
					return false
				}
			case Invalid:
				if n != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoherenceStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Error("state strings wrong")
	}
	if CoherenceState(9).String() == "" {
		t.Error("unknown state empty")
	}
}
