package report

import (
	"repro/internal/metrics"
)

// Bottleneck renders per-phase bottleneck attributions — for each phase of
// a sampled run, the resource under the highest normalized pressure and the
// fraction of the phase's critical path attributable to it.
func Bottleneck(title string, atts []metrics.Attribution) *Table {
	t := &Table{
		Title: title,
		Columns: []string{
			"phase", "window_ms", "bottleneck", "kind",
			"busy_ms", "wait_ms", "pressure", "crit_path",
		},
	}
	for _, a := range atts {
		if a.Resource == "" {
			t.AddRow(a.Phase, Ms(a.Window.Seconds()), "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(
			a.Phase,
			Ms(a.Window.Seconds()),
			a.Resource,
			string(a.Kind),
			Ms(a.Busy.Seconds()),
			Ms(a.Wait.Seconds()),
			F(a.Pressure, 2),
			Pct(a.Share),
		)
	}
	t.AddNote("pressure = (busy+wait)/window; wait sums every queued waiter, so pressure > 1 means overlapping contention")
	t.AddNote("crit_path = min(1, max(busy, wait)/window): the phase fraction attributable to the bottleneck resource")
	return t
}
