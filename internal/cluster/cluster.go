// Package cluster scales the single-server ReACH system out to a
// datacenter deployment: N composable nodes (core.NewNode) sharing one
// simulation engine, the shortlist database sharded with replication
// across them, and a front-end tier that scatter-gathers every query —
// feature extraction on the query's home node, the feature vector fanned
// out over an inter-node network to one replica per shard, shard-local
// shortlist+rerank, and a merge that completes the query once all (or a
// quorum of) shard responses return. Routing between replicas is
// pluggable (hash affinity, round robin, power of two choices); per-query
// Zipf popularity skews both which replicas hash routing hammers and how
// much work each shard contributes, which is exactly the regime where
// load-aware routing earns its tail latency.
//
// Everything is built from existing primitives — nodes are ordinary
// Systems with prefixed stat names, the network is sim.Link pairs, query
// lifecycles are phase-tagged sim.Handler events — so a cluster run is as
// deterministic as a single-server run: byte-identical at any -j.
package cluster

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// popularityItems is the size of the query-popularity universe: each
// arriving query is one of this many distinct "contents", drawn Zipf by
// SkewExponent. Hash routing keys on the content, so popular contents
// pin their load to one replica index; the content also rotates which
// shard carries the query's heaviest work.
const popularityItems = 64

// Cluster is a running N-node deployment on one shared engine.
type Cluster struct {
	eng    *sim.Engine
	cfg    config.ClusterConfig
	model  workload.Model
	nodes  []*core.System
	in     []*sim.Link // per-node network ingress
	out    []*sim.Link // per-node network egress
	router *Router
	qlog   *qtrace.Log

	allNodes []int
	needed   int       // shard responses that complete a query
	popW     []float64 // cumulative popularity over popularityItems
	shardW   []float64 // per-shard work weights (rotated per content)

	jobSeq    int
	queries   []*query
	completed int
	err       error
}

// New assembles a cluster per cfg: nodes node0..nodeN-1 with prefixed
// registries, an ingress and an egress link per node, the router, and a
// query log configured by qopt (pass qtrace.Options{} for defaults; the
// log always exists — the latency sketch is the cluster's primary
// output).
func New(cfg config.ClusterConfig, m workload.Model, qopt qtrace.Options) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	policy, err := ParsePolicy(cfg.RoutePolicy)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	c := &Cluster{
		eng:    eng,
		cfg:    cfg,
		model:  m,
		router: NewRouter(policy, cfg.Nodes, cfg.RouteSeed),
		qlog:   qtrace.NewLog(qopt),
		needed: cfg.Quorum,
	}
	if c.needed == 0 {
		c.needed = cfg.Shards
	}
	latency := sim.FromSeconds(cfg.NetLatencyUS * 1e-6)
	for i := 0; i < cfg.Nodes; i++ {
		node, err := core.NewNode(eng, cfg.Node, fmt.Sprintf("node%d.", i))
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, node)
		c.in = append(c.in, sim.NewLink(eng, fmt.Sprintf("cluster.net.node%d.in", i),
			cfg.NetGBps*config.GBps, latency))
		c.out = append(c.out, sim.NewLink(eng, fmt.Sprintf("cluster.net.node%d.out", i),
			cfg.NetGBps*config.GBps, latency))
		c.allNodes = append(c.allNodes, i)
	}
	// Cumulative popularity for content sampling.
	w := workload.ZipfWeights(popularityItems, cfg.SkewExponent)
	c.popW = make([]float64, len(w))
	var cum float64
	for i, wi := range w {
		cum += wi
		c.popW[i] = cum
	}
	c.shardW = workload.ZipfWeights(cfg.Shards, cfg.SkewExponent)
	return c, nil
}

// Engine exposes the shared engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Config reports the cluster configuration.
func (c *Cluster) Config() config.ClusterConfig { return c.cfg }

// Nodes returns the member systems (index = node id).
func (c *Cluster) Nodes() []*core.System { return c.nodes }

// RouterStats exposes the front-end router (routed counts, imbalance).
func (c *Cluster) RouterStats() *Router { return c.router }

// QLog exposes the cluster-level query log.
func (c *Cluster) QLog() *qtrace.Log { return c.qlog }

// Completed reports how many queries have merged.
func (c *Cluster) Completed() int { return c.completed }

// Submitted reports how many queries have been scheduled.
func (c *Cluster) Submitted() int { return len(c.queries) }

// content samples the query-popularity universe for query qid —
// deterministic (a hash of qid drives inverse-CDF sampling, no shared RNG
// state), so the same qid is the same content in every run.
func (c *Cluster) content(qid int) int {
	u := float64(mix64(uint64(qid)+0x243f6a8885a308d3)) / (1 << 63) / 2
	for i, cum := range c.popW {
		if u <= cum {
			return i
		}
	}
	return len(c.popW) - 1
}

// shardFrac is the fraction of query content's work carried by shard s:
// the Zipf shard weights rotated by content, so every query has one hot
// shard and popular contents agree on which.
func (c *Cluster) shardFrac(content, s int) float64 {
	return c.shardW[(s+content)%c.cfg.Shards]
}

// SubmitAt schedules one query arrival at the front end at time `at` and
// returns its query id. Call before Run; arrivals are processed inside
// the event loop in time order.
func (c *Cluster) SubmitAt(at sim.Time) int {
	q := &query{c: c, id: len(c.queries), needed: c.needed}
	q.content = c.content(q.id)
	q.replica = make([]int, c.cfg.Shards)
	q.shardStart = make([]sim.Time, c.cfg.Shards)
	c.queries = append(c.queries, q)
	c.eng.AtCall(at, q, qArrive)
	return q.id
}

// Run drains the shared calendar and verifies every submitted query
// merged.
func (c *Cluster) Run() error {
	c.eng.Run()
	if c.err != nil {
		return c.err
	}
	if c.completed != len(c.queries) {
		return fmt.Errorf("cluster: %d of %d queries unmerged after run", len(c.queries)-c.completed, len(c.queries))
	}
	return nil
}

// fail records the first internal error and stops scheduling new work.
func (c *Cluster) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// NodeBusyPct reports node i's mean accelerator-fabric utilisation over
// the run so far, in percent, averaged across its instances.
func (c *Cluster) NodeBusyPct(i int) float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	var busy sim.Time
	var count int
	for _, l := range []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage} {
		for _, a := range c.nodes[i].Accelerators(l) {
			busy += a.Fabric().Busy()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return 100 * float64(busy) / float64(now) / float64(count)
}

// MeanBusyPct averages NodeBusyPct over the nodes.
func (c *Cluster) MeanBusyPct() float64 {
	var sum float64
	for i := range c.nodes {
		sum += c.NodeBusyPct(i)
	}
	return sum / float64(len(c.nodes))
}

// Query lifecycle phases, encoded in the event arg: low bits select the
// phase, high bits carry the shard index for per-shard phases.
const (
	qArrive   uint64 = iota // query hits the front end
	qFeatures               // query image landed on the home node
	qScatter                // feature vector landed on replica (arg>>qShift)
	qResponse               // shard response landed back at the front end
	qShift    = 2
)

// query is one in-flight scatter-gather request; it is its own event
// handler, so the whole lifecycle schedules without closures (job
// completion callbacks are the one exception — jobs already allocate).
type query struct {
	c       *Cluster
	id      int
	content int
	home    int
	replica []int

	arrival    sim.Time
	feStart    sim.Time
	shardStart []sim.Time

	responses int
	needed    int
	merged    bool
}

// Fire advances the query's lifecycle.
func (q *query) Fire(eng *sim.Engine, arg uint64) {
	c := q.c
	now := eng.Now()
	shard := int(arg >> qShift)
	switch arg & (1<<qShift - 1) {
	case qArrive:
		q.arrival = now
		c.qlog.Submitted(q.id, q.id, now)
		// Home pick: the front end routes the raw query (image batch) to
		// a node for feature extraction — any node qualifies.
		q.home = c.router.Pick(uint64(q.content), c.allNodes)
		reqDone := c.in[q.home].Transfer(c.model.BatchImageBytes())
		c.qlog.Add(q.id, qtrace.Interval{
			Phase: qtrace.PhaseXfer, Stage: stageFE,
			Detail: fmt.Sprintf("client-node%d", q.home),
			Start:  now, End: reqDone,
		})
		eng.AtCall(reqDone, q, qFeatures)

	case qFeatures:
		q.feStart = now
		j, err := buildFEJob(c.nodes[q.home], c.jobSeq, c.model)
		if err != nil {
			c.fail(err)
			return
		}
		c.jobSeq++
		j.OnDone(func(*core.Job) { q.scatter() })
		if err := c.nodes[q.home].GAM().Submit(j); err != nil {
			c.fail(err)
		}

	case qScatter:
		node := q.replica[shard]
		q.shardStart[shard] = now
		j, err := buildShardJob(c.nodes[node], c.jobSeq, c.model, c.shardFrac(q.content, shard))
		if err != nil {
			c.fail(err)
			return
		}
		c.jobSeq++
		s := shard
		j.OnDone(func(*core.Job) { q.respond(s) })
		if err := c.nodes[node].GAM().Submit(j); err != nil {
			c.fail(err)
		}

	case qResponse:
		q.responses++
		if !q.merged && q.responses >= q.needed {
			q.merged = true
			c.completed++
			c.qlog.Completed(q.id, now)
		}
	}
}

// scatter runs at FE completion on the home node: fan the feature vector
// out to one replica per shard over the network (replicas co-located with
// the home node skip the wire).
func (q *query) scatter() {
	c := q.c
	now := c.eng.Now()
	c.router.Done(q.home)
	c.qlog.Add(q.id, qtrace.Interval{
		Phase: qtrace.PhaseExec, Stage: stageFE, Level: "onchip",
		Detail: fmt.Sprintf("node%d", q.home),
		Start:  q.feStart, End: now,
	})
	featBytes := c.model.BatchFeatureBytes()
	for s := 0; s < c.cfg.Shards; s++ {
		node := c.router.Pick(uint64(q.content), c.cfg.ReplicaNodes(s))
		q.replica[s] = node
		arg := qScatter | uint64(s)<<qShift
		if node == q.home {
			c.eng.AtCall(now, q, arg)
			continue
		}
		t := c.out[q.home].Transfer(featBytes)
		t = c.in[node].TransferAt(t, featBytes)
		c.qlog.Add(q.id, qtrace.Interval{
			Phase: qtrace.PhaseXfer, Stage: stageSL,
			Detail: fmt.Sprintf("node%d-node%d", q.home, node),
			Start:  now, End: t,
		})
		c.eng.AtCall(t, q, arg)
	}
}

// respond runs at a shard job's completion on its replica: send the
// shard's rerank results back to the front end for the merge.
func (q *query) respond(shard int) {
	c := q.c
	now := c.eng.Now()
	node := q.replica[shard]
	c.router.Done(node)
	c.qlog.Add(q.id, qtrace.Interval{
		Phase: qtrace.PhaseExec, Stage: stageRR, Level: "nearmem+nearstor",
		Detail: fmt.Sprintf("shard%d@node%d", shard, node),
		Start:  q.shardStart[shard], End: now,
	})
	arg := qResponse | uint64(shard)<<qShift
	if node == q.home {
		c.eng.AtCall(now, q, arg)
		return
	}
	respBytes := scaleBytes(c.model.ResultBytesPerBatch(), c.shardFrac(q.content, shard))
	t := c.out[node].Transfer(respBytes)
	t = c.in[q.home].TransferAt(t, respBytes)
	c.qlog.Add(q.id, qtrace.Interval{
		Phase: qtrace.PhaseXfer, Stage: stageRR,
		Detail: fmt.Sprintf("node%d-node%d", node, q.home),
		Start:  now, End: t,
	})
	c.eng.AtCall(t, q, arg)
}
