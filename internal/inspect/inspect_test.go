package inspect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The server must plug straight into qtrace.Options.Observer.
var _ qtrace.Observer = (*Server)(nil)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServerEndpoints drives the inspector the way `reachsim -http` does:
// query completions through the observer hook, a finished run's registry
// through ObserveRun, then the HTTP surface — /progress JSON, expvar,
// pprof index and the root help page.
func TestServerEndpoints(t *testing.T) {
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	for i := 0; i < 100; i++ {
		s.QueryDone(i, sim.Time(i+1)*sim.Millisecond)
	}
	run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.ObserveRun("pipeline", run.Sys.Engine().Stats())

	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, base+"/progress")), &snap); err != nil {
		t.Fatalf("/progress is not valid JSON: %v", err)
	}
	if snap.QueriesCompleted != 100 {
		t.Errorf("queries_completed = %d, want 100", snap.QueriesCompleted)
	}
	// 100 samples of 1..100 ms: p50 near 50 ms, p99 near 99 ms, within the
	// sketch's relative error.
	if snap.P50Ms < 45 || snap.P50Ms > 55 {
		t.Errorf("p50_ms = %v, want ~50", snap.P50Ms)
	}
	if snap.P99Ms < 90 || snap.P99Ms > 105 {
		t.Errorf("p99_ms = %v, want ~99", snap.P99Ms)
	}
	if snap.P99Ms < snap.P50Ms {
		t.Errorf("p99 %v < p50 %v", snap.P99Ms, snap.P50Ms)
	}
	if snap.RunsObserved != 1 || snap.LastRun != "pipeline" {
		t.Errorf("runs_observed = %d last_run = %q, want 1 %q",
			snap.RunsObserved, snap.LastRun, "pipeline")
	}
	if len(snap.Resources) == 0 {
		t.Fatal("no per-resource busy fractions in snapshot")
	}
	for _, r := range snap.Resources {
		if r.BusyPct < 0 || r.BusyPct > 100 {
			t.Errorf("resource %s busy %.1f%% out of range", r.Name, r.BusyPct)
		}
	}

	vars := get(t, base+"/debug/vars")
	for _, want := range []string{"qtrace_queries_completed", "qtrace_p99_ms", "qtrace_resources_busy_pct"} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %q", want)
		}
	}
	if !strings.Contains(vars, `"qtrace_queries_completed": 100`) {
		t.Errorf("/debug/vars does not report 100 completed queries:\n%.500s", vars)
	}
	if !strings.Contains(get(t, base+"/debug/pprof/"), "profile") {
		t.Error("pprof index not served")
	}
	if !strings.Contains(get(t, base+"/"), "/progress") {
		t.Error("root help page missing endpoint list")
	}
}

// TestSecondServerTakesOverExpvar: expvar names are published once per
// process; starting a second server (new run, new test) must not panic and
// must route the global vars to the newest server.
func TestSecondServerTakesOverExpvar(t *testing.T) {
	a := New()
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	a.QueryDone(0, sim.Millisecond)
	b := New()
	if err := b.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.QueryDone(0, sim.Millisecond)
	b.QueryDone(1, sim.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	vars := get(t, fmt.Sprintf("http://%s/debug/vars", b.Addr()))
	if !strings.Contains(vars, `"qtrace_queries_completed": 2`) {
		t.Errorf("expvar not routed to the active server:\n%.500s", vars)
	}
	// After the active server closes, the vars go quiet instead of panicking.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if snap, ok := snapshotActive(); ok {
		t.Errorf("active snapshot still live after Close: %+v", snap)
	}
}

// multiNop is a minimal handler for driving a MultiEngine in tests.
type multiNop struct{}

func (multiNop) Fire(*sim.Engine, uint64) {}

// TestObserveMulti: after attaching a MultiEngine, /progress and expvar
// report the per-domain view — barrier rounds, the conservative lookahead
// and each domain's clock — alongside the query metrics.
func TestObserveMulti(t *testing.T) {
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	me := sim.NewMultiEngine(2)
	x := sim.NewCrossLink(me.Domain(0), "net", 1e9, sim.Millisecond)
	me.Domain(0).AtCall(sim.Millisecond, crossSender{x, me.Domain(1)}, 0)
	s.ObserveMulti(me)
	me.Run()

	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, "http://"+s.Addr()+"/progress")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.BarrierRounds == 0 {
		t.Error("barrier_rounds = 0 after a multi-domain run")
	}
	if want := sim.Millisecond.Microseconds(); snap.LookaheadUS != want {
		t.Errorf("lookahead_us = %v, want %v", snap.LookaheadUS, want)
	}
	if len(snap.DomainClocksUS) != 2 {
		t.Fatalf("domain_clocks_us has %d entries, want 2", len(snap.DomainClocksUS))
	}
	if len(snap.DomainMailboxDepths) != 2 {
		t.Fatalf("domain_mailbox_depths has %d entries, want 2", len(snap.DomainMailboxDepths))
	}
	vars := get(t, "http://"+s.Addr()+"/debug/vars")
	for _, want := range []string{"sim_barrier_rounds", "sim_domain_clocks_us", "sim_domain_mailbox_depths"} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %q", want)
		}
	}
}

// crossSender exports one event across the link when fired.
type crossSender struct {
	x   *sim.CrossLink
	dst *sim.Engine
}

func (c crossSender) Fire(e *sim.Engine, arg uint64) {
	c.x.Send(c.dst, 64, multiNop{}, arg)
}

// TestObserveCache: after attaching a cache counter source, /progress
// carries its live accounting and the cluster_cache_* expvars read
// through it; without one the snapshot omits the block entirely.
func TestObserveCache(t *testing.T) {
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, "http://"+s.Addr()+"/progress")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache != nil {
		t.Fatalf("cache block present before ObserveCache: %+v", snap.Cache)
	}

	s.ObserveCache(func() CacheCounters {
		return CacheCounters{Hits: 6, Misses: 2, Coalesced: 3, Lookups: 8, HitRate: 0.75}
	})
	if err := json.Unmarshal([]byte(get(t, "http://"+s.Addr()+"/progress")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache == nil || snap.Cache.Hits != 6 || snap.Cache.Coalesced != 3 || snap.Cache.HitRate != 0.75 {
		t.Fatalf("cache block = %+v, want the observed counters", snap.Cache)
	}
	vars := get(t, "http://"+s.Addr()+"/debug/vars")
	for _, want := range []string{`"cluster_cache_hits": 6`, `"cluster_cache_lookups": 8`,
		`"cluster_cache_coalesced": 3`, `"cluster_cache_hit_rate": 0.75`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %q", want)
		}
	}
}

// TestProgressEmptyServer: a just-started inspector serves zeros, not NaNs
// or errors.
func TestProgressEmptyServer(t *testing.T) {
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, "http://"+s.Addr()+"/progress")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.QueriesCompleted != 0 || snap.P99Ms != 0 || snap.RunsObserved != 0 {
		t.Errorf("empty server snapshot not zero: %+v", snap)
	}
}
