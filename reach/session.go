package reach

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/sim"
)

// Deploy performs the ReACH configuration step (paper Fig. 6): it loads
// every fixed buffer into its level's memory region, charges the setup
// movement to the "Setup" stage, and advances simulated time past the
// deployment so subsequent batches measure steady state. Must be called
// once, after configuration and before the first Begin.
func (s *System) Deploy() error {
	if s.deployed {
		return fmt.Errorf("reach: system already deployed")
	}
	var latest sim.Time
	for i, b := range s.buffers {
		idx := b.Instance
		if idx < 0 {
			idx = i % maxInt(1, s.sys.InstanceCount(b.Level.internal()))
		}
		if d := s.sys.LoadFixedBuffer(b.Level.internal(), idx, b.Size, "Setup"); d > latest {
			latest = d
		}
	}
	if latest > s.sys.Engine().Now() {
		s.sys.Engine().RunUntil(latest)
	}
	s.deployed = true
	return nil
}

// Job is one in-flight batch: the host-side view of a GAM job under
// construction (Begin → Enqueue/Execute → Commit) and, after Commit, a
// handle on its progress.
type Job struct {
	sys       *System
	j         *core.Job
	id        int
	committed bool

	nodesByACC map[*ACC][]*core.TaskNode
	hostInput  map[*Stream]int64 // host-enqueued payloads, transferred at Commit
}

// Begin opens a new batch job. Multiple jobs may be open/in flight at
// once; the GAM pipelines them (§II-D).
func (s *System) Begin() (*Job, error) {
	if !s.deployed {
		return nil, fmt.Errorf("reach: Deploy before Begin")
	}
	s.nextJob++
	return &Job{
		sys:        s,
		j:          core.NewJob(s.nextJob),
		id:         s.nextJob,
		nodesByACC: make(map[*ACC][]*core.TaskNode),
		hostInput:  make(map[*Stream]int64),
	}, nil
}

// SetPriority marks the batch for preferential GAM dispatch over
// lower-priority jobs contending for the same accelerators — the runtime
// resource-balancing knob of §III. Must be called before Commit.
func (b *Job) SetPriority(p int) error {
	if b.committed {
		return fmt.Errorf("reach: job %d already committed", b.id)
	}
	b.j.Priority = p
	return nil
}

// Enqueue pushes one element (of the stream's configured size) from the
// host into a CPU-sourced stream — Listing 3's Input.enqueue.
func (b *Job) Enqueue(st *Stream) error {
	if b.committed {
		return fmt.Errorf("reach: job %d already committed", b.id)
	}
	if st.Src != CPU {
		return fmt.Errorf("reach: stream %q source is %v; Enqueue is host-side", st.Name, st.Src)
	}
	b.hostInput[st] += st.Size
	return nil
}

// Execute appends one invocation of the accelerator to the job —
// Listing 3's acc.execute(threadId). Dependencies are inferred from the
// ACC's input streams: it waits for every producer of those streams that
// ran earlier in this job, or for the host enqueue when the stream comes
// from the CPU.
func (b *Job) Execute(a *ACC) error {
	if b.committed {
		return fmt.Errorf("reach: job %d already committed", b.id)
	}
	if a.sys != b.sys {
		return fmt.Errorf("reach: accelerator %s belongs to a different system", a.Name)
	}
	var deps []*core.TaskNode
	for _, st := range a.inputStreams() {
		if st.Src == CPU {
			continue // handled via NotBefore at Commit
		}
		for _, producer := range st.producers {
			deps = append(deps, b.nodesByACC[producer]...)
		}
	}

	bytes := a.work.StreamBytes
	if bytes == 0 {
		bytes = a.fixedInputBytes()
	}
	outBytes := a.work.OutputBytes
	out := a.outputStream()
	if outBytes == 0 && out != nil {
		outBytes = out.Size
	}
	stage := a.stage()

	node := b.j.AddTask(accel.Task{
		Name:           a.Template,
		Stage:          stage,
		Kernel:         mustTemplate(a),
		MACs:           a.work.MACs,
		Bytes:          bytes,
		Source:         a.taskSource(),
		Pattern:        a.pattern(),
		RemoteFraction: a.work.RemoteFraction,
	}, a.Level.internal(), deps...)
	node.Pin = a.Instance
	node.OutBytes = outBytes
	if out != nil && out.Dst == CPU {
		node.SinkToHost = true
	}
	b.nodesByACC[a] = append(b.nodesByACC[a], node)
	return nil
}

// Broadcast validates a BroadCast stream's use in this job — Listing 3's
// Features.broadcast(). Duplication to every consumer instance is handled
// by the GAM when the producing tasks complete.
func (b *Job) Broadcast(st *Stream) error {
	if st.Type != BroadCast {
		return fmt.Errorf("reach: stream %q is %v, not BroadCast", st.Name, st.Type)
	}
	return nil
}

// Collect validates a Collect stream's use in this job — Listing 3's
// Result.collect(). The gather to the destination happens when the
// producing tasks complete.
func (b *Job) Collect(st *Stream) error {
	if st.Type != Collect {
		return fmt.Errorf("reach: stream %q is %v, not Collect", st.Name, st.Type)
	}
	return nil
}

// Commit submits the job to the GAM. Host-enqueued inputs are DMAed to
// their destination level first; consuming tasks carry a matching
// NotBefore.
func (b *Job) Commit() error {
	if b.committed {
		return fmt.Errorf("reach: job %d already committed", b.id)
	}
	b.committed = true
	// Transfer host inputs and stamp NotBefore on the consumers.
	for st, bytes := range b.hostInput {
		done := b.sys.sys.Transfer(accel.CPU, st.Dst.internal(), 0, bytes, "Input")
		for a, nodes := range b.nodesByACC {
			if a.Level != st.Dst {
				continue
			}
			for _, in := range a.inputStreams() {
				if in == st {
					for _, n := range nodes {
						if done > n.NotBefore {
							n.NotBefore = done
						}
					}
				}
			}
		}
	}
	return b.sys.sys.GAM().Submit(b.j)
}

// Done reports whether the batch completed (valid after Run).
func (b *Job) Done() bool { return b.j.Done() }

// Latency reports submit-to-interrupt time (zero until done).
func (b *Job) Latency() sim.Time { return b.j.Latency() }

// FinishedAt reports the completion time (zero until done).
func (b *Job) FinishedAt() sim.Time { return b.j.FinishedAt }

// CoreJob exposes the underlying GAM job for the experiment harness.
func (b *Job) CoreJob() *core.Job { return b.j }

// stage produces the energy-attribution label for an ACC.
func (a *ACC) stage() string {
	if a.work.Stage != "" {
		return a.work.Stage
	}
	return a.Template
}

func mustTemplate(a *ACC) *fpga.Template {
	t, err := a.sys.sys.Registry().Lookup(a.Template)
	if err != nil {
		// RegisterAcc already validated the name; a failure here means
		// the registry was mutated behind our back.
		panic(err)
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
