package experiments

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// The simulator is deterministic, so the headline numbers recorded in
// EXPERIMENTS.md are exact. This test pins them tightly: any model or
// calibration change that moves a headline result must consciously update
// both this test and EXPERIMENTS.md.
func TestHeadlineRegression(t *testing.T) {
	m := workload.DefaultModel()

	f13, err := Fig13(m)
	if err != nil {
		t.Fatal(err)
	}
	i := f13.ReACH()
	pin(t, "ReACH throughput gain", f13.ThroughputGain(i), 4.666, 0.01)
	pin(t, "ReACH latency gain", f13.LatencyGain(i), 2.423, 0.01)
	pin(t, "ReACH energy reduction", f13.EnergyReduction(i), 0.597, 0.005)

	f8, err := Fig8(m)
	if err != nil {
		t.Fatal(err)
	}
	pin(t, "Fig8 movement share", f8.MovementShare, 0.784, 0.005)
	pin(t, "Fig8 rerank movement share", f8.StageMovement[StageRR], 0.577, 0.005)
}

func pin(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, pinned at %.3f ± %.3f — update EXPERIMENTS.md if this change is intended",
			name, got, want, tol)
	}
}
