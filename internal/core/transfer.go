package core

import (
	"repro/internal/accel"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Transfer moves `bytes` of stream payload from src to dst compute level,
// reserving the links on the path and charging energy to `stage`. dstIdx
// selects the destination instance where the level has per-instance media
// (near-memory DIMMs, near-storage buffers); it is ignored otherwise.
// Returns the completion time.
//
// These are the operations of the paper's Fig. 6: GAM forces cache
// writebacks before feeding near-memory accelerators (2b), initiates PCIe
// transfers for near-storage ones (2c), and DMAs results back up the
// hierarchy.
func (s *System) Transfer(src, dst accel.Level, dstIdx int, bytes int64, stage string) sim.Time {
	if bytes <= 0 {
		return s.eng.Now()
	}
	// Within the coherent host domain, same-level "transfers" are just
	// buffer handovers; between sibling near-memory or near-storage
	// instances real links are crossed (AIMbus / host PCIe switch).
	if src == dst && (src == accel.CPU || src == accel.OnChip) {
		return s.eng.Now()
	}
	p := s.plat
	m := s.meter
	done := s.eng.Now()

	max := func(t sim.Time) {
		if t > done {
			done = t
		}
	}

	fromHostSide := src == accel.CPU || src == accel.OnChip
	switch {
	case fromHostSide && dst == accel.OnChip, fromHostSide && dst == accel.CPU:
		// Within the coherent domain: cache/NoC only.
		max(p.HostMem.Stream(bytes))
		m.CacheTraffic(stage, bytes)
	case fromHostSide && dst == accel.NearMemory:
		// Force a write-back of any cached copy, then DMA host DRAM →
		// memory network → target DIMM.
		wb := s.forceWriteback(bytes, stage)
		max(wb)
		max(p.HostMem.Stream(bytes))
		max(p.NearDIMMs[dstIdx%len(p.NearDIMMs)].Stream(bytes))
		m.DRAMTraffic(stage, 2*bytes) // host read + DIMM write
		m.MCTraffic(stage, bytes)
	case fromHostSide && dst == accel.NearStorage:
		wb := s.forceWriteback(bytes, stage)
		max(wb)
		max(p.HostMem.Stream(bytes))
		max(p.Storage.HostToDevice(dstIdx%p.Storage.Len(), bytes))
		max(p.DevBuffers[dstIdx%len(p.DevBuffers)].Stream(bytes))
		m.DRAMTraffic(stage, 2*bytes) // host read + device buffer write
		m.MCTraffic(stage, bytes)
		m.PCIeTraffic(stage, bytes)
	case src == accel.NearMemory && (dst == accel.CPU || dst == accel.OnChip):
		max(p.NearDIMMs[0].Stream(bytes))
		max(p.HostMem.Stream(bytes))
		m.DRAMTraffic(stage, 2*bytes)
		m.MCTraffic(stage, bytes)
	case src == accel.NearMemory && dst == accel.NearMemory:
		// Sibling DIMMs over the AIMbus.
		max(p.AIMBus.Transfer(bytes))
		m.DRAMTraffic(stage, 2*bytes)
		m.AIMBusTraffic(stage, bytes)
	case src == accel.NearMemory && dst == accel.NearStorage:
		max(p.NearDIMMs[0].Stream(bytes))
		max(p.Storage.HostToDevice(dstIdx%p.Storage.Len(), bytes))
		max(p.DevBuffers[dstIdx%len(p.DevBuffers)].Stream(bytes))
		m.DRAMTraffic(stage, 2*bytes)
		m.MCTraffic(stage, bytes)
		m.PCIeTraffic(stage, bytes)
	case src == accel.NearStorage && (dst == accel.CPU || dst == accel.OnChip):
		max(p.Storage.HostToDevice(dstIdx%p.Storage.Len(), bytes)) // device→host crosses the same shared link
		max(p.HostMem.Stream(bytes))
		m.PCIeTraffic(stage, bytes)
		m.DRAMTraffic(stage, bytes)
		m.MCTraffic(stage, bytes)
	case src == accel.NearStorage && dst == accel.NearMemory:
		max(p.Storage.HostToDevice(dstIdx%p.Storage.Len(), bytes))
		max(p.NearDIMMs[dstIdx%len(p.NearDIMMs)].Stream(bytes))
		m.PCIeTraffic(stage, bytes)
		m.DRAMTraffic(stage, bytes)
		m.MCTraffic(stage, bytes)
	case src == accel.NearStorage && dst == accel.NearStorage:
		// Device-to-device via the host switch.
		max(p.Storage.HostToDevice(dstIdx%p.Storage.Len(), 2*bytes))
		m.PCIeTraffic(stage, 2*bytes)
		m.DRAMTraffic(stage, bytes)
	default:
		// CPU↔CPU or unhandled: treat as coherent-domain copy.
		max(p.HostMem.Stream(bytes))
		m.CacheTraffic(stage, bytes)
	}
	return done
}

// forceWriteback models GAM flushing cached copies of a stream region
// before a lower level may consume it: the dirty fraction of the region
// that can live in the LLC is written back to DRAM.
func (s *System) forceWriteback(bytes int64, stage string) sim.Time {
	resident := bytes
	if cap := s.plat.LLC.CapacityBytes(); resident > cap {
		resident = cap
	}
	if resident <= 0 {
		return s.eng.Now()
	}
	done := s.plat.HostMem.Stream(resident)
	s.meter.CacheTraffic(stage, resident)
	s.meter.DRAMTraffic(stage, resident)
	return done
}

// LoadFixedBuffer accounts the one-time placement of a fixed buffer at a
// level (Fig. 6 step 2: initial data loading from the file system /
// storage into each level's memory region). It is charged to the given
// stage label (usually "Setup") and excluded from steady-state per-batch
// accounting by the experiment harness.
func (s *System) LoadFixedBuffer(dst accel.Level, dstIdx int, bytes int64, stage string) sim.Time {
	if bytes <= 0 {
		return s.eng.Now()
	}
	p := s.plat
	m := s.meter
	switch dst {
	case accel.NearStorage:
		// Already resident on the SSDs: nothing to move.
		return s.eng.Now()
	case accel.NearMemory:
		done := p.Storage.HostRead(dstIdx%p.Storage.Len(), bytes, storage.Sequential)
		if d := p.NearDIMMs[dstIdx%len(p.NearDIMMs)].Stream(bytes); d > done {
			done = d
		}
		m.SSDTraffic(stage, bytes)
		m.PCIeTraffic(stage, bytes)
		m.DRAMTraffic(stage, bytes)
		return done
	default: // OnChip / CPU: into host DRAM (and SPM for small sets)
		done := p.Storage.HostRead(0, bytes, storage.Sequential)
		if d := p.HostMem.Stream(bytes); d > done {
			done = d
		}
		m.SSDTraffic(stage, bytes)
		m.PCIeTraffic(stage, bytes)
		m.DRAMTraffic(stage, bytes)
		return done
	}
}
