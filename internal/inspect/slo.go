package inspect

import (
	"sync"

	"repro/internal/qtrace"
	"repro/internal/report"
	"repro/internal/sim"
)

// maxSLOWindows bounds retained window state: a monitor on an unbounded
// sweep drops its oldest windows past this count (the cumulative breach
// counters are unaffected — only per-window quantiles age out).
const maxSLOWindows = 1024

// SLOMonitor tracks query latency against an objective over rolling
// sim-time windows: each completion (delivered through qtrace's ObserverAt
// hook, so windows are keyed by *simulated* completion time, not wall
// clock) folds into its window's latency sketch and, when it exceeds the
// objective, the window's and the run's burn counters. Windowing by sim
// time makes the output deterministic: the same run produces the same
// window table at any -pj or worker count.
//
// The monitor is mutex-protected — completions arrive from simulation
// worker goroutines while HTTP scrapes read snapshots.
type SLOMonitor struct {
	mu        sync.Mutex
	width     sim.Time
	objective sim.Time
	windows   []*sloWindow
	base      int // window index of windows[0]
	queries   uint64
	breaches  uint64
	evicted   uint64 // populated windows dropped past maxSLOWindows
}

type sloWindow struct {
	start    sim.Time
	count    int
	breaches int
	sketch   *qtrace.Sketch
}

// NewSLOMonitor creates a monitor with the given window width and latency
// objective (both must be positive).
func NewSLOMonitor(width, objective sim.Time) *SLOMonitor {
	if width <= 0 || objective <= 0 {
		panic("inspect: SLO window and objective must be positive")
	}
	return &SLOMonitor{width: width, objective: objective}
}

// QueryDone implements qtrace.Observer. The monitor needs completion
// instants, which arrive through QueryDoneAt; the plain hook is a no-op so
// the monitor composes with other observers under qtrace.Tee.
func (m *SLOMonitor) QueryDone(int, sim.Time) {}

// QueryDoneAt implements qtrace.ObserverAt: fold one completion into the
// window covering its simulated completion instant.
func (m *SLOMonitor) QueryDoneAt(_ int, at, latency sim.Time) {
	idx := int(at / m.width)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.windows == nil {
		m.base = idx
	}
	for idx-m.base >= len(m.windows) {
		m.windows = append(m.windows, nil)
	}
	if idx < m.base {
		// A completion before the retained horizon (only possible across
		// re-runs onto one monitor): count it, quantiles age out.
		m.queries++
		if latency > m.objective {
			m.breaches++
		}
		return
	}
	if len(m.windows) > maxSLOWindows {
		drop := len(m.windows) - maxSLOWindows
		for _, w := range m.windows[:drop] {
			if w != nil && w.count > 0 {
				m.evicted++
			}
		}
		m.windows = append(m.windows[:0], m.windows[drop:]...)
		m.base += drop
	}
	w := m.windows[idx-m.base]
	if w == nil {
		w = &sloWindow{start: sim.Time(idx) * m.width, sketch: qtrace.NewSketch(0)}
		m.windows[idx-m.base] = w
	}
	w.count++
	w.sketch.Add(latency)
	m.queries++
	if latency > m.objective {
		w.breaches++
		m.breaches++
	}
}

// SLOWindowStat is one window's summary in a snapshot.
type SLOWindowStat struct {
	StartMs  float64 `json:"start_ms"`
	Queries  int     `json:"queries"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
	Breaches int     `json:"breaches"`
}

// SLOStats is the monitor's snapshot shape (served under /progress and
// expvar).
type SLOStats struct {
	ObjectiveMs float64 `json:"objective_ms"`
	WindowMs    float64 `json:"window_ms"`
	Queries     uint64  `json:"queries"`
	Breaches    uint64  `json:"breaches"`
	BurnPct     float64 `json:"burn_pct"`
	// WindowsEvicted counts populated windows silently aged out past the
	// maxSLOWindows retention cap — when non-zero, the per-window rows
	// below are a suffix of the run, not the whole story.
	WindowsEvicted uint64          `json:"windows_evicted,omitempty"`
	Windows        []SLOWindowStat `json:"windows,omitempty"`
}

// Stats snapshots the monitor: cumulative burn plus per-window quantiles
// in window order (empty windows are skipped).
func (m *SLOMonitor) Stats() SLOStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := SLOStats{
		ObjectiveMs:    m.objective.Milliseconds(),
		WindowMs:       m.width.Milliseconds(),
		Queries:        m.queries,
		Breaches:       m.breaches,
		WindowsEvicted: m.evicted,
	}
	if m.queries > 0 {
		st.BurnPct = 100 * float64(m.breaches) / float64(m.queries)
	}
	for _, w := range m.windows {
		if w == nil || w.count == 0 {
			continue
		}
		st.Windows = append(st.Windows, SLOWindowStat{
			StartMs:  w.start.Milliseconds(),
			Queries:  w.count,
			P50Ms:    w.sketch.Quantile(0.5).Milliseconds(),
			P99Ms:    w.sketch.Quantile(0.99).Milliseconds(),
			P999Ms:   w.sketch.Quantile(0.999).Milliseconds(),
			Breaches: w.breaches,
		})
	}
	return st
}

// Table renders the end-of-run SLO report: one row per non-empty window
// with its quantiles and burn, plus cumulative footnotes. Returns nil when
// no query completed.
func (m *SLOMonitor) Table() *report.Table {
	st := m.Stats()
	if st.Queries == 0 {
		return nil
	}
	t := &report.Table{
		Title: "SLO windows — rolling sim-time latency quantiles vs objective",
		Columns: []string{
			"window start ms", "queries", "p50 ms", "p99 ms", "p999 ms",
			"breaches", "burn %",
		},
	}
	for _, w := range st.Windows {
		burn := 0.0
		if w.Queries > 0 {
			burn = 100 * float64(w.Breaches) / float64(w.Queries)
		}
		t.AddRow(
			report.F(w.StartMs, 3),
			report.F(float64(w.Queries), 0),
			report.F(w.P50Ms, 3),
			report.F(w.P99Ms, 3),
			report.F(w.P999Ms, 3),
			report.F(float64(w.Breaches), 0),
			report.F(burn, 1),
		)
	}
	t.AddNote("objective %.3f ms, window %.3f ms", st.ObjectiveMs, st.WindowMs)
	t.AddNote("%d queries, %d breaches (%.2f%% burn)", st.Queries, st.Breaches, st.BurnPct)
	if st.WindowsEvicted > 0 {
		t.AddNote("%d populated windows evicted past the %d-window retention cap — rows above are a suffix of the run",
			st.WindowsEvicted, maxSLOWindows)
	}
	return t
}
