package cbir

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/workload"
)

func pqTestData(t *testing.T) *workload.Dataset {
	t.Helper()
	return workload.Synthetic(workload.SyntheticParams{
		N: 4000, D: 32, Clusters: 16, Spread: 0.08, Seed: 31,
	})
}

func TestTrainPQValidation(t *testing.T) {
	ds := pqTestData(t)
	if _, err := TrainPQ(ds.Vectors, PQParams{Subspaces: 5, CentroidsPerSub: 16, KMeansIters: 5, Seed: 1}); err == nil {
		t.Error("D=32 into 5 subspaces accepted")
	}
	if _, err := TrainPQ(ds.Vectors, PQParams{Subspaces: 4, CentroidsPerSub: 0, KMeansIters: 5, Seed: 1}); err == nil {
		t.Error("k*=0 accepted")
	}
	if _, err := TrainPQ(ds.Vectors, PQParams{Subspaces: 4, CentroidsPerSub: 16, KMeansIters: 5, Seed: 1}); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestPQCompressionRatio(t *testing.T) {
	ds := pqTestData(t)
	pq, err := TrainPQ(ds.Vectors, PQParams{Subspaces: 8, CentroidsPerSub: 64, KMeansIters: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 32 floats = 128 bytes → 8 one-byte codes: 16×.
	if pq.CodeBytes() != 8 {
		t.Errorf("code bytes = %d, want 8", pq.CodeBytes())
	}
	if r := pq.CompressionRatio(); r != 16 {
		t.Errorf("compression ratio = %v, want 16", r)
	}
}

func TestPQEncodeDecodeRoundTrip(t *testing.T) {
	ds := pqTestData(t)
	pq, err := TrainPQ(ds.Vectors, PQParams{Subspaces: 8, CentroidsPerSub: 128, KMeansIters: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction must be much closer to the original than a random
	// other vector is.
	var recErr, crossErr float64
	for i := 0; i < 100; i++ {
		v := ds.Vectors.Row(i)
		rec := pq.Decode(pq.Encode(v))
		recErr += float64(kernels.SquaredL2(rec, v))
		crossErr += float64(kernels.SquaredL2(ds.Vectors.Row(i+1000), v))
	}
	if recErr >= crossErr/4 {
		t.Errorf("reconstruction error %.3f not well below cross error %.3f", recErr, crossErr)
	}
}

func TestADCMatchesSymmetricDistance(t *testing.T) {
	ds := pqTestData(t)
	pq, err := TrainPQ(ds.Vectors, PQParams{Subspaces: 4, CentroidsPerSub: 64, KMeansIters: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries(1, 0.02, 5).Row(0)
	table := pq.DistanceTable(q)
	for i := 0; i < 50; i++ {
		code := pq.Encode(ds.Vectors.Row(i))
		adc := ADC(table, code)
		// ADC(q, code) must equal ‖q − decode(code)‖² exactly (it is the
		// same sum, just table-ised).
		direct := kernels.SquaredL2(q, pq.Decode(code))
		diff := float64(adc - direct)
		if diff < -1e-4 || diff > 1e-4 {
			t.Fatalf("ADC %v != direct %v at %d", adc, direct, i)
		}
	}
}

func TestPQIndexRecallBelowExactRerank(t *testing.T) {
	// The paper's motivation (§IV-A): compression reduces data visited by
	// orders of magnitude but penalises recall, which is why ReACH keeps
	// full-precision vectors and accelerates the exact rerank instead.
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 6000, D: 32, Clusters: 24, Spread: 0.12, Seed: 77,
	})
	queries := ds.Queries(12, 0.03, 99)
	params := SearchParams{Probes: 10, Candidates: 2560, K: 10}

	exact, err := BuildIndex(ds.Vectors, 24, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	exactRecall, err := exact.RecallAtK(queries, params)
	if err != nil {
		t.Fatal(err)
	}

	compressed, err := BuildPQIndex(ds.Vectors, 24, 20, 5,
		PQParams{Subspaces: 4, CentroidsPerSub: 16, KMeansIters: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pqRecall, err := compressed.RecallAtK(queries, params)
	if err != nil {
		t.Fatal(err)
	}

	if exactRecall < 0.85 {
		t.Errorf("exact-rerank recall = %.3f, want >= 0.85", exactRecall)
	}
	if pqRecall >= exactRecall {
		t.Errorf("PQ recall (%.3f) not below exact recall (%.3f); compression should cost accuracy",
			pqRecall, exactRecall)
	}
	if ratio := compressed.PQ().CompressionRatio(); ratio < 10 {
		t.Errorf("compression ratio = %.0f, want >= 10 (orders-of-magnitude data reduction)", ratio)
	}
	if qe := compressed.QuantizationError(500); qe <= 0 {
		t.Errorf("quantisation error = %v, want positive", qe)
	}
}

func TestPQSearchReturnsSortedK(t *testing.T) {
	ds := pqTestData(t)
	ix, err := BuildPQIndex(ds.Vectors, 16, 15, 9, DefaultPQParamsFor(32))
	if err != nil {
		t.Fatal(err)
	}
	queries := ds.Queries(3, 0.02, 21)
	res, err := ix.Search(queries, SearchParams{Probes: 4, Candidates: 512, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for b, r := range res {
		if len(r) != 5 {
			t.Errorf("query %d: %d results", b, len(r))
		}
		for i := 1; i < len(r); i++ {
			if r[i].Dist < r[i-1].Dist {
				t.Errorf("query %d results unsorted", b)
			}
		}
	}
}

// DefaultPQParamsFor adapts the default parameters to a dimensionality
// (test helper exercising the parameter plumbing).
func DefaultPQParamsFor(d int) PQParams {
	p := DefaultPQParams()
	for d%p.Subspaces != 0 {
		p.Subspaces /= 2
	}
	p.CentroidsPerSub = 64
	return p
}
