package metrics

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// tickLoad is a handler that occupies a link every period, count times —
// a minimal workload that keeps the calendar busy while a sampler runs.
type tickLoad struct {
	link   *sim.Link
	period sim.Time
	left   int
}

func (l *tickLoad) Fire(eng *sim.Engine, _ uint64) {
	l.link.Transfer(1 << 20)
	l.left--
	if l.left > 0 {
		eng.ScheduleCall(l.period, l, 0)
	}
}

func TestSamplerRecordsSeries(t *testing.T) {
	eng := sim.NewEngine()
	link := sim.NewLink(eng, "test.link", 1e9, 0)
	load := &tickLoad{link: link, period: 50 * sim.Microsecond, left: 20}
	eng.ScheduleCall(0, load, 0)

	rec := Attach(eng, Options{Interval: 10 * sim.Microsecond})
	eng.Run()
	rec.Finish()

	s := rec.Sampler
	if s.Samples() < 10 {
		t.Fatalf("expected many samples, got %d", s.Samples())
	}
	se, ok := s.Lookup("test.link")
	if !ok {
		t.Fatal("link series missing")
	}
	if se.Len() != s.Samples() {
		t.Fatalf("series len %d != samples %d", se.Len(), s.Samples())
	}
	// Cumulative counters must be monotone.
	for i := 1; i < se.Len(); i++ {
		if se.At(i).Bytes < se.At(i-1).Bytes || se.At(i).Busy < se.At(i-1).Busy {
			t.Fatalf("counters regressed at sample %d", i)
		}
	}
	last := se.At(se.Len() - 1)
	if last.Bytes != 20<<20 {
		t.Fatalf("closing sample bytes = %d, want %d", last.Bytes, 20<<20)
	}
	// The closing sample must land at the end-of-run instant.
	if got := s.Time(s.Samples() - 1); got != eng.Now() {
		t.Fatalf("closing sample at %v, engine at %v", got, eng.Now())
	}
}

// TestSamplerDoesNotKeepEngineAlive: an attached sampler must not prevent
// Engine.Run from draining an otherwise finished simulation.
func TestSamplerDoesNotKeepEngineAlive(t *testing.T) {
	eng := sim.NewEngine()
	link := sim.NewLink(eng, "test.link", 1e9, 0)
	load := &tickLoad{link: link, period: sim.Microsecond, left: 3}
	eng.ScheduleCall(0, load, 0)
	rec := Attach(eng, Options{Interval: 10 * sim.Microsecond})
	eng.Run() // must return
	rec.Finish()
	if eng.Pending() != 0 {
		t.Fatalf("calendar not drained: %d pending", eng.Pending())
	}
}

// TestSamplerMidRunRegistration: a resource registered after sampling
// started gets a series offset by Start(), and exports line up with the
// global time axis.
func TestSamplerMidRunRegistration(t *testing.T) {
	eng := sim.NewEngine()
	link := sim.NewLink(eng, "a.early", 1e9, 0)
	load := &tickLoad{link: link, period: 20 * sim.Microsecond, left: 10}
	eng.ScheduleCall(0, load, 0)
	var late *sim.Link
	eng.At(95*sim.Microsecond, func() {
		late = sim.NewLink(eng, "z.late", 1e9, 0)
		late.Transfer(4096)
	})
	rec := Attach(eng, Options{Interval: 10 * sim.Microsecond})
	eng.Run()
	rec.Finish()

	s := rec.Sampler
	se, ok := s.Lookup("z.late")
	if !ok {
		t.Fatal("late series missing")
	}
	if se.Start() == 0 {
		t.Fatal("late series should start after sample 0")
	}
	if se.Start()+se.Len() != s.Samples() {
		t.Fatalf("late series not aligned: start %d + len %d != samples %d",
			se.Start(), se.Len(), s.Samples())
	}
	if se.At(se.Len()-1).Bytes != 4096 {
		t.Fatalf("late series bytes = %d, want 4096", se.At(se.Len()-1).Bytes)
	}
}

// TestSamplerZeroAllocSteadyState is the tentpole's allocation gate: once
// every chunk and series exists, taking a sample allocates nothing.
func TestSamplerZeroAllocSteadyState(t *testing.T) {
	eng := sim.NewEngine()
	for _, n := range []string{"r.a", "r.b", "r.c", "r.d"} {
		sim.NewLink(eng, n, 1e9, 0)
	}
	s := NewSampler(eng, 10*sim.Microsecond)
	// Warm up: create series and first chunks.
	for i := 0; i < 8; i++ {
		s.sampleNow()
	}
	allocs := testing.AllocsPerRun(200, func() { s.sampleNow() })
	if allocs > 0 {
		t.Fatalf("sampleNow allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestAttributePicksPressuredResource(t *testing.T) {
	eng := sim.NewEngine()
	hot := sim.NewLink(eng, "bus.hot", 1e6, 0) // 1 MB/s: saturated
	sim.NewLink(eng, "bus.idle", 1e12, 0)      // never used
	cold := sim.NewLink(eng, "bus.cold", 1e12, 0)
	load := &tickLoad{link: hot, period: 10 * sim.Microsecond, left: 50}
	eng.ScheduleCall(0, load, 0)
	eng.At(0, func() { cold.Transfer(1) })
	rec := Attach(eng, Options{Interval: 5 * sim.Microsecond})
	eng.Run()
	rec.Finish()

	atts := Attribute(rec.Sampler, []PhaseWindow{{Name: "run", Start: 0, End: eng.Now()}})
	if len(atts) != 1 {
		t.Fatalf("got %d attributions", len(atts))
	}
	a := atts[0]
	if a.Resource != "bus.hot" {
		t.Fatalf("bottleneck = %q, want bus.hot (pressure %v)", a.Resource, a.Pressure)
	}
	if a.Pressure <= 0 || a.Share <= 0 || a.Share > 1 {
		t.Fatalf("bad pressure/share: %v / %v", a.Pressure, a.Share)
	}
}

func TestAttributeEmptyPhase(t *testing.T) {
	eng := sim.NewEngine()
	sim.NewLink(eng, "bus", 1e9, 0)
	rec := Attach(eng, Options{})
	eng.Run()
	rec.Finish()
	atts := Attribute(rec.Sampler, []PhaseWindow{
		{Name: "empty", Start: 0, End: sim.Millisecond},
		{Name: "degenerate", Start: 5, End: 5},
	})
	for _, a := range atts {
		if a.Resource != "" || a.Pressure != 0 {
			t.Fatalf("phase %q attributed %q with pressure %v, want none", a.Phase, a.Resource, a.Pressure)
		}
	}
}

func sampledRecorder(t *testing.T) *Recorder {
	t.Helper()
	eng := sim.NewEngine()
	b := sim.NewLink(eng, "bus.b", 1e9, 0)
	a := sim.NewLink(eng, "bus.a", 1e9, 0)
	load := &tickLoad{link: a, period: 20 * sim.Microsecond, left: 5}
	eng.ScheduleCall(0, load, 0)
	eng.At(0, func() { b.Transfer(123) })
	rec := Attach(eng, Options{Interval: 10 * sim.Microsecond, Spans: true})
	rec.Spans.Add(Span{Cat: CatDispatch, Name: "t0", Lane: "acc0", Cause: CauseImmediate, Job: 1})
	eng.Run()
	rec.Finish()
	return rec
}

// TestCSVWriterSortedAndWellFormed: rows parse under the declared header
// and resources appear in sorted order within each sample.
func TestCSVWriterSortedAndWellFormed(t *testing.T) {
	rec := sampledRecorder(t)
	var buf bytes.Buffer
	cw := NewCSVWriter(&buf)
	if err := cw.WriteRun("r0", rec.Sampler); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(rows[0], ","), strings.Join(CSVHeader(), ","); got != want {
		t.Fatalf("header %q, want %q", got, want)
	}
	if len(rows) != 1+rec.Sampler.Samples()*2 {
		t.Fatalf("row count %d, want %d", len(rows), 1+rec.Sampler.Samples()*2)
	}
	for i := 1; i < len(rows); i += 2 {
		if rows[i][3] != "bus.a" || rows[i+1][3] != "bus.b" {
			t.Fatalf("rows %d/%d not in sorted resource order: %q, %q", i, i+1, rows[i][3], rows[i+1][3])
		}
		if rows[i][1] != rows[i+1][1] {
			t.Fatalf("rows %d/%d not the same sample", i, i+1)
		}
	}
}

func TestJSONLWriterShapes(t *testing.T) {
	rec := sampledRecorder(t)
	var buf bytes.Buffer
	if err := NewJSONLWriter(&buf).WriteRun("r0", rec); err != nil {
		t.Fatal(err)
	}
	var samples, spans int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		switch m["type"] {
		case "sample":
			samples++
		case "span":
			spans++
		default:
			t.Fatalf("unknown line type %v", m["type"])
		}
	}
	if samples != rec.Sampler.Samples()*2 {
		t.Fatalf("sample lines %d, want %d", samples, rec.Sampler.Samples()*2)
	}
	if spans != 1 {
		t.Fatalf("span lines %d, want 1", spans)
	}
}

func TestSpanLogNilSafe(t *testing.T) {
	var l *SpanLog
	l.Add(Span{Cat: CatReconfig})
	if l.Len() != 0 || l.Spans() != nil {
		t.Fatal("nil SpanLog not inert")
	}
}
