package experiments

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/workload"
)

// The tests in this file assert the *shapes* of the paper's results: who
// wins, by roughly what factor, and where the crossovers fall. Absolute
// numbers are this simulator's, not PARADE's.

func TestFig8EnergyDistribution(t *testing.T) {
	r, err := Fig8(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~79 % of total energy is data movement.
	if r.MovementShare < 0.70 || r.MovementShare > 0.88 {
		t.Errorf("movement share = %.2f, paper says ~0.79", r.MovementShare)
	}
	// Paper: rerank data movement alone is ~52 % of the total.
	rr := r.StageMovement[StageRR]
	if rr < 0.42 || rr > 0.62 {
		t.Errorf("rerank movement share = %.2f, paper says ~0.52", rr)
	}
	// Rerank movement dominates every other cell.
	for _, st := range Stages() {
		if st != StageRR && r.StageMovement[st] >= rr {
			t.Errorf("%s movement (%.2f) >= rerank movement (%.2f)", st, r.StageMovement[st], rr)
		}
		if r.StageCompute[st] >= rr {
			t.Errorf("%s compute (%.2f) >= rerank movement (%.2f)", st, r.StageCompute[st], rr)
		}
	}
	// Every component appears in the table.
	for _, c := range energy.Components() {
		var sum float64
		for _, st := range Stages() {
			sum += r.ComponentStage[c][st]
		}
		if sum <= 0 {
			t.Errorf("component %v has zero energy in the on-chip run", c)
		}
	}
}

func TestFig9FeatureExtractionShapes(t *testing.T) {
	s, err := Fig9(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Single embedded instance is 7-10x slower than on-chip (§VI-B).
	r1 := s.NormRuntime(accel.NearMemory, 1)
	if r1 < 6.5 || r1 > 11 {
		t.Errorf("NM(1) runtime = %.2fx, paper says 7-10x", r1)
	}
	// Collective performance surpasses on-chip at 8-16 instances.
	if s.NormRuntime(accel.NearMemory, 16) >= 1 {
		t.Errorf("NM(16) runtime = %.2fx, should beat on-chip", s.NormRuntime(accel.NearMemory, 16))
	}
	if s.NormRuntime(accel.NearMemory, 8) >= s.NormRuntime(accel.NearMemory, 4) {
		t.Error("FE runtime not improving with instances")
	}
	// Near-storage tracks near-memory closely (same fabric, params in the
	// device buffer).
	nsr := s.NormRuntime(accel.NearStorage, 1)
	if nsr < r1*0.9 || nsr > r1*1.4 {
		t.Errorf("NS(1) = %.2fx vs NM(1) = %.2fx; should be similar or slightly worse", nsr, r1)
	}
	// On-chip keeps the best energy (paper: "on-chip accelerator has the
	// best overall energy").
	for _, n := range SweepCounts() {
		if e := s.NormEnergy(accel.NearMemory, n); e <= 1 {
			t.Errorf("NM(%d) FE energy = %.2fx, on-chip should win", n, e)
		}
		if e := s.NormEnergy(accel.NearStorage, n); e <= 1 {
			t.Errorf("NS(%d) FE energy = %.2fx, on-chip should win", n, e)
		}
	}
}

func TestFig10ShortlistShapes(t *testing.T) {
	s, err := Fig10(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// One NM instance is slower than on-chip; two or more win (§VI-B).
	if r := s.NormRuntime(accel.NearMemory, 1); r <= 1 {
		t.Errorf("NM(1) SL runtime = %.2fx, should be > 1", r)
	}
	if r := s.NormRuntime(accel.NearMemory, 2); r >= 1 {
		t.Errorf("NM(2) SL runtime = %.2fx, paper: 2+ instances beat on-chip", r)
	}
	// 40-60 % energy reduction for near-memory.
	e4 := s.NormEnergy(accel.NearMemory, 4)
	if e4 < 0.35 || e4 > 0.70 {
		t.Errorf("NM(4) SL energy = %.2fx, paper: 40-60%% reduction", e4)
	}
	// Near-storage is slightly slower than near-memory at equal counts
	// (SSD latency/bandwidth vs DIMM).
	for _, n := range SweepCounts() {
		nm := s.NormRuntime(accel.NearMemory, n)
		ns := s.NormRuntime(accel.NearStorage, n)
		if ns < nm {
			t.Errorf("NS(%d) SL (%.2f) faster than NM(%d) (%.2f); DIMMs should win", n, ns, n, nm)
		}
	}
}

func TestFig11RerankShapes(t *testing.T) {
	s, err := Fig11(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Near-memory speedup saturates at the host IO interface: beyond the
	// plateau, adding instances buys <10 %.
	nm8 := s.NormRuntime(accel.NearMemory, 8)
	nm16 := s.NormRuntime(accel.NearMemory, 16)
	if improvement := (nm8 - nm16) / nm8; improvement > 0.10 {
		t.Errorf("NM 8→16 improved %.0f%%; paper shows a plateau", improvement*100)
	}
	if nm16 > 1.0 {
		t.Errorf("NM(16) rerank = %.2fx, should still beat on-chip at the plateau", nm16)
	}
	// Near-storage keeps scaling with the SSD count.
	ns1 := s.NormRuntime(accel.NearStorage, 1)
	ns16 := s.NormRuntime(accel.NearStorage, 16)
	if ratio := ns1 / ns16; ratio < 8 {
		t.Errorf("NS 1→16 speedup = %.1fx, should be near-linear (>8x)", ratio)
	}
	if ns16 > 0.2 {
		t.Errorf("NS(16) rerank = %.2fx, paper shows ~0.1x", ns16)
	}
	// Rerank saves up to ~60 % energy moving to near-storage (§VI-B).
	eNS := s.NormEnergy(accel.NearStorage, 4)
	if eNS < 0.30 || eNS > 0.70 {
		t.Errorf("NS(4) rerank energy = %.2fx, paper: up to 60%% saving", eNS)
	}
	// Near-memory rerank saves less than near-storage (data still crosses
	// the host interface).
	if eNM := s.NormEnergy(accel.NearMemory, 4); eNM <= eNS {
		t.Errorf("NM(4) rerank energy (%.2f) <= NS(4) (%.2f); NS should win", eNM, eNS)
	}
}

func TestFig12SingleLevelShapes(t *testing.T) {
	r, err := Fig12(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*Fig12Cell{}
	for _, c := range r.Cells {
		byKey[c.Level.String()+string(rune('0'+c.Instances))] = c
	}
	base := r.Baseline
	// At one instance, on-chip wins on runtime (§VI-C).
	nm1 := byKey["NearMem1"]
	ns1 := byKey["NearStor1"]
	if nm1.Runtime <= base.Runtime || ns1.Runtime <= base.Runtime {
		t.Errorf("single near-data instance beat on-chip: NM %v, NS %v, base %v",
			nm1.Runtime, ns1.Runtime, base.Runtime)
	}
	// At four instances, both near levels win on runtime and energy.
	nm4 := byKey["NearMem4"]
	ns4 := byKey["NearStor4"]
	if nm4.Runtime >= base.Runtime {
		t.Errorf("NM(4) end-to-end %.1f ms >= on-chip %.1f ms", nm4.Runtime.Milliseconds(), base.Runtime.Milliseconds())
	}
	if ns4.Runtime >= base.Runtime {
		t.Errorf("NS(4) end-to-end %.1f ms >= on-chip %.1f ms", ns4.Runtime.Milliseconds(), base.Runtime.Milliseconds())
	}
	if nm4.EnergyJ >= base.EnergyJ || ns4.EnergyJ >= base.EnergyJ {
		t.Errorf("4-instance near-data energy (NM %.1f, NS %.1f) not below on-chip (%.1f)",
			nm4.EnergyJ, ns4.EnergyJ, base.EnergyJ)
	}
	// Scaling monotonicity within each level.
	if byKey["NearMem2"].Runtime >= nm1.Runtime || nm4.Runtime >= byKey["NearMem2"].Runtime {
		t.Error("NM end-to-end runtime not monotone in instances")
	}
}

func TestFig13Headline(t *testing.T) {
	r, err := Fig13(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	i := r.ReACH()
	// Paper: 4.5x throughput, 2.2x latency, 52 % energy reduction.
	tput := r.ThroughputGain(i)
	if tput < 3.6 || tput > 5.5 {
		t.Errorf("ReACH throughput gain = %.2fx, paper says 4.5x", tput)
	}
	lat := r.LatencyGain(i)
	if lat < 1.7 || lat > 2.7 {
		t.Errorf("ReACH latency gain = %.2fx, paper says 2.2x", lat)
	}
	er := r.EnergyReduction(i)
	if er < 0.40 || er > 0.65 {
		t.Errorf("ReACH energy reduction = %.0f%%, paper says 52%%", er*100)
	}
	// ReACH beats every single-level option on throughput.
	for j := range r.Cells {
		if j != i && r.ThroughputGain(j) >= tput {
			t.Errorf("option %s throughput (%.2fx) >= ReACH (%.2fx)",
				r.Cells[j].Option.Name, r.ThroughputGain(j), tput)
		}
	}
}

func TestTablesRender(t *testing.T) {
	m := workload.DefaultModel()
	var sb strings.Builder
	for _, tb := range []interface {
		Render(w interface {
			Write(p []byte) (int, error)
		}) error
	}{} {
		_ = tb
	}
	tables := []*struct {
		name string
		fn   func() error
	}{
		{"TableI", func() error { return TableI(m).Render(&sb) }},
		{"TableII", func() error { return TableII(config.Default()).Render(&sb) }},
		{"TableIII", func() error { return TableIII().Render(&sb) }},
		{"TableIV", func() error { return TableIV(energy.DefaultCosts()).Render(&sb) }},
	}
	for _, tb := range tables {
		if err := tb.fn(); err != nil {
			t.Errorf("%s render: %v", tb.name, err)
		}
	}
	out := sb.String()
	for _, want := range []string{"553 MB", "FR-FCFS", "273 MHz", "CACTI", "12 GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

func TestRunStageErrors(t *testing.T) {
	m := workload.DefaultModel()
	if _, err := RunStage(StageFE, accel.CPU, 1, m); err == nil {
		t.Error("stage on CPU accepted")
	}
	if _, err := RunStage("bogus", accel.OnChip, 1, m); err == nil {
		t.Error("unknown stage accepted")
	}
	bad := m
	bad.BatchSize = 0
	if _, err := RunPipeline(bad, ReACHMapping(), 4, 1); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := RunPipeline(m, ReACHMapping(), 4, 0); err == nil {
		t.Error("zero batches accepted")
	}
}
