package sim

import "fmt"

// Connection is serialised, shared bandwidth capacity with FIFO queueing —
// the interface every bandwidth-bound resource model programs against.
// Link is the canonical implementation; mem.Port, the NoC crossbar and
// mesh, the AIMbus, the host PCIe link and the SSD flash interconnects are
// all Connections under the hood.
type Connection interface {
	Resource
	// Transfer reserves capacity for n bytes starting no earlier than now
	// and returns the arrival time of the last byte at the far end.
	Transfer(n int64) Time
	// TransferAt is Transfer with an explicit earliest start time.
	TransferAt(start Time, n int64) Time
	// TransferEff moves n payload bytes at the given fraction of peak
	// bandwidth (row-miss or random-access inefficiency in bulk form).
	TransferEff(n int64, eff float64) Time
	// Occupy reserves capacity for an explicit duration carrying the given
	// payload (IOPS-limited occupancy not derivable from bandwidth).
	Occupy(d Time, payload int64) Time
	// NextFree reports when capacity next becomes available.
	NextFree() Time
	// BytesPerSec reports the configured peak payload bandwidth.
	BytesPerSec() float64
}

// Port is a bounded-FIFO endpoint with asynchronous park/wake back-pressure
// — the interface of the ReACH stream buffers between compute levels.
// TokenQueue is the canonical implementation.
type Port interface {
	Resource
	// Put offers an item; done (optional) runs at the simulated time the
	// item is accepted (immediately, or when a consumer frees a slot).
	Put(item any, done func())
	// Get asks for the next item; onItem runs at the simulated time an
	// item is available.
	Get(onItem func(any))
	// TryGet pops a buffered item without parking.
	TryGet() (any, bool)
	// Len reports current occupancy; Capacity the configured depth.
	Len() int
	Capacity() int
}

// Statically assert the canonical implementations satisfy the trio.
var (
	_ Connection = (*Link)(nil)
	_ Port       = (*TokenQueue)(nil)
	_ Resource   = (*Queue)(nil)
	_ Resource   = (*Window)(nil)
)

// queueEntry pairs a queued item with its enqueue time for wait accounting.
type queueEntry struct {
	item any
	at   Time
}

// Queue is a bounded, instrumented request queue whose consumer may scan
// entries and remove them out of order — the shape of an FR-FCFS memory
// controller's read/write queues, where a row-hit request overtakes older
// ones. Offers that find the queue full are rejected and counted as
// stalls; callers model back-pressure by retrying.
type Queue struct {
	eng      *Engine
	name     string
	capacity int
	entries  []queueEntry

	offers   uint64
	served   uint64
	stalls   uint64
	maxOcc   int
	waitTime Time
	waitHist *Histogram
}

// NewQueue creates a bounded queue and registers it on eng's registry.
func NewQueue(eng *Engine, name string, capacity int) *Queue {
	if eng == nil {
		panic("sim: NewQueue with nil engine")
	}
	if capacity < 1 {
		panic(fmt.Sprintf("sim: queue %q capacity must be >= 1", name))
	}
	q := &Queue{
		eng:      eng,
		capacity: capacity,
		waitHist: NewBoundedHistogram(statHistogramCap),
	}
	q.name = eng.Stats().Register(name, q)
	return q
}

// Name reports the registered name.
func (q *Queue) Name() string { return q.name }

// Capacity reports the configured depth.
func (q *Queue) Capacity() int { return q.capacity }

// Len reports current occupancy.
func (q *Queue) Len() int { return len(q.entries) }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.entries) >= q.capacity }

// Offer appends item, reporting false (a counted stall) when full.
func (q *Queue) Offer(item any) bool {
	q.offers++
	if len(q.entries) >= q.capacity {
		q.stalls++
		return false
	}
	q.entries = append(q.entries, queueEntry{item: item, at: q.eng.Now()})
	if len(q.entries) > q.maxOcc {
		q.maxOcc = len(q.entries)
	}
	return true
}

// At returns the i-th queued item without removing it (0 = oldest).
func (q *Queue) At(i int) any { return q.entries[i].item }

// EnqueuedAt reports when the i-th queued item was offered.
func (q *Queue) EnqueuedAt(i int) Time { return q.entries[i].at }

// RemoveAt removes and returns the i-th item, recording its queueing wait.
func (q *Queue) RemoveAt(i int) any {
	e := q.entries[i]
	q.entries = append(q.entries[:i], q.entries[i+1:]...)
	q.served++
	if w := q.eng.Now() - e.at; w > 0 {
		q.waitTime += w
		q.waitHist.Add(w)
	} else {
		q.waitHist.Add(0)
	}
	return e.item
}

// Served reports how many entries were removed.
func (q *Queue) Served() uint64 { return q.served }

// Stalls reports rejected offers.
func (q *Queue) Stalls() uint64 { return q.stalls }

// ResourceStats implements Resource.
func (q *Queue) ResourceStats() ResourceStats {
	return ResourceStats{
		Kind:         KindQueue,
		Ops:          q.served,
		Wait:         q.waitTime,
		Stalls:       q.stalls,
		Occupancy:    len(q.entries),
		MaxOccupancy: q.maxOcc,
		WaitHist:     q.waitHist,
	}
}

// Window models an outstanding-operations limit over a time-analytic
// command loop: an NVMe submission queue's depth, a bounded number of
// in-flight DMA descriptors. Admission of a new operation when the window
// is full waits for the oldest outstanding completion (FIFO), which is
// exactly the host-side behaviour of a driver keeping a queue pair full.
type Window struct {
	eng   *Engine
	name  string
	depth int

	inflight []Time // completion times of admitted ops, oldest first

	admitted uint64
	stalls   uint64
	waitTime Time
	maxOcc   int
	waitHist *Histogram
}

// NewWindow creates a window of the given depth and registers it.
func NewWindow(eng *Engine, name string, depth int) *Window {
	if eng == nil {
		panic("sim: NewWindow with nil engine")
	}
	if depth < 1 {
		panic(fmt.Sprintf("sim: window %q depth must be >= 1", name))
	}
	w := &Window{
		eng:      eng,
		depth:    depth,
		waitHist: NewBoundedHistogram(statHistogramCap),
	}
	w.name = eng.Stats().Register(name, w)
	return w
}

// Name reports the registered name.
func (w *Window) Name() string { return w.name }

// Depth reports the configured limit.
func (w *Window) Depth() int { return w.depth }

// Admit requests a slot for an operation wanting to start at `at`. When
// the window is full it retires the oldest outstanding completion and
// returns the (possibly delayed) admission time; the delay is recorded as
// wait. Callers pair every Admit with one Complete.
func (w *Window) Admit(at Time) Time {
	w.admitted++
	if len(w.inflight) >= w.depth {
		oldest := w.inflight[0]
		w.inflight = w.inflight[1:]
		if oldest > at {
			w.stalls++
			wait := oldest - at
			w.waitTime += wait
			w.waitHist.Add(wait)
			return oldest
		}
	}
	w.waitHist.Add(0)
	return at
}

// Complete records the completion time of the operation admitted last.
func (w *Window) Complete(done Time) {
	w.inflight = append(w.inflight, done)
	if len(w.inflight) > w.maxOcc {
		w.maxOcc = len(w.inflight)
	}
}

// Outstanding reports current in-flight operations.
func (w *Window) Outstanding() int { return len(w.inflight) }

// Admitted reports total admitted operations.
func (w *Window) Admitted() uint64 { return w.admitted }

// WaitTime reports accumulated full-window admission delay.
func (w *Window) WaitTime() Time { return w.waitTime }

// ResourceStats implements Resource.
func (w *Window) ResourceStats() ResourceStats {
	return ResourceStats{
		Kind:         KindWindow,
		Ops:          w.admitted,
		Wait:         w.waitTime,
		Stalls:       w.stalls,
		Occupancy:    len(w.inflight),
		MaxOccupancy: w.maxOcc,
		WaitHist:     w.waitHist,
	}
}
