// Package cache models the shared last-level cache of the ReACH host chip:
// a set-associative, write-back/write-allocate cache with LRU replacement,
// per-access accounting for the energy model, and the forced-writeback
// operation GAM issues before launching near-memory kernels whose inputs
// may be cached (paper §III-B step 2b).
package cache

import (
	"fmt"
)

// AccessResult describes what one access did.
type AccessResult struct {
	Hit       bool
	Evicted   bool  // a valid line was displaced
	WriteBack bool  // the displaced line was dirty
	Victim    int64 // address of the written-back line (valid when WriteBack)
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   uint64 // higher = more recently used
}

// Cache is a set-associative cache indexed by physical address.
// It is a functional/statistical model: it tracks hit/miss/writeback
// behaviour and counters, not data contents (data lives in the functional
// layer of the simulator).
type Cache struct {
	name      string
	lineSize  int64
	sets      int
	assoc     int
	data      []line // sets × assoc
	clock     uint64 // LRU timestamp source
	hits      uint64
	misses    uint64
	evictions uint64
	wbs       uint64
	readAcc   uint64
	writeAcc  uint64
	flushes   uint64
	flushedWB uint64
}

// New constructs a cache of capacityBytes with the given associativity and
// line size. capacity must be divisible into a whole, nonzero number of
// power-of-two sets.
func New(name string, capacityBytes int64, assoc int, lineSize int64) (*Cache, error) {
	if capacityBytes <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("cache %s: capacity, associativity and line size must be positive", name)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", name, lineSize)
	}
	linesTotal := capacityBytes / lineSize
	if linesTotal == 0 || linesTotal%int64(assoc) != 0 {
		return nil, fmt.Errorf("cache %s: capacity %d not divisible into %d-way sets of %d-byte lines",
			name, capacityBytes, assoc, lineSize)
	}
	sets := int(linesTotal / int64(assoc))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", name, sets)
	}
	return &Cache{
		name:     name,
		lineSize: lineSize,
		sets:     sets,
		assoc:    assoc,
		data:     make([]line, sets*assoc),
	}, nil
}

// MustNew is New panicking on error, for static configurations.
func MustNew(name string, capacityBytes int64, assoc int, lineSize int64) *Cache {
	c, err := New(name, capacityBytes, assoc, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// Name reports the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// LineSize reports the cache's line size in bytes.
func (c *Cache) LineSize() int64 { return c.lineSize }

// CapacityBytes reports total data capacity.
func (c *Cache) CapacityBytes() int64 {
	return int64(c.sets) * int64(c.assoc) * c.lineSize
}

func (c *Cache) index(addr int64) (set int, tag int64) {
	lineAddr := addr / c.lineSize
	return int(lineAddr % int64(c.sets)), lineAddr / int64(c.sets)
}

func (c *Cache) set(i int) []line {
	return c.data[i*c.assoc : (i+1)*c.assoc]
}

// Access performs one read (write=false) or write (write=true) at addr,
// returning what happened. Writes mark the line dirty (write-back policy);
// misses allocate (write-allocate).
func (c *Cache) Access(addr int64, write bool) AccessResult {
	if write {
		c.writeAcc++
	} else {
		c.readAcc++
	}
	setIdx, tag := c.index(addr)
	ways := c.set(setIdx)
	c.clock++

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.hits++
			ways[i].lru = c.clock
			if write {
				ways[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.misses++

	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if ways[victim].valid {
		c.evictions++
		res.Evicted = true
		if ways[victim].dirty {
			c.wbs++
			res.WriteBack = true
			res.Victim = (ways[victim].tag*int64(c.sets) + int64(setIdx)) * c.lineSize
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

// Contains reports whether addr's line is present (without touching LRU).
func (c *Cache) Contains(addr int64) bool {
	setIdx, tag := c.index(addr)
	for _, w := range c.set(setIdx) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// FlushRange writes back and invalidates every cached line in
// [addr, addr+size) and reports how many dirty lines were written back —
// the data volume GAM must push to DRAM before a near-memory kernel may
// run, and to storage before a near-storage kernel may run.
func (c *Cache) FlushRange(addr, size int64) (writebacks int) {
	c.flushes++
	if size <= 0 {
		return 0
	}
	first := addr / c.lineSize
	last := (addr + size - 1) / c.lineSize
	// For large ranges, walking the cache is cheaper than walking the range.
	if last-first+1 >= int64(len(c.data)) {
		for i := range c.data {
			w := &c.data[i]
			if !w.valid {
				continue
			}
			setIdx := i / c.assoc
			lineAddr := (w.tag*int64(c.sets) + int64(setIdx)) * c.lineSize
			if lineAddr >= addr && lineAddr < addr+size {
				if w.dirty {
					writebacks++
					c.wbs++
				}
				w.valid = false
			}
		}
		c.flushedWB += uint64(writebacks)
		return writebacks
	}
	for la := first; la <= last; la++ {
		a := la * c.lineSize
		setIdx, tag := c.index(a)
		ways := c.set(setIdx)
		for i := range ways {
			if ways[i].valid && ways[i].tag == tag {
				if ways[i].dirty {
					writebacks++
					c.wbs++
				}
				ways[i].valid = false
			}
		}
	}
	c.flushedWB += uint64(writebacks)
	return writebacks
}

// FlushAll writes back and invalidates everything.
func (c *Cache) FlushAll() (writebacks int) {
	c.flushes++
	for i := range c.data {
		if c.data[i].valid && c.data[i].dirty {
			writebacks++
			c.wbs++
		}
		c.data[i].valid = false
	}
	c.flushedWB += uint64(writebacks)
	return writebacks
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Reads, Writes        uint64
	Hits, Misses         uint64
	Evictions            uint64
	WriteBacks           uint64
	Flushes, FlushedDirt uint64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Reads: c.readAcc, Writes: c.writeAcc,
		Hits: c.hits, Misses: c.misses,
		Evictions:  c.evictions,
		WriteBacks: c.wbs,
		Flushes:    c.flushes, FlushedDirt: c.flushedWB,
	}
}

// HitRate reports hits / accesses, 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
