package main

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/qtrace"
)

// TestMetricsSmokeArtifacts validates the files `make metrics-smoke`
// produced: the CSV time-series schema, the Chrome-trace JSON (counters
// and GAM spans present), and the bottleneck-attribution report. Skipped
// unless METRICS_SMOKE_DIR points at the smoke output directory.
func TestMetricsSmokeArtifacts(t *testing.T) {
	dir := os.Getenv("METRICS_SMOKE_DIR")
	if dir == "" {
		t.Skip("METRICS_SMOKE_DIR not set; run via `make metrics-smoke`")
	}

	t.Run("csv-schema", func(t *testing.T) {
		f, err := os.Open(filepath.Join(dir, "metrics.csv"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		r := csv.NewReader(f)
		header, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		want := metrics.CSVHeader()
		if strings.Join(header, ",") != strings.Join(want, ",") {
			t.Fatalf("CSV header %v, want %v", header, want)
		}
		rows := 0
		lastTime := map[string]float64{} // per run: time_us must be non-decreasing
		for {
			row, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("row %d: %v", rows, err)
			}
			rows++
			ts, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatalf("row %d bad time_us %q", rows, row[2])
			}
			if prev, ok := lastTime[row[0]]; ok && ts < prev {
				t.Fatalf("row %d: time_us went backwards within run %s", rows, row[0])
			}
			lastTime[row[0]] = ts
			for _, col := range []int{5, 6, 7, 10} { // occupancy/ops/bytes/stalls
				if _, err := strconv.ParseUint(row[col], 10, 64); err != nil {
					t.Fatalf("row %d col %d not an integer: %q", rows, col, row[col])
				}
			}
		}
		if rows == 0 {
			t.Fatal("CSV has no data rows")
		}
		if len(lastTime) < 2 {
			t.Fatalf("expected multiple sampled runs, got %d", len(lastTime))
		}
	})

	t.Run("trace-json", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal(raw, &events); err != nil {
			t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
		}
		var counters, spans, slices int
		for _, e := range events {
			switch e["ph"] {
			case "C":
				counters++
			case "X":
				slices++
				if cat, _ := e["cat"].(string); strings.HasPrefix(cat, "gam.") {
					spans++
				}
			}
		}
		if counters == 0 || spans == 0 || slices == 0 {
			t.Fatalf("trace missing event classes: %d counters, %d gam spans, %d slices",
				counters, spans, slices)
		}
	})

	t.Run("bottleneck-report", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "report.txt"))
		if err != nil {
			t.Fatal(err)
		}
		out := string(raw)
		if !strings.Contains(out, "Bottleneck attribution") {
			t.Fatal("report has no bottleneck-attribution tables")
		}
		if !strings.Contains(out, "crit_path") {
			t.Fatal("bottleneck table missing critical-path column")
		}
	})
}

// TestQTraceSmokeArtifacts validates the files `make qtrace-smoke`
// produced: the per-query interval and summary CSV schemas, the mid-run
// /progress and /debug/vars snapshots, and the tail-latency report.
// Skipped unless QTRACE_SMOKE_DIR points at the smoke output directory.
func TestQTraceSmokeArtifacts(t *testing.T) {
	dir := os.Getenv("QTRACE_SMOKE_DIR")
	if dir == "" {
		t.Skip("QTRACE_SMOKE_DIR not set; run via `make qtrace-smoke`")
	}

	readCSV := func(t *testing.T, name string) [][]string {
		t.Helper()
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := csv.NewReader(f).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
		return rows
	}

	t.Run("interval-csv-schema", func(t *testing.T) {
		rows := readCSV(t, "queries.csv")
		if got, want := strings.Join(rows[0], ","), strings.Join(qtrace.IntervalCSVHeader(), ","); got != want {
			t.Fatalf("interval header %q, want %q", got, want)
		}
		for i, row := range rows[1:] {
			start, err1 := strconv.ParseFloat(row[7], 64)
			end, err2 := strconv.ParseFloat(row[8], 64)
			dur, err3 := strconv.ParseFloat(row[9], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("row %d: non-numeric interval bounds %v", i+1, row[7:10])
			}
			if end < start || dur < 0 {
				t.Fatalf("row %d: interval not ordered: start %v end %v dur %v", i+1, start, end, dur)
			}
		}
	})

	t.Run("summary-csv-schema", func(t *testing.T) {
		rows := readCSV(t, "queries_summary.csv")
		if got, want := strings.Join(rows[0], ","), strings.Join(qtrace.SummaryCSVHeader(), ","); got != want {
			t.Fatalf("summary header %q, want %q", got, want)
		}
		for i, row := range rows[1:] {
			arrival, err1 := strconv.ParseFloat(row[3], 64)
			done, err2 := strconv.ParseFloat(row[4], 64)
			lat, err3 := strconv.ParseFloat(row[5], 64)
			share, err4 := strconv.ParseFloat(row[10], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				t.Fatalf("row %d: non-numeric fields %v", i+1, row)
			}
			if diff := done - arrival - lat; diff > 0.002 || diff < -0.002 {
				t.Fatalf("row %d: latency %v != done-arrival %v", i+1, lat, done-arrival)
			}
			if share <= 0 || share > 1 {
				t.Fatalf("row %d: dominant share %v out of (0,1]", i+1, share)
			}
			if row[7] == "" {
				t.Fatalf("row %d: no dominant phase", i+1)
			}
		}
	})

	t.Run("progress-snapshot", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "progress.json"))
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]any
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("/progress snapshot is not valid JSON: %v", err)
		}
		for _, key := range []string{"uptime_seconds", "queries_completed", "p99_ms", "runs_observed"} {
			if _, ok := snap[key]; !ok {
				t.Errorf("progress snapshot missing %q", key)
			}
		}
		// The snapshot is scraped after the sweep drains: every counter is
		// populated.
		for _, key := range []string{"queries_completed", "p99_ms", "runs_observed"} {
			if v, _ := snap[key].(float64); v <= 0 {
				t.Errorf("progress %s = %v, want > 0", key, snap[key])
			}
		}
		if res, _ := snap["resources"].([]any); len(res) == 0 {
			t.Error("progress snapshot has no per-resource busy fractions")
		}
	})

	t.Run("expvar-snapshot", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "expvar.json"))
		if err != nil {
			t.Fatal(err)
		}
		var vars map[string]any
		if err := json.Unmarshal(raw, &vars); err != nil {
			t.Fatalf("/debug/vars snapshot is not valid JSON: %v", err)
		}
		for _, key := range []string{"qtrace_queries_completed", "qtrace_p99_ms", "qtrace_resources_busy_pct"} {
			if _, ok := vars[key]; !ok {
				t.Errorf("expvar snapshot missing %q", key)
			}
		}
	})

	t.Run("tail-report", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "report.txt"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(raw), "Tail latency") {
			t.Fatal("report missing the tail-latency table")
		}
	})
}

// TestClusterRunGolden pins the -cluster path's stdout against the CI
// smoke golden: a pinned 4-node scatter-gather run is byte-identical
// build to build. Regenerate with
// `go run ./cmd/reachsim -cluster > cmd/reachsim/testdata/cluster_smoke.golden`
// when a modelling change moves the numbers on purpose.
func TestClusterRunGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "cluster_smoke.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := runCluster(&got, clusterOptions{}); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Fatalf("-cluster output diverged from testdata/cluster_smoke.golden:\ngot:\n%swant:\n%s", got.String(), want)
	}
}

// TestClusterRunParallelInvariant pins the tentpole acceptance bar at the
// CLI layer: the pinned -cluster run's stdout is byte-identical at -pj 1,
// -pj 4 and -pj 8 — domain parallelism is a wall-clock knob, never a
// modelling knob. (The golden above covers -pj 0 = config default.)
func TestClusterRunParallelInvariant(t *testing.T) {
	render := func(pj int) string {
		var out strings.Builder
		if err := runCluster(&out, clusterOptions{pj: pj}); err != nil {
			t.Fatalf("pj=%d: %v", pj, err)
		}
		return out.String()
	}
	serial := render(1)
	for _, pj := range []int{4, 8} {
		if got := render(pj); got != serial {
			t.Fatalf("-pj %d output diverged from -pj 1:\ngot:\n%swant:\n%s", pj, got, serial)
		}
	}
}

// TestClusterRunCachedParallelInvariant extends the CLI determinism bar to
// the cache-on path: with the front-end result cache enabled, the pinned
// -cluster run's stdout — summary table, cache rows included — is
// byte-identical at -pj 1, -pj 4 and -pj 8. This is what `make
// cache-smoke` diffs in CI.
func TestClusterRunCachedParallelInvariant(t *testing.T) {
	render := func(pj int) string {
		var out strings.Builder
		if err := runCluster(&out, clusterOptions{pj: pj, cache: 32}); err != nil {
			t.Fatalf("pj=%d: %v", pj, err)
		}
		return out.String()
	}
	serial := render(1)
	if !strings.Contains(serial, "cache hit rate %") {
		t.Fatalf("cache-on run emitted no cache rows:\n%s", serial)
	}
	for _, pj := range []int{4, 8} {
		if got := render(pj); got != serial {
			t.Fatalf("-cache 32 -pj %d output diverged from -pj 1:\ngot:\n%swant:\n%s", pj, got, serial)
		}
	}
}

// TestClusterSmokeArtifacts validates the files `make cluster-smoke`
// produced: the golden-diffed summary table, the inspector's /progress
// snapshot (every query observed live) and its /debug/vars counters.
// Skipped unless CLUSTER_SMOKE_DIR points at the smoke output directory.
func TestClusterSmokeArtifacts(t *testing.T) {
	dir := os.Getenv("CLUSTER_SMOKE_DIR")
	if dir == "" {
		t.Skip("CLUSTER_SMOKE_DIR not set; run via `make cluster-smoke`")
	}

	t.Run("report-golden", func(t *testing.T) {
		got, err := os.ReadFile(filepath.Join(dir, "report.txt"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "cluster_smoke.golden"))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("cluster smoke report diverged from golden:\ngot:\n%swant:\n%s", got, want)
		}
	})

	t.Run("progress-snapshot", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "progress.json"))
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]any
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("/progress snapshot is not valid JSON: %v", err)
		}
		if v, _ := snap["queries_completed"].(float64); v != clusterRunQueries {
			t.Errorf("inspector saw %v queries, want %d", snap["queries_completed"], clusterRunQueries)
		}
		if v, _ := snap["p99_ms"].(float64); v <= 0 {
			t.Errorf("progress p99_ms = %v, want > 0", snap["p99_ms"])
		}
		if v, _ := snap["runs_observed"].(float64); v != 1 {
			t.Errorf("inspector observed %v runs, want 1", snap["runs_observed"])
		}
		if res, _ := snap["resources"].([]any); len(res) == 0 {
			t.Error("progress snapshot has no per-resource busy fractions")
		}
	})

	t.Run("expvar-snapshot", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "expvar.json"))
		if err != nil {
			t.Fatal(err)
		}
		var vars map[string]any
		if err := json.Unmarshal(raw, &vars); err != nil {
			t.Fatalf("/debug/vars snapshot is not valid JSON: %v", err)
		}
		for _, key := range []string{"qtrace_queries_completed", "qtrace_p99_ms"} {
			if _, ok := vars[key]; !ok {
				t.Errorf("expvar snapshot missing %q", key)
			}
		}
	})
}
