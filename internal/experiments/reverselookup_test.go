package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestReverseLookupMarginalCost(t *testing.T) {
	r, err := ReverseLookup(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// The stage adds latency...
	if r.WithRLLatency <= r.BaseLatency {
		t.Errorf("reverse lookup added no latency: %v vs %v", r.WithRLLatency, r.BaseLatency)
	}
	// ...but its online cost is marginal (the paper's exclusion argument):
	// well under 10% throughput and under 15% latency.
	if cost := r.ThroughputCost(); cost < 0 || cost > 0.10 {
		t.Errorf("reverse-lookup throughput cost = %.1f%%, want < 10%%", cost*100)
	}
	latGrowth := float64(r.WithRLLatency-r.BaseLatency) / float64(r.BaseLatency)
	if latGrowth > 0.15 {
		t.Errorf("latency growth = %.1f%%, want < 15%%", latGrowth*100)
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "RL") {
		t.Error("table missing RL row")
	}
}
