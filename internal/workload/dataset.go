package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/kernels"
)

// Dataset is the functional-scale database: real vectors the simulator's
// functional layer searches. Vectors are drawn from a Gaussian mixture so
// k-means clustering is meaningful and IVF shortlisting achieves
// non-trivial recall.
type Dataset struct {
	Vectors *kernels.Matrix // N × D
	// TrueCluster is the generating mixture component of each vector
	// (ground truth for clustering sanity checks, not used by retrieval).
	TrueCluster []int
	// Centers are the mixture means (GroundTruthClusters × D).
	Centers *kernels.Matrix
}

// SyntheticParams controls dataset generation.
type SyntheticParams struct {
	N        int     // database size (functional scale)
	D        int     // dimensionality
	Clusters int     // mixture components
	Spread   float64 // intra-cluster standard deviation
	Seed     int64
}

// DefaultSyntheticParams returns the functional-scale defaults: 2^17
// vectors of the paper's D=96 in 64 natural clusters.
func DefaultSyntheticParams() SyntheticParams {
	return SyntheticParams{N: 1 << 17, D: 96, Clusters: 64, Spread: 0.08, Seed: 20200901}
}

// Synthetic generates a deterministic Gaussian-mixture dataset.
func Synthetic(p SyntheticParams) *Dataset {
	if p.N <= 0 || p.D <= 0 || p.Clusters <= 0 || p.Clusters > p.N {
		panic(fmt.Sprintf("workload: invalid synthetic params %+v", p))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	centers := kernels.NewMatrix(p.Clusters, p.D)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64())
	}
	for c := 0; c < p.Clusters; c++ {
		kernels.L2Normalize(centers.Row(c))
	}
	ds := &Dataset{
		Vectors:     kernels.NewMatrix(p.N, p.D),
		TrueCluster: make([]int, p.N),
		Centers:     centers,
	}
	for i := 0; i < p.N; i++ {
		c := rng.Intn(p.Clusters)
		ds.TrueCluster[i] = c
		row := ds.Vectors.Row(i)
		center := centers.Row(c)
		for j := range row {
			row[j] = center[j] + float32(rng.NormFloat64()*p.Spread)
		}
		kernels.L2Normalize(row)
	}
	return ds
}

// N reports the dataset cardinality.
func (d *Dataset) N() int { return d.Vectors.Rows }

// D reports the dimensionality.
func (d *Dataset) D() int { return d.Vectors.Cols }

// Queries draws a batch of query vectors: perturbed copies of random
// database points, so every query has meaningful near neighbours.
func (d *Dataset) Queries(batch int, spread float64, seed int64) *kernels.Matrix {
	if batch <= 0 {
		panic("workload: batch must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	q := kernels.NewMatrix(batch, d.D())
	for b := 0; b < batch; b++ {
		src := d.Vectors.Row(rng.Intn(d.N()))
		row := q.Row(b)
		for j := range row {
			row[j] = src[j] + float32(rng.NormFloat64()*spread)
		}
		kernels.L2Normalize(row)
	}
	return q
}

// Images generates a deterministic batch of synthetic query images for the
// functional CNN path.
func Images(batch, c, h, w int, seed int64) []*kernels.Tensor3 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*kernels.Tensor3, batch)
	for b := range out {
		img := kernels.NewTensor3(c, h, w)
		// Smooth blobs rather than white noise: gives the CNN spatial
		// structure to respond to.
		cx, cy := rng.Float64()*float64(w), rng.Float64()*float64(h)
		for ch := 0; ch < c; ch++ {
			amp := 0.5 + rng.Float64()
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					dx := (float64(x) - cx) / float64(w)
					dy := (float64(y) - cy) / float64(h)
					v := amp / (1 + 8*(dx*dx+dy*dy))
					img.Set(ch, y, x, float32(v+rng.NormFloat64()*0.02))
				}
			}
		}
		out[b] = img
	}
	return out
}
