package main

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

func TestRunAllExperimentIDs(t *testing.T) {
	cfg := config.Default()
	m := workload.DefaultModel()
	for _, id := range experimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := run(id, cfg, m)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			var sb strings.Builder
			for _, tb := range tables {
				if err := tb.Render(&sb); err != nil {
					t.Fatal(err)
				}
				if err := tb.CSV(&sb); err != nil {
					t.Fatal(err)
				}
			}
			if sb.Len() == 0 {
				t.Fatalf("%s rendered empty output", id)
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := run("nonsense", config.Default(), workload.DefaultModel()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWriteTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := writeTrace(path); err != nil {
		t.Fatal(err)
	}
}
