package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// recorder logs (domain id, time, arg) triples in execution order.
type recorder struct {
	log []string
}

func (r *recorder) Fire(eng *Engine, arg uint64) {
	r.log = append(r.log, fmt.Sprintf("d%d t%d a%d", eng.id, eng.Now(), arg))
}

// forwarder re-exports each received event to a destination domain via a
// cross link, carrying the arg through.
type forwarder struct {
	link *CrossLink
	dst  *Engine
	n    int64
	next Handler
}

func (f *forwarder) Fire(eng *Engine, arg uint64) {
	f.link.Send(f.dst, f.n, f.next, arg)
}

func TestMultiEngineSerialBasics(t *testing.T) {
	m := NewMultiEngine(2)
	if m.Domains() != 2 {
		t.Fatalf("Domains() = %d", m.Domains())
	}
	if m.Domain(0).Stats() != m.Domain(1).Stats() {
		t.Fatal("domains must share one StatsRegistry")
	}
	rec := &recorder{}
	m.Domain(0).AtCall(5, rec, 1)
	m.Domain(1).AtCall(3, rec, 2)
	m.Domain(1).AtCall(9, rec, 3)
	m.Run()
	// Domains are unconnected → lookahead is MaxTime → one round runs
	// everything; intra-domain order is by time, cross-domain interleaving
	// within a round is by domain id.
	want := []string{"d0 t5 a1", "d1 t3 a2", "d1 t9 a3"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if m.Executed() != 3 {
		t.Fatalf("Executed() = %d", m.Executed())
	}
	if m.Now() != 9 {
		t.Fatalf("Now() = %v", m.Now())
	}
	if m.Rounds() != 1 {
		t.Fatalf("Rounds() = %d, want 1 for unconnected domains", m.Rounds())
	}
}

func TestDomainRunPanicsUnderMulti(t *testing.T) {
	m := NewMultiEngine(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Run on a MultiEngine domain must panic")
		}
	}()
	m.Domain(0).Run()
}

func TestCrossLinkDelivery(t *testing.T) {
	m := NewMultiEngine(2)
	a, b := m.Domain(0), m.Domain(1)
	x := NewCrossLink(a, "x.ab", 1e9, 10) // 1 GB/s, 10 ps latency
	if m.Lookahead() != 10 {
		t.Fatalf("Lookahead() = %v", m.Lookahead())
	}
	rec := &recorder{}
	// At t=0 in a, send 1000 bytes (1 µs occupancy at 1 GB/s = 1e6 ps... use
	// small sizes): 1 byte → duration 1 ps at 1e12 is below; just compute.
	a.AtCall(0, &forwarder{link: x, dst: b, n: 0, next: rec}, 7)
	m.Run()
	want := []string{"d1 t10 a7"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if x.Link().Transfers() != 0 {
		t.Fatal("zero-byte control send must not count as a transfer")
	}
}

// TestCrossDomainSameTimestampStableOrder pins the determinism keystone:
// same-timestamp events exported from two different domains into a third
// merge in (time, source domain id, source export seq) order, regardless
// of which source domain's round executed first.
func TestCrossDomainSameTimestampStableOrder(t *testing.T) {
	for _, workers := range []int{1, 3} {
		m := NewMultiEngine(3)
		m.SetWorkers(workers)
		a, b, c := m.Domain(0), m.Domain(1), m.Domain(2)
		xa := NewCrossLink(a, "x.a", 1e9, 5)
		xb := NewCrossLink(b, "x.b", 1e9, 5)
		rec := &recorder{}
		// Both sources fire at t=0 and export zero-byte messages arriving
		// at the identical destination timestamp t=5. Source b schedules
		// two, a schedules one between them in arg order; the merged order
		// must be (src 0 first), then b's exports in its own xseq order.
		b.AtCall(0, &forwarder{link: xb, dst: c, next: rec}, 20)
		b.AtCall(0, &forwarder{link: xb, dst: c, next: rec}, 21)
		a.AtCall(0, &forwarder{link: xa, dst: c, next: rec}, 10)
		m.Run()
		want := []string{"d2 t5 a10", "d2 t5 a20", "d2 t5 a21"}
		if !reflect.DeepEqual(rec.log, want) {
			t.Fatalf("workers=%d: log = %v, want %v", workers, rec.log, want)
		}
	}
}

// TestEmptyDomainNoDeadlock: a domain with zero pending events must not
// stall the barrier — and must still receive and execute late arrivals.
func TestEmptyDomainNoDeadlock(t *testing.T) {
	m := NewMultiEngine(3)
	a, c := m.Domain(0), m.Domain(2) // domain 1 stays empty throughout
	x := NewCrossLink(a, "x.ac", 1e9, 7)
	rec := &recorder{}
	a.AtCall(0, &forwarder{link: x, dst: c, next: rec}, 1)
	m.Run()
	want := []string{"d2 t7 a1"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if m.Domain(1).Executed() != 0 {
		t.Fatal("empty domain executed events")
	}
}

// exporter exports a single event and stashes the handle for the test.
type exporter struct {
	dst    *Engine
	at     Time
	target Handler
	handle *XHandle
}

func (e *exporter) Fire(eng *Engine, arg uint64) {
	*e.handle = eng.ExportAt(e.dst, e.at, e.target, arg)
}

// canceller cancels a previously captured XHandle when it fires.
type canceller struct{ handle *XHandle }

func (c *canceller) Fire(eng *Engine, arg uint64) { c.handle.Cancel() }

// TestExportedEventCancel covers both sides of the barrier: cancelling an
// exported event while it still sits in the destination mailbox suppresses
// it; cancelling after the barrier drained it is a harmless no-op.
func TestExportedEventCancel(t *testing.T) {
	m := NewMultiEngine(2)
	a, b := m.Domain(0), m.Domain(1)
	NewCrossLink(a, "x.ab", 1e9, 10) // establishes lookahead 10
	rec := &recorder{}

	var h1, h2 XHandle
	// Same round in a: export then cancel before the barrier → suppressed.
	a.AtCall(0, &exporter{dst: b, at: 50, target: rec, handle: &h1}, 1)
	a.AtCall(1, &canceller{handle: &h1}, 0)
	// Export at t=2, let the barrier commit it, then cancel far too late
	// (t=90 in a later round) → no-op, event fires anyway at t=60.
	a.AtCall(2, &exporter{dst: b, at: 60, target: rec, handle: &h2}, 2)
	a.AtCall(90, &canceller{handle: &h2}, 0)
	m.Run()

	want := []string{"d1 t60 a2"}
	if !reflect.DeepEqual(rec.log, want) {
		t.Fatalf("log = %v, want %v", rec.log, want)
	}
	if h1.Exported() || h2.Exported() {
		t.Fatal("handles must be stale after the run")
	}
}

func TestExportedHandleStates(t *testing.T) {
	var zero XHandle
	zero.Cancel() // zero value must be inert
	if zero.Exported() {
		t.Fatal("zero XHandle reports exported")
	}
}

// chainRelay bounces a token between two domains a fixed number of hops,
// recording each arrival — exercises repeated mailbox handoffs and many
// barrier rounds.
type chainRelay struct {
	links [2]*CrossLink
	doms  [2]*Engine
	rec   *recorder
	hops  uint64
}

func (cr *chainRelay) Fire(eng *Engine, arg uint64) {
	cr.rec.Fire(eng, arg)
	if arg >= cr.hops {
		return
	}
	next := 1 - int(eng.id)
	cr.links[eng.id].Send(cr.doms[next], 64, cr, arg+1)
}

// TestWorkerCountInvariance: identical topology and stimulus must produce
// identical execution logs, clocks and event counts at any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]string, Time, uint64, uint64) {
		m := NewMultiEngine(2)
		m.SetWorkers(workers)
		cr := &chainRelay{rec: &recorder{}, hops: 20}
		cr.doms = [2]*Engine{m.Domain(0), m.Domain(1)}
		cr.links[0] = NewCrossLink(m.Domain(0), "x.01", 1e9, 100)
		cr.links[1] = NewCrossLink(m.Domain(1), "x.10", 1e9, 100)
		m.Domain(0).AtCall(0, cr, 0)
		m.Run()
		return cr.rec.log, m.Now(), m.Executed(), m.Rounds()
	}
	log1, now1, ex1, r1 := run(1)
	log4, now4, ex4, r4 := run(4)
	if !reflect.DeepEqual(log1, log4) {
		t.Fatalf("logs differ:\n w1: %v\n w4: %v", log1, log4)
	}
	if now1 != now4 || ex1 != ex4 || r1 != r4 {
		t.Fatalf("run shape differs: now %v/%v executed %d/%d rounds %d/%d",
			now1, now4, ex1, ex4, r1, r4)
	}
	if ex1 != 21+20 { // 21 relay firings + 20 forwarding sends execute inline
		t.Logf("executed = %d over %d rounds", ex1, r1) // informational
	}
	if r1 < 20 {
		t.Fatalf("expected ≥20 barrier rounds for 20 hops, got %d", r1)
	}
}

func TestMultiEngineProgress(t *testing.T) {
	m := NewMultiEngine(2)
	a, b := m.Domain(0), m.Domain(1)
	x := NewCrossLink(a, "x.ab", 1e9, 10)
	rec := &recorder{}
	a.AtCall(0, &forwarder{link: x, dst: b, next: rec}, 1)
	m.Run()
	p := m.Progress()
	if p.Lookahead != 10 {
		t.Fatalf("Lookahead = %v", p.Lookahead)
	}
	if p.Rounds != m.Rounds() || p.Rounds == 0 {
		t.Fatalf("Rounds = %d (engine says %d)", p.Rounds, m.Rounds())
	}
	if len(p.Domains) != 2 {
		t.Fatalf("Domains = %d", len(p.Domains))
	}
	if p.Domains[0].Executed != 1 || p.Domains[1].Executed != 1 {
		t.Fatalf("per-domain executed = %+v", p.Domains)
	}
	if p.Domains[1].Clock != 10 {
		t.Fatalf("domain 1 clock = %v", p.Domains[1].Clock)
	}
}

func TestCrossLinkValidation(t *testing.T) {
	m := NewMultiEngine(2)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero latency", func() { NewCrossLink(m.Domain(0), "bad", 1e9, 0) })
	mustPanic("standalone engine", func() { NewCrossLink(NewEngine(), "bad", 1e9, 10) })
	mustPanic("zero domains", func() { NewMultiEngine(0) })
	mustPanic("export to self", func() {
		m.Domain(0).ExportAt(m.Domain(0), 100, &recorder{}, 0)
	})
	mustPanic("export to foreign multi", func() {
		m2 := NewMultiEngine(2)
		m.Domain(0).ExportAt(m2.Domain(0), 100, &recorder{}, 0)
	})
	mustPanic("export inside lookahead", func() {
		NewCrossLink(m.Domain(0), "x.ok", 1e9, 50)
		m.Domain(0).ExportAt(m.Domain(1), 10, &recorder{}, 0)
	})
}

// nop is a stateless handler safe to fire from any domain.
type nop struct{}

func (nop) Fire(*Engine, uint64) {}

// spinner schedules dense self-traffic so parallel rounds do real work on
// every domain, and periodically exports into its neighbour's mailbox;
// used by the race-detector test to stress mailbox handoffs concurrently
// with intra-domain dispatch. The spinner (and its link) are touched only
// by the owning domain — deliveries fire a stateless nop in the peer.
type spinner struct {
	link    *CrossLink
	peerDom *Engine
	until   Time
}

func (s *spinner) Fire(eng *Engine, arg uint64) {
	if eng.Now() >= s.until {
		return
	}
	eng.ScheduleCall(3, s, arg+1)
	if arg%4 == 0 {
		s.link.Send(s.peerDom, 64, nop{}, arg)
	}
}

// TestMultiEngineParallelStress drives four mutually linked domains with
// dense traffic under the parallel coordinator; run with -race this is the
// mailbox-handoff data-race check required by the CI satellite.
func TestMultiEngineParallelStress(t *testing.T) {
	m := NewMultiEngine(4)
	m.SetWorkers(4)
	for i := 0; i < 4; i++ {
		s := &spinner{until: 2000}
		s.link = NewCrossLink(m.Domain(i), fmt.Sprintf("x.%d", i), 1e9, 25)
		s.peerDom = m.Domain((i + 1) % 4)
		m.Domain(i).AtCall(Time(i), s, 0)
	}
	m.Run()
	if m.Executed() == 0 {
		t.Fatal("no events executed")
	}
	for i := 0; i < 4; i++ {
		if m.Domain(i).Executed() == 0 {
			t.Fatalf("domain %d idle", i)
		}
	}
}

// TestMultiEngineModelPanicPropagates: a model panic inside a worker round
// must surface on the caller of Run, not kill the process from a goroutine.
func TestMultiEngineModelPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 2} {
		m := NewMultiEngine(2)
		m.SetWorkers(workers)
		m.Domain(0).At(5, func() { panic("model bug") })
		m.Domain(1).At(5, func() {})
		func() {
			defer func() {
				if r := recover(); r != "model bug" {
					t.Fatalf("workers=%d: recover() = %v", workers, r)
				}
			}()
			m.Run()
		}()
	}
}

// barrierLog records every coordinator callback: the round counter, the
// frontier, each domain's clock and the final flag — enough to pin both
// the callback protocol and its worker-count invariance.
type barrierLog struct {
	entries []string
	finals  int
}

func (b *barrierLog) OnBarrier(m *MultiEngine, mailboxes []int, final bool) {
	e := fmt.Sprintf("r%d f%v now%v", m.Rounds(), final, m.Now())
	for i := 0; i < m.Domains(); i++ {
		e += fmt.Sprintf(" d%d@%v/mb%d", i, m.Domain(i).Now(), mailboxes[i])
	}
	b.entries = append(b.entries, e)
	if final {
		b.finals++
	}
}

// TestBarrierObserver: the observer fires after every round plus exactly
// once at termination, sees quiescent barrier state, never perturbs the
// round structure, and records an identical sequence at any worker count.
func TestBarrierObserver(t *testing.T) {
	run := func(workers int, obs *barrierLog) uint64 {
		m := NewMultiEngine(2)
		m.SetWorkers(workers)
		if obs != nil {
			m.SetBarrierObserver(obs)
		}
		cr := &chainRelay{rec: &recorder{}, hops: 12}
		cr.doms = [2]*Engine{m.Domain(0), m.Domain(1)}
		cr.links[0] = NewCrossLink(m.Domain(0), "bx.01", 1e9, 100)
		cr.links[1] = NewCrossLink(m.Domain(1), "bx.10", 1e9, 100)
		m.Domain(0).AtCall(0, cr, 0)
		m.Run()
		return m.Rounds()
	}
	obs1 := &barrierLog{}
	r1 := run(1, obs1)
	if obs1.finals != 1 {
		t.Fatalf("final callbacks = %d, want 1", obs1.finals)
	}
	// One callback per executed round plus the terminating one.
	if got, want := len(obs1.entries), int(r1)+1; got != want {
		t.Fatalf("callbacks = %d, want %d (rounds %d + final)", got, want, r1)
	}
	obs8 := &barrierLog{}
	r8 := run(8, obs8)
	if r1 != r8 {
		t.Fatalf("rounds differ with observer: w1=%d w8=%d", r1, r8)
	}
	if !reflect.DeepEqual(obs1.entries, obs8.entries) {
		t.Fatalf("observer sequences diverge:\n w1: %v\n w8: %v", obs1.entries, obs8.entries)
	}
	// Observation must be free: the round count with no observer attached
	// matches the observed runs bit for bit.
	if plain := run(4, nil); plain != r1 {
		t.Fatalf("observer changed round structure: %d vs %d", plain, r1)
	}
	// Re-running after new work submits fires a second final callback.
	m := NewMultiEngine(1)
	lg := &barrierLog{}
	m.SetBarrierObserver(lg)
	m.Domain(0).At(5, func() {})
	m.Run()
	m.Domain(0).At(m.Now()+5, func() {})
	m.Run()
	if lg.finals != 2 {
		t.Fatalf("finals after two Runs = %d, want 2", lg.finals)
	}
}
