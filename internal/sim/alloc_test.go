package sim

import (
	"sort"
	"testing"
)

// These tests pin the allocation-free event hot path: schedule + dispatch
// through ScheduleCall must not touch the heap once the engine is warmed
// (slots, heap and free list at capacity). A regression here means some
// future change reintroduced per-event garbage — multiplied by every
// parallel runner worker — so it fails loudly rather than showing up as a
// quiet throughput loss.

// countHandler is a minimal long-lived Handler.
type countHandler struct {
	fired uint64
	last  uint64
}

func (h *countHandler) Fire(_ *Engine, arg uint64) {
	h.fired++
	h.last = arg
}

func TestScheduleCallZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &countHandler{}
	// Warm the pool: establish heap/slot/free-list capacity.
	for i := 0; i < 64; i++ {
		e.ScheduleCall(Time(i), h, uint64(i))
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		e.ScheduleCall(Nanosecond, h, 7)
		e.RunUntil(e.Now() + Nanosecond)
	})
	if allocs != 0 {
		t.Errorf("ScheduleCall+dispatch allocated %.1f objects/op, want 0", allocs)
	}
	if h.last != 7 {
		t.Errorf("handler arg = %d, want 7", h.last)
	}
}

// A fan-out burst (many pending events) must also be allocation-free once
// warmed: pushes, 4-ary sifts and pops reuse the flat heap and slot pool.
func TestFanOutZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &countHandler{}
	for i := 0; i < 256; i++ {
		e.ScheduleCall(Time(i%17), h, 0)
	}
	e.Run()

	allocs := testing.AllocsPerRun(50, func() {
		base := e.Now()
		for i := 0; i < 256; i++ {
			e.ScheduleCall(Time(i%17), h, 0)
		}
		e.RunUntil(base + 17)
	})
	if allocs != 0 {
		t.Errorf("fan-out schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// Cancellation via generation-stamped handles must be allocation-free too
// (the timeout-guard pattern runs once per request in the storage models).
func TestCancelZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &countHandler{}
	for i := 0; i < 64; i++ {
		e.ScheduleCall(Time(i), h, 0)
	}
	e.Run()

	allocs := testing.AllocsPerRun(200, func() {
		guard := e.ScheduleCall(Microsecond, h, 0)
		e.ScheduleCall(Nanosecond, h, 0)
		e.RunUntil(e.Now() + Nanosecond)
		guard.Cancel()
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel allocated %.1f objects/op, want 0", allocs)
	}
}

// A stale handle must never cancel a recycled slot: after the original
// event fires, its slot is reused by a new event; cancelling through the
// old handle has to be a no-op because the generation stamp advanced.
func TestStaleHandleCannotCancelReusedSlot(t *testing.T) {
	e := NewEngine()
	h := &countHandler{}
	stale := e.ScheduleCall(10, h, 1)
	if !stale.Scheduled() {
		t.Fatal("fresh handle reports not scheduled")
	}
	e.Run()
	if stale.Scheduled() || stale.When() != 0 {
		t.Error("fired handle still reports scheduled")
	}
	// The freed slot is recycled by the next schedule (LIFO free list).
	fresh := e.ScheduleCall(20, h, 2)
	stale.Cancel() // must NOT cancel the new event
	if !fresh.Scheduled() {
		t.Fatal("stale handle cancelled a reused slot")
	}
	e.Run()
	if h.fired != 2 {
		t.Errorf("fired = %d, want 2", h.fired)
	}
	if h.last != 2 {
		t.Errorf("last arg = %d, want 2", h.last)
	}
}

// FIFO among same-time events must hold for AtCall exactly as for At, and
// across a mix of both APIs (the seq tie-break is shared).
func TestAtCallFIFOAmongTies(t *testing.T) {
	e := NewEngine()
	var order []uint64
	rec := recordHandler{order: &order}
	e.AtCall(5, rec, 1)
	e.At(5, func() { order = append(order, 2) })
	e.AtCall(5, rec, 3)
	e.At(3, func() { order = append(order, 0) })
	e.Run()
	want := []uint64{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type recordHandler struct{ order *[]uint64 }

func (r recordHandler) Fire(_ *Engine, arg uint64) { *r.order = append(*r.order, arg) }

// Step must refuse re-entrant invocation from inside a callback, exactly
// like Run — dispatching mid-dispatch would corrupt event order.
func TestStepReentrancyGuard(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Schedule(1, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		e.Step()
	})
	e.Schedule(2, func() {})
	if !e.Step() {
		t.Fatal("Step found no event")
	}
	if !panicked {
		t.Error("re-entrant Step did not panic")
	}
	// The engine must remain usable after the recovered panic.
	if !e.Step() {
		t.Error("engine unusable after recovered re-entrant Step")
	}
	if e.Executed() != 2 {
		t.Errorf("executed = %d, want 2", e.Executed())
	}
}

// TestRegistryWalkZeroAlloc: walking the registry allocates nothing in
// steady state (the cached sorted order). The metrics sampler's zero-alloc
// guarantee rests on this.
func TestRegistryWalkZeroAlloc(t *testing.T) {
	eng := NewEngine()
	for _, n := range []string{"b.x", "a.y", "c.z", "a.a"} {
		NewLink(eng, n, 1e9, 0)
	}
	var count int
	fn := func(string, Resource) { count++ }
	eng.Stats().Walk(fn) // first walk sorts
	allocs := testing.AllocsPerRun(100, func() { eng.Stats().Walk(fn) })
	if allocs > 0 {
		t.Fatalf("Walk allocates %.1f/op in steady state, want 0", allocs)
	}
	// Registering afterwards re-sorts and keeps order correct.
	NewLink(eng, "a.b", 1e9, 0)
	var names []string
	eng.Stats().Walk(func(n string, _ Resource) { names = append(names, n) })
	if !sort.StringsAreSorted(names) {
		t.Fatalf("walk order not sorted after late registration: %v", names)
	}
}
