package sim

import (
	"fmt"
	"sort"
)

// Histogram collects simulated durations and answers quantile queries —
// the latency-distribution utility behind the load-sweep experiment's
// mean/p99 columns and the per-resource wait/service distributions of the
// shared-resource layer.
type Histogram struct {
	samples []Time
	sorted  bool

	// Bounded histograms cap memory by deterministic stride decimation:
	// once `limit` samples are stored, every other stored sample is
	// dropped and only every `stride`-th future Add is recorded. The
	// decimation depends only on the Add sequence, so bounded histograms
	// stay bit-reproducible across identical runs.
	limit  int
	stride uint64
	adds   uint64
}

// statHistogramCap bounds the per-resource wait/service histograms so
// instrumenting hot links (millions of line-granularity transfers) cannot
// grow memory without bound.
const statHistogramCap = 4096

// NewHistogram returns an empty, unbounded histogram.
func NewHistogram() *Histogram { return &Histogram{stride: 1} }

// NewBoundedHistogram returns a histogram that stores at most max samples,
// decimating deterministically once full. Quantiles become approximate
// past the cap; counts remain exact via Adds.
func NewBoundedHistogram(max int) *Histogram {
	if max < 2 {
		panic(fmt.Sprintf("sim: bounded histogram cap %d too small", max))
	}
	return &Histogram{limit: max, stride: 1}
}

// Add records one sample.
func (h *Histogram) Add(t Time) {
	if h.stride == 0 {
		h.stride = 1 // zero-value Histogram keeps working
	}
	h.adds++
	if h.adds%h.stride != 0 {
		return
	}
	h.samples = append(h.samples, t)
	h.sorted = false
	if h.limit > 0 && len(h.samples) >= h.limit {
		kept := h.samples[:0]
		for i, s := range h.samples {
			if i%2 == 0 {
				kept = append(kept, s)
			}
		}
		h.samples = kept
		h.stride *= 2
	}
}

// Count reports the stored sample count (decimated when bounded).
func (h *Histogram) Count() int { return len(h.samples) }

// Adds reports how many samples were offered, including decimated ones.
func (h *Histogram) Adds() uint64 { return h.adds }

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method. It panics on an empty histogram or out-of-range q, both of
// which indicate harness bugs.
func (h *Histogram) Quantile(q float64) Time {
	if len(h.samples) == 0 {
		panic("sim: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("sim: quantile %v out of [0,1]", q))
	}
	h.ensureSorted()
	idx := int(q*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean reports the arithmetic mean.
func (h *Histogram) Mean() Time {
	if len(h.samples) == 0 {
		return 0
	}
	var sum Time
	for _, s := range h.samples {
		sum += s
	}
	return Time(int64(sum) / int64(len(h.samples)))
}

// Min and Max report the extremes (zero on empty).
func (h *Histogram) Min() Time {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Max reports the largest sample (zero on empty).
func (h *Histogram) Max() Time {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// String summarises the distribution.
func (h *Histogram) String() string {
	if len(h.samples) == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d min=%v mean=%v p50=%v p99=%v max=%v}",
		h.Count(), h.Min(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
