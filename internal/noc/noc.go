// Package noc models the high-bandwidth network-on-chip that ties the CPU
// cores, the shared cache, the on-chip accelerator and the GAM together
// (paper Fig. 2). The model is a crossbar: every endpoint owns an ingress
// and an egress port with configurable bandwidth, a transfer occupies the
// source egress and destination ingress ports, and a fixed hop latency is
// added per traversal. Command packets (GAM ↔ accelerators) are modelled as
// small high-priority messages with their own latency.
package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Port identifies an endpoint attached to the crossbar. Its ingress and
// egress directions are shared-layer sim.Connections registered in the
// central stats registry as "<xbar>.<port>.in" / ".out".
type Port struct {
	name    string
	egress  sim.Connection
	ingress sim.Connection
}

// Name reports the port's name.
func (p *Port) Name() string { return p.name }

// Crossbar is the on-chip interconnect.
type Crossbar struct {
	eng        *sim.Engine
	name       string
	hopLatency sim.Time
	ports      map[string]*Port
	transfers  uint64
	totalBytes uint64
}

// New creates an empty crossbar with the given per-traversal hop latency.
func New(eng *sim.Engine, name string, hopLatency sim.Time) *Crossbar {
	return &Crossbar{
		eng:        eng,
		name:       name,
		hopLatency: hopLatency,
		ports:      make(map[string]*Port),
	}
}

// AddPort attaches an endpoint with the given full-duplex bandwidth
// (bytes/second per direction). Adding a duplicate name is an error.
func (x *Crossbar) AddPort(name string, bytesPerSec float64) (*Port, error) {
	if _, dup := x.ports[name]; dup {
		return nil, fmt.Errorf("noc: duplicate port %q", name)
	}
	p := &Port{
		name:    name,
		egress:  sim.NewLink(x.eng, x.name+"."+name+".out", bytesPerSec, 0),
		ingress: sim.NewLink(x.eng, x.name+"."+name+".in", bytesPerSec, 0),
	}
	x.ports[name] = p
	return p, nil
}

// MustAddPort is AddPort panicking on error, for static topologies.
func (x *Crossbar) MustAddPort(name string, bytesPerSec float64) *Port {
	p, err := x.AddPort(name, bytesPerSec)
	if err != nil {
		panic(err)
	}
	return p
}

// Port looks up an endpoint by name.
func (x *Crossbar) Port(name string) (*Port, bool) {
	p, ok := x.ports[name]
	return p, ok
}

// Transfer moves n bytes from src to dst and returns the completion time.
// The transfer occupies the source egress and destination ingress ports;
// the effective rate is the narrower of the two, modelled by serialising
// through both and taking the later completion, plus one hop latency.
func (x *Crossbar) Transfer(src, dst *Port, n int64) sim.Time {
	if src == nil || dst == nil {
		panic("noc: transfer with nil port")
	}
	if src == dst {
		// Loopback costs only the hop latency.
		return x.eng.Now() + x.hopLatency
	}
	out := src.egress.Transfer(n)
	in := dst.ingress.Transfer(n)
	done := out
	if in > done {
		done = in
	}
	if n > 0 {
		x.transfers++
		x.totalBytes += uint64(n)
	}
	return done + x.hopLatency
}

// Command sends a small control packet (GAM command or status packet) from
// src to dst; it does not consume measurable port bandwidth and completes
// after the hop latency plus the given processing latency.
func (x *Crossbar) Command(src, dst *Port, processing sim.Time) sim.Time {
	if src == nil || dst == nil {
		panic("noc: command with nil port")
	}
	return x.eng.Now() + x.hopLatency + processing
}

// TotalBytes reports payload moved through the crossbar.
func (x *Crossbar) TotalBytes() uint64 { return x.totalBytes }

// Transfers reports the number of nonempty transfers.
func (x *Crossbar) Transfers() uint64 { return x.transfers }

// PortUtilization reports egress utilisation for a named port.
func (x *Crossbar) PortUtilization(name string) float64 {
	p, ok := x.ports[name]
	if !ok {
		return 0
	}
	return p.egress.ResourceStats().Utilization
}
