// Package runner is the parallel execution layer under every experiment,
// the reachsim CLI and the bench harness. Each simulation run owns its own
// core.System and event engine and shares no mutable state with any other
// run, so a full evaluation regeneration is an embarrassingly parallel
// slice of independent runs. The runner turns that observation into a
// first-class subsystem: a bounded worker pool with per-run panic capture,
// first-error cancellation and deterministic result ordering, so callers
// get byte-identical output whether they run on one worker or sixteen.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError wraps a panic recovered from a run so a misbehaving model
// surfaces as an ordinary error instead of tearing down the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: run panicked: %v\n%s", e.Value, e.Stack)
}

// Pool is a concurrency budget shared between independent Map calls.
// Nested fan-outs (the CLI running every experiment, each experiment
// running its sweep) hand the same Pool down so the total number of
// in-flight simulations stays bounded at the pool size, no matter how the
// work is nested. Only leaf work holds a slot, so sharing a pool across
// nesting levels cannot deadlock.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool admitting n concurrent runs (n <= 0 means
// GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, n)}
}

// Size reports the pool's concurrency budget.
func (p *Pool) Size() int { return cap(p.slots) }

func (p *Pool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() { <-p.slots }

// Event reports one completed (or skipped) run to a progress callback.
type Event struct {
	Done  int // runs finished so far, this one included
	Total int
	Index int // the completed run's index in the input slice
	Err   error
}

// Options configures one Map call.
type Options struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. Ignored
	// when Pool is set.
	Workers int
	// Pool, when non-nil, bounds concurrency by a budget shared with
	// other Map calls instead of a private worker count.
	Pool *Pool
	// Progress, when non-nil, is called after every run completes. Calls
	// are serialised; the callback must not invoke Map reentrantly.
	Progress func(Event)
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Map executes fn over every item on a bounded worker pool and returns the
// results in item order, regardless of completion order. A panic inside fn
// is captured and converted to a *PanicError. The first failure cancels
// the derived context, so queued items are skipped (their error is the
// context's); in-flight runs are left to finish. The returned error is the
// lowest-index genuine failure, making the call deterministic for a given
// input slice. The partially filled result slice is returned even on
// error: slots whose run completed are valid.
func Map[S, R any](ctx context.Context, opts Options, items []S, fn func(ctx context.Context, index int, item S) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex // guards done counter + Progress serialisation
	done := 0
	finish := func(i int, err error) {
		errs[i] = err
		if err != nil {
			cancel()
		}
		if opts.Progress == nil {
			return
		}
		mu.Lock()
		done++
		opts.Progress(Event{Done: done, Total: n, Index: i, Err: err})
		mu.Unlock()
	}

	run := func(i int) {
		if err := ctx.Err(); err != nil {
			finish(i, err)
			return
		}
		defer func() {
			if v := recover(); v != nil {
				finish(i, &PanicError{Value: v, Stack: debug.Stack()})
			}
		}()
		r, err := fn(ctx, i, items[i])
		if err == nil {
			results[i] = r
		}
		finish(i, err)
	}

	var wg sync.WaitGroup
	if opts.Pool != nil {
		// Shared budget: one goroutine per item, each holding a pool
		// slot only while its run executes.
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := opts.Pool.acquire(ctx); err != nil {
					finish(i, err)
					return
				}
				defer opts.Pool.release()
				run(i)
			}(i)
		}
	} else {
		workers := opts.workers(n)
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}
	wg.Wait()

	// Deterministic error selection: the lowest-index genuine failure
	// wins; cancellation errors only surface if nothing else failed.
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return results, err
	}
	return results, firstCancel
}
