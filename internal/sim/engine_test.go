package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := FromSeconds(-1); got != 0 {
		t.Errorf("FromSeconds(-1) = %v, want 0", got)
	}
	if got := FromSeconds(1e30); got != MaxTime {
		t.Errorf("FromSeconds(huge) = %v, want MaxTime", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{5 * Second, "5s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestClockCycles(t *testing.T) {
	c := MHz(1000) // 1 GHz → 1000 ps period
	if got := c.Period(); got != 1000*Picosecond {
		t.Errorf("Period = %v, want 1000ps", got)
	}
	if got := c.Cycles(1_000_000); got != Millisecond {
		t.Errorf("Cycles(1e6) = %v, want 1ms", got)
	}
	// 273 MHz (Table III on-chip CNN kernel) — no rounding blowup over 1e9 cycles.
	k := MHz(273)
	want := FromSeconds(1e9 / 273e6)
	got := k.Cycles(1e9)
	if diff := got - want; diff < -10 || diff > 10 {
		t.Errorf("Cycles(1e9)@273MHz = %v, want ~%v", got, want)
	}
}

func TestClockPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(10, func() { order = append(order, 11) }) // FIFO among ties
	e.Run()
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
	if e.Executed() != 4 {
		t.Errorf("Executed = %d, want 4", e.Executed())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(5, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Errorf("fired = %v, want [5 10]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i*10), func() { count++ })
	}
	e.RunUntil(30)
	if count != 3 {
		t.Errorf("count = %d after RunUntil(30), want 3", count)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
	e.Run()
	if count != 5 {
		t.Errorf("count = %d after Run, want 5", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineAdvanceGuard(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Advance over pending event did not panic")
		}
	}()
	e.Advance(100)
}

func TestLinkSerialization(t *testing.T) {
	e := NewEngine()
	// 1 GB/s, zero latency: 1000 bytes take 1 µs.
	l := NewLink(e, "test", 1e9, 0)
	d1 := l.Transfer(1000)
	d2 := l.Transfer(1000)
	if d1 != Microsecond {
		t.Errorf("first transfer done at %v, want 1us", d1)
	}
	if d2 != 2*Microsecond {
		t.Errorf("second transfer done at %v, want 2us (queued)", d2)
	}
	if l.TotalBytes() != 2000 {
		t.Errorf("TotalBytes = %d, want 2000", l.TotalBytes())
	}
	if l.QueuedDelay() != Microsecond {
		t.Errorf("QueuedDelay = %v, want 1us", l.QueuedDelay())
	}
}

func TestLinkLatencyDoesNotOccupyCapacity(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "lat", 1e9, 100*Nanosecond)
	d1 := l.Transfer(1000)
	if d1 != Microsecond+100*Nanosecond {
		t.Errorf("done = %v, want 1.1us", d1)
	}
	// Capacity is free at 1us, not 1.1us: pipelined transfers overlap latency.
	if l.NextFree() != Microsecond {
		t.Errorf("NextFree = %v, want 1us", l.NextFree())
	}
}

func TestLinkZeroBytes(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "z", 1e9, 5*Nanosecond)
	if d := l.Transfer(0); d != 5*Nanosecond {
		t.Errorf("zero transfer done at %v, want latency only", d)
	}
	if l.Transfers() != 0 {
		t.Errorf("zero transfer counted")
	}
}

func TestLinkTransferAtFuture(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "f", 1e9, 0)
	d := l.TransferAt(Microsecond, 1000)
	if d != 2*Microsecond {
		t.Errorf("done = %v, want 2us", d)
	}
}

func TestLinkUtilization(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, "u", 1e9, 0)
	l.Transfer(1000) // busy [0,1us]
	e.Schedule(3*Microsecond, func() {
		l.Transfer(1000) // busy [3us,4us]
	})
	e.Run()
	// busy 2us over window [0,4us] = 0.5
	if u := l.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("Utilization = %v, want ~0.5", u)
	}
}

// Property: for any sequence of transfer sizes, the total completion time on
// a contended link equals sum(duration(size_i)) when all transfers are
// issued at time zero — the link conserves capacity.
func TestLinkConservesCapacity(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := NewEngine()
		l := NewLink(e, "p", 1e9, 0)
		var last Time
		var wantBusy Time
		for _, s := range sizes {
			n := int64(s)
			last = l.Transfer(n)
			wantBusy += l.duration(n)
		}
		if len(sizes) == 0 {
			return last == 0
		}
		return last == wantBusy && l.BusyTime() == wantBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTokenQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewTokenQueue(e, "q", 4)
	var got []int
	q.Put(1, nil)
	q.Put(2, nil)
	q.Get(func(v any) { got = append(got, v.(int)) })
	q.Get(func(v any) { got = append(got, v.(int)) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2]", got)
	}
}

func TestTokenQueueBackpressure(t *testing.T) {
	e := NewEngine()
	q := NewTokenQueue(e, "bp", 1)
	accepted := make([]bool, 3)
	q.Put(10, func() { accepted[0] = true })
	q.Put(20, func() { accepted[1] = true })
	q.Put(30, func() { accepted[2] = true })
	if !accepted[0] || accepted[1] || accepted[2] {
		t.Fatalf("accepted = %v, want only first", accepted)
	}
	if q.PutWaits() != 2 {
		t.Errorf("PutWaits = %d, want 2", q.PutWaits())
	}
	var got []int
	q.Get(func(v any) { got = append(got, v.(int)) })
	if !accepted[1] {
		t.Error("second put not admitted after a get")
	}
	q.Get(func(v any) { got = append(got, v.(int)) })
	q.Get(func(v any) { got = append(got, v.(int)) })
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("got %v, want [10 20 30]", got)
	}
	if !accepted[2] {
		t.Error("third put never admitted")
	}
}

func TestTokenQueueParkedGetter(t *testing.T) {
	e := NewEngine()
	q := NewTokenQueue(e, "pg", 2)
	var got int
	q.Get(func(v any) { got = v.(int) })
	if q.GetWaits() != 1 {
		t.Errorf("GetWaits = %d, want 1", q.GetWaits())
	}
	q.Put(42, nil)
	if got != 42 {
		t.Errorf("got = %d, want 42", got)
	}
}

// Property: items always come out in the order they were put, for any
// interleaving pattern of puts and gets.
func TestTokenQueueOrderProperty(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		e := NewEngine()
		capacity := int(capSeed%8) + 1
		q := NewTokenQueue(e, "prop", capacity)
		next := 0
		var got []int
		for _, isPut := range ops {
			if isPut {
				v := next
				next++
				q.Put(v, nil)
			} else {
				q.Get(func(v any) { got = append(got, v.(int)) })
			}
		}
		// Drain: everything already put must come out in order.
		for i := 0; i < next; i++ {
			q.Get(func(v any) { got = append(got, v.(int)) })
		}
		seen := make(map[int]bool)
		prev := -1
		for _, v := range got {
			if seen[v] {
				return false
			}
			seen[v] = true
			if v <= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
