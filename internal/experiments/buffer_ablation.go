package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/fpga"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BufferAblationCell is one point of the near-storage DRAM-buffer sweep.
type BufferAblationCell struct {
	HitRatio float64
	Runtime  sim.Time
	EnergyJ  float64
	SSDJ     float64
}

// BufferAblationResult quantifies §II-C's claim that the near-storage
// accelerator "requires a small dedicated DRAM buffer to act as a cache
// for accelerator parameters, to limit disk accesses and exploit the
// parameters' reuse ratio": the feature-extraction stage is run on a
// near-storage accelerator with the parameter buffer's hit ratio swept
// from always-hit (the 1 GB buffer holds the compressed model) down to
// no-buffer (every parameter read falls through to flash).
type BufferAblationResult struct {
	Cells []*BufferAblationCell
}

// bufferHitRatios is the sweep axis, from always-hit down to no-buffer.
func bufferHitRatios() []float64 { return []float64{1.0, 0.75, 0.5, 0.25, 0.0} }

// bufferCell runs the FE stage on one private near-storage platform with
// the given parameter-buffer hit ratio. Each cell owns its own engine and
// meter, so cells are independent runs.
func bufferCell(m workload.Model, hit float64) (*BufferAblationCell, error) {
	eng := sim.NewEngine()
	meter := energy.NewMeter(energy.DefaultCosts())
	cfg := config.Default().WithInstances(0, 0, 1)
	// Parameter gathers are page-granular: without the buffer they
	// hammer the flash IOPS limit.
	cfg.Storage.GatherGrainBytes = cfg.Storage.PageBytes
	plat, err := accel.NewPlatform(eng, cfg, meter)
	if err != nil {
		return nil, err
	}
	a, err := plat.NewNearStor(0)
	if err != nil {
		return nil, err
	}
	a.BufferHitRatio = hit
	kernel, err := fpga.NewRegistry().Lookup("CNN-ZCU9")
	if err != nil {
		return nil, err
	}
	var last sim.Time
	for img := 0; img < m.BatchSize; img++ {
		// Each image re-streams the full uncompressed parameter set
		// (the buffer exists precisely because this reuse is heavy).
		done, err := a.Execute(&accel.Task{
			Name: fmt.Sprintf("fe%d", img), Stage: StageFE, Kernel: kernel,
			MACs:    m.FeatureMACsPerImage(),
			Bytes:   m.CNN.ParamBytes(),
			Source:  accel.SourceDeviceDRAM,
			Pattern: storage.RandomPages,
		})
		if err != nil {
			return nil, err
		}
		eng.RunUntil(done)
		last = done
	}
	return &BufferAblationCell{
		HitRatio: hit,
		Runtime:  last,
		EnergyJ:  meter.Total(),
		SSDJ:     meter.Component(energy.SSD),
	}, nil
}

// AblationNSBuffer runs the sweep, one hit ratio per parallel run.
func AblationNSBuffer(m workload.Model, opts ...Option) (*BufferAblationResult, error) {
	ratios := bufferHitRatios()
	cells, err := mapRuns(buildOptions(opts), ratios,
		func(i int) string { return fmt.Sprintf("nsbuffer hit=%.2f", ratios[i]) },
		func(hit float64) (*BufferAblationCell, error) { return bufferCell(m, hit) })
	if err != nil {
		return nil, err
	}
	return &BufferAblationResult{Cells: cells}, nil
}

// Table renders the sweep.
func (r *BufferAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation — near-storage DRAM buffer hit ratio (FE stage, 1 instance)",
		Columns: []string{"Buffer hit", "Runtime ms", "Energy J", "SSD J"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			fmt.Sprintf("%.0f%%", c.HitRatio*100),
			report.F(c.Runtime.Milliseconds(), 1),
			report.F(c.EnergyJ, 2),
			report.F(c.SSDJ, 2),
		)
	}
	t.AddNote("§II-C: the private buffer exists to limit disk accesses and exploit parameter reuse")
	return t
}
