package cluster

import (
	"fmt"
	"math/rand"
)

// Policy selects how the front end picks a replica node for each request.
type Policy int

const (
	// PolicyHash routes by query hash: replica index = hash(query) mod
	// replicas. Affinity routing — a query lands on the same replica
	// index for every shard, which is cache-friendly but blind to load.
	PolicyHash Policy = iota
	// PolicyRR deals requests round-robin over the candidate list.
	PolicyRR
	// PolicyP2C is power-of-two-choices: sample two distinct candidates
	// and send the request to the one with fewer outstanding requests
	// (ties to the lower node index). The classic result: exponentially
	// better max load than random/hash placement.
	PolicyP2C
)

func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyRR:
		return "rr"
	case PolicyP2C:
		return "p2c"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a config/CLI spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "hash":
		return PolicyHash, nil
	case "rr", "round-robin":
		return PolicyRR, nil
	case "p2c", "power-of-two":
		return PolicyP2C, nil
	default:
		return 0, fmt.Errorf("cluster: unknown route policy %q (valid: hash, rr, p2c)", s)
	}
}

// Router is the front-end tier's replica selector. It owns the per-node
// outstanding-request counts that PolicyP2C consults; the cluster calls
// Done as requests complete. Deterministic: the p2c sampler draws from a
// seeded source consumed in event order, so identical runs make identical
// choices.
type Router struct {
	policy Policy
	rng    *rand.Rand
	rr     uint64
	load   []int    // outstanding requests per node
	peak   []int    // high-water outstanding per node
	routed []uint64 // total requests routed per node
}

// NewRouter builds a router over `nodes` servers.
func NewRouter(policy Policy, nodes int, seed int64) *Router {
	return &Router{
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
		load:   make([]int, nodes),
		peak:   make([]int, nodes),
		routed: make([]uint64, nodes),
	}
}

// Policy reports the router's configured policy.
func (r *Router) Policy() Policy { return r.policy }

// mix64 is SplitMix64's finalizer — the stable request hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Pick selects one node among candidates for the request keyed by key,
// increments that node's outstanding and routed counts, and returns it.
// candidates must be non-empty; entries are node indices.
func (r *Router) Pick(key uint64, candidates []int) int {
	var n int
	switch {
	case len(candidates) == 1:
		n = candidates[0]
	case r.policy == PolicyRR:
		n = candidates[r.rr%uint64(len(candidates))]
		r.rr++
	case r.policy == PolicyP2C:
		i, j := 0, 1
		if len(candidates) > 2 {
			i = r.rng.Intn(len(candidates))
			j = r.rng.Intn(len(candidates) - 1)
			if j >= i {
				j++
			}
		}
		a, b := candidates[i], candidates[j]
		n = a
		if r.load[b] < r.load[a] || (r.load[b] == r.load[a] && b < a) {
			n = b
		}
	default: // PolicyHash
		n = candidates[mix64(key)%uint64(len(candidates))]
	}
	r.load[n]++
	if r.load[n] > r.peak[n] {
		r.peak[n] = r.load[n]
	}
	r.routed[n]++
	return n
}

// Done records the completion of a request previously routed to node.
func (r *Router) Done(node int) {
	if r.load[node] > 0 {
		r.load[node]--
	}
}

// Load reports a node's current outstanding requests.
func (r *Router) Load(node int) int { return r.load[node] }

// LoadsInto appends every node's current outstanding count to dst and
// returns it — the flight recorder's allocation-free view of live queue
// depths (callers pass a reused scratch slice).
func (r *Router) LoadsInto(dst []int) []int {
	return append(dst, r.load...)
}

// Routed returns a copy of the per-node routed-request totals.
func (r *Router) Routed() []uint64 {
	return append([]uint64(nil), r.routed...)
}

// Peak returns a copy of the per-node high-water outstanding counts —
// the deepest each node's queue ever got.
func (r *Router) Peak() []int {
	return append([]int(nil), r.peak...)
}

// PeakImbalance reports max over mean of the per-node peak queue depths —
// how much deeper the worst node's queue ran than the typical one. 1.0 is
// perfectly even; zero before any request.
func (r *Router) PeakImbalance() float64 {
	var sum, max int
	for _, p := range r.peak {
		sum += p
		if p > max {
			max = p
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.peak))
	return float64(max) / mean
}

// Imbalance reports max over mean of the per-node routed totals — 1.0 is
// a perfectly even spread. Zero before any request.
func (r *Router) Imbalance() float64 {
	var sum, max uint64
	for _, n := range r.routed {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.routed))
	return float64(max) / mean
}
