// Package metrics is the simulator's time-resolved observability layer.
// Where the StatsRegistry reports end-of-run aggregates, this package
// records *when* pressure built: a periodic Sampler scheduled on the sim
// engine walks the registry every N sim-microseconds and appends one point
// per resource to chunked columnar series, and a SpanLog collects the
// GAM's structured decision spans (dispatch causes, reconfigurations,
// poll-detection gaps, stream-buffer stalls).
//
// The layer is zero-cost when disabled — nothing is attached to the engine
// and the model hot paths only pay a nil check — and allocation-free in
// steady state when enabled: samples append into preallocated column
// chunks and the registry walk is cached between registrations (see
// TestSamplerZeroAllocSteadyState).
//
// Partitioned (cluster) simulations use MultiSampler instead: the same
// columnar series, but driven off the MultiEngine's barriers rather than
// calendar events, so sampling can never perturb the deterministic round
// structure. AttachMulti installs it; per-node span logs merge back into
// one stable order with MergeSpans.
//
// Exporters live next to the consumers: trace.AddCounters/AddSpans merge
// the series into the Chrome trace timeline as "C" counter lanes,
// CSVWriter/JSONLWriter dump the raw time series, and Attribute reduces a
// sampled run to a per-phase bottleneck attribution (rendered by
// report.Bottleneck).
package metrics

import (
	"repro/internal/sim"
)

// DefaultInterval is the sampling period used when Options.Interval is
// unset: fine enough to resolve individual pipeline stages of the CBIR
// workload (hundreds of µs to ms), coarse enough to stay cheap.
const DefaultInterval = 10 * sim.Microsecond

// Options selects what a run records.
type Options struct {
	// Interval is the sampling period in simulated time; <= 0 means
	// DefaultInterval.
	Interval sim.Time
	// Spans enables the GAM decision-span log.
	Spans bool
}

// Recorder bundles one run's observability state: the periodic registry
// sampler and (when enabled) the GAM span log.
type Recorder struct {
	Sampler *Sampler
	// Spans is nil unless Options.Spans was set.
	Spans *SpanLog
}

// Attach creates a Recorder on eng and schedules the sampler's first tick.
// Call Recorder.Finish after the simulation drains to take the closing
// sample.
func Attach(eng *sim.Engine, o Options) *Recorder {
	r := &Recorder{Sampler: NewSampler(eng, o.Interval)}
	if o.Spans {
		r.Spans = NewSpanLog()
	}
	r.Sampler.Start()
	return r
}

// Finish takes the closing sample (and cancels any pending tick). Call
// once, after the run completes.
func (r *Recorder) Finish() {
	r.Sampler.Finish()
}
