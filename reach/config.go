package reach

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/fpga"
	"repro/internal/storage"
)

// Arg is anything bindable to an accelerator argument slot: a *Buffer or a
// *Stream.
type Arg interface {
	argLabel() string
}

// Buffer is a fixed data region pinned at one compute level (Listing 1's
// CreateFixedBuffer): database shards on near-storage devices, centroid
// partitions in near-memory DIMMs, model parameters on chip. Fixed buffers
// are where data stays sedentary — the core idea of limiting runtime data
// movement (§III-A).
type Buffer struct {
	Name     string
	Level    Level
	Size     int64
	Instance int // owning instance at the level (-1: replicated/shared)
}

func (b *Buffer) argLabel() string { return "buffer:" + b.Name }

// Stream is a depth-bounded communication buffer between two levels
// (Listing 1's CreateStream): a pair of queues in the source and
// destination memory spaces, duplicated per instance for BroadCast
// destinations and per source for Collect.
type Stream struct {
	Name  string
	Src   Level
	Dst   Level
	Type  StreamType
	Size  int64 // payload bytes per element (one batch's worth)
	Depth int   // elements in flight

	producers []*ACC // accelerators writing this stream
}

func (st *Stream) argLabel() string { return "stream:" + st.Name }

// ACC is one registered accelerator (Listing 1's RegisterAcc): an
// accelerator template deployed on a specific physical instance of a
// compute level.
type ACC struct {
	Name     string
	Level    Level
	Template string
	Instance int

	sys  *System
	args map[int]Arg
	dirs map[int]argDir
	work Work
}

// argDir records how an argument slot was bound.
type argDir int

const (
	dirAuto argDir = iota // direction inferred from stream endpoints
	dirIn
	dirOut
)

// Work describes the per-invocation workload of an ACC — the quantities
// the simulator's timing model consumes. If StreamBytes is zero it is
// derived from the bound fixed input buffers.
type Work struct {
	// MACs per invocation.
	MACs float64
	// StreamBytes per invocation from the level-local medium.
	StreamBytes int64
	// Random marks page-gather (vs. sequential) access.
	Random bool
	// FromStorage marks the streamed working set as SSD-resident even when
	// the accelerator runs on chip or near memory: the bytes must cross
	// the host IO interface (the rerank-style placement).
	FromStorage bool
	// SPMResident marks the streamed working set as resident in on-fabric
	// SRAM (no movement), e.g. compressed CNN parameters.
	SPMResident bool
	// RemoteFraction is the near-memory fraction fetched over the AIMbus.
	RemoteFraction float64
	// OutputBytes per invocation pushed to the output stream.
	OutputBytes int64
	// Stage labels the invocation's energy attribution (defaults to the
	// template name).
	Stage string
}

// TemplateSpec describes a user-supplied accelerator template — the public
// face of §III-A's "for any new accelerator, once a compute kernel is
// designed and generated for a specific compute level, the bitstream
// alongside a kernel-specific driver ... would be stored as an accelerator
// template".
type TemplateSpec struct {
	// Name registers the template for RegisterAcc lookup.
	Name string
	// Embedded selects the Zynq-class part (near-memory/near-storage);
	// false selects the large Virtex-class on-chip part.
	Embedded bool
	// FreqMHz, PowerW and the utilisation percentages come from the
	// kernel's synthesis report.
	FreqMHz float64
	PowerW  float64
	FF, LUT float64
	DSP     float64
	BRAM    float64
	// MACsPerCycle and StreamBytesPerCycle define the datapath's
	// throughput; II and Depth its pipeline shape.
	MACsPerCycle        float64
	StreamBytesPerCycle float64
	II, Depth           int
}

// RegisterTemplate publishes a custom accelerator template to this
// system's registry.
func (s *System) RegisterTemplate(spec TemplateSpec) error {
	dev := fpga.VirtexVU9P
	if spec.Embedded {
		dev = fpga.ZynqZCU9
	}
	t := &fpga.Template{
		Name:   spec.Name,
		Device: dev,
		Util: fpga.Utilization{
			FF: spec.FF, LUT: spec.LUT, DSP: spec.DSP, BRAM: spec.BRAM,
		},
		FreqMHz:             spec.FreqMHz,
		PowerW:              spec.PowerW,
		PowerNSW:            spec.PowerW,
		MACsPerCycle:        spec.MACsPerCycle,
		StreamBytesPerCycle: spec.StreamBytesPerCycle,
		II:                  spec.II,
		Depth:               spec.Depth,
	}
	return s.sys.Registry().Register(t)
}

// RegisterAcc deploys template t at level l, on the next unused instance
// (round-robin). It fails if the level has no free instances or the
// template is unknown or synthesised for a different part.
func (s *System) RegisterAcc(template string, l Level) (*ACC, error) {
	n := s.sys.InstanceCount(l.internal())
	if n == 0 {
		return nil, fmt.Errorf("reach: no accelerator instances at level %v", l)
	}
	idx := s.nextInstance[l]
	if idx >= n {
		return nil, fmt.Errorf("reach: all %d instances at level %v already registered", n, l)
	}
	a, err := s.RegisterAccAt(template, l, idx)
	if err != nil {
		return nil, err
	}
	s.nextInstance[l] = idx + 1
	return a, nil
}

// RegisterAccAt deploys template t on a specific physical instance. Unlike
// RegisterAcc it permits several logical accelerators to share one fabric:
// their kernels are time-multiplexed through partial reconfiguration (the
// paper's on-chip-only baseline reprograms one FPGA between pipeline
// stages; §VI-A notes the sub-millisecond swap is not charged).
func (s *System) RegisterAccAt(template string, l Level, instance int) (*ACC, error) {
	tpl, err := s.sys.Registry().Lookup(template)
	if err != nil {
		return nil, err
	}
	n := s.sys.InstanceCount(l.internal())
	if instance < 0 || instance >= n {
		return nil, fmt.Errorf("reach: no instance %d at level %v (have %d)", instance, l, n)
	}
	// Device-compatibility check via a trial load.
	inst := s.sys.Accelerators(l.internal())[instance]
	if _, err := inst.Fabric().Load(tpl); err != nil {
		return nil, err
	}
	a := &ACC{
		Name:     fmt.Sprintf("%s@%s[%d]", template, l, instance),
		Level:    l,
		Template: template,
		Instance: instance,
		sys:      s,
		args:     make(map[int]Arg),
	}
	s.accs = append(s.accs, a)
	return a, nil
}

// CreateFixedBuffer allocates a fixed data region of size bytes at level
// dst (Listing 1). The buffer is assigned to instances round-robin when
// the level has per-instance media; use CreateFixedBufferAt to pin
// explicitly.
func (s *System) CreateFixedBuffer(name string, dst Level, size int64) (*Buffer, error) {
	return s.CreateFixedBufferAt(name, dst, size, -1)
}

// CreateFixedBufferAt is CreateFixedBuffer pinned to an instance.
func (s *System) CreateFixedBufferAt(name string, dst Level, size int64, instance int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("reach: buffer %q needs positive size", name)
	}
	if instance >= 0 && instance >= s.sys.InstanceCount(dst.internal()) && dst != CPU {
		return nil, fmt.Errorf("reach: buffer %q pinned to %v[%d], only %d instances",
			name, dst, instance, s.sys.InstanceCount(dst.internal()))
	}
	b := &Buffer{Name: name, Level: dst, Size: size, Instance: instance}
	s.buffers = append(s.buffers, b)
	return b, nil
}

// CreateStream creates a communication stream between two levels
// (Listing 1). size is the payload per element; depth bounds elements in
// flight (0 uses the system default).
func (s *System) CreateStream(name string, src, dst Level, typ StreamType, size int64, depth int) (*Stream, error) {
	if size <= 0 {
		return nil, fmt.Errorf("reach: stream %q needs positive element size", name)
	}
	if depth <= 0 {
		depth = s.sys.Config().GAM.StreamDepth
	}
	st := &Stream{Name: name, Src: src, Dst: dst, Type: typ, Size: size, Depth: depth}
	s.streams = append(s.streams, st)
	return st, nil
}

// SetArg binds buffers and streams to the accelerator's argument slots
// (Listing 2's setArgs). Streams whose destination is the ACC's level are
// inputs; streams whose source is the ACC's level are outputs; buffers
// must live at the ACC's level. For a stream whose source and destination
// are the same level the direction is ambiguous — bind it with SetInput or
// SetOutput instead.
func (a *ACC) SetArg(i int, arg Arg) error {
	if st, ok := arg.(*Stream); ok && st.Src == st.Dst {
		return fmt.Errorf("reach: %s arg %d: stream %q is same-level (%v); use SetInput/SetOutput",
			a.Name, i, st.Name, st.Src)
	}
	return a.bind(i, arg, dirAuto)
}

// SetInput binds arg as an input of the accelerator.
func (a *ACC) SetInput(i int, arg Arg) error { return a.bind(i, arg, dirIn) }

// SetOutput binds arg as an output of the accelerator.
func (a *ACC) SetOutput(i int, arg Arg) error { return a.bind(i, arg, dirOut) }

func (a *ACC) bind(i int, arg Arg, dir argDir) error {
	if arg == nil {
		return fmt.Errorf("reach: %s arg %d is nil", a.Name, i)
	}
	switch v := arg.(type) {
	case *Buffer:
		if v.Level != a.Level {
			return fmt.Errorf("reach: %s arg %d: buffer %q lives at %v, accelerator at %v",
				a.Name, i, v.Name, v.Level, a.Level)
		}
	case *Stream:
		if v.Src != a.Level && v.Dst != a.Level {
			return fmt.Errorf("reach: %s arg %d: stream %q (%v→%v) does not touch level %v",
				a.Name, i, v.Name, v.Src, v.Dst, a.Level)
		}
		produces := dir == dirOut || (dir == dirAuto && v.Src == a.Level)
		if produces {
			v.producers = append(v.producers, a)
		}
	default:
		return fmt.Errorf("reach: %s arg %d: unsupported argument type %T", a.Name, i, arg)
	}
	if _, dup := a.args[i]; dup {
		return fmt.Errorf("reach: %s arg %d bound twice", a.Name, i)
	}
	if a.dirs == nil {
		a.dirs = make(map[int]argDir)
	}
	a.args[i] = arg
	a.dirs[i] = dir
	return nil
}

// SetWork overrides the per-invocation workload model.
func (a *ACC) SetWork(w Work) { a.work = w }

// inputStreams lists streams bound as inputs.
func (a *ACC) inputStreams() []*Stream {
	var out []*Stream
	for i, arg := range a.args {
		st, ok := arg.(*Stream)
		if !ok {
			continue
		}
		switch a.dirs[i] {
		case dirIn:
			out = append(out, st)
		case dirAuto:
			if st.Dst == a.Level && st.Src != a.Level {
				out = append(out, st)
			}
		}
	}
	return out
}

// outputStream returns the first stream bound as output (nil if none).
func (a *ACC) outputStream() *Stream {
	for i, arg := range a.args {
		st, ok := arg.(*Stream)
		if !ok {
			continue
		}
		switch a.dirs[i] {
		case dirOut:
			return st
		case dirAuto:
			if st.Src == a.Level && st.Dst != a.Level {
				return st
			}
		}
	}
	return nil
}

// fixedInputBytes sums bound fixed buffers.
func (a *ACC) fixedInputBytes() int64 {
	var sum int64
	for _, arg := range a.args {
		if b, ok := arg.(*Buffer); ok {
			sum += b.Size
		}
	}
	return sum
}

// taskSource derives the accel.Source of the ACC's streamed input.
func (a *ACC) taskSource() accel.Source {
	if a.work.SPMResident {
		return accel.SourceSPM
	}
	if a.work.FromStorage {
		return accel.SourceSSD
	}
	switch a.Level {
	case OnChip:
		return accel.SourceHostDRAM
	case NearMem:
		return accel.SourceLocalDIMM
	default:
		return accel.SourceSSD
	}
}

func (a *ACC) pattern() storage.AccessPattern {
	if a.work.Random {
		return storage.RandomPages
	}
	return storage.Sequential
}
