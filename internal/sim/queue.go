package sim

// TokenQueue is the canonical Port: a bounded FIFO with asynchronous,
// callback-based put/get — the building block for the ReACH stream buffers
// (paper §III-B), which are depth-bounded queues between compute levels.
// Producers that find the queue full are parked until a consumer frees a
// slot, and vice versa; this is what throttles a fast pipeline stage to
// the rate of the slowest one.
//
// Every queue registers itself in its engine's StatsRegistry and records
// park waits (producer back-pressure and consumer starvation) in a bounded
// histogram at this base layer.
type TokenQueue struct {
	eng      *Engine
	name     string
	capacity int

	// items is the buffer with head as its pop index: popping advances
	// head and pushing appends, so the backing array is reused in place
	// once it drains instead of being re-allocated every wraparound —
	// steady-state put/get traffic (the GAM stream buffers) is
	// allocation-free.
	items   []any
	head    int
	getters []pendingGet
	putters []pendingPut

	// accounting
	puts, gets   uint64
	putWaits     uint64
	getWaits     uint64
	maxOccupancy int
	waitTime     Time
	waitHist     *Histogram
}

type pendingPut struct {
	item   any
	done   func()
	parked Time
}

type pendingGet struct {
	onItem func(any)
	parked Time
}

// NewTokenQueue creates a queue holding at most capacity items, registered
// on eng's registry under name. capacity must be at least 1.
func NewTokenQueue(eng *Engine, name string, capacity int) *TokenQueue {
	if eng == nil {
		panic("sim: NewTokenQueue with nil engine")
	}
	if capacity < 1 {
		panic("sim: TokenQueue capacity must be >= 1")
	}
	q := &TokenQueue{
		eng:      eng,
		capacity: capacity,
		waitHist: NewBoundedHistogram(statHistogramCap),
	}
	q.name = eng.Stats().Register(name, q)
	return q
}

// Name reports the queue's registered name.
func (q *TokenQueue) Name() string { return q.name }

// Capacity reports the configured depth.
func (q *TokenQueue) Capacity() int { return q.capacity }

// Len reports the number of items currently buffered.
func (q *TokenQueue) Len() int { return len(q.items) - q.head }

// popItem removes and returns the oldest buffered item, recycling the
// backing array once it fully drains.
func (q *TokenQueue) popItem() any {
	item := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return item
}

// pushItem appends an item and tracks the occupancy high-water mark.
func (q *TokenQueue) pushItem(item any) {
	q.items = append(q.items, item)
	if occ := len(q.items) - q.head; occ > q.maxOccupancy {
		q.maxOccupancy = occ
	}
}

// recordWait accounts a park that began at parked and ended now.
func (q *TokenQueue) recordWait(parked Time) {
	if w := q.eng.Now() - parked; w > 0 {
		q.waitTime += w
		q.waitHist.Add(w)
	} else {
		q.waitHist.Add(0)
	}
}

// Put offers item to the queue. done (optional) runs at the simulated time
// the item is accepted: immediately if there is space or a waiting getter,
// otherwise when a consumer frees a slot.
func (q *TokenQueue) Put(item any, done func()) {
	q.puts++
	// Fast path: hand directly to a parked getter.
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		q.recordWait(g.parked)
		if done != nil {
			done()
		}
		g.onItem(item)
		return
	}
	if q.Len() < q.capacity {
		q.pushItem(item)
		if done != nil {
			done()
		}
		return
	}
	q.putWaits++
	q.putters = append(q.putters, pendingPut{item: item, done: done, parked: q.eng.Now()})
}

// Get asks for the next item. onItem runs at the simulated time an item is
// available: immediately if the queue is nonempty, otherwise when a
// producer delivers one.
func (q *TokenQueue) Get(onItem func(any)) {
	if onItem == nil {
		panic("sim: TokenQueue.Get with nil callback")
	}
	q.gets++
	if q.Len() > 0 {
		item := q.popItem()
		q.admitParkedPutter()
		onItem(item)
		return
	}
	if len(q.putters) > 0 {
		// Queue is empty but a producer is parked (possible only when
		// capacity fills and drains in the same instant); serve directly.
		p := q.putters[0]
		q.putters = q.putters[1:]
		q.recordWait(p.parked)
		if p.done != nil {
			p.done()
		}
		onItem(p.item)
		return
	}
	q.getWaits++
	q.getters = append(q.getters, pendingGet{onItem: onItem, parked: q.eng.Now()})
}

// TryGet pops an item if one is buffered, without parking.
func (q *TokenQueue) TryGet() (any, bool) {
	if q.Len() == 0 {
		return nil, false
	}
	item := q.popItem()
	q.gets++
	q.admitParkedPutter()
	return item, true
}

// admitParkedPutter moves the oldest parked producer into the freed slot.
func (q *TokenQueue) admitParkedPutter() {
	if len(q.putters) == 0 {
		return
	}
	p := q.putters[0]
	q.putters = q.putters[1:]
	q.pushItem(p.item)
	q.recordWait(p.parked)
	if p.done != nil {
		p.done()
	}
}

// Puts reports how many items were offered.
func (q *TokenQueue) Puts() uint64 { return q.puts }

// Gets reports how many items were requested.
func (q *TokenQueue) Gets() uint64 { return q.gets }

// PutWaits reports how many producers had to park (back-pressure events).
func (q *TokenQueue) PutWaits() uint64 { return q.putWaits }

// GetWaits reports how many consumers had to park (starvation events).
func (q *TokenQueue) GetWaits() uint64 { return q.getWaits }

// MaxOccupancy reports the high-water mark of buffered items.
func (q *TokenQueue) MaxOccupancy() int { return q.maxOccupancy }

// WaitTime reports accumulated producer+consumer park time.
func (q *TokenQueue) WaitTime() Time { return q.waitTime }

// ResourceStats implements Resource.
func (q *TokenQueue) ResourceStats() ResourceStats {
	return ResourceStats{
		Kind:         KindPort,
		Ops:          q.puts,
		Wait:         q.waitTime,
		Stalls:       q.putWaits + q.getWaits,
		Occupancy:    q.Len(),
		MaxOccupancy: q.maxOccupancy,
		WaitHist:     q.waitHist,
	}
}
