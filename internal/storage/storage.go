// Package storage models the storage system of the ReACH server: NVMe SSDs
// with internal flash channels, page-granularity reads with IOPS limits,
// the single host-side PCIe Gen3 x16 link all SSDs share (the IO bottleneck
// the paper's rerank analysis centres on), and the per-SSD local PCIe links
// near-storage accelerators use to reach the full internal bandwidth of
// their attached device (paper §II-C).
package storage

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// AccessPattern distinguishes sequential streaming from page-granularity
// random gathers (the rerank candidate fetch).
type AccessPattern int

const (
	// Sequential streams contiguous data at full effective bandwidth.
	Sequential AccessPattern = iota
	// RandomPages gathers scattered pages; throughput is additionally
	// capped by the device's random IOPS.
	RandomPages
)

func (p AccessPattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case RandomPages:
		return "random"
	default:
		return fmt.Sprintf("AccessPattern(%d)", int(p))
	}
}

// SSDConfig parameterises one device.
type SSDConfig struct {
	// InternalBytesPerSec is the aggregate flash-channel bandwidth the
	// device can sustain internally (Table II: 12 GB/s effective).
	InternalBytesPerSec float64
	// FlashChannels is the number of independent NVM channels.
	FlashChannels int
	// PageBytes is the flash read granularity.
	PageBytes int64
	// PageReadLatency is the device-internal latency of one page read.
	PageReadLatency sim.Time
	// RandomIOPS caps page-granularity random reads per second.
	RandomIOPS float64
	// GatherGrainBytes is the effective request size of candidate-gather
	// reads (the rerank access pattern): scattered stripes rather than
	// single 4 KiB pages, so the IOPS limit applies per stripe.
	GatherGrainBytes int64
	// WriteAmplification is the flash-level bytes written per host byte
	// (garbage collection and wear levelling); 1.0 disables the model.
	WriteAmplification float64
	// WriteBytesPerSec is the sustained program bandwidth before
	// amplification (flash programs are slower than reads).
	WriteBytesPerSec float64
	// PassThroughLatency is the extra latency the near-storage
	// accelerator's pass-through logic adds to host IO (§II-C: "minimal
	// overhead").
	PassThroughLatency sim.Time
}

// DefaultSSDConfig mirrors the Table II storage system per device.
func DefaultSSDConfig() SSDConfig {
	return SSDConfig{
		InternalBytesPerSec: 12e9,
		FlashChannels:       16,
		PageBytes:           4096,
		PageReadLatency:     80 * sim.Microsecond,
		RandomIOPS:          800_000,
		GatherGrainBytes:    64 << 10,
		WriteAmplification:  1.5,
		WriteBytesPerSec:    3.5e9,
		PassThroughLatency:  2 * sim.Microsecond,
	}
}

// SSD is one NVMe device.
type SSD struct {
	eng      *sim.Engine
	name     string
	cfg      SSDConfig
	internal sim.Connection // aggregate flash-channel capacity

	reads        uint64
	pagesRead    uint64
	bytesRead    uint64
	bytesHost    uint64 // portion that crossed to the host
	bytesDevice  uint64 // portion consumed by the attached accelerator
	bytesWritten uint64 // host/device payload written
	flashWear    uint64 // flash bytes programmed, amplification included
}

// NewSSD creates a device on eng.
func NewSSD(eng *sim.Engine, name string, cfg SSDConfig) *SSD {
	if cfg.InternalBytesPerSec <= 0 || cfg.PageBytes <= 0 || cfg.RandomIOPS <= 0 {
		panic(fmt.Sprintf("storage: invalid SSD config %+v", cfg))
	}
	return &SSD{
		eng:      eng,
		name:     name,
		cfg:      cfg,
		internal: sim.NewLink(eng, name+".flash", cfg.InternalBytesPerSec, cfg.PageReadLatency),
	}
}

// Name reports the device name.
func (s *SSD) Name() string { return s.name }

// Config reports the device configuration.
func (s *SSD) Config() SSDConfig { return s.cfg }

// readInternal accounts the flash-side work of reading n bytes and returns
// its completion time. Random gathers are limited by both bandwidth and
// IOPS; the binding constraint wins.
func (s *SSD) readInternal(n int64, pattern AccessPattern) sim.Time {
	if n <= 0 {
		return s.eng.Now()
	}
	s.reads++
	s.bytesRead += uint64(n)
	switch pattern {
	case RandomPages:
		grain := s.cfg.GatherGrainBytes
		if grain <= 0 {
			grain = s.cfg.PageBytes
		}
		reqs := (n + grain - 1) / grain
		s.pagesRead += uint64((n + s.cfg.PageBytes - 1) / s.cfg.PageBytes)
		bwTime := float64(n) / s.cfg.InternalBytesPerSec
		iopsTime := float64(reqs) / s.cfg.RandomIOPS
		d := sim.FromSeconds(math.Max(bwTime, iopsTime))
		return s.internal.Occupy(d, n)
	default:
		s.pagesRead += uint64((n + s.cfg.PageBytes - 1) / s.cfg.PageBytes)
		return s.internal.Transfer(n)
	}
}

// writeInternal accounts the flash-side work of programming n payload
// bytes: amplified by the GC factor and paced at the (slower) program
// bandwidth. It occupies the same internal capacity reads use, so heavy
// writes steal read bandwidth.
func (s *SSD) writeInternal(n int64) sim.Time {
	if n <= 0 {
		return s.eng.Now()
	}
	wa := s.cfg.WriteAmplification
	if wa < 1 {
		wa = 1
	}
	wbw := s.cfg.WriteBytesPerSec
	if wbw <= 0 {
		wbw = s.cfg.InternalBytesPerSec
	}
	flashBytes := float64(n) * wa
	d := sim.FromSeconds(flashBytes / wbw)
	s.bytesWritten += uint64(n)
	s.flashWear += uint64(flashBytes)
	return s.internal.Occupy(d, n)
}

// InternalUtilization reports flash capacity utilisation.
func (s *SSD) InternalUtilization() float64 { return s.internal.ResourceStats().Utilization }

// Stats snapshot.
type SSDStats struct {
	Reads        uint64
	PagesRead    uint64
	BytesRead    uint64
	BytesHost    uint64
	BytesDevice  uint64
	BytesWritten uint64
	FlashWear    uint64
}

// Stats returns the device counters.
func (s *SSD) Stats() SSDStats {
	return SSDStats{
		Reads: s.reads, PagesRead: s.pagesRead, BytesRead: s.bytesRead,
		BytesHost: s.bytesHost, BytesDevice: s.bytesDevice,
		BytesWritten: s.bytesWritten, FlashWear: s.flashWear,
	}
}

// WriteAmplificationObserved reports flash wear over payload written.
func (s *SSD) WriteAmplificationObserved() float64 {
	if s.bytesWritten == 0 {
		return 0
	}
	return float64(s.flashWear) / float64(s.bytesWritten)
}

// Array is the storage system: a set of SSDs behind one shared host PCIe
// link. Near-storage accelerators bypass the host link entirely.
type Array struct {
	eng  *sim.Engine
	ssds []*SSD
	// hostLink is the single PCIe Gen3 x16 connection between the host
	// and the whole SSD array (16 GB/s raw, ~12 GB/s effective after IO
	// software stack inefficiency [6]); registered as "ssd.host_link".
	hostLink sim.Connection
	hostEff  float64
	// GatherEff further derates the host interface for scattered
	// candidate-gather reads (RandomPages): each stripe is a separate
	// NVMe command through the IO software stack. 1.0 disables the
	// penalty.
	GatherEff float64
}

// NewArray builds n identical SSDs behind one host link of rawBytesPerSec
// with the given software efficiency (effective = raw × eff).
func NewArray(eng *sim.Engine, n int, cfg SSDConfig, rawBytesPerSec, eff float64, hostLatency sim.Time) *Array {
	if n <= 0 {
		panic("storage: array needs at least one SSD")
	}
	if eff <= 0 || eff > 1 {
		panic("storage: host link efficiency must be in (0,1]")
	}
	a := &Array{
		eng:       eng,
		hostLink:  sim.NewLink(eng, "ssd.host_link", rawBytesPerSec, hostLatency),
		hostEff:   eff,
		GatherEff: 1.0,
	}
	for i := 0; i < n; i++ {
		a.ssds = append(a.ssds, NewSSD(eng, fmt.Sprintf("ssd%d", i), cfg))
	}
	return a
}

// SSDs exposes the devices.
func (a *Array) SSDs() []*SSD { return a.ssds }

// SSD returns device i.
func (a *Array) SSD(i int) *SSD { return a.ssds[i] }

// Len reports the number of devices.
func (a *Array) Len() int { return len(a.ssds) }

// HostRead moves n bytes from SSD i to host memory: flash-side read plus
// the shared host PCIe link, plus the pass-through logic of an attached
// near-storage accelerator. Returns arrival time of the last byte at the
// host. This is the path on-chip and near-memory accelerators must use to
// reach storage data.
func (a *Array) HostRead(i int, n int64, pattern AccessPattern) sim.Time {
	s := a.ssds[i]
	s.bytesHost += uint64(n)
	flashDone := s.readInternal(n, pattern)
	eff := a.hostEff
	if pattern == RandomPages && a.GatherEff > 0 {
		eff *= a.GatherEff
	}
	// The PCIe transfer begins as data becomes available; with deep NVMe
	// queues the link transfer pipelines with the flash read, so the
	// completion is bounded by the later of the two resources plus the
	// pass-through hop.
	pcieDone := a.hostLink.TransferEff(n, eff)
	done := flashDone
	if pcieDone > done {
		done = pcieDone
	}
	return done + s.cfg.PassThroughLatency
}

// HostWrite moves n bytes from host memory onto SSD i (the forced
// write-back GAM performs for near-storage stream inputs, §III-B 2c).
func (a *Array) HostWrite(i int, n int64) sim.Time {
	s := a.ssds[i]
	s.bytesHost += uint64(n)
	pcieDone := a.hostLink.TransferEff(n, a.hostEff)
	flashDone := s.writeInternal(n)
	if flashDone > pcieDone {
		return flashDone
	}
	return pcieDone
}

// DeviceWrite programs n bytes produced by the attached near-storage
// accelerator (e.g. materialised intermediate results) without touching
// the host interface.
func (a *Array) DeviceWrite(i int, n int64) sim.Time {
	s := a.ssds[i]
	s.bytesDevice += uint64(n)
	return s.writeInternal(n)
}

// HostToDevice moves n bytes from host memory to the accelerator attached
// to SSD i (e.g. preloading kernel parameters into its private DRAM
// buffer): it crosses the shared host PCIe link but not the flash channels.
func (a *Array) HostToDevice(i int, n int64) sim.Time {
	s := a.ssds[i]
	done := a.hostLink.TransferEff(n, a.hostEff)
	return done + s.cfg.PassThroughLatency
}

// DeviceRead moves n bytes from SSD i into its attached near-storage
// accelerator over the local FPGA-SSD link — no host PCIe involvement, so
// the aggregate bandwidth of the array scales with the number of devices.
func (a *Array) DeviceRead(i int, n int64, pattern AccessPattern) sim.Time {
	s := a.ssds[i]
	s.bytesDevice += uint64(n)
	return s.readInternal(n, pattern)
}

// HostLinkBytes reports payload moved over the shared host PCIe link.
func (a *Array) HostLinkBytes() uint64 { return a.hostLink.ResourceStats().Bytes }

// HostLinkQueuedDelay reports accumulated contention on the host link —
// the quantity that saturates in Fig. 11's near-memory rerank plateau.
func (a *Array) HostLinkQueuedDelay() sim.Time { return a.hostLink.ResourceStats().Wait }

// HostLinkUtilization reports host PCIe utilisation.
func (a *Array) HostLinkUtilization() float64 { return a.hostLink.ResourceStats().Utilization }

// EffectiveHostBandwidth reports raw × efficiency in bytes/s.
func (a *Array) EffectiveHostBandwidth() float64 {
	return a.hostLink.BytesPerSec() * a.hostEff
}
