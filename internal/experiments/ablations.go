package experiments

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file implements the design-choice ablations called out in
// DESIGN.md §7 — experiments beyond the paper's figures that quantify the
// GAM mechanisms (§II-D) the paper argues for.

// GAMVariant is one row of the GAM ablation.
type GAMVariant struct {
	Name          string
	Pipelining    bool
	SlackFraction float64
	CommandNS     float64
}

// GAMAblationCell holds one variant's measurements.
type GAMAblationCell struct {
	Variant    GAMVariant
	Throughput float64
	Latency    sim.Time
	MeanPolls  float64
	// MeanDetectLag is the mean time between a near-level task's actual
	// completion and the GAM observing it via a status packet — what the
	// polling slack trades against status traffic.
	MeanDetectLag sim.Time
}

// GAMAblationResult compares GAM scheduling variants on the ReACH mapping.
type GAMAblationResult struct {
	Cells []*GAMAblationCell
}

// gamVariants is the GAM ablation's variant axis.
func gamVariants() []GAMVariant {
	return []GAMVariant{
		{Name: "baseline (pipelined, 10% slack)", Pipelining: true, SlackFraction: 0.10, CommandNS: 500},
		{Name: "no cross-job pipelining", Pipelining: false, SlackFraction: 0.10, CommandNS: 500},
		{Name: "tight polling (1% slack)", Pipelining: true, SlackFraction: 0.01, CommandNS: 500},
		{Name: "loose polling (100% slack)", Pipelining: true, SlackFraction: 1.0, CommandNS: 500},
		{Name: "slow command path (10us)", Pipelining: true, SlackFraction: 0.10, CommandNS: 10_000},
	}
}

// ablationGAMSpecs is the run matrix: the ReACH pipeline once per GAM
// variant, the variant applied as a per-run config mutation.
func ablationGAMSpecs(m workload.Model) []RunSpec {
	variants := gamVariants()
	specs := make([]RunSpec, len(variants))
	for i, v := range variants {
		v := v
		specs[i] = RunSpec{
			Name:      "ablation-gam " + v.Name,
			Model:     m,
			Mapping:   ReACHMapping(),
			Instances: 4,
			Batches:   Fig13Batches,
			Mutate: func(cfg *config.SystemConfig) {
				cfg.GAM.CrossJobPipelining = v.Pipelining
				cfg.GAM.StatusSlackFraction = v.SlackFraction
				cfg.GAM.CommandLatencyNS = v.CommandNS
			},
			Background: BackgroundMakespanRR,
		}
	}
	return specs
}

// ablationGAMCell reduces one variant's run to its row: throughput,
// latency and the observable polling behaviour of the Fig. 5 machinery.
func ablationGAMCell(v GAMVariant, run *RunResult) *GAMAblationCell {
	var polls, tasks, polled float64
	var lag sim.Time
	for _, j := range run.Jobs {
		for _, n := range j.Nodes {
			polls += float64(n.Polls)
			tasks++
			if n.Polls > 0 {
				polled++
				lag += n.DetectedAt - n.CompletedAt
			}
		}
	}
	cell := &GAMAblationCell{
		Variant:    v,
		Throughput: run.ThroughputBatchesPerSec(),
		Latency:    run.Latency,
		MeanPolls:  polls / tasks,
	}
	if polled > 0 {
		cell.MeanDetectLag = sim.Time(float64(lag) / polled)
	}
	return cell
}

// AblationGAM quantifies the contribution of the GAM's mechanisms: the
// cross-job pipelining of §II-D, and the status-polling slack that trades
// detection latency against status-packet traffic.
func AblationGAM(m workload.Model, opts ...Option) (*GAMAblationResult, error) {
	runs, err := RunSpecs(ablationGAMSpecs(m), opts...)
	if err != nil {
		return nil, err
	}
	res := &GAMAblationResult{}
	for i, v := range gamVariants() {
		res.Cells = append(res.Cells, ablationGAMCell(v, runs[i]))
	}
	return res, nil
}

// Table renders the GAM ablation, normalised to the baseline variant.
func (r *GAMAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation — GAM scheduling mechanisms (ReACH mapping, normalised to baseline)",
		Columns: []string{"Variant", "Throughput x", "Latency x", "Polls/task", "Detect lag"},
	}
	base := r.Cells[0]
	for _, c := range r.Cells {
		t.AddRow(
			c.Variant.Name,
			report.F(c.Throughput/base.Throughput, 2),
			report.F(float64(base.Latency)/float64(c.Latency), 2),
			report.F(c.MeanPolls, 2),
			c.MeanDetectLag.String(),
		)
	}
	return t
}

// MappingCell is one candidate stage→level assignment.
type MappingCell struct {
	Mapping    Mapping
	Throughput float64
	Latency    sim.Time
	EnergyJ    float64
}

// Name renders the mapping compactly.
func (c *MappingCell) Name() string {
	return fmt.Sprintf("FE:%s SL:%s RR:%s", c.Mapping.FE, c.Mapping.SL, c.Mapping.RR)
}

// MappingAblationResult ranks every stage→level assignment.
type MappingAblationResult struct {
	Cells []*MappingCell // sorted by descending throughput
}

// allMappings enumerates the full 3^3 stage→level assignment space.
func allMappings() []Mapping {
	levels := []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage}
	var out []Mapping
	for _, fe := range levels {
		for _, sl := range levels {
			for _, rr := range levels {
				out = append(out, Mapping{FE: fe, SL: sl, RR: rr})
			}
		}
	}
	return out
}

// ablationMappingSpecs is the run matrix: the full pipeline under every
// stage→level assignment.
func ablationMappingSpecs(m workload.Model) []RunSpec {
	mappings := allMappings()
	specs := make([]RunSpec, len(mappings))
	for i, mp := range mappings {
		specs[i] = PipelineSpec(fmt.Sprintf("ablation-mapping FE:%v SL:%v RR:%v", mp.FE, mp.SL, mp.RR), m, mp, 4, 4)
	}
	return specs
}

// ablationMappingReduce ranks the completed runs by throughput.
func ablationMappingReduce(runs []*RunResult) *MappingAblationResult {
	res := &MappingAblationResult{}
	for i, mp := range allMappings() {
		run := runs[i]
		res.Cells = append(res.Cells, &MappingCell{
			Mapping:    mp,
			Throughput: run.ThroughputBatchesPerSec(),
			Latency:    run.Latency,
			EnergyJ:    run.TotalEnergyPerBatch(),
		})
	}
	sort.Slice(res.Cells, func(i, j int) bool {
		return res.Cells[i].Throughput > res.Cells[j].Throughput
	})
	return res
}

// AblationMapping exhaustively evaluates all 27 stage→level mappings and
// ranks them — the quantitative version of the paper's §IV-B mapping
// argument. The ReACH mapping should rank first on throughput.
func AblationMapping(m workload.Model, opts ...Option) (*MappingAblationResult, error) {
	runs, err := RunSpecs(ablationMappingSpecs(m), opts...)
	if err != nil {
		return nil, err
	}
	return ablationMappingReduce(runs), nil
}

// Best returns the top-throughput mapping.
func (r *MappingAblationResult) Best() *MappingCell { return r.Cells[0] }

// Find returns the cell for a mapping.
func (r *MappingAblationResult) Find(mp Mapping) *MappingCell {
	for _, c := range r.Cells {
		if c.Mapping == mp {
			return c
		}
	}
	return nil
}

// Table renders the top 10 mappings.
func (r *MappingAblationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation — stage-to-level mapping space (top 10 of 27, by throughput)",
		Columns: []string{"Rank", "Mapping", "Batches/s", "Latency ms", "Energy J/batch"},
	}
	for i, c := range r.Cells {
		if i >= 10 {
			break
		}
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			c.Name(),
			report.F(c.Throughput, 2),
			report.F(c.Latency.Milliseconds(), 1),
			report.F(c.EnergyJ, 1),
		)
	}
	t.AddNote("paper's ReACH mapping: FE:OnChip SL:NearMem RR:NearStor")
	return t
}
