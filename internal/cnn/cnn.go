// Package cnn provides the convolutional-network machinery of the CBIR
// feature-extraction stage: a layer-graph representation with exact
// per-layer op/parameter/activation accounting (used by the timing and
// energy models at the paper's full VGG16 scale), and a runnable forward
// pass (used by the functional layer on reduced geometry so tests execute
// real convolutions).
package cnn

import (
	"fmt"

	"repro/internal/kernels"
)

// LayerKind enumerates the VGG layer types.
type LayerKind int

const (
	// Conv is a 3×3 same-padded convolution followed by ReLU (the paper's
	// "Conv-ReLu" task unit).
	Conv LayerKind = iota
	// Pool is a 2×2 max-pooling layer.
	Pool
	// FC is a fully connected layer (with ReLU except on the last).
	FC
)

func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "Conv-ReLU"
	case Pool:
		return "Pool"
	case FC:
		return "FCN"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerSpec describes one layer's geometry.
type LayerSpec struct {
	Name string
	Kind LayerKind
	// For Conv: input spatial dims and channel counts.
	InH, InW   int
	InC, OutC  int
	KernelSize int
	// For FC: dimensions.
	FCIn, FCOut int
}

// MACs reports the layer's multiply-accumulate count.
func (l LayerSpec) MACs() float64 {
	switch l.Kind {
	case Conv:
		return kernels.Conv2DMACs(l.InH, l.InW, l.InC, l.OutC, l.KernelSize)
	case FC:
		return float64(l.FCIn) * float64(l.FCOut)
	default:
		return 0
	}
}

// Params reports the layer's parameter count (weights + biases).
func (l LayerSpec) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC)*int64(l.InC)*int64(l.KernelSize)*int64(l.KernelSize) + int64(l.OutC)
	case FC:
		return int64(l.FCIn)*int64(l.FCOut) + int64(l.FCOut)
	default:
		return 0
	}
}

// OutputElems reports the layer's output activation element count.
func (l LayerSpec) OutputElems() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.OutC) * int64(l.InH) * int64(l.InW)
	case Pool:
		return int64(l.InC) * int64(l.InH/2) * int64(l.InW/2)
	case FC:
		return int64(l.FCOut)
	default:
		return 0
	}
}

// Spec is a whole network description.
type Spec struct {
	Name   string
	Layers []LayerSpec
}

// VGG16 returns the layer graph of the paper's feature extractor
// (Simonyan & Zisserman configuration D) at full 224×224×3 input
// resolution. Totals: ~138 M parameters (552 MB in float32; 11.3 MB with
// deep compression [23]) and ~15.5 G multiply-accumulates per image.
func VGG16() *Spec {
	type block struct {
		convs int
		inC   int
		outC  int
		h, w  int
	}
	blocks := []block{
		{2, 3, 64, 224, 224},
		{2, 64, 128, 112, 112},
		{3, 128, 256, 56, 56},
		{3, 256, 512, 28, 28},
		{3, 512, 512, 14, 14},
	}
	s := &Spec{Name: "VGG16"}
	for bi, b := range blocks {
		inC := b.inC
		for c := 0; c < b.convs; c++ {
			s.Layers = append(s.Layers, LayerSpec{
				Name: fmt.Sprintf("conv%d_%d", bi+1, c+1), Kind: Conv,
				InH: b.h, InW: b.w, InC: inC, OutC: b.outC, KernelSize: 3,
			})
			inC = b.outC
		}
		s.Layers = append(s.Layers, LayerSpec{
			Name: fmt.Sprintf("pool%d", bi+1), Kind: Pool,
			InH: b.h, InW: b.w, InC: b.outC,
		})
	}
	s.Layers = append(s.Layers,
		LayerSpec{Name: "fc6", Kind: FC, FCIn: 512 * 7 * 7, FCOut: 4096},
		LayerSpec{Name: "fc7", Kind: FC, FCIn: 4096, FCOut: 4096},
		LayerSpec{Name: "fc8", Kind: FC, FCIn: 4096, FCOut: 1000},
	)
	return s
}

// TotalMACs reports the whole network's MAC count per image.
func (s *Spec) TotalMACs() float64 {
	var sum float64
	for _, l := range s.Layers {
		sum += l.MACs()
	}
	return sum
}

// TotalParams reports the parameter count.
func (s *Spec) TotalParams() int64 {
	var sum int64
	for _, l := range s.Layers {
		sum += l.Params()
	}
	return sum
}

// ParamBytes reports uncompressed float32 parameter storage.
func (s *Spec) ParamBytes() int64 { return s.TotalParams() * 4 }

// CompressedParamBytes reports the deep-compression footprint: the paper's
// Table I cites 11.3 MB for the 552 MB model, a ~49× ratio [23].
func (s *Spec) CompressedParamBytes() int64 {
	return int64(float64(s.ParamBytes()) / 48.8)
}

// ActivationBytes reports the total activation traffic (one write + one
// read per layer output, float32) per image — the quantity that determines
// on-chip cache traffic during feature extraction.
func (s *Spec) ActivationBytes() int64 {
	var elems int64
	for _, l := range s.Layers {
		elems += l.OutputElems()
	}
	return elems * 4
}
