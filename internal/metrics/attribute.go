package metrics

import "repro/internal/sim"

// PhaseWindow is one named interval of a run — typically a pipeline
// stage's earliest-dispatch to latest-detection window, plus a "run"
// window covering the whole simulation.
type PhaseWindow struct {
	Name  string
	Start sim.Time
	End   sim.Time
}

// Attribution names, for one phase, the resource under the highest
// normalized pressure and how much of the phase is attributable to it.
type Attribution struct {
	Phase    string
	Window   sim.Time
	Resource string
	Kind     sim.ResourceKind

	// Busy and Wait are the resource's busy-time and queueing-delay deltas
	// inside the phase window.
	Busy sim.Time
	Wait sim.Time
	// Pressure is (Busy + Wait) / window — the normalized contention
	// metric the winner is picked by. Wait counts every queued waiter, so
	// pressure exceeds 1.0 when several operations contend simultaneously.
	Pressure float64
	// Share is min(1, max(Busy, Wait)/window): the fraction of the phase's
	// critical-path time attributable to this resource — busy time for
	// bandwidth resources (connections), park/queue wait for buffering
	// resources (ports, queues, windows) whose Busy is zero by definition.
	Share float64
}

// deltaIn reports the change of a cumulative column inside (a, b]: the
// value at the last sample ≤ b minus the value at the last sample ≤ a.
// Samples are cumulative counters, so this is exact at sample boundaries
// and conservative (quantized to the sampling grid) inside them.
func deltaIn(s *Sampler, se *Series, col *column, a, b sim.Time) int64 {
	return cumAt(s, se, col, b) - cumAt(s, se, col, a)
}

// cumAt reports a cumulative column's value at the last sample instant
// ≤ t, or zero when the series has no sample that early.
func cumAt(s *Sampler, se *Series, col *column, t sim.Time) int64 {
	// Binary search over the global time axis restricted to the series'
	// live range [se.start, se.start+len).
	lo, hi := 0, se.Len() // candidate point counts
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Time(se.start+mid) <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return col.at(lo - 1)
}

// Attribute reduces a sampled run to one Attribution per phase: the
// resource with the highest normalized pressure inside each window. A
// phase in which no resource saw pressure yields Resource == "" with zero
// Pressure. Ties break by resource name, so the result is deterministic.
func Attribute(s *Sampler, phases []PhaseWindow) []Attribution {
	series := s.Series() // sorted by name
	out := make([]Attribution, 0, len(phases))
	for _, ph := range phases {
		att := Attribution{Phase: ph.Name, Window: ph.End - ph.Start}
		if att.Window <= 0 {
			out = append(out, att)
			continue
		}
		w := att.Window.Seconds()
		for _, se := range series {
			busy := sim.Time(deltaIn(s, se, &se.busy, ph.Start, ph.End))
			wait := sim.Time(deltaIn(s, se, &se.wait, ph.Start, ph.End))
			if busy <= 0 && wait <= 0 {
				continue
			}
			pressure := (busy.Seconds() + wait.Seconds()) / w
			if pressure > att.Pressure {
				att.Resource = se.Name
				att.Kind = se.Kind
				att.Busy = busy
				att.Wait = wait
				att.Pressure = pressure
				dominant := busy
				if wait > dominant {
					dominant = wait
				}
				att.Share = dominant.Seconds() / w
				if att.Share > 1 {
					att.Share = 1
				}
			}
		}
		out = append(out, att)
	}
	return out
}
