// Package reach is the public programming interface of the ReACH
// reconfigurable accelerator compute hierarchy — the Go rendition of the
// paper's library-based programming model (§III, Listings 1-3).
//
// A ReACH application is written in two parts:
//
//   - a configuration (the paper's config.h): RegisterAcc binds
//     pre-synthesised accelerator templates to compute levels,
//     CreateFixedBuffer pins data regions at a level, CreateStream creates
//     depth-bounded communication buffers between levels, and SetArg wires
//     buffers and streams to accelerator arguments;
//   - a host program (host.cpp): Begin/Enqueue/Execute/Commit describe the
//     per-batch task flow in conventional synchronous style while the GAM
//     handles the asynchronous scheduling, data movement and cross-batch
//     pipelining underneath.
//
// The package drives the repository's cycle-level simulator: executing a
// pipeline yields the simulated latency, throughput and per-component
// energy of the configured hierarchy.
package reach

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sim"
)

// Level selects a compute level (Listing 1).
type Level int

const (
	// OnChip is the cache-coherent on-chip accelerator level.
	OnChip Level = iota
	// NearMem is the accelerator-interposed memory (AIM) level.
	NearMem
	// NearStor is the SSD-attached accelerator level.
	NearStor
	// CPU is the host endpoint for stream sources/sinks.
	CPU
)

func (l Level) String() string { return l.internal().String() }

func (l Level) internal() accel.Level {
	switch l {
	case OnChip:
		return accel.OnChip
	case NearMem:
		return accel.NearMemory
	case NearStor:
		return accel.NearStorage
	default:
		return accel.CPU
	}
}

// StreamType selects the communication pattern of a stream (Listing 1):
// one-to-all, all-to-one, or one-to-one.
type StreamType int

const (
	// BroadCast duplicates each element to every accelerator instance at
	// the destination level.
	BroadCast StreamType = iota
	// Collect gathers elements from all source instances to one consumer.
	Collect
	// Pair connects one producer to one consumer.
	Pair
)

func (t StreamType) String() string {
	switch t {
	case BroadCast:
		return "BroadCast"
	case Collect:
		return "Collect"
	case Pair:
		return "Pair"
	default:
		return fmt.Sprintf("StreamType(%d)", int(t))
	}
}

// Option configures a System.
type Option func(*config.SystemConfig)

// WithInstances sets the accelerator population per level.
func WithInstances(onChip, nearMem, nearStor int) Option {
	return func(c *config.SystemConfig) {
		*c = c.WithInstances(onChip, nearMem, nearStor)
	}
}

// WithStreamDepth sets the default depth of inter-level streams.
func WithStreamDepth(depth int) Option {
	return func(c *config.SystemConfig) { c.GAM.StreamDepth = depth }
}

// WithCrossJobPipelining toggles GAM's dispatching of the next job's tasks
// before the previous job fully completes (§II-D).
func WithCrossJobPipelining(on bool) Option {
	return func(c *config.SystemConfig) { c.GAM.CrossJobPipelining = on }
}

// WithConfig replaces the whole hardware description (advanced use; see
// the internal/config package for the schema).
func WithConfig(c config.SystemConfig) Option {
	return func(dst *config.SystemConfig) { *dst = c }
}

// System is one configured ReACH machine plus its meta-accelerator state.
type System struct {
	sys      *core.System
	accs     []*ACC
	buffers  []*Buffer
	streams  []*Stream
	deployed bool

	nextJob int

	// per-level rotation for auto-assigned instances
	nextInstance map[Level]int
}

// NewSystem builds a simulated ReACH server. With no options it matches
// the paper's Table II setup (1 on-chip, 4 near-memory, 4 near-storage
// accelerator instances).
func NewSystem(opts ...Option) (*System, error) {
	cfg := config.Default()
	for _, o := range opts {
		o(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys, nextInstance: make(map[Level]int)}, nil
}

// Core exposes the underlying simulator system for the experiment harness
// and tests.
func (s *System) Core() *core.System { return s.sys }

// Now reports the current simulated time.
func (s *System) Now() sim.Time { return s.sys.Engine().Now() }

// Resources exposes the central stats registry: every shared hardware
// resource (memory channels, AIMbus, PCIe links, NoC ports, stream
// buffers, request queues, NVMe windows) under its hierarchical name, with
// the uniform base-layer statistics snapshot.
func (s *System) Resources() *sim.StatsRegistry { return s.sys.Engine().Stats() }

// Run drains all scheduled simulation work.
func (s *System) Run() { s.sys.Run() }

// Energy returns the per-component energy breakdown accumulated so far, in
// joules, keyed by the component names of the paper's Fig. 8.
func (s *System) Energy() map[string]float64 {
	out := make(map[string]float64)
	for _, c := range energy.Components() {
		out[c.String()] = s.sys.Meter().Component(c)
	}
	return out
}

// TotalEnergy reports total joules.
func (s *System) TotalEnergy() float64 { return s.sys.Meter().Total() }
