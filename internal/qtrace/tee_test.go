package qtrace

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// orderedObserver appends "<name>.done" / "<name>.at" markers to a shared
// journal, making callback order observable across tee sides.
type orderedObserver struct {
	name    string
	journal *[]string
	at      bool
}

func (o *orderedObserver) QueryDone(int, sim.Time) {
	*o.journal = append(*o.journal, o.name+".done")
}

// orderedAtObserver extends orderedObserver with the ObserverAt hook.
type orderedAtObserver struct{ orderedObserver }

func (o *orderedAtObserver) QueryDoneAt(int, sim.Time, sim.Time) {
	*o.journal = append(*o.journal, o.name+".at")
}

// TestTeeOrdering: Tee notifies a strictly before b, for both the plain
// and the At streams, and nested tees preserve left-to-right order — the
// property cmd relies on when chaining inspector → SLO monitor → flight
// recorder on one completion stream.
func TestTeeOrdering(t *testing.T) {
	var journal []string
	a := &orderedAtObserver{orderedObserver{name: "a", journal: &journal}}
	b := &orderedAtObserver{orderedObserver{name: "b", journal: &journal}}
	c := &orderedAtObserver{orderedObserver{name: "c", journal: &journal}}
	l := NewLog(Options{Observer: Tee(Tee(a, b), c)})
	l.Submitted(0, 0, 0)
	l.Completed(0, 10)
	// The log emits every QueryDone before any QueryDoneAt; each stream
	// fans out left to right.
	want := []string{"a.done", "b.done", "c.done", "a.at", "b.at", "c.at"}
	if !reflect.DeepEqual(journal, want) {
		t.Fatalf("callback order = %v, want %v", journal, want)
	}
}

// TestTeePlainSidesOnly: a tee of two plain observers still satisfies
// ObserverAt structurally, and its QueryDoneAt must be a safe no-op —
// neither side implements the extension, so no At callbacks fire and
// nothing panics.
func TestTeePlainSidesOnly(t *testing.T) {
	var journal []string
	a := &orderedObserver{name: "a", journal: &journal}
	b := &orderedObserver{name: "b", journal: &journal}
	teed := Tee(a, b)
	l := NewLog(Options{Observer: teed})
	l.Submitted(0, 0, 0)
	l.Completed(0, 10)
	want := []string{"a.done", "b.done"}
	if !reflect.DeepEqual(journal, want) {
		t.Fatalf("journal = %v, want %v (no .at entries)", journal, want)
	}
}

// TestTeeMixedSides: only the side implementing ObserverAt receives the
// At stream; the plain side is unaffected by its sibling's extension.
func TestTeeMixedSides(t *testing.T) {
	var journal []string
	plain := &orderedObserver{name: "p", journal: &journal}
	at := &orderedAtObserver{orderedObserver{name: "x", journal: &journal}}
	l := NewLog(Options{Observer: Tee(plain, at)})
	l.Submitted(0, 0, 0)
	l.Completed(0, 10)
	want := []string{"p.done", "x.done", "x.at"}
	if !reflect.DeepEqual(journal, want) {
		t.Fatalf("journal = %v, want %v", journal, want)
	}
}

// TestTeeNilCollapse: a nil side collapses to the other operand — the
// same dynamic value, not a wrapper — so observer effects with Tee(x, nil)
// are exactly the effects of x alone, and Tee(nil, nil) attaches nothing.
func TestTeeNilCollapse(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) must be nil so the log skips the hook entirely")
	}
	x := &captureAtObserver{}
	if got := Tee(x, nil); got != Observer(x) {
		t.Fatalf("Tee(x, nil) = %T, want x itself", got)
	}
	if got := Tee(nil, x); got != Observer(x) {
		t.Fatalf("Tee(nil, x) = %T, want x itself", got)
	}

	// Effect-zero check: a run observed via Tee(nil, x) produces the same
	// callback stream as one observed via x directly.
	run := func(obs Observer) *captureAtObserver {
		cap := obs.(*captureAtObserver)
		l := NewLog(Options{Observer: obs})
		l.Submitted(0, 0, ms(1))
		l.Submitted(1, 1, ms(2))
		l.Completed(1, ms(7))
		l.Completed(0, ms(9))
		return cap
	}
	direct := run(&captureAtObserver{})
	teed := run(Tee(nil, &captureAtObserver{}))
	if !reflect.DeepEqual(direct.ids, teed.ids) || !reflect.DeepEqual(direct.ats, teed.ats) {
		t.Fatalf("Tee(nil, x) stream (%v @ %v) diverged from x alone (%v @ %v)",
			teed.ids, teed.ats, direct.ids, direct.ats)
	}
}
