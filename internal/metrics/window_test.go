package metrics

import (
	"testing"

	"repro/internal/sim"
)

// fakeSource builds a Source by hand: n samples 10 µs apart, one series
// covering every sample and one late series starting at sample index 3.
func fakeSource(n int) *windowSource {
	w := &windowSource{}
	full := &Series{Name: "full", Kind: sim.KindQueue}
	late := &Series{Name: "late", Kind: sim.KindPort, start: 3}
	for i := 0; i < n; i++ {
		w.times = append(w.times, sim.Time(i)*10*sim.Microsecond)
		full.occupancy.append(int64(i))
		full.ops.append(int64(100 + i))
		full.bytes.append(0)
		full.busy.append(int64(sim.Time(i) * sim.Microsecond))
		full.wait.append(0)
		full.stalls.append(0)
		if i >= 3 {
			late.occupancy.append(int64(1000 + i))
			late.ops.append(0)
			late.bytes.append(0)
			late.busy.append(0)
			late.wait.append(0)
			late.stalls.append(0)
		}
	}
	w.series = []*Series{full, late}
	return w
}

// TestWindowOfTrimsAndReanchors: the windowed source holds exactly the
// in-range sample instants, series re-anchored so exporters see a
// self-contained run.
func TestWindowOfTrimsAndReanchors(t *testing.T) {
	src := fakeSource(10)
	// Window [20µs, 60µs] → samples 2..6.
	w := WindowOf(src, 20*sim.Microsecond, 60*sim.Microsecond)
	if w.Samples() != 5 {
		t.Fatalf("window has %d samples, want 5", w.Samples())
	}
	if w.Time(0) != 20*sim.Microsecond || w.Time(4) != 60*sim.Microsecond {
		t.Fatalf("window time axis [%v, %v], want [20µs, 60µs]", w.Time(0), w.Time(4))
	}
	ser := w.Series()
	if len(ser) != 2 {
		t.Fatalf("window has %d series, want 2", len(ser))
	}
	full, late := ser[0], ser[1]
	if full.Start() != 0 || full.Len() != 5 {
		t.Fatalf("full series start=%d len=%d, want 0/5", full.Start(), full.Len())
	}
	if got := full.At(0).Occupancy; got != 2 {
		t.Errorf("full[0].Occupancy = %d, want 2 (original sample 2)", got)
	}
	if got := full.At(4).Ops; got != 106 {
		t.Errorf("full[4].Ops = %d, want 106", got)
	}
	// The late series started at original sample 3 → window-relative 1.
	if late.Start() != 1 || late.Len() != 4 {
		t.Fatalf("late series start=%d len=%d, want 1/4", late.Start(), late.Len())
	}
	if got := late.At(0).Occupancy; got != 1003 {
		t.Errorf("late[0].Occupancy = %d, want 1003", got)
	}

	// A window beyond the recorded range is empty, not a panic.
	if e := WindowOf(src, sim.Second, 2*sim.Second); e.Samples() != 0 || len(e.Series()) != 0 {
		t.Errorf("out-of-range window: %d samples, %d series", e.Samples(), len(e.Series()))
	}
	// A series with no in-window points is dropped entirely.
	if w2 := WindowOf(src, 0, 10*sim.Microsecond); len(w2.Series()) != 1 {
		t.Errorf("pre-late window carries %d series, want 1", len(w2.Series()))
	}
}

// TestWindowSpans: spans overlapping the window survive, per-node slots
// and nil logs are preserved, and the source logs are untouched.
func TestWindowSpans(t *testing.T) {
	l := NewSpanLog()
	l.Add(Span{Cat: CatDispatch, Name: "early", Start: 0, End: 10})
	l.Add(Span{Cat: CatDispatch, Name: "straddle", Start: 15, End: 25})
	l.Add(Span{Cat: CatDispatch, Name: "inside", Start: 30, End: 35})
	l.Add(Span{Cat: CatDispatch, Name: "late", Start: 50, End: 60})
	out := WindowSpans([]*SpanLog{l, nil}, 20, 40)
	if len(out) != 2 || out[1] != nil {
		t.Fatalf("slots not preserved: %v", out)
	}
	got := out[0].Spans()
	if len(got) != 2 || got[0].Name != "straddle" || got[1].Name != "inside" {
		t.Fatalf("windowed spans = %+v, want straddle+inside", got)
	}
	if l.Len() != 4 {
		t.Fatal("source log mutated")
	}
	if WindowSpans(nil, 0, 1) != nil {
		t.Fatal("nil slice should stay nil")
	}
}
