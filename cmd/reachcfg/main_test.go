package main

import (
	"testing"
)

func TestCheckFit(t *testing.T) {
	// Single kernels always fit.
	if err := checkFit([]string{"CNN-VU9P"}); err != nil {
		t.Errorf("single kernel: %v", err)
	}
	// Whitespace tolerated.
	if err := checkFit([]string{" GEMM-ZCU9 ", "KNN-ZCU9"}); err != nil {
		t.Errorf("pair: %v", err)
	}
	// Unknown template.
	if err := checkFit([]string{"NOPE"}); err == nil {
		t.Error("unknown template accepted")
	}
	// Mixed devices rejected.
	if err := checkFit([]string{"CNN-VU9P", "CNN-ZCU9"}); err == nil {
		t.Error("mixed-device fit accepted")
	}
	// Empty list rejected.
	if err := checkFit(nil); err == nil {
		t.Error("empty list accepted")
	}
}
