package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDDR4TimingPeakBandwidth(t *testing.T) {
	tm := DDR42400()
	// DDR4-2400: 2400 MT/s × 8 B = 19.2 GB/s.
	got := tm.PeakBandwidth()
	if got < 19.0e9 || got > 19.3e9 {
		t.Errorf("peak bandwidth = %v B/s, want ~19.2 GB/s", got)
	}
	// Burst of 8 transfers = 4 bus clocks ≈ 3.332 ns.
	if bt := tm.BurstTime(); bt != 4*833*sim.Picosecond {
		t.Errorf("burst time = %v, want 3332ps", bt)
	}
}

func TestDIMMRowHitVsMiss(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d0", DDR42400(), DefaultGeometry())

	// First access to a closed bank: tRCD + CL + burst.
	t1 := d.Access(0, false)
	wantFirst := d.timing.TRCD + d.timing.CL + d.timing.BurstTime()
	if t1 != wantFirst {
		t.Errorf("closed-row access done at %v, want %v", t1, wantFirst)
	}

	// Same row, same bank (address + 16 banks × 64B stride): row hit,
	// only CL + burst beyond bank-ready.
	eng.RunUntil(t1)
	stride := int64(DefaultGeometry().Banks) * 64
	t2 := d.Access(stride, false)
	if t2 <= t1 {
		t.Fatalf("second access completed at %v, not after first %v", t2, t1)
	}
	hitLatency := t2 - t1
	missLatency := t1
	if hitLatency >= missLatency {
		t.Errorf("row hit latency %v not faster than miss %v", hitLatency, missLatency)
	}
	if d.RowHitRate() != 0.5 {
		t.Errorf("row hit rate = %v, want 0.5", d.RowHitRate())
	}
}

func TestDIMMRowConflictSlowest(t *testing.T) {
	eng := sim.NewEngine()
	g := DefaultGeometry()
	d := NewDIMM(eng, "d0", DDR42400(), g)

	// Open row 0 in bank 0.
	t1 := d.Access(0, false)
	eng.RunUntil(t1)
	// Conflict: same bank, different row. Bank stride is banks×lineSize;
	// row stride within a bank is banks × rowBytes.
	conflictAddr := int64(g.Banks) * g.RowBytes
	t2 := d.Access(conflictAddr, false)
	conflictLatency := t2 - t1
	wantMin := d.timing.TRP + d.timing.TRCD + d.timing.CL
	if conflictLatency < wantMin {
		t.Errorf("conflict latency %v < tRP+tRCD+CL %v", conflictLatency, wantMin)
	}
}

func TestDIMMHandoffProtocol(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d0", DDR42400(), DefaultGeometry())
	if err := d.Handoff(); err != nil {
		t.Fatalf("first handoff: %v", err)
	}
	if err := d.Handoff(); err == nil {
		t.Error("double handoff not rejected")
	}
	d.Access(0, false) // opens a row while AIM-controlled
	when, err := d.Handback()
	if err != nil {
		t.Fatalf("handback: %v", err)
	}
	if when <= 0 {
		t.Error("handback with open rows completed instantly; precharge not modelled")
	}
	for i := range d.banks {
		if d.banks[i].openRow != -1 {
			t.Errorf("bank %d row still open after handback (closed-row policy violated)", i)
		}
	}
	if _, err := d.Handback(); err == nil {
		t.Error("handback without handoff not rejected")
	}
	if d.Handoffs() != 1 {
		t.Errorf("handoffs = %d, want 1", d.Handoffs())
	}
}

func TestControllerCompletesAllRequests(t *testing.T) {
	eng := sim.NewEngine()
	dimms := []*DIMM{
		NewDIMM(eng, "d0", DDR42400(), DefaultGeometry()),
		NewDIMM(eng, "d1", DDR42400(), DefaultGeometry()),
	}
	c := NewController(eng, "mc0", dimms, 64, 64)
	const n = 200
	completed := 0
	var lastDone sim.Time
	for i := 0; i < n; i++ {
		ok := c.Submit(&Request{
			Addr:  int64(i) * 64,
			Write: i%4 == 3,
			Done: func(at sim.Time) {
				completed++
				if at < lastDone {
					t.Errorf("completion at %v before earlier completion %v", at, lastDone)
				}
			},
		})
		if !ok {
			// Queue full: drain and retry.
			eng.Run()
			if !c.Submit(&Request{Addr: int64(i) * 64, Done: func(sim.Time) { completed++ }}) {
				t.Fatalf("submit failed after drain")
			}
		}
	}
	eng.Run()
	if completed != n {
		t.Errorf("completed = %d, want %d", completed, n)
	}
	if c.Served() != n {
		t.Errorf("served = %d, want %d", c.Served(), n)
	}
}

func TestControllerQueueBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d0", DDR42400(), DefaultGeometry())
	c := NewController(eng, "mc0", []*DIMM{d}, 4, 4)
	accepted := 0
	for i := 0; i < 10; i++ {
		if c.Submit(&Request{Addr: int64(i) * 64}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted = %d with depth-4 read queue, want 4", accepted)
	}
	if c.StallEvents() != 6 {
		t.Errorf("stalls = %d, want 6", c.StallEvents())
	}
}

func TestControllerInterleavePolicies(t *testing.T) {
	eng := sim.NewEngine()
	dimms := []*DIMM{
		NewDIMM(eng, "d0", DDR42400(), DefaultGeometry()),
		NewDIMM(eng, "d1", DDR42400(), DefaultGeometry()),
	}
	c := NewController(eng, "mc0", dimms, 64, 64)

	// Cacheline interleave: consecutive lines alternate DIMMs.
	if c.dimmFor(0) == c.dimmFor(64) {
		t.Error("cacheline interleave put consecutive lines on the same DIMM")
	}
	// Tile interleave: a whole 1 MiB tile stays on one DIMM.
	c.SetInterleave(InterleaveTile, 1<<20)
	if c.dimmFor(0) != c.dimmFor(64) || c.dimmFor(0) != c.dimmFor((1<<20)-64) {
		t.Error("tile interleave split a tile across DIMMs")
	}
	if c.dimmFor(0) == c.dimmFor(1<<20) {
		t.Error("tile interleave put adjacent tiles on the same DIMM")
	}
	if c.Interleave() != InterleaveTile {
		t.Errorf("policy = %v, want tile", c.Interleave())
	}
}

// Sequential streaming through the request-level model must achieve high
// row-hit rates and effective bandwidth within the band the bulk model
// assumes (the config's stream_efficiency of ~0.8).
func TestStreamingEfficiencyMatchesBulkAssumption(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d0", DDR42400(), DefaultGeometry())
	c := NewController(eng, "mc0", []*DIMM{d}, 64, 64)

	const lines = 4096
	next := 0
	var finish sim.Time
	var submit func()
	submit = func() {
		for next < lines {
			addr := int64(next) * 64
			ok := c.Submit(&Request{Addr: addr, Done: func(at sim.Time) {
				if at > finish {
					finish = at
				}
				submit()
			}})
			if !ok {
				return // resubmit from a completion callback
			}
			next++
		}
	}
	submit()
	eng.Run()

	bytes := float64(lines * 64)
	eff := bytes / finish.Seconds() / d.timing.PeakBandwidth()
	// With bank-aware FR-FCFS and activation lookahead a sequential
	// stream runs near the bus bound; refresh and boundary activations
	// cost a few percent. The bulk model's 0.82 constant folds in the
	// additional controller realities (write drains, rank turnarounds)
	// this request-level model omits, so the measurement must bracket it
	// from above.
	if eff < 0.80 || eff > 1.0 {
		t.Errorf("sequential stream efficiency = %.3f, want in [0.80, 1.0] (bulk model assumes 0.82)", eff)
	}
	if hr := d.RowHitRate(); hr < 0.95 {
		t.Errorf("row hit rate = %.3f for sequential stream, want > 0.95", hr)
	}
}

func TestPortStreamVsRandom(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPort(eng, "dram", 19.2e9, 0, 0.82, 0.35)
	n := int64(1 << 20)
	tStream := p.Stream(n)
	eng2 := sim.NewEngine()
	p2 := NewPort(eng2, "dram", 19.2e9, 0, 0.82, 0.35)
	tRandom := p2.Random(n)
	if tRandom <= tStream {
		t.Errorf("random (%v) not slower than stream (%v)", tRandom, tStream)
	}
	ratio := float64(tRandom) / float64(tStream)
	want := 0.82 / 0.35
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Errorf("random/stream ratio = %.2f, want ~%.2f", ratio, want)
	}
}

func TestPortSharedLinkContention(t *testing.T) {
	eng := sim.NewEngine()
	shared := sim.NewLink(eng, "channel", 19.2e9, 0)
	a := NewPortOn(shared, 0.82, 0.35)
	b := NewPortOn(shared, 0.82, 0.35)
	n := int64(1 << 20)
	t1 := a.Stream(n)
	t2 := b.Stream(n)
	if t2 <= t1 {
		t.Errorf("second port's transfer (%v) did not queue behind first (%v)", t2, t1)
	}
	if shared.QueuedDelay() == 0 {
		t.Error("no contention recorded on shared channel")
	}
}

// Property: total DIMM bus bytes equal lines × lineSize for any access
// pattern — the bank model never loses or duplicates data.
func TestDIMMConservesBytes(t *testing.T) {
	f := func(addrs []uint16) bool {
		eng := sim.NewEngine()
		d := NewDIMM(eng, "d0", DDR42400(), DefaultGeometry())
		for _, a := range addrs {
			d.Access(int64(a)*64, a%2 == 0)
			eng.Run()
		}
		return d.BusBytes() == uint64(len(addrs))*64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: bank-ready times never move backwards — causality in the bank
// state machine.
func TestDIMMMonotonicBankTime(t *testing.T) {
	f := func(addrs []uint16) bool {
		eng := sim.NewEngine()
		d := NewDIMM(eng, "d0", DDR42400(), DefaultGeometry())
		var prev sim.Time
		for _, a := range addrs {
			done := d.Access(int64(a)*64, false)
			if done < prev && sameBank(d, int64(a)*64, prev) {
				return false
			}
			if done > prev {
				prev = done
			}
			eng.Run()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sameBank(d *DIMM, addr int64, _ sim.Time) bool {
	// helper kept trivial: all completions share the data bus, so they are
	// globally ordered regardless of bank.
	return true
}
