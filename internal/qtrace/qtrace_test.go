package qtrace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * sim.Millisecond }

// TestLogLifecycle: submit → intervals → complete drives the sketch, the
// completion count and the query table.
func TestLogLifecycle(t *testing.T) {
	l := NewLog(Options{})
	l.Submitted(0, 7, ms(10))
	l.Add(0, Interval{Phase: PhaseQueue, Stage: "SL", Level: "NearMem", Detail: "no-idle-instance", Start: ms(10), End: ms(14)})
	l.Add(0, Interval{Phase: PhaseExec, Stage: "SL", Level: "NearMem", Detail: "nearmem0", Start: ms(14), End: ms(20)})
	if l.CompletedCount() != 0 || l.Query(0).Completed() {
		t.Fatal("query completed prematurely")
	}
	l.Completed(0, ms(20))
	q := l.Query(0)
	if !q.Completed() || q.Latency() != ms(10) || q.Job != 7 {
		t.Fatalf("query state wrong: done=%v lat=%v job=%d", q.Completed(), q.Latency(), q.Job)
	}
	if l.CompletedCount() != 1 || l.Sketch().Count() != 1 {
		t.Fatalf("counters wrong: done=%d sketch=%d", l.CompletedCount(), l.Sketch().Count())
	}
	dom := q.Dominant()
	if dom.Phase != PhaseExec || dom.Stage != "SL" {
		t.Fatalf("dominant = %+v, want exec/SL", dom)
	}
	if got := dom.Share; got < 0.59 || got > 0.61 {
		t.Fatalf("dominant share = %v, want 0.6", got)
	}
}

// TestAttributionMergesOverlaps: parallel tasks in the same phase count
// once — the union, not the sum — so shares stay within [0, 1].
func TestAttributionMergesOverlaps(t *testing.T) {
	l := NewLog(Options{})
	l.Submitted(0, 0, ms(0))
	// Four parallel queue waits [0,8] on the same stage/level, plus a
	// disjoint one [9,10]: union = 9 ms of a 10 ms query.
	for i := 0; i < 4; i++ {
		l.Add(0, Interval{Phase: PhaseQueue, Stage: "SL", Level: "NearMem", Start: ms(0), End: ms(8)})
	}
	l.Add(0, Interval{Phase: PhaseQueue, Stage: "SL", Level: "NearMem", Start: ms(9), End: ms(10)})
	l.Completed(0, ms(10))
	dom := l.Query(0).Dominant()
	if dom.Covered != ms(9) {
		t.Fatalf("union coverage = %v, want 9ms", dom.Covered)
	}
	if dom.Share != 0.9 {
		t.Fatalf("share = %v, want 0.9", dom.Share)
	}
}

// TestAttributionClampsToWindow: intervals leaking past the query window
// (a transfer completing after the host interrupt would be a model bug,
// but attribution must stay sane) are clamped.
func TestAttributionClampsToWindow(t *testing.T) {
	l := NewLog(Options{})
	l.Submitted(0, 0, ms(5))
	l.Add(0, Interval{Phase: PhaseXfer, Stage: "RR", Level: "CPU", Start: ms(0), End: ms(30)})
	l.Completed(0, ms(15))
	dom := l.Query(0).Dominant()
	if dom.Covered != ms(10) || dom.Share != 1 {
		t.Fatalf("clamped coverage = %v share = %v, want 10ms / 1.0", dom.Covered, dom.Share)
	}
}

// TestDropTimelines: the memory-bounding mode releases interval slices at
// completion while attribution and the sketch survive.
func TestDropTimelines(t *testing.T) {
	l := NewLog(Options{DropTimelines: true})
	l.Submitted(0, 0, 0)
	l.Add(0, Interval{Phase: PhaseExec, Stage: "FE", Level: "OnChip", Start: 0, End: ms(4)})
	l.Completed(0, ms(4))
	q := l.Query(0)
	if q.Intervals != nil {
		t.Fatal("timeline retained despite DropTimelines")
	}
	if q.Dominant().Phase != PhaseExec || l.Sketch().Count() != 1 {
		t.Fatal("attribution or sketch lost with DropTimelines")
	}
}

// TestLogIgnoresUnknownQueries: intervals and completions for IDs the log
// never saw submitted are dropped, not panics.
func TestLogIgnoresUnknownQueries(t *testing.T) {
	l := NewLog(Options{})
	l.Add(3, Interval{Phase: PhaseExec})
	l.Completed(3, ms(1))
	l.Add(-1, Interval{Phase: PhaseExec})
	if l.CompletedCount() != 0 || len(l.Queries()) != 0 {
		t.Fatal("unknown query leaked into the log")
	}
}

type captureObserver struct {
	ids  []int
	lats []sim.Time
}

func (c *captureObserver) QueryDone(id int, lat sim.Time) {
	c.ids = append(c.ids, id)
	c.lats = append(c.lats, lat)
}

func TestObserverSeesCompletions(t *testing.T) {
	obs := &captureObserver{}
	l := NewLog(Options{Observer: obs})
	l.Submitted(0, 0, ms(0))
	l.Submitted(1, 1, ms(1))
	l.Completed(1, ms(5))
	l.Completed(0, ms(9))
	if len(obs.ids) != 2 || obs.ids[0] != 1 || obs.ids[1] != 0 {
		t.Fatalf("observer ids = %v", obs.ids)
	}
	if obs.lats[0] != ms(4) || obs.lats[1] != ms(9) {
		t.Fatalf("observer latencies = %v", obs.lats)
	}
}

// TestCSVAndJSONLExport: both exporters emit the pinned schemas with one
// interval row per recorded interval and one summary row per completed
// query.
func TestCSVAndJSONLExport(t *testing.T) {
	l := NewLog(Options{})
	l.Submitted(0, 0, ms(0))
	l.Add(0, Interval{Phase: PhaseQueue, Stage: "FE", Level: "OnChip", Detail: "immediate", Start: ms(0), End: ms(0)})
	l.Add(0, Interval{Phase: PhaseExec, Stage: "FE", Level: "OnChip", Detail: "onchip0", Start: ms(0), End: ms(6)})
	l.Completed(0, ms(8))
	l.Submitted(1, 1, ms(2)) // never completes: interval rows only

	var iv, sum bytes.Buffer
	if err := NewCSVWriter(&iv, &sum).WriteRun("r", l); err != nil {
		t.Fatal(err)
	}
	ivRows, err := csv.NewReader(&iv).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(ivRows[0], ",") != strings.Join(IntervalCSVHeader(), ",") {
		t.Fatalf("interval header %v", ivRows[0])
	}
	if len(ivRows) != 3 { // header + 2 intervals
		t.Fatalf("interval rows = %d, want 3", len(ivRows))
	}
	sumRows, err := csv.NewReader(&sum).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sumRows[0], ",") != strings.Join(SummaryCSVHeader(), ",") {
		t.Fatalf("summary header %v", sumRows[0])
	}
	if len(sumRows) != 2 { // header + 1 completed query
		t.Fatalf("summary rows = %d, want 2", len(sumRows))
	}

	var jl bytes.Buffer
	if err := NewJSONLWriter(&jl).WriteRun("r", l); err != nil {
		t.Fatal(err)
	}
	var intervals, queries int
	dec := json.NewDecoder(&jl)
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		switch rec["type"] {
		case "interval":
			intervals++
		case "query":
			queries++
		default:
			t.Fatalf("unknown record type %v", rec["type"])
		}
	}
	if intervals != 2 || queries != 1 {
		t.Fatalf("JSONL records: %d intervals, %d queries", intervals, queries)
	}
}

// captureAtObserver records QueryDoneAt callbacks (the ObserverAt
// extension) alongside the base QueryDone stream.
type captureAtObserver struct {
	captureObserver
	ats []sim.Time
}

func (c *captureAtObserver) QueryDoneAt(id int, at, lat sim.Time) {
	c.ats = append(c.ats, at)
}

// TestObserverAtSeesCompletionInstant: an observer implementing the
// ObserverAt extension gets the simulated completion time in addition to
// the plain QueryDone callback.
func TestObserverAtSeesCompletionInstant(t *testing.T) {
	obs := &captureAtObserver{}
	l := NewLog(Options{Observer: obs})
	l.Submitted(0, 7, 100)
	l.Completed(0, 350)
	if len(obs.ids) != 1 || obs.ids[0] != 0 {
		t.Fatalf("QueryDone ids = %v", obs.ids)
	}
	if len(obs.ats) != 1 || obs.ats[0] != 350 {
		t.Fatalf("QueryDoneAt instants = %v, want [350]", obs.ats)
	}
}

// TestTeeFansOut: Tee forwards completions to both observers, collapses
// nil sides, and forwards the ObserverAt extension only to the side that
// implements it.
func TestTeeFansOut(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) should be nil")
	}
	plain := &captureObserver{}
	if got := Tee(plain, nil); got != Observer(plain) {
		t.Fatal("Tee(x, nil) should collapse to x")
	}
	at := &captureAtObserver{}
	l := NewLog(Options{Observer: Tee(plain, at)})
	l.Submitted(3, 1, 10)
	l.Completed(3, 60)
	if len(plain.ids) != 1 || len(at.ids) != 1 {
		t.Fatalf("fan-out missed a side: plain %v at %v", plain.ids, at.ids)
	}
	if len(at.ats) != 1 || at.ats[0] != 60 {
		t.Fatalf("ObserverAt side got %v, want [60]", at.ats)
	}
}
