// Package experiments builds and runs the paper's evaluation (Section VI):
// one entry point per table and figure, each returning both structured
// results and a rendered table. The benchmark harness (bench_test.go) and
// the reachsim CLI are thin wrappers over this package.
package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Stage labels used for energy attribution — the three online CBIR stages
// of Fig. 7.
const (
	StageFE = "FeatureExtraction"
	StageSL = "ShortlistRetrieval"
	StageRR = "Rerank"
)

// Stages lists the pipeline stages in order.
func Stages() []string { return []string{StageFE, StageSL, StageRR} }

// Mapping assigns each pipeline stage to a compute level.
type Mapping struct {
	FE, SL, RR accel.Level
}

// ReACHMapping is the paper's optimized deployment (§IV-B, Fig. 7):
// feature extraction on chip, shortlist retrieval near memory, rerank near
// storage.
func ReACHMapping() Mapping {
	return Mapping{FE: accel.OnChip, SL: accel.NearMemory, RR: accel.NearStorage}
}

// SingleLevel maps every stage to one level (the §VI-C baselines).
func SingleLevel(l accel.Level) Mapping { return Mapping{FE: l, SL: l, RR: l} }

// Level returns the level of a stage label.
func (m Mapping) Level(stage string) accel.Level {
	switch stage {
	case StageFE:
		return m.FE
	case StageSL:
		return m.SL
	default:
		return m.RR
	}
}

// configFor sizes the accelerator population for a mapping: one on-chip
// instance when used, n near-memory/near-storage instances when used.
func configFor(m Mapping, n int) config.SystemConfig {
	onChip, nm, ns := 0, 0, 0
	for _, l := range []accel.Level{m.FE, m.SL, m.RR} {
		switch l {
		case accel.OnChip:
			onChip = 1
		case accel.NearMemory:
			nm = n
		case accel.NearStorage:
			ns = n
		}
	}
	return config.Default().WithInstances(onChip, nm, ns)
}

// kernelFor picks the Table III template for a stage at a level.
func kernelFor(stage string, l accel.Level) string {
	suffix := "-ZCU9"
	if l == accel.OnChip {
		suffix = "-VU9P"
	}
	switch stage {
	case StageFE:
		return "CNN" + suffix
	case StageSL:
		return "GEMM" + suffix
	default:
		return "KNN" + suffix
	}
}

// addStage appends one stage's task group to a job, depending on `deps`,
// and returns the new nodes. Task decomposition follows §VI-B/§VI-C: the
// on-chip accelerator runs batched single tasks; near-data levels split
// the stage across instances (and feature extraction runs one image per
// task with duplicated parameters).
func addStage(sys *core.System, j *core.Job, stage string, l accel.Level, m workload.Model, deps []*core.TaskNode) ([]*core.TaskNode, error) {
	reg := sys.Registry()
	kName := kernelFor(stage, l)
	kernel, err := reg.Lookup(kName)
	if err != nil {
		return nil, err
	}
	n := sys.InstanceCount(l)
	if n == 0 {
		return nil, fmt.Errorf("experiments: mapping stage %s to empty level %v", stage, l)
	}
	var nodes []*core.TaskNode

	switch stage {
	case StageFE:
		if l == accel.OnChip {
			// One batched task; compressed parameters resident in SRAM.
			node := j.AddTask(accel.Task{
				Name: "fe", Stage: stage, Kernel: kernel,
				MACs: m.FeatureMACsPerBatch(), Source: accel.SourceSPM,
			}, l, deps...)
			node.OutBytes = m.BatchFeatureBytes()
			nodes = append(nodes, node)
			break
		}
		// Near-data: one image per task, duplicated (compressed)
		// parameters per instance (§VI-B "single image per task").
		src := accel.SourceLocalDIMM
		if l == accel.NearStorage {
			src = accel.SourceDeviceDRAM
		}
		for i := 0; i < m.BatchSize; i++ {
			node := j.AddTask(accel.Task{
				Name: fmt.Sprintf("fe%d", i), Stage: stage, Kernel: kernel,
				MACs:   m.FeatureMACsPerImage(),
				Bytes:  m.CNN.CompressedParamBytes() + m.ImageBytes(),
				Source: src,
			}, l, deps...)
			node.OutBytes = m.VectorBytes()
			nodes = append(nodes, node)
		}

	case StageSL:
		switch l {
		case accel.OnChip:
			node := j.AddTask(accel.Task{
				Name: "sl", Stage: stage, Kernel: kernel,
				MACs: m.ShortlistMACsPerBatch(), Bytes: m.ShortlistScanBytesPerBatch(),
				Source: accel.SourceHostDRAM,
			}, l, deps...)
			node.OutBytes = m.ShortlistResultBytesPerBatch()
			nodes = append(nodes, node)
		default:
			src := accel.SourceLocalDIMM
			if l == accel.NearStorage {
				src = accel.SourceSSD
			}
			for i := 0; i < n; i++ {
				node := j.AddTask(accel.Task{
					Name: fmt.Sprintf("sl%d", i), Stage: stage, Kernel: kernel,
					MACs:   m.ShortlistMACsPerBatch() / float64(n),
					Bytes:  m.ShortlistScanBytesPerBatch() / int64(n),
					Source: src, Pattern: storage.Sequential,
				}, l, deps...)
				node.Pin = i
				node.OutBytes = m.ShortlistResultBytesPerBatch() / int64(n)
				nodes = append(nodes, node)
			}
		}

	case StageRR:
		// The rerank scan is storage-resident everywhere; the level only
		// changes which interface the bytes cross.
		for i := 0; i < n; i++ {
			count := n
			if l == accel.OnChip {
				count = 1
			}
			node := j.AddTask(accel.Task{
				Name: fmt.Sprintf("rr%d", i), Stage: stage, Kernel: kernel,
				MACs:   m.RerankMACsPerBatch() / float64(count),
				Bytes:  m.RerankScanBytesPerBatch() / int64(count),
				Source: accel.SourceSSD, Pattern: storage.RandomPages,
			}, l, deps...)
			if l != accel.OnChip {
				node.Pin = i
			}
			node.OutBytes = m.ResultBytesPerBatch() / int64(count)
			node.SinkToHost = true
			nodes = append(nodes, node)
			if l == accel.OnChip {
				break
			}
		}
	default:
		return nil, fmt.Errorf("experiments: unknown stage %q", stage)
	}
	return nodes, nil
}

// BuildPipelineJob constructs one batch's job under a mapping.
func BuildPipelineJob(sys *core.System, id int, m workload.Model, mp Mapping) (*core.Job, error) {
	j := core.NewJob(id)
	fe, err := addStage(sys, j, StageFE, mp.FE, m, nil)
	if err != nil {
		return nil, err
	}
	sl, err := addStage(sys, j, StageSL, mp.SL, m, fe)
	if err != nil {
		return nil, err
	}
	if _, err := addStage(sys, j, StageRR, mp.RR, m, sl); err != nil {
		return nil, err
	}
	return j, nil
}

// RunResult is the outcome of a pipeline run.
type RunResult struct {
	Sys     *core.System
	Batches int
	// Makespan is first-submit to last-finish.
	Makespan sim.Time
	// Latency is the first batch's submit-to-finish time.
	Latency sim.Time
	// StageSpan is, for the first batch, each stage's earliest-dispatch to
	// latest-completion window.
	StageSpan map[string]sim.Time
	// Jobs holds the completed jobs in submission order.
	Jobs []*core.Job
	// Obs is the run's observability recorder — nil unless the spec set
	// Metrics (see RunSpec.Metrics).
	Obs *metrics.Recorder
	// QLog is the run's per-query trace log — nil unless the spec set
	// QTrace (see RunSpec.QTrace).
	QLog *qtrace.Log
}

// PhaseWindows reduces the run to attribution phases: one window per
// pipeline stage (earliest dispatch to latest GAM detection across every
// job, first-seen stage order) plus a closing "run" window covering
// first-submit to last-finish. Empty before the run completes.
func (r *RunResult) PhaseWindows() []metrics.PhaseWindow {
	type span struct{ lo, hi sim.Time }
	byStage := map[string]*span{}
	var order []string
	for _, j := range r.Jobs {
		for _, n := range j.Nodes {
			st := n.Spec.Stage
			sp, ok := byStage[st]
			if !ok {
				byStage[st] = &span{lo: n.DispatchedAt, hi: n.DetectedAt}
				order = append(order, st)
				continue
			}
			if n.DispatchedAt < sp.lo {
				sp.lo = n.DispatchedAt
			}
			if n.DetectedAt > sp.hi {
				sp.hi = n.DetectedAt
			}
		}
	}
	out := make([]metrics.PhaseWindow, 0, len(order)+1)
	for _, st := range order {
		sp := byStage[st]
		out = append(out, metrics.PhaseWindow{Name: st, Start: sp.lo, End: sp.hi})
	}
	if len(r.Jobs) > 0 {
		out = append(out, metrics.PhaseWindow{
			Name:  "run",
			Start: r.Jobs[0].SubmittedAt,
			End:   r.Jobs[0].SubmittedAt + r.Makespan,
		})
	}
	return out
}

// ThroughputBatchesPerSec reports steady-state throughput.
func (r *RunResult) ThroughputBatchesPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Batches) / r.Makespan.Seconds()
}

// EnergyPerBatch reports joules per batch for one component, excluding the
// one-time Setup stage.
func (r *RunResult) EnergyPerBatch(c energy.Component) float64 {
	m := r.Sys.Meter()
	total := m.Component(c) - m.ComponentStage(c, "Setup")
	return total / float64(r.Batches)
}

// TotalEnergyPerBatch reports joules per batch across components.
func (r *RunResult) TotalEnergyPerBatch() float64 {
	var sum float64
	for _, c := range energy.Components() {
		sum += r.EnergyPerBatch(c)
	}
	return sum
}

// PipelineSpec declares the standard end-to-end pipeline run: `batches`
// consecutive batch jobs of workload m under mapping mp on a system with n
// near-data instances per used level, background power attributed per
// stage busy span.
func PipelineSpec(name string, m workload.Model, mp Mapping, n, batches int) RunSpec {
	return RunSpec{
		Name:       name,
		Model:      m,
		Mapping:    mp,
		Instances:  n,
		Batches:    batches,
		Background: BackgroundStageSpan,
	}
}

// RunPipeline runs the standard pipeline spec synchronously (the
// single-run convenience under the CLI's -stats/-trace paths and the
// functional tests; sweeps go through RunSpecs instead).
func RunPipeline(m workload.Model, mp Mapping, n, batches int) (*RunResult, error) {
	return PipelineSpec("pipeline", m, mp, n, batches).Run()
}
