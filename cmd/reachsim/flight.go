package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/flight"
	"repro/internal/inspect"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/trace"
)

// The flight bundle is assembled here, not inside internal/flight: the
// recorder deliberately knows nothing about the cluster, the straggler
// table or the trace renderer (no import cycles, no coupling), so the cmd
// layer pulls the windowed views out of the recorder and feeds them to
// the same exporters a full run uses. Every byte is a function of
// deterministic simulation state, so a bundle is identical at any
// -j/-pj — the flight smoke diffs the whole directory across -pj.

// bundleVerdict decorates the recorder's verdict with cluster-level
// attribution only this layer can compute: the dominant straggler cause
// across the retained window and the retained-query count.
type bundleVerdict struct {
	flight.Verdict
	// DominantCause is the most frequent critical-leg cause (queue, exec,
	// wire) among the window's scattered merges, "" if none merged.
	DominantCause string `json:"dominant_cause,omitempty"`
	// WindowQueries is how many completed queries the window retained.
	WindowQueries int `json:"window_queries"`
}

// writeFlightBundle cuts one self-contained diagnostic bundle directory
// under dir and returns its path: verdict.json (detector verdict with the
// triggering time series and window attribution), trace.json (windowed
// Chrome trace — retained query timelines, windowed counters and spans),
// stragglers.txt (the straggler table restricted to retained queries),
// domains.json (the barrier-sample ring) and state.json (end-of-run
// router and cache state). The directory is bundle-<trigger µs>us for a
// triggered freeze, bundle-final for an end-of-run dump.
func writeFlightBundle(dir string, fr *flight.Recorder, cl *cluster.Cluster, nodes int, rec *metrics.MultiRecorder) (string, error) {
	v := fr.Verdict()
	name := "bundle-final"
	if fr.Frozen() {
		name = fmt.Sprintf("bundle-%dus", int64(v.TriggerMS*1000))
	}
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(path, 0o755); err != nil {
		return "", err
	}

	from, to := fr.Window()
	wq := fr.WindowQueries()
	recs := windowStragglers(cl.Stragglers(), wq)

	bv := bundleVerdict{
		Verdict:       v,
		DominantCause: cluster.DominantCause(recs),
		WindowQueries: len(wq),
	}
	if err := writeBundleJSON(filepath.Join(path, "verdict.json"), bv); err != nil {
		return "", err
	}

	tl := trace.NewTimeline()
	var counters metrics.Source
	var spans []*metrics.SpanLog
	if rec != nil {
		counters = metrics.WindowOf(rec.Sampler, from, to)
		spans = metrics.WindowSpans(rec.Spans, from, to)
	}
	tl.AddCluster(nodes, fr.WindowLog(), counters, spans)
	tf, err := os.Create(filepath.Join(path, "trace.json"))
	if err != nil {
		return "", err
	}
	if err := tl.WriteJSON(tf); err != nil {
		tf.Close()
		return "", err
	}
	if err := tf.Close(); err != nil {
		return "", err
	}

	sf, err := os.Create(filepath.Join(path, "stragglers.txt"))
	if err != nil {
		return "", err
	}
	if st := cluster.StragglerTable(recs); st != nil {
		err = st.Render(sf)
	} else {
		_, err = fmt.Fprintln(sf, "no scattered merges completed in the retained window")
	}
	if err != nil {
		sf.Close()
		return "", err
	}
	if err := sf.Close(); err != nil {
		return "", err
	}

	domains := struct {
		WindowFromUS float64                `json:"window_from_us"`
		WindowToUS   float64                `json:"window_to_us"`
		Samples      []flight.BarrierSample `json:"samples"`
	}{
		WindowFromUS: from.Microseconds(),
		WindowToUS:   to.Microseconds(),
		Samples:      fr.BarrierWindow(),
	}
	if err := writeBundleJSON(filepath.Join(path, "domains.json"), domains); err != nil {
		return "", err
	}

	rt := cl.RouterStats()
	state := struct {
		Submitted     int                 `json:"submitted"`
		Completed     int                 `json:"completed"`
		RoutePolicy   string              `json:"route_policy"`
		RouterRouted  []uint64            `json:"router_routed"`
		RouterPeak    []int               `json:"router_peak"`
		Imbalance     float64             `json:"imbalance"`
		PeakImbalance float64             `json:"peak_imbalance"`
		Cache         *cluster.CacheStats `json:"cache,omitempty"`
	}{
		Submitted:     cl.Submitted(),
		Completed:     cl.Completed(),
		RoutePolicy:   rt.Policy().String(),
		RouterRouted:  rt.Routed(),
		RouterPeak:    rt.Peak(),
		Imbalance:     rt.Imbalance(),
		PeakImbalance: rt.PeakImbalance(),
	}
	if cl.CacheEnabled() {
		cs := cl.CacheStats()
		state.Cache = &cs
	}
	if err := writeBundleJSON(filepath.Join(path, "state.json"), state); err != nil {
		return "", err
	}
	return path, nil
}

// windowStragglers restricts the run's straggler records to queries the
// flight window retained — post-freeze merges and evicted queries drop
// out, so the table describes exactly the bundle's trace.
func windowStragglers(recs []cluster.StragglerRecord, wq []qtrace.Query) []cluster.StragglerRecord {
	in := make(map[int]bool, len(wq))
	for _, q := range wq {
		in[q.ID] = true
	}
	var out []cluster.StragglerRecord
	for _, r := range recs {
		if in[r.Query] {
			out = append(out, r)
		}
	}
	return out
}

// writeBundleJSON writes v as indented JSON with a trailing newline.
// encoding/json sorts map keys, so files with detection maps stay
// byte-deterministic.
func writeBundleJSON(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// anomalyStatus adapts the recorder's live status to the inspector's
// /anomalies mirror (the decoupled-counters pattern: inspect depends on
// neither flight nor cluster).
func anomalyStatus(fr *flight.Recorder) inspect.AnomalyStatus {
	st := fr.Status()
	return inspect.AnomalyStatus{
		WindowMs:        st.WindowMS,
		Detect:          st.Detect,
		Completions:     st.Completions,
		RetainedQueries: st.Retained,
		Detections:      st.Detections,
		Frozen:          st.Frozen,
		TriggerDetector: st.TriggerDetector,
		TriggerMs:       st.TriggerMS,
		TriggerReason:   st.TriggerReason,
	}
}
