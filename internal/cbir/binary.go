package cbir

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/kernels"
)

// Binary codes (sign random projections / SimHash) — the second
// compression family the paper's §IV-A motivation names alongside product
// quantisation. Each vector is reduced to B sign bits of random
// projections; candidate scoring is Hamming distance over packed words.

// BinaryEncoder holds the random hyperplanes.
type BinaryEncoder struct {
	bits   int
	dim    int
	planes *kernels.Matrix // bits × dim
}

// NewBinaryEncoder creates a B-bit encoder for D-dimensional vectors.
func NewBinaryEncoder(bitsN, dim int, seed int64) (*BinaryEncoder, error) {
	if bitsN <= 0 || bitsN%64 != 0 {
		return nil, fmt.Errorf("cbir: bit count %d must be a positive multiple of 64", bitsN)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("cbir: dim must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	planes := kernels.NewMatrix(bitsN, dim)
	for i := range planes.Data {
		planes.Data[i] = float32(rng.NormFloat64())
	}
	return &BinaryEncoder{bits: bitsN, dim: dim, planes: planes}, nil
}

// Bits reports the code length.
func (e *BinaryEncoder) Bits() int { return e.bits }

// CodeBytes reports the compressed size per vector.
func (e *BinaryEncoder) CodeBytes() int64 { return int64(e.bits / 8) }

// CompressionRatio reports float32 bytes over code bytes.
func (e *BinaryEncoder) CompressionRatio() float64 {
	return float64(e.dim*4) / float64(e.CodeBytes())
}

// Encode produces the packed sign code of v.
func (e *BinaryEncoder) Encode(v []float32) []uint64 {
	if len(v) != e.dim {
		panic(fmt.Sprintf("cbir: binary encode dim %d, want %d", len(v), e.dim))
	}
	words := make([]uint64, e.bits/64)
	for b := 0; b < e.bits; b++ {
		var dot float32
		row := e.planes.Row(b)
		for j, x := range v {
			dot += row[j] * x
		}
		if dot >= 0 {
			words[b/64] |= 1 << (b % 64)
		}
	}
	return words
}

// Hamming reports the bit distance between two codes.
func Hamming(a, b []uint64) int {
	if len(a) != len(b) {
		panic("cbir: Hamming on different code lengths")
	}
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// BinaryIndex is the IVF index with binary-code rerank.
type BinaryIndex struct {
	ivf   *Index
	enc   *BinaryEncoder
	codes [][]uint64
}

// BuildBinaryIndex clusters the database and encodes every vector.
func BuildBinaryIndex(vectors *kernels.Matrix, m, kmeansIters int, seed int64, bitsN int) (*BinaryIndex, error) {
	ivf, err := BuildIndex(vectors, m, kmeansIters, seed)
	if err != nil {
		return nil, err
	}
	enc, err := NewBinaryEncoder(bitsN, vectors.Cols, seed+100)
	if err != nil {
		return nil, err
	}
	codes := make([][]uint64, vectors.Rows)
	for i := 0; i < vectors.Rows; i++ {
		codes[i] = enc.Encode(vectors.Row(i))
	}
	return &BinaryIndex{ivf: ivf, enc: enc, codes: codes}, nil
}

// Encoder exposes the encoder.
func (ix *BinaryIndex) Encoder() *BinaryEncoder { return ix.enc }

// Search runs shortlist → candidates → Hamming rerank.
func (ix *BinaryIndex) Search(queries *kernels.Matrix, p SearchParams) ([][]kernels.Neighbor, error) {
	shortlists, err := ix.ivf.Shortlist(queries, p.Probes)
	if err != nil {
		return nil, err
	}
	out := make([][]kernels.Neighbor, queries.Rows)
	for b := 0; b < queries.Rows; b++ {
		qc := ix.enc.Encode(queries.Row(b))
		cands := ix.ivf.Candidates(shortlists[b], p.Candidates)
		sel := kernels.NewTopK(p.K)
		for _, id := range cands {
			sel.Offer(id, float32(Hamming(qc, ix.codes[id])))
		}
		out[b] = sel.Results()
	}
	return out, nil
}

// RecallAtK evaluates against exhaustive search on the original vectors.
func (ix *BinaryIndex) RecallAtK(queries *kernels.Matrix, p SearchParams) (float64, error) {
	found, err := ix.Search(queries, p)
	if err != nil {
		return 0, err
	}
	var sum float64
	for b := 0; b < queries.Rows; b++ {
		truth := kernels.BruteForceKNN(ix.ivf.Vectors, queries.Row(b), p.K)
		sum += kernels.RecallAtK(found[b], truth)
	}
	return sum / float64(queries.Rows), nil
}
