package experiments

import (
	"repro/internal/accel"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/workload"
)

// Fig8Result is the energy breakdown of the on-chip-only CBIR pipeline:
// the left chart (component × stage stacking) and the right chart (per
// stage compute vs data movement shares).
type Fig8Result struct {
	Run *RunResult
	// ComponentStage[c][stage] is joules per batch.
	ComponentStage map[energy.Component]map[string]float64
	// StageCompute/StageMovement are each stage's share of total energy.
	StageCompute  map[string]float64
	StageMovement map[string]float64
	TotalJ        float64
	MovementShare float64
}

// fig8Specs is the experiment's run matrix: one on-chip-only pipeline run.
func fig8Specs(m workload.Model) []RunSpec {
	return []RunSpec{PipelineSpec("fig8 onchip", m, SingleLevel(accel.OnChip), 1, 1)}
}

// fig8Reduce derives the energy distribution from the completed run.
func fig8Reduce(run *RunResult) *Fig8Result {
	meter := run.Sys.Meter()
	res := &Fig8Result{
		Run:            run,
		ComponentStage: make(map[energy.Component]map[string]float64),
		StageCompute:   make(map[string]float64),
		StageMovement:  make(map[string]float64),
	}
	res.TotalJ = meter.Total() - meter.Stage("Setup")
	for _, c := range energy.Components() {
		res.ComponentStage[c] = make(map[string]float64)
		for _, st := range Stages() {
			res.ComponentStage[c][st] = meter.ComponentStage(c, st)
		}
	}
	for _, st := range Stages() {
		res.StageCompute[st] = meter.StageKind(st, energy.Compute) / res.TotalJ
		res.StageMovement[st] = meter.StageKind(st, energy.Movement) / res.TotalJ
	}
	var movement float64
	for _, st := range Stages() {
		movement += meter.StageKind(st, energy.Movement)
	}
	res.MovementShare = movement / res.TotalJ
	return res
}

// Fig8 runs the end-to-end CBIR pipeline on the on-chip accelerator only
// and reports the energy distribution (paper: ~79 % movement; rerank
// movement ~52 % of total).
func Fig8(m workload.Model, opts ...Option) (*Fig8Result, error) {
	runs, err := RunSpecs(fig8Specs(m), opts...)
	if err != nil {
		return nil, err
	}
	return fig8Reduce(runs[0]), nil
}

// Table renders the Fig. 8 breakdown.
func (r *Fig8Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Fig 8 — energy breakdown, on-chip-only CBIR (J per batch)",
		Columns: []string{"Component", StageFE, StageSL, StageRR, "Total"},
	}
	for _, c := range energy.Components() {
		row := []string{c.String()}
		var sum float64
		for _, st := range Stages() {
			v := r.ComponentStage[c][st]
			sum += v
			row = append(row, report.F(v, 2))
		}
		row = append(row, report.F(sum, 2))
		t.AddRow(row...)
	}
	t.AddNote("total %.1f J/batch; data movement share %s (paper: ~79%%)",
		r.TotalJ, report.Pct(r.MovementShare))
	for _, st := range Stages() {
		t.AddNote("%s: compute %s, movement %s of total (paper rerank movement: ~52%%)",
			st, report.Pct(r.StageCompute[st]), report.Pct(r.StageMovement[st]))
	}
	return t
}
