package cluster

import (
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/sim"
)

// Straggler attribution: every scatter-gather merge is completed by
// exactly one shard response — the last of the quorum to arrive. That
// leg is the query's critical shard, and its internal breakdown (queue
// wait at the replica's GAM, device execution, wire time) says *why* the
// query's tail looked the way it did. Records are written in the
// front-end domain at merge time in merge order, so the report is
// byte-identical at any -pj.

// Straggler cause tags — where the critical leg's time dominated.
const (
	// CauseQueue: the leg mostly waited in the replica's GAM scheduling
	// queues (the saturated-hot-shard signature).
	CauseQueue = "queue"
	// CauseExec: the leg mostly executed on the replica's accelerators
	// (the work-skew signature).
	CauseExec = "exec"
	// CauseWire: the leg mostly sat on the network — scatter out plus
	// gather back (the fabric-bound signature).
	CauseWire = "wire"
)

// StragglerRecord is one merged query's critical-leg attribution.
type StragglerRecord struct {
	Query   int
	Content int
	// Shard/Node identify the critical leg: the shard whose response
	// completed the merge and the replica node that served it.
	Shard int
	Node  int
	// Front is the home-node leg (arrival to feature fan-out) — context,
	// not part of the critical shard leg.
	Front sim.Time
	// Queue/Exec/Wire decompose the critical leg along the replica job's
	// critical path (core.Job.CriticalPath): scheduling-queue wait, device
	// execution, and wire time — scatter delivery, gather return, and the
	// job's internal inter-task DMAs.
	Queue sim.Time
	Exec  sim.Time
	Wire  sim.Time
	// Latency is the query's end-to-end arrival-to-merge time.
	Latency sim.Time
}

// Cause reports the dominant component of the critical leg, with the
// deterministic tie order queue > exec > wire.
func (r StragglerRecord) Cause() string {
	switch {
	case r.Queue >= r.Exec && r.Queue >= r.Wire:
		return CauseQueue
	case r.Exec >= r.Wire:
		return CauseExec
	default:
		return CauseWire
	}
}

// recordStraggler captures the merging response's leg breakdown. Runs in
// the front-end domain at merge time; every timing slot it reads was
// written by the leg's own domain before the synchronizing delivery.
func (c *Cluster) recordStraggler(q *query, shard int, now sim.Time) {
	node := q.replica[shard]
	c.stragglers = append(c.stragglers, StragglerRecord{
		Query:   q.id,
		Content: q.content,
		Shard:   shard,
		Node:    node,
		Front:   q.feEnd - q.arrival,
		Queue:   q.shardQueue[shard],
		Exec:    q.shardExec[shard],
		Wire: (q.shardExecStart[shard] - q.feEnd) + (now - q.shardExecEnd[shard]) +
			q.shardXfer[shard],
		Latency: now - q.arrival,
	})
}

// tailThreshold is the nearest-rank q-quantile of the records' latencies
// (the same convention as the qtrace sketch), so "the p999 tail" means
// every record at or above it.
func tailThreshold(recs []StragglerRecord, q float64) sim.Time {
	lats := make([]sim.Time, len(recs))
	for i, r := range recs {
		lats[i] = r.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := int(float64(len(lats))*q+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(lats) {
		rank = len(lats) - 1
	}
	return lats[rank]
}

// legKey aggregates records by critical (shard, node).
type legKey struct{ shard, node int }

// legAgg is one leg's aggregate over a record subset.
type legAgg struct {
	count             int
	queue, exec, wire sim.Time
	causes            map[string]int
}

// aggregate folds records into per-leg aggregates plus the subset's
// dominant cause.
func aggregate(recs []StragglerRecord) (map[legKey]*legAgg, []legKey, string) {
	aggs := map[legKey]*legAgg{}
	var keys []legKey
	causes := map[string]int{}
	for _, r := range recs {
		k := legKey{r.Shard, r.Node}
		a := aggs[k]
		if a == nil {
			a = &legAgg{causes: map[string]int{}}
			aggs[k] = a
			keys = append(keys, k)
		}
		a.count++
		a.queue += r.Queue
		a.exec += r.Exec
		a.wire += r.Wire
		a.causes[r.Cause()]++
		causes[r.Cause()]++
	}
	sort.Slice(keys, func(i, j int) bool {
		if aggs[keys[i]].count != aggs[keys[j]].count {
			return aggs[keys[i]].count > aggs[keys[j]].count
		}
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].node < keys[j].node
	})
	return aggs, keys, dominantCause(causes)
}

// dominantCause picks the most frequent cause with the fixed queue >
// exec > wire tie order.
func dominantCause(causes map[string]int) string {
	best, n := "", -1
	for _, c := range []string{CauseQueue, CauseExec, CauseWire} {
		if causes[c] > n {
			best, n = c, causes[c]
		}
	}
	return best
}

// DominantCause reports the most frequent critical-leg cause across recs
// (queue > exec > wire tie order), "" for an empty set — the one-word
// verdict a flight-recorder bundle attaches to its windowed stragglers.
func DominantCause(recs []StragglerRecord) string {
	if len(recs) == 0 {
		return ""
	}
	_, _, cause := aggregate(recs)
	return cause
}

// tailLine formats one tail subset as a footnote: threshold, population,
// the leg most often critical in it, and the subset's dominant cause.
func tailLine(label string, recs []StragglerRecord, thresh sim.Time) string {
	var tail []StragglerRecord
	for _, r := range recs {
		if r.Latency >= thresh {
			tail = append(tail, r)
		}
	}
	aggs, keys, cause := aggregate(tail)
	top := keys[0]
	return fmt.Sprintf("%s tail (latency ≥ %.3f ms, %d queries): shard%d@node%d critical in %d/%d, dominant cause %s",
		label, thresh.Milliseconds(), len(tail), top.shard, top.node, aggs[top].count, len(tail), cause)
}

// StragglerTable reduces the run's records to the slowest-shard
// attribution report: one row per critical (shard, node) leg with its
// merge share and mean breakdown, plus p99/p999 tail footnotes naming
// the leg and cause behind the tail. Returns nil when no scattered
// query merged (e.g. a run served entirely from the cache).
func StragglerTable(recs []StragglerRecord) *report.Table {
	if len(recs) == 0 {
		return nil
	}
	t := &report.Table{
		Title: "Straggler attribution — critical shard per merge (which leg completed the quorum, and why it was last)",
		Columns: []string{
			"critical leg", "merges", "share %", "dominant cause",
			"mean queue ms", "mean exec ms", "mean wire ms",
		},
	}
	aggs, keys, overall := aggregate(recs)
	for _, k := range keys {
		a := aggs[k]
		n := float64(a.count)
		t.AddRow(
			fmt.Sprintf("shard%d@node%d", k.shard, k.node),
			fmt.Sprintf("%d", a.count),
			report.F(100*n/float64(len(recs)), 1),
			dominantCause(a.causes),
			report.F(a.queue.Milliseconds()/n, 3),
			report.F(a.exec.Milliseconds()/n, 3),
			report.F(a.wire.Milliseconds()/n, 3),
		)
	}
	t.AddNote("%d scattered merges; overall dominant cause %s", len(recs), overall)
	t.AddNote("%s", tailLine("p99", recs, tailThreshold(recs, 0.99)))
	t.AddNote("%s", tailLine("p999", recs, tailThreshold(recs, 0.999)))
	return t
}
