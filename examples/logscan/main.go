// logscan deploys a different application on the same ReACH hierarchy: a
// grep-style scan-and-filter over a large log store — the "streaming-like,
// IO-intensive, simple task" class the paper identifies as the natural
// near-storage workload (§II-C). It registers a custom SCAN accelerator
// template through the public API and compares running the scan on the
// on-chip accelerator (logs hauled across the host IO interface) against
// near-storage instances (scan pushed to the SSDs, only matches move).
//
//	go run ./examples/logscan
package main

import (
	"fmt"
	"log"

	"repro/reach"
)

const (
	logStoreBytes = 512e9 // 512 GB of logs across the array
	matchBytes    = 64e6  // ~0.01% selectivity: 64 MB of matches
)

func main() {
	fmt.Println("log-scan on ReACH: on-chip vs near-storage filtering")
	fmt.Printf("log store: %.0f GB on 4 SSDs; matches: %.0f MB (reduction %.0fx)\n\n",
		logStoreBytes/1e9, matchBytes/1e6, logStoreBytes/matchBytes)

	onchip, err := run(reach.OnChip)
	if err != nil {
		log.Fatal(err)
	}
	nearstor, err := run(reach.NearStor)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %14s %14s\n", "deployment", "scan time (s)", "energy (J)")
	fmt.Printf("%-14s %14.2f %14.1f\n", "on-chip", onchip.seconds, onchip.energy)
	fmt.Printf("%-14s %14.2f %14.1f\n", "near-storage", nearstor.seconds, nearstor.energy)
	fmt.Printf("\nnear-storage speedup: %.1fx, energy reduction: %.0f%%\n",
		onchip.seconds/nearstor.seconds,
		(1-nearstor.energy/onchip.energy)*100)
}

type result struct {
	seconds float64
	energy  float64
}

func run(level reach.Level) (*result, error) {
	sys, err := reach.NewSystem(reach.WithInstances(1, 0, 4))
	if err != nil {
		return nil, err
	}

	// A custom scan kernel: trivially small datapath, pure streaming —
	// registered once per device class (§III-A's template story).
	if err := sys.RegisterTemplate(reach.TemplateSpec{
		Name: "SCAN-VU9P", FreqMHz: 250, PowerW: 6,
		FF: 4, LUT: 5, DSP: 1, BRAM: 8,
		MACsPerCycle: 8, StreamBytesPerCycle: 64, II: 1, Depth: 16,
	}); err != nil {
		return nil, err
	}
	if err := sys.RegisterTemplate(reach.TemplateSpec{
		Name: "SCAN-ZCU9", Embedded: true, FreqMHz: 180, PowerW: 2.2,
		FF: 8, LUT: 10, DSP: 2, BRAM: 12,
		MACsPerCycle: 4, StreamBytesPerCycle: 96, II: 1, Depth: 12,
	}); err != nil {
		return nil, err
	}

	matches, err := sys.CreateStream("Matches", level, reach.CPU, reach.Collect, matchBytes, 2)
	if err != nil {
		return nil, err
	}

	var accs []*reach.ACC
	instances := 1
	template := "SCAN-VU9P"
	if level == reach.NearStor {
		instances = 4
		template = "SCAN-ZCU9"
	}
	for i := 0; i < instances; i++ {
		var acc *reach.ACC
		if level == reach.NearStor {
			acc, err = sys.RegisterAcc(template, reach.NearStor)
			if err != nil {
				return nil, err
			}
			shard, err := sys.CreateFixedBufferAt(fmt.Sprintf("logs%d", i), reach.NearStor,
				int64(logStoreBytes)/int64(instances), i)
			if err != nil {
				return nil, err
			}
			if err := acc.SetArg(0, shard); err != nil {
				return nil, err
			}
		} else {
			acc, err = sys.RegisterAcc(template, reach.OnChip)
			if err != nil {
				return nil, err
			}
		}
		if err := acc.SetOutput(1, matches); err != nil {
			return nil, err
		}
		acc.SetWork(reach.Work{
			Stage:       "LogScan",
			MACs:        logStoreBytes / 64 / float64(instances), // one comparison per word
			StreamBytes: int64(logStoreBytes) / int64(instances),
			FromStorage: true, // the log store lives on the SSDs everywhere
			OutputBytes: int64(matchBytes) / int64(instances),
		})
		accs = append(accs, acc)
	}

	if err := sys.Deploy(); err != nil {
		return nil, err
	}
	j, err := sys.Begin()
	if err != nil {
		return nil, err
	}
	for _, acc := range accs {
		if err := j.Execute(acc); err != nil {
			return nil, err
		}
	}
	if err := j.Collect(matches); err != nil {
		return nil, err
	}
	if err := j.Commit(); err != nil {
		return nil, err
	}
	sys.Run()
	return &result{seconds: j.Latency().Seconds(), energy: sys.TotalEnergy()}, nil
}
