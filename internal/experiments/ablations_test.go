package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestAblationGAM(t *testing.T) {
	r, err := AblationGAM(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	base := r.Cells[0]
	byName := map[string]*GAMAblationCell{}
	for _, c := range r.Cells {
		byName[c.Variant.Name] = c
	}
	// Disabling cross-job pipelining must cost throughput (§II-D: "reduces
	// idle time and improves the pipeline efficiency").
	noPipe := byName["no cross-job pipelining"]
	if noPipe.Throughput >= base.Throughput*0.95 {
		t.Errorf("no-pipelining throughput %.2f not clearly below baseline %.2f",
			noPipe.Throughput, base.Throughput)
	}
	// Looser polling slack means the GAM observes completions later.
	tight := byName["tight polling (1% slack)"]
	loose := byName["loose polling (100% slack)"]
	if tight.MeanDetectLag >= loose.MeanDetectLag {
		t.Errorf("tight slack detect lag (%v) not below loose slack (%v)",
			tight.MeanDetectLag, loose.MeanDetectLag)
	}
	// ...and looser polling must not beat the baseline on latency.
	if loose.Latency < base.Latency {
		t.Errorf("loose polling latency %v beat baseline %v", loose.Latency, base.Latency)
	}
	if err := r.Table().Render(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}

func TestAblationMappingFindsReACH(t *testing.T) {
	r, err := AblationMapping(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 27 {
		t.Fatalf("evaluated %d mappings, want 27", len(r.Cells))
	}
	// The quantitative version of §IV-B: the paper's mapping wins the
	// throughput ranking.
	best := r.Best()
	if best.Mapping != ReACHMapping() {
		t.Errorf("best mapping is %s, want the ReACH mapping", best.Name())
	}
	// And it beats each single-level option decisively.
	reach := r.Find(ReACHMapping())
	for _, l := range []Mapping{SingleLevel(best.Mapping.FE), SingleLevel(best.Mapping.SL), SingleLevel(best.Mapping.RR)} {
		c := r.Find(l)
		if c == nil {
			t.Fatalf("mapping %v missing", l)
		}
		if c.Throughput >= reach.Throughput {
			t.Errorf("single-level %s throughput %.2f >= ReACH %.2f",
				c.Name(), c.Throughput, reach.Throughput)
		}
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "FE:OnChip SL:NearMem RR:NearStor") {
		t.Error("table does not show the ReACH mapping")
	}
}

func TestAblationNSBuffer(t *testing.T) {
	r, err := AblationNSBuffer(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 5 {
		t.Fatalf("%d cells, want 5", len(r.Cells))
	}
	// Monotone: lower hit ratio → no faster, strictly more SSD energy at
	// the extremes.
	for i := 1; i < len(r.Cells); i++ {
		if r.Cells[i].Runtime < r.Cells[i-1].Runtime {
			t.Errorf("hit %.2f runtime %v faster than hit %.2f (%v)",
				r.Cells[i].HitRatio, r.Cells[i].Runtime,
				r.Cells[i-1].HitRatio, r.Cells[i-1].Runtime)
		}
	}
	full, none := r.Cells[0], r.Cells[len(r.Cells)-1]
	if none.SSDJ <= full.SSDJ {
		t.Errorf("no-buffer SSD energy (%v) not above full-buffer (%v)", none.SSDJ, full.SSDJ)
	}
	if none.Runtime <= full.Runtime {
		t.Errorf("no-buffer runtime (%v) not above full-buffer (%v)", none.Runtime, full.Runtime)
	}
	if err := r.Table().Render(&strings.Builder{}); err != nil {
		t.Error(err)
	}
}
