package core

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestStreamPassDisabledZeroAlloc: with spans disabled (the default), the
// GAM's stream-pass hook is just the original put/get pair — zero
// allocations, zero observer effect.
func TestStreamPassDisabledZeroAlloc(t *testing.T) {
	s, err := NewSystem(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	g := s.GAM()
	if g.SpanLog() != nil {
		t.Fatal("span log attached by default")
	}
	buf := sim.NewTokenQueue(s.Engine(), "test.stream", 4)
	j := NewJob(0)
	n := &TaskNode{job: j}
	sink := func(any) {}
	allocs := testing.AllocsPerRun(200, func() { g.streamPass(buf, n, sink) })
	if allocs > 0 {
		t.Fatalf("streamPass with spans disabled allocates %.1f/op, want 0", allocs)
	}
}

// TestSpanHooksRecordCauses: an instrumented run records dispatch spans
// with real cause tags and poll gaps for non-coherent levels.
func TestSpanHooksRecordCauses(t *testing.T) {
	s, err := NewSystem(config.Default().WithInstances(0, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	log := metrics.NewSpanLog()
	s.GAM().SetSpanLog(log)

	kernel, err := s.Registry().Lookup("GEMM-ZCU9")
	if err != nil {
		t.Fatal(err)
	}
	j := NewJob(1)
	// Three tasks onto two instances: the third must wait for an idle
	// instance, so at least one dispatch span carries no-idle-instance.
	for i := 0; i < 3; i++ {
		j.AddTask(accel.Task{
			Name: fmt.Sprintf("t%d", i), Stage: "SL", Kernel: kernel,
			MACs: 1e6, Bytes: 1 << 24, Source: accel.SourceLocalDIMM,
		}, accel.NearMemory)
	}
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	s.Run()

	var dispatches, pollGaps int
	causes := map[string]bool{}
	for _, sp := range log.Spans() {
		switch sp.Cat {
		case metrics.CatDispatch:
			dispatches++
			causes[sp.Cause] = true
			if sp.End < sp.Start {
				t.Errorf("span %v ends before it starts", sp)
			}
		case metrics.CatPollGap:
			pollGaps++
			if sp.V <= 0 {
				t.Errorf("poll-gap span without polls: %v", sp)
			}
		}
	}
	if dispatches != 3 {
		t.Errorf("dispatch spans = %d, want 3", dispatches)
	}
	if !causes[metrics.CauseNoIdleInstance] {
		t.Errorf("no no-idle-instance cause among %v", causes)
	}
	if pollGaps == 0 {
		t.Error("no poll-gap spans for a non-coherent level")
	}
}
