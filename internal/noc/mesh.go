package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Mesh is a 2-D mesh interconnect with dimension-ordered (XY) routing —
// the topology class of large accelerator-rich SoCs like the ones PARADE
// models, provided as an alternative to the Crossbar for studying how NoC
// topology affects on-chip accelerator bandwidth. Each directed link
// between neighbouring routers is a contended resource; a transfer
// occupies every link on its route in sequence, with one hop latency per
// router traversed.
type Mesh struct {
	eng        *sim.Engine
	name       string
	cols, rows int
	hopLatency sim.Time

	// links[from][to] for neighbouring router indices; each directed link
	// is a shared-layer sim.Connection registered as "<mesh>.<a>-<b>".
	links map[int]map[int]sim.Connection

	endpoints map[string]int // endpoint name → router index

	transfers  uint64
	totalBytes uint64
	totalHops  uint64
}

// NewMesh builds a cols×rows mesh whose every directed neighbour link has
// the given bandwidth.
func NewMesh(eng *sim.Engine, name string, cols, rows int, linkBytesPerSec float64, hopLatency sim.Time) *Mesh {
	if cols <= 0 || rows <= 0 {
		panic("noc: mesh needs positive dimensions")
	}
	m := &Mesh{
		eng:        eng,
		name:       name,
		cols:       cols,
		rows:       rows,
		hopLatency: hopLatency,
		links:      make(map[int]map[int]sim.Connection),
		endpoints:  make(map[string]int),
	}
	addLink := func(a, b int) {
		if m.links[a] == nil {
			m.links[a] = make(map[int]sim.Connection)
		}
		m.links[a][b] = sim.NewLink(eng, fmt.Sprintf("%s.%d-%d", name, a, b), linkBytesPerSec, 0)
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			id := y*cols + x
			if x+1 < cols {
				addLink(id, id+1)
				addLink(id+1, id)
			}
			if y+1 < rows {
				addLink(id, id+cols)
				addLink(id+cols, id)
			}
		}
	}
	return m
}

// Size reports the mesh dimensions.
func (m *Mesh) Size() (cols, rows int) { return m.cols, m.rows }

// Attach binds an endpoint name to the router at (x, y).
func (m *Mesh) Attach(name string, x, y int) error {
	if x < 0 || x >= m.cols || y < 0 || y >= m.rows {
		return fmt.Errorf("noc: (%d,%d) outside %dx%d mesh", x, y, m.cols, m.rows)
	}
	if _, dup := m.endpoints[name]; dup {
		return fmt.Errorf("noc: endpoint %q already attached", name)
	}
	m.endpoints[name] = y*m.cols + x
	return nil
}

// route returns the XY route between two router indices (exclusive of
// src, inclusive of dst).
func (m *Mesh) route(src, dst int) []int {
	var path []int
	x, y := src%m.cols, src/m.cols
	dx, dy := dst%m.cols, dst/m.cols
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, y*m.cols+x)
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, y*m.cols+x)
	}
	return path
}

// Hops reports the XY hop count between two endpoints.
func (m *Mesh) Hops(src, dst string) (int, error) {
	s, ok := m.endpoints[src]
	if !ok {
		return 0, fmt.Errorf("noc: unknown endpoint %q", src)
	}
	d, ok := m.endpoints[dst]
	if !ok {
		return 0, fmt.Errorf("noc: unknown endpoint %q", dst)
	}
	return len(m.route(s, d)), nil
}

// Transfer moves n bytes between endpoints over the XY route and returns
// the completion time: the payload is pipelined hop by hop, so the
// occupancy is paid on every link (wormhole-style), with total latency of
// route-length hops plus the serialisation on the most-contended link.
func (m *Mesh) Transfer(src, dst string, n int64) (sim.Time, error) {
	s, ok := m.endpoints[src]
	if !ok {
		return 0, fmt.Errorf("noc: unknown endpoint %q", src)
	}
	d, ok := m.endpoints[dst]
	if !ok {
		return 0, fmt.Errorf("noc: unknown endpoint %q", dst)
	}
	if s == d {
		return m.eng.Now() + m.hopLatency, nil
	}
	path := m.route(s, d)
	var done sim.Time
	prev := s
	for _, next := range path {
		l := m.links[prev][next]
		if t := l.Transfer(n); t > done {
			done = t
		}
		prev = next
	}
	if n > 0 {
		m.transfers++
		m.totalBytes += uint64(n)
		m.totalHops += uint64(len(path))
	}
	return done + sim.Time(len(path))*m.hopLatency, nil
}

// TotalBytes reports payload moved.
func (m *Mesh) TotalBytes() uint64 { return m.totalBytes }

// MeanHops reports the average route length of transfers so far.
func (m *Mesh) MeanHops() float64 {
	if m.transfers == 0 {
		return 0
	}
	return float64(m.totalHops) / float64(m.transfers)
}

// LinkUtilization reports the utilisation of the directed link between
// neighbouring routers (a,b)→ returns 0 for non-neighbours.
func (m *Mesh) LinkUtilization(ax, ay, bx, by int) float64 {
	a, b := ay*m.cols+ax, by*m.cols+bx
	if m.links[a] == nil || m.links[a][b] == nil {
		return 0
	}
	return m.links[a][b].ResourceStats().Utilization
}
