package accel

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Source identifies where a task's streamed input resides before the task
// runs — the data placement that determines which links the transfer
// crosses and therefore where the energy goes.
type Source int

const (
	// SourceSPM: data resident in the accelerator's on-fabric scratchpad
	// (e.g. the compressed CNN parameters in on-chip SRAM). No movement.
	SourceSPM Source = iota
	// SourceHostDRAM: data in the host-side DIMMs (cacheline interleaved).
	SourceHostDRAM
	// SourceLocalDIMM: data in a near-memory accelerator's attached DIMM.
	SourceLocalDIMM
	// SourceRemoteDIMM: data in sibling AIM DIMMs, fetched via the AIMbus.
	SourceRemoteDIMM
	// SourceSSD: data on the SSD array.
	SourceSSD
	// SourceDeviceDRAM: data in a near-storage accelerator's private
	// buffer (cached parameters, §II-C).
	SourceDeviceDRAM
)

func (s Source) String() string {
	switch s {
	case SourceSPM:
		return "spm"
	case SourceHostDRAM:
		return "host-dram"
	case SourceLocalDIMM:
		return "local-dimm"
	case SourceRemoteDIMM:
		return "remote-dimm"
	case SourceSSD:
		return "ssd"
	case SourceDeviceDRAM:
		return "device-dram"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// Task is one accelerator work item as GAM dispatches it: a kernel, a work
// volume, and the placement of its streamed input.
type Task struct {
	Name  string
	Stage string // energy-attribution label (pipeline stage)

	Kernel *fpga.Template
	// MACs is the task's arithmetic volume.
	MACs float64
	// Bytes is the input volume streamed from Source.
	Bytes int64
	// Source is where the streamed input lives.
	Source Source
	// Pattern distinguishes sequential streams from page gathers when the
	// source is storage.
	Pattern storage.AccessPattern
	// RemoteFraction is, for near-memory tasks, the fraction of Bytes on
	// sibling DIMMs (crossing the AIMbus). Zero for fully local data.
	RemoteFraction float64
	// OutputBytes is the result volume written back to the level-local
	// medium (results to streams are moved separately by GAM).
	OutputBytes int64
}

// Validate checks the task is self-consistent.
func (t *Task) Validate() error {
	switch {
	case t.Kernel == nil:
		return fmt.Errorf("accel: task %s has no kernel", t.Name)
	case t.MACs < 0 || t.Bytes < 0 || t.OutputBytes < 0:
		return fmt.Errorf("accel: task %s has negative work", t.Name)
	case t.RemoteFraction < 0 || t.RemoteFraction > 1:
		return fmt.Errorf("accel: task %s remote fraction %v out of range", t.Name, t.RemoteFraction)
	}
	return nil
}

// Accelerator is the interface GAM drives. Execute starts the task as soon
// as the device is free, reserves the data-path resources, charges energy
// and returns the completion time. Estimate returns the synthesis-report
// runtime estimate GAM stores in its progress table (kernel time only —
// it deliberately ignores data-path contention, which is why GAM's status
// polling exists).
type Accelerator interface {
	Name() string
	Level() Level
	Fabric() *fpga.Fabric
	Execute(t *Task) (sim.Time, error)
	Estimate(t *Task) sim.Time
	BusyUntil() sim.Time
}

// estimate is the shared Estimate implementation.
func estimate(t *Task) sim.Time {
	return t.Kernel.Duration(t.MACs, t.Bytes)
}
