package cluster

import (
	"sync/atomic"

	"repro/internal/sim"
)

// This file is the cluster's front-end caching layer: a deterministic LRU
// result cache with sim-time TTL freshness, keyed by content, plus the
// in-flight coalescing (singleflight) table that collapses concurrent
// queries for the same content onto one scatter. Both structures live in
// the front-end domain and are consulted only from front-end events in
// arrival order, so their state — and therefore the simulation output —
// is byte-identical at any -j / -pj (see DESIGN.md §4h).
//
// Everything on the query hot path is pooled or preallocated: the LRU is
// an intrusive list over a fixed slot array, pending-scatter entries and
// their waiter slices recycle through a free list, and a hit allocates
// nothing beyond its qtrace interval.

// feCache is the front-end result cache. Counters are atomics so the live
// inspector can read them from the HTTP goroutine while the front-end
// domain mutates the cache; structural state (slots, index, LRU list) is
// touched only by the front-end domain.
type feCache struct {
	registered string
	capacity   int
	ttl        sim.Time

	slots      []cacheSlot
	index      map[int]int32 // content → slot
	head, tail int32         // MRU … LRU; -1 when empty
	free       []int32
	maxOcc     int

	hits      atomic.Uint64
	misses    atomic.Uint64
	expired   atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	ageSum    atomic.Int64 // sum of entry ages at hit time, in sim ticks
}

// cacheSlot is one resident entry on the intrusive LRU list.
type cacheSlot struct {
	content    int
	filledAt   sim.Time
	prev, next int32
}

// newFECache builds a cache of `capacity` entries with freshness window
// ttl. capacity must be >= 1 (a zero-capacity configuration disables the
// cache at the Cluster layer instead of building one).
func newFECache(capacity int, ttl sim.Time) *feCache {
	c := &feCache{
		capacity: capacity,
		ttl:      ttl,
		slots:    make([]cacheSlot, capacity),
		index:    make(map[int]int32, capacity),
		head:     -1,
		tail:     -1,
		free:     make([]int32, 0, capacity),
	}
	for i := capacity - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	return c
}

// lookup consults the cache for content at simulated time now and counts
// the outcome. A resident entry whose age has reached the TTL is expired —
// removed and reported as a miss (the exact boundary age == ttl is stale).
// On a hit the entry moves to the MRU position and its age at serve time
// feeds the stale-serve accounting.
func (c *feCache) lookup(content int, now sim.Time) (hit bool, age sim.Time) {
	s, ok := c.index[content]
	if !ok {
		c.misses.Add(1)
		return false, 0
	}
	age = now - c.slots[s].filledAt
	if age >= c.ttl {
		c.remove(s)
		delete(c.index, content)
		c.free = append(c.free, s)
		c.expired.Add(1)
		return false, 0
	}
	c.remove(s)
	c.pushFront(s)
	c.hits.Add(1)
	c.ageSum.Add(int64(age))
	return true, age
}

// fill inserts (or refreshes) content's result at simulated time now,
// evicting the LRU entry when the cache is full.
func (c *feCache) fill(content int, now sim.Time) {
	if s, ok := c.index[content]; ok {
		c.slots[s].filledAt = now
		c.remove(s)
		c.pushFront(s)
		return
	}
	var s int32
	if n := len(c.free); n > 0 {
		s = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		s = c.tail
		delete(c.index, c.slots[s].content)
		c.remove(s)
		c.evictions.Add(1)
	}
	c.slots[s] = cacheSlot{content: content, filledAt: now}
	c.pushFront(s)
	c.index[content] = s
	if occ := len(c.index); occ > c.maxOcc {
		c.maxOcc = occ
	}
}

// remove unlinks slot s from the LRU list.
func (c *feCache) remove(s int32) {
	sl := &c.slots[s]
	if sl.prev >= 0 {
		c.slots[sl.prev].next = sl.next
	} else {
		c.head = sl.next
	}
	if sl.next >= 0 {
		c.slots[sl.next].prev = sl.prev
	} else {
		c.tail = sl.prev
	}
}

// pushFront links slot s at the MRU position.
func (c *feCache) pushFront(s int32) {
	sl := &c.slots[s]
	sl.prev, sl.next = -1, c.head
	if c.head >= 0 {
		c.slots[c.head].prev = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}

// Name implements sim.Resource.
func (c *feCache) Name() string { return c.registered }

// ResourceStats implements sim.Resource: lookups as Ops, misses plus
// expirations as Stalls, resident entries as Occupancy and the hit rate as
// Utilization. Call after the run drains — Occupancy reads the front-end
// domain's structural state.
func (c *feCache) ResourceStats() sim.ResourceStats {
	st := c.stats()
	rs := sim.ResourceStats{
		Kind:         sim.KindCache,
		Ops:          st.Lookups,
		Stalls:       st.Misses + st.Expired,
		Occupancy:    len(c.index),
		MaxOccupancy: c.maxOcc,
		Utilization:  st.HitRate,
	}
	return rs
}

// stats snapshots the counters (safe to call concurrently with the run).
func (c *feCache) stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Expired:   c.expired.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	st.Lookups = st.Hits + st.Misses + st.Expired
	if st.Lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(st.Lookups)
	}
	if st.Hits > 0 {
		st.MeanServeAge = sim.Time(c.ageSum.Load() / int64(st.Hits))
	}
	return st
}

// CacheStats is the front-end cache and coalescing accounting of one
// cluster run. Every arriving query performs exactly one lookup, so
// Lookups = Hits + Misses + Expired; Coalesced counts the subset of the
// missing/expired queries that attached to an in-flight scatter instead of
// starting their own, so the backend saw Lookups − Hits − Coalesced
// scatters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Expired   uint64
	Coalesced uint64
	Evictions uint64
	Lookups   uint64
	// HitRate is Hits over Lookups, in [0, 1].
	HitRate float64
	// MeanServeAge is the mean age of cached results at hit time — the
	// freshness (staleness) actually served to users.
	MeanServeAge sim.Time
}

// pending is one in-flight scatter other queries may coalesce onto.
type pending struct {
	lead    int
	waiters []int
}

// coalescer is the front-end's singleflight table: content → the one
// in-flight scatter for it. Entries and waiter slices recycle through a
// free list, so steady-state coalescing allocates nothing.
type coalescer struct {
	table map[int]*pending
	pool  []*pending
	peak  int
}

func newCoalescer() *coalescer {
	return &coalescer{table: make(map[int]*pending)}
}

// begin records query lead's scatter for content as the one in flight.
func (co *coalescer) begin(content, lead int) {
	var p *pending
	if n := len(co.pool); n > 0 {
		p = co.pool[n-1]
		co.pool = co.pool[:n-1]
		p.waiters = p.waiters[:0]
	} else {
		p = &pending{}
	}
	p.lead = lead
	co.table[content] = p
	if n := len(co.table); n > co.peak {
		co.peak = n
	}
}

// attach joins query qid to content's in-flight scatter, reporting whether
// one existed.
func (co *coalescer) attach(content, qid int) bool {
	p, ok := co.table[content]
	if !ok {
		return false
	}
	p.waiters = append(p.waiters, qid)
	return true
}

// finish removes and returns content's in-flight entry (nil when absent).
// The caller drains p.waiters and then returns the entry via release.
func (co *coalescer) finish(content int) *pending {
	p, ok := co.table[content]
	if !ok {
		return nil
	}
	delete(co.table, content)
	return p
}

// release recycles a finished entry.
func (co *coalescer) release(p *pending) { co.pool = append(co.pool, p) }

// PeakPending reports the deepest the singleflight table ever got — how
// many distinct contents had scatters in flight at once.
func (co *coalescer) PeakPending() int { return co.peak }
