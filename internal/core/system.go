// Package core implements the paper's primary contribution: the ReACH
// system assembly and its hardware Global Accelerator Manager (GAM,
// §II-D). The GAM receives job requests from the host, breaks them into
// task groups, dispatches tasks to idle accelerators at their mapped
// compute level, tracks progress with estimated-wait status polling (the
// Fig. 5 micro-architecture), initiates the inter-level DMA transfers
// between dependent tasks, and pipelines tasks of consecutive jobs when no
// dependency exists — which is what turns the three-stage CBIR pipeline
// into a throughput machine bounded by its slowest stage.
package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/fpga"
	"repro/internal/sim"
)

// System is one simulated ReACH server: the platform hardware, the
// accelerator instances of each level, and the GAM. A System built with
// NewSystem owns its engine (the single-server experiments); one built
// with NewNode is a composable node sharing an engine with its siblings,
// its resources registered under a node prefix.
type System struct {
	eng      *sim.Engine
	cfg      config.SystemConfig
	prefix   string
	meter    *energy.Meter
	plat     *accel.Platform
	registry *fpga.Registry

	onChip   []*accel.OnChipAccel
	nearMem  []*accel.NearMemAccel
	nearStor []*accel.NearStorAccel

	// Cached interface views of the populations above, served by
	// Accelerators: the GAM consults the per-level instance list on every
	// dispatch decision, so rebuilding the slice there dominated cluster
	// allocation profiles.
	accOnChip   []accel.Accelerator
	accNearMem  []accel.Accelerator
	accNearStor []accel.Accelerator

	gam *GAM
}

// NewSystem builds a single-server system per cfg on a fresh engine,
// instantiating cfg.Instances accelerators at each level.
func NewSystem(cfg config.SystemConfig) (*System, error) {
	return NewNode(sim.NewEngine(), cfg, "")
}

// NewNode builds one ReACH server as a composable node on an event
// domain — either a standalone engine shared with other nodes (serial
// cluster) or one domain of a sim.MultiEngine (parallel cluster; the
// node's entire hardware platform then executes in that domain). Every
// resource the node constructs — memory ports, NoC links, SSD channels,
// GAM stream buffers — registers under prefix (e.g. "node0."), so N nodes
// coexist in one registry with disjoint hierarchical names. An empty
// prefix reproduces the single-server registry byte for byte.
func NewNode(eng *sim.Domain, cfg config.SystemConfig, prefix string) (*System, error) {
	meter := energy.NewMeter(energy.DefaultCosts())
	old := eng.Stats().SetPrefix(prefix)
	plat, err := accel.NewPlatform(eng, cfg, meter)
	eng.Stats().SetPrefix(old)
	if err != nil {
		return nil, err
	}
	s := &System{
		eng:      eng,
		cfg:      cfg,
		prefix:   prefix,
		meter:    meter,
		plat:     plat,
		registry: fpga.NewRegistry(),
	}
	for i := 0; i < cfg.Instances.OnChip; i++ {
		s.onChip = append(s.onChip, plat.NewOnChip())
	}
	for i := 0; i < cfg.Instances.NearMemory; i++ {
		a, err := plat.NewNearMem(i)
		if err != nil {
			return nil, err
		}
		s.nearMem = append(s.nearMem, a)
	}
	for i := 0; i < cfg.Instances.NearStorage; i++ {
		a, err := plat.NewNearStor(i)
		if err != nil {
			return nil, err
		}
		s.nearStor = append(s.nearStor, a)
	}
	for _, a := range s.onChip {
		s.accOnChip = append(s.accOnChip, a)
	}
	for _, a := range s.nearMem {
		s.accNearMem = append(s.accNearMem, a)
	}
	for _, a := range s.nearStor {
		s.accNearStor = append(s.accNearStor, a)
	}
	s.gam = newGAM(s)
	return s, nil
}

// Engine exposes the simulation engine.
func (s *System) Engine() *sim.Engine { return s.eng }

// Prefix reports the node's registry-name prefix ("" for a single-server
// system).
func (s *System) Prefix() string { return s.prefix }

// Config reports the system configuration.
func (s *System) Config() config.SystemConfig { return s.cfg }

// Meter exposes the energy meter.
func (s *System) Meter() *energy.Meter { return s.meter }

// Platform exposes the shared hardware.
func (s *System) Platform() *accel.Platform { return s.plat }

// Registry exposes the accelerator-template registry.
func (s *System) Registry() *fpga.Registry { return s.registry }

// GAM exposes the global accelerator manager.
func (s *System) GAM() *GAM { return s.gam }

// Accelerators returns the instances at one level. The slice is a cached
// view built at construction (the population is fixed after NewNode) and
// is on the GAM's per-dispatch path — callers must not mutate it.
func (s *System) Accelerators(l accel.Level) []accel.Accelerator {
	switch l {
	case accel.OnChip:
		return s.accOnChip
	case accel.NearMemory:
		return s.accNearMem
	case accel.NearStorage:
		return s.accNearStor
	default:
		return nil
	}
}

// InstanceCount reports the accelerator population at a level.
func (s *System) InstanceCount(l accel.Level) int {
	return len(s.Accelerators(l))
}

// Run drains the simulation calendar. On a shared-engine node this drains
// the whole cluster's calendar — callers owning several nodes run the
// engine once instead.
func (s *System) Run() { s.eng.Run() }

// Background charges the DRAM/SSD background energy for the elapsed
// simulated window, attributed to the given stage label. Call once per
// experiment after Run.
func (s *System) Background(stage string, window sim.Time) {
	dimms := s.cfg.Memory.HostDIMMs + s.cfg.Memory.NearMemDIMMs
	s.meter.AddBackground(stage, dimms, s.cfg.Storage.SSDs, window)
}

// gamCommandLatency is the GAM↔device command/status packet latency.
func (s *System) gamCommandLatency() sim.Time {
	return sim.FromSeconds(s.cfg.GAM.CommandLatencyNS * 1e-9)
}

func (s *System) checkLevelPopulated(l accel.Level) error {
	if s.InstanceCount(l) == 0 {
		return fmt.Errorf("core: no accelerator instances at level %v", l)
	}
	return nil
}
