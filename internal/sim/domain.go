package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file partitions the event engine for parallel execution of one
// large simulation. A Domain is an independent event engine — its own
// 4-ary calendar heap, slot pool and virtual clock — and a MultiEngine
// coordinates N domains with conservative (YAWNS-style, null-message-free)
// barrier synchronization: each round, every domain safely executes all
// events strictly before min(next event over all domains) + lookahead,
// where the lookahead is the minimum latency of any CrossLink declared at
// wiring time. Any event one domain can cause in another is at least one
// cross-link latency in the future, so events inside the window cannot be
// invalidated by a message still in flight.
//
// Determinism is the design's spine, not a hope:
//
//   - The domain decomposition is fixed by the model topology, never by
//     the worker count. Changing the number of workers changes only which
//     OS thread executes a domain's round — the rounds themselves, each
//     domain's intra-round event order, and every cross-domain delivery
//     are identical. Output is byte-identical at any parallelism.
//   - Within a round, domains are mutually independent by construction
//     (cross-domain effects ride mailboxes that are only drained at the
//     barrier), so execution order across domains cannot matter.
//   - Mailboxes are drained single-threaded between rounds in a total
//     stable order — (delivery time, source domain id, source export
//     seq) — so same-timestamp events from two different domains merge
//     into the destination calendar identically every run.
//
// Intra-domain hot paths are untouched: scheduling and dispatch inside a
// domain stay lock-free and allocation-free exactly as in the
// single-engine case. Only a cross-domain export takes a lock (the
// destination's mailbox mutex), and only the coordinator touches the
// mailboxes between rounds.

// Domain is one event-domain of a partitioned simulation. A Domain is an
// Engine — the single-domain Engine API (AtCall, ScheduleCall, handles,
// resources) is exactly the per-domain API, so model code written against
// *Engine runs unchanged inside a domain. Standalone engines made with
// NewEngine are simply single domains that were never attached to a
// MultiEngine.
type Domain = Engine

// xevent is one cross-domain event waiting in a destination mailbox.
// src/xseq make the barrier merge order total and worker-independent.
type xevent struct {
	at        Time
	src       int32
	xseq      uint64
	h         Handler
	fn        func()
	arg       uint64
	cancelled bool
}

// inbox is a domain's bounded inbound mailbox. Senders append under the
// mutex during a round; the coordinator drains it at the barrier. The
// backing array is retained between rounds, so a warmed mailbox appends
// without allocating; its effective bound is the cross-domain traffic of
// one lookahead window.
type inbox struct {
	mu      sync.Mutex
	epoch   uint64 // incremented at every drain; stale XHandles see it
	pending []xevent
}

// XHandle identifies an event exported to another domain's mailbox, for
// cancellation from the exporting domain. An exported event can only be
// cancelled until the next barrier: once the coordinator drains the
// mailbox the event is committed to the destination calendar and Cancel
// becomes a no-op (the destination domain may already be executing it in
// a parallel round — a cross-domain cancel race the conservative protocol
// deliberately refuses to arbitrate). The zero value is inert.
type XHandle struct {
	dst   *Engine
	epoch uint64
	idx   int
}

// Cancel prevents the exported event from firing if it is still in the
// destination mailbox; after the barrier that drained it, Cancel is a
// no-op. Safe to call from the exporting domain's goroutine.
func (h XHandle) Cancel() {
	d := h.dst
	if d == nil {
		return
	}
	d.inbox.mu.Lock()
	if h.epoch == d.inbox.epoch && h.idx < len(d.inbox.pending) {
		d.inbox.pending[h.idx].cancelled = true
	}
	d.inbox.mu.Unlock()
}

// Exported reports whether the event is still in the destination mailbox
// (not yet drained, not cancelled).
func (h XHandle) Exported() bool {
	d := h.dst
	if d == nil {
		return false
	}
	d.inbox.mu.Lock()
	defer d.inbox.mu.Unlock()
	return h.epoch == d.inbox.epoch && h.idx < len(d.inbox.pending) &&
		!d.inbox.pending[h.idx].cancelled
}

// DomainProgress is one domain's live position, published at barriers.
type DomainProgress struct {
	// Clock is the domain's virtual time (its last executed event).
	Clock Time
	// Pending is the domain calendar's population at the barrier.
	Pending int
	// Mailbox is the inbound mailbox depth just before the drain.
	Mailbox int
	// Executed counts events the domain has dispatched so far.
	Executed uint64
}

// MultiProgress is a consistent snapshot of a running MultiEngine, taken
// at the most recent barrier. Safe to read concurrently with the run —
// this is what the live inspector serves.
type MultiProgress struct {
	Rounds    uint64
	Lookahead Time
	Domains   []DomainProgress
}

// MultiEngine coordinates N event domains executing one simulation in
// parallel. Wire the model as usual against each Domain's Engine API,
// connect domains with CrossLinks (whose minimum latency becomes the
// synchronization lookahead), then call Run. Workers sets how many
// goroutines execute domains each round; results are byte-identical for
// any worker count, including 1 (fully serial, no goroutines).
type MultiEngine struct {
	domains   []*Engine
	stats     *StatsRegistry
	lookahead Time // min CrossLink latency; MaxTime until a link is wired
	workers   int
	rounds    uint64
	running   bool

	// round scratch, reused across rounds
	merge  []mergeEntry
	active []int32

	// parallel execution state
	bound    Time
	next     atomic.Int64
	startCh  chan struct{}
	roundWG  sync.WaitGroup
	panicMu  sync.Mutex
	panicked any

	// progress is rewritten in place at each barrier under progressMu.
	progressMu sync.Mutex
	progress   MultiProgress

	// barrier, when set, is invoked by the coordinator after every round's
	// progress publication and once more when the run drains.
	barrier BarrierObserver
}

// BarrierObserver receives a coordinator callback at every barrier of a
// MultiEngine run, after the round's cross-domain mailboxes were drained
// and the progress snapshot was published. The callback runs on the
// coordinator goroutine while every domain is quiescent, so the observer
// may read domain clocks, calendars and the shared StatsRegistry without
// synchronization — this is the sampling hook time-resolved cluster
// observability hangs off. mailboxes[i] is domain i's inbound mailbox
// depth observed at the barrier (before the drain emptied it). final is
// true for the terminating callback of a Run invocation, when every
// calendar and mailbox is empty.
//
// Observers must not schedule events: the round structure (and therefore
// Rounds()) is part of the deterministic output, and an observer-injected
// event would perturb it. Observation is read-only by contract.
type BarrierObserver interface {
	OnBarrier(m *MultiEngine, mailboxes []int, final bool)
}

// SetBarrierObserver installs the coordinator's barrier callback (nil
// removes it). Barrier structure is worker-independent, so anything an
// observer records is byte-identical at any SetWorkers width. Call
// before Run.
func (m *MultiEngine) SetBarrierObserver(o BarrierObserver) {
	if m.running {
		panic("sim: SetBarrierObserver during Run")
	}
	m.barrier = o
}

// mergeEntry pairs a drained cross event with its destination.
type mergeEntry struct {
	dst *Engine
	ev  xevent
}

// NewMultiEngine returns a coordinator over n fresh domains (ids 0..n-1)
// sharing one StatsRegistry, so resources wired anywhere in the partition
// keep globally unique hierarchical names and one registry walk still
// covers the whole simulation.
func NewMultiEngine(n int) *MultiEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: MultiEngine needs at least one domain, got %d", n))
	}
	m := &MultiEngine{
		stats:     NewStatsRegistry(),
		lookahead: MaxTime,
		workers:   1,
	}
	for i := 0; i < n; i++ {
		d := NewEngine()
		d.stats = m.stats
		d.id = int32(i)
		d.multi = m
		m.domains = append(m.domains, d)
	}
	m.progress.Domains = make([]DomainProgress, n)
	m.progress.Lookahead = MaxTime
	return m
}

// Domains reports the partition width.
func (m *MultiEngine) Domains() int { return len(m.domains) }

// Domain returns domain i's engine.
func (m *MultiEngine) Domain(i int) *Engine { return m.domains[i] }

// Stats returns the registry shared by every domain.
func (m *MultiEngine) Stats() *StatsRegistry { return m.stats }

// Lookahead reports the conservative synchronization window: the minimum
// CrossLink latency wired so far (MaxTime when domains are unconnected —
// each then runs to completion in a single round).
func (m *MultiEngine) Lookahead() Time { return m.lookahead }

// SetWorkers bounds how many goroutines execute domains per round; n <= 1
// selects the fully serial coordinator. More workers than domains is
// clamped. Call before Run.
func (m *MultiEngine) SetWorkers(n int) {
	if m.running {
		panic("sim: SetWorkers during Run")
	}
	if n < 1 {
		n = 1
	}
	if n > len(m.domains) {
		n = len(m.domains)
	}
	m.workers = n
}

// Workers reports the configured per-round execution width.
func (m *MultiEngine) Workers() int { return m.workers }

// Rounds reports how many barrier rounds have executed.
func (m *MultiEngine) Rounds() uint64 { return m.rounds }

// Now reports the simulation's frontier: the maximum domain clock.
func (m *MultiEngine) Now() Time {
	var max Time
	for _, d := range m.domains {
		if d.now > max {
			max = d.now
		}
	}
	return max
}

// Executed sums dispatched events over all domains.
func (m *MultiEngine) Executed() uint64 {
	var n uint64
	for _, d := range m.domains {
		n += d.executed
	}
	return n
}

// Pending sums calendar populations over all domains (mailboxes excluded).
func (m *MultiEngine) Pending() int {
	var n int
	for _, d := range m.domains {
		n += len(d.heap)
	}
	return n
}

// Progress returns the barrier-consistent snapshot the coordinator
// published most recently. Safe to call from any goroutine while Run
// executes — this is the inspector's read path.
func (m *MultiEngine) Progress() MultiProgress {
	m.progressMu.Lock()
	defer m.progressMu.Unlock()
	out := m.progress
	out.Domains = append([]DomainProgress(nil), m.progress.Domains...)
	return out
}

// publishProgress rewrites the published snapshot. mailboxes[i] is the
// depth observed at the barrier, before the drain emptied it.
func (m *MultiEngine) publishProgress(mailboxes []int) {
	m.progressMu.Lock()
	m.progress.Rounds = m.rounds
	m.progress.Lookahead = m.lookahead
	for i, d := range m.domains {
		m.progress.Domains[i] = DomainProgress{
			Clock:    d.now,
			Pending:  len(d.heap),
			Mailbox:  mailboxes[i],
			Executed: d.executed,
		}
	}
	m.progressMu.Unlock()
}

// observeLatency folds a newly wired cross-domain latency into the
// lookahead. Latencies must be positive: a zero-latency cross link would
// collapse the safe window to nothing and the barrier could never admit
// an event.
func (m *MultiEngine) observeLatency(l Time) {
	if l <= 0 {
		panic(fmt.Sprintf("sim: cross-domain latency %v must be positive (it bounds the conservative lookahead)", l))
	}
	if l < m.lookahead {
		m.lookahead = l
	}
}

// drain moves every mailbox's pending events into the destination
// calendars in the total (at, src, xseq) order, returning the observed
// per-domain mailbox depths. Coordinator-only, between rounds.
func (m *MultiEngine) drain(depths []int) {
	m.merge = m.merge[:0]
	for i, d := range m.domains {
		d.inbox.mu.Lock()
		depths[i] = len(d.inbox.pending)
		for _, ev := range d.inbox.pending {
			if !ev.cancelled {
				m.merge = append(m.merge, mergeEntry{dst: d, ev: ev})
			}
		}
		d.inbox.pending = d.inbox.pending[:0]
		d.inbox.epoch++
		d.inbox.mu.Unlock()
	}
	sort.Slice(m.merge, func(i, j int) bool {
		a, b := m.merge[i].ev, m.merge[j].ev
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.xseq < b.xseq
	})
	for _, e := range m.merge {
		if e.ev.at < e.dst.now {
			panic(fmt.Sprintf("sim: cross-domain event at %v delivered into domain %d already at %v (lookahead violated)",
				e.ev.at, e.dst.id, e.dst.now))
		}
		e.dst.push(e.ev.at, e.ev.h, e.ev.arg, e.ev.fn)
	}
}

// Run executes the partitioned simulation to completion: barrier rounds of
// drain → safe-window execution until every calendar and mailbox is empty.
// Panics on re-entrant invocation. A model panic inside any domain is
// re-raised on the caller's goroutine.
func (m *MultiEngine) Run() {
	if m.running {
		panic("sim: re-entrant MultiEngine.Run")
	}
	m.running = true
	defer func() { m.running = false }()

	if m.workers > 1 && m.startCh == nil {
		m.startWorkers()
	}
	depths := make([]int, len(m.domains))
	for {
		m.drain(depths)
		tmin := MaxTime
		for _, d := range m.domains {
			if len(d.heap) > 0 && d.heap[0].at < tmin {
				tmin = d.heap[0].at
			}
		}
		if tmin == MaxTime {
			m.publishProgress(depths)
			if m.barrier != nil {
				m.barrier.OnBarrier(m, depths, true)
			}
			return
		}
		bound := tmin + m.lookahead
		if bound < tmin { // overflow (unconnected partitions run unbounded)
			bound = MaxTime
		}
		m.runRound(bound)
		m.rounds++
		m.publishProgress(depths)
		if m.barrier != nil {
			m.barrier.OnBarrier(m, depths, false)
		}
	}
}

// runRound executes every domain's safe window. Domains without an event
// inside the window are skipped; a round with at most one active domain
// runs inline even under a parallel configuration, so sparse phases do not
// pay the hand-off latency.
func (m *MultiEngine) runRound(bound Time) {
	m.active = m.active[:0]
	for i, d := range m.domains {
		if len(d.heap) > 0 && d.heap[0].at < bound {
			m.active = append(m.active, int32(i))
		}
	}
	if m.workers <= 1 || len(m.active) <= 1 {
		for _, i := range m.active {
			m.domains[i].runBound(bound)
		}
		return
	}
	w := m.workers
	if w > len(m.active) {
		w = len(m.active)
	}
	m.bound = bound
	m.next.Store(0)
	m.roundWG.Add(w)
	for i := 0; i < w; i++ {
		m.startCh <- struct{}{}
	}
	m.roundWG.Wait()
	m.panicMu.Lock()
	p := m.panicked
	m.panicked = nil
	m.panicMu.Unlock()
	if p != nil {
		panic(p)
	}
}

// startWorkers launches the persistent round executors. They live for the
// MultiEngine's lifetime; each round the coordinator hands out tokens and
// workers claim active domains off a shared counter.
func (m *MultiEngine) startWorkers() {
	m.startCh = make(chan struct{})
	for i := 0; i < m.workers; i++ {
		go func() {
			for range m.startCh {
				m.workRound()
				m.roundWG.Done()
			}
		}()
	}
}

// workRound claims and executes active domains until the round's counter
// is exhausted, capturing (not swallowing) the first model panic.
func (m *MultiEngine) workRound() {
	defer func() {
		if r := recover(); r != nil {
			m.panicMu.Lock()
			if m.panicked == nil {
				m.panicked = r
			}
			m.panicMu.Unlock()
			// Drain the remaining claims so the round still terminates.
			for {
				i := m.next.Add(1) - 1
				if int(i) >= len(m.active) {
					return
				}
			}
		}
	}()
	for {
		i := m.next.Add(1) - 1
		if int(i) >= len(m.active) {
			return
		}
		m.domains[m.active[i]].runBound(m.bound)
	}
}

// ExportAt schedules h.Fire(dst, arg) at absolute time t in another
// domain of the same MultiEngine, through dst's mailbox. The event is
// committed at the next barrier; until then the returned XHandle can
// cancel it. t must respect the conservative lookahead — at least one
// lookahead past the exporting domain's clock — or the destination could
// already have advanced past it. CrossLink.Send is the usual way to get
// the timing right; ExportAt is the low-level primitive for latency-only
// control messages.
func (e *Engine) ExportAt(dst *Engine, t Time, h Handler, arg uint64) XHandle {
	if e.multi == nil || dst == nil || dst.multi != e.multi {
		panic("sim: ExportAt needs source and destination domains of one MultiEngine")
	}
	if dst == e {
		panic("sim: ExportAt to the exporting domain; use AtCall")
	}
	if h == nil {
		panic("sim: exporting nil handler")
	}
	if t < e.now+e.multi.lookahead {
		panic(fmt.Sprintf("sim: ExportAt %v within lookahead %v of domain %d's clock %v",
			t, e.multi.lookahead, e.id, e.now))
	}
	e.xseq++
	dst.inbox.mu.Lock()
	idx := len(dst.inbox.pending)
	epoch := dst.inbox.epoch
	dst.inbox.pending = append(dst.inbox.pending, xevent{
		at: t, src: e.id, xseq: e.xseq, h: h, arg: arg,
	})
	dst.inbox.mu.Unlock()
	return XHandle{dst: dst, epoch: epoch, idx: idx}
}

// CrossLink is a Link whose deliveries land in other event domains: the
// egress capacity (bandwidth, FIFO queueing, stats) lives in — and is only
// ever touched by — the source domain, while each completed transfer
// schedules its arrival event into the destination domain's mailbox, to be
// committed at the next barrier. Its fixed latency is declared at wiring
// time and folds into the MultiEngine's conservative lookahead, which is
// what makes the barrier window safe.
type CrossLink struct {
	l   *Link
	src *Engine
}

// NewCrossLink creates a cross-domain link owned by src, registered under
// name in the shared registry. latency must be positive; it becomes (part
// of) the MultiEngine's lookahead.
func NewCrossLink(src *Engine, name string, bytesPerSec float64, latency Time) *CrossLink {
	if src == nil || src.multi == nil {
		panic("sim: NewCrossLink needs a domain attached to a MultiEngine")
	}
	src.multi.observeLatency(latency)
	return &CrossLink{l: NewLink(src, name, bytesPerSec, latency), src: src}
}

// Link exposes the underlying egress resource (stats, name, latency).
func (x *CrossLink) Link() *Link { return x.l }

// Send reserves the egress capacity for n payload bytes (FIFO behind
// in-flight transfers, exactly like Link.Transfer) and schedules
// h.Fire(dst, arg) in the destination domain when the last byte lands —
// egress occupancy plus the link latency. Zero-byte sends model
// control-plane messages: pure latency, no capacity occupancy, no stats.
// Returns the arrival time and a handle valid until the next barrier.
func (x *CrossLink) Send(dst *Engine, n int64, h Handler, arg uint64) (Time, XHandle) {
	end := x.l.reserve(x.src.now, x.l.duration(n), n)
	at := end + x.l.latency
	return at, x.src.ExportAt(dst, at, h, arg)
}
