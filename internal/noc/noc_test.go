package noc

import (
	"testing"

	"repro/internal/sim"
)

func TestTransferRateLimitedByNarrowerPort(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "noc", 10*sim.Nanosecond)
	fast := x.MustAddPort("acc", 100e9) // Table II: 100 GB/s acc port
	slow := x.MustAddPort("mc", 19.2e9)

	n := int64(1 << 20)
	done := x.Transfer(fast, slow, n)
	// Limited by the 19.2 GB/s port: ~54.6 µs.
	want := sim.FromSeconds(float64(n)/19.2e9) + 10*sim.Nanosecond
	if diff := done - want; diff < -sim.Nanosecond || diff > sim.Nanosecond {
		t.Errorf("done = %v, want ~%v", done, want)
	}
}

func TestTransferContention(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "noc", 0)
	a := x.MustAddPort("a", 10e9)
	b := x.MustAddPort("b", 10e9)
	c := x.MustAddPort("c", 10e9)

	n := int64(10_000)
	t1 := x.Transfer(a, c, n) // occupies c.ingress
	t2 := x.Transfer(b, c, n) // queues on c.ingress
	if t2 <= t1 {
		t.Errorf("second transfer into same port (%v) did not queue behind first (%v)", t2, t1)
	}
	// Transfers to distinct destinations don't contend.
	eng2 := sim.NewEngine()
	x2 := New(eng2, "noc", 0)
	a2 := x2.MustAddPort("a", 10e9)
	b2 := x2.MustAddPort("b", 10e9)
	c2 := x2.MustAddPort("c", 10e9)
	u1 := x2.Transfer(a2, b2, n)
	u2 := x2.Transfer(a2, c2, n) // same source egress: still serialises
	if u2 <= u1 {
		t.Errorf("same-source transfers should serialise on egress: %v vs %v", u2, u1)
	}
}

func TestLoopbackAndCommands(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "noc", 5*sim.Nanosecond)
	a := x.MustAddPort("a", 10e9)
	if done := x.Transfer(a, a, 1<<20); done != 5*sim.Nanosecond {
		t.Errorf("loopback done = %v, want hop latency only", done)
	}
	b := x.MustAddPort("b", 10e9)
	if done := x.Command(a, b, 20*sim.Nanosecond); done != 25*sim.Nanosecond {
		t.Errorf("command done = %v, want 25ns", done)
	}
	if x.TotalBytes() != 0 {
		t.Errorf("commands/loopback counted as payload: %d bytes", x.TotalBytes())
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "noc", 0)
	x.MustAddPort("a", 1e9)
	if _, err := x.AddPort("a", 1e9); err == nil {
		t.Error("duplicate port accepted")
	}
	if _, ok := x.Port("a"); !ok {
		t.Error("Port lookup failed")
	}
	if _, ok := x.Port("zzz"); ok {
		t.Error("Port lookup found nonexistent port")
	}
}

func TestAccounting(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, "noc", 0)
	a := x.MustAddPort("a", 1e9)
	b := x.MustAddPort("b", 1e9)
	x.Transfer(a, b, 100)
	x.Transfer(b, a, 50)
	if x.TotalBytes() != 150 || x.Transfers() != 2 {
		t.Errorf("bytes=%d transfers=%d, want 150/2", x.TotalBytes(), x.Transfers())
	}
	if u := x.PortUtilization("a"); u <= 0 {
		t.Errorf("port a utilisation = %v, want > 0", u)
	}
	if u := x.PortUtilization("nope"); u != 0 {
		t.Errorf("unknown port utilisation = %v, want 0", u)
	}
}
