package fpga

import (
	"fmt"
	"sort"
)

// Table III of the paper, as code. Utilisation (ff, lut, dsp, bram),
// kernel frequency and power are taken verbatim from the paper; the
// throughput model columns (MACs/cycle, stream bytes/cycle, II, depth) are
// this reproduction's calibration, chosen so that the published relative
// results hold:
//
//   - CNN on VU9P is ~9-10× one ZCU9 instance (paper §VI-B: "7-10x"),
//   - GeMM on a ZCU9 can absorb the full 18 GB/s of its attached DIMM,
//   - KNN on VU9P can absorb the 12 GB/s host IO interface while one ZCU9
//     sustains 6 GB/s, placing the Fig. 11 crossover and the near-memory
//     plateau where the paper has them.
var builtinTemplates = []*Template{
	{
		Name: "CNN-VU9P", Class: CNN, Device: VirtexVU9P,
		Util:    Utilization{FF: 36, LUT: 81, DSP: 78, BRAM: 42},
		FreqMHz: 273, PowerW: 25,
		MACsPerCycle: 8192, StreamBytesPerCycle: 64,
		II: 1, Depth: 120,
	},
	{
		Name: "GEMM-VU9P", Class: GeMM, Device: VirtexVU9P,
		Util:    Utilization{FF: 24, LUT: 27, DSP: 56, BRAM: 77},
		FreqMHz: 273, PowerW: 22.13,
		MACsPerCycle: 2048, StreamBytesPerCycle: 128,
		II: 1, Depth: 96,
	},
	{
		Name: "KNN-VU9P", Class: KNN, Device: VirtexVU9P,
		Util:    Utilization{FF: 10, LUT: 10, DSP: 10, BRAM: 22},
		FreqMHz: 200, PowerW: 11.14,
		MACsPerCycle: 256, StreamBytesPerCycle: 64,
		II: 1, Depth: 64,
	},
	{
		Name: "CNN-ZCU9", Class: CNN, Device: ZynqZCU9,
		Util:    Utilization{FF: 11, LUT: 31, DSP: 38, BRAM: 36},
		FreqMHz: 200, PowerW: 5.19, PowerNSW: 6.13,
		MACsPerCycle: 1536, StreamBytesPerCycle: 32,
		II: 1, Depth: 96,
	},
	{
		Name: "GEMM-ZCU9", Class: GeMM, Device: ZynqZCU9,
		Util:    Utilization{FF: 36, LUT: 27, DSP: 76, BRAM: 92},
		FreqMHz: 150, PowerW: 5.3, PowerNSW: 8,
		MACsPerCycle: 512, StreamBytesPerCycle: 128,
		II: 1, Depth: 80,
	},
	{
		Name: "KNN-ZCU9", Class: KNN, Device: ZynqZCU9,
		Util:    Utilization{FF: 23, LUT: 20, DSP: 30, BRAM: 22},
		FreqMHz: 150, PowerW: 1.8, PowerNSW: 2.4,
		MACsPerCycle: 128, StreamBytesPerCycle: 40,
		II: 1, Depth: 48,
	},
}

// aliases maps the application-facing template names used in the paper's
// Listing 2 to the Table III kernels.
var aliases = map[string]string{
	"VGG16-VU9P": "CNN-VU9P",
	"VGG16-ZCU9": "CNN-ZCU9",
}

// Registry holds the accelerator templates available to a ReACH deployment
// (the "pre-optimized templates ready to deploy" of §III-A).
type Registry struct {
	byName map[string]*Template
}

// NewRegistry returns a registry pre-populated with the paper's Table III
// kernels and the Listing 2 aliases. Each registry gets private copies of
// the built-in templates: registries live inside concurrently-running
// simulations, and a shared mutable Template would let one run's tweak
// (or a misbehaving caller) leak into every other system.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]*Template)}
	for _, t := range builtinTemplates {
		if err := t.Validate(); err != nil {
			panic(err) // built-in table must be internally consistent
		}
		cp := *t
		r.byName[t.Name] = &cp
	}
	for alias, target := range aliases {
		r.byName[alias] = r.byName[target]
	}
	return r
}

// Register adds a user template. Re-registering an existing name is an
// error (templates are immutable once published to GAM).
func (r *Registry) Register(t *Template) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := r.byName[t.Name]; dup {
		return fmt.Errorf("fpga: template %q already registered", t.Name)
	}
	r.byName[t.Name] = t
	return nil
}

// Lookup finds a template by name or alias.
func (r *Registry) Lookup(name string) (*Template, error) {
	t, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("fpga: unknown accelerator template %q", name)
	}
	return t, nil
}

// Names lists all registered names, sorted, aliases included.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableIII returns the six Table III kernels in the paper's row order, for
// the table-reproduction harness.
func TableIII() []*Template {
	out := make([]*Template, len(builtinTemplates))
	copy(out, builtinTemplates)
	return out
}
