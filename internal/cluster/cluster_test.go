package cluster

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testModel() workload.Model {
	m := workload.DefaultModel()
	m.DatasetSize = m.DatasetSize / 100 // keep unit runs fast
	return m
}

// buildAndRun submits n queries at a fixed inter-arrival gap and runs the
// cluster to completion.
func buildAndRun(t *testing.T, cfg config.ClusterConfig, n int, gap sim.Time) *Cluster {
	t.Helper()
	c, err := New(cfg, testModel(), qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.SubmitAt(sim.Time(i) * gap)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterScatterGatherCompletes(t *testing.T) {
	c := buildAndRun(t, config.DefaultCluster(), 8, sim.FromSeconds(1e-3))
	if c.Completed() != 8 {
		t.Fatalf("completed %d of 8 queries", c.Completed())
	}
	sk := c.QLog().Sketch()
	if sk.Count() != 8 {
		t.Fatalf("sketch holds %d samples, want 8", sk.Count())
	}
	if sk.Quantile(0.99) < sk.Quantile(0.50) {
		t.Fatal("p99 below p50")
	}
	// Work landed on more than one node.
	busy := 0
	for i := range c.Nodes() {
		if c.NodeBusyPct(i) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d nodes saw work in a 4-node scatter-gather", busy)
	}
}

// TestClusterDeterministic pins the tentpole's determinism bar: two
// identical runs produce byte-identical node snapshots and identical
// latency sketches.
func TestClusterDeterministic(t *testing.T) {
	snap := func() (string, string) {
		c := buildAndRun(t, config.DefaultCluster(), 12, sim.FromSeconds(5e-4))
		var b bytes.Buffer
		for _, n := range c.Nodes() {
			if err := n.WriteSnapshot(&b); err != nil {
				t.Fatal(err)
			}
		}
		sk := c.QLog().Sketch()
		lat := sk.Quantile(0.5).String() + "/" + sk.Quantile(0.99).String()
		return b.String(), lat
	}
	s1, l1 := snap()
	s2, l2 := snap()
	if s1 != s2 {
		t.Fatal("identical cluster runs produced different node snapshots")
	}
	if l1 != l2 {
		t.Fatalf("identical cluster runs produced different latencies: %s vs %s", l1, l2)
	}
}

// TestClusterNodePrefixes checks the shared registry keeps node resources
// disjoint, and that each node's snapshot covers only its own prefix.
func TestClusterNodePrefixes(t *testing.T) {
	c, err := New(config.DefaultCluster(), testModel(), qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	c.Engine().Stats().Walk(func(name string, _ sim.Resource) { names[name] = true })
	for _, want := range []string{"node0.mem.host", "node3.mem.host", "cluster.net.node0.in", "cluster.net.node3.out"} {
		if !names[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
	for _, e := range c.Nodes()[1].Snapshot() {
		if strings.HasPrefix(e.Name, "node1.") || !strings.Contains(e.Name, ".") {
			continue
		}
		if strings.HasPrefix(e.Name, "node") || strings.HasPrefix(e.Name, "cluster.") {
			t.Fatalf("node1 snapshot leaked foreign resource %q", e.Name)
		}
	}
}

// TestClusterShardMapPinning: an explicit single-replica shard map routes
// every shard job to its one assigned node.
func TestClusterShardMapPinning(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.Shards = 1
	cfg.ShardMap = [][]int{{2}}
	c := buildAndRun(t, cfg, 6, sim.FromSeconds(1e-3))
	routed := c.RouterStats().Routed()
	// 6 home picks spread anywhere, 6 shard picks all on node 2.
	if routed[2] < 6 {
		t.Fatalf("node 2 routed %d requests, want >= 6 (all shard jobs)", routed[2])
	}
	var total uint64
	for _, r := range routed {
		total += r
	}
	if total != 12 {
		t.Fatalf("total routed %d, want 12 (6 home + 6 shard)", total)
	}
}

// TestClusterQuorumMergesEarly: a 2-of-4 quorum merge completes no later
// than the all-shards merge on the same arrival sequence.
func TestClusterQuorumMergesEarly(t *testing.T) {
	mean := func(quorum int) float64 {
		cfg := config.DefaultCluster()
		cfg.Quorum = quorum
		c := buildAndRun(t, cfg, 8, sim.FromSeconds(1e-3))
		var sum float64
		for _, q := range c.QLog().Queries() {
			sum += q.Latency().Seconds()
		}
		return sum / 8
	}
	all, quorum := mean(0), mean(2)
	if quorum > all {
		t.Fatalf("2-of-4 quorum mean latency %.6fs exceeds all-shards %.6fs", quorum, all)
	}
	if quorum == all {
		t.Fatalf("quorum merge made no difference (%.6fs)", quorum)
	}
}

// TestClusterSingleNode: the degenerate 1-node, 1-shard cluster still
// works — everything co-located, no network hops.
func TestClusterSingleNode(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.Nodes, cfg.Shards, cfg.Replication = 1, 1, 1
	c := buildAndRun(t, cfg, 4, sim.FromSeconds(1e-3))
	if c.Completed() != 4 {
		t.Fatalf("completed %d of 4", c.Completed())
	}
}

func TestClusterRejectsInvalidConfig(t *testing.T) {
	cfg := config.DefaultCluster()
	cfg.RoutePolicy = "sticky"
	if _, err := New(cfg, testModel(), qtrace.Options{}); err == nil {
		t.Fatal("New accepted invalid route policy")
	}
}
