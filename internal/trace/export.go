package trace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qtrace"
)

// AddJobs records a batch of jobs, keeping every job that can be traced
// and reporting the first failure instead of silently dropping the rest:
// an unfinished job mid-batch no longer hides the finished jobs after it,
// and the caller still learns something went wrong.
func (t *Timeline) AddJobs(jobs []*core.Job) error {
	var first error
	for _, j := range jobs {
		if err := t.AddJob(j); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// counterPointCap bounds Chrome counter points per series. Long runs at a
// fine sampling interval record far more samples than a trace viewer can
// render (a 1 s simulation at 10 µs is 100k points per resource); the
// merge decimates by stride, and the busy-% values stay exact because they
// are computed between the kept cumulative samples.
const counterPointCap = 2048

// AddCounters merges a sampler's time series into the timeline as Chrome
// "C" counter events: per resource one "occupancy" track and one "busy %"
// track (the busy-time delta over the decimated sampling stride, as a
// percentage), rendered by Perfetto as counter lanes alongside the task
// slices. Series longer than counterPointCap points are decimated. Accepts
// any metrics.Source, so both the single-system Sampler and the cluster
// MultiSampler export through the same path.
func (t *Timeline) AddCounters(s metrics.Source) {
	for _, se := range s.Series() {
		t.addCounterSeries(1, se.Name, s, se)
	}
}

// addCounterSeries emits one series' occupancy and busy-% counter tracks
// under the given pid and display name.
func (t *Timeline) addCounterSeries(pid int, display string, s metrics.Source, se *metrics.Series) {
	stride := (se.Len() + counterPointCap - 1) / counterPointCap
	if stride < 1 {
		stride = 1
	}
	prevIdx := -1
	for i := 0; i < se.Len(); i += stride {
		gi := se.Start() + i // global sample index
		p := se.At(i)
		ts := us(s.Time(gi))
		t.events = append(t.events, Event{
			Name:  display + " occupancy",
			Cat:   "metrics",
			Phase: "C",
			TS:    ts,
			PID:   pid,
			Args:  map[string]any{"value": p.Occupancy},
		})
		if prevIdx >= 0 {
			prev := se.At(prevIdx)
			dt := s.Time(gi) - s.Time(se.Start()+prevIdx)
			if dt > 0 {
				pct := float64(p.Busy-prev.Busy) / float64(dt) * 100
				t.events = append(t.events, Event{
					Name:  display + " busy %",
					Cat:   "metrics",
					Phase: "C",
					TS:    ts,
					PID:   pid,
					Args:  map[string]any{"value": pct},
				})
			}
		}
		prevIdx = i
	}
}

// AddQueries merges a per-query trace log into the timeline: one lane per
// query, carrying the query's end-to-end window (with its dominant
// attribution in args) and every recorded phase interval as nested "X"
// slices — the timeline answer to "where did query N's time go".
func (t *Timeline) AddQueries(l *qtrace.Log) {
	for _, q := range l.Queries() {
		lane := t.lane(fmt.Sprintf("query %d", q.ID))
		if q.Completed() {
			args := map[string]any{
				"job":        q.Job,
				"latency_ms": q.Latency().Milliseconds(),
			}
			if dom := q.Dominant(); dom.Phase != "" {
				args["dominant"] = fmt.Sprintf("%.0f%% %s %s@%s",
					dom.Share*100, dom.Phase, dom.Stage, dom.Level)
			}
			t.events = append(t.events, Event{
				Name:  fmt.Sprintf("query %d", q.ID),
				Cat:   "query",
				Phase: "X",
				TS:    us(q.Arrival),
				Dur:   us(q.Done - q.Arrival),
				PID:   1,
				TID:   lane,
				Args:  args,
			})
		}
		for _, iv := range q.Intervals {
			t.events = append(t.events, Event{
				Name:  fmt.Sprintf("%s %s", iv.Phase, iv.Stage),
				Cat:   iv.Phase,
				Phase: "X",
				TS:    us(iv.Start),
				Dur:   us(iv.Duration()),
				PID:   1,
				TID:   lane,
				Args: map[string]any{
					"stage":  iv.Stage,
					"level":  iv.Level,
					"detail": iv.Detail,
				},
			})
		}
	}
}

// AddSpans merges a GAM span log into the timeline: one "X" slice per span
// on a per-category lane, with the cause, instance, job and the category's
// detail value in args. Instantaneous spans render as zero-duration slices.
func (t *Timeline) AddSpans(l *metrics.SpanLog) { t.addSpansAt(1, l) }

// addSpansAt is AddSpans under an explicit process group (a cluster node's
// pid).
func (t *Timeline) addSpansAt(pid int, l *metrics.SpanLog) {
	for _, sp := range l.Spans() {
		t.events = append(t.events, Event{
			Name:  fmt.Sprintf("%s [%s]", sp.Name, sp.Cause),
			Cat:   sp.Cat,
			Phase: "X",
			TS:    us(sp.Start),
			Dur:   us(sp.End - sp.Start),
			PID:   pid,
			TID:   t.laneAt(pid, sp.Cat),
			Args: map[string]any{
				"cause":    sp.Cause,
				"instance": sp.Lane,
				"job":      sp.Job,
				"v":        sp.V,
			},
		})
	}
}
