// Package fpga models the reconfigurable fabric at each ReACH compute
// level: device resource inventories (Virtex UltraScale+ VU9P for the
// on-chip accelerator, Zynq UltraScale+ ZCU9EQ for near-memory and
// near-storage modules), the kernel templates of the paper's Table III with
// their synthesised frequency, utilisation and power, and the cycle-level
// performance model the simulator derives task durations from —
// cycles = depth + II × iterations, exactly the quantities the paper
// extracts from HLS synthesis reports and feeds to its simulator (§V).
package fpga

import (
	"fmt"

	"repro/internal/sim"
)

// Resources is an FPGA resource inventory (flip-flops, look-up tables, DSP
// slices, block-RAM tiles).
type Resources struct {
	FF   int
	LUT  int
	DSP  int
	BRAM int
}

// Utilization is a resource vector expressed as a percentage of a device,
// as synthesis reports (and the paper's Table III) state it.
type Utilization struct {
	FF   float64
	LUT  float64
	DSP  float64
	BRAM float64
}

// Add returns the element-wise sum of two utilisations.
func (u Utilization) Add(v Utilization) Utilization {
	return Utilization{FF: u.FF + v.FF, LUT: u.LUT + v.LUT, DSP: u.DSP + v.DSP, BRAM: u.BRAM + v.BRAM}
}

// Fits reports whether the utilisation fits in one device (≤100 % on every
// resource class).
func (u Utilization) Fits() bool {
	return u.FF <= 100 && u.LUT <= 100 && u.DSP <= 100 && u.BRAM <= 100
}

// Device describes one FPGA part.
type Device struct {
	Name  string
	Total Resources
	// SPMBytes is the usable on-fabric scratchpad capacity.
	SPMBytes int64
	// StaticPowerW is the fabric's static power when configured.
	StaticPowerW float64
}

// The two parts used in the paper (Table II/III). Resource totals follow
// the Xilinx UltraScale+ product tables [25].
var (
	// VirtexVU9P is the large on-chip device (Xilinx Virtex UltraScale+
	// XCVU9P).
	VirtexVU9P = &Device{
		Name:         "XCVU9P",
		Total:        Resources{FF: 2_364_480, LUT: 1_182_240, DSP: 6840, BRAM: 2160},
		SPMBytes:     48 << 20, // BRAM+URAM usable as accelerator SPM
		StaticPowerW: 3.0,
	}
	// ZynqZCU9 is the embedded device used by near-memory and
	// near-storage modules (Xilinx Zynq UltraScale+ ZCU9EG).
	ZynqZCU9 = &Device{
		Name:         "ZCU9EQ",
		Total:        Resources{FF: 548_160, LUT: 274_080, DSP: 2520, BRAM: 912},
		SPMBytes:     4 << 20,
		StaticPowerW: 0.6,
	}
)

// Absolute converts a percentage utilisation on d into absolute resource
// counts.
func (d *Device) Absolute(u Utilization) Resources {
	pct := func(total int, p float64) int { return int(float64(total)*p/100.0 + 0.5) }
	return Resources{
		FF:   pct(d.Total.FF, u.FF),
		LUT:  pct(d.Total.LUT, u.LUT),
		DSP:  pct(d.Total.DSP, u.DSP),
		BRAM: pct(d.Total.BRAM, u.BRAM),
	}
}

// KernelClass identifies the three accelerator kernels of the case study.
type KernelClass int

const (
	// CNN is the convolutional-neural-network feature-extraction kernel.
	CNN KernelClass = iota
	// GeMM is the matrix-multiplication kernel of shortlist retrieval.
	GeMM
	// KNN is the k-nearest-neighbour streaming kernel of rerank.
	KNN
)

func (k KernelClass) String() string {
	switch k {
	case CNN:
		return "CNN"
	case GeMM:
		return "GeMM"
	case KNN:
		return "KNN"
	default:
		return fmt.Sprintf("KernelClass(%d)", int(k))
	}
}

// Template is one synthesised kernel for one device — an accelerator
// template in the sense of the ReACH runtime library (§III-A): bitstream
// metadata plus the synthesis-report numbers the GAM uses for timing
// estimates.
type Template struct {
	Name   string
	Class  KernelClass
	Device *Device
	Util   Utilization
	// FreqMHz is the synthesised kernel clock (Table III).
	FreqMHz float64
	// PowerW is the active power when deployed at the on-chip or
	// near-memory level; PowerNSW is the near-storage variant, which is
	// higher because of the private DRAM buffer and its interface
	// (Table III lists two numbers for the Zynq kernels).
	PowerW   float64
	PowerNSW float64
	// MACsPerCycle is the multiply-accumulate throughput of the datapath.
	MACsPerCycle float64
	// StreamBytesPerCycle is the input-consumption capability of the
	// datapath (how fast the kernel can absorb streamed operands).
	StreamBytesPerCycle float64
	// II is the pipeline initiation interval and Depth the pipeline depth
	// in cycles, from the synthesis report.
	II    int
	Depth int
}

// Clock returns the kernel's clock domain.
func (t *Template) Clock() sim.Clock { return sim.MHz(t.FreqMHz) }

// ComputeThroughput reports MAC/s.
func (t *Template) ComputeThroughput() float64 {
	return t.MACsPerCycle * t.FreqMHz * 1e6
}

// StreamBandwidth reports the kernel's input consumption rate in bytes/s.
func (t *Template) StreamBandwidth() float64 {
	return t.StreamBytesPerCycle * t.FreqMHz * 1e6
}

// Cycles returns the kernel-cycle count to process a work item of the given
// MAC count and streamed byte volume: the pipeline fill (depth) plus one
// initiation interval per iteration, where the iteration count is set by
// whichever of compute and data consumption binds.
func (t *Template) Cycles(macs float64, bytes int64) uint64 {
	perIterMACs := t.MACsPerCycle * float64(t.II)
	perIterBytes := t.StreamBytesPerCycle * float64(t.II)
	var iters float64
	if perIterMACs > 0 && macs > 0 {
		iters = macs / perIterMACs
	}
	if perIterBytes > 0 && bytes > 0 {
		if bi := float64(bytes) / perIterBytes; bi > iters {
			iters = bi
		}
	}
	n := uint64(iters)
	if float64(n) < iters {
		n++
	}
	if n == 0 {
		n = 1
	}
	return uint64(t.Depth) + uint64(t.II)*(n-1) + uint64(t.II)
}

// Duration converts Cycles to simulated time at the kernel clock.
func (t *Template) Duration(macs float64, bytes int64) sim.Time {
	return t.Clock().Cycles(t.Cycles(macs, bytes))
}

// Power reports the active power of the template when deployed at a level
// with (nearStorage=true) or without the private DRAM buffer.
func (t *Template) Power(nearStorage bool) float64 {
	if nearStorage && t.PowerNSW > 0 {
		return t.PowerNSW
	}
	return t.PowerW
}

// Validate checks the template's parameters.
func (t *Template) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("fpga: template without name")
	case t.Device == nil:
		return fmt.Errorf("fpga: template %s without device", t.Name)
	case t.FreqMHz <= 0:
		return fmt.Errorf("fpga: template %s invalid frequency %v", t.Name, t.FreqMHz)
	case !t.Util.Fits():
		return fmt.Errorf("fpga: template %s exceeds device resources", t.Name)
	case t.II <= 0 || t.Depth <= 0:
		return fmt.Errorf("fpga: template %s invalid II/depth %d/%d", t.Name, t.II, t.Depth)
	case t.PowerW <= 0:
		return fmt.Errorf("fpga: template %s invalid power %v", t.Name, t.PowerW)
	case t.MACsPerCycle <= 0 && t.StreamBytesPerCycle <= 0:
		return fmt.Errorf("fpga: template %s has no throughput model", t.Name)
	}
	return nil
}
