package experiments

import (
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/runner"
	"repro/internal/workload"
)

// TestParallelRunsAreIndependent is the -race smoke test for the whole
// parallel layer: a heterogeneous batch of specs — different mappings,
// config mutations, custom job builders and background modes — runs eight
// at a time. Every run builds its own core.System (its own engine, meter,
// platform and kernel registry), so the race detector must stay silent and
// each spec must reproduce its serial result exactly.
func TestParallelRunsAreIndependent(t *testing.T) {
	m := workload.DefaultModel()
	var specs []RunSpec
	specs = append(specs, PipelineSpec("pipe reach", m, ReACHMapping(), 4, 2))
	specs = append(specs, PipelineSpec("pipe onchip", m, SingleLevel(accel.OnChip), 1, 2))
	specs = append(specs, fig8Specs(m)...)
	specs = append(specs, ablationGAMSpecs(m)[:2]...)
	specs = append(specs, granularitySpecs(m)[:2]...)
	skews, _ := skewSpecs(m)
	specs = append(specs, skews[:2]...)
	stage, err := StageSpec(StageSL, accel.NearMemory, 2, m)
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs, stage)

	serial := make([]*RunResult, len(specs))
	for i, s := range specs {
		r, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		serial[i] = r
	}

	parallel, err := RunSpecs(specs, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		if got, want := parallel[i].Latency, serial[i].Latency; got != want {
			t.Errorf("%s: parallel latency %v != serial %v", s.Name, got, want)
		}
		if got, want := parallel[i].Makespan, serial[i].Makespan; got != want {
			t.Errorf("%s: parallel makespan %v != serial %v", s.Name, got, want)
		}
	}
}

// TestParallelExperimentsShareOnePool drives several whole experiments
// concurrently through one shared pool — the -exp all shape — under the
// race detector.
func TestParallelExperimentsShareOnePool(t *testing.T) {
	m := workload.DefaultModel()
	pool := runner.NewPool(4)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); _, errs[0] = Fig8(m, WithPool(pool)) }()
	go func() { defer wg.Done(); _, errs[1] = Fig13(m, WithPool(pool)) }()
	go func() { defer wg.Done(); _, errs[2] = AblationGranularity(m, WithPool(pool)) }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
