package metrics

import "repro/internal/sim"

// Span categories — the GAM activities the span log distinguishes. The
// category names double as Chrome-trace event categories.
const (
	// CatDispatch is a dispatch decision: ready-instant to the command
	// packet leaving the GAM, tagged with why the task waited.
	CatDispatch = "gam.dispatch"
	// CatReconfig is a partial reconfiguration on a fabric (a different
	// kernel template was resident).
	CatReconfig = "gam.reconfig"
	// CatPollGap is the device-completion to GAM-detection gap of a polled
	// (non-coherent) task.
	CatPollGap = "gam.pollgap"
	// CatStreamStall is a back-pressure event on an inter-level stream
	// buffer.
	CatStreamStall = "gam.stream"
)

// Cause tags — why the spanned activity happened or took as long as it
// did.
const (
	// CauseImmediate: the task was dispatched in the same instant it
	// became ready.
	CauseImmediate = "immediate"
	// CauseNoIdleInstance: every instance at the task's level was busy.
	CauseNoIdleInstance = "no-idle-instance"
	// CauseInputInFlight: the task's host-side input stream had not landed
	// (NotBefore gate).
	CauseInputInFlight = "input-in-flight"
	// CauseJobGate: cross-job pipelining is disabled and an older job was
	// still open.
	CauseJobGate = "job-gate"
	// CauseReconfig: a different kernel template was resident and the
	// fabric was partially reconfigured.
	CauseReconfig = "kernel-switch"
	// CauseStatusPoll: completion was observed by status polling rather
	// than a coherent flag.
	CauseStatusPoll = "status-poll"
	// CauseStreamBackpressure: a stream-buffer put found the buffer full.
	CauseStreamBackpressure = "stream-backpressure"
)

// Span is one structured GAM event: a category, the affected task/kernel/
// buffer, the lane it renders on (instance name or "GAM"), a cause tag,
// and the spanned simulated-time window (Start == End for instantaneous
// events).
type Span struct {
	Cat   string
	Name  string
	Lane  string
	Cause string
	Start sim.Time
	End   sim.Time
	// Job is the owning job ID (-1 when not job-scoped).
	Job int
	// V carries one category-specific detail: polls for CatPollGap, busy
	// device count at decision time for CatDispatch, buffer high-water
	// mark for CatStreamStall, reconfiguration count for CatReconfig.
	V int64
}

// Duration reports End - Start.
func (s Span) Duration() sim.Time { return s.End - s.Start }

// SpanLog accumulates spans in emission order. A nil *SpanLog is inert:
// Add on nil is a no-op, so instrumented model code can hold a nil log
// when spans are disabled. (The GAM still guards its hooks with a nil
// check to keep the disabled path free of even argument construction.)
type SpanLog struct {
	spans []Span
}

// NewSpanLog returns an empty log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Add appends one span. No-op on a nil log.
func (l *SpanLog) Add(sp Span) {
	if l == nil {
		return
	}
	l.spans = append(l.spans, sp)
}

// Len reports how many spans were recorded.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans)
}

// Spans returns the recorded spans in emission order. The slice is the
// log's backing store; callers must not mutate it.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	return l.spans
}
