package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// GranularityCell is one task-size point.
type GranularityCell struct {
	TasksPerStage int
	Throughput    float64
	Latency       sim.Time
	ControlPlane  uint64 // command packets + status polls
}

// GranularityResult quantifies §II-D's design rule: "the accelerator tasks
// are intentionally designed to be small enough to exploit task-level
// parallelism but large enough to amortize the data transfer overhead."
// The ReACH pipeline is run with each near-data stage decomposed into
// 4…256 tasks; too-coarse decompositions under-use the instances, while
// too-fine ones drown in GAM command/status traffic and per-task overheads
// (DIMM handoffs, command latency).
type GranularityResult struct {
	Cells []*GranularityCell
}

// granularityTaskCounts is the sweep's decomposition axis.
func granularityTaskCounts() []int { return []int{4, 16, 64, 256} }

// granularityBatches measures steady state; per-task GAM overheads are what
// fine granularity amplifies.
const granularityBatches = 6

// granularitySpecs is the run matrix: the ReACH pipeline with each
// near-data stage decomposed into 4…256 tasks.
func granularitySpecs(m workload.Model) []RunSpec {
	counts := granularityTaskCounts()
	specs := make([]RunSpec, len(counts))
	for i, tasks := range counts {
		tasks := tasks
		specs[i] = RunSpec{
			Name:      fmt.Sprintf("granularity %d tasks/stage", tasks),
			Model:     m,
			Mapping:   ReACHMapping(),
			Instances: 4,
			Batches:   granularityBatches,
			BuildJob: func(sys *core.System, id int) (*core.Job, error) {
				return buildChunkedJob(sys, id, m, tasks)
			},
		}
	}
	return specs
}

// granularityCell reduces one decomposition's run to its row.
func granularityCell(tasks int, run *RunResult) *GranularityCell {
	g := run.Sys.GAM().Stats()
	return &GranularityCell{
		TasksPerStage: tasks,
		Throughput:    run.ThroughputBatchesPerSec(),
		Latency:       run.Latency,
		ControlPlane:  g.CommandPackets + g.StatusPolls,
	}
}

// AblationGranularity runs the sweep on the ReACH mapping with 4 instances
// per near-data level.
func AblationGranularity(m workload.Model, opts ...Option) (*GranularityResult, error) {
	runs, err := RunSpecs(granularitySpecs(m), opts...)
	if err != nil {
		return nil, err
	}
	res := &GranularityResult{}
	for i, tasks := range granularityTaskCounts() {
		res.Cells = append(res.Cells, granularityCell(tasks, runs[i]))
	}
	return res, nil
}

// buildChunkedJob is BuildPipelineJob with the SL and RR stages split into
// `chunks` equal tasks spread over the instances (instead of one task per
// instance).
func buildChunkedJob(sys *core.System, id int, m workload.Model, chunks int) (*core.Job, error) {
	j := core.NewJob(id)
	reg := sys.Registry()
	cnn, err := reg.Lookup("CNN-VU9P")
	if err != nil {
		return nil, err
	}
	gemm, err := reg.Lookup("GEMM-ZCU9")
	if err != nil {
		return nil, err
	}
	knn, err := reg.Lookup("KNN-ZCU9")
	if err != nil {
		return nil, err
	}

	fe := j.AddTask(accel.Task{
		Name: "fe", Stage: StageFE, Kernel: cnn,
		MACs: m.FeatureMACsPerBatch(), Source: accel.SourceSPM,
	}, accel.OnChip)
	fe.OutBytes = m.BatchFeatureBytes()

	nmCount := sys.InstanceCount(accel.NearMemory)
	slNodes := make([]*core.TaskNode, 0, chunks)
	for c := 0; c < chunks; c++ {
		n := j.AddTask(accel.Task{
			Name: fmt.Sprintf("sl%d", c), Stage: StageSL, Kernel: gemm,
			MACs:   m.ShortlistMACsPerBatch() / float64(chunks),
			Bytes:  m.ShortlistScanBytesPerBatch() / int64(chunks),
			Source: accel.SourceLocalDIMM,
		}, accel.NearMemory, fe)
		n.Pin = c % nmCount
		n.OutBytes = m.ShortlistResultBytesPerBatch() / int64(chunks)
		slNodes = append(slNodes, n)
	}

	nsCount := sys.InstanceCount(accel.NearStorage)
	for c := 0; c < chunks; c++ {
		n := j.AddTask(accel.Task{
			Name: fmt.Sprintf("rr%d", c), Stage: StageRR, Kernel: knn,
			MACs:   m.RerankMACsPerBatch() / float64(chunks),
			Bytes:  m.RerankScanBytesPerBatch() / int64(chunks),
			Source: accel.SourceSSD, Pattern: storage.RandomPages,
		}, accel.NearStorage, slNodes...)
		n.Pin = c % nsCount
		n.OutBytes = m.ResultBytesPerBatch() / int64(chunks)
		n.SinkToHost = true
	}
	return j, nil
}

// Best returns the highest-throughput cell.
func (r *GranularityResult) Best() *GranularityCell {
	best := r.Cells[0]
	for _, c := range r.Cells[1:] {
		if c.Throughput > best.Throughput {
			best = c
		}
	}
	return best
}

// Table renders the sweep.
func (r *GranularityResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Ablation — task granularity (§II-D), ReACH mapping, 4 instances/level",
		Columns: []string{"Tasks/stage", "Batches/s", "Latency ms", "GAM packets"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			fmt.Sprintf("%d", c.TasksPerStage),
			report.F(c.Throughput, 2),
			report.F(c.Latency.Milliseconds(), 1),
			fmt.Sprintf("%d", c.ControlPlane),
		)
	}
	t.AddNote("tasks must be small enough for task-level parallelism, large enough to amortise transfer/control overhead")
	return t
}
