// Package flight is the cluster's always-on black-box recorder: a set of
// bounded sliding rings that continuously retain the last W sim-
// milliseconds of observability data — per-query timelines (through a
// qtrace.Retainer on the front end's completion stream), per-domain
// barrier snapshots, router queue depths and cache counters — plus an
// online detector layer that watches the same stream for anomalies: SLO
// burn-rate breach over short and long trailing windows (multi-window,
// error-budget style), hot-shard queue divergence (max/median outstanding
// ratio), and cache hit-rate collapse. The first detector to fire freezes
// every ring, so the retained window ends exactly at the anomaly and a
// self-contained diagnostic bundle — windowed Chrome trace, straggler
// table, barrier/mailbox stats, detector verdict with the triggering time
// series — can be cut after the run (cmd/reachsim's -flight bundle
// writer).
//
// Determinism. Both recorder inputs are already serialised by the
// engine's determinism machinery: query completions fire in the front-end
// event domain in nondecreasing simulated-time order (DESIGN.md §4g), and
// barrier callbacks run on the coordinator with a worker-independent
// round structure (§4i). Every ring therefore holds a pure function of
// the simulation — byte-identical at any -j/-pj worker count — and so
// does the frozen window: the trigger is evaluated per completion from
// ring state alone, so the freeze lands on the same completion at any
// parallelism. Sliding-window maintenance is O(1) amortised per event.
//
// When the recorder is not attached, nothing in the hot path changes:
// the observer hooks stay nil and every 0-allocs/op gate holds.
package flight

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/qtrace"
	"repro/internal/sim"
)

// Detector names, as they appear in verdicts and detection counters.
const (
	DetectorSLOBurn   = "slo-burn"
	DetectorQueueSkew = "queue-divergence"
	DetectorCacheDrop = "cache-collapse"
)

// Defaults for the recorder window and the SLO objective.
const (
	DefaultWindow    = sim.Second
	DefaultObjective = 250 * sim.Millisecond
)

// Config tunes the recorder and its detectors. Zero values select the
// documented defaults.
type Config struct {
	// Window is the retention horizon: rings keep data from the trailing
	// Window of simulated time (<= 0 means DefaultWindow).
	Window sim.Time
	// Detect arms the online detectors; without it the recorder only
	// retains (an end-of-run bundle can still be cut from the live ring).
	Detect bool
	// Objective is the latency SLO the burn detector breaches against
	// (<= 0 means DefaultObjective).
	Objective sim.Time

	// ShortWindow and LongWindow are the burn detector's two trailing
	// windows (<= 0 means Window/8 and Window/2). Requiring both windows
	// to burn at once is the standard error-budget construction: the long
	// window proves the breach is sustained, the short window proves it is
	// still happening.
	ShortWindow, LongWindow sim.Time
	// BurnThreshold is the breach fraction both windows must reach
	// (<= 0 means 0.5).
	BurnThreshold float64
	// MinCompletions gates the burn detector until the long window holds
	// this many completions (<= 0 means 8), so a few slow queries at the
	// start of a run cannot trigger it. The long window carries the
	// statistical mass; the short window only has to agree in fraction.
	MinCompletions int

	// QueueRatio is the queue-divergence trigger: max/median per-node
	// outstanding requests (<= 0 means 4). QueueFloor is the minimum max
	// depth before the ratio is considered (<= 0 means 8) — an idle
	// cluster's 1/0 split is not a hot shard.
	QueueRatio float64
	QueueFloor int

	// CacheDrop is the hit-rate collapse trigger: the short-window hit
	// rate falling this far below the long-window rate (<= 0 means 0.25),
	// evaluated only once the short window saw CacheMinLookups lookups
	// (<= 0 means 32). Inert when no cache provider is attached.
	CacheDrop       float64
	CacheMinLookups uint64

	// BarrierEvery throttles barrier-ring samples to at most one per this
	// much frontier advance (<= 0 means Window/64), bounding the ring at
	// ~64 entries regardless of how fine the lookahead rounds are.
	BarrierEvery sim.Time
}

// withDefaults resolves every zero field.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Objective <= 0 {
		c.Objective = DefaultObjective
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = c.Window / 8
	}
	if c.LongWindow <= 0 {
		c.LongWindow = c.Window / 2
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 0.5
	}
	if c.MinCompletions <= 0 {
		c.MinCompletions = 8
	}
	if c.QueueRatio <= 0 {
		c.QueueRatio = 4
	}
	if c.QueueFloor <= 0 {
		c.QueueFloor = 8
	}
	if c.CacheDrop <= 0 {
		c.CacheDrop = 0.25
	}
	if c.CacheMinLookups <= 0 {
		c.CacheMinLookups = 32
	}
	if c.BarrierEvery <= 0 {
		c.BarrierEvery = c.Window / 64
	}
	return c
}

// ConfigView is the resolved configuration as it appears in a verdict.
type ConfigView struct {
	WindowMS        float64 `json:"window_ms"`
	Detect          bool    `json:"detect"`
	ObjectiveMS     float64 `json:"objective_ms"`
	ShortWindowMS   float64 `json:"short_window_ms"`
	LongWindowMS    float64 `json:"long_window_ms"`
	BurnThreshold   float64 `json:"burn_threshold"`
	MinCompletions  int     `json:"min_completions"`
	QueueRatio      float64 `json:"queue_ratio"`
	QueueFloor      int     `json:"queue_floor"`
	CacheDrop       float64 `json:"cache_drop"`
	CacheMinLookups uint64  `json:"cache_min_lookups"`
}

func (c Config) view() ConfigView {
	return ConfigView{
		WindowMS:        c.Window.Milliseconds(),
		Detect:          c.Detect,
		ObjectiveMS:     c.Objective.Milliseconds(),
		ShortWindowMS:   c.ShortWindow.Milliseconds(),
		LongWindowMS:    c.LongWindow.Milliseconds(),
		BurnThreshold:   c.BurnThreshold,
		MinCompletions:  c.MinCompletions,
		QueueRatio:      c.QueueRatio,
		QueueFloor:      c.QueueFloor,
		CacheDrop:       c.CacheDrop,
		CacheMinLookups: c.CacheMinLookups,
	}
}

// ObsPoint is one detector observation, evaluated at one query
// completion — the time series a verdict carries so the bundle shows the
// signals leading into the trigger, not just the final values.
type ObsPoint struct {
	TMS       float64 `json:"t_ms"`
	LatencyMS float64 `json:"latency_ms"`
	Breached  bool    `json:"breached"`
	// Burn fractions over the short/long trailing windows, and how many
	// completions each window held.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	ShortN    int     `json:"short_n"`
	LongN     int     `json:"long_n"`
	// Per-node outstanding-queue shape at this completion.
	QueueMax    int     `json:"queue_max"`
	QueueMedian float64 `json:"queue_median"`
	QueueRatio  float64 `json:"queue_ratio"`
	// Cache hit rates over the short/long windows (-1 when no cache).
	HitShort float64 `json:"hit_short"`
	HitLong  float64 `json:"hit_long"`
}

// obsEntry is the ring-internal observation: the point plus the raw
// cumulative values trailing-window deltas are computed from.
type obsEntry struct {
	at       sim.Time
	breached bool
	lookups  uint64
	hits     uint64
	pt       ObsPoint
}

// DomainStat is one domain's position in a barrier sample.
type DomainStat struct {
	ClockUS  float64 `json:"clock_us"`
	Pending  int     `json:"pending"`
	Mailbox  int     `json:"mailbox"`
	Executed uint64  `json:"executed"`
}

// BarrierSample is one retained barrier snapshot: the cluster frontier,
// the round counter, and every domain's clock/calendar/mailbox state.
type BarrierSample struct {
	at         sim.Time
	FrontierUS float64      `json:"frontier_us"`
	Round      uint64       `json:"round"`
	Final      bool         `json:"final"`
	Domains    []DomainStat `json:"domains"`
}

// Verdict is the detector outcome a bundle is cut around. Detector is ""
// for an end-of-run dump (flight recording without a trigger).
type Verdict struct {
	Detector    string            `json:"detector"`
	Reason      string            `json:"reason,omitempty"`
	TriggerMS   float64           `json:"trigger_ms,omitempty"`
	Config      ConfigView        `json:"config"`
	Completions uint64            `json:"completions"`
	Breaches    uint64            `json:"breaches"`
	Detections  map[string]uint64 `json:"detections,omitempty"`
	// Observed is the detector observation at the trigger (or the last
	// one recorded, for an end-of-run dump).
	Observed *ObsPoint `json:"observed,omitempty"`
	// Series is the in-window observation history, oldest first.
	Series []ObsPoint `json:"series"`
	// RouterLoads is the per-node outstanding snapshot at the freeze.
	RouterLoads []int `json:"router_loads,omitempty"`
	// CacheLookups/CacheHits are the cumulative cache counters at the
	// freeze (present only when a cache provider was attached).
	CacheLookups uint64 `json:"cache_lookups,omitempty"`
	CacheHits    uint64 `json:"cache_hits,omitempty"`
}

// Status is the recorder's live state, served by the inspector's
// /anomalies endpoint and expvars while the simulation runs.
type Status struct {
	WindowMS        float64
	Detect          bool
	Completions     uint64
	Breaches        uint64
	Retained        int
	Detections      map[string]uint64
	Frozen          bool
	TriggerDetector string
	TriggerMS       float64
	TriggerReason   string
}

// Recorder is the flight recorder: a qtrace observer (attach it to the
// cluster's completion stream with qtrace.Tee) and a sim.BarrierObserver
// (compose it with the metrics sampler via BarrierTee). Ring state is
// only ever touched from the simulation's own serialisation points — the
// front-end event domain and the coordinator barrier — which never
// overlap; the scalar status fields scraped over HTTP are behind a mutex.
type Recorder struct {
	cfg Config
	ret *qtrace.Retainer

	loads   func(dst []int) []int
	cacheFn func() (lookups, hits uint64)
	scratch []int
	median  []int

	obs     []obsEntry
	obsHead int

	bars    []BarrierSample
	barHead int

	mu          sync.Mutex
	completions uint64
	breaches    uint64
	retained    int
	detections  map[string]uint64
	frozen      bool
	verdict     *Verdict
}

// New creates a recorder with the given configuration (zero fields take
// defaults). Call AttachLog before the run so retained completions carry
// their timelines.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:        cfg,
		ret:        qtrace.NewRetainer(cfg.Window),
		detections: make(map[string]uint64),
	}
}

// Config reports the resolved configuration.
func (r *Recorder) Config() Config { return r.cfg }

// AttachLog binds the recorder's retainer to the query log whose
// completion stream it observes.
func (r *Recorder) AttachLog(l *qtrace.Log) { r.ret.Attach(l) }

// SetLoadProvider attaches the per-node outstanding-queue source (the
// cluster router's LoadsInto). Called once per completion; the recorder
// passes a reused scratch slice, so providers should fill and return it.
func (r *Recorder) SetLoadProvider(fn func(dst []int) []int) { r.loads = fn }

// SetCacheProvider attaches the cumulative cache counter source (the
// cluster's atomic cache counters: lookups and hits). Without one the
// cache-collapse detector is inert and verdicts omit cache state.
func (r *Recorder) SetCacheProvider(fn func() (lookups, hits uint64)) { r.cacheFn = fn }

// QueryDone implements qtrace.Observer as a no-op; the recorder needs
// completion instants, which arrive through QueryDoneAt.
func (r *Recorder) QueryDone(int, sim.Time) {}

// QueryDoneAt implements qtrace.ObserverAt: retain the completed query,
// fold one detector observation into the ring, and — when armed — run
// the detectors. The first trigger freezes every ring.
func (r *Recorder) QueryDoneAt(id int, at, latency sim.Time) {
	r.mu.Lock()
	if r.frozen {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	r.ret.QueryDoneAt(id, at, latency)

	e := obsEntry{at: at, breached: latency > r.cfg.Objective}
	if r.cacheFn != nil {
		e.lookups, e.hits = r.cacheFn()
	}
	e.pt = r.observe(at, latency, e)
	r.obs = append(r.obs, e)
	cut := at - r.cfg.Window
	for r.obsHead < len(r.obs) && r.obs[r.obsHead].at < cut {
		r.obs[r.obsHead] = obsEntry{}
		r.obsHead++
	}
	if r.obsHead > 64 && r.obsHead > len(r.obs)/2 {
		n := copy(r.obs, r.obs[r.obsHead:])
		for i := n; i < len(r.obs); i++ {
			r.obs[i] = obsEntry{}
		}
		r.obs = r.obs[:n]
		r.obsHead = 0
	}

	r.mu.Lock()
	r.completions++
	if e.breached {
		r.breaches++
	}
	r.retained = r.ret.Len()
	r.mu.Unlock()

	if !r.cfg.Detect {
		return
	}
	if name, reason := r.evaluate(e.pt); name != "" {
		r.trigger(name, reason, at, e.pt)
	}
}

// observe computes one detector observation from the ring state, with
// cur as the newest (not yet appended) entry.
func (r *Recorder) observe(at, latency sim.Time, cur obsEntry) ObsPoint {
	pt := ObsPoint{
		TMS:       at.Milliseconds(),
		LatencyMS: latency.Milliseconds(),
		Breached:  cur.breached,
		HitShort:  -1,
		HitLong:   -1,
	}

	// Burn fractions: completions within the trailing windows, current
	// included. The ring spans Window ≥ LongWindow, so a backward scan
	// suffices; ring population is bounded by the window, keeping the scan
	// cheap and worker-count independent.
	shortCut, longCut := at-r.cfg.ShortWindow, at-r.cfg.LongWindow
	shortN, shortB, longN, longB := 1, 0, 1, 0
	if cur.breached {
		shortB, longB = 1, 1
	}
	for i := len(r.obs) - 1; i >= r.obsHead; i-- {
		e := &r.obs[i]
		if e.at < longCut {
			break
		}
		longN++
		if e.breached {
			longB++
		}
		if e.at >= shortCut {
			shortN++
			if e.breached {
				shortB++
			}
		}
	}
	pt.ShortN, pt.LongN = shortN, longN
	pt.BurnShort = float64(shortB) / float64(shortN)
	pt.BurnLong = float64(longB) / float64(longN)

	// Queue shape: per-node outstanding depths right now.
	if r.loads != nil {
		r.scratch = r.loads(r.scratch[:0])
		if n := len(r.scratch); n > 0 {
			r.median = append(r.median[:0], r.scratch...)
			sort.Ints(r.median)
			pt.QueueMax = r.median[n-1]
			pt.QueueMedian = float64(r.median[n/2])
			if n%2 == 0 {
				pt.QueueMedian = float64(r.median[n/2-1]+r.median[n/2]) / 2
			}
			if pt.QueueMedian > 0 {
				pt.QueueRatio = float64(pt.QueueMax) / pt.QueueMedian
			} else if pt.QueueMax > 0 {
				pt.QueueRatio = float64(pt.QueueMax)
			}
		}
	}

	// Cache hit rates over the trailing windows: deltas of the cumulative
	// counters against the newest entries preceding each window start.
	if r.cacheFn != nil {
		baseS := r.baseline(shortCut)
		baseL := r.baseline(longCut)
		pt.HitShort = rate(cur.lookups-baseS.lookups, cur.hits-baseS.hits)
		pt.HitLong = rate(cur.lookups-baseL.lookups, cur.hits-baseL.hits)
	}
	return pt
}

// baseline finds the newest ring entry strictly before cut (zero counters
// when the whole ring is inside the window).
func (r *Recorder) baseline(cut sim.Time) obsEntry {
	for i := len(r.obs) - 1; i >= r.obsHead; i-- {
		if r.obs[i].at < cut {
			return r.obs[i]
		}
	}
	return obsEntry{}
}

// rate is hits/lookups, -1 when nothing was looked up.
func rate(lookups, hits uint64) float64 {
	if lookups == 0 {
		return -1
	}
	return float64(hits) / float64(lookups)
}

// evaluate runs the detectors in fixed priority order and returns the
// first that fires (empty name when none).
func (r *Recorder) evaluate(pt ObsPoint) (name, reason string) {
	c := r.cfg
	if pt.LongN >= c.MinCompletions && pt.BurnShort >= c.BurnThreshold && pt.BurnLong >= c.BurnThreshold {
		return DetectorSLOBurn, fmt.Sprintf(
			"breach rate %.0f%% over %.1f ms and %.0f%% over %.1f ms, both >= %.0f%% of completions against the %.0f ms objective",
			100*pt.BurnShort, c.ShortWindow.Milliseconds(),
			100*pt.BurnLong, c.LongWindow.Milliseconds(),
			100*c.BurnThreshold, c.Objective.Milliseconds())
	}
	if pt.QueueMax >= c.QueueFloor && pt.QueueRatio >= c.QueueRatio {
		return DetectorQueueSkew, fmt.Sprintf(
			"hot shard: max outstanding %d vs median %.1f (ratio %.1f >= %.1f)",
			pt.QueueMax, pt.QueueMedian, pt.QueueRatio, c.QueueRatio)
	}
	if pt.HitLong >= 0 && pt.HitShort >= 0 && pt.HitLong-pt.HitShort >= c.CacheDrop {
		// Gate on short-window traffic so a lull does not read as collapse.
		// The caller appended the current entry last, so obs is non-empty.
		cur := r.obs[len(r.obs)-1]
		base := r.baseline(cur.at - c.ShortWindow)
		if cur.lookups-base.lookups >= c.CacheMinLookups {
			return DetectorCacheDrop, fmt.Sprintf(
				"cache hit rate fell from %.0f%% (%.1f ms window) to %.0f%% (%.1f ms window), drop >= %.0f points",
				100*pt.HitLong, c.LongWindow.Milliseconds(),
				100*pt.HitShort, c.ShortWindow.Milliseconds(), 100*c.CacheDrop)
		}
	}
	return "", ""
}

// trigger freezes the rings and records the verdict. Exactly one trigger
// per run: every later completion and barrier sees frozen and returns.
func (r *Recorder) trigger(name, reason string, at sim.Time, pt ObsPoint) {
	v := r.buildVerdict(name, reason, at, &pt)
	r.mu.Lock()
	r.detections[name]++
	r.frozen = true
	r.verdict = v
	r.mu.Unlock()
}

// buildVerdict assembles the verdict from ring state (caller is on the
// simulation side, or post-run).
func (r *Recorder) buildVerdict(name, reason string, at sim.Time, pt *ObsPoint) *Verdict {
	v := &Verdict{
		Detector:    name,
		Reason:      reason,
		Config:      r.cfg.view(),
		Completions: r.completions,
		Breaches:    r.breaches,
		Observed:    pt,
		Series:      make([]ObsPoint, 0, len(r.obs)-r.obsHead),
	}
	if name != "" {
		v.TriggerMS = at.Milliseconds()
	}
	for i := r.obsHead; i < len(r.obs); i++ {
		v.Series = append(v.Series, r.obs[i].pt)
	}
	if r.loads != nil {
		v.RouterLoads = append([]int(nil), r.loads(make([]int, 0, 8))...)
	}
	if r.cacheFn != nil {
		v.CacheLookups, v.CacheHits = r.cacheFn()
	}
	return v
}

// OnBarrier implements sim.BarrierObserver: retain one barrier snapshot
// whenever the frontier advanced BarrierEvery past the previous sample
// (always on the terminating barrier), unless frozen.
func (r *Recorder) OnBarrier(m *sim.MultiEngine, mailboxes []int, final bool) {
	r.mu.Lock()
	frozen := r.frozen
	r.mu.Unlock()
	if frozen {
		return
	}
	now := m.Now()
	if n := len(r.bars); n > r.barHead {
		last := r.bars[n-1].at
		if final {
			if now == last {
				return
			}
		} else if now < last+r.cfg.BarrierEvery {
			return
		}
	}
	s := BarrierSample{at: now, FrontierUS: now.Microseconds(), Round: m.Rounds(), Final: final}
	for i := 0; i < m.Domains(); i++ {
		d := m.Domain(i)
		mb := 0
		if i < len(mailboxes) {
			mb = mailboxes[i]
		}
		s.Domains = append(s.Domains, DomainStat{
			ClockUS:  d.Now().Microseconds(),
			Pending:  d.Pending(),
			Mailbox:  mb,
			Executed: d.Executed(),
		})
	}
	r.bars = append(r.bars, s)
	cut := now - r.cfg.Window
	for r.barHead < len(r.bars) && r.bars[r.barHead].at < cut {
		r.bars[r.barHead] = BarrierSample{}
		r.barHead++
	}
	if r.barHead > 64 && r.barHead > len(r.bars)/2 {
		n := copy(r.bars, r.bars[r.barHead:])
		for i := n; i < len(r.bars); i++ {
			r.bars[i] = BarrierSample{}
		}
		r.bars = r.bars[:n]
		r.barHead = 0
	}
}

// Frozen reports whether a detector fired.
func (r *Recorder) Frozen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Window reports the retained horizon the bundle covers: it ends at the
// newest retained event (completion or barrier) and spans the configured
// window, clamped at time zero.
func (r *Recorder) Window() (from, to sim.Time) {
	_, to = r.ret.Bounds()
	if n := len(r.bars); n > r.barHead {
		if bt := r.bars[n-1].at; bt > to {
			to = bt
		}
	}
	from = to - r.cfg.Window
	if from < 0 {
		from = 0
	}
	return from, to
}

// WindowLog rebuilds a self-contained qtrace.Log of the retained queries
// (see qtrace.Retainer.WindowLog).
func (r *Recorder) WindowLog() *qtrace.Log { return r.ret.WindowLog() }

// WindowQueries returns copies of the retained queries, completion order.
func (r *Recorder) WindowQueries() []qtrace.Query { return r.ret.Queries() }

// BarrierWindow returns the retained barrier samples, oldest first.
func (r *Recorder) BarrierWindow() []BarrierSample {
	return append([]BarrierSample(nil), r.bars[r.barHead:]...)
}

// Verdict returns the frozen verdict when a detector fired, or assembles
// an end-of-run verdict (Detector "") over the live ring. Call after the
// run drains.
func (r *Recorder) Verdict() Verdict {
	r.mu.Lock()
	v := r.verdict
	r.mu.Unlock()
	if v == nil {
		var last *ObsPoint
		if len(r.obs) > r.obsHead {
			p := r.obs[len(r.obs)-1].pt
			last = &p
		}
		nv := r.buildVerdict("", "", 0, nil)
		nv.Observed = last
		v = nv
	}
	out := *v
	out.Detections = make(map[string]uint64, len(r.detections))
	r.mu.Lock()
	for k, n := range r.detections {
		out.Detections[k] = n
	}
	out.Completions = r.completions
	out.Breaches = r.breaches
	r.mu.Unlock()
	return out
}

// Status snapshots the live scalar state for HTTP scrapes. Safe to call
// while the simulation runs.
func (r *Recorder) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		WindowMS:    r.cfg.Window.Milliseconds(),
		Detect:      r.cfg.Detect,
		Completions: r.completions,
		Breaches:    r.breaches,
		Retained:    r.retained,
		Frozen:      r.frozen,
	}
	if len(r.detections) > 0 {
		st.Detections = make(map[string]uint64, len(r.detections))
		for k, n := range r.detections {
			st.Detections[k] = n
		}
	}
	if r.verdict != nil {
		st.TriggerDetector = r.verdict.Detector
		st.TriggerMS = r.verdict.TriggerMS
		st.TriggerReason = r.verdict.Reason
	}
	return st
}

// barrierTee fans the single barrier-observer slot out to two observers.
type barrierTee struct{ a, b sim.BarrierObserver }

func (t barrierTee) OnBarrier(m *sim.MultiEngine, mailboxes []int, final bool) {
	t.a.OnBarrier(m, mailboxes, final)
	t.b.OnBarrier(m, mailboxes, final)
}

// BarrierTee composes two barrier observers (nil collapses to the other
// side) so the flight recorder shares the MultiEngine's single observer
// slot with the metrics sampler: a notifies before b at every barrier.
func BarrierTee(a, b sim.BarrierObserver) sim.BarrierObserver {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return barrierTee{a: a, b: b}
}
