package workload

import (
	"strings"
	"testing"

	"repro/internal/kernels"
)

func TestDefaultModelValidates(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestModelMatchesPaperSetup(t *testing.T) {
	m := DefaultModel()
	if m.BatchSize != 16 {
		t.Errorf("batch = %d, paper uses 16", m.BatchSize)
	}
	if m.Dim != 96 {
		t.Errorf("D = %d, paper uses 96", m.Dim)
	}
	if m.Centroids != 1000 {
		t.Errorf("M = %d, paper uses 1000", m.Centroids)
	}
	if m.RerankCandidates != 4096 {
		t.Errorf("candidates = %d, paper uses 4096", m.RerankCandidates)
	}
	if m.DatasetSize != 1_000_000_000 {
		t.Errorf("N = %d, paper is billion-scale", m.DatasetSize)
	}
}

func TestTableIByteCounts(t *testing.T) {
	m := DefaultModel()
	// Feature store: ~355-384 GB for 1B × 96 × 4B.
	fs := m.FeatureStoreBytes()
	if fs != 384_000_000_000 {
		t.Errorf("feature store = %d, want 384e9 (Table I says ~355 GB)", fs)
	}
	// Centroid + cell store ~2.2 GB.
	cs := m.CentroidStoreBytes()
	if cs < 2.0e9 || cs > 2.4e9 {
		t.Errorf("centroid store = %.2f GB, Table I says ~2.2 GB", float64(cs)/1e9)
	}
	// Model parameters ~552 MB.
	if pb := m.CNN.ParamBytes(); pb < 545e6 || pb > 560e6 {
		t.Errorf("param bytes = %d", pb)
	}
}

func TestTrafficModelCalibration(t *testing.T) {
	m := DefaultModel()
	// Rerank streams Probes × ScanFraction × cluster = 8 × 5% × 384 MB
	// ≈ 153.6 MB per query, ~2.46 GB per batch — the traffic that makes
	// rerank movement dominate Fig. 8 (see DESIGN.md).
	perQuery := m.RerankScanBytesPerQuery()
	if perQuery < 150e6 || perQuery > 160e6 {
		t.Errorf("rerank scan/query = %.1f MB, want ~153.6", float64(perQuery)/1e6)
	}
	perBatch := m.RerankScanBytesPerBatch()
	if perBatch != perQuery*16 {
		t.Errorf("rerank scan/batch = %d, want 16× per-query", perBatch)
	}
	// Shortlist streams the whole 2.2 GB working set per batch.
	if m.ShortlistScanBytesPerBatch() != m.CentroidStoreBytes() {
		t.Error("shortlist scan != centroid store")
	}
	// Inter-level payloads are tiny compared to stage traffic — the point
	// of the ReACH mapping.
	if m.BatchFeatureBytes() >= 1e6 {
		t.Errorf("feature payload = %d B, should be KB-scale", m.BatchFeatureBytes())
	}
	if m.ResultBytesPerBatch() >= 1e6 {
		t.Errorf("result payload = %d B, should be KB-scale", m.ResultBytesPerBatch())
	}
}

func TestMACModel(t *testing.T) {
	m := DefaultModel()
	// FE: ~15.5 GMAC × 16.
	fe := m.FeatureMACsPerBatch()
	if fe < 240e9 || fe > 255e9 {
		t.Errorf("FE MACs/batch = %v", fe)
	}
	// SL GeMM: 16×96×1000 + broadcast adds.
	sl := m.ShortlistMACsPerBatch()
	if sl != 16*96*1000+16*1000 {
		t.Errorf("SL MACs/batch = %v", sl)
	}
	// RR: one MAC per dimension per scanned vector.
	scanned := float64(m.RerankScanBytesPerQuery()) / 384.0
	if got := m.RerankMACsPerQuery(); got != scanned*96 {
		t.Errorf("RR MACs/query = %v, want %v", got, scanned*96)
	}
}

func TestModelValidateCatchesErrors(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.BatchSize = 0 },
		func(m *Model) { m.Dim = -1 },
		func(m *Model) { m.Centroids = 0 },
		func(m *Model) { m.DatasetSize = 0 },
		func(m *Model) { m.Probes = 0 },
		func(m *Model) { m.Probes = m.Centroids + 1 },
		func(m *Model) { m.ScanFraction = 0 },
		func(m *Model) { m.ScanFraction = 1.5 },
		func(m *Model) { m.TopK = 0 },
		func(m *Model) { m.TopK = m.RerankCandidates + 1 },
		func(m *Model) { m.CNN = nil },
	}
	for i, mutate := range cases {
		m := DefaultModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableI(DefaultModel())
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(rows))
	}
	wantStages := []string{"Feature extraction", "Short-list retrieval", "Rerank", "Reverse lookup"}
	for i, w := range wantStages {
		if rows[i].Stage != w {
			t.Errorf("row %d = %q, want %q", i, rows[i].Stage, w)
		}
	}
	// Memory requirements must be strictly increasing down the pipeline.
	for i := 1; i < len(rows); i++ {
		if rows[i].MemoryBytes <= rows[i-1].MemoryBytes {
			t.Errorf("Table I memory not increasing at row %d", i)
		}
	}
	if !strings.Contains(rows[0].MemoryNote, "compressed") {
		t.Error("FE row should mention compressed size")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	p := SyntheticParams{N: 500, D: 16, Clusters: 8, Spread: 0.1, Seed: 5}
	a, b := Synthetic(p), Synthetic(p)
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != b.Vectors.Data[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	p.Seed = 6
	c := Synthetic(p)
	same := true
	for i := range a.Vectors.Data {
		if a.Vectors.Data[i] != c.Vectors.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestSyntheticClusterStructure(t *testing.T) {
	p := SyntheticParams{N: 2000, D: 24, Clusters: 10, Spread: 0.05, Seed: 9}
	ds := Synthetic(p)
	if ds.N() != 2000 || ds.D() != 24 {
		t.Fatalf("shape %d×%d", ds.N(), ds.D())
	}
	// Every vector must be closest to its own generating centre far more
	// often than chance (tight spread ⇒ ~always).
	correct := 0
	for i := 0; i < ds.N(); i++ {
		best, bestD := -1, float32(1e30)
		for c := 0; c < p.Clusters; c++ {
			if d := kernels.SquaredL2(ds.Vectors.Row(i), ds.Centers.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		if best == ds.TrueCluster[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(ds.N()); frac < 0.95 {
		t.Errorf("only %.2f of vectors nearest their generating centre", frac)
	}
	// Vectors are L2-normalised.
	for i := 0; i < 10; i++ {
		n := kernels.SquaredNorm(ds.Vectors.Row(i))
		if n < 0.99 || n > 1.01 {
			t.Errorf("vector %d norm² = %v", i, n)
		}
	}
}

func TestQueriesNearDatabase(t *testing.T) {
	ds := Synthetic(SyntheticParams{N: 1000, D: 16, Clusters: 4, Spread: 0.05, Seed: 3})
	q := ds.Queries(8, 0.01, 17)
	if q.Rows != 8 || q.Cols != 16 {
		t.Fatalf("query shape %dx%d", q.Rows, q.Cols)
	}
	// Each query's nearest database vector should be very close.
	for b := 0; b < q.Rows; b++ {
		nn := kernels.BruteForceKNN(ds.Vectors, q.Row(b), 1)
		if nn[0].Dist > 0.01 {
			t.Errorf("query %d nearest dist = %v, want tiny", b, nn[0].Dist)
		}
	}
}

func TestImagesDeterministicAndShaped(t *testing.T) {
	a := Images(3, 3, 16, 16, 7)
	b := Images(3, 3, 16, 16, 7)
	if len(a) != 3 {
		t.Fatalf("got %d images", len(a))
	}
	for i := range a {
		if a[i].C != 3 || a[i].H != 16 || a[i].W != 16 {
			t.Fatalf("image %d shape %dx%dx%d", i, a[i].C, a[i].H, a[i].W)
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatal("same seed images differ")
			}
		}
	}
	// Images differ from one another.
	if a[0].Data[0] == a[1].Data[0] && a[0].Data[100] == a[1].Data[100] {
		t.Error("images in a batch look identical")
	}
}
