// Package sim provides the discrete-event simulation engine underlying the
// ReACH compute-hierarchy model: a virtual clock with picosecond resolution,
// an event calendar, frequency-domain clocks, and shared-bandwidth links
// with FIFO queueing used to model memory channels, buses and IO
// interconnects.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in picoseconds. Picosecond resolution lets the
// engine represent individual cycles of multi-GHz clock domains exactly
// (1 GHz period = 1000 ps) while an int64 still covers over 100 days of
// simulated time.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// FromSeconds converts floating-point seconds to simulated Time,
// rounding to the nearest picosecond and saturating at MaxTime.
func FromSeconds(s float64) Time {
	ps := s * float64(Second)
	if ps >= float64(math.MaxInt64) {
		return MaxTime
	}
	if ps <= 0 {
		return 0
	}
	return Time(ps + 0.5)
}

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock describes a frequency domain (an FPGA kernel clock, a DRAM bus
// clock, a PCIe symbol clock, ...). The zero Clock is invalid; use NewClock.
type Clock struct {
	freqHz float64
}

// NewClock returns a clock domain running at freqHz hertz.
// It panics if freqHz is not positive, since a zero-frequency domain can
// never make progress and indicates a configuration error.
func NewClock(freqHz float64) Clock {
	if freqHz <= 0 || math.IsNaN(freqHz) || math.IsInf(freqHz, 0) {
		panic(fmt.Sprintf("sim: invalid clock frequency %v Hz", freqHz))
	}
	return Clock{freqHz: freqHz}
}

// MHz is a convenience constructor for megahertz clock domains
// (the unit used by the paper's Table III synthesis reports).
func MHz(f float64) Clock { return NewClock(f * 1e6) }

// FreqHz reports the clock frequency in hertz.
func (c Clock) FreqHz() float64 { return c.freqHz }

// Period returns the duration of one cycle, rounded to the nearest
// picosecond.
func (c Clock) Period() Time {
	return Time(float64(Second)/c.freqHz + 0.5)
}

// Cycles returns the duration of n cycles. Computed in floating point from
// the frequency (not by multiplying the rounded period) so long intervals do
// not accumulate rounding error.
func (c Clock) Cycles(n uint64) Time {
	d := float64(n) / c.freqHz * float64(Second)
	if d >= float64(math.MaxInt64) {
		return MaxTime
	}
	return Time(d + 0.5)
}

// CyclesIn reports how many full cycles of this clock fit in d.
func (c Clock) CyclesIn(d Time) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d.Seconds() * c.freqHz)
}
