// Package cbir implements the content-based image retrieval pipeline of
// the case study (paper §IV): offline k-means clustering of the feature
// database, the IVF (inverted-file) index, batched shortlist retrieval via
// the Eq. 1 decomposition, candidate gathering, KNN rerank via Eq. 2, and
// recall evaluation against exhaustive search.
package cbir

import (
	"fmt"
	"math/rand"

	"repro/internal/kernels"
)

// KMeansResult holds the offline clustering output.
type KMeansResult struct {
	Centroids  *kernels.Matrix // K × D
	Assign     []int           // N, cluster per point
	Iterations int             // iterations actually run
	Moved      int             // points that changed cluster in the last iteration
}

// KMeans runs Lloyd's algorithm with k-means++ style seeding (first centre
// uniform, subsequent centres from distinct random points) for at most
// maxIters iterations, stopping early on convergence. Deterministic for a
// given seed.
func KMeans(data *kernels.Matrix, k, maxIters int, seed int64) (*KMeansResult, error) {
	n, d := data.Rows, data.Cols
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cbir: kmeans k=%d invalid for n=%d", k, n)
	}
	if maxIters <= 0 {
		return nil, fmt.Errorf("cbir: kmeans needs maxIters >= 1")
	}
	rng := rand.New(rand.NewSource(seed))

	// Seed centroids from distinct points.
	centroids := kernels.NewMatrix(k, d)
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		copy(centroids.Row(c), data.Row(perm[c]))
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, k)
	res := &KMeansResult{Centroids: centroids, Assign: assign}

	for iter := 0; iter < maxIters; iter++ {
		moved := 0
		// Assignment step.
		for i := 0; i < n; i++ {
			row := data.Row(i)
			best, bestD := 0, kernels.SquaredL2(row, centroids.Row(0))
			for c := 1; c < k; c++ {
				if dist := kernels.SquaredL2(row, centroids.Row(c)); dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				moved++
				assign[i] = best
			}
		}
		res.Iterations = iter + 1
		res.Moved = moved
		if moved == 0 {
			break
		}
		// Update step.
		for i := range centroids.Data {
			centroids.Data[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			crow := centroids.Row(c)
			drow := data.Row(i)
			for j := range crow {
				crow[j] += drow[j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster from a random point.
				copy(centroids.Row(c), data.Row(rng.Intn(n)))
				continue
			}
			inv := 1 / float32(counts[c])
			crow := centroids.Row(c)
			for j := range crow {
				crow[j] *= inv
			}
		}
	}
	return res, nil
}
