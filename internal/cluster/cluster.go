// Package cluster scales the single-server ReACH system out to a
// datacenter deployment: N composable nodes (core.NewNode), the shortlist
// database sharded with replication across them, and a front-end tier that
// scatter-gathers every query — feature extraction on the query's home
// node, the feature vector fanned out over an inter-node network to one
// replica per shard, shard-local shortlist+rerank, and a merge that
// completes the query once all (or a quorum of) shard responses return.
// Routing between replicas is pluggable (hash affinity, round robin, power
// of two choices); per-query Zipf popularity skews both which replicas
// hash routing hammers and how much work each shard contributes, which is
// exactly the regime where load-aware routing earns its tail latency.
//
// The cluster is partitioned into event domains for parallel simulation:
// the front end owns domain 0 and each node owns its own domain, wired
// with sim.CrossLink egress whose fixed latency is the conservative
// lookahead. Everything with shared mutable state — the router, the query
// log, the merge — lives in the front-end domain; nodes only ever touch
// their own hardware and write per-query timing slots that the front end
// reads after a synchronizing delivery. A cluster run is therefore as
// deterministic as a single-server run: byte-identical at any -pj (and
// any -j).
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Cluster is a running N-node deployment partitioned over 1+N event
// domains: domain 0 is the front end (router, query log, merge, result
// cache), domain 1+i is node i (its full hardware platform plus its
// network ingress and egress).
type Cluster struct {
	me     *sim.MultiEngine
	fe     *sim.Engine   // front-end domain
	dom    []*sim.Engine // per-node domains (index = node id)
	cfg    config.ClusterConfig
	model  workload.Model
	nodes  []*core.System
	in     []*sim.Link      // per-node network ingress (node domain, latency-free)
	out    []*sim.CrossLink // per-node network egress (carries the wire latency)
	feIn   *sim.Link        // front-end gather ingress
	router *Router
	qlog   *qtrace.Log

	allNodes    []int
	replicaSets [][]int   // shard → candidate replica nodes, precomputed
	needed      int       // shard responses that complete a query
	popW        []float64 // cumulative popularity over cfg.ContentItems
	shardW      []float64 // per-shard work weights (rotated per content)
	netLat      sim.Time

	// Front-end result cache + in-flight coalescing (nil/unused when
	// cfg.CacheEntries == 0 — the query path is then byte-identical to a
	// build without the cache).
	cache     *feCache
	co        *coalescer
	hitLat    sim.Time // front-end serve latency of a cache hit
	attachLat sim.Time // merge-to-completion latency of a coalesced query

	// Precomputed qlog interval labels, so the per-query path formats
	// nothing.
	detImg   []string   // client-node<home>
	detExec  []string   // node<home>
	detScat  [][]string // node<home>-node<replica>
	detShard [][]string // shard<s>@node<replica>
	detResp  []string   // node<replica>-fe

	// Front-end-domain state.
	submitted int
	completed int
	qpool     []*query // recycled query objects (scatter/merge state)

	// Straggler attribution (EnableStragglers): one record per merged
	// scatter, written in the front-end domain at merge time. Off by
	// default so the bare run stores nothing.
	trackStragglers bool
	stragglers      []StragglerRecord

	// Node domains report build/submit failures here.
	errMu sync.Mutex
	err   error
}

// New assembles a cluster per cfg: nodes node0..nodeN-1 with prefixed
// registries on their own event domains, an ingress and an egress link per
// node, the front-end domain with the router, and a query log configured
// by qopt (pass qtrace.Options{} for defaults; the log always exists — the
// latency sketch is the cluster's primary output).
func New(cfg config.ClusterConfig, m workload.Model, qopt qtrace.Options) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	policy, err := ParsePolicy(cfg.RoutePolicy)
	if err != nil {
		return nil, err
	}
	me := sim.NewMultiEngine(1 + cfg.Nodes)
	me.SetWorkers(cfg.ParallelDomains)
	c := &Cluster{
		me:     me,
		fe:     me.Domain(0),
		cfg:    cfg,
		model:  m,
		router: NewRouter(policy, cfg.Nodes, cfg.RouteSeed),
		qlog:   qtrace.NewLog(qopt),
		needed: cfg.Quorum,
		netLat: sim.FromSeconds(cfg.NetLatencyUS * 1e-6),
	}
	if c.needed == 0 {
		c.needed = cfg.Shards
	}
	bw := cfg.NetGBps * config.GBps
	// The wire latency is charged exactly once per hop, by the cross-domain
	// egress links — it is the conservative lookahead that lets domains run
	// in parallel. Ingress links are pure bandwidth resources.
	c.feIn = sim.NewLink(c.fe, "cluster.net.fe.in", bw, 0)
	for i := 0; i < cfg.Nodes; i++ {
		d := me.Domain(1 + i)
		node, err := core.NewNode(d, cfg.Node, fmt.Sprintf("node%d.", i))
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.dom = append(c.dom, d)
		c.nodes = append(c.nodes, node)
		c.in = append(c.in, sim.NewLink(d, fmt.Sprintf("cluster.net.node%d.in", i), bw, 0))
		c.out = append(c.out, sim.NewCrossLink(d, fmt.Sprintf("cluster.net.node%d.out", i), bw, c.netLat))
		c.allNodes = append(c.allNodes, i)
		c.detImg = append(c.detImg, fmt.Sprintf("client-node%d", i))
		c.detExec = append(c.detExec, fmt.Sprintf("node%d", i))
		c.detResp = append(c.detResp, fmt.Sprintf("node%d-fe", i))
		scat := make([]string, cfg.Nodes)
		for j := 0; j < cfg.Nodes; j++ {
			scat[j] = fmt.Sprintf("node%d-node%d", i, j)
		}
		c.detScat = append(c.detScat, scat)
	}
	for s := 0; s < cfg.Shards; s++ {
		c.replicaSets = append(c.replicaSets, cfg.ReplicaNodes(s))
		lbl := make([]string, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			lbl[i] = fmt.Sprintf("shard%d@node%d", s, i)
		}
		c.detShard = append(c.detShard, lbl)
	}
	// Cumulative popularity for content sampling.
	w := workload.ZipfWeights(cfg.ContentItems, cfg.SkewExponent)
	c.popW = make([]float64, len(w))
	var cum float64
	for i, wi := range w {
		cum += wi
		c.popW[i] = cum
	}
	c.shardW = workload.ZipfWeights(cfg.Shards, cfg.SkewExponent)
	if cfg.CacheEntries > 0 {
		c.cache = newFECache(cfg.CacheEntries, sim.FromSeconds(cfg.CacheTTLMS*1e-3))
		c.co = newCoalescer()
		c.hitLat = sim.FromSeconds(cfg.CacheHitUS * 1e-6)
		c.attachLat = sim.FromSeconds(cfg.CoalesceUS * 1e-6)
		c.cache.registered = c.fe.Stats().Register("cluster.fe.cache", c.cache)
	}
	return c, nil
}

// Engine exposes the front-end domain; its Stats() registry is shared by
// every domain, so one registry walk covers the whole cluster.
func (c *Cluster) Engine() *sim.Engine { return c.fe }

// Multi exposes the domain coordinator (per-domain progress, total event
// counts, barrier rounds).
func (c *Cluster) Multi() *sim.MultiEngine { return c.me }

// Config reports the cluster configuration.
func (c *Cluster) Config() config.ClusterConfig { return c.cfg }

// Nodes returns the member systems (index = node id).
func (c *Cluster) Nodes() []*core.System { return c.nodes }

// RouterStats exposes the front-end router (routed counts, imbalance).
func (c *Cluster) RouterStats() *Router { return c.router }

// QLog exposes the cluster-level query log.
func (c *Cluster) QLog() *qtrace.Log { return c.qlog }

// CacheEnabled reports whether the front-end result cache is on.
func (c *Cluster) CacheEnabled() bool { return c.cache != nil }

// CacheStats snapshots the front-end cache and coalescing accounting
// (zero value when the cache is disabled). The counters are atomics, so
// live tooling may call this while the simulation runs.
func (c *Cluster) CacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	return c.cache.stats()
}

// PeakPending reports the singleflight table's high-water mark: how many
// distinct contents had scatters in flight at once (0 when the cache is
// disabled). Read after the run drains.
func (c *Cluster) PeakPending() int {
	if c.co == nil {
		return 0
	}
	return c.co.PeakPending()
}

// AttachSpans creates one GAM decision-span log per node and attaches
// them. Each log is appended to only by its owning node's event domain,
// so recording needs no synchronization; merge them for export with
// metrics.MergeSpans. Call before Run.
func (c *Cluster) AttachSpans() []*metrics.SpanLog {
	logs := make([]*metrics.SpanLog, len(c.nodes))
	for i, n := range c.nodes {
		logs[i] = metrics.NewSpanLog()
		n.GAM().SetSpanLog(logs[i])
	}
	return logs
}

// EnableStragglers turns on per-merge straggler attribution: every
// scattered query records which shard leg completed its merge and where
// that leg's time went. Off by default — the bare run stores nothing.
// Call before Run.
func (c *Cluster) EnableStragglers() { c.trackStragglers = true }

// Stragglers returns the per-query straggler records in merge order
// (empty unless EnableStragglers was called). The slice is the
// cluster's own; callers must not mutate it.
func (c *Cluster) Stragglers() []StragglerRecord { return c.stragglers }

// Completed reports how many queries have merged.
func (c *Cluster) Completed() int { return c.completed }

// Submitted reports how many queries have been scheduled.
func (c *Cluster) Submitted() int { return c.submitted }

// content samples the query-popularity universe for query qid —
// deterministic (a hash of qid drives inverse-CDF sampling, no shared RNG
// state), so the same qid is the same content in every run.
func (c *Cluster) content(qid int) int {
	u := float64(mix64(uint64(qid)+0x243f6a8885a308d3)) / (1 << 63) / 2
	for i, cum := range c.popW {
		if u <= cum {
			return i
		}
	}
	return len(c.popW) - 1
}

// shardFrac is the fraction of query content's work carried by shard s:
// the Zipf shard weights rotated by content, so every query has one hot
// shard and popular contents agree on which.
func (c *Cluster) shardFrac(content, s int) float64 {
	return c.shardW[(s+content)%c.cfg.Shards]
}

// SubmitAt schedules one query arrival at the front end at time `at` and
// returns its query id. Call before Run; arrivals are processed inside
// the event loop in time order.
func (c *Cluster) SubmitAt(at sim.Time) int {
	id := c.submitted
	c.submitted++
	c.fe.AtCall(at, c, uint64(id)<<qShift|qArrive)
	return id
}

// Run drains all domains and verifies every submitted query merged.
func (c *Cluster) Run() error {
	c.me.Run()
	if c.err != nil {
		return c.err
	}
	if c.completed != c.submitted {
		return fmt.Errorf("cluster: %d of %d queries unmerged after run", c.submitted-c.completed, c.submitted)
	}
	return nil
}

// fail records the first internal error and stops scheduling new work.
// Node domains call it concurrently under -pj, hence the mutex.
func (c *Cluster) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// NodeBusyPct reports node i's mean accelerator-fabric utilisation over
// the run so far, in percent, averaged across its instances.
func (c *Cluster) NodeBusyPct(i int) float64 {
	now := c.me.Now()
	if now == 0 {
		return 0
	}
	var busy sim.Time
	var count int
	for _, l := range []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage} {
		for _, a := range c.nodes[i].Accelerators(l) {
			busy += a.Fabric().Busy()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return 100 * float64(busy) / float64(now) / float64(count)
}

// MeanBusyPct averages NodeBusyPct over the nodes.
func (c *Cluster) MeanBusyPct() float64 {
	var sum float64
	for i := range c.nodes {
		sum += c.NodeBusyPct(i)
	}
	return sum / float64(len(c.nodes))
}

// Query lifecycle phases, encoded in the event arg: low bits select the
// phase, high bits carry the shard index (or, for qArrive, the query id).
// Each phase names the domain it runs in — the lifecycle alternates
// between the front end and the nodes, every cross-domain leg riding a
// CrossLink or a latency-only export.
const (
	qArrive        uint64 = iota // FE: query hits the front end (arg>>qShift = qid)
	qImageIn                     // home node: query image landed at ingress
	qFeatures                    // home node: image transfer done, submit FE job
	qFeatDone                    // FE: home's completion notice (logging + router credit)
	qShardIn                     // replica node: feature vector landed at ingress
	qShardStart                  // replica node: ingress transfer done, submit shard job
	qRespIn                      // FE: shard response landed at gather ingress
	qResponse                    // FE: response transfer done, merge + logging
	qCacheServe                  // FE: cache hit completes (arg>>qShift = qid)
	qCoalesceServe               // FE: coalesced query completes after its lead's merge
	qShift         = 4
)

// Interval detail labels of the cache-served completions.
const (
	detCacheHit = "fe-cache"
	detCoalesce = "fe-coalesce"
)

// query is one in-flight scatter-gather request; it is its own event
// handler, so the whole lifecycle schedules without closures (job
// completion callbacks are the one exception — jobs already allocate).
// Queries are pooled: the object and its per-shard slices recycle once the
// last shard response merges, so steady-state submission allocates no
// scatter/merge state.
//
// Concurrency contract under -pj: the front end writes the routing fields
// at arrival, before the query is exported to any node; each timing slot
// is written by exactly one domain (imgEnd/feStart/feEnd by the home,
// shardExecStart/End[s] by shard s's replica) and read by the front end
// only after a synchronizing mailbox delivery from the writer.
type query struct {
	c       *Cluster
	id      int
	content int
	home    int
	replica []int

	arrival    sim.Time
	imgEnd     sim.Time
	feStart    sim.Time
	feDispatch sim.Time // FE job's first task dispatch (feStart→feDispatch is queue wait)
	feEnd      sim.Time

	shardExecStart []sim.Time // shard job submitted on the replica
	shardDispatch  []sim.Time // shard job's first task dispatch (queue wait ends)
	shardExecEnd   []sim.Time

	// Critical-path decomposition of shard s's replica job (scheduling
	// queue wait, device time, intra-node DMA) written by the replica's
	// domain at completion — see core.Job.CriticalPath. Only filled when
	// straggler tracking is on.
	shardQueue []sim.Time
	shardExec  []sim.Time
	shardXfer  []sim.Time

	responses int
	merged    bool
}

// getQuery pops a recycled query (or builds one) and initialises it for
// query id carrying content. Front-end domain only.
func (c *Cluster) getQuery(id, content int) *query {
	var q *query
	if n := len(c.qpool); n > 0 {
		q = c.qpool[n-1]
		c.qpool = c.qpool[:n-1]
		q.responses = 0
		q.merged = false
	} else {
		q = &query{
			c:              c,
			replica:        make([]int, c.cfg.Shards),
			shardExecStart: make([]sim.Time, c.cfg.Shards),
			shardDispatch:  make([]sim.Time, c.cfg.Shards),
			shardExecEnd:   make([]sim.Time, c.cfg.Shards),
			shardQueue:     make([]sim.Time, c.cfg.Shards),
			shardExec:      make([]sim.Time, c.cfg.Shards),
			shardXfer:      make([]sim.Time, c.cfg.Shards),
		}
	}
	q.id = id
	q.content = content
	return q
}

// Fire handles the front-end phases carrying a query id: arrival (cache
// consultation + routing + scatter) and the two cache-served completions.
// Everything here runs in the front-end domain in arrival/event order, so
// the cache, the singleflight table and the router's RNG state evolve
// deterministically regardless of how node domains interleave.
func (c *Cluster) Fire(eng *sim.Engine, arg uint64) {
	id := int(arg >> qShift)
	now := eng.Now()
	switch arg & (1<<qShift - 1) {
	case qCacheServe:
		c.serveCached(id, now, detCacheHit)
		return
	case qCoalesceServe:
		c.serveCached(id, now, detCoalesce)
		return
	}
	// qArrive.
	content := c.content(id)
	c.qlog.Submitted(id, id, now)
	if c.cache != nil {
		if hit, _ := c.cache.lookup(content, now); hit {
			// Serve from the front-end tier: no routing, no scatter, the
			// whole query is one cache lookup + response.
			eng.AtCall(now+c.hitLat, c, uint64(id)<<qShift|qCacheServe)
			return
		}
		if c.co.attach(content, id) {
			// A scatter for this content is already in flight: attach to
			// it and share its gathered result at merge time.
			c.cache.coalesced.Add(1)
			return
		}
		c.co.begin(content, id) // this query leads the scatter
	}
	q := c.getQuery(id, content)
	q.arrival = now
	q.home = c.router.Pick(uint64(q.content), c.allNodes)
	for s := 0; s < c.cfg.Shards; s++ {
		q.replica[s] = c.router.Pick(uint64(q.content), c.replicaSets[s])
	}
	// Latency-only control export: the image bytes occupy the home's
	// ingress link once they arrive in its domain.
	eng.ExportAt(c.dom[q.home], now+c.netLat, q, qImageIn)
}

// serveCached completes query id from the front-end tier at time now: the
// cache-hit (or coalesced-attach) interval covers arrival to completion,
// then the query merges without ever having scattered.
func (c *Cluster) serveCached(id int, now sim.Time, detail string) {
	if q := c.qlog.Query(id); q != nil {
		c.qlog.Add(id, qtrace.Interval{
			Phase: qtrace.PhaseCacheHit, Stage: stageFE,
			Detail: detail,
			Start:  q.Arrival, End: now,
		})
	}
	c.completed++
	c.qlog.Completed(id, now)
}

// Fire advances the query's lifecycle (all phases after arrival).
func (q *query) Fire(eng *sim.Engine, arg uint64) {
	c := q.c
	now := eng.Now()
	shard := int(arg >> qShift)
	switch arg & (1<<qShift - 1) {
	case qImageIn: // home node domain
		q.imgEnd = c.in[q.home].TransferAt(now, c.model.BatchImageBytes())
		eng.AtCall(q.imgEnd, q, qFeatures)

	case qFeatures: // home node domain
		q.feStart = now
		j, err := buildFEJob(c.nodes[q.home], q.id*(c.cfg.Shards+1), c.model)
		if err != nil {
			c.fail(err)
			return
		}
		j.OnDone(func(jj *core.Job) { q.featDone(jj) })
		if err := c.nodes[q.home].GAM().Submit(j); err != nil {
			c.fail(err)
		}

	case qShardIn: // replica node domain
		t := c.in[q.replica[shard]].TransferAt(now, c.model.BatchFeatureBytes())
		eng.AtCall(t, q, uint64(shard)<<qShift|qShardStart)

	case qShardStart: // replica node domain
		node := q.replica[shard]
		q.shardExecStart[shard] = now
		j, err := buildShardJob(c.nodes[node], q.id*(c.cfg.Shards+1)+1+shard,
			c.model, c.shardFrac(q.content, shard))
		if err != nil {
			c.fail(err)
			return
		}
		s := shard
		j.OnDone(func(jj *core.Job) { q.shardDone(s, jj) })
		if err := c.nodes[node].GAM().Submit(j); err != nil {
			c.fail(err)
		}

	case qFeatDone: // front-end domain
		c.router.Done(q.home)
		c.qlog.Add(q.id, qtrace.Interval{
			Phase: qtrace.PhaseXfer, Stage: stageFE,
			Detail: c.detImg[q.home],
			Start:  q.arrival, End: q.imgEnd,
		})
		if q.feDispatch > q.feStart {
			c.qlog.Add(q.id, qtrace.Interval{
				Phase: qtrace.PhaseQueue, Stage: stageFE, Level: "onchip",
				Detail: c.detExec[q.home],
				Start:  q.feStart, End: q.feDispatch,
			})
		}
		c.qlog.Add(q.id, qtrace.Interval{
			Phase: qtrace.PhaseExec, Stage: stageFE, Level: "onchip",
			Detail: c.detExec[q.home],
			Start:  q.feDispatch, End: q.feEnd,
		})

	case qRespIn: // front-end domain
		respBytes := scaleBytes(c.model.ResultBytesPerBatch(), c.shardFrac(q.content, shard))
		t := c.feIn.TransferAt(now, respBytes)
		eng.AtCall(t, q, uint64(shard)<<qShift|qResponse)

	case qResponse: // front-end domain
		node := q.replica[shard]
		c.router.Done(node)
		if node != q.home {
			c.qlog.Add(q.id, qtrace.Interval{
				Phase: qtrace.PhaseXfer, Stage: stageSL,
				Detail: c.detScat[q.home][node],
				Start:  q.feEnd, End: q.shardExecStart[shard],
			})
		}
		if q.shardDispatch[shard] > q.shardExecStart[shard] {
			c.qlog.Add(q.id, qtrace.Interval{
				Phase: qtrace.PhaseQueue, Stage: stageRR, Level: "nearmem+nearstor",
				Detail: c.detShard[shard][node],
				Start:  q.shardExecStart[shard], End: q.shardDispatch[shard],
			})
		}
		c.qlog.Add(q.id, qtrace.Interval{
			Phase: qtrace.PhaseExec, Stage: stageRR, Level: "nearmem+nearstor",
			Detail: c.detShard[shard][node],
			Start:  q.shardDispatch[shard], End: q.shardExecEnd[shard],
		})
		c.qlog.Add(q.id, qtrace.Interval{
			Phase: qtrace.PhaseXfer, Stage: stageRR,
			Detail: c.detResp[node],
			Start:  q.shardExecEnd[shard], End: now,
		})
		q.responses++
		if !q.merged && q.responses >= c.needed {
			q.merged = true
			c.completed++
			if c.trackStragglers {
				c.recordStraggler(q, shard, now)
			}
			c.qlog.Completed(q.id, now)
			if c.cache != nil {
				// The merged result fills the cache, and every query that
				// coalesced onto this scatter completes off it.
				c.cache.fill(q.content, now)
				if p := c.co.finish(q.content); p != nil {
					for _, w := range p.waiters {
						eng.AtCall(now+c.attachLat, c, uint64(w)<<qShift|qCoalesceServe)
					}
					c.co.release(p)
				}
			}
		}
		if q.responses == c.cfg.Shards {
			c.qpool = append(c.qpool, q) // last response: recycle
		}
	}
}

// featDone runs at FE-job completion in the home node's domain: notify the
// front end (latency-only control message, off the critical path) and fan
// the feature vector out to one replica per shard — co-located shards skip
// the wire entirely, remote ones ride the home's egress CrossLink.
func (q *query) featDone(j *core.Job) {
	c := q.c
	home := c.dom[q.home]
	now := home.Now()
	q.feDispatch, _ = j.FirstDispatch()
	q.feEnd = now
	home.ExportAt(c.fe, now+c.netLat, q, qFeatDone)
	featBytes := c.model.BatchFeatureBytes()
	for s := 0; s < c.cfg.Shards; s++ {
		node := q.replica[s]
		if node == q.home {
			home.AtCall(now, q, uint64(s)<<qShift|qShardStart)
			continue
		}
		c.out[q.home].Send(c.dom[node], featBytes, q, uint64(s)<<qShift|qShardIn)
	}
}

// shardDone runs at a shard job's completion in its replica's domain: send
// the shard's rerank results back to the front end for the merge. The
// gather always crosses the wire — the front end is its own tier.
func (q *query) shardDone(shard int, j *core.Job) {
	c := q.c
	node := q.replica[shard]
	d := c.dom[node]
	q.shardDispatch[shard], _ = j.FirstDispatch()
	q.shardExecEnd[shard] = d.Now()
	if c.trackStragglers {
		q.shardQueue[shard], q.shardExec[shard], q.shardXfer[shard] = j.CriticalPath()
	}
	respBytes := scaleBytes(c.model.ResultBytesPerBatch(), c.shardFrac(q.content, shard))
	c.out[node].Send(c.fe, respBytes, q, uint64(shard)<<qShift|qRespIn)
}
