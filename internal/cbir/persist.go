package cbir

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/kernels"
)

// Index persistence: the offline stage (k-means over the full database) is
// the expensive part of a CBIR deployment, and its artifacts — centroids,
// norms, inverted lists — are exactly the fixed buffers the ReACH config
// pins at each level (Listing 2 reads them from files like
// "./feature_db0"). This file gives the index a compact binary
// serialisation so deployments can build once and load per process.

const (
	indexMagic   = 0x52454143 // "REAC"
	indexVersion = 1
)

// WriteTo serialises the index (centroids, norms, lists and the vector
// store) to w. The format is little-endian with a magic/version header.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
			n += int64(binary.Size(v))
		}
		return nil
	}
	header := []any{
		uint32(indexMagic), uint32(indexVersion),
		int64(ix.Vectors.Rows), int64(ix.Vectors.Cols), int64(ix.M()),
	}
	if err := put(header...); err != nil {
		return n, err
	}
	if err := put(ix.Vectors.Data, ix.Centroids.Data, ix.CentroidNorm); err != nil {
		return n, err
	}
	for _, list := range ix.Lists {
		if err := put(int64(len(list))); err != nil {
			return n, err
		}
		ids := make([]int64, len(list))
		for i, id := range list {
			ids[i] = int64(id)
		}
		if err := put(ids); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadIndex deserialises an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic, version uint32
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("cbir: reading index header: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("cbir: bad index magic %#x", magic)
	}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("cbir: unsupported index version %d", version)
	}
	var rows, cols, m int64
	for _, v := range []*int64{&rows, &cols, &m} {
		if err := get(v); err != nil {
			return nil, err
		}
	}
	const maxDim = 1 << 32
	if rows <= 0 || cols <= 0 || m <= 0 || rows > maxDim || cols > 1<<20 || m > rows {
		return nil, fmt.Errorf("cbir: implausible index geometry %d×%d, M=%d", rows, cols, m)
	}

	ix := &Index{
		Vectors:      kernels.NewMatrix(int(rows), int(cols)),
		Centroids:    kernels.NewMatrix(int(m), int(cols)),
		CentroidNorm: make([]float32, m),
		Lists:        make([][]int, m),
	}
	if err := get(ix.Vectors.Data); err != nil {
		return nil, fmt.Errorf("cbir: reading vectors: %w", err)
	}
	if err := get(ix.Centroids.Data); err != nil {
		return nil, fmt.Errorf("cbir: reading centroids: %w", err)
	}
	if err := get(ix.CentroidNorm); err != nil {
		return nil, fmt.Errorf("cbir: reading norms: %w", err)
	}
	total := int64(0)
	for c := int64(0); c < m; c++ {
		var l int64
		if err := get(&l); err != nil {
			return nil, fmt.Errorf("cbir: reading list %d: %w", c, err)
		}
		if l < 0 || total+l > rows {
			return nil, fmt.Errorf("cbir: corrupt list sizes (list %d has %d, running total %d of %d)",
				c, l, total, rows)
		}
		total += l
		ids := make([]int64, l)
		if err := get(ids); err != nil {
			return nil, err
		}
		list := make([]int, l)
		for i, id := range ids {
			if id < 0 || id >= rows {
				return nil, fmt.Errorf("cbir: list %d contains out-of-range id %d", c, id)
			}
			list[i] = int(id)
		}
		ix.Lists[c] = list
	}
	if total != rows {
		return nil, fmt.Errorf("cbir: lists cover %d of %d vectors", total, rows)
	}
	ix.CentroidsT = ix.Centroids.Transpose()
	return ix, nil
}
