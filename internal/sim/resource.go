package sim

import (
	"fmt"
	"sort"
)

// This file defines the shared-resource layer every contended hardware
// model in the simulator is built on. The ReACH evaluation hangs on *where
// contention sits* in the hierarchy — AIMbus vs. DDR4 channels vs. PCIe
// vs. flash channels — so every one of those resources exposes the same
// uniform statistics through one central registry, and bottleneck
// attribution becomes a single pass over the registry instead of
// per-package plumbing.
//
// The layer is an interface trio:
//
//   - Resource: anything with a hierarchical name and a uniform stats
//     snapshot. Everything below implements it.
//   - Connection: serialised bandwidth capacity with FIFO queueing (a DDR4
//     channel, the AIMbus, a PCIe link, a NoC port link, an SSD's flash
//     interconnect). Canonical implementation: Link.
//   - Port: a bounded-FIFO endpoint with park/wake back-pressure (the
//     stream buffers between compute levels). Canonical implementation:
//     TokenQueue.
//
// Two further primitives round out the models that are neither pure
// bandwidth nor pure buffering: Queue (a bounded scheduler-visible request
// queue whose consumer may remove entries out of order — FR-FCFS) and
// Window (an outstanding-operations limit — NVMe queue depth).
//
// All four implementations are instrumented at this base layer (bytes,
// busy time, accumulated wait, wait/service histograms, stalls, occupancy
// high-water marks) and register themselves in the owning Engine's
// StatsRegistry under a dotted hierarchical name such as "mem.host",
// "noc.cpu.out" or "nvme.qp0.sq".

// ResourceKind classifies a registered resource.
type ResourceKind string

const (
	// KindConnection is serialised bandwidth capacity (Link).
	KindConnection ResourceKind = "connection"
	// KindPort is a bounded park/wake stream buffer (TokenQueue).
	KindPort ResourceKind = "port"
	// KindQueue is a bounded scheduler request queue (Queue).
	KindQueue ResourceKind = "queue"
	// KindWindow is an outstanding-operations limiter (Window).
	KindWindow ResourceKind = "window"
	// KindCache is a capacity-bounded lookup structure (the cluster's
	// front-end result cache): Ops counts lookups, Stalls counts the ones
	// that missed or found an expired entry, Occupancy/MaxOccupancy track
	// resident entries and Utilization reports the hit rate.
	KindCache ResourceKind = "cache"
	// KindDomain is a synthetic per-event-domain series emitted by the
	// barrier-driven cluster sampler (metrics.MultiSampler), not a wired
	// resource: Occupancy is the domain calendar's pending population,
	// Stalls the inbound mailbox depth at the barrier, Ops the cumulative
	// events executed, Busy the domain's own clock and Wait its lag
	// behind the cluster frontier.
	KindDomain ResourceKind = "domain"
)

// ResourceStats is the uniform per-resource statistics snapshot. Fields
// that do not apply to a resource kind are zero (e.g. Bytes for a
// TokenQueue carrying opaque items).
type ResourceStats struct {
	Kind ResourceKind

	// Ops counts completed operations: transfers for a connection, items
	// accepted for a port, requests served for a queue, operations
	// admitted for a window.
	Ops uint64
	// Bytes is the total payload moved, where the resource carries bytes.
	Bytes uint64
	// Busy is the total time the resource's capacity was occupied.
	Busy Time
	// Wait is the accumulated time operations spent queued/parked before
	// the resource served them — the direct measure of contention.
	Wait Time
	// Stalls counts back-pressure events: rejected offers, parked
	// producers/consumers, full-window waits.
	Stalls uint64
	// Occupancy is the current number of queued entries (ports/queues).
	Occupancy int
	// MaxOccupancy is the high-water mark of queued entries.
	MaxOccupancy int
	// Utilization is busy time over the resource's active window, in
	// [0, 1]; zero before any activity.
	Utilization float64

	// WaitHist and ServiceHist sample per-operation wait and service
	// times. Either may be nil when the resource does not track it.
	WaitHist    *Histogram
	ServiceHist *Histogram
}

// Resource is implemented by every shared hardware model registered in a
// StatsRegistry.
type Resource interface {
	// Name reports the hierarchical registry name ("mem.host",
	// "noc.cpu.out", "nvme.qp0.sq").
	Name() string
	// ResourceStats returns the uniform statistics snapshot.
	ResourceStats() ResourceStats
}

// StatsRegistry is the central directory of every shared resource attached
// to one Engine, keyed by hierarchical dotted name. Reports and traces
// walk the registry instead of reaching into individual packages.
//
// Walk order is sorted by name, so registry-driven output is deterministic
// regardless of construction order. The sorted order is cached between
// registrations: a periodic metrics sampler can walk the registry every
// tick without re-sorting or allocating.
type StatsRegistry struct {
	byName  map[string]Resource
	ordered []namedResource // sorted by name when `sorted` is true
	sorted  bool
	// prefix is prepended to every requested name at registration time —
	// how a cluster scopes each node's resources under "node<i>." on one
	// shared engine. Empty (the default) leaves names untouched, so
	// single-system registries are unaffected.
	prefix string
}

// namedResource is one cached (name, resource) pair in walk order.
type namedResource struct {
	name string
	res  Resource
}

// NewStatsRegistry returns an empty registry.
func NewStatsRegistry() *StatsRegistry {
	return &StatsRegistry{byName: make(map[string]Resource)}
}

// SetPrefix sets the name prefix applied to subsequent registrations and
// returns the previous prefix, so scoped construction can restore it:
//
//	old := reg.SetPrefix("node0.")
//	defer reg.SetPrefix(old)
func (r *StatsRegistry) SetPrefix(p string) (old string) {
	old = r.prefix
	r.prefix = p
	return old
}

// Register adds a resource under its requested name (with the current
// prefix prepended) and returns the name actually registered. Name
// collisions (several models constructed with the same diagnostic name on
// one engine) are resolved deterministically by appending "#2", "#3", ...
// so registration never fails and every resource stays reachable.
func (r *StatsRegistry) Register(name string, res Resource) string {
	if res == nil {
		panic("sim: registering nil resource")
	}
	if name == "" {
		name = "anon"
	}
	name = r.prefix + name
	final := name
	for n := 2; ; n++ {
		if _, taken := r.byName[final]; !taken {
			break
		}
		final = fmt.Sprintf("%s#%d", name, n)
	}
	r.byName[final] = res
	r.ordered = append(r.ordered, namedResource{name: final, res: res})
	r.sorted = false
	return final
}

// Lookup finds a resource by registered name.
func (r *StatsRegistry) Lookup(name string) (Resource, bool) {
	res, ok := r.byName[name]
	return res, ok
}

// Len reports how many resources are registered.
func (r *StatsRegistry) Len() int { return len(r.byName) }

// ensureSorted re-sorts the cached walk order after new registrations.
func (r *StatsRegistry) ensureSorted() {
	if r.sorted {
		return
	}
	sort.Slice(r.ordered, func(i, j int) bool { return r.ordered[i].name < r.ordered[j].name })
	r.sorted = true
}

// Names returns all registered names, sorted.
func (r *StatsRegistry) Names() []string {
	r.ensureSorted()
	out := make([]string, 0, len(r.ordered))
	for _, nr := range r.ordered {
		out = append(out, nr.name)
	}
	return out
}

// Walk visits every resource in sorted-name order. Between registrations
// the order is cached, so a steady-state walk performs no allocations —
// the property the periodic metrics sampler's zero-alloc gate depends on.
func (r *StatsRegistry) Walk(fn func(name string, res Resource)) {
	r.ensureSorted()
	for _, nr := range r.ordered {
		fn(nr.name, nr.res)
	}
}
