package experiments

import (
	"fmt"

	"repro/internal/cbir"
	"repro/internal/report"
	"repro/internal/workload"
)

// RecallPoint is one probes setting.
type RecallPoint struct {
	Probes       int
	Recall       float64
	BytesScanned int64 // modelled full-scale rerank traffic per query
}

// RecallSweepResult traces the IVF recall-vs-probes curve — the knob
// behind the paper's choice of shortlist size: more probes buy recall at
// the cost of proportionally more rerank traffic, which is exactly the
// traffic ReACH pushes off the host interface.
type RecallSweepResult struct {
	Points []*RecallPoint
}

// RecallSweep runs the functional-layer sweep and attaches the modelled
// full-scale rerank bytes each setting implies.
func RecallSweep(m workload.Model, opts ...Option) (*RecallSweepResult, error) {
	// Over-clustering (256 cells over 64 natural clusters) splits each
	// natural neighbourhood across several cells — the regime where the
	// probe count genuinely controls recall.
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 1 << 15, D: 64, Clusters: 64, Spread: 0.1, Seed: 4242,
	})
	ix, err := cbir.BuildIndex(ds.Vectors, 256, 15, 17)
	if err != nil {
		return nil, err
	}
	// Harder queries (larger perturbation) so single-probe search is
	// clearly lossy, and an uncapped candidate budget so every probed
	// cluster is fully scanned (capping the budget while widening the
	// probe set dilutes per-cluster depth and *hurts* recall — an IVF
	// subtlety the tests pin down).
	queries := ds.Queries(16, 0.15, 4321)

	probeCounts := []int{1, 2, 4, 8, 16, 32}
	// The index is built once and only read by the probe evaluations, so
	// the sweep points can run in parallel against it.
	points, err := mapRuns(buildOptions(opts), probeCounts,
		func(i int) string { return fmt.Sprintf("recall probes=%d", probeCounts[i]) },
		func(probes int) (*RecallPoint, error) {
			recall, err := ix.RecallAtK(queries, cbir.SearchParams{
				Probes: probes, Candidates: 1 << 20, K: m.TopK,
			})
			if err != nil {
				return nil, err
			}
			scaled := m
			scaled.Probes = probes
			return &RecallPoint{
				Probes:       probes,
				Recall:       recall,
				BytesScanned: scaled.RerankScanBytesPerQuery(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &RecallSweepResult{Points: points}, nil
}

// Table renders the curve.
func (r *RecallSweepResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension — recall vs probes (IVF shortlist size)",
		Columns: []string{"Probes", "Recall@10", "Rerank MB/query (modelled)"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Probes),
			report.F(p.Recall, 3),
			report.F(float64(p.BytesScanned)/1e6, 1),
		)
	}
	t.AddNote("every extra probe adds ~%.0f MB of per-query rerank traffic — the traffic ReACH keeps off the host IO interface", float64(r.Points[1].BytesScanned-r.Points[0].BytesScanned)/1e6)
	return t
}
