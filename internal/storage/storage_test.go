package storage

import (
	"testing"

	"repro/internal/sim"
)

func newArray(eng *sim.Engine, n int) *Array {
	return NewArray(eng, n, DefaultSSDConfig(), 16e9, 0.75, 5*sim.Microsecond)
}

func TestEffectiveHostBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 4)
	// 16 GB/s raw × 0.75 = 12 GB/s effective (paper §I, [6]).
	if got := a.EffectiveHostBandwidth(); got != 12e9 {
		t.Errorf("effective host bandwidth = %v, want 12e9", got)
	}
}

func TestSequentialHostReadRate(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 1)
	n := int64(120e6) // 120 MB
	done := a.HostRead(0, n, Sequential)
	// 120 MB at 12 GB/s = 10 ms (+ small latencies).
	want := sim.FromSeconds(120e6 / 12e9)
	if done < want || done > want+sim.Millisecond {
		t.Errorf("host read done = %v, want ~%v", done, want)
	}
}

func TestHostLinkSharedAcrossSSDs(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 4)
	n := int64(120e6)
	var last sim.Time
	for i := 0; i < 4; i++ {
		last = a.HostRead(i, n, Sequential)
	}
	// All four reads share one 12 GB/s link: total 480 MB → 40 ms,
	// NOT 10 ms (no aggregation across the host interface).
	want := sim.FromSeconds(480e6 / 12e9)
	if last < want {
		t.Errorf("4-SSD host read done = %v, want >= %v (host link must serialise)", last, want)
	}
	if a.HostLinkQueuedDelay() == 0 {
		t.Error("no queueing recorded on shared host link")
	}
}

func TestDeviceReadsAggregate(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 4)
	n := int64(120e6)
	var last sim.Time
	for i := 0; i < 4; i++ {
		d := a.DeviceRead(i, n, Sequential)
		if d > last {
			last = d
		}
	}
	// Each SSD streams internally at 12 GB/s independently: all four
	// finish in ~10 ms — the near-storage aggregation effect (§II-C).
	want := sim.FromSeconds(120e6/12e9) + DefaultSSDConfig().PageReadLatency
	if last > want+sim.Millisecond {
		t.Errorf("device reads done = %v, want ~%v (should parallelise)", last, want)
	}
	if a.HostLinkBytes() != 0 {
		t.Errorf("device reads crossed host link: %d bytes", a.HostLinkBytes())
	}
}

func TestRandomReadsIOPSLimited(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSSDConfig()
	cfg.GatherGrainBytes = cfg.PageBytes // single-page gathers
	a := NewArray(eng, 1, cfg, 16e9, 0.75, 0)
	// 100k pages of 4 KiB = 409.6 MB. At 12 GB/s that is 34 ms, but at
	// 800k IOPS it takes 125 ms — IOPS must bind.
	pages := int64(100_000)
	n := pages * cfg.PageBytes
	done := a.DeviceRead(0, n, RandomPages)
	iopsTime := sim.FromSeconds(float64(pages) / cfg.RandomIOPS)
	if done < iopsTime {
		t.Errorf("random read done = %v, faster than IOPS bound %v", done, iopsTime)
	}
	bwTime := sim.FromSeconds(float64(n) / cfg.InternalBytesPerSec)
	if done < bwTime {
		t.Errorf("random read done = %v, faster than bandwidth bound %v", done, bwTime)
	}
}

func TestRandomLargePagesBandwidthLimited(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSSDConfig()
	cfg.PageBytes = 128 << 10 // 128 KiB stripes: bandwidth binds
	a := NewArray(eng, 1, cfg, 16e9, 0.75, 0)
	n := int64(1 << 30)
	done := a.DeviceRead(0, n, RandomPages)
	bwTime := sim.FromSeconds(float64(n) / cfg.InternalBytesPerSec)
	slack := bwTime / 10
	if done > bwTime+slack+cfg.PageReadLatency {
		t.Errorf("large-stripe random read done = %v, want ~bandwidth bound %v", done, bwTime)
	}
}

func TestStatsAttribution(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 2)
	a.HostRead(0, 1000, Sequential)
	a.DeviceRead(0, 2000, Sequential)
	a.DeviceRead(1, 500, RandomPages)
	st0 := a.SSD(0).Stats()
	if st0.BytesHost != 1000 || st0.BytesDevice != 2000 || st0.BytesRead != 3000 {
		t.Errorf("ssd0 stats = %+v", st0)
	}
	st1 := a.SSD(1).Stats()
	if st1.PagesRead != 1 {
		t.Errorf("ssd1 pages = %d, want 1", st1.PagesRead)
	}
	if a.HostLinkBytes() != 1000 {
		t.Errorf("host link bytes = %d, want 1000", a.HostLinkBytes())
	}
}

func TestHostWrite(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 1)
	n := int64(60e6)
	done := a.HostWrite(0, n)
	want := sim.FromSeconds(60e6 / 12e9)
	if done < want {
		t.Errorf("host write done = %v, want >= %v", done, want)
	}
	if a.HostLinkBytes() != uint64(n) {
		t.Errorf("host link bytes = %d, want %d", a.HostLinkBytes(), n)
	}
}

func TestZeroByteRead(t *testing.T) {
	eng := sim.NewEngine()
	a := newArray(eng, 1)
	done := a.DeviceRead(0, 0, Sequential)
	if done != eng.Now() {
		t.Errorf("zero-byte read done = %v, want now", done)
	}
	if a.SSD(0).Stats().Reads != 0 {
		t.Error("zero-byte read counted")
	}
}

func TestAccessPatternString(t *testing.T) {
	if Sequential.String() != "sequential" || RandomPages.String() != "random" {
		t.Error("AccessPattern strings wrong")
	}
	if AccessPattern(99).String() == "" {
		t.Error("unknown pattern produced empty string")
	}
}

func TestWritePathAmplification(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSSDConfig()
	a := NewArray(eng, 1, cfg, 16e9, 0.75, 0)
	n := int64(1 << 30)
	done := a.DeviceWrite(0, n)
	// 1 GiB × 1.5 WA at 3.5 GB/s ≈ 460 ms — far slower than a read.
	wantMin := sim.FromSeconds(float64(n) * cfg.WriteAmplification / cfg.WriteBytesPerSec)
	if done < wantMin {
		t.Errorf("write done at %v, faster than program-rate bound %v", done, wantMin)
	}
	st := a.SSD(0).Stats()
	if st.BytesWritten != uint64(n) {
		t.Errorf("bytes written = %d", st.BytesWritten)
	}
	if st.FlashWear != uint64(float64(n)*cfg.WriteAmplification) {
		t.Errorf("flash wear = %d, want amplified", st.FlashWear)
	}
	if wa := a.SSD(0).WriteAmplificationObserved(); wa != cfg.WriteAmplification {
		t.Errorf("observed WA = %v", wa)
	}
	if a.HostLinkBytes() != 0 {
		t.Error("device write crossed host link")
	}
}

func TestWritesStealReadBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, 1, DefaultSSDConfig(), 16e9, 0.75, 0)
	// A large write first: a subsequent device read queues behind it on
	// the internal capacity.
	a.DeviceWrite(0, 1<<30)
	readDone := a.DeviceRead(0, 1<<20, Sequential)
	soloEng := sim.NewEngine()
	solo := NewArray(soloEng, 1, DefaultSSDConfig(), 16e9, 0.75, 0)
	soloDone := solo.DeviceRead(0, 1<<20, Sequential)
	if readDone <= soloDone {
		t.Errorf("read behind write (%v) not slower than solo read (%v)", readDone, soloDone)
	}
}

func TestHostWriteUsesProgramRate(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSSDConfig()
	a := NewArray(eng, 1, cfg, 16e9, 0.75, 0)
	n := int64(1 << 30)
	done := a.HostWrite(0, n)
	// Flash programs (460 ms) dominate the PCIe transfer (89 ms).
	if done < sim.FromSeconds(float64(n)*cfg.WriteAmplification/cfg.WriteBytesPerSec) {
		t.Errorf("host write done at %v, ignores program rate", done)
	}
	if a.HostLinkBytes() != uint64(n) {
		t.Error("host write did not cross host link")
	}
}

func TestObservedWAZeroBeforeWrites(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, 1, DefaultSSDConfig(), 16e9, 0.75, 0)
	if wa := a.SSD(0).WriteAmplificationObserved(); wa != 0 {
		t.Errorf("WA before writes = %v", wa)
	}
}
