package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// StageScan labels the co-tenant's scan jobs.
const StageScan = "LogScan"

// MultiTenantResult measures the §III claim that decoupling configuration
// from host code lets "GAM balance the hardware resources during runtime":
// the CBIR pipeline shares the hierarchy with a second tenant (a
// near-storage log-scan workload) and the experiment reports how much CBIR
// throughput/latency degrade and what the scan achieves, compared with
// each tenant running alone.
type MultiTenantResult struct {
	CBIRAloneTput  float64
	CBIRSharedTput float64
	CBIRAloneLat   sim.Time
	CBIRSharedLat  sim.Time
	ScanAloneSec   float64
	ScanSharedSec  float64
	// Prioritised: same sharing, but CBIR jobs carry a higher GAM
	// priority — the runtime-balancing knob of §III.
	CBIRPrioTput float64
	CBIRPrioLat  sim.Time
	ScanPrioSec  float64
}

const (
	mtBatches   = 6
	mtScanJobs  = 6
	mtScanBytes = int64(24e9) // 24 GB of logs scanned per job, striped over 4 SSDs
)

// MultiTenant runs the three configurations (CBIR alone, scan alone, both).
func MultiTenant(m workload.Model) (*MultiTenantResult, error) {
	res := &MultiTenantResult{}

	cbirAlone, err := RunPipeline(m, ReACHMapping(), 4, mtBatches)
	if err != nil {
		return nil, err
	}
	res.CBIRAloneTput = cbirAlone.ThroughputBatchesPerSec()
	res.CBIRAloneLat = cbirAlone.Latency

	scanAlone, err := runTenants(m, false, true, 0)
	if err != nil {
		return nil, err
	}
	res.ScanAloneSec = scanAlone.scanSpan.Seconds()

	both, err := runTenants(m, true, true, 0)
	if err != nil {
		return nil, err
	}
	res.CBIRSharedTput = float64(mtBatches) / both.cbirSpan.Seconds()
	res.CBIRSharedLat = both.cbirFirstLatency
	res.ScanSharedSec = both.scanSpan.Seconds()

	prio, err := runTenants(m, true, true, 10)
	if err != nil {
		return nil, err
	}
	res.CBIRPrioTput = float64(mtBatches) / prio.cbirSpan.Seconds()
	res.CBIRPrioLat = prio.cbirFirstLatency
	res.ScanPrioSec = prio.scanSpan.Seconds()
	return res, nil
}

type tenantRun struct {
	cbirSpan         sim.Time
	cbirFirstLatency sim.Time
	scanSpan         sim.Time
}

func runTenants(m workload.Model, cbir, scan bool, cbirPriority int) (*tenantRun, error) {
	sys, err := core.NewSystem(configFor(ReACHMapping(), 4))
	if err != nil {
		return nil, err
	}
	knn, err := sys.Registry().Lookup("KNN-ZCU9")
	if err != nil {
		return nil, err
	}
	var cbirJobs, scanJobs []*core.Job
	nextID := 0
	// The bulk tenant's jobs are queued first (batch analytics already
	// running when interactive queries arrive) — without priorities the
	// GAM's oldest-job-first ordering favours them.
	if scan {
		// Scans are chunked (16 tasks per device per job) per the §II-D
		// granularity rule: small enough that the GAM can slot the
		// latency-sensitive tenant's tasks between chunks, large enough
		// to amortise per-task overhead.
		const chunks = 16
		for s := 0; s < mtScanJobs; s++ {
			j := core.NewJob(nextID)
			nextID++
			for i := 0; i < 4; i++ {
				for c := 0; c < chunks; c++ {
					n := j.AddTask(accel.Task{
						Name: fmt.Sprintf("scan%d.%d", i, c), Stage: StageScan, Kernel: knn,
						MACs:   float64(mtScanBytes) / 64 / 4 / chunks,
						Bytes:  mtScanBytes / 4 / chunks,
						Source: accel.SourceSSD, Pattern: storage.Sequential,
					}, accel.NearStorage)
					n.Pin = i
					n.OutBytes = 1 << 16
					n.SinkToHost = true
				}
			}
			if err := sys.GAM().Submit(j); err != nil {
				return nil, err
			}
			scanJobs = append(scanJobs, j)
		}
	}
	if cbir {
		for b := 0; b < mtBatches; b++ {
			j, err := BuildPipelineJob(sys, nextID, m, ReACHMapping())
			if err != nil {
				return nil, err
			}
			j.Priority = cbirPriority
			nextID++
			if err := sys.GAM().Submit(j); err != nil {
				return nil, err
			}
			cbirJobs = append(cbirJobs, j)
		}
	}
	sys.Run()
	out := &tenantRun{}
	for _, j := range append(append([]*core.Job{}, cbirJobs...), scanJobs...) {
		if !j.Done() {
			return nil, fmt.Errorf("experiments: tenant job %d incomplete", j.ID)
		}
	}
	if cbir {
		out.cbirSpan = cbirJobs[len(cbirJobs)-1].FinishedAt - cbirJobs[0].SubmittedAt
		out.cbirFirstLatency = cbirJobs[0].Latency()
	}
	if scan {
		out.scanSpan = scanJobs[len(scanJobs)-1].FinishedAt - scanJobs[0].SubmittedAt
	}
	return out, nil
}

// CBIRSlowdown reports shared/alone throughput degradation.
func (r *MultiTenantResult) CBIRSlowdown() float64 {
	return 1 - r.CBIRSharedTput/r.CBIRAloneTput
}

// Table renders the comparison.
func (r *MultiTenantResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension — multi-tenant hierarchy (CBIR + near-storage log scan)",
		Columns: []string{"Metric", "Alone", "Shared"},
	}
	t.Columns = append(t.Columns, "Shared, CBIR prioritised")
	t.AddRow("CBIR throughput (batches/s)", report.F(r.CBIRAloneTput, 2),
		report.F(r.CBIRSharedTput, 2), report.F(r.CBIRPrioTput, 2))
	t.AddRow("CBIR first-batch latency (ms)", report.F(r.CBIRAloneLat.Milliseconds(), 1),
		report.F(r.CBIRSharedLat.Milliseconds(), 1), report.F(r.CBIRPrioLat.Milliseconds(), 1))
	t.AddRow("Scan makespan (s)", report.F(r.ScanAloneSec, 2),
		report.F(r.ScanSharedSec, 2), report.F(r.ScanPrioSec, 2))
	t.AddNote("the GAM interleaves both tenants' tasks on the shared near-storage instances; CBIR loses %s throughput",
		report.Pct(r.CBIRSlowdown()))
	return t
}
