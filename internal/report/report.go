// Package report renders experiment results as aligned text tables and
// CSV — the output format of the benchmark harness that regenerates the
// paper's tables and figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; it pads or truncates to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing padding.
		for b.Len() > 0 && b.String()[b.Len()-1] == ' ' {
			s := b.String()
			b.Reset()
			b.WriteString(strings.TrimRight(s, " "))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as CSV (title and notes as comments).
func (t *Table) CSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Ms formats seconds as milliseconds.
func Ms(seconds float64) string {
	return fmt.Sprintf("%.1f", seconds*1000)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
