package metrics

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// pingPong bounces a payload between two domains over cross links, so a
// MultiEngine run has both registry traffic (link bytes) and many
// barrier rounds for the sampler to observe.
type pingPong struct {
	links [2]*sim.CrossLink
	doms  [2]*sim.Engine
	hops  uint64
}

func (p *pingPong) Fire(eng *sim.Engine, arg uint64) {
	if arg >= p.hops {
		return
	}
	next := 1 - eng.ID()
	p.links[eng.ID()].Send(p.doms[next], 4096, p, arg+1)
}

// buildPingPong wires a fresh 2-domain MultiEngine carrying hops
// cross-domain transfers, ready to Run.
func buildPingPong(hops uint64, workers int) *sim.MultiEngine {
	m := sim.NewMultiEngine(2)
	m.SetWorkers(workers)
	p := &pingPong{hops: hops}
	p.doms = [2]*sim.Engine{m.Domain(0), m.Domain(1)}
	p.links[0] = sim.NewCrossLink(m.Domain(0), "x.01", 1e9, 2*sim.Microsecond)
	p.links[1] = sim.NewCrossLink(m.Domain(1), "x.10", 1e9, 2*sim.Microsecond)
	m.Domain(0).AtCall(0, p, 0)
	return m
}

func TestMultiSamplerRecordsDomainsAndResources(t *testing.T) {
	m := buildPingPong(200, 1)
	rec := AttachMulti(m, Options{Interval: 10 * sim.Microsecond})
	m.Run()

	s := rec.Sampler
	if s.Samples() < 10 {
		t.Fatalf("expected many samples, got %d", s.Samples())
	}
	// The closing sample lands on the drained frontier.
	if got := s.Time(s.Samples() - 1); got != m.Now() {
		t.Fatalf("closing sample at %v, frontier at %v", got, m.Now())
	}
	for _, name := range []string{"sim.domain0", "sim.domain1"} {
		se, ok := s.Lookup(name)
		if !ok {
			t.Fatalf("%s series missing", name)
		}
		if se.Kind != sim.KindDomain {
			t.Fatalf("%s kind = %q", name, se.Kind)
		}
		if se.Len() != s.Samples() {
			t.Fatalf("%s len %d != samples %d", name, se.Len(), s.Samples())
		}
		for i := 1; i < se.Len(); i++ {
			if se.At(i).Ops < se.At(i-1).Ops || se.At(i).Busy < se.At(i-1).Busy {
				t.Fatalf("%s cumulative counters regressed at sample %d", name, i)
			}
		}
		// Busy is the domain clock and Wait its frontier lag: at every
		// sample they reconstruct the shared time axis.
		for i := 0; i < se.Len(); i++ {
			if p := se.At(i); p.Busy+p.Wait != s.Time(i) {
				t.Fatalf("%s sample %d: clock %v + lag %v != frontier %v",
					name, i, p.Busy, p.Wait, s.Time(i))
			}
		}
		if se.At(se.Len()-1).Ops == 0 {
			t.Fatalf("%s executed nothing", name)
		}
	}
	// Registry resources ride the same axis, exactly as on one engine.
	se, ok := s.Lookup("x.01")
	if !ok {
		t.Fatal("cross-link series missing")
	}
	if se.At(se.Len()-1).Bytes == 0 {
		t.Fatal("cross-link series recorded no traffic")
	}
}

// renderMulti runs the ping-pong with a sampler at the given worker count
// and renders the full CSV — the byte-level artifact the worker-count
// invariance contract covers.
func renderMulti(t *testing.T, workers int) string {
	t.Helper()
	m := buildPingPong(100, workers)
	rec := AttachMulti(m, Options{Interval: 5 * sim.Microsecond})
	m.Run()
	var b bytes.Buffer
	if err := NewCSVWriter(&b).WriteRun("pp", rec.Sampler); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestMultiSamplerWorkerInvariance: samples ride barriers and barriers
// are worker-independent, so the exported CSV must be byte-identical at
// any SetWorkers width.
func TestMultiSamplerWorkerInvariance(t *testing.T) {
	base := renderMulti(t, 1)
	if base == "" || len(base) < 100 {
		t.Fatalf("suspiciously small CSV: %q", base)
	}
	for _, w := range []int{2, 8} {
		if got := renderMulti(t, w); got != base {
			t.Fatalf("workers=%d CSV diverged from serial", w)
		}
	}
}

// TestMultiSamplerZeroAllocSteadyState: the barrier sampler's cost per
// sample must amortize to (near) zero — chunked columns allocate only at
// 4096-sample boundaries and the registry walk is cached. Measured as
// the allocation delta between an instrumented and a bare run of the
// identical model, divided by the samples taken.
func TestMultiSamplerZeroAllocSteadyState(t *testing.T) {
	const hops = 4000
	run := func(sample bool) (allocs float64, samples int) {
		var rec *MultiRecorder
		allocs = testing.AllocsPerRun(1, func() {
			m := buildPingPong(hops, 1)
			if sample {
				// Interval 1: sample at every advancing barrier.
				rec = AttachMulti(m, Options{Interval: 1})
			}
			m.Run()
		})
		if rec != nil {
			samples = rec.Sampler.Samples()
		}
		return allocs, samples
	}
	bare, _ := run(false)
	inst, samples := run(true)
	if samples < hops/2 {
		t.Fatalf("expected ~%d samples, got %d", hops, samples)
	}
	perSample := (inst - bare) / float64(samples)
	t.Logf("sampler overhead: %.3f allocs/sample over %d samples", perSample, samples)
	// One-time series/map setup plus chunk boundaries stay well under
	// one allocation per sample; a per-sample slice or closure would
	// blow straight past this.
	if perSample > 0.5 {
		t.Fatalf("sampler allocates %.2f/sample in steady state", perSample)
	}
}

// TestMergeSpansStableOrder: per-node logs merge by start time with ties
// broken by producer order then emission order.
func TestMergeSpansStableOrder(t *testing.T) {
	a, b := NewSpanLog(), NewSpanLog()
	a.Add(Span{Name: "a0", Start: 10})
	a.Add(Span{Name: "a1", Start: 30})
	b.Add(Span{Name: "b0", Start: 10})
	b.Add(Span{Name: "b1", Start: 20})
	got := MergeSpans([]*SpanLog{a, b, nil})
	want := []string{"a0", "b0", "b1", "a1"}
	if len(got) != len(want) {
		t.Fatalf("merged %d spans, want %d", len(got), len(want))
	}
	for i, n := range want {
		if got[i].Name != n {
			t.Fatalf("merged[%d] = %s, want %s", i, got[i].Name, n)
		}
	}
}
