package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPoissonArrivalsDeterministic: the precomputed Poisson schedule is a
// pure function of (seed, stream, rate, batches) — same inputs give the
// same times, different seeds or streams give different ones, and times
// are strictly increasing from a positive first gap.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	arr := ArrivalSpec{Process: ArrivalPoisson, Seed: 7}
	a := arr.schedule(2.0, 50, 3)
	b := arr.schedule(2.0, 50, 3)
	prev := sim.Time(0)
	for id := 0; id < 50; id++ {
		if a(id) != b(id) {
			t.Fatalf("id %d: same seed gave %v and %v", id, a(id), b(id))
		}
		if a(id) <= prev {
			t.Fatalf("id %d: arrival %v not after %v", id, a(id), prev)
		}
		prev = a(id)
	}
	c := ArrivalSpec{Process: ArrivalPoisson, Seed: 8}.schedule(2.0, 50, 3)
	d := arr.schedule(2.0, 50, 4)
	if a(0) == c(0) && a(1) == c(1) {
		t.Error("different seeds produced the same schedule")
	}
	if a(0) == d(0) && a(1) == d(1) {
		t.Error("different streams produced the same schedule")
	}
	// The fixed process stays the golden path: id/rate exactly.
	f := ArrivalSpec{}.schedule(4.0, 10, 0)
	for id := 0; id < 10; id++ {
		if want := sim.Time(id) * sim.FromSeconds(0.25); f(id) != want {
			t.Fatalf("fixed arrival %d = %v, want %v", id, f(id), want)
		}
	}
}

// TestTailLatencyDivergenceAndAttribution is the pinned acceptance run:
// under a Poisson open loop near the on-chip baseline's saturation point,
// its p99/p50 ratio diverges while the ReACH hierarchy's stays bounded,
// and per-query attribution names the saturated stage's queue as the
// dominant phase for most over-p99 queries.
func TestTailLatencyDivergenceAndAttribution(t *testing.T) {
	onchip, reach, err := TailLatencyBoth(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Every point must account for every submitted query.
	for _, res := range []*TailLatencyResult{onchip, reach} {
		for _, p := range res.Points {
			if p.Completed != DefaultTailBatches {
				t.Fatalf("%s %.2f q/s: completed %d, want %d",
					res.Option, p.OfferedQPS, p.Completed, DefaultTailBatches)
			}
		}
	}
	// Divergence: somewhere in the sweep the saturated baseline's tail
	// blows up relative to its median, while the hierarchy's ratio stays
	// within a small constant at every rate.
	o := onchip.Points[0]
	for _, p := range onchip.Points {
		if p.TailRatio() > o.TailRatio() {
			o = p
		}
	}
	var reachMax float64
	for _, p := range reach.Points {
		if p.TailRatio() > 2 {
			t.Errorf("ReACH p99/p50 = %.2f at %.1f q/s; expected bounded (< 2)",
				p.TailRatio(), p.OfferedQPS)
		}
		if p.TailRatio() > reachMax {
			reachMax = p.TailRatio()
		}
	}
	if o.TailRatio() < 2.5 {
		t.Errorf("onchip peak p99/p50 = %.2f at %.1f q/s; expected divergence (> 2.5)",
			o.TailRatio(), o.OfferedQPS)
	}
	if o.TailRatio() < 1.5*reachMax {
		t.Errorf("tail ratios did not separate: onchip peak %.2f vs ReACH peak %.2f",
			o.TailRatio(), reachMax)
	}
	// Attribution: the over-p99 queries of the saturated mapping are
	// dominated by queue wait at the (single, shared) on-chip level.
	if o.TailCount == 0 {
		t.Fatal("no over-p99 queries at the saturated rate")
	}
	if o.TailQueueShare <= 0.5 {
		t.Errorf("only %.0f%% of over-p99 onchip queries queue-dominated, want > 50%%",
			o.TailQueueShare*100)
	}
	if o.TailLevel != "OnChip" {
		t.Errorf("modal tail level %q, want OnChip", o.TailLevel)
	}
	if o.TailStage == "" {
		t.Error("no modal tail stage attributed")
	}
	var sb strings.Builder
	if err := TailLatencyTable(onchip, reach).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "over-p99 queries dominated by queue wait") {
		t.Errorf("table missing tail-attribution note:\n%s", sb.String())
	}
}

// TestTailLatencySweepDeterministic: the same seed gives byte-identical
// sweep output — table, per-query summary CSV and interval CSV — whether
// the runs execute on 1 worker or 8.
func TestTailLatencySweepDeterministic(t *testing.T) {
	render := func(workers int) string {
		res, err := TailLatency(workload.DefaultModel(), ReACHMapping(), 4,
			[]float64{2, 3}, 24, 42, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		res.Option = "ReACH"
		if err := TailLatencyTable(res, res).CSV(&out); err != nil {
			t.Fatal(err)
		}
		cw := qtrace.NewCSVWriter(&out, &out)
		for i, run := range res.Runs {
			if err := cw.WriteRun(tailLatencySpecs(workload.DefaultModel(), ReACHMapping(), 4, []float64{2, 3}, 24, 42)[i].Name, run.QLog); err != nil {
				t.Fatal(err)
			}
		}
		return out.String()
	}
	one := render(1)
	eight := render(8)
	if one != eight {
		t.Errorf("sweep output differs between -j 1 and -j 8:\n--- j1 ---\n%.2000s\n--- j8 ---\n%.2000s", one, eight)
	}
}
