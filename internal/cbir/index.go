package cbir

import (
	"fmt"
	"sort"

	"repro/internal/kernels"
)

// Index is the IVF index produced by the offline stage: k-means centroids,
// precomputed ‖C_m‖² (the reusable term of Eq. 1), and per-cluster point
// lists (the "cell info" of Table I).
type Index struct {
	Vectors      *kernels.Matrix // N × D, the database (resident "on SSD")
	Centroids    *kernels.Matrix // M × D
	CentroidsT   *kernels.Matrix // D × M, columnar layout for the GeMM
	CentroidNorm []float32       // M, precomputed ‖C_m‖²
	Lists        [][]int         // M, point IDs per cluster
}

// BuildIndex clusters the database into m cells.
func BuildIndex(vectors *kernels.Matrix, m, kmeansIters int, seed int64) (*Index, error) {
	km, err := KMeans(vectors, m, kmeansIters, seed)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		Vectors:      vectors,
		Centroids:    km.Centroids,
		CentroidsT:   km.Centroids.Transpose(),
		CentroidNorm: make([]float32, m),
		Lists:        make([][]int, m),
	}
	for c := 0; c < m; c++ {
		idx.CentroidNorm[c] = kernels.SquaredNorm(km.Centroids.Row(c))
	}
	for i, c := range km.Assign {
		idx.Lists[c] = append(idx.Lists[c], i)
	}
	return idx, nil
}

// M reports the cluster count.
func (ix *Index) M() int { return ix.Centroids.Rows }

// Shortlist returns, for each query in the batch, the `probes` cluster IDs
// with the smallest Eq. 1 distances — the shortlist-retrieval stage. The
// heavy lifting is one B×D × D×M GeMM, exactly the kernel mapped to the
// near-memory accelerators.
func (ix *Index) Shortlist(queries *kernels.Matrix, probes int) ([][]int, error) {
	if probes <= 0 || probes > ix.M() {
		return nil, fmt.Errorf("cbir: probes=%d invalid for M=%d", probes, ix.M())
	}
	dists := kernels.BatchDistances(queries, ix.CentroidsT, ix.CentroidNorm)
	out := make([][]int, queries.Rows)
	for b := 0; b < queries.Rows; b++ {
		sel := kernels.NewTopK(probes)
		row := dists.Row(b)
		for m := range row {
			sel.Offer(m, row[m])
		}
		res := sel.Results()
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		out[b] = ids
	}
	return out, nil
}

// Candidates gathers up to maxCandidates point IDs from the probed
// clusters, round-robin across clusters so each probed cell contributes —
// the candidate-list formation of the rerank stage.
func (ix *Index) Candidates(clusters []int, maxCandidates int) []int {
	if maxCandidates <= 0 {
		return nil
	}
	out := make([]int, 0, maxCandidates)
	offsets := make([]int, len(clusters))
	for len(out) < maxCandidates {
		progress := false
		for ci, c := range clusters {
			if offsets[ci] >= len(ix.Lists[c]) {
				continue
			}
			out = append(out, ix.Lists[c][offsets[ci]])
			offsets[ci]++
			progress = true
			if len(out) == maxCandidates {
				break
			}
		}
		if !progress {
			break // probed clusters exhausted
		}
	}
	return out
}

// Rerank scores the candidates against the query with the exact Eq. 2
// distance and returns the top-K — the near-storage stage.
func (ix *Index) Rerank(query []float32, candidates []int, k int) []kernels.Neighbor {
	sel := kernels.NewTopK(k)
	for _, id := range candidates {
		sel.Offer(id, kernels.SquaredL2(ix.Vectors.Row(id), query))
	}
	return sel.Results()
}

// SearchParams bundles the online-pipeline knobs.
type SearchParams struct {
	Probes     int
	Candidates int
	K          int
}

// Search runs shortlist → candidates → rerank for a batch of queries.
func (ix *Index) Search(queries *kernels.Matrix, p SearchParams) ([][]kernels.Neighbor, error) {
	shortlists, err := ix.Shortlist(queries, p.Probes)
	if err != nil {
		return nil, err
	}
	out := make([][]kernels.Neighbor, queries.Rows)
	for b := 0; b < queries.Rows; b++ {
		cands := ix.Candidates(shortlists[b], p.Candidates)
		out[b] = ix.Rerank(queries.Row(b), cands, p.K)
	}
	return out, nil
}

// RecallAtK evaluates mean recall@K of the index against exhaustive search
// over a batch of queries.
func (ix *Index) RecallAtK(queries *kernels.Matrix, p SearchParams) (float64, error) {
	found, err := ix.Search(queries, p)
	if err != nil {
		return 0, err
	}
	var sum float64
	for b := 0; b < queries.Rows; b++ {
		truth := kernels.BruteForceKNN(ix.Vectors, queries.Row(b), p.K)
		sum += kernels.RecallAtK(found[b], truth)
	}
	return sum / float64(queries.Rows), nil
}

// ListSizeStats reports min/median/max cluster occupancy — used to check
// the clustering is balanced enough for the per-DIMM partitioning.
func (ix *Index) ListSizeStats() (minSize, median, maxSize int) {
	sizes := make([]int, len(ix.Lists))
	for i, l := range ix.Lists {
		sizes[i] = len(l)
	}
	sort.Ints(sizes)
	return sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]
}
