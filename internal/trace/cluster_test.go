package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// runClusterTrace runs a small observed cluster at the given domain
// parallelism and returns the rendered trace JSON.
func runClusterTrace(t *testing.T, pj int) []byte {
	t.Helper()
	cfg := config.DefaultCluster()
	cfg.ParallelDomains = pj
	m := workload.DefaultModel()
	m.DatasetSize /= 100
	c, err := cluster.New(cfg, m, qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.AttachMulti(c.Multi(), metrics.Options{Interval: sim.FromSeconds(1e-4)})
	rec.Spans = c.AttachSpans()
	for i := 0; i < 12; i++ {
		c.SubmitAt(sim.Time(i) * sim.FromSeconds(5e-4))
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline()
	tl.AddCluster(cfg.Nodes, c.QLog(), rec.Sampler, rec.Spans)
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAddClusterProcessGroups(t *testing.T) {
	raw := runClusterTrace(t, 1)
	var parsed []map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	procs := map[float64]string{}
	lanes := map[string]bool{} // "pid/lane"
	var asyncBegins, asyncEnds, slices int
	for _, e := range parsed {
		pid, _ := e["pid"].(float64)
		switch e["ph"] {
		case "M":
			args, _ := e["args"].(map[string]any)
			if e["name"] == "process_name" {
				procs[pid], _ = args["name"].(string)
			}
			if e["name"] == "thread_name" {
				name, _ := args["name"].(string)
				lanes[procs[pid]+"/"+name] = true
			}
		case "b":
			asyncBegins++
			if e["id"] == "" {
				t.Error("async begin without correlation id")
			}
		case "e":
			asyncEnds++
		case "X":
			slices++
		}
	}
	if procs[1] != "front end" {
		t.Errorf("pid 1 = %q, want front end", procs[1])
	}
	nodes := config.DefaultCluster().Nodes
	for i := 0; i < nodes; i++ {
		if got := procs[float64(clusterNodePID(i))]; !strings.HasPrefix(got, "node ") {
			t.Errorf("pid %d = %q, want a node process", clusterNodePID(i), got)
		}
	}
	if asyncBegins == 0 || asyncBegins != asyncEnds {
		t.Errorf("async query events unbalanced: %d begins, %d ends", asyncBegins, asyncEnds)
	}
	if slices == 0 {
		t.Error("no interval slices")
	}
	// The per-node lane groups the viewer shows: compute, shard and net
	// lanes under the nodes, cache and query lanes under the front end.
	for _, want := range []string{
		"front end/queries", "node 0/fe", "node 0/net in", "node 0/net out",
	} {
		if !lanes[want] {
			t.Errorf("lane %q missing (have %v)", want, lanes)
		}
	}
	sawShard := false
	for l := range lanes {
		if strings.Contains(l, "/shard") {
			sawShard = true
		}
	}
	if !sawShard {
		t.Errorf("no shard lane under any node: %v", lanes)
	}
}

// TestAddClusterIntervalRouting pins the detail-label router.
func TestAddClusterIntervalRouting(t *testing.T) {
	cases := []struct {
		detail string
		pid    int
		lane   string
	}{
		{"fe-cache", clusterFEPID, "cache"},
		{"fe-coalesce", clusterFEPID, "cache"},
		{"client-node2", clusterNodePID(2), "net in"},
		{"node3", clusterNodePID(3), "fe"},
		{"node1-node2", clusterNodePID(2), "net in"},
		{"shard2@node1", clusterNodePID(1), "shard2"},
		{"node2-fe", clusterNodePID(2), "net out"},
		{"", clusterFEPID, "queries"},
		{"mystery", clusterFEPID, "queries"},
	}
	for _, c := range cases {
		pid, lane := clusterIntervalLane(qtrace.Interval{Detail: c.detail})
		if pid != c.pid || lane != c.lane {
			t.Errorf("%q → (%d, %q), want (%d, %q)", c.detail, pid, lane, c.pid, c.lane)
		}
	}
}

// TestAddClusterCounterRouting pins the series-name router.
func TestAddClusterCounterRouting(t *testing.T) {
	cases := []struct {
		name    string
		node    int
		display string
		ok      bool
	}{
		{"node3.gam.readyq", 3, "gam.readyq", true},
		{"cluster.net.node2.out", 2, "net.out", true},
		{"cluster.net.fe.in", 0, "", false},
		{"cluster.fe.cache", 0, "", false},
		{"sim.domain4", 0, "", false},
	}
	for _, c := range cases {
		n, display, ok := nodeSeriesName(c.name)
		if ok != c.ok || (ok && (n != c.node || display != c.display)) {
			t.Errorf("%q → (%d, %q, %v), want (%d, %q, %v)",
				c.name, n, display, ok, c.node, c.display, c.ok)
		}
	}
}

// TestAddClusterParallelInvariant: the rendered trace is byte-identical
// at any domain parallelism — observation never perturbs the simulation.
func TestAddClusterParallelInvariant(t *testing.T) {
	base := runClusterTrace(t, 1)
	for _, pj := range []int{4, 8} {
		if got := runClusterTrace(t, pj); !bytes.Equal(got, base) {
			t.Fatalf("trace JSON diverges at pj=%d", pj)
		}
	}
}
