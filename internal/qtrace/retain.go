package qtrace

import (
	"sort"

	"repro/internal/sim"
)

// Retainer is the flight recorder's windowed retaining observer: attached
// to a Log's completion stream (through Tee, like any other observer), it
// copies each completed query — identity, bounds, timeline, attribution —
// into a sliding ring holding only the queries that completed within the
// last `window` of simulated time. The live Log keeps serving sketches
// and reports as before; the retainer is the bounded black-box copy a
// diagnostic bundle is cut from after the fact.
//
// Memory is bounded by the window: entries older than window behind the
// newest completion are evicted on every insert, and the backing slice is
// compacted once the dead prefix dominates. Completions arrive in
// nondecreasing simulated-time order (they are emitted by a single
// front-end event domain), so eviction is O(1) amortised and the retained
// set is a pure function of the simulation — independent of worker count.
//
// A Retainer is not safe for concurrent use; like the Log it rides on, it
// belongs to the simulation goroutine.
type Retainer struct {
	log    *Log
	window sim.Time
	buf    []Query
	head   int
}

// NewRetainer returns a retainer holding the trailing `window` of
// completions (must be positive). Call Attach before the first completion.
func NewRetainer(window sim.Time) *Retainer {
	if window <= 0 {
		panic("qtrace: retainer window must be positive")
	}
	return &Retainer{window: window}
}

// Attach binds the retainer to the log whose completion stream it
// observes — the source it copies query timelines out of. A retainer
// without a log ignores completions.
func (r *Retainer) Attach(l *Log) { r.log = l }

// QueryDone implements Observer as a no-op; the retainer needs the
// completion instant, which arrives through QueryDoneAt.
func (r *Retainer) QueryDone(int, sim.Time) {}

// QueryDoneAt implements ObserverAt: deep-copy the completed query into
// the ring and slide the window forward to its completion instant.
func (r *Retainer) QueryDoneAt(id int, at, _ sim.Time) {
	if r.log == nil {
		return
	}
	q := r.log.Query(id)
	if q == nil {
		return
	}
	cp := *q
	cp.Intervals = append([]Interval(nil), q.Intervals...)
	cp.Attribution = append([]Attribution(nil), q.Attribution...)
	r.buf = append(r.buf, cp)
	cut := at - r.window
	for r.head < len(r.buf) && r.buf[r.head].Done < cut {
		r.buf[r.head] = Query{} // release the clone for GC
		r.head++
	}
	if r.head > 64 && r.head > len(r.buf)/2 {
		n := copy(r.buf, r.buf[r.head:])
		for i := n; i < len(r.buf); i++ {
			r.buf[i] = Query{}
		}
		r.buf = r.buf[:n]
		r.head = 0
	}
}

// Len reports how many completions the window currently retains.
func (r *Retainer) Len() int { return len(r.buf) - r.head }

// Bounds reports the retained horizon: the window ending at the newest
// retained completion, clamped at time zero. Zero values when empty.
func (r *Retainer) Bounds() (from, to sim.Time) {
	if r.Len() == 0 {
		return 0, 0
	}
	to = r.buf[len(r.buf)-1].Done
	from = to - r.window
	if from < 0 {
		from = 0
	}
	return from, to
}

// Queries returns copies of the retained queries in completion order.
func (r *Retainer) Queries() []Query {
	out := make([]Query, r.Len())
	copy(out, r.buf[r.head:])
	return out
}

// WindowLog rebuilds a self-contained Log holding exactly the retained
// queries — timelines, attributions and latency sketch — by replaying
// them in QueryID order. The result is what a full-run Log would look
// like had the run consisted of only the in-window queries, so every
// exporter that consumes a Log (the Chrome trace builder, the straggler
// reducers) works on the windowed copy unchanged.
func (r *Retainer) WindowLog() *Log {
	retained := r.Queries()
	sort.Slice(retained, func(i, j int) bool { return retained[i].ID < retained[j].ID })
	l := NewLog(Options{})
	for i := range retained {
		q := &retained[i]
		l.Submitted(q.ID, q.Job, q.Arrival)
		for _, iv := range q.Intervals {
			l.Add(q.ID, iv)
		}
		l.Completed(q.ID, q.Done)
	}
	return l
}
