package sim

import (
	"fmt"
	"sort"
)

// Histogram collects simulated durations and answers quantile queries —
// the latency-distribution utility behind the load-sweep experiment's
// mean/p99 columns.
type Histogram struct {
	samples []Time
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample.
func (h *Histogram) Add(t Time) {
	h.samples = append(h.samples, t)
	h.sorted = false
}

// Count reports the sample count.
func (h *Histogram) Count() int { return len(h.samples) }

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method. It panics on an empty histogram or out-of-range q, both of
// which indicate harness bugs.
func (h *Histogram) Quantile(q float64) Time {
	if len(h.samples) == 0 {
		panic("sim: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("sim: quantile %v out of [0,1]", q))
	}
	h.ensureSorted()
	idx := int(q*float64(len(h.samples))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean reports the arithmetic mean.
func (h *Histogram) Mean() Time {
	if len(h.samples) == 0 {
		return 0
	}
	var sum Time
	for _, s := range h.samples {
		sum += s
	}
	return Time(int64(sum) / int64(len(h.samples)))
}

// Min and Max report the extremes (zero on empty).
func (h *Histogram) Min() Time {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Max reports the largest sample (zero on empty).
func (h *Histogram) Max() Time {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// String summarises the distribution.
func (h *Histogram) String() string {
	if len(h.samples) == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d min=%v mean=%v p50=%v p99=%v max=%v}",
		h.Count(), h.Min(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
