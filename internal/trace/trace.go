// Package trace exports simulated ReACH executions as Chrome trace-event
// JSON (the chrome://tracing / Perfetto format), one lane per accelerator
// instance plus a GAM control lane. Loading the file into a trace viewer
// shows the pipeline visually: stage overlap across batches, the polling
// gaps between device completion and GAM detection, and the inter-level
// transfer windows.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Event is one Chrome trace event (the subset of fields we emit).
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"` // "X" = complete, "C" = counter, "b"/"e" = async
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"` // async-event correlation id
	Args  map[string]any `json:"args,omitempty"`
}

// metadata event for lane naming.
type metaEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// laneKey identifies a lane: Chrome thread ids are scoped per process, so
// a lane is a (pid, name) pair. Single-system traces live entirely in pid
// 1; cluster traces give every node its own process group (see AddCluster).
type laneKey struct {
	pid  int
	name string
}

// Timeline accumulates events from completed jobs.
type Timeline struct {
	events  []Event
	lanes   map[laneKey]int // (pid, lane name) → tid
	nextTID map[int]int     // per-pid tid allocator
	order   []laneKey
	procs   map[int]string // pid → process name (only named pids emit metadata)
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{
		lanes:   make(map[laneKey]int),
		nextTID: make(map[int]int),
		procs:   make(map[int]string),
	}
}

// SetProcessName names a Chrome process group. Unnamed pids emit no
// process metadata, so single-process traces are byte-identical to the
// pre-cluster format.
func (t *Timeline) SetProcessName(pid int, name string) {
	t.procs[pid] = name
}

func (t *Timeline) lane(name string) int { return t.laneAt(1, name) }

func (t *Timeline) laneAt(pid int, name string) int {
	k := laneKey{pid, name}
	if id, ok := t.lanes[k]; ok {
		return id
	}
	t.nextTID[pid]++
	id := t.nextTID[pid]
	t.lanes[k] = id
	t.order = append(t.order, k)
	return id
}

func us(ts sim.Time) float64 { return ts.Seconds() * 1e6 }

// AddJob records every node of a completed job: one "X" slice per task on
// its instance lane (dispatch → device completion) and a second short
// slice for the GAM detection gap when polling delayed it.
func (t *Timeline) AddJob(j *core.Job) error {
	if !j.Done() {
		return fmt.Errorf("trace: job %d not complete", j.ID)
	}
	for _, n := range j.Nodes {
		lane := t.lane(n.Instance)
		t.events = append(t.events, Event{
			Name:  fmt.Sprintf("%s (job %d)", n.Spec.Name, j.ID),
			Cat:   n.Spec.Stage,
			Phase: "X",
			TS:    us(n.DispatchedAt),
			Dur:   us(n.CompletedAt - n.DispatchedAt),
			PID:   1,
			TID:   lane,
			Args: map[string]any{
				"stage":  n.Spec.Stage,
				"level":  n.Level.String(),
				"bytes":  n.Spec.Bytes,
				"macs":   n.Spec.MACs,
				"polls":  n.Polls,
				"source": n.Spec.Source.String(),
			},
		})
		if gap := n.DetectedAt - n.CompletedAt; gap > 0 {
			t.events = append(t.events, Event{
				Name:  "await GAM status",
				Cat:   "gam",
				Phase: "X",
				TS:    us(n.CompletedAt),
				Dur:   us(gap),
				PID:   1,
				TID:   lane,
				Args:  map[string]any{"polls": n.Polls},
			})
		}
	}
	// Job span on the GAM lane.
	t.events = append(t.events, Event{
		Name:  fmt.Sprintf("job %d", j.ID),
		Cat:   "job",
		Phase: "X",
		TS:    us(j.SubmittedAt),
		Dur:   us(j.FinishedAt - j.SubmittedAt),
		PID:   1,
		TID:   t.lane("GAM"),
	})
	return nil
}

// Events reports how many events were recorded.
func (t *Timeline) Events() int { return len(t.events) }

// Lanes lists the lanes in first-seen order. Lanes outside pid 1 are
// prefixed with their process name ("node 2/net in").
func (t *Timeline) Lanes() []string {
	out := make([]string, 0, len(t.order))
	for _, k := range t.order {
		if k.pid == 1 {
			out = append(out, k.name)
			continue
		}
		proc := t.procs[k.pid]
		if proc == "" {
			proc = fmt.Sprintf("pid%d", k.pid)
		}
		out = append(out, proc+"/"+k.name)
	}
	return out
}

// WriteJSON emits the trace in Chrome trace-event array format.
func (t *Timeline) WriteJSON(w io.Writer) error {
	var all []any
	// Process- and lane-name metadata first, in deterministic order.
	pids := make([]int, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		all = append(all, metaEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pid,
			Args:  map[string]any{"name": t.procs[pid]},
		})
		all = append(all, metaEvent{
			Name:  "process_sort_index",
			Phase: "M",
			PID:   pid,
			Args:  map[string]any{"sort_index": pid},
		})
	}
	keys := make([]laneKey, 0, len(t.lanes))
	for k := range t.lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].name < keys[j].name
	})
	for _, k := range keys {
		all = append(all, metaEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   k.pid,
			TID:   t.lanes[k],
			Args:  map[string]any{"name": k.name},
		})
	}
	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	for _, e := range evs {
		all = append(all, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(all)
}
