package fpga

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTableIIIMatchesPaper(t *testing.T) {
	// Spot-check the published utilisation/frequency/power values.
	r := NewRegistry()
	cnn, err := r.Lookup("CNN-VU9P")
	if err != nil {
		t.Fatal(err)
	}
	if cnn.FreqMHz != 273 || cnn.PowerW != 25 {
		t.Errorf("CNN-VU9P freq/power = %v/%v, Table III says 273 MHz / 25 W", cnn.FreqMHz, cnn.PowerW)
	}
	if cnn.Util != (Utilization{FF: 36, LUT: 81, DSP: 78, BRAM: 42}) {
		t.Errorf("CNN-VU9P utilisation %+v does not match Table III", cnn.Util)
	}
	knn, _ := r.Lookup("KNN-ZCU9")
	if knn.FreqMHz != 150 || knn.PowerW != 1.8 || knn.PowerNSW != 2.4 {
		t.Errorf("KNN-ZCU9 = %v MHz %v/%v W, Table III says 150/1.8/2.4", knn.FreqMHz, knn.PowerW, knn.PowerNSW)
	}
	gemm, _ := r.Lookup("GEMM-ZCU9")
	if gemm.Util != (Utilization{FF: 36, LUT: 27, DSP: 76, BRAM: 92}) {
		t.Errorf("GEMM-ZCU9 utilisation %+v does not match Table III", gemm.Util)
	}
	if got := len(TableIII()); got != 6 {
		t.Errorf("Table III has %d rows, want 6", got)
	}
}

func TestCNNThroughputRatio(t *testing.T) {
	// §VI-B: single on-chip CNN has a 7-10x advantage over one embedded
	// instance.
	r := NewRegistry()
	big, _ := r.Lookup("CNN-VU9P")
	small, _ := r.Lookup("CNN-ZCU9")
	ratio := big.ComputeThroughput() / small.ComputeThroughput()
	if ratio < 7 || ratio > 10.5 {
		t.Errorf("CNN throughput ratio = %.2f, want in [7, 10.5]", ratio)
	}
}

func TestGeMMZCU9AbsorbsDIMMBandwidth(t *testing.T) {
	// The near-memory GeMM must be able to consume the 18 GB/s its DIMM
	// provides, otherwise the Fig. 10 scaling would be compute-limited.
	r := NewRegistry()
	g, _ := r.Lookup("GEMM-ZCU9")
	if bw := g.StreamBandwidth(); bw < 18e9 {
		t.Errorf("GEMM-ZCU9 stream bandwidth = %v B/s, must exceed 18 GB/s", bw)
	}
}

func TestKNNBandwidthCalibration(t *testing.T) {
	r := NewRegistry()
	big, _ := r.Lookup("KNN-VU9P")
	small, _ := r.Lookup("KNN-ZCU9")
	// On-chip KNN absorbs the full host IO interface (12 GB/s).
	if bw := big.StreamBandwidth(); bw < 12e9 {
		t.Errorf("KNN-VU9P stream bandwidth = %v, want >= 12 GB/s", bw)
	}
	// One embedded KNN sustains ~6 GB/s, so two near-memory instances
	// saturate the host link (the Fig. 11 plateau) while four near-storage
	// instances keep the rerank stage off the pipeline critical path.
	if bw := small.StreamBandwidth(); math.Abs(bw-6e9) > 0.3e9 {
		t.Errorf("KNN-ZCU9 stream bandwidth = %v, want ~6 GB/s", bw)
	}
}

func TestCyclesComputeVsStreamBound(t *testing.T) {
	tpl := &Template{
		Name: "x", Device: ZynqZCU9, FreqMHz: 100, PowerW: 1,
		MACsPerCycle: 10, StreamBytesPerCycle: 4, II: 1, Depth: 10,
	}
	// Compute-bound: 1000 MACs, 4 bytes → 100 iterations.
	c1 := tpl.Cycles(1000, 4)
	if c1 != 10+100 {
		t.Errorf("compute-bound cycles = %d, want 110", c1)
	}
	// Stream-bound: 10 MACs, 4000 bytes → 1000 iterations.
	c2 := tpl.Cycles(10, 4000)
	if c2 != 10+1000 {
		t.Errorf("stream-bound cycles = %d, want 1010", c2)
	}
	// Empty work still pays pipeline fill + one iteration.
	if c3 := tpl.Cycles(0, 0); c3 != 11 {
		t.Errorf("empty-work cycles = %d, want 11", c3)
	}
}

func TestCyclesWithII(t *testing.T) {
	tpl := &Template{
		Name: "ii", Device: ZynqZCU9, FreqMHz: 100, PowerW: 1,
		MACsPerCycle: 1, StreamBytesPerCycle: 0, II: 4, Depth: 20,
	}
	// II=4: each iteration handles II×MACsPerCycle=4 MACs in 4 cycles.
	got := tpl.Cycles(40, 0)
	if got != 20+4*10 {
		t.Errorf("cycles = %d, want 60", got)
	}
}

func TestDurationUsesKernelClock(t *testing.T) {
	tpl := &Template{
		Name: "d", Device: ZynqZCU9, FreqMHz: 1000, PowerW: 1,
		MACsPerCycle: 1, II: 1, Depth: 0,
	}
	// Depth 0 is invalid per Validate but Cycles still works; use 1.
	tpl.Depth = 1
	d := tpl.Duration(999, 0)
	want := sim.MHz(1000).Cycles(1 + 999)
	if d != want {
		t.Errorf("duration = %v, want %v", d, want)
	}
}

func TestRegistryAliasAndRegister(t *testing.T) {
	r := NewRegistry()
	vgg, err := r.Lookup("VGG16-VU9P") // Listing 2 name
	if err != nil {
		t.Fatalf("alias lookup: %v", err)
	}
	if vgg.Class != CNN {
		t.Errorf("VGG16-VU9P resolves to %v, want CNN", vgg.Class)
	}
	if _, err := r.Lookup("nonsense"); err == nil {
		t.Error("unknown template lookup succeeded")
	}
	custom := &Template{
		Name: "SORT-ZCU9", Class: KNN, Device: ZynqZCU9,
		Util: Utilization{FF: 5, LUT: 5, DSP: 1, BRAM: 4}, FreqMHz: 150,
		PowerW: 1, MACsPerCycle: 8, StreamBytesPerCycle: 16, II: 1, Depth: 8,
	}
	if err := r.Register(custom); err != nil {
		t.Fatalf("register custom: %v", err)
	}
	if err := r.Register(custom); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := &Template{Name: "bad", Device: ZynqZCU9, FreqMHz: -1}
	if err := r.Register(bad); err == nil {
		t.Error("invalid template accepted")
	}
	names := r.Names()
	if len(names) < 8 {
		t.Errorf("Names() returned %d entries, want >= 8", len(names))
	}
}

func TestUtilizationFits(t *testing.T) {
	ok := Utilization{FF: 50, LUT: 50, DSP: 50, BRAM: 50}
	if !ok.Fits() {
		t.Error("50% utilisation should fit")
	}
	sum := ok.Add(Utilization{FF: 60, LUT: 10, DSP: 10, BRAM: 10})
	if sum.Fits() {
		t.Error("110% FF should not fit")
	}
	// Composing the three ZCU9 kernels does NOT fit one device (BRAM
	// 36+92+22 > 100): each level hosts one kernel at a time.
	r := NewRegistry()
	cnn, _ := r.Lookup("CNN-ZCU9")
	gemm, _ := r.Lookup("GEMM-ZCU9")
	knn, _ := r.Lookup("KNN-ZCU9")
	if cnn.Util.Add(gemm.Util).Add(knn.Util).Fits() {
		t.Error("all three ZCU9 kernels fit together; expected reconfiguration to be required")
	}
}

func TestDeviceAbsolute(t *testing.T) {
	abs := VirtexVU9P.Absolute(Utilization{FF: 36, LUT: 81, DSP: 78, BRAM: 42})
	wantDSP := int(float64(VirtexVU9P.Total.DSP)*0.78 + 0.5)
	if abs.DSP != wantDSP {
		t.Errorf("DSP absolute = %d", abs.DSP)
	}
	if abs.LUT <= 0 || abs.FF <= 0 || abs.BRAM <= 0 {
		t.Errorf("absolute resources not positive: %+v", abs)
	}
}

func TestFabricLoadAndOccupy(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "onchip0", VirtexVU9P)
	r := NewRegistry()
	cnn, _ := r.Lookup("CNN-VU9P")
	zcnn, _ := r.Lookup("CNN-ZCU9")

	if _, err := f.Load(zcnn); err == nil {
		t.Error("loading ZCU9 bitstream on VU9P fabric accepted")
	}
	ready, err := f.Load(cnn)
	if err != nil || ready != 0 {
		t.Fatalf("load: ready=%v err=%v", ready, err)
	}
	if f.Loaded() != cnn {
		t.Error("Loaded() mismatch")
	}
	// Re-loading the same template is free and not counted.
	f.Load(cnn)
	if f.Reconfigs() != 1 {
		t.Errorf("reconfigs = %d, want 1", f.Reconfigs())
	}

	end1 := f.Occupy(10 * sim.Microsecond)
	end2 := f.Occupy(10 * sim.Microsecond)
	if end2 != end1+10*sim.Microsecond {
		t.Errorf("tasks did not serialise: %v then %v", end1, end2)
	}
	if f.Idle() != (f.BusyUntil() <= eng.Now()) {
		t.Error("Idle inconsistent with BusyUntil")
	}
	if f.Busy() != 20*sim.Microsecond {
		t.Errorf("busy = %v, want 20us", f.Busy())
	}
	if f.Tasks() != 2 {
		t.Errorf("tasks = %d, want 2", f.Tasks())
	}
}

func TestFabricReconfigLatency(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, "x", ZynqZCU9)
	f.ReconfigLatency = sim.Millisecond
	r := NewRegistry()
	a, _ := r.Lookup("CNN-ZCU9")
	b, _ := r.Lookup("KNN-ZCU9")
	f.Load(a)
	ready, _ := f.Load(b)
	if ready != sim.Millisecond {
		t.Errorf("reconfig ready at %v, want 1ms", ready)
	}
	if f.Reconfigs() != 2 {
		t.Errorf("reconfigs = %d, want 2", f.Reconfigs())
	}
}

// Property: Cycles is monotonic in both MACs and bytes.
func TestCyclesMonotonic(t *testing.T) {
	r := NewRegistry()
	tpl, _ := r.Lookup("GEMM-ZCU9")
	f := func(a, b uint32) bool {
		m1, m2 := float64(a), float64(a)+float64(b)
		if tpl.Cycles(m2, 0) < tpl.Cycles(m1, 0) {
			return false
		}
		return tpl.Cycles(0, int64(a)+int64(b)) >= tpl.Cycles(0, int64(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
