package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.0)
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatalf("weights not nonincreasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// s=0 is uniform.
	u := ZipfWeights(10, 0)
	for _, v := range u {
		if math.Abs(v-0.1) > 1e-12 {
			t.Errorf("uniform weight = %v", v)
		}
	}
}

func TestShardLoadPolicies(t *testing.T) {
	w := ZipfWeights(1000, 1.2)
	cont := ShardLoad(w, 4, PlaceContiguous)
	rr := ShardLoad(w, 4, PlaceRoundRobin)
	if ImbalanceFactor(rr) >= ImbalanceFactor(cont) {
		t.Errorf("round-robin imbalance (%.2f) not below contiguous (%.2f)",
			ImbalanceFactor(rr), ImbalanceFactor(cont))
	}
	// Uniform popularity: both placements balanced.
	u := ZipfWeights(1000, 0)
	if f := ImbalanceFactor(ShardLoad(u, 4, PlaceContiguous)); f > 1.01 {
		t.Errorf("uniform contiguous imbalance = %v", f)
	}
}

// Property: shard loads always sum to ~1 and imbalance >= 1.
func TestShardLoadConservation(t *testing.T) {
	f := func(n8, shards8 uint8, s10 uint8) bool {
		n := int(n8)%500 + 4
		shards := int(shards8)%8 + 1
		s := float64(s10%30) / 10
		for _, p := range []Placement{PlaceContiguous, PlaceRoundRobin} {
			load := ShardLoad(ZipfWeights(n, s), shards, p)
			var sum float64
			for _, l := range load {
				if l < 0 {
					return false
				}
				sum += l
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			if ImbalanceFactor(load) < 0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDescribeSkew(t *testing.T) {
	s := DescribeSkew(1000, 4, 1.2, PlaceContiguous)
	if s == "" {
		t.Error("empty description")
	}
}
