package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableII(t *testing.T) {
	c := Default()
	if c.CPU.FreqMHz != 2000 {
		t.Errorf("CPU freq = %v MHz, Table II says 2 GHz", c.CPU.FreqMHz)
	}
	if c.CPU.SharedL2 != 2*MiB {
		t.Errorf("shared L2 = %d, Table II says 2MB", c.CPU.SharedL2)
	}
	if c.Memory.Controllers != 2 {
		t.Errorf("MCs = %d, Table II says 2", c.Memory.Controllers)
	}
	if got := c.Memory.HostDIMMs + c.Memory.NearMemDIMMs; got != 8 {
		t.Errorf("total DIMMs = %d, Table II says 8", got)
	}
	if c.Memory.NearMemGBps != 18.0 {
		t.Errorf("near-mem bandwidth = %v, Table II says 18 GB/s", c.Memory.NearMemGBps)
	}
	if c.Storage.SSDs != 4 {
		t.Errorf("SSDs = %d, Table II says 4", c.Storage.SSDs)
	}
	if c.Storage.DeviceGBps != 12.0 {
		t.Errorf("near-storage device bandwidth = %v, Table II says 12 GB/s", c.Storage.DeviceGBps)
	}
	if c.OnChip.NoCGBps != 100.0 {
		t.Errorf("on-chip NoC bandwidth = %v, Table II says 100 GB/s", c.OnChip.NoCGBps)
	}
	if c.Storage.NSBufferBytes != GiB {
		t.Errorf("NS DRAM buffer = %d, Table II says 1GB", c.Storage.NSBufferBytes)
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SystemConfig)
		want   string
	}{
		{"zero freq", func(c *SystemConfig) { c.CPU.FreqMHz = 0 }, "freq_mhz"},
		{"bad line", func(c *SystemConfig) { c.CPU.L2LineBytes = 48 }, "power of two"},
		{"no MCs", func(c *SystemConfig) { c.Memory.Controllers = 0 }, "controllers"},
		{"bad efficiency", func(c *SystemConfig) { c.Memory.StreamEfficieny = 1.5 }, "stream_efficiency"},
		{"pcie exceeds raw", func(c *SystemConfig) { c.Storage.HostPCIeGBps = 99 }, "raw link"},
		{"no instances", func(c *SystemConfig) { c.Instances = InstanceConfig{} }, "at least one"},
		{"neg latency", func(c *SystemConfig) { c.GAM.CommandLatencyNS = -1 }, "command_latency"},
		{"zero depth", func(c *SystemConfig) { c.GAM.StreamDepth = 0 }, "stream_depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted bad config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWithInstancesGrowsPopulation(t *testing.T) {
	c := Default().WithInstances(0, 16, 16)
	if c.Memory.NearMemDIMMs != 16 {
		t.Errorf("NearMemDIMMs = %d, want grown to 16", c.Memory.NearMemDIMMs)
	}
	if c.Storage.SSDs != 16 {
		t.Errorf("SSDs = %d, want grown to 16", c.Storage.SSDs)
	}
	// Shrinking instances must not shrink the population below default.
	c2 := Default().WithInstances(1, 1, 1)
	if c2.Memory.NearMemDIMMs != 4 || c2.Storage.SSDs != 4 {
		t.Errorf("population shrank: %d DIMMs, %d SSDs", c2.Memory.NearMemDIMMs, c2.Storage.SSDs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.json")
	c := Default().WithInstances(1, 8, 2)
	if err := c.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got != c {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	data := `{"cpu":{"freq_mhz":2000,"l1_bytes":32768,"shared_l2_bytes":2097152,"l2_assoc":16,"l2_line_bytes":64}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted config with zero memory controllers")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load accepted missing file")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted malformed JSON")
	}
}
