// mapping_explorer sweeps the stage→level mapping space of the CBIR
// pipeline through the public API and ranks every assignment by simulated
// throughput — the quantitative companion to the paper's §IV-B mapping
// argument. The ReACH runtime's decoupling of configuration from host code
// (§III) is what makes this a loop instead of 27 rewrites.
//
//	go run ./examples/mapping_explorer
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/runner"
	"repro/internal/workload"
	"repro/reach"
)

const batches = 6

type assignment struct {
	fe, sl, rr reach.Level
}

func (a assignment) String() string {
	return fmt.Sprintf("FE:%-8v SL:%-8v RR:%-8v", a.fe, a.sl, a.rr)
}

type outcome struct {
	a          assignment
	throughput float64 // batches per second
	latency    float64 // seconds
	energy     float64 // joules per batch
}

func main() {
	m := workload.DefaultModel()
	levels := []reach.Level{reach.OnChip, reach.NearMem, reach.NearStor}

	var assignments []assignment
	for _, fe := range levels {
		for _, sl := range levels {
			for _, rr := range levels {
				assignments = append(assignments, assignment{fe, sl, rr})
			}
		}
	}
	// Each assignment builds its own system, so the 27 evaluations run on
	// the shared worker pool (GOMAXPROCS workers by default).
	results, err := runner.Map(context.Background(), runner.Options{}, assignments,
		func(_ context.Context, _ int, a assignment) (outcome, error) {
			return evaluate(a, m)
		})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].throughput > results[j].throughput })

	fmt.Printf("%2s %-40s %10s %12s %10s\n", "#", "mapping", "batches/s", "latency ms", "J/batch")
	for i, o := range results {
		marker := ""
		if o.a == (assignment{reach.OnChip, reach.NearMem, reach.NearStor}) {
			marker = "  <- paper's ReACH mapping"
		}
		fmt.Printf("%2d %-40s %10.2f %12.1f %10.1f%s\n",
			i+1, o.a, o.throughput, o.latency*1000, o.energy, marker)
	}
}

// evaluate builds a fresh system for the assignment and streams batches
// through it. Stages mapped to a near-data level are split across its four
// instances; stages sharing a level time-multiplex its fabrics.
func evaluate(a assignment, m workload.Model) (outcome, error) {
	sys, err := reach.NewSystem(reach.WithInstances(1, 4, 4))
	if err != nil {
		return outcome{}, err
	}

	input, err := sys.CreateStream("Input", reach.CPU, a.fe, reach.Pair, m.BatchImageBytes(), 2)
	if err != nil {
		return outcome{}, err
	}
	feOut, err := sys.CreateStream("Features", a.fe, a.sl, reach.BroadCast, m.BatchFeatureBytes(), 2)
	if err != nil {
		return outcome{}, err
	}
	slOut, err := sys.CreateStream("Shortlists", a.sl, a.rr, reach.BroadCast, m.ShortlistResultBytesPerBatch(), 2)
	if err != nil {
		return outcome{}, err
	}
	result, err := sys.CreateStream("Result", a.rr, reach.CPU, reach.Collect, m.ResultBytesPerBatch(), 2)
	if err != nil {
		return outcome{}, err
	}

	fe, err := registerStage(sys, a.fe, "CNN", reach.Work{
		Stage: "FeatureExtraction", MACs: m.FeatureMACsPerBatch(),
		SPMResident: a.fe == reach.OnChip,
		StreamBytes: pick(a.fe == reach.OnChip, 0, m.CNN.CompressedParamBytes()+m.BatchImageBytes()),
		OutputBytes: m.BatchFeatureBytes(),
	}, input, feOut)
	if err != nil {
		return outcome{}, err
	}
	sl, err := registerStage(sys, a.sl, "GEMM", reach.Work{
		Stage: "ShortlistRetrieval", MACs: m.ShortlistMACsPerBatch(),
		StreamBytes: m.ShortlistScanBytesPerBatch(),
		OutputBytes: m.ShortlistResultBytesPerBatch(),
	}, feOut, slOut)
	if err != nil {
		return outcome{}, err
	}
	rr, err := registerStage(sys, a.rr, "KNN", reach.Work{
		Stage: "Rerank", MACs: m.RerankMACsPerBatch(),
		StreamBytes: m.RerankScanBytesPerBatch(), Random: true, FromStorage: true,
		OutputBytes: m.ResultBytesPerBatch(),
	}, slOut, result)
	if err != nil {
		return outcome{}, err
	}

	if err := sys.Deploy(); err != nil {
		return outcome{}, err
	}
	start := sys.Now()
	var jobs []*reach.Job
	for b := 0; b < batches; b++ {
		j, err := sys.Begin()
		if err != nil {
			return outcome{}, err
		}
		if err := j.Enqueue(input); err != nil {
			return outcome{}, err
		}
		for _, group := range [][]*reach.ACC{fe, sl, rr} {
			for _, acc := range group {
				if err := j.Execute(acc); err != nil {
					return outcome{}, err
				}
			}
		}
		if err := j.Commit(); err != nil {
			return outcome{}, err
		}
		jobs = append(jobs, j)
	}
	sys.Run()

	makespan := (jobs[len(jobs)-1].FinishedAt() - start).Seconds()
	return outcome{
		a:          a,
		throughput: float64(batches) / makespan,
		latency:    jobs[0].Latency().Seconds(),
		energy:     sys.TotalEnergy() / batches,
	}, nil
}

// registerStage deploys the stage kernel on every instance of the level
// (one instance on chip), splitting the per-batch work evenly, and wires
// the streams with explicit directions so same-level hops stay ordered.
func registerStage(sys *reach.System, l reach.Level, kernel string, w reach.Work, in, out *reach.Stream) ([]*reach.ACC, error) {
	name := kernel + "-ZCU9"
	instances := 4
	if l == reach.OnChip {
		name = kernel + "-VU9P"
		instances = 1
	}
	accs := make([]*reach.ACC, 0, instances)
	for i := 0; i < instances; i++ {
		acc, err := sys.RegisterAccAt(name, l, i)
		if err != nil {
			return nil, err
		}
		if in.Src != reach.CPU { // host inputs are handled by Enqueue
			if err := acc.SetInput(0, in); err != nil {
				return nil, err
			}
		} else if err := acc.SetArg(0, in); err != nil {
			return nil, err
		}
		if err := acc.SetOutput(1, out); err != nil {
			return nil, err
		}
		split := w
		split.MACs /= float64(instances)
		if split.StreamBytes > 0 {
			split.StreamBytes /= int64(instances)
		}
		split.OutputBytes /= int64(instances)
		acc.SetWork(split)
		accs = append(accs, acc)
	}
	return accs, nil
}

func pick(cond bool, a, b int64) int64 {
	if cond {
		return a
	}
	return b
}
