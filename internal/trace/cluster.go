package trace

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/qtrace"
)

// Cluster traces group events into one Chrome process per node plus a
// front-end process: pid 1 is the front end (query windows, cache lane,
// counters for the front-end tier), pid 2+i is node i (its FE and shard
// compute lanes, net in/out lanes, per-node counters and GAM spans).
// Process groups keep a 16-node trace navigable — Perfetto collapses each
// node to one row until expanded.
const clusterFEPID = 1

func clusterNodePID(i int) int { return 2 + i }

// AddCluster merges a cluster run's observability streams into the
// timeline: the per-query trace log fans out to per-node lanes (routed by
// each interval's detail label), the counter source's series land under
// their owning node's process, and each per-node span log lands under
// that node. Any argument may be nil (spans entries included). Taking a
// metrics.Source rather than the live recorder lets callers hand in a
// windowed view (metrics.WindowOf / metrics.WindowSpans) and cut a
// bundle-sized trace with the same renderer as a full-run trace; pass a
// MultiRecorder's Sampler and Spans fields for the full run. Beware
// typed-nil Sources: convert a possibly-nil *MultiSampler before calling.
func (t *Timeline) AddCluster(nodes int, l *qtrace.Log, counters metrics.Source, spans []*metrics.SpanLog) {
	t.SetProcessName(clusterFEPID, "front end")
	for i := 0; i < nodes; i++ {
		t.SetProcessName(clusterNodePID(i), fmt.Sprintf("node %d", i))
	}
	if l != nil {
		t.addClusterQueries(l)
	}
	if counters != nil {
		t.AddClusterCounters(counters)
	}
	for i, sl := range spans {
		if sl != nil {
			t.addSpansAt(clusterNodePID(i), sl)
		}
	}
}

// addClusterQueries renders each query as an async "b"/"e" pair on the
// front end (async events tolerate the arbitrary overlap of concurrent
// queries) and routes every recorded interval to the lane of the node that
// produced it.
func (t *Timeline) addClusterQueries(l *qtrace.Log) {
	for _, q := range l.Queries() {
		qid := fmt.Sprintf("q%d", q.ID)
		if q.Completed() {
			args := map[string]any{
				"job":        q.Job,
				"latency_ms": q.Latency().Milliseconds(),
			}
			if dom := q.Dominant(); dom.Phase != "" {
				args["dominant"] = fmt.Sprintf("%.0f%% %s %s@%s",
					dom.Share*100, dom.Phase, dom.Stage, dom.Level)
			}
			t.events = append(t.events,
				Event{
					Name: fmt.Sprintf("query %d", q.ID), Cat: "query",
					Phase: "b", TS: us(q.Arrival),
					PID: clusterFEPID, TID: t.laneAt(clusterFEPID, "queries"),
					ID: qid, Args: args,
				},
				Event{
					Name: fmt.Sprintf("query %d", q.ID), Cat: "query",
					Phase: "e", TS: us(q.Done),
					PID: clusterFEPID, TID: t.laneAt(clusterFEPID, "queries"),
					ID: qid,
				})
		}
		for _, iv := range q.Intervals {
			pid, lane := clusterIntervalLane(iv)
			t.events = append(t.events, Event{
				Name:  fmt.Sprintf("%s %s (query %d)", iv.Phase, iv.Stage, q.ID),
				Cat:   iv.Phase,
				Phase: "X",
				TS:    us(iv.Start),
				Dur:   us(iv.Duration()),
				PID:   pid,
				TID:   t.laneAt(pid, lane),
				Args: map[string]any{
					"stage":  iv.Stage,
					"level":  iv.Level,
					"detail": iv.Detail,
				},
			})
		}
	}
}

// clusterIntervalLane maps a cluster query interval to its producer's
// process and lane, keyed by the detail labels the cluster emits:
//
//	"fe-cache", "fe-coalesce"  front-end cache lane
//	"client-node<H>"           node H net in (image ingress)
//	"node<H>"                  node H fe (feature queue/exec)
//	"node<H>-node<R>"          node R net in (scatter delivery)
//	"shard<S>@node<R>"         node R shard<S> (shortlist+rerank)
//	"node<R>-fe"               node R net out (gather return)
//
// Anything unrecognized stays on the front end's "queries" lane rather
// than being dropped.
func clusterIntervalLane(iv qtrace.Interval) (int, string) {
	d := iv.Detail
	switch {
	case d == "fe-cache" || d == "fe-coalesce":
		return clusterFEPID, "cache"
	case strings.HasPrefix(d, "client-"):
		if n, ok := parseNodeLabel(strings.TrimPrefix(d, "client-")); ok {
			return clusterNodePID(n), "net in"
		}
	case strings.Contains(d, "@"):
		shard, node, _ := strings.Cut(d, "@")
		if n, ok := parseNodeLabel(node); ok {
			return clusterNodePID(n), shard
		}
	case strings.HasSuffix(d, "-fe"):
		if n, ok := parseNodeLabel(strings.TrimSuffix(d, "-fe")); ok {
			return clusterNodePID(n), "net out"
		}
	case strings.Contains(d, "-"):
		if _, dst, ok := strings.Cut(d, "-"); ok {
			if n, ok := parseNodeLabel(dst); ok {
				return clusterNodePID(n), "net in"
			}
		}
	default:
		if n, ok := parseNodeLabel(d); ok {
			return clusterNodePID(n), "fe"
		}
	}
	return clusterFEPID, "queries"
}

// parseNodeLabel extracts i from "node<i>".
func parseNodeLabel(s string) (int, bool) {
	if !strings.HasPrefix(s, "node") {
		return 0, false
	}
	n, err := strconv.Atoi(s[len("node"):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// AddClusterCounters is AddCounters with per-node process routing: series
// named "node<i>.*" (a node's GAM, accelerators and links) and
// "cluster.net.node<i>.*" (its cluster ingress/egress) land under node i's
// process with the node prefix stripped; everything else — the front-end
// tier's cache and ingress, the synthetic "sim.domain<N>" streams — stays
// on the front-end process under its full name.
func (t *Timeline) AddClusterCounters(s metrics.Source) {
	for _, se := range s.Series() {
		pid, display := clusterFEPID, se.Name
		if n, rest, ok := nodeSeriesName(se.Name); ok {
			pid, display = clusterNodePID(n), rest
		}
		t.addCounterSeries(pid, display, s, se)
	}
}

// nodeSeriesName resolves a registry series name to its owning node:
// "node3.gam.readyq" → (3, "gam.readyq"), "cluster.net.node3.out" →
// (3, "net.out").
func nodeSeriesName(name string) (int, string, bool) {
	if rest, ok := strings.CutPrefix(name, "cluster.net."); ok {
		node, tail, found := strings.Cut(rest, ".")
		if !found {
			return 0, "", false
		}
		if n, ok := parseNodeLabel(node); ok {
			return n, "net." + tail, true
		}
		return 0, "", false
	}
	node, tail, found := strings.Cut(name, ".")
	if !found {
		return 0, "", false
	}
	if n, ok := parseNodeLabel(node); ok {
		return n, tail, true
	}
	return 0, "", false
}
