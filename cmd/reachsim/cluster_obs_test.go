package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestValidateFlagMatrix pins the flag-combination contract: a flag the
// selected mode would silently ignore is an error, every meaningful
// combination is accepted. Before observability reached the -cluster
// path, `-cluster -metrics` ran and did nothing; now the ignored combos
// fail fast and the meaningful ones do work (see the artifact test below).
func TestValidateFlagMatrix(t *testing.T) {
	given := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	rejected := []struct {
		flags []string
		want  string // substring of the error
	}{
		{[]string{"cluster", "exp"}, "-exp"},
		{[]string{"cluster", "stats"}, "-stats"},
		{[]string{"cluster", "list"}, "-list"},
		{[]string{"cluster", "config"}, "-config"},
		{[]string{"cluster", "benchout"}, "-benchout"},
		{[]string{"cluster", "j"}, "-j"},
		{[]string{"cluster", "qtrace"}, "-qtrace"},
		{[]string{"cluster", "progress"}, "-progress"},
		{[]string{"nodes"}, "-nodes requires -cluster"},
		{[]string{"route"}, "-route requires -cluster"},
		{[]string{"cache"}, "-cache requires -cluster"},
		{[]string{"cache-ttl"}, "-cache-ttl requires -cluster"},
		{[]string{"slo"}, "-slo requires -cluster"},
		{[]string{"slo-window"}, "-slo-window requires -cluster"},
		{[]string{"cluster", "slo-window"}, "-slo-window requires -slo"},
		{[]string{"cluster", "cache", "cache-ttl", "slo-window"}, "-slo-window requires -slo"},
		{[]string{"cluster", "cache-ttl"}, "-cache-ttl requires -cache"},
		{[]string{"http-linger"}, "-http-linger requires -http"},
		{[]string{"cluster", "http-linger"}, "-http-linger requires -http"},
		{[]string{"flight"}, "-flight requires -cluster"},
		{[]string{"arrival"}, "-arrival requires -cluster"},
		{[]string{"flight-window"}, "-flight-window requires -cluster"},
		{[]string{"cluster", "flight-window"}, "-flight-window requires -flight"},
		{[]string{"cluster", "detect"}, "-detect requires -flight"},
		{[]string{"cluster", "detect", "flight-window"}, "requires -flight"},
	}
	for _, c := range rejected {
		err := validateFlags(given(c.flags...))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("flags %v: err = %v, want %q", c.flags, err, c.want)
		}
	}
	accepted := [][]string{
		{},
		{"exp", "j", "csv", "metrics", "metrics-interval", "spans", "qtrace", "progress", "benchout"},
		{"exp", "http", "http-linger"},
		{"pj"}, // clustersweep spends -pj without -cluster
		{"trace", "spans", "metrics-interval"},
		{"cluster", "nodes", "route", "pj", "cache", "cache-ttl", "csv"},
		{"cluster", "metrics", "metrics-interval", "spans", "trace", "slo", "slo-window", "http", "http-linger"},
		{"cluster", "flight"},
		{"cluster", "flight", "flight-window", "detect", "arrival", "slo", "metrics", "trace"},
		{"stats", "csv"},
	}
	for _, flags := range accepted {
		if err := validateFlags(given(flags...)); err != nil {
			t.Errorf("flags %v: unexpected error %v", flags, err)
		}
	}
}

// TestClusterObsSmokeArtifacts validates the files `make
// cluster-obs-smoke` produced: the trace JSON must parse into
// Chrome-trace events with per-node process groups and the report must
// carry all three tables. The byte-diffs across -pj already ran in the
// recipe. Skipped unless CLUSTER_OBS_SMOKE_DIR points at the smoke
// output directory.
func TestClusterObsSmokeArtifacts(t *testing.T) {
	dir := os.Getenv("CLUSTER_OBS_SMOKE_DIR")
	if dir == "" {
		t.Skip("CLUSTER_OBS_SMOKE_DIR not set; run via `make cluster-obs-smoke`")
	}

	t.Run("trace-json", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "trace-pj1.json"))
		if err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal(raw, &events); err != nil {
			t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
		}
		procs := map[float64]string{}
		var slices, spans int
		for _, e := range events {
			switch e["ph"] {
			case "M":
				if e["name"] == "process_name" {
					args, _ := e["args"].(map[string]any)
					procs[e["pid"].(float64)], _ = args["name"].(string)
				}
			case "X":
				slices++
				if cat, _ := e["cat"].(string); strings.HasPrefix(cat, "gam.") {
					spans++
				}
			}
		}
		if procs[1] != "front end" || len(procs) < 2 {
			t.Errorf("process groups = %v, want front end + nodes", procs)
		}
		if slices == 0 || spans == 0 {
			t.Errorf("trace missing event classes: %d slices, %d gam spans", slices, spans)
		}
	})

	t.Run("report-tables", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "report-pj1.txt"))
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"Cluster scatter-gather", "Straggler attribution", "SLO windows",
		} {
			if !strings.Contains(string(raw), want) {
				t.Errorf("report missing %q", want)
			}
		}
	})

	t.Run("metrics-csv", func(t *testing.T) {
		f, err := os.Open(filepath.Join(dir, "metrics-pj1.csv"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := csv.NewReader(f).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 2 {
			t.Fatal("metrics CSV has no data rows")
		}
		if got, want := strings.Join(rows[0], ","), strings.Join(metrics.CSVHeader(), ","); got != want {
			t.Errorf("metrics CSV header %q, want %q", got, want)
		}
	})
}

// TestClusterObsArtifactsParallelInvariant is the tentpole's CLI
// acceptance bar: with every observability sink on — barrier metrics,
// spans, the Chrome trace and the SLO monitor — the pinned -cluster run
// produces byte-identical stdout and artifacts at -pj 1, 4 and 8, and the
// artifacts are well-formed (straggler attribution table, SLO window
// table, parseable trace JSON, schema-true metrics CSV).
func TestClusterObsArtifactsParallelInvariant(t *testing.T) {
	type rendered struct {
		stdout  string
		metrics []byte
		trace   []byte
	}
	render := func(pj int) rendered {
		dir := t.TempDir()
		mpath := filepath.Join(dir, "metrics.csv")
		tpath := filepath.Join(dir, "trace.json")
		var out strings.Builder
		err := runCluster(&out, clusterOptions{
			pj:          pj,
			metrics:     &metrics.Options{Spans: true},
			metricsPath: mpath,
			tracePath:   tpath,
			sloMs:       250,
			sloWindowMs: 100,
		})
		if err != nil {
			t.Fatalf("pj=%d: %v", pj, err)
		}
		m, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := os.ReadFile(tpath)
		if err != nil {
			t.Fatal(err)
		}
		return rendered{stdout: out.String(), metrics: m, trace: tr}
	}

	serial := render(1)
	for _, want := range []string{
		"Cluster scatter-gather",
		"Straggler attribution",
		"SLO windows",
		"dominant cause",
	} {
		if !strings.Contains(serial.stdout, want) {
			t.Errorf("observed -cluster stdout missing %q:\n%s", want, serial.stdout)
		}
	}
	// The summary table itself must match the unobserved golden: turning
	// observability on never moves a simulated number.
	golden, err := os.ReadFile(filepath.Join("testdata", "cluster_smoke.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(serial.stdout, string(golden)) {
		t.Errorf("observed run's summary diverged from cluster_smoke.golden:\n%s", serial.stdout)
	}

	rows, err := csv.NewReader(strings.NewReader(string(serial.metrics))).ReadAll()
	if err != nil {
		t.Fatalf("metrics CSV unreadable: %v", err)
	}
	if len(rows) < 2 {
		t.Fatal("metrics CSV has no data rows")
	}
	if got, want := strings.Join(rows[0], ","), strings.Join(metrics.CSVHeader(), ","); got != want {
		t.Errorf("metrics CSV header %q, want %q", got, want)
	}
	sawNode, sawDomain := false, false
	for _, row := range rows[1:] {
		if strings.HasPrefix(row[3], "node") {
			sawNode = true
		}
		if strings.HasPrefix(row[3], "sim.domain") {
			sawDomain = true
		}
	}
	if !sawNode || !sawDomain {
		t.Errorf("metrics CSV missing series classes: node=%v domain=%v", sawNode, sawDomain)
	}

	var events []map[string]any
	if err := json.Unmarshal(serial.trace, &events); err != nil {
		t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
	}
	procs := 0
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "process_name" {
			procs++
		}
	}
	if procs < 2 {
		t.Errorf("trace has %d process groups, want front end + nodes", procs)
	}

	for _, pj := range []int{4, 8} {
		got := render(pj)
		if got.stdout != serial.stdout {
			t.Errorf("-pj %d stdout diverged from -pj 1", pj)
		}
		if string(got.metrics) != string(serial.metrics) {
			t.Errorf("-pj %d metrics CSV diverged from -pj 1", pj)
		}
		if string(got.trace) != string(serial.trace) {
			t.Errorf("-pj %d trace JSON diverged from -pj 1", pj)
		}
	}
}
