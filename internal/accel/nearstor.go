package accel

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/sim"
	"repro/internal/storage"
)

// NearStorAccel is one near-storage accelerator (paper §II-C, Fig. 4): an
// embedded Zynq fabric attached to a single NVMe SSD via a local PCIe
// link, with a private 1 GB DRAM buffer that caches kernel parameters to
// limit flash accesses and exploit parameter reuse.
type NearStorAccel struct {
	p    *Platform
	name string
	fab  *fpga.Fabric
	ssd  int // index into the storage array / DevBuffers

	// BufferHitRatio is the fraction of SourceDeviceDRAM traffic served by
	// the private buffer (the remainder falls through to flash). Parameter
	// working sets that fit the 1 GB buffer hit ~always.
	BufferHitRatio float64
}

// NewNearStor attaches a new near-storage accelerator to SSD i.
func (p *Platform) NewNearStor(i int) (*NearStorAccel, error) {
	if i < 0 || i >= p.Storage.Len() {
		return nil, fmt.Errorf("accel: no SSD %d (have %d)", i, p.Storage.Len())
	}
	name := p.id(NearStorage)
	return &NearStorAccel{
		p:              p,
		name:           name,
		fab:            fpga.NewFabric(p.Eng, name, fpga.ZynqZCU9),
		ssd:            i,
		BufferHitRatio: 1.0,
	}, nil
}

// Name reports the instance name.
func (a *NearStorAccel) Name() string { return a.name }

// Level reports NearStorage.
func (a *NearStorAccel) Level() Level { return NearStorage }

// Fabric exposes the device fabric.
func (a *NearStorAccel) Fabric() *fpga.Fabric { return a.fab }

// SSD reports the attached device index.
func (a *NearStorAccel) SSD() int { return a.ssd }

// BusyUntil reports when the device can accept the next task.
func (a *NearStorAccel) BusyUntil() sim.Time { return a.fab.BusyUntil() }

// Estimate returns the synthesis-report runtime estimate.
func (a *NearStorAccel) Estimate(t *Task) sim.Time { return estimate(t) }

// Execute runs one task on the near-storage accelerator.
func (a *NearStorAccel) Execute(t *Task) (sim.Time, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	if !a.fab.Idle() {
		return 0, fmt.Errorf("accel: %s busy until %v", a.name, a.fab.BusyUntil())
	}
	now := a.p.Eng.Now()
	meter := a.p.Meter
	buf := a.p.DevBuffers[a.ssd]

	supplyDone := now
	switch t.Source {
	case SourceSPM:
		// Resident in the fabric's scratchpad.
	case SourceSSD:
		// The whole point of the level: the local FPGA-SSD link exposes
		// the device's internal bandwidth without touching the host IO
		// interface, so aggregate bandwidth scales with the SSD count.
		supplyDone = a.p.Storage.DeviceRead(a.ssd, t.Bytes, t.Pattern)
		meter.SSDTraffic(t.Stage, t.Bytes)
		meter.PCIeTraffic(t.Stage, t.Bytes) // local FPGA-SSD link
	case SourceDeviceDRAM:
		hit := int64(float64(t.Bytes) * a.BufferHitRatio)
		miss := t.Bytes - hit
		if hit > 0 {
			if t.Pattern == storage.RandomPages {
				supplyDone = buf.Random(hit)
			} else {
				supplyDone = buf.Stream(hit)
			}
			meter.DRAMTraffic(t.Stage, hit)
		}
		if miss > 0 {
			// Fall through to flash, then fill the buffer.
			if d := a.p.Storage.DeviceRead(a.ssd, miss, t.Pattern); d > supplyDone {
				supplyDone = d
			}
			buf.Stream(miss)
			meter.SSDTraffic(t.Stage, miss)
			meter.PCIeTraffic(t.Stage, miss)
			meter.DRAMTraffic(t.Stage, miss)
		}
	case SourceHostDRAM:
		// Host pushes data over the shared host PCIe link into the
		// device buffer; the kernel reads it back from the buffer.
		hostDone := a.p.Storage.HostToDevice(a.ssd, t.Bytes)
		bufDone := buf.Stream(2 * t.Bytes)
		supplyDone = maxT(hostDone, bufDone)
		meter.DRAMTraffic(t.Stage, 3*t.Bytes) // host read + buffer write/read
		meter.MCTraffic(t.Stage, t.Bytes)
		meter.PCIeTraffic(t.Stage, t.Bytes)
	default:
		return 0, fmt.Errorf("accel: %s cannot stream from %v", a.name, t.Source)
	}

	kernelDur := t.Kernel.Duration(t.MACs, t.Bytes)
	done := now + kernelDur
	if supplyDone > done {
		done = supplyDone
	}
	a.fab.Occupy(done - now)
	meter.AddActive(t.Stage, t.Kernel.Power(true), done-now)

	if t.OutputBytes > 0 {
		buf.Stream(t.OutputBytes)
		meter.DRAMTraffic(t.Stage, t.OutputBytes)
	}
	return done, nil
}
