package cluster

import (
	"testing"

	"repro/internal/workload"
)

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"hash", PolicyHash}, {"rr", PolicyRR}, {"round-robin", PolicyRR}, {"p2c", PolicyP2C}, {"power-of-two", PolicyP2C}} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", tc.in, p, err, tc.want)
		}
	}
	if _, err := ParsePolicy("sticky"); err == nil {
		t.Fatal("ParsePolicy accepted unknown policy")
	}
}

func TestRouterRoundRobinEven(t *testing.T) {
	r := NewRouter(PolicyRR, 4, 1)
	cands := []int{0, 1, 2, 3}
	for i := 0; i < 400; i++ {
		r.Pick(uint64(i), cands)
	}
	for n, c := range r.Routed() {
		if c != 100 {
			t.Fatalf("rr routed %d requests to node %d, want 100", c, n)
		}
	}
}

func TestRouterHashDeterministic(t *testing.T) {
	a := NewRouter(PolicyHash, 8, 1)
	b := NewRouter(PolicyHash, 8, 99) // hash ignores the seed
	cands := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 100; i++ {
		if x, y := a.Pick(uint64(i), cands), b.Pick(uint64(i), cands); x != y {
			t.Fatalf("hash pick for key %d differs: %d vs %d", i, x, y)
		}
	}
}

func TestRouterP2CSeedDeterministic(t *testing.T) {
	a := NewRouter(PolicyP2C, 8, 7)
	b := NewRouter(PolicyP2C, 8, 7)
	cands := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 500; i++ {
		x, y := a.Pick(uint64(i), cands), b.Pick(uint64(i), cands)
		if x != y {
			t.Fatalf("p2c pick %d differs under identical seeds: %d vs %d", i, x, y)
		}
		if i%3 == 0 {
			a.Done(x)
			b.Done(y)
		}
	}
}

// zipfKeys builds a deterministic request-key sequence whose key
// popularity follows the given Zipf weights: key k appears in proportion
// to weights[k], interleaved so hot keys recur throughout the sequence.
func zipfKeys(total int, weights []float64) []uint64 {
	counts := make([]int, len(weights))
	for k, w := range weights {
		counts[k] = int(w * float64(total))
	}
	var out []uint64
	for len(out) < total {
		for k, c := range counts {
			if c > 0 {
				out = append(out, uint64(k))
				counts[k] = c - 1
			}
		}
		// All residuals spent: pad with the hottest key.
		exhausted := true
		for _, c := range counts {
			if c > 0 {
				exhausted = false
				break
			}
		}
		if exhausted {
			for len(out) < total {
				out = append(out, 0)
			}
		}
	}
	return out[:total]
}

// drive routes the key sequence through a router with a bounded service
// rate: each step routes one request and, every `serviceEvery` steps,
// completes the oldest outstanding request (FIFO) — so load piles up on
// whichever nodes the policy concentrates.
func drive(r *Router, keys []uint64, nodes, serviceEvery int) {
	cands := make([]int, nodes)
	for i := range cands {
		cands[i] = i
	}
	var fifo []int
	for i, k := range keys {
		fifo = append(fifo, r.Pick(k, cands))
		if serviceEvery > 0 && i%serviceEvery == serviceEvery-1 {
			r.Done(fifo[0])
			fifo = fifo[1:]
		}
	}
}

// TestP2CQueueDepthBound is the routing property the cluster leans on:
// under Zipf-skewed request keys, power-of-two-choices keeps the peak
// queue-depth imbalance (max node peak over mean node peak) within a
// pinned bound, and never worse than hash routing — which sends every
// repeat of a hot key to the same node and piles its queue high.
func TestP2CQueueDepthBound(t *testing.T) {
	const (
		nodes        = 8
		requests     = 4000
		serviceEvery = 2 // service half the offered rate: queues grow
		pinnedBound  = 1.5
	)
	keys := zipfKeys(requests, workload.ZipfWeights(64, 1.2))

	hash := NewRouter(PolicyHash, nodes, 1)
	drive(hash, keys, nodes, serviceEvery)
	p2c := NewRouter(PolicyP2C, nodes, 1)
	drive(p2c, keys, nodes, serviceEvery)

	hi, pi := hash.PeakImbalance(), p2c.PeakImbalance()
	t.Logf("peak queue-depth imbalance: hash %.3f, p2c %.3f", hi, pi)
	if pi > pinnedBound {
		t.Fatalf("p2c peak imbalance %.3f exceeds pinned bound %.1f", pi, pinnedBound)
	}
	if pi > hi {
		t.Fatalf("p2c peak imbalance %.3f worse than hash %.3f under Zipf keys", pi, hi)
	}
}
