package mem

import (
	"testing"

	"repro/internal/sim"
)

// noRefresh returns timing with refresh disabled, for A/B comparisons.
func noRefresh() DDR4Timing {
	t := DDR42400()
	t.TREFI = 0
	return t
}

func TestRefreshStealsBandwidth(t *testing.T) {
	stream := func(timing DDR4Timing) (sim.Time, uint64) {
		eng := sim.NewEngine()
		d := NewDIMM(eng, "d", timing, DefaultGeometry())
		c := NewController(eng, "mc", []*DIMM{d}, 64, 64)
		const lines = 8192
		next := 0
		var finish sim.Time
		var submit func()
		submit = func() {
			for next < lines {
				ok := c.Submit(&Request{Addr: int64(next) * 64, Done: func(at sim.Time) {
					if at > finish {
						finish = at
					}
					submit()
				}})
				if !ok {
					return
				}
				next++
			}
		}
		submit()
		eng.Run()
		return finish, d.Refreshes()
	}

	withRef, refs := stream(DDR42400())
	without, zeroRefs := stream(noRefresh())
	if zeroRefs != 0 {
		t.Errorf("refresh-disabled DIMM issued %d REFs", zeroRefs)
	}
	if refs == 0 {
		t.Error("no refreshes during a multi-tREFI stream")
	}
	if withRef <= without {
		t.Errorf("refresh did not slow the stream: %v vs %v", withRef, without)
	}
	// Raw tRFC/tREFI is ≈4.5 %; with activation lookahead most of the
	// post-refresh row reopening hides under the data bus, so the
	// measured loss lands in the low single digits.
	loss := float64(withRef-without) / float64(without)
	if loss <= 0.005 || loss > 0.10 {
		t.Errorf("refresh bandwidth loss = %.1f%%, want in (0.5%%, 10%%]", loss*100)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	eng := sim.NewEngine()
	timing := DDR42400()
	d := NewDIMM(eng, "d", timing, DefaultGeometry())
	// Open a row, then jump past several refresh intervals.
	done := d.Access(0, false)
	eng.RunUntil(done + 3*timing.TREFI)
	// The row must have been closed by refresh: the next same-row access
	// pays activation again (row miss).
	hitsBefore := d.banks[0].rowHits
	d.Access(0, false)
	if d.banks[0].rowHits != hitsBefore {
		t.Error("access after refresh hit a row that refresh should have closed")
	}
	if d.Refreshes() < 3 {
		t.Errorf("refreshes = %d, want >= 3 after 3 tREFI", d.Refreshes())
	}
}

func TestRefreshDisabledKeepsRowsOpen(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDIMM(eng, "d", noRefresh(), DefaultGeometry())
	done := d.Access(0, false)
	eng.RunUntil(done + 100*sim.Microsecond)
	hitsBefore := d.banks[0].rowHits
	d.Access(0, false)
	if d.banks[0].rowHits != hitsBefore+1 {
		t.Error("row closed without refresh enabled")
	}
}
