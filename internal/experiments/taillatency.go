package experiments

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/qtrace"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TailPoint is one offered-rate measurement of the tail-latency sweep:
// sketch quantiles over every completed query plus an attribution summary
// of the queries above the p99 estimate.
type TailPoint struct {
	OfferedQPS float64
	Completed  uint64

	Mean sim.Time
	P50  sim.Time
	P95  sim.Time
	P99  sim.Time
	P999 sim.Time

	// TailCount is how many queries finished above the p99 estimate.
	TailCount int
	// TailQueueShare is the fraction of those whose dominant phase is
	// queue wait — the signature of a saturated stage.
	TailQueueShare float64
	// TailStage/TailLevel name the modal dominant (stage, level) among the
	// over-p99 queries: where the slowest queries spent most of their lives.
	TailStage string
	TailLevel string
}

// TailRatio is p99 over p50 — the divergence measure: near 1 on an
// unloaded system, growing without bound past saturation.
func (p *TailPoint) TailRatio() float64 {
	if p.P50 <= 0 {
		return 0
	}
	return float64(p.P99) / float64(p.P50)
}

// TailLatencyResult is one mapping's sweep: latency quantiles versus
// offered queries per second under Poisson open-loop arrivals.
type TailLatencyResult struct {
	Option string
	Points []*TailPoint
	// Runs holds the per-rate results (carrying RunResult.QLog) for
	// per-query export and trace lanes.
	Runs []*RunResult
}

// Defaults for the two-mapping comparison: rates climbing toward the
// on-chip baseline's saturation point (its ~0.6 s service time saturates a
// single instance below 2 q/s, while ReACH's pipeline stays lightly
// loaded), enough queries per rate for a meaningful p99, and a fixed seed
// so the sweep is reproducible.
const (
	DefaultTailBatches = 96
	DefaultTailSeed    = 1
)

// DefaultTailRates approaches on-chip saturation while ReACH stays bounded.
func DefaultTailRates() []float64 { return []float64{0.25, 0.5, 1, 1.5} }

// tailLatencySpecs is the run matrix: one Poisson open-loop run per
// offered rate, each with a per-query trace log attached.
func tailLatencySpecs(m workload.Model, mp Mapping, n int, rates []float64, batches int, seed int64) []RunSpec {
	arr := ArrivalSpec{Process: ArrivalPoisson, Seed: seed}
	specs := make([]RunSpec, len(rates))
	for i, rate := range rates {
		specs[i] = RunSpec{
			Name:      fmt.Sprintf("taillatency %.2f q/s", rate),
			Model:     m,
			Mapping:   mp,
			Instances: n,
			Batches:   batches,
			SubmitAt:  arr.schedule(rate, batches, int64(i)),
			QTrace:    &qtrace.Options{},
		}
	}
	return specs
}

// tailPoint reduces one rate's run to its quantiles and tail attribution.
func tailPoint(rate float64, run *RunResult) *TailPoint {
	sk := run.QLog.Sketch()
	p := &TailPoint{
		OfferedQPS: rate,
		Completed:  sk.Count(),
		Mean:       sk.Mean(),
		P50:        sk.Quantile(0.5),
		P95:        sk.Quantile(0.95),
		P99:        sk.Quantile(0.99),
		P999:       sk.Quantile(0.999),
	}
	type key struct{ stage, level string }
	modal := map[key]int{}
	queue := 0
	for _, q := range run.QLog.Queries() {
		if !q.Completed() || q.Latency() <= p.P99 {
			continue
		}
		p.TailCount++
		dom := q.Dominant()
		if dom.Phase == qtrace.PhaseQueue {
			queue++
		}
		modal[key{dom.Stage, dom.Level}]++
	}
	if p.TailCount > 0 {
		p.TailQueueShare = float64(queue) / float64(p.TailCount)
		// Modal (stage, level), ties broken by name so the reduction is
		// deterministic.
		keys := make([]key, 0, len(modal))
		for k := range modal {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if modal[keys[i]] != modal[keys[j]] {
				return modal[keys[i]] > modal[keys[j]]
			}
			if keys[i].stage != keys[j].stage {
				return keys[i].stage < keys[j].stage
			}
			return keys[i].level < keys[j].level
		})
		p.TailStage, p.TailLevel = keys[0].stage, keys[0].level
	}
	return p
}

// TailLatency sweeps offered load with seeded Poisson open-loop arrivals
// and reduces each rate's per-query trace log to latency quantiles with
// tail attribution.
func TailLatency(m workload.Model, mp Mapping, n int, rates []float64, batches int, seed int64, opts ...Option) (*TailLatencyResult, error) {
	runs, err := RunSpecs(tailLatencySpecs(m, mp, n, rates, batches, seed), opts...)
	if err != nil {
		return nil, err
	}
	res := &TailLatencyResult{Runs: runs}
	for i, rate := range rates {
		res.Points = append(res.Points, tailPoint(rate, runs[i]))
	}
	return res, nil
}

// TailLatencyBoth runs the sweep for the on-chip baseline and the ReACH
// mapping — the tail-latency view of the paper's throughput claim: past
// the baseline's saturation its p99/p50 diverges while the hierarchy's
// stays bounded, and the over-p99 queries name the saturated stage's
// queue as their dominant phase.
func TailLatencyBoth(m workload.Model, opts ...Option) (onchip, reach *TailLatencyResult, err error) {
	onchip, err = TailLatency(m, SingleLevel(accel.OnChip), 1,
		DefaultTailRates(), DefaultTailBatches, DefaultTailSeed, opts...)
	if err != nil {
		return nil, nil, err
	}
	onchip.Option = "onchip"
	reach, err = TailLatency(m, ReACHMapping(), 4,
		DefaultTailRates(), DefaultTailBatches, DefaultTailSeed, opts...)
	if err != nil {
		return nil, nil, err
	}
	reach.Option = "ReACH"
	return onchip, reach, nil
}

// TailLatencyTable renders both options side by side with the divergence
// ratio and a tail-attribution note for the most loaded point.
func TailLatencyTable(onchip, reach *TailLatencyResult) *report.Table {
	t := &report.Table{
		Title: "Tail latency — quantiles vs offered QPS (Poisson open loop)",
		Columns: []string{"Offered q/s",
			"onchip p50 ms", "onchip p99 ms", "onchip p99/p50",
			"ReACH p50 ms", "ReACH p99 ms", "ReACH p99/p50"},
	}
	for i := range onchip.Points {
		o, r := onchip.Points[i], reach.Points[i]
		t.AddRow(
			report.F(o.OfferedQPS, 1),
			report.F(o.P50.Milliseconds(), 0),
			report.F(o.P99.Milliseconds(), 0),
			report.F(o.TailRatio(), 2),
			report.F(r.P50.Milliseconds(), 0),
			report.F(r.P99.Milliseconds(), 0),
			report.F(r.TailRatio(), 2),
		)
	}
	if n := len(onchip.Points); n > 0 {
		last := onchip.Points[n-1]
		if last.TailCount > 0 {
			t.AddNote("onchip tail at %.1f q/s: %.0f%% of the %d over-p99 queries dominated by queue wait (modal: %s at %s)",
				last.OfferedQPS, last.TailQueueShare*100, last.TailCount,
				last.TailStage, last.TailLevel)
		}
		rlast := reach.Points[n-1]
		t.AddNote("p99/p50 at %.1f q/s: onchip %.2f, ReACH %.2f",
			last.OfferedQPS, last.TailRatio(), rlast.TailRatio())
	}
	return t
}
