package trace

import (
	"repro/internal/sim"
)

// AddResources records the end-of-run state of every active shared
// resource in the central registry as counter events on a per-resource
// lane: payload bytes, accumulated wait and stall counts become counter
// tracks in the viewer, so bottleneck resources stand out next to the
// task lanes. Idle resources are skipped.
func (t *Timeline) AddResources(reg *sim.StatsRegistry, now sim.Time) {
	reg.Walk(func(name string, res sim.Resource) {
		st := res.ResourceStats()
		if st.Ops == 0 && st.Stalls == 0 {
			return
		}
		args := map[string]any{
			"ops":    st.Ops,
			"stalls": st.Stalls,
		}
		if st.Bytes > 0 {
			args["bytes"] = st.Bytes
		}
		if st.Wait > 0 {
			args["wait_us"] = us(st.Wait)
		}
		if st.MaxOccupancy > 0 {
			args["max_occ"] = st.MaxOccupancy
		}
		t.events = append(t.events, Event{
			Name:  name,
			Cat:   "resource." + string(st.Kind),
			Phase: "C",
			TS:    us(now),
			PID:   1,
			TID:   t.lane("resources"),
			Args:  args,
		})
	})
}
