package config

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultClusterValid(t *testing.T) {
	c := DefaultCluster()
	if err := c.Validate(); err != nil {
		t.Fatalf("default cluster config invalid: %v", err)
	}
}

func TestClusterReplicaNodesDerived(t *testing.T) {
	c := DefaultCluster()
	c.Nodes, c.Shards, c.Replication = 4, 4, 2
	got := c.ReplicaNodes(3)
	want := []int{3, 0}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ReplicaNodes(3) = %v, want %v", got, want)
	}
	// Replication clamped to node count.
	c.Replication = 9
	if n := len(c.ReplicaNodes(0)); n != 4 {
		t.Fatalf("over-replicated shard has %d replicas, want 4", n)
	}
}

// TestClusterValidateNamesBadEntry pins the error-message contract: a bad
// shard map names the offending shard/replica/node, not just "invalid".
func TestClusterValidateNamesBadEntry(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ClusterConfig)
		wantSub string
	}{
		{"unassigned shard", func(c *ClusterConfig) {
			c.ShardMap = [][]int{{0}, {1}, {}, {3}}
		}, "shard 2 has no replica nodes"},
		{"node out of range", func(c *ClusterConfig) {
			c.ShardMap = [][]int{{0}, {1}, {2}, {7}}
		}, "shard 3 replica 0 assigned to node 7"},
		{"duplicate replica", func(c *ClusterConfig) {
			c.ShardMap = [][]int{{0}, {1}, {2, 2}, {3}}
		}, "shard 2 lists node 2 twice"},
		{"short shard map", func(c *ClusterConfig) {
			c.ShardMap = [][]int{{0}, {1}}
		}, "shard_map covers 2 shards, config declares 4"},
		{"replication exceeds nodes", func(c *ClusterConfig) {
			c.Replication = 5
		}, "replication 5 exceeds node count 4"},
		{"bad policy", func(c *ClusterConfig) {
			c.RoutePolicy = "sticky"
		}, `unknown route_policy "sticky"`},
		{"bad quorum", func(c *ClusterConfig) {
			c.Quorum = 9
		}, "quorum 9 out of range"},
		{"bad net", func(c *ClusterConfig) {
			c.NetGBps = 0
		}, "net_gbps must be positive"},
		{"no contents", func(c *ClusterConfig) {
			c.ContentItems = 0
		}, "content_items must be >= 1"},
		{"negative cache", func(c *ClusterConfig) {
			c.CacheEntries = -1
		}, "cache_entries must be non-negative"},
		{"cache without ttl", func(c *ClusterConfig) {
			c.CacheEntries = 8
			c.CacheTTLMS = 0
		}, "cache_ttl_ms must be positive"},
		{"negative hit latency", func(c *ClusterConfig) {
			c.CacheHitUS = -1
		}, "cache_hit_us must be non-negative"},
		{"negative coalesce latency", func(c *ClusterConfig) {
			c.CoalesceUS = -1
		}, "coalesce_us must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultCluster()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the bad entry (want substring %q)", err, tc.wantSub)
			}
		})
	}
}

func TestClusterValidateNodeConfig(t *testing.T) {
	c := DefaultCluster()
	c.Node.Memory.ChannelGBps = 0
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "node config") {
		t.Fatalf("bad node config not surfaced: %v", err)
	}
}

func TestClusterSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	c := DefaultCluster()
	c.ShardMap = [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	if err := c.SaveCluster(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCluster(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != c.Nodes || got.RoutePolicy != c.RoutePolicy || len(got.ShardMap) != 4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}
