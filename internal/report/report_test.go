package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Sample",
		Columns: []string{"name", "value"},
	}
	t.AddRow("alpha", "1")
	t.AddRow("beta-long-name", "22.5")
	t.AddRow("gamma") // short row padded
	t.AddNote("n = %d", 3)
	return t
}

func TestRenderAlignment(t *testing.T) {
	var sb strings.Builder
	if err := sample().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(out, "\n")
	if lines[0] != "Sample" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "====") {
		t.Errorf("underline = %q", lines[1])
	}
	// Values column must start at the same offset on each row.
	hdr := lines[2]
	valCol := strings.Index(hdr, "value")
	if valCol < 0 {
		t.Fatalf("header %q missing value column", hdr)
	}
	for _, row := range lines[4:6] {
		if len(row) > valCol {
			cell := row[valCol:]
			if strings.HasPrefix(cell, " ") {
				t.Errorf("row %q misaligned at column %d", row, valCol)
			}
		}
	}
	if !strings.Contains(out, "note: n = 3") {
		t.Error("note missing")
	}
	// No trailing spaces on any line.
	for i, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Errorf("line %d has trailing spaces: %q", i, l)
		}
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# Sample\n") {
		t.Errorf("missing title comment: %q", out[:20])
	}
	if !strings.Contains(out, "name,value\n") {
		t.Error("missing header row")
	}
	if !strings.Contains(out, "beta-long-name,22.5\n") {
		t.Error("missing data row")
	}
	if !strings.Contains(out, "# n = 3\n") {
		t.Error("missing note comment")
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("1", "2", "3") // extra cell dropped
	tab.AddRow("only")        // short row padded
	if len(tab.Rows[0]) != 2 || tab.Rows[0][1] != "2" {
		t.Errorf("row 0 = %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 2 || tab.Rows[1][1] != "" {
		t.Errorf("row 1 = %v", tab.Rows[1])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if Ms(0.1234) != "123.4" {
		t.Errorf("Ms = %q", Ms(0.1234))
	}
	if Pct(0.527) != "52.7%" {
		t.Errorf("Pct = %q", Pct(0.527))
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tab := &Table{Columns: []string{"x"}}
	tab.AddRow("1")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n=") {
		t.Error("untitled table rendered a title block")
	}
}
