package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// SkewCell is one (zipf exponent, placement) measurement.
type SkewCell struct {
	Zipf       float64
	Placement  workload.Placement
	Imbalance  float64
	Throughput float64
	Latency    sim.Time
}

// SkewResult extends the evaluation with query skew: the paper's rerank
// stage assumes probed clusters spread evenly over the SSDs, but popular
// clusters concentrate load on whichever device holds them. The experiment
// runs the ReACH pipeline with per-instance rerank bytes proportional to
// each SSD's share of a Zipf-skewed cluster popularity profile, under
// naive contiguous placement and popularity-aware round-robin placement.
type SkewResult struct {
	Cells []*SkewCell
}

// SkewExperiment runs the sweep.
func SkewExperiment(m workload.Model) (*SkewResult, error) {
	res := &SkewResult{}
	const instances = 4
	for _, s := range []float64{0, 0.8, 1.2} {
		for _, p := range []workload.Placement{workload.PlaceContiguous, workload.PlaceRoundRobin} {
			load := workload.ShardLoad(workload.ZipfWeights(m.Centroids, s), instances, p)
			run, err := runSkewedPipeline(m, load, 6)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, &SkewCell{
				Zipf:       s,
				Placement:  p,
				Imbalance:  workload.ImbalanceFactor(load),
				Throughput: run.ThroughputBatchesPerSec(),
				Latency:    run.Latency,
			})
		}
	}
	return res, nil
}

// runSkewedPipeline is RunPipeline with rerank bytes split per the load
// shares instead of evenly.
func runSkewedPipeline(m workload.Model, shares []float64, batches int) (*RunResult, error) {
	sys, err := core.NewSystem(configFor(ReACHMapping(), len(shares)))
	if err != nil {
		return nil, err
	}
	reg := sys.Registry()
	cnn, _ := reg.Lookup("CNN-VU9P")
	gemm, _ := reg.Lookup("GEMM-ZCU9")
	knn, _ := reg.Lookup("KNN-ZCU9")

	res := &RunResult{Sys: sys, Batches: batches, StageSpan: map[string]sim.Time{}}
	for b := 0; b < batches; b++ {
		j := core.NewJob(b)
		fe := j.AddTask(accel.Task{
			Name: "fe", Stage: StageFE, Kernel: cnn,
			MACs: m.FeatureMACsPerBatch(), Source: accel.SourceSPM,
		}, accel.OnChip)
		fe.OutBytes = m.BatchFeatureBytes()

		var slNodes []*core.TaskNode
		for i := range shares {
			n := j.AddTask(accel.Task{
				Name: fmt.Sprintf("sl%d", i), Stage: StageSL, Kernel: gemm,
				MACs:   m.ShortlistMACsPerBatch() / float64(len(shares)),
				Bytes:  m.ShortlistScanBytesPerBatch() / int64(len(shares)),
				Source: accel.SourceLocalDIMM,
			}, accel.NearMemory, fe)
			n.Pin = i
			n.OutBytes = m.ShortlistResultBytesPerBatch() / int64(len(shares))
			slNodes = append(slNodes, n)
		}
		for i, share := range shares {
			n := j.AddTask(accel.Task{
				Name: fmt.Sprintf("rr%d", i), Stage: StageRR, Kernel: knn,
				MACs:   m.RerankMACsPerBatch() * share,
				Bytes:  int64(float64(m.RerankScanBytesPerBatch()) * share),
				Source: accel.SourceSSD, Pattern: storage.RandomPages,
			}, accel.NearStorage, slNodes...)
			n.Pin = i
			n.OutBytes = m.ResultBytesPerBatch() / int64(len(shares))
			n.SinkToHost = true
		}
		if err := sys.GAM().Submit(j); err != nil {
			return nil, err
		}
		res.Jobs = append(res.Jobs, j)
	}
	sys.Run()
	for _, j := range res.Jobs {
		if !j.Done() {
			return nil, fmt.Errorf("experiments: skew job %d incomplete", j.ID)
		}
	}
	res.Latency = res.Jobs[0].Latency()
	res.Makespan = res.Jobs[batches-1].FinishedAt - res.Jobs[0].SubmittedAt
	return res, nil
}

// Table renders the sweep.
func (r *SkewResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension — query skew vs cluster placement (ReACH mapping, 4 SSDs)",
		Columns: []string{"Zipf s", "Placement", "Imbalance x", "Batches/s", "Latency ms"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			report.F(c.Zipf, 1),
			c.Placement.String(),
			report.F(c.Imbalance, 2),
			report.F(c.Throughput, 2),
			report.F(c.Latency.Milliseconds(), 1),
		)
	}
	t.AddNote("skewed popularity concentrates rerank load on the SSD holding hot clusters; popularity-aware placement restores balance")
	return t
}
