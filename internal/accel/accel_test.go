package accel

import (
	"testing"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/fpga"
	"repro/internal/sim"
	"repro/internal/storage"
)

func newPlatform(t *testing.T, cfg config.SystemConfig) *Platform {
	t.Helper()
	eng := sim.NewEngine()
	meter := energy.NewMeter(energy.DefaultCosts())
	p, err := NewPlatform(eng, cfg, meter)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func tpl(t *testing.T, name string) *fpga.Template {
	t.Helper()
	k, err := fpga.NewRegistry().Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLevelStrings(t *testing.T) {
	for l, want := range map[Level]string{OnChip: "OnChip", NearMemory: "NearMem", NearStorage: "NearStor", CPU: "CPU"} {
		if l.String() != want {
			t.Errorf("%d = %q, want %q", int(l), l.String(), want)
		}
	}
	if Level(9).String() == "" || Source(9).String() == "" {
		t.Error("unknown enum produced empty string")
	}
}

func TestOnChipComputeBoundSPM(t *testing.T) {
	p := newPlatform(t, config.Default())
	a := p.NewOnChip()
	k := tpl(t, "CNN-VU9P")
	// One VGG16 batch from SRAM-resident parameters: 247.5 GMAC at
	// 8192 MACs/cycle × 273 MHz ≈ 110.7 ms.
	done, err := a.Execute(&Task{
		Name: "fe", Stage: "FE", Kernel: k,
		MACs: 247.5e9, Source: SourceSPM,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := done.Milliseconds()
	if ms < 100 || ms > 122 {
		t.Errorf("on-chip CNN batch = %.1f ms, want ~110", ms)
	}
	if p.Meter.Component(energy.ACC) <= 0 {
		t.Error("no accelerator energy charged")
	}
	if p.Meter.Kind(energy.Movement) != 0 {
		t.Error("SPM-resident task charged movement energy")
	}
}

func TestOnChipDRAMStreamBandwidthBound(t *testing.T) {
	p := newPlatform(t, config.Default())
	a := p.NewOnChip()
	k := tpl(t, "GEMM-VU9P")
	// The shortlist working set: 2.2 GB streamed from host DRAM with tiny
	// compute. Host channels: 2 × 19.2 GB/s × 0.82 × 0.70 ≈ 22 GB/s →
	// ~100 ms (the shared-cache contention penalty of §IV-B).
	bytes := int64(2.2e9)
	done, err := a.Execute(&Task{
		Name: "sl", Stage: "SL", Kernel: k,
		MACs: 1.55e6, Bytes: bytes, Source: SourceHostDRAM,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := done.Milliseconds()
	if ms < 85 || ms > 115 {
		t.Errorf("on-chip shortlist = %.1f ms, want ~100", ms)
	}
	// Energy must include DRAM, MC and cache movement.
	for _, c := range []energy.Component{energy.DRAM, energy.MCInterconnect, energy.Cache} {
		if p.Meter.Component(c) <= 0 {
			t.Errorf("no %v energy charged", c)
		}
	}
}

func TestOnChipSSDStagedRead(t *testing.T) {
	p := newPlatform(t, config.Default())
	a := p.NewOnChip()
	k := tpl(t, "KNN-VU9P")
	// The rerank scan: 2.46 GB gathered from SSD via the host interface
	// (per-stripe NVMe commands: 12 GB/s × 0.75 gather efficiency → 9 GB/s
	// ≈ 273 ms) followed by the serialized read of the staged buffer
	// through the polluted cache path (~112 ms) ≈ 385 ms.
	bytes := int64(2.46e9)
	done, err := a.Execute(&Task{
		Name: "rr", Stage: "RR", Kernel: k,
		MACs: 614e6, Bytes: bytes, Source: SourceSSD, Pattern: storage.RandomPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := done.Milliseconds()
	if ms < 340 || ms > 440 {
		t.Errorf("on-chip rerank = %.1f ms, want ~385", ms)
	}
	if p.Meter.Component(energy.SSD) <= 0 || p.Meter.Component(energy.PCIe) <= 0 {
		t.Error("SSD path energy missing")
	}
	// Staging doubles DRAM traffic relative to cache traffic.
	dram := p.Meter.Component(energy.DRAM)
	cacheE := p.Meter.Component(energy.Cache)
	costs := p.Meter.Costs()
	wantRatio := 2 * costs.DRAMPerByte / costs.CachePerByte
	gotRatio := dram / cacheE
	if gotRatio < wantRatio*0.99 || gotRatio > wantRatio*1.01 {
		t.Errorf("DRAM/cache energy ratio = %.2f, want %.2f (2x staging)", gotRatio, wantRatio)
	}
}

func TestOnChipRejectsBusyAndBadSource(t *testing.T) {
	p := newPlatform(t, config.Default())
	a := p.NewOnChip()
	k := tpl(t, "CNN-VU9P")
	if _, err := a.Execute(&Task{Name: "x", Stage: "s", Kernel: k, MACs: 1e9, Source: SourceSPM}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Execute(&Task{Name: "y", Stage: "s", Kernel: k, MACs: 1, Source: SourceSPM}); err == nil {
		t.Error("busy accelerator accepted a task")
	}
	p2 := newPlatform(t, config.Default())
	a2 := p2.NewOnChip()
	if _, err := a2.Execute(&Task{Name: "z", Stage: "s", Kernel: k, Bytes: 1, Source: SourceLocalDIMM}); err == nil {
		t.Error("on-chip accepted a local-DIMM source")
	}
	if _, err := a2.Execute(&Task{Name: "w", Stage: "s", Kernel: nil}); err == nil {
		t.Error("nil kernel accepted")
	}
}

func TestNearMemLocalScaling(t *testing.T) {
	// 4 AIM modules each streaming their local quarter of 2.2 GB at
	// 18 GB/s finish together in ~31 ms — the Fig. 10 aggregation effect.
	cfg := config.Default().WithInstances(0, 4, 0)
	p := newPlatform(t, cfg)
	k := tpl(t, "GEMM-ZCU9")
	var last sim.Time
	for i := 0; i < 4; i++ {
		a, err := p.NewNearMem(i)
		if err != nil {
			t.Fatal(err)
		}
		done, err := a.Execute(&Task{
			Name: "sl", Stage: "SL", Kernel: k,
			MACs: 0.4e6, Bytes: int64(2.2e9) / 4, Source: SourceLocalDIMM,
		})
		if err != nil {
			t.Fatal(err)
		}
		if done > last {
			last = done
		}
	}
	ms := last.Milliseconds()
	if ms < 28 || ms > 40 {
		t.Errorf("4-way near-mem shortlist = %.1f ms, want ~32", ms)
	}
}

func TestNearMemSingleInstanceSlowerThanOnChip(t *testing.T) {
	// One AIM module streaming all 2.2 GB at 18 GB/s: ~122 ms, slower
	// than on-chip's ~100 ms ("better performance when there is 2 or more
	// instances", §VI-B).
	cfg := config.Default()
	p := newPlatform(t, cfg)
	a, _ := p.NewNearMem(0)
	done, err := a.Execute(&Task{
		Name: "sl", Stage: "SL", Kernel: tpl(t, "GEMM-ZCU9"),
		MACs: 1.55e6, Bytes: int64(2.2e9), Source: SourceLocalDIMM,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := done.Milliseconds()
	if ms < 115 || ms > 135 {
		t.Errorf("1-way near-mem shortlist = %.1f ms, want ~122", ms)
	}
}

func TestNearMemRemoteDataCrossesAIMBus(t *testing.T) {
	cfg := config.Default()
	p := newPlatform(t, cfg)
	a, _ := p.NewNearMem(0)
	bytes := int64(1e9)
	done, err := a.Execute(&Task{
		Name: "sl", Stage: "SL", Kernel: tpl(t, "GEMM-ZCU9"),
		Bytes: bytes, Source: SourceLocalDIMM, RemoteFraction: 0.75,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 750 MB over the 12.8 GB/s AIMbus ≈ 58.6 ms dominates.
	ms := done.Milliseconds()
	if ms < 55 || ms > 70 {
		t.Errorf("remote-heavy task = %.1f ms, want ~59", ms)
	}
	if got := p.AIMBus.ResourceStats().Bytes; got != uint64(bytes)*3/4 {
		t.Errorf("AIMbus carried %d bytes, want %d", got, bytes*3/4)
	}
}

func TestNearMemSSDPlateau(t *testing.T) {
	// Four AIM modules pulling the rerank scan from SSD share one 12 GB/s
	// host PCIe link: aggregate throughput must NOT scale 4× (Fig. 11
	// plateau).
	run := func(n int) sim.Time {
		cfg := config.Default().WithInstances(0, n, 0)
		p := newPlatform(t, cfg)
		total := int64(2.4e9)
		per := total / int64(n)
		var last sim.Time
		for i := 0; i < n; i++ {
			a, err := p.NewNearMem(i)
			if err != nil {
				t.Fatal(err)
			}
			done, err := a.Execute(&Task{
				Name: "rr", Stage: "RR", Kernel: tpl(t, "KNN-ZCU9"),
				Bytes: per, Source: SourceSSD, Pattern: storage.Sequential,
			})
			if err != nil {
				t.Fatal(err)
			}
			if done > last {
				last = done
			}
		}
		return last
	}
	t1, t4, t8 := run(1), run(4), run(8)
	if t4 >= t1 {
		t.Errorf("4 instances (%v) not faster than 1 (%v)", t4, t1)
	}
	// Host IO bound: 2.4 GB / 12 GB/s = 200 ms floor.
	floor := sim.FromSeconds(2.4e9 / 12e9)
	if t4 < floor {
		t.Errorf("4 instances (%v) beat the host IO floor (%v)", t4, floor)
	}
	// Plateau: going 4 → 8 buys almost nothing.
	if improvement := float64(t4-t8) / float64(t4); improvement > 0.15 {
		t.Errorf("8 instances improved %.0f%% over 4; expected a plateau", improvement*100)
	}
}

func TestNearStorScalesLinearly(t *testing.T) {
	run := func(n int) sim.Time {
		cfg := config.Default().WithInstances(0, 0, n)
		p := newPlatform(t, cfg)
		total := int64(2.4e9)
		per := total / int64(n)
		var last sim.Time
		for i := 0; i < n; i++ {
			a, err := p.NewNearStor(i)
			if err != nil {
				t.Fatal(err)
			}
			done, err := a.Execute(&Task{
				Name: "rr", Stage: "RR", Kernel: tpl(t, "KNN-ZCU9"),
				Bytes: per, Source: SourceSSD, Pattern: storage.Sequential,
			})
			if err != nil {
				t.Fatal(err)
			}
			if done > last {
				last = done
			}
		}
		return last
	}
	t1, t4, t16 := run(1), run(4), run(16)
	// Near-linear: each instance owns its SSD's internal bandwidth.
	if ratio := float64(t1) / float64(t4); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("1→4 speedup = %.2f, want ~4 (linear)", ratio)
	}
	if ratio := float64(t1) / float64(t16); ratio < 12 {
		t.Errorf("1→16 speedup = %.2f, want >= 12", ratio)
	}
}

func TestNearStorEnergyBeatsOnChipForRerank(t *testing.T) {
	// The §VI-B claim: rerank saves up to ~60 % of its energy moving from
	// on-chip to near-storage acceleration.
	bytes := int64(2.46e9)
	macs := 614e6

	pOn := newPlatform(t, config.Default())
	aOn := pOn.NewOnChip()
	if _, err := aOn.Execute(&Task{Name: "rr", Stage: "RR", Kernel: tpl(t, "KNN-VU9P"),
		MACs: macs, Bytes: bytes, Source: SourceSSD}); err != nil {
		t.Fatal(err)
	}
	onE := pOn.Meter.Total()

	pNS := newPlatform(t, config.Default().WithInstances(0, 0, 4))
	var lastNS sim.Time
	for i := 0; i < 4; i++ {
		a, _ := pNS.NewNearStor(i)
		done, err := a.Execute(&Task{Name: "rr", Stage: "RR", Kernel: tpl(t, "KNN-ZCU9"),
			MACs: macs / 4, Bytes: bytes / 4, Source: SourceSSD})
		if err != nil {
			t.Fatal(err)
		}
		if done > lastNS {
			lastNS = done
		}
	}
	nsE := pNS.Meter.Total()
	saving := 1 - nsE/onE
	if saving < 0.35 || saving > 0.75 {
		t.Errorf("near-storage rerank energy saving = %.0f%%, want 35-75%% (paper: up to 60%%)", saving*100)
	}
}

func TestNearStorBufferHitVsMiss(t *testing.T) {
	cfg := config.Default()
	// A page-granularity parameter gather: all-hit is served by the DRAM
	// buffer; all-miss falls through to flash and hits the IOPS limit.
	cfg.Storage.GatherGrainBytes = cfg.Storage.PageBytes
	task := func() *Task {
		return &Task{Name: "p", Stage: "FE", Kernel: tpl(t, "CNN-ZCU9"),
			Bytes: 500e6, Source: SourceDeviceDRAM, Pattern: storage.RandomPages}
	}
	pHit := newPlatform(t, cfg)
	aHit, _ := pHit.NewNearStor(0)
	aHit.BufferHitRatio = 1.0
	dHit, err := aHit.Execute(task())
	if err != nil {
		t.Fatal(err)
	}
	pMiss := newPlatform(t, cfg)
	aMiss, _ := pMiss.NewNearStor(0)
	aMiss.BufferHitRatio = 0.0
	dMiss, err := aMiss.Execute(task())
	if err != nil {
		t.Fatal(err)
	}
	if dMiss <= dHit {
		t.Errorf("all-miss (%v) not slower than all-hit (%v)", dMiss, dHit)
	}
	if pMiss.Meter.Component(energy.SSD) <= pHit.Meter.Component(energy.SSD) {
		t.Error("buffer misses did not increase SSD energy")
	}
}

func TestNearStorUsesNearStoragePower(t *testing.T) {
	// Table III: Zynq kernels have a higher near-storage power (DRAM
	// buffer + interface).
	cfg := config.Default()
	pNM := newPlatform(t, cfg)
	nm, _ := pNM.NewNearMem(0)
	if _, err := nm.Execute(&Task{Name: "a", Stage: "s", Kernel: tpl(t, "KNN-ZCU9"),
		Bytes: 1e9, Source: SourceLocalDIMM}); err != nil {
		t.Fatal(err)
	}
	pNS := newPlatform(t, cfg)
	ns, _ := pNS.NewNearStor(0)
	if _, err := ns.Execute(&Task{Name: "a", Stage: "s", Kernel: tpl(t, "KNN-ZCU9"),
		Bytes: 1e9, Source: SourceSSD}); err != nil {
		t.Fatal(err)
	}
	nmACC := pNM.Meter.Component(energy.ACC)
	nsACC := pNS.Meter.Component(energy.ACC)
	// NS runs longer (6 GB/s kernel consumption vs 18 GB/s DIMM feed is
	// not the binding factor here — both are kernel-bound at 6 GB/s) and
	// at 2.4 W vs 1.8 W.
	if nsACC <= nmACC {
		t.Errorf("NS ACC energy (%v) not above NM (%v) despite higher Table III power", nsACC, nmACC)
	}
}

func TestPlatformInstanceErrors(t *testing.T) {
	p := newPlatform(t, config.Default())
	if _, err := p.NewNearMem(99); err == nil {
		t.Error("NewNearMem(99) accepted")
	}
	if _, err := p.NewNearStor(-1); err == nil {
		t.Error("NewNearStor(-1) accepted")
	}
	bad := config.Default()
	bad.Memory.Controllers = 0
	if _, err := NewPlatform(sim.NewEngine(), bad, energy.NewMeter(energy.DefaultCosts())); err == nil {
		t.Error("invalid config accepted by NewPlatform")
	}
}

func TestEstimateIgnoresContention(t *testing.T) {
	p := newPlatform(t, config.Default())
	a := p.NewOnChip()
	k := tpl(t, "KNN-VU9P")
	task := &Task{Name: "rr", Stage: "RR", Kernel: k, MACs: 614e6, Bytes: int64(2.46e9), Source: SourceSSD}
	est := a.Estimate(task)
	done, err := a.Execute(task)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate (kernel-only) must undershoot the contended reality —
	// that gap is what GAM's status polling absorbs.
	if est >= done {
		t.Errorf("estimate %v not below actual %v", est, done)
	}
}
