package sim

import (
	"fmt"
	"testing"
)

// Cancelled events must leave the calendar immediately — a long-lived
// simulation that schedules-and-cancels timeout guards must not accumulate
// dead events until their nominal time.
func TestCancelRemovesFromHeap(t *testing.T) {
	eng := NewEngine()
	var evs []EventHandle
	for i := 0; i < 100; i++ {
		evs = append(evs, eng.At(Time(1000+i), func() { t.Error("cancelled event fired") }))
	}
	if eng.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", eng.Pending())
	}
	// Cancel from the middle, the front and the back of the heap.
	for i, ev := range evs {
		ev.Cancel()
		if want := 100 - i - 1; eng.Pending() != want {
			t.Fatalf("after %d cancels pending = %d, want %d", i+1, eng.Pending(), want)
		}
	}
	// Double-cancel is a no-op and must not corrupt the (empty) heap.
	evs[0].Cancel()
	if eng.Pending() != 0 {
		t.Fatalf("pending after double cancel = %d, want 0", eng.Pending())
	}
	eng.Run()
	if eng.Executed() != 0 {
		t.Errorf("executed %d cancelled events", eng.Executed())
	}
}

func TestCancelInterleavedWithDispatch(t *testing.T) {
	eng := NewEngine()
	fired := 0
	keep := eng.At(10, func() { fired++ })
	drop := eng.At(20, func() { fired++ })
	eng.At(15, func() { drop.Cancel() })
	eng.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	// Cancelling an already-fired event is a no-op.
	keep.Cancel()
	if eng.Pending() != 0 {
		t.Errorf("pending = %d", eng.Pending())
	}
}

func TestRegistryNamesAndWalk(t *testing.T) {
	eng := NewEngine()
	NewLink(eng, "mem.ch0", 1e9, 0)
	NewLink(eng, "aaa", 1e9, 0)
	NewTokenQueue(eng, "stream.a-b", 4)
	NewQueue(eng, "mem.ch0.rdq", 8)
	NewWindow(eng, "nvme.qp0.sq", 32)

	names := eng.Stats().Names()
	want := []string{"aaa", "mem.ch0", "mem.ch0.rdq", "nvme.qp0.sq", "stream.a-b"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// Walk visits in the same sorted order.
	var walked []string
	eng.Stats().Walk(func(name string, res Resource) {
		walked = append(walked, name)
		if res.Name() != name {
			t.Errorf("resource %q self-reports %q", name, res.Name())
		}
	})
	for i := range want {
		if walked[i] != want[i] {
			t.Errorf("walk[%d] = %q, want %q", i, walked[i], want[i])
		}
	}
	if _, ok := eng.Stats().Lookup("mem.ch0"); !ok {
		t.Error("lookup mem.ch0 failed")
	}
	if _, ok := eng.Stats().Lookup("nope"); ok {
		t.Error("lookup of unknown name succeeded")
	}
}

// Duplicate diagnostic names must stay registered and addressable: the
// registry uniquifies deterministically instead of failing or shadowing.
func TestRegistryDuplicateNames(t *testing.T) {
	eng := NewEngine()
	a := NewLink(eng, "dup", 1e9, 0)
	b := NewLink(eng, "dup", 1e9, 0)
	c := NewLink(eng, "dup", 1e9, 0)
	if a.Name() != "dup" || b.Name() != "dup#2" || c.Name() != "dup#3" {
		t.Errorf("names = %q %q %q", a.Name(), b.Name(), c.Name())
	}
	if eng.Stats().Len() != 3 {
		t.Errorf("registry len = %d, want 3", eng.Stats().Len())
	}
}

// Capacity-1 ping-pong through the Port interface: put/get strictly
// alternate, with the producer parking whenever the single slot is taken.
func TestPortCapacityOnePingPong(t *testing.T) {
	eng := NewEngine()
	var q Port = NewTokenQueue(eng, "pp", 1)

	var got []int
	const n = 5
	// Producer: puts 0..n-1 back to back; each put's done callback issues
	// the next put, so puts queue up against the single slot.
	var produce func(i int)
	produce = func(i int) {
		if i >= n {
			return
		}
		q.Put(i, func() { produce(i + 1) })
	}
	// Consumer: drains one item per 10ps tick.
	var consume func()
	consume = func() {
		q.Get(func(item any) {
			got = append(got, item.(int))
			if len(got) < n {
				eng.Schedule(10, consume)
			}
		})
	}
	eng.Schedule(0, func() { produce(0) })
	eng.Schedule(5, consume)
	eng.Run()

	if len(got) != n {
		t.Fatalf("consumed %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
	st := q.ResourceStats()
	if st.Kind != KindPort {
		t.Errorf("kind = %v", st.Kind)
	}
	if st.MaxOccupancy != 1 {
		t.Errorf("max occupancy = %d, want 1 (capacity-1 queue)", st.MaxOccupancy)
	}
	if st.Stalls == 0 {
		t.Error("ping-pong produced no park events")
	}
	if q.Len() != 0 {
		t.Errorf("residual occupancy %d", q.Len())
	}
}

// Parked producers and parked consumers must wake in FIFO order.
func TestPortWakeOrderFIFO(t *testing.T) {
	eng := NewEngine()
	var q Port = NewTokenQueue(eng, "fifo", 1)

	// Fill the slot, then park three producers.
	q.Put("fill", nil)
	var accepted []string
	for _, tag := range []string{"p0", "p1", "p2"} {
		tag := tag
		q.Put(tag, func() { accepted = append(accepted, tag) })
	}
	if len(accepted) != 0 {
		t.Fatalf("producers accepted early: %v", accepted)
	}
	// Drain: each get frees the slot for the oldest parked producer.
	var items []string
	for i := 0; i < 4; i++ {
		q.Get(func(item any) { items = append(items, item.(string)) })
	}
	wantItems := []string{"fill", "p0", "p1", "p2"}
	for i := range wantItems {
		if items[i] != wantItems[i] {
			t.Errorf("items[%d] = %q, want %q", i, items[i], wantItems[i])
		}
	}
	wantAccept := []string{"p0", "p1", "p2"}
	for i := range wantAccept {
		if accepted[i] != wantAccept[i] {
			t.Errorf("accepted[%d] = %q, want %q", i, accepted[i], wantAccept[i])
		}
	}

	// Now park three getters on the empty queue; puts must serve them
	// oldest-first.
	var served []string
	for _, tag := range []string{"g0", "g1", "g2"} {
		tag := tag
		q.Get(func(item any) { served = append(served, tag+":"+item.(string)) })
	}
	q.Put("a", nil)
	q.Put("b", nil)
	q.Put("c", nil)
	wantServed := []string{"g0:a", "g1:b", "g2:c"}
	for i := range wantServed {
		if served[i] != wantServed[i] {
			t.Errorf("served[%d] = %q, want %q", i, served[i], wantServed[i])
		}
	}
}

// Max-occupancy accounting must include items admitted from the parked
// producer list, not only direct puts.
func TestPortMaxOccupancyAccounting(t *testing.T) {
	eng := NewEngine()
	q := NewTokenQueue(eng, "occ", 3)
	for i := 0; i < 5; i++ {
		q.Put(i, nil) // 3 buffered, 2 parked
	}
	if got := q.MaxOccupancy(); got != 3 {
		t.Errorf("max occupancy = %d, want 3", got)
	}
	if q.PutWaits() != 2 {
		t.Errorf("put waits = %d, want 2", q.PutWaits())
	}
	// Draining admits the parked producers into the freed slots: the queue
	// must refill to capacity and the high-water mark stay at 3.
	if v, ok := q.TryGet(); !ok || v.(int) != 0 {
		t.Fatalf("tryget = %v,%v", v, ok)
	}
	if q.Len() != 3 {
		t.Errorf("len after refill = %d, want 3", q.Len())
	}
	for q.Len() > 0 {
		q.TryGet()
	}
	if got := q.MaxOccupancy(); got != 3 {
		t.Errorf("final max occupancy = %d, want 3", got)
	}
	st := q.ResourceStats()
	if st.Ops != 5 {
		t.Errorf("ops = %d, want 5 puts", st.Ops)
	}
	// Parked producers waited zero simulated time here (all at t=0), but
	// every park is still a stall event.
	if st.Stalls != 2 {
		t.Errorf("stalls = %d, want 2", st.Stalls)
	}
}

func TestQueueOutOfOrderRemoval(t *testing.T) {
	eng := NewEngine()
	q := NewQueue(eng, "q", 3)
	for i := 0; i < 3; i++ {
		if !q.Offer(i) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	if q.Offer(99) {
		t.Error("offer above capacity accepted")
	}
	if !q.Full() {
		t.Error("not full at capacity")
	}
	eng.Advance(100)
	// Remove the middle entry first (a row hit overtaking).
	if v := q.RemoveAt(1).(int); v != 1 {
		t.Errorf("removed %d, want 1", v)
	}
	if v := q.At(0).(int); v != 0 {
		t.Errorf("head = %d, want 0", v)
	}
	if v := q.RemoveAt(0).(int); v != 0 {
		t.Errorf("removed %d, want 0", v)
	}
	if v := q.RemoveAt(0).(int); v != 2 {
		t.Errorf("removed %d, want 2", v)
	}
	st := q.ResourceStats()
	if st.Kind != KindQueue || st.Ops != 3 || st.Stalls != 1 || st.MaxOccupancy != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Wait != 300 {
		t.Errorf("wait = %v, want 300 (3 entries × 100ps)", st.Wait)
	}
}

func TestWindowDepthLimit(t *testing.T) {
	eng := NewEngine()
	w := NewWindow(eng, "w", 2)
	// Two ops admitted immediately; completions at 100 and 200.
	if at := w.Admit(0); at != 0 {
		t.Errorf("first admit at %v", at)
	}
	w.Complete(100)
	if at := w.Admit(0); at != 0 {
		t.Errorf("second admit at %v", at)
	}
	w.Complete(200)
	if w.Outstanding() != 2 {
		t.Errorf("outstanding = %d", w.Outstanding())
	}
	// Third op must wait for the oldest completion (t=100).
	if at := w.Admit(0); at != 100 {
		t.Errorf("third admit at %v, want 100", at)
	}
	w.Complete(300)
	st := w.ResourceStats()
	if st.Kind != KindWindow || st.Ops != 3 || st.Stalls != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Wait != 100 {
		t.Errorf("wait = %v, want 100", st.Wait)
	}
	if st.MaxOccupancy != 2 {
		t.Errorf("max occupancy = %d, want 2", st.MaxOccupancy)
	}
}

// Bounded histograms must cap storage while keeping exact offered counts,
// and decimate deterministically (same Add sequence → same state).
func TestBoundedHistogramDecimation(t *testing.T) {
	build := func() *Histogram {
		h := NewBoundedHistogram(64)
		for i := 0; i < 10_000; i++ {
			h.Add(Time(i))
		}
		return h
	}
	h := build()
	if h.Count() >= 64 {
		t.Errorf("stored %d samples, cap 64", h.Count())
	}
	if h.Adds() != 10_000 {
		t.Errorf("adds = %d, want 10000", h.Adds())
	}
	h2 := build()
	if h.Count() != h2.Count() || h.Mean() != h2.Mean() || h.Max() != h2.Max() {
		t.Error("identical Add sequences diverged")
	}
	// Quantiles stay ordered and within the sample range.
	if h.Min() < 0 || h.Max() > 9999 || h.Quantile(0.5) > h.Quantile(0.99) {
		t.Errorf("min=%v p50=%v p99=%v max=%v", h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
}

// The Connection interface must be satisfiable by shared-layer users
// without reaching for the concrete Link type.
func TestConnectionInterfaceThroughRegistry(t *testing.T) {
	eng := NewEngine()
	NewLink(eng, "c", 1e9, 5)
	res, ok := eng.Stats().Lookup("c")
	if !ok {
		t.Fatal("link not registered")
	}
	conn, ok := res.(Connection)
	if !ok {
		t.Fatal("registered link is not a Connection")
	}
	done := conn.Transfer(1000)
	if done <= 0 {
		t.Errorf("transfer done = %v", done)
	}
	st := conn.ResourceStats()
	if st.Kind != KindConnection || st.Bytes != 1000 || st.Ops != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ServiceHist == nil || st.ServiceHist.Adds() != 1 {
		t.Error("service histogram not recorded at base layer")
	}
}

func TestRegistryAnonName(t *testing.T) {
	eng := NewEngine()
	l := NewLink(eng, "", 1e9, 0)
	if l.Name() != "anon" {
		t.Errorf("empty name registered as %q", l.Name())
	}
}

func ExampleStatsRegistry() {
	eng := NewEngine()
	NewLink(eng, "mem.ch0", 8e9, 0)
	NewTokenQueue(eng, "stream.fe-sl", 2)
	eng.Stats().Walk(func(name string, res Resource) {
		fmt.Println(name, string(res.ResourceStats().Kind))
	})
	// Output:
	// mem.ch0 connection
	// stream.fe-sl port
}
