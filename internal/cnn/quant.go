package cnn

import (
	"fmt"
	"math"

	"repro/internal/kernels"
)

// Weight quantisation — the functional analogue of the deep-compression
// pipeline [23] the paper cites for shrinking the 552 MB VGG16 parameters
// to 11.3 MB of on-chip SRAM. This file implements symmetric per-layer
// int8 weight quantisation with a dequantised forward path, so the
// repository can measure what the compression does to feature quality
// (and therefore retrieval), not just assume it.

// QuantizedTensor is a symmetric int8 quantisation of a float tensor.
type QuantizedTensor struct {
	Scale float32 // real = Scale × int8
	Data  []int8
}

// Quantize produces the int8 representation with the scale chosen from the
// max absolute value.
func Quantize(w []float32) *QuantizedTensor {
	var maxAbs float32
	for _, v := range w {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	q := &QuantizedTensor{Data: make([]int8, len(w))}
	if maxAbs == 0 {
		q.Scale = 1
		return q
	}
	q.Scale = maxAbs / 127
	inv := 1 / q.Scale
	for i, v := range w {
		r := v * inv
		switch {
		case r > 127:
			r = 127
		case r < -127:
			r = -127
		}
		q.Data[i] = int8(math.RoundToEven(float64(r)))
	}
	return q
}

// Dequantize reconstructs float weights.
func (q *QuantizedTensor) Dequantize() []float32 {
	out := make([]float32, len(q.Data))
	for i, v := range q.Data {
		out[i] = float32(v) * q.Scale
	}
	return out
}

// Bytes reports the storage of the quantised form (1 byte per weight plus
// the scale).
func (q *QuantizedTensor) Bytes() int64 { return int64(len(q.Data)) + 4 }

// MeanSquaredError reports the reconstruction error against the original.
func (q *QuantizedTensor) MeanSquaredError(orig []float32) float64 {
	if len(orig) != len(q.Data) {
		panic("cnn: MSE length mismatch")
	}
	var sum float64
	for i, v := range q.Data {
		d := float64(float32(v)*q.Scale - orig[i])
		sum += d * d
	}
	return sum / float64(len(orig))
}

// QuantizeNetwork returns a copy of the network with every conv and FC
// weight tensor round-tripped through int8 — the network a compressed
// deployment actually runs — plus the compressed parameter byte count.
func QuantizeNetwork(n *Network) (*Network, int64, error) {
	out, err := NewNetwork(n.Spec, 0)
	if err != nil {
		return nil, 0, err
	}
	var bytes int64
	for i, p := range n.convParams {
		q := Quantize(p.Weights)
		bytes += q.Bytes()
		dst := out.convParams[i]
		copy(dst.Weights, q.Dequantize())
		copy(dst.Bias, p.Bias)
		bytes += int64(len(p.Bias)) * 4
	}
	for i, w := range n.fcWeights {
		q := Quantize(w.Data)
		bytes += q.Bytes()
		copy(out.fcWeights[i].Data, q.Dequantize())
		copy(out.fcBias[i], n.fcBias[i])
		bytes += int64(len(n.fcBias[i])) * 4
	}
	return out, bytes, nil
}

// FeatureDrift measures how far the quantised network's features move from
// the full-precision ones over a batch of images: the mean L2 distance
// between normalised feature pairs. Small drift ⇒ retrieval quality is
// preserved; large drift ⇒ recall suffers (the §IV-A compression
// trade-off, measured at the network level).
func FeatureDrift(full, quant *FeatureExtractor, images []*kernels.Tensor3) (float64, error) {
	if len(images) == 0 {
		return 0, fmt.Errorf("cnn: FeatureDrift needs images")
	}
	var sum float64
	for _, img := range images {
		a, err := full.Extract(img)
		if err != nil {
			return 0, err
		}
		b, err := quant.Extract(img)
		if err != nil {
			return 0, err
		}
		sum += math.Sqrt(float64(kernels.SquaredL2(a, b)))
	}
	return sum / float64(len(images)), nil
}
