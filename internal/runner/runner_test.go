package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Results must land in item order regardless of completion order.
func TestMapOrdersResultsByIndex(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(context.Background(), Options{Workers: workers}, items,
			func(_ context.Context, i, v int) (string, error) {
				// Earlier items sleep longer, so completion order inverts
				// submission order under parallelism.
				time.Sleep(time.Duration(len(items)-i) * 10 * time.Microsecond)
				return fmt.Sprintf("r%d", v), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range out {
			if want := fmt.Sprintf("r%d", i); r != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, r, want)
			}
		}
	}
}

// A panic inside a run becomes a *PanicError instead of killing the test
// binary, and other runs' results survive.
func TestMapCapturesPanics(t *testing.T) {
	// One worker: items 0 and 1 complete before 2 panics, so their
	// results must survive in the partial slice.
	out, err := Map(context.Background(), Options{Workers: 1}, []int{0, 1, 2, 3},
		func(_ context.Context, i, v int) (int, error) {
			if v == 2 {
				panic("boom in run 2")
			}
			return v * 10, nil
		})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "boom in run 2") || !strings.Contains(pe.Error(), "runner_test.go") {
		t.Errorf("panic error lacks value or stack: %v", pe)
	}
	if out[0] != 0 || out[1] != 10 {
		t.Errorf("completed results lost: %v", out)
	}
}

// The first failure cancels the derived context so queued work is skipped,
// and the genuine error (not the cancellation) is what Map returns.
func TestMapCancelsOnFirstError(t *testing.T) {
	sentinel := errors.New("run 0 failed")
	var started atomic.Int32
	items := make([]int, 100)
	_, err := Map(context.Background(), Options{Workers: 1}, items,
		func(ctx context.Context, i, _ int) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, sentinel
			}
			return 0, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Worker 1 fails on item 0; everything queued behind it must be
	// skipped without running.
	if n := started.Load(); n != 1 {
		t.Errorf("%d runs started after first error, want 1", n)
	}
}

// In-flight runs see the cancellation via their context.
func TestMapPropagatesCancellationToRuns(t *testing.T) {
	sentinel := errors.New("early failure")
	sawCancel := make(chan struct{})
	ready := make(chan struct{})
	_, err := Map(context.Background(), Options{Workers: 2}, []int{0, 1},
		func(ctx context.Context, i, _ int) (int, error) {
			if i == 0 {
				// Fail only once run 1 is in flight, so the cancellation
				// must reach it through its context.
				<-ready
				return 0, sentinel
			}
			close(ready)
			select {
			case <-ctx.Done():
				close(sawCancel)
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return 0, errors.New("never cancelled")
			}
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	select {
	case <-sawCancel:
	default:
		t.Error("in-flight run did not observe cancellation")
	}
}

// A parent-context cancellation surfaces as the returned error when no run
// genuinely failed.
func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, Options{Workers: 2}, []int{0, 1, 2},
		func(context.Context, int, int) (int, error) { return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A shared Pool bounds concurrency across nested Map calls without
// deadlocking, because only leaf runs hold slots.
func TestMapSharedPoolBoundsNestedConcurrency(t *testing.T) {
	pool := NewPool(2)
	var inFlight, peak atomic.Int32
	leaf := func(context.Context, int, int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return 0, nil
	}
	// Outer fan-out over 4 "experiments", each fanning out 6 leaf runs on
	// the same pool.
	outer := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), Options{Workers: len(outer)}, outer,
		func(ctx context.Context, _, _ int) (int, error) {
			_, err := Map(ctx, Options{Pool: pool}, []int{0, 1, 2, 3, 4, 5}, leaf)
			return 0, err
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeded pool size 2", p)
	}
}

// Progress fires once per run with a consistent done counter.
func TestMapProgress(t *testing.T) {
	var events []Event
	_, err := Map(context.Background(), Options{
		Workers:  4,
		Progress: func(e Event) { events = append(events, e) },
	}, []int{0, 1, 2, 3, 4}, func(_ context.Context, i, _ int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("%d progress events, want 5", len(events))
	}
	seen := map[int]bool{}
	for k, e := range events {
		if e.Done != k+1 || e.Total != 5 {
			t.Errorf("event %d: done=%d/%d, want %d/5", k, e.Done, e.Total, k+1)
		}
		if seen[e.Index] {
			t.Errorf("index %d reported twice", e.Index)
		}
		seen[e.Index] = true
	}
}

func TestMapEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), Options{}, nil,
		func(context.Context, int, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

func TestPoolSizeDefaults(t *testing.T) {
	if NewPool(0).Size() <= 0 {
		t.Error("default pool size not positive")
	}
	if got := NewPool(7).Size(); got != 7 {
		t.Errorf("pool size = %d, want 7", got)
	}
}

// Serial (one-worker) execution visits items strictly in index order —
// the property the -j 1 byte-identical guarantee rests on.
func TestMapSerialOrderIsIndexOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	_, err := Map(context.Background(), Options{Workers: 1}, []int{0, 1, 2, 3, 4, 5},
		func(_ context.Context, i, _ int) (int, error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial visit order %v", order)
		}
	}
}
