package fpga

import (
	"fmt"

	"repro/internal/sim"
)

// Fabric is one physical programmable-logic instance: the thing a kernel
// template gets loaded onto. It tracks the loaded bitstream,
// reconfiguration count/latency (today's devices swap partial bitstreams in
// sub-millisecond, §VI-A), and busy accounting for the energy model.
type Fabric struct {
	eng    *sim.Engine
	name   string
	device *Device

	loaded    *Template
	reconfigs uint64
	// ReconfigLatency is the partial-reconfiguration delay applied when a
	// different template is loaded. The paper's evaluation sets this to
	// zero ("we do not account for the partial reprogramming delay"); it
	// is kept configurable for the ablation benchmarks.
	ReconfigLatency sim.Time

	busy      sim.Time // accumulated kernel-active time
	busyUntil sim.Time
	tasks     uint64
}

// NewFabric creates a fabric of the given device.
func NewFabric(eng *sim.Engine, name string, device *Device) *Fabric {
	if device == nil {
		panic("fpga: fabric without device")
	}
	return &Fabric{eng: eng, name: name, device: device}
}

// Name reports the fabric's diagnostic name.
func (f *Fabric) Name() string { return f.name }

// Device reports the part this fabric is.
func (f *Fabric) Device() *Device { return f.device }

// Loaded reports the currently configured template (nil when blank).
func (f *Fabric) Loaded() *Template { return f.loaded }

// Load configures template t, returning the time the fabric is ready.
// Loading the already-resident template is free; loading a template
// synthesised for a different part is an error.
func (f *Fabric) Load(t *Template) (sim.Time, error) {
	if t == nil {
		return 0, fmt.Errorf("fpga: %s: loading nil template", f.name)
	}
	if t.Device != f.device {
		return 0, fmt.Errorf("fpga: %s: template %s is synthesised for %s, fabric is %s",
			f.name, t.Name, t.Device.Name, f.device.Name)
	}
	now := f.eng.Now()
	if f.loaded == t {
		return now, nil
	}
	f.loaded = t
	f.reconfigs++
	return now + f.ReconfigLatency, nil
}

// Reconfigs reports how many bitstream loads occurred.
func (f *Fabric) Reconfigs() uint64 { return f.reconfigs }

// Busy reports accumulated active time (for energy accounting).
func (f *Fabric) Busy() sim.Time { return f.busy }

// BusyUntil reports when the fabric finishes its current task (zero or past
// when idle).
func (f *Fabric) BusyUntil() sim.Time { return f.busyUntil }

// Idle reports whether the fabric can accept a task now.
func (f *Fabric) Idle() bool { return f.busyUntil <= f.eng.Now() }

// Occupy marks the fabric busy for d starting at the later of now and its
// current availability, returning the completion time. The accelerator
// models call this once per task with the task's modelled duration.
func (f *Fabric) Occupy(d sim.Time) sim.Time {
	if d < 0 {
		panic("fpga: negative occupancy")
	}
	start := f.eng.Now()
	if f.busyUntil > start {
		start = f.busyUntil
	}
	end := start + d
	f.busyUntil = end
	f.busy += d
	f.tasks++
	return end
}

// Tasks reports how many tasks the fabric executed.
func (f *Fabric) Tasks() uint64 { return f.tasks }
