package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// csvHeader is the stable schema of the time-series CSV dump. The
// metrics-smoke CI target validates files against it.
var csvHeader = []string{
	"run", "sample", "time_us", "resource", "kind",
	"occupancy", "ops", "bytes", "busy_us", "wait_us", "stalls",
}

// CSVHeader returns a copy of the CSV schema (for validators).
func CSVHeader() []string {
	return append([]string(nil), csvHeader...)
}

// Source is the sampler side of the exporters: a recorded time axis plus
// per-resource series in deterministic (sorted) order. Both the
// single-engine Sampler and the cluster MultiSampler satisfy it, so one
// CSV/JSONL/trace-counter pipeline serves both.
type Source interface {
	Samples() int
	Time(i int) sim.Time
	Series() []*Series
}

// CSVWriter streams one or more runs' sampler series as CSV: one row per
// (sample instant, resource), resources in sorted registry order within
// each sample so the output is diffable.
type CSVWriter struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewCSVWriter wraps w.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{cw: csv.NewWriter(w)}
}

// WriteRun appends every sample of one run, labelled run in the first
// column. The header is written once, before the first row.
func (c *CSVWriter) WriteRun(run string, s Source) error {
	if !c.wroteHeader {
		if err := c.cw.Write(csvHeader); err != nil {
			return err
		}
		c.wroteHeader = true
	}
	series := s.Series() // sorted by name
	for i := 0; i < s.Samples(); i++ {
		t := s.Time(i)
		for _, se := range series {
			j := i - se.Start()
			if j < 0 || j >= se.Len() {
				continue // resource registered after this instant
			}
			p := se.At(j)
			err := c.cw.Write([]string{
				run,
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%.3f", t.Microseconds()),
				se.Name,
				string(se.Kind),
				fmt.Sprintf("%d", p.Occupancy),
				fmt.Sprintf("%d", p.Ops),
				fmt.Sprintf("%d", p.Bytes),
				fmt.Sprintf("%.3f", p.Busy.Microseconds()),
				fmt.Sprintf("%.3f", p.Wait.Microseconds()),
				fmt.Sprintf("%d", p.Stalls),
			})
			if err != nil {
				return err
			}
		}
	}
	c.cw.Flush()
	return c.cw.Error()
}

// Flush flushes buffered rows and reports any write error.
func (c *CSVWriter) Flush() error {
	c.cw.Flush()
	return c.cw.Error()
}

// jsonSample is the JSONL shape of one (sample, resource) point.
type jsonSample struct {
	Run       string  `json:"run"`
	Type      string  `json:"type"` // "sample"
	Sample    int     `json:"sample"`
	TimeUS    float64 `json:"time_us"`
	Resource  string  `json:"resource"`
	Kind      string  `json:"kind"`
	Occupancy int     `json:"occupancy"`
	Ops       uint64  `json:"ops"`
	Bytes     uint64  `json:"bytes"`
	BusyUS    float64 `json:"busy_us"`
	WaitUS    float64 `json:"wait_us"`
	Stalls    uint64  `json:"stalls"`
}

// jsonSpan is the JSONL shape of one GAM span.
type jsonSpan struct {
	Run     string  `json:"run"`
	Type    string  `json:"type"` // "span"
	Cat     string  `json:"cat"`
	Name    string  `json:"name"`
	Lane    string  `json:"lane"`
	Cause   string  `json:"cause"`
	StartUS float64 `json:"start_us"`
	EndUS   float64 `json:"end_us"`
	Job     int     `json:"job"`
	V       int64   `json:"v"`
}

// JSONLWriter streams runs as JSON Lines: every sampler point as a
// {"type":"sample"} object (sorted resource order within a sample) and,
// when the recorder carries a span log, every span as {"type":"span"}.
type JSONLWriter struct {
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// WriteRun appends one run's samples and spans, labelled run.
func (j *JSONLWriter) WriteRun(run string, r *Recorder) error {
	if err := j.WriteSamples(run, r.Sampler); err != nil {
		return err
	}
	return j.WriteSpans(run, r.Spans.Spans())
}

// WriteMulti appends one cluster run's samples and merged per-node
// spans, labelled run.
func (j *JSONLWriter) WriteMulti(run string, r *MultiRecorder) error {
	if err := j.WriteSamples(run, r.Sampler); err != nil {
		return err
	}
	return j.WriteSpans(run, r.MergedSpans())
}

// WriteSamples appends every {"type":"sample"} line of one source.
func (j *JSONLWriter) WriteSamples(run string, s Source) error {
	series := s.Series()
	for i := 0; i < s.Samples(); i++ {
		t := s.Time(i)
		for _, se := range series {
			k := i - se.Start()
			if k < 0 || k >= se.Len() {
				continue
			}
			p := se.At(k)
			err := j.enc.Encode(jsonSample{
				Run: run, Type: "sample", Sample: i, TimeUS: t.Microseconds(),
				Resource: se.Name, Kind: string(se.Kind),
				Occupancy: p.Occupancy, Ops: p.Ops, Bytes: p.Bytes,
				BusyUS: p.Busy.Microseconds(), WaitUS: p.Wait.Microseconds(),
				Stalls: p.Stalls,
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSpans appends every {"type":"span"} line for spans (already in
// the caller's deterministic order).
func (j *JSONLWriter) WriteSpans(run string, spans []Span) error {
	for _, sp := range spans {
		err := j.enc.Encode(jsonSpan{
			Run: run, Type: "span", Cat: sp.Cat, Name: sp.Name, Lane: sp.Lane,
			Cause: sp.Cause, StartUS: sp.Start.Microseconds(),
			EndUS: sp.End.Microseconds(), Job: sp.Job, V: sp.V,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
