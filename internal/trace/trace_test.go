package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func TestTimelineFromPipelineRun(t *testing.T) {
	run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline()
	for _, j := range run.Jobs {
		if err := tl.AddJob(j); err != nil {
			t.Fatal(err)
		}
	}
	if tl.Events() == 0 {
		t.Fatal("no events recorded")
	}
	// Lanes: GAM + on-chip + 4 NM + 4 NS.
	lanes := tl.Lanes()
	if len(lanes) != 10 {
		t.Errorf("lanes = %v (%d), want 10", lanes, len(lanes))
	}

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be a valid JSON array of events.
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	var slices, metas int
	var sawPollGap bool
	for _, e := range parsed {
		switch e["ph"] {
		case "X":
			slices++
			if e["name"] == "await GAM status" {
				sawPollGap = true
			}
		case "M":
			metas++
		}
		if ts, ok := e["ts"].(float64); ok && ts < 0 {
			t.Errorf("negative timestamp %v", ts)
		}
	}
	if metas != 10 {
		t.Errorf("metadata events = %d, want 10 lane names", metas)
	}
	// 2 jobs × (1 FE + 4 SL + 4 RR) tasks + 2 job spans ≥ 20 slices.
	if slices < 20 {
		t.Errorf("slices = %d, want >= 20", slices)
	}
	if !sawPollGap {
		t.Error("no GAM detection-gap slices; polling should delay near-level tasks")
	}
	if !strings.Contains(buf.String(), "ShortlistRetrieval") {
		t.Error("stage categories missing from trace")
	}
}

func TestAddJobRejectsIncomplete(t *testing.T) {
	run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline()
	// A fresh, never-run job must be rejected.
	sys := run.Sys
	j, err := experiments.BuildPipelineJob(sys, 99, workload.DefaultModel(), experiments.ReACHMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.AddJob(j); err == nil {
		t.Error("incomplete job accepted")
	}
}
