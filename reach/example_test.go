package reach_test

import (
	"fmt"
	"log"

	"repro/reach"
)

// Example builds the smallest possible ReACH pipeline — one on-chip CNN
// feeding one near-storage KNN — and runs a single batch through the
// simulated hierarchy.
func Example() {
	sys, err := reach.NewSystem(reach.WithInstances(1, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	db, _ := sys.CreateFixedBuffer("db", reach.NearStor, 96e9)
	feat, _ := sys.CreateStream("Features", reach.OnChip, reach.NearStor, reach.BroadCast, 6144, 2)

	cnn, _ := sys.RegisterAcc("VGG16-VU9P", reach.OnChip)
	_ = cnn.SetArg(0, feat)
	cnn.SetWork(reach.Work{Stage: "FE", MACs: 16 * 15.47e9, SPMResident: true, OutputBytes: 6144})

	knn, _ := sys.RegisterAcc("KNN-ZCU9", reach.NearStor)
	_ = knn.SetArg(0, feat)
	_ = knn.SetArg(1, db)
	knn.SetWork(reach.Work{Stage: "RR", MACs: 590e6, StreamBytes: 2.4e9})

	if err := sys.Deploy(); err != nil {
		log.Fatal(err)
	}
	batch, _ := sys.Begin()
	_ = batch.Execute(cnn)
	_ = batch.Execute(knn)
	_ = batch.Commit()
	sys.Run()

	fmt.Println("done:", batch.Done())
	// Output:
	// done: true
}

// ExampleSystem_RegisterTemplate publishes a custom accelerator template —
// the §III-A authoring flow — and deploys it near storage.
func ExampleSystem_RegisterTemplate() {
	sys, err := reach.NewSystem(reach.WithInstances(0, 0, 1))
	if err != nil {
		log.Fatal(err)
	}
	err = sys.RegisterTemplate(reach.TemplateSpec{
		Name: "FILTER-ZCU9", Embedded: true,
		FreqMHz: 200, PowerW: 2,
		FF: 6, LUT: 8, DSP: 1, BRAM: 10,
		MACsPerCycle: 2, StreamBytesPerCycle: 64, II: 1, Depth: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := sys.RegisterAcc("FILTER-ZCU9", reach.NearStor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(acc.Name)
	// Output:
	// FILTER-ZCU9@NearStor[0]
}

// ExampleWithCrossJobPipelining shows the §II-D ablation knob: the GAM can
// be told not to overlap consecutive jobs.
func ExampleWithCrossJobPipelining() {
	sys, err := reach.NewSystem(reach.WithCrossJobPipelining(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.TotalEnergy())
	// Output:
	// 0
}
