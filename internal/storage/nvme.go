package storage

import (
	"fmt"

	"repro/internal/sim"
)

// This file models the NVMe host interface at command granularity: paired
// submission/completion queues, doorbell writes, command processing and
// per-command data transfers. It is the micro-model behind the bulk
// parameters used elsewhere in the package — the "IO software stack
// inefficiency" of [6] (INSIDER) that turns a 16 GB/s PCIe Gen3 x16 link
// into ~12 GB/s of effective host bandwidth, and the further derating of
// scattered gathers. Tests derive those bulk efficiencies from this model
// and check they bracket the configured constants.

// QueuePairConfig parameterises one NVMe submission/completion queue pair.
type QueuePairConfig struct {
	// Depth is the queue depth (outstanding commands).
	Depth int
	// SubmissionOverhead is host-side per-command software cost (driver,
	// block layer, doorbell write).
	SubmissionOverhead sim.Time
	// CompletionOverhead is host-side per-completion cost (interrupt or
	// polling, completion-queue processing).
	CompletionOverhead sim.Time
	// CommandLatency is the device-side command decode + setup time.
	CommandLatency sim.Time
	// LinkBytesPerSec is the PCIe payload bandwidth for this queue pair.
	LinkBytesPerSec float64
}

// DefaultQueuePairConfig reflects a tuned Linux NVMe path on Gen3 x16.
func DefaultQueuePairConfig() QueuePairConfig {
	return QueuePairConfig{
		Depth:              32,
		SubmissionOverhead: 3 * sim.Microsecond,
		CompletionOverhead: 2 * sim.Microsecond,
		CommandLatency:     8 * sim.Microsecond,
		LinkBytesPerSec:    16e9,
	}
}

// QueuePair simulates command flow through one NVMe queue pair. Its three
// contended resources are shared-layer primitives registered in the central
// stats registry: the PCIe data link ("nvme.<name>.link"), the host CPU
// serialising submission/completion work ("nvme.<name>.cpu"), and the
// submission-queue depth window ("nvme.<name>.sq").
type QueuePair struct {
	eng  *sim.Engine
	cfg  QueuePairConfig
	link sim.Connection

	// host CPU is a serial resource for submission/completion work.
	hostCPU sim.Connection

	// sq is the queue-depth window: admission of a new command when the
	// queue is full waits for the oldest outstanding completion.
	sq *sim.Window

	completed uint64
	bytes     uint64
	lastDone  sim.Time
}

// NewQueuePair creates a queue pair on eng, registered under name.
func NewQueuePair(eng *sim.Engine, name string, cfg QueuePairConfig) (*QueuePair, error) {
	if cfg.Depth <= 0 {
		return nil, fmt.Errorf("storage: queue depth must be positive")
	}
	if cfg.LinkBytesPerSec <= 0 {
		return nil, fmt.Errorf("storage: link bandwidth must be positive")
	}
	return &QueuePair{
		eng:  eng,
		cfg:  cfg,
		link: sim.NewLink(eng, "nvme."+name+".link", cfg.LinkBytesPerSec, 500*sim.Nanosecond),
		// Host submission/completion work serialises on one core; model
		// it as a unit-bandwidth link occupied for the overhead duration.
		hostCPU: sim.NewLink(eng, "nvme."+name+".cpu", 1, 0),
		sq:      sim.NewWindow(eng, "nvme."+name+".sq", cfg.Depth),
	}, nil
}

// RunReads pushes `commands` fixed-size reads through the queue pair and
// returns the completion time of the last one. The host keeps the queue as
// full as the configured depth allows; the depth limit itself is the shared
// sim.Window, which accounts full-queue admission waits.
func (qp *QueuePair) RunReads(commands int, bytesPer int64) sim.Time {
	if commands <= 0 {
		return qp.eng.Now()
	}
	issueTime := qp.eng.Now()
	for i := 0; i < commands; i++ {
		// Respect queue depth: wait for the oldest completion.
		issueTime = qp.sq.Admit(issueTime)
		// Host submission and completion work serialise on one CPU; both
		// are charged per command (the completion half is processed while
		// later commands stream, but still consumes the same core).
		subDone := qp.hostCPU.Occupy(qp.cfg.SubmissionOverhead+qp.cfg.CompletionOverhead, 1)
		if subDone > issueTime {
			issueTime = subDone
		}
		// Device processes the command, then the data crosses the link.
		ready := issueTime + qp.cfg.CommandLatency
		xferDone := qp.link.TransferAt(maxQP(ready, qp.eng.Now()), bytesPer)
		// Completion processing back on the host CPU.
		compDone := xferDone + qp.cfg.CompletionOverhead
		qp.sq.Complete(compDone)
		qp.completed++
		qp.bytes += uint64(bytesPer)
		if compDone > qp.lastDone {
			qp.lastDone = compDone
		}
	}
	return qp.lastDone
}

// QueueWaitTime reports accumulated full-queue admission delay.
func (qp *QueuePair) QueueWaitTime() sim.Time { return qp.sq.WaitTime() }

// EffectiveBandwidth reports bytes moved over elapsed time for the whole
// run (0 before any command).
func (qp *QueuePair) EffectiveBandwidth() float64 {
	if qp.lastDone == 0 {
		return 0
	}
	return float64(qp.bytes) / qp.lastDone.Seconds()
}

// Completed reports finished commands.
func (qp *QueuePair) Completed() uint64 { return qp.completed }

func maxQP(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
