package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/inspect"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/workload"
)

func TestRunAllExperimentIDs(t *testing.T) {
	cfg := config.Default()
	m := workload.DefaultModel()
	for _, id := range experimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := run(id, cfg, m)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			var sb strings.Builder
			for _, tb := range tables {
				if err := tb.Render(&sb); err != nil {
					t.Fatal(err)
				}
				if err := tb.CSV(&sb); err != nil {
					t.Fatal(err)
				}
			}
			if sb.Len() == 0 {
				t.Fatalf("%s rendered empty output", id)
			}
		})
	}
}

// TestListOutputGolden pins the -list contract: the `-exp all` ids
// sorted, one per line, then the extra (runnable, not in "all") ids
// grouped under a labeled section. Scripts parse this.
func TestListOutputGolden(t *testing.T) {
	const want = `ablation-gam
ablation-granularity
ablation-mapping
ablation-nsbuffer
fig10
fig11
fig12
fig13
fig8
fig9
loadsweep
motivation
multitenant
recallsweep
reverselookup
skew
table1
table2
table3
table4

extra (runnable, excluded from -exp all):
cachesweep
clustersweep
taillatency
`
	if got := listOutput(); got != want {
		t.Errorf("-list output changed:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestExtraIDsRunnable: ids outside "all" still run through the same
// switch; the extras must stay out of experimentIDs so `-exp all` output
// is unchanged.
func TestExtraIDsRunnable(t *testing.T) {
	for _, extra := range extraIDs {
		for _, id := range experimentIDs {
			if id == extra {
				t.Fatalf("%s joined -exp all; it must stay an extra id", extra)
			}
		}
		tables, err := run(extra, config.Default(), workload.DefaultModel())
		if err != nil {
			t.Fatal(err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", extra)
		}
	}
}

func TestQTraceSummaryPath(t *testing.T) {
	for in, want := range map[string]string{
		"q.csv":      "q_summary.csv",
		"out/q.csv":  "out/q_summary.csv",
		"noext":      "noext_summary.csv",
		"a.dir/file": "a.dir/file_summary.csv",
	} {
		if got := qtraceSummaryPath(in); got != want {
			t.Errorf("qtraceSummaryPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRunAllQTraceInspector drives runAll the way `-exp taillatency
// -qtrace q.csv -http :0` does: per-query CSVs land with the pinned
// schemas, the inspector's live counters see every completed query, and
// each traced run reports its resource utilization.
func TestRunAllQTraceInspector(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/queries.csv"
	insp := inspect.New()
	if err := insp.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer insp.Close()
	o := runAllOptions{
		jobs:       4,
		qtrace:     &qtrace.Options{Observer: insp},
		qtracePath: path,
		inspector:  insp,
	}
	var out strings.Builder
	if err := runAll(&out, []string{"taillatency"}, config.Default(), workload.DefaultModel(), o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Tail latency") {
		t.Error("taillatency table not emitted")
	}

	readCSV := func(p string) [][]string {
		t.Helper()
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := csv.NewReader(f).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	ivs := readCSV(path)
	if got, want := strings.Join(ivs[0], ","), strings.Join(qtrace.IntervalCSVHeader(), ","); got != want {
		t.Errorf("interval CSV header %q, want %q", got, want)
	}
	sums := readCSV(qtraceSummaryPath(path))
	if got, want := strings.Join(sums[0], ","), strings.Join(qtrace.SummaryCSVHeader(), ","); got != want {
		t.Errorf("summary CSV header %q, want %q", got, want)
	}
	// 4 rates x 2 mappings x DefaultTailBatches completed queries.
	wantQueries := 8 * 96
	if len(sums)-1 != wantQueries {
		t.Errorf("summary rows = %d, want %d", len(sums)-1, wantQueries)
	}
	if len(ivs)-1 <= wantQueries {
		t.Errorf("interval rows = %d; expected several per query", len(ivs)-1)
	}
	snap := insp.Snapshot()
	if snap.QueriesCompleted != uint64(wantQueries) {
		t.Errorf("inspector saw %d queries, want %d (live observer not wired)",
			snap.QueriesCompleted, wantQueries)
	}
	if snap.P99Ms <= snap.P50Ms || snap.P50Ms <= 0 {
		t.Errorf("inspector quantiles implausible: p50=%v p99=%v", snap.P50Ms, snap.P99Ms)
	}
	if snap.RunsObserved != 8 {
		t.Errorf("inspector observed %d runs, want 8", snap.RunsObserved)
	}
	if len(snap.Resources) == 0 {
		t.Error("inspector has no per-resource busy fractions")
	}
}

// TestWriteQTraceJSONL: a .jsonl path switches to one tagged stream.
func TestWriteQTraceJSONL(t *testing.T) {
	path := t.TempDir() + "/q.jsonl"
	o := runAllOptions{qtrace: &qtrace.Options{}, qtracePath: path}
	var out strings.Builder
	if err := runAll(&out, []string{"fig12"}, config.Default(), workload.DefaultModel(), o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var intervals, queries int
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct{ Type string }
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		switch rec.Type {
		case "interval":
			intervals++
		case "query":
			queries++
		default:
			t.Fatalf("unknown record type %q", rec.Type)
		}
	}
	if intervals == 0 || queries == 0 {
		t.Fatalf("JSONL dump missing records: %d intervals, %d queries", intervals, queries)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := run("nonsense", config.Default(), workload.DefaultModel()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWriteTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	if err := writeTrace(path, nil, ""); err != nil {
		t.Fatal(err)
	}
}

// TestWriteTraceWithMetrics exercises the instrumented trace path: counter
// lanes and GAM spans merged into the timeline, plus the raw CSV dump.
func TestWriteTraceWithMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/trace.json"
	csvPath := dir + "/metrics.csv"
	if err := writeTrace(tracePath, &metrics.Options{Spans: true}, csvPath); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
	}
	var counters, spans int
	for _, e := range events {
		switch e["ph"] {
		case "C":
			counters++
		case "X":
			if cat, _ := e["cat"].(string); strings.HasPrefix(cat, "gam.") {
				spans++
			}
		}
	}
	if counters == 0 {
		t.Error("no counter events merged into trace")
	}
	if spans == 0 {
		t.Error("no GAM spans merged into trace")
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Errorf("metrics CSV not written: %v", err)
	}
}
