package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ClusterPoint is one (node count, routing policy, offered rate) cell of
// the cluster sweep: latency quantiles over the completed queries plus
// the load-balance view — per-node busy time and how unevenly the router
// spread the traffic.
type ClusterPoint struct {
	Nodes      int
	Policy     string
	OfferedQPS float64
	Completed  uint64

	Mean sim.Time
	P50  sim.Time
	P99  sim.Time
	P999 sim.Time

	// NodeBusyPct is each node's mean accelerator utilisation in percent.
	NodeBusyPct []float64
	// MeanBusyPct averages NodeBusyPct.
	MeanBusyPct float64
	// RoutedImbalance is max/mean of per-node routed requests (1.0 even).
	RoutedImbalance float64
	// PeakQueueImbalance is max/mean of per-node peak outstanding
	// requests — the queue-depth view that separates load-aware routing
	// from hash affinity under skew.
	PeakQueueImbalance float64
}

// ClusterSweepResult is the full sweep, points in (nodes, policy, rate)
// declaration order.
type ClusterSweepResult struct {
	Points []*ClusterPoint
}

// Point finds a swept cell (nil if absent).
func (r *ClusterSweepResult) Point(nodes int, policy string, qps float64) *ClusterPoint {
	for _, p := range r.Points {
		if p.Nodes == nodes && p.Policy == policy && p.OfferedQPS == qps {
			return p
		}
	}
	return nil
}

// Sweep defaults: scale-out factors, all three routing policies, rates
// climbing into the region where the per-query hot shard queues (a 4-node
// cluster's scatter-gather services a query in ~70 ms of critical path,
// so tens of q/s load the hot replicas), and enough queries per cell for
// a stable p99.
const (
	DefaultClusterQueries = 64
	DefaultClusterSeed    = 1
)

// DefaultClusterNodeCounts sweeps scale-out.
func DefaultClusterNodeCounts() []int { return []int{2, 4} }

// DefaultClusterRates approaches hot-replica saturation at 4 nodes.
func DefaultClusterRates() []float64 { return []float64{5, 10, 20} }

// ClusterObserver receives one observed cluster cell after its run
// drains: the run label, the barrier-driven recorder (sampler series plus
// per-node span logs when enabled) and the drained cluster itself.
type ClusterObserver func(run string, rec *metrics.MultiRecorder, cl *cluster.Cluster)

// WithClusterObs attaches a barrier-driven metrics.MultiSampler to every
// cluster simulation of the experiment — and, when mo.Spans is set, the
// per-node GAM span logs — then reports each cell through observe after
// all cells complete, in cell declaration order (deterministic regardless
// of worker count). This is the cluster counterpart of WithMetrics, which
// only covers RunSpec-based experiments: sweep cells own a MultiEngine,
// not an Engine, so they need the barrier-observer attachment instead of
// the event-loop sampler. Experiments without a cluster ignore it.
func WithClusterObs(mo metrics.Options, observe ClusterObserver) Option {
	return func(o *runOptions) {
		o.clusterObs = &mo
		o.clObserve = observe
	}
}

// observedCell pairs one sweep cell's recorder with its cluster for the
// post-sweep ClusterObserver callbacks.
type observedCell struct {
	rec *metrics.MultiRecorder
	cl  *cluster.Cluster
}

// attachClusterObs wires the configured observability onto one cluster.
func (o *runOptions) attachClusterObs(cl *cluster.Cluster) *metrics.MultiRecorder {
	if o.clusterObs == nil {
		return nil
	}
	rec := metrics.AttachMulti(cl.Multi(), *o.clusterObs)
	if o.clusterObs.Spans {
		rec.Spans = cl.AttachSpans()
	}
	return rec
}

// clusterCell is one unit of sweep work.
type clusterCell struct {
	nodes  int
	policy string
	rate   float64
	stream int64
}

// ClusterSweep sweeps node count × routing policy × offered QPS over the
// deployment described by cfg (cfg.Nodes and cfg.RoutePolicy are
// overridden per cell; replication is clamped to the cell's node count).
// Arrivals are open-loop Poisson from a per-cell stream seeded by seed,
// precomputed so results are byte-identical at any worker count.
func ClusterSweep(m workload.Model, cfg config.ClusterConfig, nodeCounts []int, policies []string, rates []float64, queries int, seed int64, opts ...Option) (*ClusterSweepResult, error) {
	if queries <= 0 {
		return nil, fmt.Errorf("experiments: cluster sweep needs at least one query, got %d", queries)
	}
	var cells []clusterCell
	for _, n := range nodeCounts {
		for _, pol := range policies {
			for _, rate := range rates {
				cells = append(cells, clusterCell{n, pol, rate, int64(len(cells))})
			}
		}
	}
	o := buildOptions(opts)
	name := func(i int) string {
		c := cells[i]
		return fmt.Sprintf("clustersweep %dn %s %.0f q/s", c.nodes, c.policy, c.rate)
	}
	arr := ArrivalSpec{Process: ArrivalPoisson, Seed: seed}
	var observed []observedCell
	if o.clusterObs != nil {
		observed = make([]observedCell, len(cells))
	}
	points, err := mapRuns(o, cells, name, func(cell clusterCell) (*ClusterPoint, error) {
		ccfg := cfg
		ccfg.Nodes = cell.nodes
		ccfg.RoutePolicy = cell.policy
		if ccfg.ShardMap == nil && ccfg.Replication > cell.nodes {
			ccfg.Replication = cell.nodes
		}
		if o.clusterPJ >= 0 {
			ccfg.ParallelDomains = o.clusterPJ
		}
		cl, err := cluster.New(ccfg, m, qtrace.Options{DropTimelines: true})
		if err != nil {
			return nil, err
		}
		if rec := o.attachClusterObs(cl); rec != nil {
			// cell.stream is the cell's declaration index: each worker
			// writes its own slot, the callbacks below replay in order.
			observed[cell.stream] = observedCell{rec: rec, cl: cl}
		}
		at := arr.schedule(cell.rate, queries, cell.stream)
		for q := 0; q < queries; q++ {
			cl.SubmitAt(at(q))
		}
		if err := cl.Run(); err != nil {
			return nil, err
		}
		sk := cl.QLog().Sketch()
		p := &ClusterPoint{
			Nodes:      cell.nodes,
			Policy:     cell.policy,
			OfferedQPS: cell.rate,
			Completed:  sk.Count(),
			Mean:       sk.Mean(),
			P50:        sk.Quantile(0.5),
			P99:        sk.Quantile(0.99),
			P999:       sk.Quantile(0.999),
		}
		for i := 0; i < cell.nodes; i++ {
			p.NodeBusyPct = append(p.NodeBusyPct, cl.NodeBusyPct(i))
			p.MeanBusyPct += p.NodeBusyPct[i]
		}
		p.MeanBusyPct /= float64(cell.nodes)
		p.RoutedImbalance = cl.RouterStats().Imbalance()
		p.PeakQueueImbalance = cl.RouterStats().PeakImbalance()
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	if o.clObserve != nil {
		for i := range cells {
			if observed[i].cl != nil {
				o.clObserve(name(i), observed[i].rec, observed[i].cl)
			}
		}
	}
	return &ClusterSweepResult{Points: points}, nil
}

// ClusterRun executes one cluster deployment under the given seeded
// arrival process and reduces it to a summary table — the CLI's -cluster
// path and the CI cluster smoke. observe, when non-nil, receives the
// assembled cluster before the simulation starts, so live tooling (the
// inspector's per-domain progress view) can attach to the MultiEngine.
// Deterministic for fixed inputs: the table is byte-identical run to run
// — and at any ParallelDomains — which is what the smoke golden diffs.
func ClusterRun(m workload.Model, cfg config.ClusterConfig, queries int, rate float64, arr ArrivalSpec, qopt qtrace.Options, observe func(*cluster.Cluster)) (*cluster.Cluster, *report.Table, error) {
	cl, err := cluster.New(cfg, m, qopt)
	if err != nil {
		return nil, nil, err
	}
	if observe != nil {
		observe(cl)
	}
	at := arr.schedule(rate, queries, 0)
	for q := 0; q < queries; q++ {
		cl.SubmitAt(at(q))
	}
	if err := cl.Run(); err != nil {
		return nil, nil, err
	}
	sk := cl.QLog().Sketch()
	t := &report.Table{
		Title: fmt.Sprintf("Cluster scatter-gather — %d nodes, %d shards (x%d), %s routing, %.0f q/s",
			cfg.Nodes, cfg.Shards, cfg.Replication, cfg.RoutePolicy, rate),
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("queries completed", fmt.Sprintf("%d / %d", cl.Completed(), cl.Submitted()))
	t.AddRow("p50 ms", report.F(sk.Quantile(0.5).Milliseconds(), 2))
	t.AddRow("p99 ms", report.F(sk.Quantile(0.99).Milliseconds(), 2))
	t.AddRow("p999 ms", report.F(sk.Quantile(0.999).Milliseconds(), 2))
	t.AddRow("mean node busy %", report.F(cl.MeanBusyPct(), 1))
	for i := range cl.Nodes() {
		t.AddRow(fmt.Sprintf("node%d busy %%", i), report.F(cl.NodeBusyPct(i), 1))
	}
	t.AddRow("routed imbalance", report.F(cl.RouterStats().Imbalance(), 2))
	t.AddRow("peak queue imbalance", report.F(cl.RouterStats().PeakImbalance(), 2))
	t.AddRow("sim events", fmt.Sprintf("%d", cl.Multi().Executed()))
	t.AddRow("sync rounds", fmt.Sprintf("%d", cl.Multi().Rounds()))
	if cl.CacheEnabled() {
		// Cache rows only when the cache is on, so the cache-off table —
		// and the pinned smoke golden diffing it — is untouched.
		cs := cl.CacheStats()
		t.AddRow("cache hits / lookups", fmt.Sprintf("%d / %d", cs.Hits, cs.Lookups))
		t.AddRow("cache hit rate %", report.F(100*cs.HitRate, 1))
		t.AddRow("cache coalesced", fmt.Sprintf("%d", cs.Coalesced))
		t.AddRow("cache expired", fmt.Sprintf("%d", cs.Expired))
		t.AddRow("cache evictions", fmt.Sprintf("%d", cs.Evictions))
		t.AddRow("cache mean serve age ms", report.F(cs.MeanServeAge.Milliseconds(), 2))
		t.AddRow("peak in-flight contents", fmt.Sprintf("%d", cl.PeakPending()))
	}
	return cl, t, nil
}

// DefaultClusterSweep runs the standard sweep over the default deployment.
func DefaultClusterSweep(m workload.Model, opts ...Option) (*ClusterSweepResult, error) {
	return ClusterSweep(m, config.DefaultCluster(),
		DefaultClusterNodeCounts(), config.RoutePolicies(), DefaultClusterRates(),
		DefaultClusterQueries, DefaultClusterSeed, opts...)
}

// ClusterSweepTable renders the sweep: scale-out on the left, per-policy
// tail latency and balance on the right.
func ClusterSweepTable(res *ClusterSweepResult) *report.Table {
	t := &report.Table{
		Title: "Cluster scale-out — sharded scatter-gather CBIR (Poisson open loop)",
		Columns: []string{"Nodes", "Policy", "Offered q/s",
			"p50 ms", "p99 ms", "p999 ms", "busy %", "routed imbal", "peak-q imbal"},
	}
	for _, p := range res.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Nodes),
			p.Policy,
			report.F(p.OfferedQPS, 0),
			report.F(p.P50.Milliseconds(), 1),
			report.F(p.P99.Milliseconds(), 1),
			report.F(p.P999.Milliseconds(), 1),
			report.F(p.MeanBusyPct, 1),
			report.F(p.RoutedImbalance, 2),
			report.F(p.PeakQueueImbalance, 2),
		)
	}
	// Headline: the policy gap at the most loaded 4-node point.
	if n := len(res.Points); n > 0 {
		rates := map[float64]bool{}
		var maxRate float64
		var maxNodes int
		for _, p := range res.Points {
			rates[p.OfferedQPS] = true
			if p.OfferedQPS > maxRate {
				maxRate = p.OfferedQPS
			}
			if p.Nodes > maxNodes {
				maxNodes = p.Nodes
			}
		}
		hash := res.Point(maxNodes, "hash", maxRate)
		p2c := res.Point(maxNodes, "p2c", maxRate)
		if hash != nil && p2c != nil && p2c.P99 > 0 {
			t.AddNote("at %d nodes, %.0f q/s: hash p99 %.1f ms vs p2c p99 %.1f ms (%.2fx)",
				maxNodes, maxRate, hash.P99.Milliseconds(), p2c.P99.Milliseconds(),
				float64(hash.P99)/float64(p2c.P99))
		}
	}
	return t
}
