package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestLoadSweepSaturation(t *testing.T) {
	onchip, reach, err := LoadSweepBoth(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Below saturation, latency is flat near the unloaded value; past it,
	// latency grows with queueing. ReACH must sustain a much higher rate.
	bound := 2 * sim.Second
	oSat := onchip.SaturationRate(bound)
	rSat := reach.SaturationRate(bound)
	if oSat <= 0 || rSat <= 0 {
		t.Fatalf("saturation rates %v/%v", oSat, rSat)
	}
	if ratio := rSat / oSat; ratio < 2.5 {
		t.Errorf("ReACH sustainable rate only %.1fx on-chip's (%.1f vs %.1f b/s)", ratio, rSat, oSat)
	}
	// Latency must be nondecreasing in offered load for each option.
	for _, r := range []*LoadSweepResult{onchip, reach} {
		for i := 1; i < len(r.Points); i++ {
			if r.Points[i].MeanLatency+sim.Millisecond < r.Points[i-1].MeanLatency {
				t.Errorf("%s: mean latency dropped from %v to %v as load rose",
					r.Option, r.Points[i-1].MeanLatency, r.Points[i].MeanLatency)
			}
		}
	}
	var sb strings.Builder
	if err := LoadSweepTable(onchip, reach).Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "sustainable rate") {
		t.Error("table missing saturation note")
	}
}
