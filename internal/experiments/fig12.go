package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig12Cell is one bar of Fig. 12: the end-to-end pipeline on a single
// compute level with n instances, decomposed by stage.
type Fig12Cell struct {
	Level        accel.Level
	Instances    int
	StageRuntime map[string]sim.Time
	StageEnergy  map[string]float64
	Runtime      sim.Time
	EnergyJ      float64
}

// Fig12Result holds the whole figure, normalised to the on-chip baseline.
type Fig12Result struct {
	Cells    []*Fig12Cell
	Baseline *Fig12Cell // on-chip, 1 instance
}

// Fig12Counts is the figure's instance axis.
func Fig12Counts() []int { return []int{1, 2, 4} }

// Fig12 runs the end-to-end CBIR pipeline on each single compute level at
// 1, 2 and 4 instances (the paper reserves half the DIMMs for the host, so
// near-memory scales to 4).
func Fig12(m workload.Model) (*Fig12Result, error) {
	res := &Fig12Result{}
	runCell := func(l accel.Level, n int) (*Fig12Cell, error) {
		run, err := RunPipeline(m, SingleLevel(l), n, 1)
		if err != nil {
			return nil, err
		}
		cell := &Fig12Cell{
			Level:        l,
			Instances:    n,
			StageRuntime: run.StageSpan,
			StageEnergy:  make(map[string]float64),
			Runtime:      run.Latency,
		}
		meter := run.Sys.Meter()
		for _, st := range Stages() {
			cell.StageEnergy[st] = meter.Stage(st)
			cell.EnergyJ += meter.Stage(st)
		}
		return cell, nil
	}

	base, err := runCell(accel.OnChip, 1)
	if err != nil {
		return nil, err
	}
	res.Baseline = base
	for _, n := range Fig12Counts() {
		for _, l := range []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage} {
			if l == accel.OnChip {
				// The on-chip bar does not scale with n (one instance).
				res.Cells = append(res.Cells, base)
				continue
			}
			cell, err := runCell(l, n)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Table renders Fig. 12: normalised runtime and energy per (level,
// instances), stacked by stage.
func (r *Fig12Result) Table() *report.Table {
	t := &report.Table{
		Title: "Fig 12 — end-to-end CBIR on a single compute level (normalised to on-chip)",
		Columns: []string{"ACCs", "Level", "Runtime", "Energy",
			"FE ms", "SL ms", "RR ms"},
	}
	for _, c := range r.Cells {
		t.AddRow(
			fmt.Sprintf("%d", c.Instances),
			c.Level.String(),
			report.F(float64(c.Runtime)/float64(r.Baseline.Runtime), 2),
			report.F(c.EnergyJ/r.Baseline.EnergyJ, 2),
			report.F(c.StageRuntime[StageFE].Milliseconds(), 1),
			report.F(c.StageRuntime[StageSL].Milliseconds(), 1),
			report.F(c.StageRuntime[StageRR].Milliseconds(), 1),
		)
	}
	t.AddNote("on-chip baseline: %.1f ms, %.2f J per batch",
		r.Baseline.Runtime.Milliseconds(), r.Baseline.EnergyJ)
	return t
}
