package kernels

import (
	"container/heap"
	"fmt"
	"math"
)

// SquaredL2 computes ‖p − q‖² (paper Eq. 2), the similarity measure used by
// both shortlist retrieval and rerank.
func SquaredL2(p, q []float32) float32 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("kernels: SquaredL2 dim mismatch %d vs %d", len(p), len(q)))
	}
	var sum float32
	for i := range p {
		d := p[i] - q[i]
		sum += d * d
	}
	return sum
}

// SquaredNorm computes ‖v‖².
func SquaredNorm(v []float32) float32 {
	var sum float32
	for _, x := range v {
		sum += x * x
	}
	return sum
}

// BatchDistances implements the decomposition of paper Eq. 1:
//
//	dist[b][m] = ‖q_b‖² + ‖C_m‖² − 2⟨q_b, C_m⟩
//
// where queries is B×D, centroidsT is the D×M columnar centroid matrix and
// centroidNormSq the precomputed ‖C_m‖² vector. The bottleneck term
// ⟨Q, C⟩ is evaluated as one B×D × D×M GeMM — exactly how the shortlist
// kernel is structured on the FPGA — followed by the broadcast addition.
func BatchDistances(queries *Matrix, centroidsT *Matrix, centroidNormSq []float32) *Matrix {
	if queries.Cols != centroidsT.Rows {
		panic(fmt.Sprintf("kernels: BatchDistances dim mismatch D=%d vs %d", queries.Cols, centroidsT.Rows))
	}
	if len(centroidNormSq) != centroidsT.Cols {
		panic("kernels: centroid norm vector length mismatch")
	}
	dots := GeMM(queries, centroidsT) // B×M
	for b := 0; b < dots.Rows; b++ {
		qn := SquaredNorm(queries.Row(b))
		row := dots.Row(b)
		for m := range row {
			row[m] = qn + centroidNormSq[m] - 2*row[m]
		}
	}
	return dots
}

// Neighbor is one scored candidate.
type Neighbor struct {
	ID   int
	Dist float32
}

// neighborMaxHeap keeps the K smallest distances by storing a max-heap of
// size K: the root is the current worst of the best-K and is displaced by
// anything better.
type neighborMaxHeap []Neighbor

func (h neighborMaxHeap) Len() int      { return len(h) }
func (h neighborMaxHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h neighborMaxHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist // max-heap on distance
	}
	return h[i].ID > h[j].ID // deterministic tie-break
}
func (h *neighborMaxHeap) Push(x any) { *h = append(*h, x.(Neighbor)) }
func (h *neighborMaxHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK is the streaming partial-sort selector the rerank and shortlist
// kernels use: feed it scored candidates, read the best K at the end.
type TopK struct {
	k int
	h neighborMaxHeap
}

// NewTopK creates a selector of the K nearest (smallest-distance) items.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("kernels: TopK needs k >= 1")
	}
	return &TopK{k: k, h: make(neighborMaxHeap, 0, k+1)}
}

// Offer considers one candidate.
func (t *TopK) Offer(id int, dist float32) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Neighbor{ID: id, Dist: dist})
		return
	}
	worst := t.h[0]
	if dist < worst.Dist || (dist == worst.Dist && id < worst.ID) {
		t.h[0] = Neighbor{ID: id, Dist: dist}
		heap.Fix(&t.h, 0)
	}
}

// Merge offers every result of another selector — the "Collect" reduction
// across near-storage accelerator instances.
func (t *TopK) Merge(other *TopK) {
	for _, n := range other.h {
		t.Offer(n.ID, n.Dist)
	}
}

// Len reports how many results are held (≤ K).
func (t *TopK) Len() int { return len(t.h) }

// Results returns the selected neighbours sorted by ascending distance
// (ties by ascending ID). The selector remains usable afterwards.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, len(t.h))
	copy(out, t.h)
	// Simple insertion sort: K is small (10 in the case study).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// BruteForceKNN scans the whole database (row-major vectors) and returns
// the K nearest to q — the exhaustive-search ground truth used for recall
// evaluation.
func BruteForceKNN(db *Matrix, q []float32, k int) []Neighbor {
	sel := NewTopK(k)
	for i := 0; i < db.Rows; i++ {
		sel.Offer(i, SquaredL2(db.Row(i), q))
	}
	return sel.Results()
}

// RecallAtK reports |found ∩ truth| / |truth| — the retrieval quality
// metric the paper argues NDP preserves (vs. lossy compression).
func RecallAtK(found, truth []Neighbor) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	set := make(map[int]bool, len(truth))
	for _, n := range truth {
		set[n.ID] = true
	}
	hit := 0
	for _, n := range found {
		if set[n.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
