package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestComponentStrings(t *testing.T) {
	want := []string{"ACC", "Cache", "DRAM", "SSD", "MC and Interconnect", "PCIe"}
	for i, c := range Components() {
		if c.String() != want[i] {
			t.Errorf("component %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if Component(99).String() == "" {
		t.Error("unknown component empty string")
	}
	if Compute.String() != "Compute" || Movement.String() != "Data movement" {
		t.Error("Kind strings wrong")
	}
}

func TestActiveEnergy(t *testing.T) {
	m := NewMeter(DefaultCosts())
	// 25 W for 111 ms — the on-chip CNN stage — is 2.775 J.
	m.AddActive("FeatureExtraction", 25, 111*sim.Millisecond)
	got := m.Component(ACC)
	if math.Abs(got-2.775) > 1e-9 {
		t.Errorf("ACC energy = %v J, want 2.775", got)
	}
	if m.Kind(Compute) != got {
		t.Error("active energy not classified as compute")
	}
}

func TestMovementHelpers(t *testing.T) {
	c := DefaultCosts()
	m := NewMeter(c)
	const n = 1 << 30
	m.CacheTraffic("s", n)
	m.DRAMTraffic("s", n)
	m.MCTraffic("s", n)
	m.SSDTraffic("s", n)
	m.PCIeTraffic("s", n)
	m.AIMBusTraffic("s", n)

	checks := []struct {
		comp Component
		want float64
	}{
		{Cache, float64(n) * c.CachePerByte},
		{DRAM, float64(n) * c.DRAMPerByte},
		{SSD, float64(n) * c.SSDPerByte},
		{PCIe, float64(n) * c.PCIePerByte},
		{MCInterconnect, float64(n) * (c.MCPerByte + c.AIMBusPerByte)},
	}
	for _, chk := range checks {
		if got := m.Component(chk.comp); math.Abs(got-chk.want) > 1e-12 {
			t.Errorf("%v = %v J, want %v", chk.comp, got, chk.want)
		}
	}
	if m.Kind(Compute) != 0 {
		t.Error("movement recorded as compute")
	}
	// Map-iteration order varies the float summation order, so compare
	// with tolerance.
	if share := m.MovementShare(); math.Abs(share-1.0) > 1e-12 {
		t.Errorf("movement share = %v, want 1", share)
	}
}

func TestStageAttribution(t *testing.T) {
	m := NewMeter(DefaultCosts())
	m.AddActive("FE", 10, sim.Second)  // 10 J compute
	m.DRAMTraffic("FE", 2_000_000_000) // 3 J movement
	m.AddActive("RR", 5, sim.Second)   // 5 J
	m.SSDTraffic("RR", 4_000_000_000)  // 10 J

	if got := m.Stage("FE"); math.Abs(got-13) > 1e-9 {
		t.Errorf("FE stage = %v, want 13", got)
	}
	if got := m.StageKind("RR", Movement); math.Abs(got-10) > 1e-9 {
		t.Errorf("RR movement = %v, want 10", got)
	}
	if got := m.ComponentStage(ACC, "RR"); math.Abs(got-5) > 1e-9 {
		t.Errorf("ACC/RR = %v, want 5", got)
	}
	if got := m.Total(); math.Abs(got-28) > 1e-9 {
		t.Errorf("total = %v, want 28", got)
	}
	stages := m.Stages()
	if len(stages) != 2 || stages[0] != "FE" || stages[1] != "RR" {
		t.Errorf("stages = %v", stages)
	}
}

func TestBackground(t *testing.T) {
	c := DefaultCosts()
	m := NewMeter(c)
	m.AddBackground("idle", 8, 4, 10*sim.Second)
	wantDRAM := 8 * c.DRAMBackgroundWPerDIMM * 10
	wantSSD := 4 * c.SSDIdleW * 10
	if got := m.Component(DRAM); math.Abs(got-wantDRAM) > 1e-9 {
		t.Errorf("DRAM background = %v, want %v", got, wantDRAM)
	}
	if got := m.Component(SSD); math.Abs(got-wantSSD) > 1e-9 {
		t.Errorf("SSD idle = %v, want %v", got, wantSSD)
	}
}

func TestMergeAndReset(t *testing.T) {
	a := NewMeter(DefaultCosts())
	b := NewMeter(DefaultCosts())
	a.AddActive("s", 1, sim.Second)
	b.AddActive("s", 2, sim.Second)
	a.Merge(b)
	if math.Abs(a.Total()-3) > 1e-9 {
		t.Errorf("merged total = %v, want 3", a.Total())
	}
	a.Reset()
	if a.Total() != 0 {
		t.Errorf("total after reset = %v", a.Total())
	}
	if a.MovementShare() != 0 {
		t.Error("movement share of empty meter not 0")
	}
}

func TestNegativeEnergyPanics(t *testing.T) {
	m := NewMeter(DefaultCosts())
	defer func() {
		if recover() == nil {
			t.Error("negative energy accepted")
		}
	}()
	m.Add(ACC, "s", Compute, -1)
}

// Property: Total always equals the sum over components, and equals the sum
// over kinds, whatever mix of records is made.
func TestMeterConsistency(t *testing.T) {
	f := func(records []struct {
		C uint8
		K bool
		J uint16
	}) bool {
		m := NewMeter(DefaultCosts())
		for _, r := range records {
			comp := Component(int(r.C) % int(numComponents))
			kind := Compute
			if r.K {
				kind = Movement
			}
			m.Add(comp, "s", kind, float64(r.J))
		}
		var byComp, byKind float64
		for _, c := range Components() {
			byComp += m.Component(c)
		}
		byKind = m.Kind(Compute) + m.Kind(Movement)
		total := m.Total()
		return math.Abs(total-byComp) < 1e-6 && math.Abs(total-byKind) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
