package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestMultiTenantSharing(t *testing.T) {
	r, err := MultiTenant(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// Without priorities, interactive queries queue behind the bulk scans
	// that were submitted first: severe degradation.
	if r.CBIRSharedTput >= r.CBIRAloneTput/2 {
		t.Errorf("unprioritised CBIR throughput (%.2f) not well below alone (%.2f)",
			r.CBIRSharedTput, r.CBIRAloneTput)
	}
	if r.CBIRSharedLat <= 2*r.CBIRAloneLat {
		t.Errorf("unprioritised latency (%v) should blow up vs alone (%v)",
			r.CBIRSharedLat, r.CBIRAloneLat)
	}
	// The priority knob (§III runtime balancing) restores the interactive
	// tenant to near-solo performance...
	if r.CBIRPrioTput < 0.9*r.CBIRAloneTput {
		t.Errorf("prioritised CBIR throughput (%.2f) below 90%% of alone (%.2f)",
			r.CBIRPrioTput, r.CBIRAloneTput)
	}
	if float64(r.CBIRPrioLat) > 1.5*float64(r.CBIRAloneLat) {
		t.Errorf("prioritised latency (%v) not near alone (%v)", r.CBIRPrioLat, r.CBIRAloneLat)
	}
	// ...while costing the bulk tenant only modestly (chunked tasks let
	// it fill the gaps).
	if r.ScanPrioSec > 1.25*r.ScanAloneSec {
		t.Errorf("prioritised scan makespan (%.2fs) more than 25%% over alone (%.2fs)",
			r.ScanPrioSec, r.ScanAloneSec)
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "prioritised") {
		t.Error("table missing priority column")
	}
}
