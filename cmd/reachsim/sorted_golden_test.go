package main

import (
	"bytes"
	"encoding/csv"
	"sort"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workload"
)

// goldenResourceOrder is the full sorted registry of a 4-instance ReACH
// pipeline run — the order both the -stats dump and the metrics CSV must
// follow. Registering a new resource model legitimately changes this list;
// update it alongside the model.
var goldenResourceOrder = []string{
	"mem.aimbus",
	"mem.aimdimm0", "mem.aimdimm1", "mem.aimdimm2", "mem.aimdimm3",
	"mem.host",
	"mem.nsbuf0", "mem.nsbuf1", "mem.nsbuf2", "mem.nsbuf3",
	"noc.cpu.in", "noc.cpu.out",
	"noc.gam.in", "noc.gam.out",
	"noc.llc.in", "noc.llc.out",
	"noc.onchip0.in", "noc.onchip0.out",
	"ssd.host_link",
	"ssd0.flash", "ssd1.flash", "ssd2.flash", "ssd3.flash",
	"stream.nearmem-nearstor", "stream.nearstor-cpu", "stream.onchip-nearmem",
}

// TestStatsAndMetricsSortedGolden pins sorted registry order across both
// observability outputs: the -stats resource table and the -metrics CSV.
func TestStatsAndMetricsSortedGolden(t *testing.T) {
	spec := experiments.PipelineSpec("pipeline", workload.DefaultModel(), experiments.ReACHMapping(), 4, 2)
	spec.Metrics = &metrics.Options{}
	run, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The registry itself must match the golden order.
	names := run.Sys.Engine().Stats().Names()
	if !equalStrings(names, goldenResourceOrder) {
		t.Fatalf("registry order changed:\ngot  %v\nwant %v", names, goldenResourceOrder)
	}

	// -stats table: rows are a subsequence of the golden order (idle
	// resources are omitted), and therefore sorted.
	tab := report.ResourceTable(run.Sys.Engine().Stats())
	var tableNames []string
	for _, row := range tab.Rows {
		tableNames = append(tableNames, row[0])
	}
	if !sort.StringsAreSorted(tableNames) {
		t.Fatalf("-stats rows not sorted: %v", tableNames)
	}
	if !isSubsequence(tableNames, goldenResourceOrder) {
		t.Fatalf("-stats rows %v not drawn from golden order", tableNames)
	}

	// Metrics CSV: within every sample, resources appear in golden
	// (sorted) order, and the closing sample covers the whole registry.
	var buf bytes.Buffer
	cw := metrics.NewCSVWriter(&buf)
	if err := cw.WriteRun("pipeline", run.Obs.Sampler); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	perSample := map[string][]string{}
	var lastSample string
	for _, row := range rows[1:] {
		perSample[row[1]] = append(perSample[row[1]], row[3])
		lastSample = row[1]
	}
	for sample, rs := range perSample {
		if !sort.StringsAreSorted(rs) {
			t.Fatalf("CSV sample %s rows not sorted: %v", sample, rs)
		}
		if !isSubsequence(rs, goldenResourceOrder) {
			t.Fatalf("CSV sample %s resources %v not drawn from golden order", sample, rs)
		}
	}
	if !equalStrings(perSample[lastSample], goldenResourceOrder) {
		t.Fatalf("closing CSV sample missing resources:\ngot  %v\nwant %v",
			perSample[lastSample], goldenResourceOrder)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isSubsequence reports whether sub appears within full in order.
func isSubsequence(sub, full []string) bool {
	i := 0
	for _, s := range full {
		if i < len(sub) && sub[i] == s {
			i++
		}
	}
	return i == len(sub)
}
