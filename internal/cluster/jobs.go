package cluster

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Stage labels, matching the single-server pipeline spelling so cluster
// traces and energy attribution line up with the experiments package.
const (
	stageFE = "FeatureExtraction"
	stageSL = "ShortlistRetrieval"
	stageRR = "Rerank"
)

// Shard-task name tables, precomputed for the common instance counts so
// the per-query job-build path formats nothing; nodes with more instances
// fall back to fmt (cold, config-dependent).
var (
	slNames = taskNames("sl", 16)
	rrNames = taskNames("rr", 16)
)

func taskNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

func taskName(table []string, prefix string, i int) string {
	if i < len(table) {
		return table[i]
	}
	return fmt.Sprintf("%s%d", prefix, i)
}

// scaleBytes applies a shard's work fraction to a byte count, never
// rounding a non-empty payload down to zero.
func scaleBytes(b int64, frac float64) int64 {
	s := int64(float64(b) * frac)
	if s < 1 && b > 0 {
		s = 1
	}
	return s
}

// buildFEJob builds the front-end half of a cluster query on its home
// node: one batched feature-extraction task on the on-chip accelerator,
// features collected back to the host for the network scatter.
func buildFEJob(node *core.System, id int, m workload.Model) (*core.Job, error) {
	kernel, err := node.Registry().Lookup("CNN-VU9P")
	if err != nil {
		return nil, err
	}
	j := core.NewJob(id)
	n := j.AddTask(accel.Task{
		Name: "fe", Stage: stageFE, Kernel: kernel,
		MACs: m.FeatureMACsPerBatch(), Source: accel.SourceSPM,
	}, accel.OnChip)
	n.OutBytes = m.BatchFeatureBytes()
	n.SinkToHost = true
	return j, nil
}

// buildShardJob builds one shard's slice of a query on a replica node:
// shortlist retrieval near memory feeding rerank near storage, both scaled
// by frac — this query's share of work landing on this shard. The rerank
// results are collected to the replica's host for the network gather.
func buildShardJob(node *core.System, id int, m workload.Model, frac float64) (*core.Job, error) {
	reg := node.Registry()
	gemm, err := reg.Lookup("GEMM-ZCU9")
	if err != nil {
		return nil, err
	}
	knn, err := reg.Lookup("KNN-ZCU9")
	if err != nil {
		return nil, err
	}
	nm := node.InstanceCount(accel.NearMemory)
	ns := node.InstanceCount(accel.NearStorage)
	if nm == 0 || ns == 0 {
		return nil, fmt.Errorf("cluster: shard job needs near-memory and near-storage instances, node has %d/%d", nm, ns)
	}
	j := core.NewJob(id)
	var sl []*core.TaskNode
	for i := 0; i < nm; i++ {
		n := j.AddTask(accel.Task{
			Name: taskName(slNames, "sl", i), Stage: stageSL, Kernel: gemm,
			MACs:   m.ShortlistMACsPerBatch() * frac / float64(nm),
			Bytes:  scaleBytes(m.ShortlistScanBytesPerBatch(), frac) / int64(nm),
			Source: accel.SourceLocalDIMM, Pattern: storage.Sequential,
		}, accel.NearMemory)
		n.Pin = i
		n.OutBytes = scaleBytes(m.ShortlistResultBytesPerBatch(), frac) / int64(nm)
		sl = append(sl, n)
	}
	for i := 0; i < ns; i++ {
		n := j.AddTask(accel.Task{
			Name: taskName(rrNames, "rr", i), Stage: stageRR, Kernel: knn,
			MACs:   m.RerankMACsPerBatch() * frac / float64(ns),
			Bytes:  scaleBytes(m.RerankScanBytesPerBatch(), frac) / int64(ns),
			Source: accel.SourceSSD, Pattern: storage.RandomPages,
		}, accel.NearStorage, sl...)
		n.Pin = i
		n.OutBytes = scaleBytes(m.ResultBytesPerBatch(), frac) / int64(ns)
		n.SinkToHost = true
	}
	return j, nil
}
