// Package inspect is the live run inspector behind `reachsim -http`: a
// small HTTP server that exposes, while experiments execute, the query
// completion counters and current latency quantiles (via the qtrace
// observer hook), per-resource busy fractions from completed runs, expvar
// counters, and net/http/pprof profiling endpoints.
//
// The server aggregates across every run of the process: simulations run
// on worker goroutines, so all state behind the handlers is mutex
// protected. Observer callbacks stay O(1) — they run inside simulation
// event loops.
package inspect

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/qtrace"
	"repro/internal/sim"
)

// ResourceBusy is one resource's utilization in a progress snapshot.
type ResourceBusy struct {
	Name    string  `json:"name"`
	BusyPct float64 `json:"busy_pct"`
}

// Snapshot is the JSON shape served at /progress.
type Snapshot struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	QueriesCompleted uint64  `json:"queries_completed"`
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	P99Ms            float64 `json:"p99_ms"`
	P999Ms           float64 `json:"p999_ms"`
	RunsObserved     int     `json:"runs_observed"`
	LastRun          string  `json:"last_run,omitempty"`
	// Resources carries the most recent completed run's per-resource busy
	// fractions, in registry (sorted-name) order.
	Resources []ResourceBusy `json:"resources,omitempty"`

	// Domain-partition progress, present when a MultiEngine is observed
	// (cluster runs): the barrier-round count, the conservative lookahead,
	// and per-domain clocks/mailbox depths from the latest barrier-
	// consistent snapshot — a live view of how far each node's domain has
	// advanced and how much cross-domain traffic is in flight.
	BarrierRounds       uint64    `json:"barrier_rounds,omitempty"`
	LookaheadUS         float64   `json:"lookahead_us,omitempty"`
	DomainClocksUS      []float64 `json:"domain_clocks_us,omitempty"`
	DomainMailboxDepths []int     `json:"domain_mailbox_depths,omitempty"`

	// Cache, present when a cluster run with the front-end result cache
	// enabled is observed, is the cache's live counters.
	Cache *CacheCounters `json:"cluster_cache,omitempty"`

	// SLO, present when a windowed SLO monitor is observed, carries the
	// rolling sim-time window quantiles and the burn counters.
	SLO *SLOStats `json:"slo,omitempty"`

	// Anomalies, present when a flight recorder is observed, is the
	// recorder's live detector state (also served alone at /anomalies).
	Anomalies *AnomalyStatus `json:"anomalies,omitempty"`
}

// AnomalyStatus is the flight recorder's live state in a progress
// snapshot — a decoupled mirror of flight.Status, so the inspector does
// not depend on the flight package (the same pattern as CacheCounters).
type AnomalyStatus struct {
	WindowMs        float64           `json:"window_ms"`
	Detect          bool              `json:"detect"`
	Completions     uint64            `json:"completions"`
	RetainedQueries int               `json:"retained_queries"`
	Detections      map[string]uint64 `json:"detections,omitempty"`
	Frozen          bool              `json:"frozen"`
	TriggerDetector string            `json:"trigger_detector,omitempty"`
	TriggerMs       float64           `json:"trigger_ms,omitempty"`
	TriggerReason   string            `json:"trigger_reason,omitempty"`
}

// CacheCounters is the front-end result cache's live accounting in a
// progress snapshot — a decoupled mirror of cluster.CacheStats, so the
// inspector does not depend on the cluster package.
type CacheCounters struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Expired   uint64  `json:"expired"`
	Coalesced uint64  `json:"coalesced"`
	Evictions uint64  `json:"evictions"`
	Lookups   uint64  `json:"lookups"`
	HitRate   float64 `json:"hit_rate"`
}

// Server is the inspector. It implements qtrace.Observer, so wiring it as
// the Observer of every run's qtrace.Options feeds the live counters.
type Server struct {
	mu        sync.Mutex
	ln        net.Listener
	srv       *http.Server
	started   time.Time
	queries   uint64
	sketch    *qtrace.Sketch
	runsDone  int
	lastRun   string
	resources []ResourceBusy
	multi     *sim.MultiEngine
	cache     func() CacheCounters
	slo       *SLOMonitor
	anomalies func() AnomalyStatus
}

// New returns an inspector with empty counters. Call Start to serve.
func New() *Server {
	return &Server{sketch: qtrace.NewSketch(0), started: time.Now()}
}

// QueryDone implements qtrace.Observer: one completed query's end-to-end
// latency folds into the global sketch.
func (s *Server) QueryDone(_ int, latency sim.Time) {
	s.mu.Lock()
	s.queries++
	s.sketch.Add(latency)
	s.mu.Unlock()
}

// ObserveRun records one completed run: its label and the per-resource
// busy fractions from its stats registry (replacing the previous run's).
// Call it only after the run's engine has drained — the registry walk
// reads model internals that are not synchronized during simulation.
func (s *Server) ObserveRun(run string, reg *sim.StatsRegistry) {
	var res []ResourceBusy
	reg.Walk(func(name string, r sim.Resource) {
		res = append(res, ResourceBusy{Name: name, BusyPct: r.ResourceStats().Utilization * 100})
	})
	s.mu.Lock()
	s.runsDone++
	s.lastRun = run
	s.resources = res
	s.mu.Unlock()
}

// ObserveMulti attaches a domain coordinator (a cluster's MultiEngine):
// snapshots thereafter include its barrier rounds, lookahead and
// per-domain clocks/mailbox depths. Safe to call before Run — the
// coordinator publishes a barrier-consistent snapshot each round, so
// polling /progress while the simulation executes is race-free.
func (s *Server) ObserveMulti(me *sim.MultiEngine) {
	s.mu.Lock()
	s.multi = me
	s.mu.Unlock()
}

// ObserveCache attaches a front-end cache counter source (the cluster's
// CacheStats, adapted): snapshots thereafter include its live hit/miss/
// coalesce accounting. The source must be safe to call while the
// simulation runs — the cluster's counters are atomics.
func (s *Server) ObserveCache(fn func() CacheCounters) {
	s.mu.Lock()
	s.cache = fn
	s.mu.Unlock()
}

// ObserveSLO attaches a windowed SLO monitor: snapshots thereafter
// include its window quantiles and burn counters. The monitor carries its
// own mutex, so scraping while the simulation runs is race-free.
func (s *Server) ObserveSLO(m *SLOMonitor) {
	s.mu.Lock()
	s.slo = m
	s.mu.Unlock()
}

// ObserveAnomalies attaches a flight-recorder status source: snapshots
// thereafter include its live detector state and the /anomalies endpoint
// serves it alone. The source must be safe to call while the simulation
// runs — the flight recorder guards its status fields with a mutex.
func (s *Server) ObserveAnomalies(fn func() AnomalyStatus) {
	s.mu.Lock()
	s.anomalies = fn
	s.mu.Unlock()
}

// Snapshot returns the current progress state.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		QueriesCompleted: s.queries,
		RunsObserved:     s.runsDone,
		LastRun:          s.lastRun,
		Resources:        append([]ResourceBusy(nil), s.resources...),
	}
	if s.sketch.Count() > 0 {
		snap.P50Ms = s.sketch.Quantile(0.5).Milliseconds()
		snap.P95Ms = s.sketch.Quantile(0.95).Milliseconds()
		snap.P99Ms = s.sketch.Quantile(0.99).Milliseconds()
		snap.P999Ms = s.sketch.Quantile(0.999).Milliseconds()
	}
	if s.multi != nil {
		p := s.multi.Progress() // its own mutex; barrier-consistent
		snap.BarrierRounds = p.Rounds
		if p.Lookahead != sim.MaxTime {
			snap.LookaheadUS = p.Lookahead.Microseconds()
		}
		for _, d := range p.Domains {
			snap.DomainClocksUS = append(snap.DomainClocksUS, d.Clock.Microseconds())
			snap.DomainMailboxDepths = append(snap.DomainMailboxDepths, d.Mailbox)
		}
	}
	if s.cache != nil {
		cc := s.cache()
		snap.Cache = &cc
	}
	if s.slo != nil {
		st := s.slo.Stats() // its own mutex
		snap.SLO = &st
	}
	if s.anomalies != nil {
		a := s.anomalies()
		snap.Anomalies = &a
	}
	return snap
}

// active is the server expvar reads from: the expvar registry is global
// and rejects re-publishing a name, so the package publishes its vars once
// and routes them through this pointer (tests start several servers).
var (
	activeMu sync.Mutex
	active   *Server
	publish  sync.Once
)

func snapshotActive() (Snapshot, bool) {
	activeMu.Lock()
	s := active
	activeMu.Unlock()
	if s == nil {
		return Snapshot{}, false
	}
	return s.Snapshot(), true
}

func publishVars() {
	expvar.Publish("qtrace_queries_completed", expvar.Func(func() any {
		snap, _ := snapshotActive()
		return snap.QueriesCompleted
	}))
	expvar.Publish("qtrace_p99_ms", expvar.Func(func() any {
		snap, _ := snapshotActive()
		return snap.P99Ms
	}))
	expvar.Publish("qtrace_resources_busy_pct", expvar.Func(func() any {
		snap, _ := snapshotActive()
		out := map[string]float64{}
		for _, r := range snap.Resources {
			out[r.Name] = r.BusyPct
		}
		return out
	}))
	expvar.Publish("sim_barrier_rounds", expvar.Func(func() any {
		snap, _ := snapshotActive()
		return snap.BarrierRounds
	}))
	expvar.Publish("sim_domain_clocks_us", expvar.Func(func() any {
		snap, _ := snapshotActive()
		return snap.DomainClocksUS
	}))
	expvar.Publish("sim_domain_mailbox_depths", expvar.Func(func() any {
		snap, _ := snapshotActive()
		return snap.DomainMailboxDepths
	}))
	expvar.Publish("cluster_cache_hits", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.Cache == nil {
			return uint64(0)
		}
		return snap.Cache.Hits
	}))
	expvar.Publish("cluster_cache_lookups", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.Cache == nil {
			return uint64(0)
		}
		return snap.Cache.Lookups
	}))
	expvar.Publish("cluster_cache_hit_rate", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.Cache == nil {
			return float64(0)
		}
		return snap.Cache.HitRate
	}))
	expvar.Publish("cluster_cache_coalesced", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.Cache == nil {
			return uint64(0)
		}
		return snap.Cache.Coalesced
	}))
	expvar.Publish("slo_breaches_total", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.SLO == nil {
			return uint64(0)
		}
		return snap.SLO.Breaches
	}))
	expvar.Publish("slo_burn_pct", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.SLO == nil {
			return float64(0)
		}
		return snap.SLO.BurnPct
	}))
	expvar.Publish("slo_window_p99_ms", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.SLO == nil || len(snap.SLO.Windows) == 0 {
			return float64(0)
		}
		return snap.SLO.Windows[len(snap.SLO.Windows)-1].P99Ms
	}))
	expvar.Publish("slo_windows_evicted", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.SLO == nil {
			return uint64(0)
		}
		return snap.SLO.WindowsEvicted
	}))
	expvar.Publish("flight_detections_total", expvar.Func(func() any {
		snap, _ := snapshotActive()
		if snap.Anomalies == nil {
			return uint64(0)
		}
		var total uint64
		for _, n := range snap.Anomalies.Detections {
			total += n
		}
		return total
	}))
	expvar.Publish("flight_frozen", expvar.Func(func() any {
		snap, _ := snapshotActive()
		return snap.Anomalies != nil && snap.Anomalies.Frozen
	}))
}

// Start listens on addr (":8080", or "127.0.0.1:0" for an ephemeral port)
// and serves the inspector endpoints: /progress (JSON snapshot),
// /debug/vars (expvar) and /debug/pprof. The server becomes the target of
// the package's expvar readings until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	publish.Do(publishVars)
	activeMu.Lock()
	active = s
	activeMu.Unlock()

	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/anomalies", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.mu.Lock()
		fn := s.anomalies
		s.mu.Unlock()
		var body any
		if fn == nil {
			body = map[string]bool{"enabled": false}
		} else {
			st := fn()
			body = &st
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "reachsim inspector\n\n/progress    JSON progress snapshot\n/anomalies   flight-recorder detector state\n/debug/vars  expvar counters\n/debug/pprof profiling\n")
	})

	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	s.mu.Unlock()
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return nil
}

// Addr reports the bound address (host:port) after Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the HTTP server and detaches the expvar readings.
func (s *Server) Close() error {
	activeMu.Lock()
	if active == s {
		active = nil
	}
	activeMu.Unlock()
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
