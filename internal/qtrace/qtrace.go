// Package qtrace is the per-query observability layer: where
// internal/metrics answers "which resource was under pressure when", this
// package answers "where did query 1041's time go". The GAM assigns every
// submitted job a QueryID and, when a Log is attached, records a timeline
// of phase intervals for it — queue wait per stage (with the dispatch
// cause tag), accelerator execution, FPGA reconfiguration stalls,
// poll-detection gaps, and inter-level data movement. Completed queries
// fold their end-to-end latency into an allocation-free log-bucketed
// quantile sketch (p50/p95/p99/p999 with a documented relative-error
// bound) and reduce their timeline to a critical-path attribution: the
// phase whose merged intervals cover the largest share of the query's
// lifetime ("query 1041: 62% shortlist queue wait at near-memory").
//
// The layer is zero-cost when disabled: nothing is attached and the model
// hot paths pay a single nil check per hook (gated by
// TestQTraceDisabledZeroAlloc, same standard as the metrics span hooks).
package qtrace

import (
	"sort"

	"repro/internal/sim"
)

// Phase kinds — where a slice of a query's lifetime went.
const (
	// PhaseQueue is ready-instant to dispatch for one task: time spent in a
	// GAM scheduling queue. Detail carries the dispatch cause tag
	// (metrics.Cause*).
	PhaseQueue = "queue"
	// PhaseExec is command arrival to device-side completion on an
	// accelerator. Detail carries the instance name.
	PhaseExec = "exec"
	// PhaseReconfig is a partial-reconfiguration stall before execution
	// (a different kernel template was resident). Detail carries the
	// kernel name.
	PhaseReconfig = "reconfig"
	// PhasePollGap is device completion to GAM detection for a polled
	// (non-coherent) task. Detail carries the instance name.
	PhasePollGap = "pollgap"
	// PhaseXfer is an inter-level DMA moving a task's output stream down
	// or up the hierarchy. Detail carries the "src-dst" level pair in the
	// same spelling as the shared stream buffers ("onchip-nearmem"), which
	// names the physical links crossed (AIMbus, PCIe, NoC, flash).
	PhaseXfer = "xfer"
	// PhaseCacheHit is a query served entirely by the cluster's front-end
	// result cache — no scatter ever happened. Detail distinguishes a
	// direct hit ("fe-cache") from a query coalesced onto an in-flight
	// scatter for the same content ("fe-coalesce").
	PhaseCacheHit = "cache-hit"
)

// Interval is one recorded slice of a query's timeline.
type Interval struct {
	Phase string
	// Stage is the pipeline-stage label of the affected task ("" for
	// intervals not tied to one stage).
	Stage string
	// Level is the compute level the interval happened at (accel.Level
	// spelling; the destination level for transfers).
	Level string
	// Detail is phase-specific: cause tag, instance, kernel, or level
	// pair — see the Phase constants.
	Detail string
	Start  sim.Time
	End    sim.Time
}

// Duration reports End − Start.
func (iv Interval) Duration() sim.Time { return iv.End - iv.Start }

// Attribution is one phase's merged share of a query's lifetime: the
// union of its intervals (overlaps between parallel tasks of the same
// phase count once), as covered time and as a fraction of the query's
// end-to-end latency.
type Attribution struct {
	Phase string
	Stage string
	Level string
	// Covered is the union length of the phase's intervals.
	Covered sim.Time
	// Share is Covered over the query's latency, in [0, 1].
	Share float64
}

// Query is one traced request: identity, the lifetime bounds, the
// recorded timeline, and — once completed — its attribution.
type Query struct {
	ID  int
	Job int
	// Arrival and Done bound the query: GAM submission to host interrupt.
	Arrival sim.Time
	Done    sim.Time
	// Intervals is the recorded timeline in emission order (nil after
	// completion when Options.DropTimelines is set).
	Intervals []Interval

	// Attribution is the per-phase breakdown, sorted by descending
	// Covered (ties by phase/stage/level name), computed at completion.
	// Attribution[0] is the dominant phase.
	Attribution []Attribution

	done bool
}

// Latency reports Done − Arrival (zero before completion).
func (q *Query) Latency() sim.Time {
	if !q.done {
		return 0
	}
	return q.Done - q.Arrival
}

// Completed reports whether the query finished.
func (q *Query) Completed() bool { return q.done }

// Dominant returns the top attribution (zero value before completion or
// for a query that recorded no intervals).
func (q *Query) Dominant() Attribution {
	if len(q.Attribution) == 0 {
		return Attribution{}
	}
	return q.Attribution[0]
}

// Observer sees every query completion as it happens, on the simulation
// goroutine — the hook the live run inspector aggregates from. Keep
// implementations cheap; they run inside the event loop.
type Observer interface {
	QueryDone(id int, latency sim.Time)
}

// ObserverAt is an optional Observer extension for consumers that need
// the simulated completion instant as well as the latency — the windowed
// SLO monitor buckets completions into rolling sim-time windows. When an
// attached Observer also implements ObserverAt, the log calls
// QueryDoneAt in addition to QueryDone at every completion.
type ObserverAt interface {
	QueryDoneAt(id int, at, latency sim.Time)
}

// tee fans one completion stream out to two observers, a first, then b,
// forwarding the ObserverAt extension to whichever side implements it.
type tee struct {
	a, b     Observer
	aAt, bAt ObserverAt
}

func (t *tee) QueryDone(id int, latency sim.Time) {
	t.a.QueryDone(id, latency)
	t.b.QueryDone(id, latency)
}

func (t *tee) QueryDoneAt(id int, at, latency sim.Time) {
	if t.aAt != nil {
		t.aAt.QueryDoneAt(id, at, latency)
	}
	if t.bAt != nil {
		t.bAt.QueryDoneAt(id, at, latency)
	}
}

// Tee combines two observers into one (nil arguments collapse to the
// other side). The returned observer implements ObserverAt when either
// argument does.
func Tee(a, b Observer) Observer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	t := &tee{a: a, b: b}
	t.aAt, _ = a.(ObserverAt)
	t.bAt, _ = b.(ObserverAt)
	return t
}

// Options configures a Log.
type Options struct {
	// Alpha is the latency sketch's relative-error bound (<= 0 means
	// DefaultAlpha, 1%).
	Alpha float64
	// DropTimelines releases each query's interval slice once its
	// attribution is computed, bounding memory on long sweeps. Attribution
	// and the latency sketch are unaffected.
	DropTimelines bool
	// Observer, when non-nil, is notified of every completion.
	Observer Observer
}

// Log records per-query timelines for one run (one GAM). It is not safe
// for concurrent use; like the engine it rides on, it belongs to a single
// simulation goroutine.
type Log struct {
	opt     Options
	obsAt   ObserverAt // opt.Observer's ObserverAt side, asserted once
	sketch  *Sketch
	queries []*Query
	done    uint64
}

// NewLog returns an empty log.
func NewLog(o Options) *Log {
	l := &Log{opt: o, sketch: NewSketch(o.Alpha)}
	l.obsAt, _ = o.Observer.(ObserverAt)
	return l
}

// Submitted opens query qid (the GAM's monotonically assigned QueryID)
// for job job at simulated time at. IDs must arrive in order — they index
// the log's dense query table.
func (l *Log) Submitted(qid, job int, at sim.Time) {
	for len(l.queries) <= qid {
		l.queries = append(l.queries, nil)
	}
	l.queries[qid] = &Query{ID: qid, Job: job, Arrival: at}
}

// Add appends one interval to an open query's timeline. Intervals for
// unknown queries are dropped (a Log attached mid-run sees tails of
// queries it never saw submitted).
func (l *Log) Add(qid int, iv Interval) {
	if qid < 0 || qid >= len(l.queries) || l.queries[qid] == nil {
		return
	}
	l.queries[qid].Intervals = append(l.queries[qid].Intervals, iv)
}

// Completed closes query qid at simulated time at: records its latency in
// the sketch, reduces its timeline to attributions, and notifies the
// observer.
func (l *Log) Completed(qid int, at sim.Time) {
	if qid < 0 || qid >= len(l.queries) || l.queries[qid] == nil {
		return
	}
	q := l.queries[qid]
	q.Done = at
	q.done = true
	l.done++
	l.sketch.Add(q.Latency())
	q.Attribution = attribute(q)
	if l.opt.DropTimelines {
		q.Intervals = nil
	}
	if l.opt.Observer != nil {
		l.opt.Observer.QueryDone(qid, q.Latency())
	}
	if l.obsAt != nil {
		l.obsAt.QueryDoneAt(qid, at, q.Latency())
	}
}

// CompletedCount reports how many queries finished.
func (l *Log) CompletedCount() uint64 { return l.done }

// Sketch exposes the end-to-end latency sketch over completed queries.
func (l *Log) Sketch() *Sketch { return l.sketch }

// Queries returns every known query in QueryID order (entries the log
// never saw submitted are skipped). The slice is freshly allocated; the
// Query pointers are the log's own.
func (l *Log) Queries() []*Query {
	out := make([]*Query, 0, len(l.queries))
	for _, q := range l.queries {
		if q != nil {
			out = append(out, q)
		}
	}
	return out
}

// Query looks up one query by ID (nil when unknown).
func (l *Log) Query(qid int) *Query {
	if qid < 0 || qid >= len(l.queries) {
		return nil
	}
	return l.queries[qid]
}

// attKey groups intervals for attribution.
type attKey struct{ phase, stage, level string }

// attribute reduces a completed query's timeline to per-phase coverage:
// for each (phase, stage, level) key, the union length of its intervals
// clamped to the query's [Arrival, Done] window, sorted by descending
// coverage with name tie-breaks so the result is deterministic.
func attribute(q *Query) []Attribution {
	if len(q.Intervals) == 0 {
		return nil
	}
	lat := q.Done - q.Arrival
	groups := make(map[attKey][]Interval)
	var keys []attKey
	for _, iv := range q.Intervals {
		k := attKey{iv.Phase, iv.Stage, iv.Level}
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], iv)
	}
	out := make([]Attribution, 0, len(keys))
	for _, k := range keys {
		ivs := groups[k]
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].Start != ivs[j].Start {
				return ivs[i].Start < ivs[j].Start
			}
			return ivs[i].End < ivs[j].End
		})
		var covered sim.Time
		hi := sim.Time(-1)
		lo := sim.Time(0)
		for _, iv := range ivs {
			s, e := iv.Start, iv.End
			if s < q.Arrival {
				s = q.Arrival
			}
			if e > q.Done {
				e = q.Done
			}
			if e <= s {
				continue
			}
			if hi < 0 || s > hi {
				if hi >= 0 {
					covered += hi - lo
				}
				lo, hi = s, e
			} else if e > hi {
				hi = e
			}
		}
		if hi >= 0 {
			covered += hi - lo
		}
		att := Attribution{Phase: k.phase, Stage: k.stage, Level: k.level, Covered: covered}
		if lat > 0 {
			att.Share = float64(covered) / float64(lat)
		}
		out = append(out, att)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Covered != out[j].Covered {
			return out[i].Covered > out[j].Covered
		}
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Level < out[j].Level
	})
	return out
}
