package cbir

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestIndexRoundTrip(t *testing.T) {
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 2000, D: 24, Clusters: 16, Spread: 0.08, Seed: 88,
	})
	orig, err := BuildIndex(ds.Vectors, 16, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structural equality.
	if loaded.M() != orig.M() || loaded.Vectors.Rows != orig.Vectors.Rows {
		t.Fatalf("geometry mismatch")
	}
	for i := range orig.Vectors.Data {
		if loaded.Vectors.Data[i] != orig.Vectors.Data[i] {
			t.Fatal("vector data mismatch")
		}
	}
	for c := range orig.Lists {
		if len(loaded.Lists[c]) != len(orig.Lists[c]) {
			t.Fatalf("list %d length mismatch", c)
		}
		for i := range orig.Lists[c] {
			if loaded.Lists[c][i] != orig.Lists[c][i] {
				t.Fatalf("list %d entry %d mismatch", c, i)
			}
		}
	}

	// Behavioural equality: identical search results.
	queries := ds.Queries(8, 0.02, 55)
	p := SearchParams{Probes: 4, Candidates: 512, K: 10}
	a, err := orig.Search(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Search(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	for q := range a {
		for i := range a[q] {
			if a[q][i] != b[q][i] {
				t.Fatalf("query %d result %d differs after round trip", q, i)
			}
		}
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 500, D: 8, Clusters: 4, Spread: 0.08, Seed: 3,
	})
	ix, err := BuildIndex(ds.Vectors, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic"},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, "version"},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, ""},
		{"absurd geometry", func(b []byte) []byte {
			// rows field at offset 8: make it negative.
			b[15] = 0xff
			return b
		}, "implausible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(nil), good...)
			data = tc.mutate(data)
			_, err := ReadIndex(bytes.NewReader(data))
			if err == nil {
				t.Fatal("corrupt index accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The pristine copy still loads.
	if _, err := ReadIndex(bytes.NewReader(good)); err != nil {
		t.Errorf("pristine index rejected: %v", err)
	}
}
