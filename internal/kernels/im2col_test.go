package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIm2ColShape(t *testing.T) {
	in := NewTensor3(3, 5, 7)
	m := Im2Col(in, 3)
	if m.Rows != 3*9 || m.Cols != 35 {
		t.Errorf("im2col shape %dx%d, want 27x35", m.Rows, m.Cols)
	}
}

func TestIm2ColCentreTapIsIdentity(t *testing.T) {
	in := NewTensor3(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i + 1)
	}
	m := Im2Col(in, 3)
	// Row 4 (ky=1, kx=1 for channel 0) is the unshifted image.
	row := m.Row(4)
	for i := range in.Data {
		if row[i] != in.Data[i] {
			t.Fatalf("centre-tap row differs at %d: %v vs %v", i, row[i], in.Data[i])
		}
	}
	// Row 0 (ky=0, kx=0) is the image shifted down-right with zero fill:
	// its first row and column are zero.
	r0 := m.Row(0)
	for x := 0; x < 4; x++ {
		if r0[x] != 0 {
			t.Errorf("padding not zero at col %d: %v", x, r0[x])
		}
	}
}

// Property: Conv2DGeMM and the direct Conv2D agree on random inputs —
// two independent implementations cross-validate each other.
func TestConvImplementationsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(4)
		h := 3 + rng.Intn(6)
		w := 3 + rng.Intn(6)
		k := []int{1, 3, 5}[rng.Intn(3)]

		in := NewTensor3(inC, h, w)
		for i := range in.Data {
			in.Data[i] = rng.Float32() - 0.5
		}
		p := NewConvParams(outC, inC, k)
		for i := range p.Weights {
			p.Weights[i] = rng.Float32() - 0.5
		}
		for i := range p.Bias {
			p.Bias[i] = rng.Float32()
		}

		direct := Conv2D(in, p)
		gemm := Conv2DGeMM(in, p)
		for i := range direct.Data {
			d := direct.Data[i] - gemm.Data[i]
			if d < -1e-4 || d > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConv2DGeMMChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("channel mismatch accepted")
		}
	}()
	Conv2DGeMM(NewTensor3(2, 4, 4), NewConvParams(1, 3, 3))
}

func BenchmarkConv2DDirect(b *testing.B) {
	in := NewTensor3(8, 32, 32)
	p := NewConvParams(16, 8, 3)
	for i := range p.Weights {
		p.Weights[i] = 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, p)
	}
}

func BenchmarkConv2DGeMM(b *testing.B) {
	in := NewTensor3(8, 32, 32)
	p := NewConvParams(16, 8, 3)
	for i := range p.Weights {
		p.Weights[i] = 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DGeMM(in, p)
	}
}

func BenchmarkGeMM128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(128, 128)
	c := NewMatrix(128, 128)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
		c.Data[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GeMM(a, c)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dists := make([]float32, 4096)
	for i := range dists {
		dists[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := NewTopK(10)
		for id, d := range dists {
			sel.Offer(id, d)
		}
		sel.Results()
	}
}

func BenchmarkSquaredL2(b *testing.B) {
	p := make([]float32, 96)
	q := make([]float32, 96)
	for i := range p {
		p[i] = float32(i)
		q[i] = float32(i) * 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredL2(p, q)
	}
}
