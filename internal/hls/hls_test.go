package hls

import (
	"testing"
	"testing/quick"

	"repro/internal/fpga"
)

// gemmKernel is a tiled fp32 GeMM: 16×16 PE array, fully unrolled inner
// dimensions.
func gemmKernel(unroll int) Kernel {
	return Kernel{
		Name:  "gemm-tile",
		Class: fpga.GeMM,
		Loops: []Loop{
			{Name: "m", Trip: 1024, Unroll: 1},
			{Name: "n", Trip: 1024, Unroll: unroll},
			{Name: "k", Trip: 96, Unroll: 1},
		},
		Ops: OpCounts{MACs: 1, MemReads: 2, MemWrites: 1},
		Buffers: []Buffer{
			{Name: "a", Bytes: 96 * 1024 * 4, Partitions: unroll, AccessesPerIter: 1},
			{Name: "b", Bytes: 96 * 1024 * 4, Partitions: unroll, AccessesPerIter: 1},
			{Name: "c", Bytes: 1024 * 4, Partitions: unroll, AccessesPerIter: 1},
		},
		StreamBytesPerIter: 8,
		TargetMHz:          300,
	}
}

func TestAnalyzeBasics(t *testing.T) {
	e, err := Analyze(gemmKernel(16), fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	if e.II < 1 {
		t.Errorf("II = %d", e.II)
	}
	if e.Depth <= 0 {
		t.Errorf("depth = %d", e.Depth)
	}
	if e.FreqMHz <= 0 || e.FreqMHz > 300 {
		t.Errorf("freq = %v", e.FreqMHz)
	}
	// 1024×64 (n unrolled 16) × 96 iterations.
	if want := 1024.0 * 64 * 96; e.TotalIterations != want {
		t.Errorf("iterations = %v, want %v", e.TotalIterations, want)
	}
	if !e.Fits {
		t.Errorf("16-wide GeMM should fit ZCU9: %+v", e.Util)
	}
}

func TestUnrollTradesResourcesForThroughput(t *testing.T) {
	small, err := Analyze(gemmKernel(4), fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Analyze(gemmKernel(64), fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	if big.Used.DSP <= small.Used.DSP {
		t.Errorf("unroll 64 DSPs (%d) not above unroll 4 (%d)", big.Used.DSP, small.Used.DSP)
	}
	if big.TotalIterations >= small.TotalIterations {
		t.Error("unrolling did not reduce iteration count")
	}
	// Effective throughput (unrolled MACs per cycle / II) must improve.
	smallTp := 4.0 / float64(small.II)
	bigTp := 64.0 / float64(big.II)
	if bigTp <= smallTp {
		t.Errorf("throughput did not scale: %v vs %v", bigTp, smallTp)
	}
}

func TestPortLimitedII(t *testing.T) {
	k := gemmKernel(16)
	// Starve the arrays of partitions: 16 parallel accesses over one
	// dual-ported BRAM → II 8.
	for i := range k.Buffers {
		k.Buffers[i].Partitions = 1
	}
	e, err := Analyze(k, fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	if e.II != 8 {
		t.Errorf("II = %d, want 8 (16 accesses / 2 ports)", e.II)
	}
}

func TestFrequencyDeratesWhenFull(t *testing.T) {
	// A huge unroll on the small device: high utilisation derates clock.
	e, err := Analyze(gemmKernel(512), fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	if e.Fits {
		t.Skip("expected over-full device")
	}
	if e.FreqMHz >= 300*0.75 {
		t.Errorf("freq = %v, want derated below %v", e.FreqMHz, 300*0.75)
	}
}

func TestSameKernelOnBiggerDeviceFitsBetter(t *testing.T) {
	k := gemmKernel(128)
	onZynq, err := Analyze(k, fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	onVirtex, err := Analyze(k, fpga.VirtexVU9P)
	if err != nil {
		t.Fatal(err)
	}
	if onVirtex.Util.DSP >= onZynq.Util.DSP {
		t.Errorf("Virtex DSP util (%v%%) not below Zynq (%v%%)", onVirtex.Util.DSP, onZynq.Util.DSP)
	}
}

func TestTemplateGeneration(t *testing.T) {
	e, err := Analyze(gemmKernel(16), fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := e.Template("GEMM-GEN-ZCU9", 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.Validate(); err != nil {
		t.Fatalf("generated template invalid: %v", err)
	}
	// Registrable in a fresh registry and usable for timing.
	reg := fpga.NewRegistry()
	if err := reg.Register(tpl); err != nil {
		t.Fatal(err)
	}
	if d := tpl.Duration(1e9, 0); d <= 0 {
		t.Error("generated template cannot time work")
	}
	// Over-full kernels cannot become templates.
	over, err := Analyze(gemmKernel(512), fpga.ZynqZCU9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := over.Template("x", 5); err == nil {
		t.Error("over-full kernel produced a template")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Kernel{Name: "noloops", TargetMHz: 100}, fpga.ZynqZCU9); err == nil {
		t.Error("loop-less kernel accepted")
	}
	k := gemmKernel(4)
	k.TargetMHz = 0
	if _, err := Analyze(k, fpga.ZynqZCU9); err == nil {
		t.Error("zero frequency accepted")
	}
	k = gemmKernel(4)
	k.Loops[0].Trip = 0
	if _, err := Analyze(k, fpga.ZynqZCU9); err == nil {
		t.Error("zero trip accepted")
	}
}

// Property: II is always ≥1, iterations ≥1, and resources monotone in the
// MAC count.
func TestAnalyzeMonotonicity(t *testing.T) {
	f := func(macs8, unroll8 uint8) bool {
		macs := int(macs8%8) + 1
		unroll := 1 << (unroll8 % 5)
		k := Kernel{
			Name:  "p",
			Loops: []Loop{{Name: "i", Trip: 1000, Unroll: unroll}},
			Ops:   OpCounts{MACs: macs},
			Buffers: []Buffer{
				{Name: "b", Bytes: 4096, Partitions: unroll, AccessesPerIter: 1},
			},
			TargetMHz: 200,
		}
		e, err := Analyze(k, fpga.VirtexVU9P)
		if err != nil {
			return false
		}
		if e.II < 1 || e.TotalIterations < 1 {
			return false
		}
		k2 := k
		k2.Ops.MACs = macs + 1
		e2, err := Analyze(k2, fpga.VirtexVU9P)
		if err != nil {
			return false
		}
		return e2.Used.DSP >= e.Used.DSP && e2.Used.LUT >= e.Used.LUT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
