package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/accel"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/sim"
)

// GAM is the hardware global accelerator manager (paper §II-D, Fig. 5).
// It owns a scheduling queue per compute level, a progress table of
// running tasks with estimated wait times, and a status queue; it is the
// single master of every accelerator in the hierarchy.
type GAM struct {
	sys *System

	readyQ  map[accel.Level][]*TaskNode
	claimed map[accel.Accelerator]*TaskNode
	jobs    []*Job

	// streamBufs holds one registered stream buffer (the shared-layer
	// TokenQueue) per src→dst level pair, created on first use. Every
	// inter-level stream chunk passes through its pair's buffer, so stream
	// traffic is accounted in the central registry ("stream.<src>-<dst>").
	streamBufs map[[2]accel.Level]*sim.TokenQueue

	dispatchArmed bool

	// deliverCB/closeCB are the stream-buffer consumer callbacks, allocated
	// once at construction: every Put/Get pair through a stream buffer
	// passes the affected node as the queued item, so the hot path never
	// creates a per-delivery closure.
	deliverCB func(any)
	closeCB   func(any)

	// Stats — the observable behaviour of the Fig. 5 machinery.
	stats GAMStats

	// spans, when non-nil, receives structured decision spans (dispatch
	// causes, reconfigurations, poll gaps, stream stalls). Nil — the
	// default — keeps every hook down to a single pointer check.
	spans *metrics.SpanLog

	// qlog, when non-nil, receives per-query phase intervals (queue wait,
	// execution, reconfiguration, poll gaps, inter-level transfers) keyed
	// by the QueryID Submit assigns. Nil — the default — keeps every hook
	// down to a single pointer check.
	qlog *qtrace.Log
	// nextQuery is the monotonically increasing QueryID counter. IDs are
	// assigned whether or not a log is attached, so every job carries one.
	nextQuery int
}

// SetSpanLog attaches a span log; pass nil to disable instrumentation.
func (g *GAM) SetSpanLog(l *metrics.SpanLog) { g.spans = l }

// SpanLog reports the attached span log (nil when spans are disabled).
func (g *GAM) SpanLog() *metrics.SpanLog { return g.spans }

// SetQueryLog attaches a per-query trace log; pass nil to disable.
func (g *GAM) SetQueryLog(l *qtrace.Log) { g.qlog = l }

// QueryLog reports the attached query log (nil when tracing is disabled).
func (g *GAM) QueryLog() *qtrace.Log { return g.qlog }

// tracing reports whether any per-task instrumentation (decision spans or
// query tracing) wants the dispatch cause bookkeeping maintained.
func (g *GAM) tracing() bool { return g.spans != nil || g.qlog != nil }

// qtraceAdd records one phase interval for a job's query. It is the
// disabled-path gate for every query-trace hook: with no log attached it
// is a single nil check and must stay allocation-free (see
// TestQTraceDisabledZeroAlloc).
func (g *GAM) qtraceAdd(j *Job, phase, stage, level, detail string, start, end sim.Time) {
	if g.qlog == nil {
		return
	}
	g.qlog.Add(j.QueryID, qtrace.Interval{
		Phase: phase, Stage: stage, Level: level, Detail: detail,
		Start: start, End: end,
	})
}

// levelNames spells accel levels the way the shared stream buffers do
// ("stream.onchip-nearmem"), so per-query transfer intervals and registry
// resources use one vocabulary.
var levelNames = [...]string{
	accel.OnChip:      "onchip",
	accel.NearMemory:  "nearmem",
	accel.NearStorage: "nearstor",
	accel.CPU:         "cpu",
}

// linkNames precomputes every src→dst pair so the transfer hook never
// concatenates on the hot path.
var linkNames = func() (m [len(levelNames)][len(levelNames)]string) {
	for s, sn := range levelNames {
		for d, dn := range levelNames {
			m[s][d] = sn + "-" + dn
		}
	}
	return
}()

// Event phase tags for TaskNode.Fire. A node's lifecycle events all use the
// node itself as the preallocated handler; the phase (and, for deliveries,
// the dependent's index) is encoded in the event arg.
const (
	nodeExec    uint64 = iota // run Execute after the command latency
	nodeFinish                // GAM observes completion (coherent flag or final poll)
	nodePoll                  // status request packet arrives at the device
	nodeDeliver               // zero-byte output forwarded to dependent (arg >> nodePhaseBits)
	nodeStream                // DMA to dependent (arg >> nodePhaseBits) landed
	nodeCollect               // terminal Collect stream reached host memory

	nodePhaseBits = 3
	nodePhaseMask = (1 << nodePhaseBits) - 1
)

// Fire implements sim.Handler for every per-node event, dispatching on the
// phase tag. Using the long-lived node as the handler keeps the simulation
// hot path free of per-event closures.
func (n *TaskNode) Fire(_ *sim.Engine, arg uint64) {
	g := n.gam
	switch arg & nodePhaseMask {
	case nodeExec:
		g.execute(n)
	case nodeFinish:
		g.finish(n, n.acc)
	case nodePoll:
		g.poll(n)
	case nodeDeliver:
		g.deliver(n.dependents[arg>>nodePhaseBits])
	case nodeStream:
		g.streamDeliver(n, n.dependents[arg>>nodePhaseBits])
	case nodeCollect:
		g.streamPass(g.streamBuf(n.Level, accel.CPU), n, g.closeCB)
	}
}

// GAM-level event args.
const (
	gamDispatch uint64 = iota // armed dispatch pass over the ready queues
	gamArm                    // re-arm dispatch (a NotBefore input landed)
)

// Fire implements sim.Handler for the GAM's own events.
func (g *GAM) Fire(_ *sim.Engine, arg uint64) {
	if arg == gamDispatch {
		g.dispatchArmed = false
		g.dispatchAll()
		return
	}
	g.armDispatch()
}

// GAMStats counts the GAM's control-plane activity.
type GAMStats struct {
	JobsSubmitted   uint64
	JobsCompleted   uint64
	TasksDispatched uint64
	CommandPackets  uint64 // ACC command packets sent
	StatusPolls     uint64 // status request packets sent
	Interrupts      uint64 // host interrupts on job completion
	Transfers       uint64 // inter-level DMA transfers initiated
}

// ProgressEntry is one row of the progress table (Fig. 5e).
type ProgressEntry struct {
	Instance string
	Task     string
	Job      int
	State    NodeState
}

func newGAM(s *System) *GAM {
	g := &GAM{
		sys:        s,
		readyQ:     make(map[accel.Level][]*TaskNode),
		claimed:    make(map[accel.Accelerator]*TaskNode),
		streamBufs: make(map[[2]accel.Level]*sim.TokenQueue),
	}
	g.deliverCB = func(v any) { g.deliver(v.(*TaskNode)) }
	g.closeCB = func(v any) { g.closeNode(v.(*TaskNode)) }
	return g
}

// Stats returns a snapshot of the control-plane counters.
func (g *GAM) Stats() GAMStats { return g.stats }

// Progress returns the current progress table, sorted by instance name.
func (g *GAM) Progress() []ProgressEntry {
	var out []ProgressEntry
	for acc, n := range g.claimed {
		out = append(out, ProgressEntry{
			Instance: acc.Name(),
			Task:     n.Spec.Name,
			Job:      n.job.ID,
			State:    n.state,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// QueueDepth reports ready tasks waiting for a level.
func (g *GAM) QueueDepth(l accel.Level) int { return len(g.readyQ[l]) }

// Submit hands a job to the GAM. The host-side runtime sends the job as
// ACC command packets (Fig. 5a); tasks with no dependencies become ready
// immediately.
func (g *GAM) Submit(j *Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	for _, n := range j.Nodes {
		if err := g.sys.checkLevelPopulated(n.Level); err != nil {
			return err
		}
		if n.Pin >= 0 && n.Pin >= g.sys.InstanceCount(n.Level) {
			return fmt.Errorf("core: job %d task %q pinned to %v[%d], only %d instances",
				j.ID, n.Spec.Name, n.Level, n.Pin, g.sys.InstanceCount(n.Level))
		}
	}
	j.SubmittedAt = g.sys.eng.Now()
	j.gam = g
	j.QueryID = g.nextQuery
	g.nextQuery++
	if g.qlog != nil {
		g.qlog.Submitted(j.QueryID, j.ID, j.SubmittedAt)
	}
	g.jobs = append(g.jobs, j)
	g.stats.JobsSubmitted++
	for _, n := range j.Nodes {
		n.gam = g
	}
	for _, n := range j.Nodes {
		if n.deps == 0 {
			g.markReady(n)
		}
	}
	return nil
}

func (g *GAM) markReady(n *TaskNode) {
	n.state = NodeReady
	n.ReadyAt = g.sys.eng.Now()
	g.readyQ[n.Level] = append(g.readyQ[n.Level], n)
	g.armDispatch()
}

// armDispatch coalesces dispatch work into one event per instant.
func (g *GAM) armDispatch() {
	if g.dispatchArmed {
		return
	}
	g.dispatchArmed = true
	g.sys.eng.ScheduleCall(0, g, gamDispatch)
}

// oldestOpenJob returns the first unfinished job (the gate used when
// cross-job pipelining is disabled).
func (g *GAM) oldestOpenJob() *Job {
	for _, j := range g.jobs {
		if !j.done {
			return j
		}
	}
	return nil
}

// dispatchAll drains every level's ready queue onto idle devices.
func (g *GAM) dispatchAll() {
	gate := (*Job)(nil)
	if !g.sys.cfg.GAM.CrossJobPipelining {
		gate = g.oldestOpenJob()
	}
	// Fixed level order keeps the simulation deterministic (map iteration
	// order would otherwise vary run to run).
	for _, level := range []accel.Level{accel.OnChip, accel.NearMemory, accel.NearStorage, accel.CPU} {
		q := g.readyQ[level]
		if len(q) == 0 {
			continue
		}
		// Priority first, then oldest job (stable within a job): keeps
		// early batches' later stages ahead of later batches' early
		// stages, so pipeline fill does not starve in-flight queries, and
		// lets a latency-sensitive tenant preempt queued bulk work.
		sortReady(q)
		// Filter in place: nothing inside the loop mutates this level's
		// queue (dispatch only schedules events), so compacting the kept
		// nodes into the same backing array avoids a per-round allocation.
		rest := q[:0]
		for _, n := range q {
			if gate != nil && n.job != gate {
				if g.tracing() {
					n.blockCause = metrics.CauseJobGate
				}
				rest = append(rest, n)
				continue
			}
			if now := g.sys.eng.Now(); n.NotBefore > now {
				// Input still in flight: revisit when it lands.
				g.sys.eng.AtCall(n.NotBefore, g, gamArm)
				if g.tracing() {
					n.blockCause = metrics.CauseInputInFlight
				}
				rest = append(rest, n)
				continue
			}
			acc := g.pickIdle(level, n.Pin)
			if acc == nil {
				if g.tracing() {
					n.blockCause = metrics.CauseNoIdleInstance
				}
				rest = append(rest, n)
				continue
			}
			g.dispatch(n, acc)
		}
		g.readyQ[level] = rest
	}
}

// sortReady is a stable insertion sort over a ready queue (priority
// descending, then job ID ascending). The queues are small and nearly
// sorted between dispatch rounds, so this beats sort.SliceStable in the
// hot path and — unlike it — allocates nothing.
func sortReady(q []*TaskNode) {
	for i := 1; i < len(q); i++ {
		n := q[i]
		j := i
		for j > 0 && readyBefore(n, q[j-1]) {
			q[j] = q[j-1]
			j--
		}
		q[j] = n
	}
}

func readyBefore(a, b *TaskNode) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	return a.job.ID < b.job.ID
}

// pickIdle finds an unclaimed, idle instance at the level (honouring pins).
func (g *GAM) pickIdle(l accel.Level, pin int) accel.Accelerator {
	accs := g.sys.Accelerators(l)
	if pin >= 0 {
		a := accs[pin]
		if _, busy := g.claimed[a]; !busy && a.BusyUntil() <= g.sys.eng.Now() {
			return a
		}
		return nil
	}
	for _, a := range accs {
		if _, busy := g.claimed[a]; !busy && a.BusyUntil() <= g.sys.eng.Now() {
			return a
		}
	}
	return nil
}

// dispatch sends one ACC command packet and arranges completion detection.
func (g *GAM) dispatch(n *TaskNode, a accel.Accelerator) {
	g.claimed[a] = n
	n.state = NodeRunning
	n.Instance = a.Name()
	n.DispatchedAt = g.sys.eng.Now()
	g.stats.TasksDispatched++
	g.stats.CommandPackets++
	if g.tracing() {
		// The dispatch span covers ready-instant to command send; the cause
		// names the last reason the node sat in the queue (or "immediate").
		cause := n.blockCause
		if cause == "" || n.DispatchedAt == n.ReadyAt {
			cause = metrics.CauseImmediate
		}
		n.blockCause = ""
		if g.spans != nil {
			g.spans.Add(metrics.Span{
				Cat: metrics.CatDispatch, Name: n.Spec.Name, Lane: a.Name(),
				Cause: cause, Start: n.ReadyAt, End: n.DispatchedAt,
				Job: n.job.ID, V: int64(len(g.claimed)),
			})
		}
		g.qtraceAdd(n.job, qtrace.PhaseQueue, n.Spec.Stage, n.Level.String(),
			cause, n.ReadyAt, n.DispatchedAt)
	}

	cl := g.sys.gamCommandLatency()
	n.acc = a
	n.estimate = a.Estimate(&n.Spec)
	g.sys.eng.ScheduleCall(cl, n, nodeExec)
}

// execute runs when the ACC command packet arrives at the device.
func (g *GAM) execute(n *TaskNode) {
	a := n.acc
	// Configure the fabric (partial reconfiguration when a different
	// kernel was resident; the delay follows fpga.Fabric's setting —
	// zero by default, as in the paper's evaluation §VI-A).
	fab := a.Fabric()
	reconfigsBefore := fab.Reconfigs()
	ready, err := fab.Load(n.Spec.Kernel)
	if err != nil {
		panic(fmt.Sprintf("core: kernel/device mismatch on %s: %v", a.Name(), err))
	}
	if g.tracing() && fab.Reconfigs() != reconfigsBefore {
		if g.spans != nil {
			g.spans.Add(metrics.Span{
				Cat: metrics.CatReconfig, Name: n.Spec.Kernel.Name, Lane: a.Name(),
				Cause: metrics.CauseReconfig, Start: g.sys.eng.Now(), End: ready,
				Job: n.job.ID, V: int64(fab.Reconfigs()),
			})
		}
		g.qtraceAdd(n.job, qtrace.PhaseReconfig, n.Spec.Stage, n.Level.String(),
			n.Spec.Kernel.Name, g.sys.eng.Now(), ready)
	}
	done, err := a.Execute(&n.Spec)
	if err != nil {
		// The GAM only dispatches to devices it observed idle; an
		// execution refusal means the model's invariants are broken.
		panic(fmt.Sprintf("core: dispatch invariant violated on %s: %v", a.Name(), err))
	}
	n.CompletedAt = done
	g.qtraceAdd(n.job, qtrace.PhaseExec, n.Spec.Stage, n.Level.String(),
		a.Name(), g.sys.eng.Now(), done)
	cl := g.sys.gamCommandLatency()
	if n.Level == accel.OnChip {
		// On-chip accelerators are cache-coherent: completion is
		// observed through the coherent flag without polling.
		g.sys.eng.AtCall(done+cl, n, nodeFinish)
		return
	}
	// Memory/storage modules cannot interrupt the GAM (§II-D): poll
	// at the estimated completion, and keep polling with refreshed
	// wait estimates until the device reports done.
	firstPoll := g.sys.eng.Now() + n.estimate
	g.schedulePoll(n, firstPoll)
}

// schedulePoll sends a status request packet at pollAt.
func (g *GAM) schedulePoll(n *TaskNode, pollAt sim.Time) {
	if minAt := g.sys.eng.Now() + g.sys.gamCommandLatency(); pollAt < minAt {
		pollAt = minAt
	}
	g.sys.eng.AtCall(pollAt, n, nodePoll)
}

// poll runs when a status request packet reaches the device (the event
// fires at the — possibly clamped — pollAt, so Now() is the poll time).
func (g *GAM) poll(n *TaskNode) {
	pollAt := g.sys.eng.Now()
	cl := g.sys.gamCommandLatency()
	g.stats.StatusPolls++
	n.Polls++
	if pollAt >= n.CompletedAt {
		// Status packet returns "finished" with the output region
		// address (Fig. 5b).
		g.sys.eng.ScheduleCall(cl, n, nodeFinish)
		return
	}
	// Not finished: the device returns a refreshed wait time of
	// remaining × (1+slack), updated in the progress table.
	remaining := n.CompletedAt - pollAt
	next := sim.Time(float64(remaining) * (1 + g.sys.cfg.GAM.StatusSlackFraction))
	if next < cl {
		next = cl
	}
	g.schedulePoll(n, pollAt+next)
}

// finish runs when the GAM observes a task's completion: it frees the
// device, forwards outputs to dependents via inter-level DMA, and closes
// the job when its last node completes.
func (g *GAM) finish(n *TaskNode, a accel.Accelerator) {
	n.state = NodeDone
	n.DetectedAt = g.sys.eng.Now()
	delete(g.claimed, a)
	if g.tracing() && n.Polls > 0 && n.DetectedAt > n.CompletedAt {
		// Poll-detection gap: the window between device completion and the
		// GAM noticing it through status polling (non-coherent levels).
		if g.spans != nil {
			g.spans.Add(metrics.Span{
				Cat: metrics.CatPollGap, Name: n.Spec.Name, Lane: a.Name(),
				Cause: metrics.CauseStatusPoll, Start: n.CompletedAt,
				End: n.DetectedAt, Job: n.job.ID, V: int64(n.Polls),
			})
		}
		g.qtraceAdd(n.job, qtrace.PhasePollGap, n.Spec.Stage, n.Level.String(),
			a.Name(), n.CompletedAt, n.DetectedAt)
	}

	// Forward outputs to each dependent (stream enqueue, duplicated per
	// destination for broadcast semantics). Data-carrying forwards pass
	// through the src→dst stream buffer: the put/get pair completes in the
	// same instant (the DMA already paid the transfer time), so timing is
	// unchanged while stream traffic is accounted at the shared layer.
	// Both delivery flavours reuse the finished node as the event handler
	// with the dependent's index in the arg — no per-dependent closures.
	for i, dep := range n.dependents {
		if n.OutBytes > 0 {
			dstIdx := dep.Pin
			if dstIdx < 0 {
				dstIdx = 0
			}
			g.stats.Transfers++
			transferDone := g.sys.Transfer(n.Level, dep.Level, dstIdx, n.OutBytes, n.Spec.Stage)
			g.qtraceAdd(n.job, qtrace.PhaseXfer, n.Spec.Stage, dep.Level.String(),
				linkNames[n.Level][dep.Level], n.DetectedAt, transferDone)
			g.sys.eng.AtCall(transferDone, n, nodeStream|uint64(i)<<nodePhaseBits)
		} else {
			g.sys.eng.AtCall(g.sys.eng.Now(), n, nodeDeliver|uint64(i)<<nodePhaseBits)
		}
	}

	if len(n.dependents) == 0 && n.SinkToHost && n.OutBytes > 0 {
		// Terminal node with a Collect stream back to the host: the job
		// isn't complete until the result lands in host memory.
		g.stats.Transfers++
		collected := g.sys.Transfer(n.Level, accel.CPU, 0, n.OutBytes, n.Spec.Stage)
		g.qtraceAdd(n.job, qtrace.PhaseXfer, n.Spec.Stage, accel.CPU.String(),
			linkNames[n.Level][accel.CPU], n.DetectedAt, collected)
		g.sys.eng.AtCall(collected, n, nodeCollect)
		g.armDispatch()
		return
	}
	g.closeNode(n)
	g.armDispatch()
}

// streamDeliver runs when the DMA to dependents[i] lands: the chunk passes
// through the src→dst stream buffer (put/get complete in the same instant;
// the transfer time was already paid) and the dependency releases.
func (g *GAM) streamDeliver(n, dep *TaskNode) {
	g.streamPass(g.streamBuf(n.Level, dep.Level), dep, g.deliverCB)
}

// streamPass pushes item through buf's put/get pair. With spans enabled it
// watches the buffer's park counter across the put: an increment means the
// producer hit a full buffer (back-pressure), recorded as a stall span.
func (g *GAM) streamPass(buf *sim.TokenQueue, item *TaskNode, consume func(any)) {
	if g.spans == nil {
		buf.Put(item, nil)
		buf.Get(consume)
		return
	}
	parksBefore := buf.PutWaits()
	start := g.sys.eng.Now()
	buf.Put(item, nil)
	buf.Get(consume)
	if buf.PutWaits() != parksBefore {
		g.spans.Add(metrics.Span{
			Cat: metrics.CatStreamStall, Name: buf.Name(), Lane: "GAM",
			Cause: metrics.CauseStreamBackpressure,
			Start: start, End: g.sys.eng.Now(),
			Job: item.job.ID, V: int64(buf.MaxOccupancy()),
		})
	}
}

// deliver releases one dependency edge into dep.
func (g *GAM) deliver(dep *TaskNode) {
	dep.deps--
	if dep.deps == 0 {
		g.markReady(dep)
	}
}

// streamBuf returns (creating on first use) the registered stream buffer
// for a src→dst level pair. Depth follows the configured default stream
// depth; the buffer is a shared-layer TokenQueue, so puts, gets, occupancy
// and park waits surface through the central stats registry.
func (g *GAM) streamBuf(src, dst accel.Level) *sim.TokenQueue {
	key := [2]accel.Level{src, dst}
	if q, ok := g.streamBufs[key]; ok {
		return q
	}
	depth := g.sys.cfg.GAM.StreamDepth
	if depth < 1 {
		depth = 1
	}
	// Stream buffers are created lazily mid-run, so the node prefix is
	// applied here rather than through the registry's construction-scoped
	// prefix.
	name := fmt.Sprintf("%sstream.%s-%s", g.sys.prefix,
		strings.ToLower(src.String()), strings.ToLower(dst.String()))
	q := sim.NewTokenQueue(g.sys.eng, name, depth)
	g.streamBufs[key] = q
	return q
}

// closeNode retires a finished node and completes the job when it was the
// last one.
func (g *GAM) closeNode(n *TaskNode) {
	j := n.job
	j.remaining--
	if j.remaining == 0 {
		// Interrupt the host (Fig. 6 step 3): the job itself is the
		// preallocated handler for its completion event.
		g.stats.Interrupts++
		g.sys.eng.ScheduleCall(g.sys.gamCommandLatency(), j, 0)
	}
	g.armDispatch()
}

// Fire implements sim.Handler: the host observes the completion interrupt.
func (j *Job) Fire(eng *sim.Engine, _ uint64) {
	g := j.gam
	j.done = true
	j.FinishedAt = eng.Now()
	g.stats.JobsCompleted++
	if g.qlog != nil {
		g.qlog.Completed(j.QueryID, j.FinishedAt)
	}
	if j.onDone != nil {
		j.onDone(j)
	}
	// A finished job may unblock the next one when cross-job pipelining is
	// disabled.
	g.armDispatch()
}
