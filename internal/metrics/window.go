package metrics

import "repro/internal/sim"

// windowSource is a materialized Source restricted to a sample-time
// window — what WindowOf builds when the flight recorder cuts a
// diagnostic bundle out of a full-run sampler.
type windowSource struct {
	times  []sim.Time
	series []*Series
}

func (w *windowSource) Samples() int        { return len(w.times) }
func (w *windowSource) Time(i int) sim.Time { return w.times[i] }
func (w *windowSource) Series() []*Series   { return w.series }

// WindowOf returns a Source holding only the sample instants of s that
// fall within [from, to], with every series trimmed to that range and
// re-anchored at index zero. The copy is materialized — columns are
// re-appended, not aliased — which is acceptable at bundle-dump time: the
// window is small by construction and the live sampler keeps recording
// undisturbed. Every exporter that takes a Source (CSV, JSONL, the Chrome
// trace counter lanes) works on the windowed view unchanged, and because
// the sample instants and counter values of the underlying sampler are
// deterministic at any worker count, so is the window.
func WindowOf(s Source, from, to sim.Time) Source {
	lo := s.Samples()
	hi := -1
	for i := 0; i < s.Samples(); i++ {
		t := s.Time(i)
		if t < from || t > to {
			continue
		}
		if i < lo {
			lo = i
		}
		hi = i
	}
	w := &windowSource{}
	if hi < 0 {
		return w
	}
	for i := lo; i <= hi; i++ {
		w.times = append(w.times, s.Time(i))
	}
	for _, se := range s.Series() {
		var out *Series
		for i := lo; i <= hi; i++ {
			j := i - se.Start()
			if j < 0 || j >= se.Len() {
				continue // series started after instant i (or ended before)
			}
			if out == nil {
				out = &Series{Name: se.Name, Kind: se.Kind, start: i - lo}
			}
			p := se.At(j)
			out.occupancy.append(int64(p.Occupancy))
			out.ops.append(int64(p.Ops))
			out.bytes.append(int64(p.Bytes))
			out.busy.append(int64(p.Busy))
			out.wait.append(int64(p.Wait))
			out.stalls.append(int64(p.Stalls))
		}
		if out != nil {
			w.series = append(w.series, out)
		}
	}
	return w
}

// WindowSpans filters per-node span logs to the spans overlapping
// [from, to], preserving slice positions (nil logs stay nil) so the
// windowed logs drop into the same per-node exporter slots as the
// originals. Fresh logs are built; the live logs are untouched.
func WindowSpans(logs []*SpanLog, from, to sim.Time) []*SpanLog {
	if logs == nil {
		return nil
	}
	out := make([]*SpanLog, len(logs))
	for i, l := range logs {
		if l == nil {
			continue
		}
		w := NewSpanLog()
		for _, sp := range l.Spans() {
			if sp.End >= from && sp.Start <= to {
				w.Add(sp)
			}
		}
		out[i] = w
	}
	return out
}
