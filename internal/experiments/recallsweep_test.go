package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRecallSweep(t *testing.T) {
	r, err := RecallSweep(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("%d points", len(r.Points))
	}
	// Recall is nondecreasing in probes and traffic strictly increasing.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Recall+1e-9 < r.Points[i-1].Recall {
			t.Errorf("recall dropped from %.3f to %.3f at %d probes",
				r.Points[i-1].Recall, r.Points[i].Recall, r.Points[i].Probes)
		}
		if r.Points[i].BytesScanned <= r.Points[i-1].BytesScanned {
			t.Error("rerank traffic not increasing with probes")
		}
	}
	// The curve spans a meaningful range: low at 1 probe, high at 32.
	if r.Points[0].Recall >= 0.9 {
		t.Errorf("1-probe recall = %.3f, should be clearly lossy", r.Points[0].Recall)
	}
	last := r.Points[len(r.Points)-1]
	if last.Recall < 0.95 {
		t.Errorf("32-probe recall = %.3f, want >= 0.95", last.Recall)
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "Probes") {
		t.Error("table malformed")
	}
}
