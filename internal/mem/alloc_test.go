package mem

import (
	"testing"

	"repro/internal/sim"
)

// One submit→arbitrate→access→completion round trip through the FR-FCFS
// controller must be allocation-free on a warmed engine: the arbitration
// and completion events ride the pooled calendar (the controller and the
// request are their own handlers), the request queues reuse their backing
// arrays, and the DIMM timing model is pure arithmetic. This is the
// per-request cost the shortlist-retrieval experiments pay millions of
// times, so a regression here is a regression in every figure.
func TestControllerRoundTripAllocs(t *testing.T) {
	eng := sim.NewEngine()
	c := NewController(eng, "ctl", []*DIMM{
		NewDIMM(eng, "d0", DDR42400(), DefaultGeometry()),
	}, 64, 64)

	var completions int
	r := &Request{Done: func(sim.Time) { completions++ }}

	// Warm: fill the queue/heap/slot capacities and the DIMM row state.
	for i := 0; i < 256; i++ {
		r.Addr = int64(i) * 64
		if !c.Submit(r) {
			t.Fatal("warmup submit rejected")
		}
		eng.Run()
	}

	addr := int64(256) * 64
	allocs := testing.AllocsPerRun(200, func() {
		r.Addr = addr
		addr += 64
		if !c.Submit(r) {
			t.Fatal("submit rejected")
		}
		eng.Run()
	})
	if allocs != 0 {
		t.Errorf("controller round trip allocated %.1f objects/op, want 0", allocs)
	}
	if completions == 0 {
		t.Fatal("no completions observed")
	}
	if eng.Pending() != 0 {
		t.Errorf("pending = %d after drain, want 0", eng.Pending())
	}
}
