// Command cbir runs the complete content-based image retrieval case study
// end to end: the functional pipeline (real CNN feature extraction on
// synthetic images, k-means IVF index, shortlist retrieval, KNN rerank,
// recall against exhaustive search) coupled with the ReACH simulator's
// timing and energy for the same batch on the paper's optimized mapping.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cbir"
	"repro/internal/cnn"
	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 1<<15, "functional database size")
		clusters = flag.Int("clusters", 64, "IVF clusters (k-means k)")
		batch    = flag.Int("batch", 16, "query batch size")
		probes   = flag.Int("probes", 8, "shortlisted clusters per query")
		cands    = flag.Int("candidates", 2048, "rerank candidates per query")
		topk     = flag.Int("k", 10, "results per query")
		seed     = flag.Int64("seed", 42, "deterministic seed")
	)
	flag.Parse()

	if err := run(*n, *clusters, *batch, *probes, *cands, *topk, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "cbir:", err)
		os.Exit(1)
	}
}

func run(n, clusters, batch, probes, cands, topk int, seed int64) error {
	// ---- Offline stage: dataset + IVF index -----------------------------
	fmt.Printf("building synthetic dataset: %d vectors, D=96, %d natural clusters\n", n, clusters)
	ds := workload.Synthetic(workload.SyntheticParams{
		N: n, D: 96, Clusters: clusters, Spread: 0.08, Seed: seed,
	})
	fmt.Printf("clustering with k-means (k=%d)...\n", clusters)
	index, err := cbir.BuildIndex(ds.Vectors, clusters, 25, seed+1)
	if err != nil {
		return err
	}
	lo, med, hi := index.ListSizeStats()
	fmt.Printf("index built: cluster sizes min/median/max = %d/%d/%d\n", lo, med, hi)

	// ---- Online stage: feature extraction (real CNN forward passes) -----
	fmt.Printf("extracting features from %d synthetic query images (MiniVGG)...\n", batch)
	net, err := cnn.NewNetwork(cnn.MiniVGG(32, 128), seed+2)
	if err != nil {
		return err
	}
	fe := cnn.NewFeatureExtractor(net, 96, seed+3)
	images := workload.Images(batch, 3, 32, 32, seed+4)
	queries := kernels.NewMatrix(batch, 96)
	for i, img := range images {
		feat, err := fe.Extract(img)
		if err != nil {
			return err
		}
		copy(queries.Row(i), feat)
	}
	// The CNN features live in their own space; for the retrieval-quality
	// demonstration we query with perturbed database vectors, the standard
	// recall protocol (paper §IV-A).
	dbQueries := ds.Queries(batch, 0.02, seed+5)

	// ---- Shortlist retrieval + rerank -----------------------------------
	params := cbir.SearchParams{Probes: probes, Candidates: cands, K: topk}
	results, err := index.Search(dbQueries, params)
	if err != nil {
		return err
	}
	recall, err := index.RecallAtK(dbQueries, params)
	if err != nil {
		return err
	}
	fmt.Printf("\nquery 0 top-%d: ", topk)
	for _, r := range results[0] {
		fmt.Printf("%d(%.4f) ", r.ID, r.Dist)
	}
	fmt.Printf("\nmean recall@%d vs exhaustive search: %.3f\n\n", topk, recall)

	// ---- Simulated deployment on ReACH ----------------------------------
	fmt.Println("simulating the same batch on the ReACH hierarchy (paper mapping)...")
	m := workload.DefaultModel()
	m.BatchSize = batch
	m.Probes = probes
	m.TopK = topk
	r13, err := experiments.Fig13(m)
	if err != nil {
		return err
	}
	if err := r13.Table().Render(os.Stdout); err != nil {
		return err
	}
	return nil
}
