package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/workload"
)

// smallCacheSweep is the reduced matrix the unit tests run: off vs one
// capacity, one TTL, one skew, two rates.
func smallCacheSweep(t *testing.T, opts ...Option) *CacheSweepResult {
	t.Helper()
	res, err := CacheSweep(workload.DefaultModel(), config.DefaultCluster(),
		[]int{0, 32}, []float64{2500}, []float64{1.2}, []float64{10, 20},
		32, DefaultCacheSeed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheSweepShape(t *testing.T) {
	res := smallCacheSweep(t)
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4 (2 capacities × 2 rates)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Completed != 32 {
			t.Fatalf("%de %.0f q/s completed %d of 32", p.Entries, p.OfferedQPS, p.Completed)
		}
		if p.P99 < p.P50 {
			t.Fatalf("quantiles out of order at %de %.0f q/s", p.Entries, p.OfferedQPS)
		}
		if p.Entries == 0 {
			if p.Cache != (cluster.CacheStats{}) {
				t.Fatalf("cache-off cell reported cache activity: %+v", p.Cache)
			}
			continue
		}
		if p.Cache.Lookups != uint64(p.Completed) {
			t.Fatalf("%de %.0f q/s: %d lookups for %d queries — every arrival must look up once",
				p.Entries, p.OfferedQPS, p.Cache.Lookups, p.Completed)
		}
		if p.Cache.Hits+p.Cache.Misses+p.Cache.Expired != p.Cache.Lookups {
			t.Fatalf("cache accounting does not add up: %+v", p.Cache)
		}
	}
}

// TestCacheSweepCacheBeatsOffAtPeak pins the tentpole's acceptance
// criterion: in the default pinned sweep, the cached cluster beats
// cache-off on p99 at the peak (skew, rate) corner while reporting a
// non-zero hit rate and the stale-serve age behind it.
func TestCacheSweepCacheBeatsOffAtPeak(t *testing.T) {
	res, err := DefaultCacheSweep(workload.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rates := DefaultCacheRates()
	maxRate := rates[len(rates)-1]
	skews := DefaultCacheSkews()
	maxSkew := skews[len(skews)-1]
	off := res.Point(0, 0, maxSkew, maxRate)
	if off == nil {
		t.Fatal("pinned sweep missing the cache-off baseline")
	}
	var best *CachePoint
	for _, p := range res.Points {
		if p.Entries == 0 || p.Skew != maxSkew || p.OfferedQPS != maxRate {
			continue
		}
		if best == nil || p.P99 < best.P99 {
			best = p
		}
	}
	if best == nil {
		t.Fatal("pinned sweep has no cached cell at the peak corner")
	}
	t.Logf("skew %.1f at %.0f q/s: off p99 %.1f ms vs %d entries/%.0f ms TTL p99 %.1f ms, hit rate %.0f%%, mean serve age %.1f ms",
		maxSkew, maxRate, off.P99.Milliseconds(), best.Entries, best.TTLMS,
		best.P99.Milliseconds(), 100*best.Cache.HitRate, best.Cache.MeanServeAge.Milliseconds())
	if best.P99 >= off.P99 {
		t.Fatalf("cached p99 %v does not beat cache-off p99 %v at peak load", best.P99, off.P99)
	}
	if best.Cache.HitRate <= 0 {
		t.Fatal("winning cached cell reports a zero hit rate")
	}
	if best.Cache.MeanServeAge <= 0 {
		t.Fatal("winning cached cell reports no stale-serve age despite hits")
	}
}

// TestCacheSweepWorkerCountInvariant: the rendered table is byte-identical
// whether the sweep runs serially or on 8 workers.
func TestCacheSweepWorkerCountInvariant(t *testing.T) {
	render := func(opts ...Option) string {
		var b strings.Builder
		if err := CacheSweepTable(smallCacheSweep(t, opts...)).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(WithWorkers(1))
	parallel := render(WithWorkers(8))
	if serial != parallel {
		t.Fatalf("cache sweep differs by worker count:\n-- j1 --\n%s\n-- j8 --\n%s", serial, parallel)
	}
}

// TestCacheSweepParallelDomainsInvariant: byte-identical whether each
// cached cluster simulates its domains serially or on 4 workers — the
// cache-on extension of the clustersweep invariant.
func TestCacheSweepParallelDomainsInvariant(t *testing.T) {
	render := func(opts ...Option) string {
		var b strings.Builder
		if err := CacheSweepTable(smallCacheSweep(t, opts...)).Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(WithClusterParallel(1))
	parallel := render(WithClusterParallel(4))
	if serial != parallel {
		t.Fatalf("cache sweep differs by ParallelDomains:\n-- pj1 --\n%s\n-- pj4 --\n%s", serial, parallel)
	}
}

func TestCacheSweepTableRenders(t *testing.T) {
	var b strings.Builder
	if err := CacheSweepTable(smallCacheSweep(t)).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Entries", "off", "hit %", "coalesced", "serve age ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
