package core

import (
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/fpga"
	"repro/internal/sim"
	"repro/internal/storage"
)

func newSystem(t *testing.T, cfg config.SystemConfig) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func lookup(t *testing.T, s *System, name string) *fpga.Template {
	t.Helper()
	k, err := s.Registry().Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// pipelineJob builds one CBIR-shaped job: FE on-chip → SL on near-memory
// (one task per instance) → RR on near-storage (one per instance).
func pipelineJob(t *testing.T, s *System, id int) *Job {
	t.Helper()
	j := NewJob(id)
	fe := j.AddTask(accel.Task{
		Name: "fe", Stage: "FeatureExtraction",
		Kernel: lookup(t, s, "CNN-VU9P"),
		MACs:   247.5e9, Source: accel.SourceSPM,
	}, accel.OnChip)
	fe.OutBytes = 6144 // feature batch broadcast

	nm := s.InstanceCount(accel.NearMemory)
	slNodes := make([]*TaskNode, 0, nm)
	for i := 0; i < nm; i++ {
		sl := j.AddTask(accel.Task{
			Name: "sl", Stage: "ShortlistRetrieval",
			Kernel: lookup(t, s, "GEMM-ZCU9"),
			MACs:   1.55e6 / float64(nm), Bytes: int64(2.2e9) / int64(nm),
			Source: accel.SourceLocalDIMM,
		}, accel.NearMemory, fe)
		sl.Pin = i
		sl.OutBytes = 1024
		slNodes = append(slNodes, sl)
	}

	ns := s.InstanceCount(accel.NearStorage)
	for i := 0; i < ns; i++ {
		rr := j.AddTask(accel.Task{
			Name: "rr", Stage: "Rerank",
			Kernel: lookup(t, s, "KNN-ZCU9"),
			MACs:   614e6 / float64(ns), Bytes: int64(2.46e9) / int64(ns),
			Source: accel.SourceSSD, Pattern: storage.Sequential,
		}, accel.NearStorage, slNodes...)
		rr.Pin = i
		rr.OutBytes = 1280
	}
	return j
}

func TestSingleOnChipJob(t *testing.T) {
	s := newSystem(t, config.Default())
	j := NewJob(1)
	j.AddTask(accel.Task{
		Name: "fe", Stage: "FE", Kernel: lookup(t, s, "CNN-VU9P"),
		MACs: 247.5e9, Source: accel.SourceSPM,
	}, accel.OnChip)
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !j.Done() {
		t.Fatal("job did not complete")
	}
	ms := j.Latency().Milliseconds()
	if ms < 100 || ms > 125 {
		t.Errorf("single FE job latency = %.1f ms, want ~111", ms)
	}
	st := s.GAM().Stats()
	if st.JobsCompleted != 1 || st.TasksDispatched != 1 || st.Interrupts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.StatusPolls != 0 {
		t.Errorf("on-chip task was polled %d times; should use coherent completion", st.StatusPolls)
	}
}

func TestPipelineJobRespectsDependencies(t *testing.T) {
	s := newSystem(t, config.Default())
	j := pipelineJob(t, s, 1)
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !j.Done() {
		t.Fatal("job did not complete")
	}
	var fe, sl, rr *TaskNode
	for _, n := range j.Nodes {
		switch n.Spec.Name {
		case "fe":
			fe = n
		case "sl":
			if sl == nil {
				sl = n
			}
		case "rr":
			if rr == nil {
				rr = n
			}
		}
	}
	if sl.DispatchedAt < fe.CompletedAt {
		t.Errorf("SL dispatched at %v before FE completed at %v", sl.DispatchedAt, fe.CompletedAt)
	}
	if rr.DispatchedAt < sl.CompletedAt {
		t.Errorf("RR dispatched at %v before SL completed at %v", rr.DispatchedAt, sl.CompletedAt)
	}
	// Latency = FE (~111ms) + SL (~31ms) + RR (~103ms) + overheads ≈ 250ms.
	ms := j.Latency().Milliseconds()
	if ms < 220 || ms > 300 {
		t.Errorf("pipeline latency = %.1f ms, want ~250", ms)
	}
}

func TestNearLevelsArePolled(t *testing.T) {
	cfg := config.Default()
	cfg.Storage.GatherGrainBytes = cfg.Storage.PageBytes // IOPS-bound gather
	s := newSystem(t, cfg)
	j := NewJob(1)
	// A near-storage task whose data-path time far exceeds the kernel
	// estimate (random pattern hits the IOPS limit): the GAM must poll
	// multiple times and detect completion after the fact.
	n := j.AddTask(accel.Task{
		Name: "rr", Stage: "RR", Kernel: lookup(t, s, "KNN-ZCU9"),
		Bytes: 1e9, Source: accel.SourceSSD, Pattern: storage.RandomPages,
	}, accel.NearStorage)
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if n.Polls < 2 {
		t.Errorf("polls = %d, want >= 2 (estimate undershoots contended reality)", n.Polls)
	}
	if n.DetectedAt < n.CompletedAt {
		t.Errorf("detected at %v before completion %v", n.DetectedAt, n.CompletedAt)
	}
	if s.GAM().Stats().StatusPolls != uint64(n.Polls) {
		t.Errorf("stats polls %d != node polls %d", s.GAM().Stats().StatusPolls, n.Polls)
	}
}

func TestCrossJobPipeliningImprovesThroughput(t *testing.T) {
	const jobs = 6
	run := func(pipelined bool) sim.Time {
		cfg := config.Default()
		cfg.GAM.CrossJobPipelining = pipelined
		s := newSystem(t, cfg)
		var last *Job
		for i := 0; i < jobs; i++ {
			j := pipelineJob(t, s, i)
			if err := s.GAM().Submit(j); err != nil {
				t.Fatal(err)
			}
			last = j
		}
		s.Run()
		if !last.Done() {
			t.Fatal("last job incomplete")
		}
		return last.FinishedAt
	}
	serial := run(false)
	pipelined := run(true)
	if pipelined >= serial {
		t.Fatalf("pipelining did not help: %v vs %v", pipelined, serial)
	}
	speedup := float64(serial) / float64(pipelined)
	// Stage times ~111/31/103 ms: pipelined steady state is bounded by the
	// ~111 ms stage, serial by the ~250 ms sum.
	if speedup < 1.5 {
		t.Errorf("cross-job pipelining speedup = %.2f, want >= 1.5", speedup)
	}
	// Steady-state period must approach the longest stage.
	period := float64(pipelined) / float64(jobs)
	if period > float64(150*sim.Millisecond) {
		t.Errorf("pipelined period = %.1f ms/job, want near the ~111 ms bottleneck stage",
			period/float64(sim.Millisecond))
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSystem(t, config.Default().WithInstances(1, 0, 0))
	empty := NewJob(1)
	if err := s.GAM().Submit(empty); err == nil {
		t.Error("empty job accepted")
	}
	j := NewJob(2)
	j.AddTask(accel.Task{Name: "x", Stage: "s", Kernel: lookup(t, s, "GEMM-ZCU9"), Bytes: 100,
		Source: accel.SourceLocalDIMM}, accel.NearMemory)
	if err := s.GAM().Submit(j); err == nil {
		t.Error("job targeting unpopulated level accepted")
	}
	j2 := NewJob(3)
	n := j2.AddTask(accel.Task{Name: "y", Stage: "s", Kernel: lookup(t, s, "CNN-VU9P"),
		MACs: 1e6, Source: accel.SourceSPM}, accel.OnChip)
	n.Pin = 5
	if err := s.GAM().Submit(j2); err == nil {
		t.Error("bad pin accepted")
	}
}

func TestJobValidateDetectsCycle(t *testing.T) {
	s := newSystem(t, config.Default())
	j := NewJob(1)
	k := lookup(t, s, "CNN-VU9P")
	a := j.AddTask(accel.Task{Name: "a", Stage: "s", Kernel: k, MACs: 1, Source: accel.SourceSPM}, accel.OnChip)
	b := j.AddTask(accel.Task{Name: "b", Stage: "s", Kernel: k, MACs: 1, Source: accel.SourceSPM}, accel.OnChip, a)
	// Manufacture a cycle a→b→a.
	b.dependents = append(b.dependents, a)
	a.deps++
	if err := j.Validate(); err == nil {
		t.Error("cyclic job validated")
	}
}

func TestParallelTasksShareInstances(t *testing.T) {
	// 8 independent near-memory tasks on 4 instances: two waves.
	cfg := config.Default().WithInstances(1, 4, 4)
	s := newSystem(t, cfg)
	j := NewJob(1)
	for i := 0; i < 8; i++ {
		j.AddTask(accel.Task{
			Name: "t", Stage: "s", Kernel: lookup(t, s, "GEMM-ZCU9"),
			Bytes: 180e6, Source: accel.SourceLocalDIMM,
		}, accel.NearMemory)
	}
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !j.Done() {
		t.Fatal("job incomplete")
	}
	// Each task streams 180 MB at 18 GB/s = 10 ms; 8 tasks on 4 devices
	// ≈ 2 waves ≈ 20 ms + polling overhead. Well under 4 waves.
	ms := j.Latency().Milliseconds()
	if ms < 19 || ms > 35 {
		t.Errorf("8 tasks / 4 instances = %.1f ms, want ~21-30", ms)
	}
	// Instances used: all 4.
	used := map[string]bool{}
	for _, n := range j.Nodes {
		used[n.Instance] = true
	}
	if len(used) != 4 {
		t.Errorf("used %d instances, want 4", len(used))
	}
}

func TestProgressTableDuringRun(t *testing.T) {
	s := newSystem(t, config.Default())
	j := pipelineJob(t, s, 1)
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	var sawRunning bool
	s.Engine().Schedule(50*sim.Millisecond, func() {
		for _, e := range s.GAM().Progress() {
			if e.State == NodeRunning && e.Task == "fe" {
				sawRunning = true
			}
		}
	})
	s.Run()
	if !sawRunning {
		t.Error("progress table never showed the FE task running at t=50ms")
	}
}

func TestTransferPathsChargeComponents(t *testing.T) {
	cases := []struct {
		name     string
		src, dst accel.Level
		want     []energy.Component
	}{
		{"cpu→nearmem", accel.CPU, accel.NearMemory, []energy.Component{energy.DRAM, energy.MCInterconnect}},
		{"cpu→nearstor", accel.CPU, accel.NearStorage, []energy.Component{energy.DRAM, energy.PCIe}},
		{"nearmem→cpu", accel.NearMemory, accel.CPU, []energy.Component{energy.DRAM, energy.MCInterconnect}},
		{"nearmem→nearstor", accel.NearMemory, accel.NearStorage, []energy.Component{energy.DRAM, energy.PCIe}},
		{"nearstor→cpu", accel.NearStorage, accel.CPU, []energy.Component{energy.PCIe, energy.DRAM}},
		{"nearmem→nearmem", accel.NearMemory, accel.NearMemory, []energy.Component{energy.DRAM, energy.MCInterconnect}},
		{"onchip→cpu", accel.OnChip, accel.CPU, []energy.Component{energy.Cache}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSystem(t, config.Default())
			done := s.Transfer(tc.src, tc.dst, 0, 1<<20, "x")
			if done <= 0 {
				t.Error("transfer completed instantly")
			}
			for _, c := range tc.want {
				if s.Meter().Component(c) <= 0 {
					t.Errorf("no %v energy charged", c)
				}
			}
		})
	}
	// Zero bytes and same-level transfers are free.
	s := newSystem(t, config.Default())
	if d := s.Transfer(accel.CPU, accel.NearMemory, 0, 0, "x"); d != s.Engine().Now() {
		t.Error("zero-byte transfer took time")
	}
	if d := s.Transfer(accel.CPU, accel.CPU, 0, 100, "x"); d != s.Engine().Now() {
		t.Error("same-level transfer took time")
	}
}

func TestLoadFixedBuffer(t *testing.T) {
	s := newSystem(t, config.Default())
	if d := s.LoadFixedBuffer(accel.NearStorage, 0, 1<<30, "Setup"); d != s.Engine().Now() {
		t.Error("SSD-resident buffer load should be free")
	}
	d := s.LoadFixedBuffer(accel.NearMemory, 0, 1<<30, "Setup")
	if d <= s.Engine().Now() {
		t.Error("near-memory buffer load took no time")
	}
	if s.Meter().Component(energy.SSD) <= 0 {
		t.Error("buffer load charged no SSD energy")
	}
	d2 := s.LoadFixedBuffer(accel.OnChip, 0, 1<<20, "Setup")
	if d2 <= 0 {
		t.Error("on-chip buffer load took no time")
	}
}

func TestBackgroundEnergy(t *testing.T) {
	s := newSystem(t, config.Default())
	s.Background("idle", sim.Second)
	if s.Meter().Component(energy.DRAM) <= 0 || s.Meter().Component(energy.SSD) <= 0 {
		t.Error("background energy not charged")
	}
}

func TestNodeStateStrings(t *testing.T) {
	for st, want := range map[NodeState]string{
		NodePending: "pending", NodeReady: "ready", NodeRunning: "running", NodeDone: "done",
	} {
		if st.String() != want {
			t.Errorf("%d = %q", int(st), st.String())
		}
	}
	if NodeState(9).String() == "" {
		t.Error("unknown state empty")
	}
}

func TestSnapshotAfterPipeline(t *testing.T) {
	s := newSystem(t, config.Default())
	j := pipelineJob(t, s, 1)
	if err := s.GAM().Submit(j); err != nil {
		t.Fatal(err)
	}
	s.Run()
	entries := s.Snapshot()
	byName := map[string]string{}
	for _, e := range entries {
		byName[e.Name] = e.Value
	}
	for _, want := range []string{
		"gam.jobs_completed", "gam.status_polls", "mem.aimbus.bytes",
		"ssd.host_link.bytes", "energy.total_J", "acc.onchip0.tasks",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("snapshot missing %s", want)
		}
	}
	if byName["gam.jobs_completed"] != "1" {
		t.Errorf("jobs_completed = %s", byName["gam.jobs_completed"])
	}
	var sb strings.Builder
	if err := s.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "energy.total_J") {
		t.Error("rendered snapshot missing energy line")
	}
	// Utilisation: the pipeline kept the on-chip accelerator busy for the
	// FE stage; utilisation must be in (0, 1].
	if u := s.Utilization(accel.OnChip); u <= 0 || u > 1 {
		t.Errorf("on-chip utilisation = %v", u)
	}
	if u := s.Utilization(accel.CPU); u != 0 {
		t.Errorf("CPU utilisation = %v, want 0 (no instances)", u)
	}
}
