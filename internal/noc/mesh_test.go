package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newMesh(t *testing.T) *Mesh {
	t.Helper()
	eng := sim.NewEngine()
	m := NewMesh(eng, "mesh", 4, 4, 25e9, 10*sim.Nanosecond)
	for _, ep := range []struct {
		name string
		x, y int
	}{
		{"cpu", 0, 0}, {"llc", 1, 0}, {"acc", 3, 0}, {"gam", 0, 1}, {"mc0", 3, 3},
	} {
		if err := m.Attach(ep.name, ep.x, ep.y); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestMeshHops(t *testing.T) {
	m := newMesh(t)
	cases := []struct {
		src, dst string
		want     int
	}{
		{"cpu", "llc", 1},
		{"cpu", "acc", 3},
		{"cpu", "mc0", 6}, // 3 in X + 3 in Y
		{"llc", "gam", 2},
	}
	for _, c := range cases {
		got, err := m.Hops(c.src, c.dst)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("hops(%s,%s) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	if _, err := m.Hops("cpu", "nope"); err == nil {
		t.Error("unknown endpoint accepted")
	}
}

func TestMeshTransferLatencyGrowsWithDistance(t *testing.T) {
	m := newMesh(t)
	near, err := m.Transfer("cpu", "llc", 64)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMesh(t)
	far, err := m2.Transfer("cpu", "mc0", 64)
	if err != nil {
		t.Fatal(err)
	}
	if far <= near {
		t.Errorf("6-hop transfer (%v) not slower than 1-hop (%v)", far, near)
	}
}

func TestMeshContentionOnSharedLink(t *testing.T) {
	m := newMesh(t)
	// cpu(0,0)→acc(3,0) and llc(1,0)→acc(3,0) share the (2,0)→(3,0) link.
	n := int64(1 << 20)
	t1, _ := m.Transfer("cpu", "acc", n)
	t2, _ := m.Transfer("llc", "acc", n)
	if t2 <= t1 {
		t.Errorf("overlapping routes did not contend: %v then %v", t2, t1)
	}
	if u := m.LinkUtilization(2, 0, 3, 0); u <= 0 {
		t.Errorf("shared link utilisation = %v", u)
	}
	// Disjoint routes do not contend: gam(0,1)→mc0(3,3) is unaffected by
	// the row-0 traffic except where XY routes overlap (they don't).
	m3 := newMesh(t)
	a, _ := m3.Transfer("cpu", "acc", n)
	b, _ := m3.Transfer("gam", "mc0", n)
	if b > a+sim.Microsecond {
		t.Errorf("disjoint transfer delayed: %v vs %v", b, a)
	}
}

func TestMeshAttachValidation(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, "m", 2, 2, 1e9, 0)
	if err := m.Attach("a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach("a", 1, 1); err == nil {
		t.Error("duplicate endpoint accepted")
	}
	if err := m.Attach("b", 5, 0); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, err := m.Transfer("a", "zzz", 10); err == nil {
		t.Error("transfer to unknown endpoint accepted")
	}
}

func TestMeshLoopback(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, "m", 2, 2, 1e9, 7*sim.Nanosecond)
	m.Attach("a", 1, 1)
	done, err := m.Transfer("a", "a", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if done != 7*sim.Nanosecond {
		t.Errorf("loopback = %v, want hop latency only", done)
	}
}

// Property: XY routes have exactly |dx|+|dy| hops and are identical for
// repeated queries (deterministic routing).
func TestMeshRouteProperty(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, "m", 8, 8, 1e9, 0)
	f := func(sx, sy, dx, dy uint8) bool {
		a := int(sx%8) + int(sy%8)*8
		b := int(dx%8) + int(dy%8)*8
		p1 := m.route(a, b)
		p2 := m.route(a, b)
		if len(p1) != len(p2) {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		wantLen := abs(int(sx%8)-int(dx%8)) + abs(int(sy%8)-int(dy%8))
		if len(p1) != wantLen {
			return false
		}
		// Route must end at the destination.
		return wantLen == 0 || p1[len(p1)-1] == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeshAccounting(t *testing.T) {
	m := newMesh(t)
	m.Transfer("cpu", "acc", 100)
	m.Transfer("cpu", "mc0", 100)
	if m.TotalBytes() != 200 {
		t.Errorf("bytes = %d", m.TotalBytes())
	}
	if mh := m.MeanHops(); mh != 4.5 { // (3+6)/2
		t.Errorf("mean hops = %v, want 4.5", mh)
	}
	if u := m.LinkUtilization(0, 0, 3, 3); u != 0 {
		t.Error("non-neighbour link utilisation not 0")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
