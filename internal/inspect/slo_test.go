package inspect

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The monitor must plug into both qtrace observer hooks.
var (
	_ qtrace.Observer   = (*SLOMonitor)(nil)
	_ qtrace.ObserverAt = (*SLOMonitor)(nil)
)

// TestSLOWindowQuantileAccuracy: each window's sketched quantiles must
// match the exact (nearest-rank, sorted) quantiles of the latencies that
// landed in that window, within the sketch's relative-error bound.
func TestSLOWindowQuantileAccuracy(t *testing.T) {
	width := sim.FromSeconds(1e-3)
	m := NewSLOMonitor(width, 20*sim.Millisecond)
	rng := rand.New(rand.NewSource(7))
	type done struct{ at, lat sim.Time }
	var events []done
	for i := 0; i < 5000; i++ {
		// Latencies spread over two decades so the log-bucketed sketch is
		// actually exercised.
		events = append(events, done{
			at:  sim.Time(rng.Int63n(int64(4 * width))),
			lat: sim.Time(1+rng.Int63n(100)) * sim.Millisecond / 2,
		})
	}
	// Completions arrive in simulated-time order, as they do from a run.
	sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
	byWindow := map[int][]sim.Time{}
	for i, e := range events {
		m.QueryDoneAt(i, e.at, e.lat)
		byWindow[int(e.at/width)] = append(byWindow[int(e.at/width)], e.lat)
	}
	st := m.Stats()
	if len(st.Windows) != len(byWindow) {
		t.Fatalf("%d windows reported, want %d", len(st.Windows), len(byWindow))
	}
	exact := func(lats []sim.Time, q float64) float64 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rank := int(math.Ceil(q*float64(len(lats)))) - 1
		if rank < 0 {
			rank = 0
		}
		return lats[rank].Milliseconds()
	}
	for _, w := range st.Windows {
		idx := int(sim.FromSeconds(w.StartMs/1e3) / width)
		lats := byWindow[idx]
		if w.Queries != len(lats) {
			t.Fatalf("window %d has %d queries, want %d", idx, w.Queries, len(lats))
		}
		for _, q := range []struct {
			p    float64
			got  float64
			name string
		}{
			{0.5, w.P50Ms, "p50"},
			{0.99, w.P99Ms, "p99"},
			{0.999, w.P999Ms, "p999"},
		} {
			want := exact(lats, q.p)
			if relErr := math.Abs(q.got-want) / want; relErr > qtrace.DefaultAlpha+1e-9 {
				t.Errorf("window %d %s = %.4f ms, exact %.4f ms (rel err %.4f > %.2f)",
					idx, q.name, q.got, want, relErr, qtrace.DefaultAlpha)
			}
		}
	}
}

// TestSLOBurnCounters: breaches count latencies strictly above the
// objective, per window and cumulatively.
func TestSLOBurnCounters(t *testing.T) {
	width := sim.Millisecond
	m := NewSLOMonitor(width, 10*sim.Millisecond)
	// Window 0: 3 queries, 1 breach. Window 2: 2 queries, 2 breaches.
	m.QueryDoneAt(0, 0, 5*sim.Millisecond)
	m.QueryDoneAt(1, 1, 10*sim.Millisecond) // at objective: not a breach
	m.QueryDoneAt(2, 2, 11*sim.Millisecond)
	m.QueryDoneAt(3, 2*width, 20*sim.Millisecond)
	m.QueryDoneAt(4, 2*width+1, 30*sim.Millisecond)
	st := m.Stats()
	if st.Queries != 5 || st.Breaches != 3 {
		t.Fatalf("queries=%d breaches=%d, want 5/3", st.Queries, st.Breaches)
	}
	if math.Abs(st.BurnPct-60) > 1e-9 {
		t.Errorf("burn = %.2f%%, want 60%%", st.BurnPct)
	}
	if len(st.Windows) != 2 {
		t.Fatalf("windows = %+v, want 2 non-empty", st.Windows)
	}
	if st.Windows[0].Queries != 3 || st.Windows[0].Breaches != 1 {
		t.Errorf("window 0 = %+v, want 3 queries 1 breach", st.Windows[0])
	}
	if st.Windows[1].Queries != 2 || st.Windows[1].Breaches != 2 {
		t.Errorf("window 1 = %+v, want 2 queries 2 breaches", st.Windows[1])
	}
	tbl := m.Table()
	if tbl == nil || len(tbl.Rows) != 2 {
		t.Fatalf("table = %+v, want 2 rows", tbl)
	}
	if len(tbl.Notes) != 2 || !strings.Contains(tbl.Notes[1], "3 breaches") {
		t.Errorf("table notes = %v", tbl.Notes)
	}
	if NewSLOMonitor(width, width).Table() != nil {
		t.Error("empty monitor should render no table")
	}
}

// TestSLOScrapeDuringClusterRun is the concurrency gate (run under
// -race): a parallel-domain cluster run feeds the monitor from its
// front-end worker goroutine while HTTP scrapes hammer /progress and
// expvar. Snapshots mid-run must be well-formed; the final burn counters
// must match the run.
func TestSLOScrapeDuringClusterRun(t *testing.T) {
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cfg := config.DefaultCluster()
	cfg.ParallelDomains = 8
	m := workload.DefaultModel()
	m.DatasetSize /= 100
	mon := NewSLOMonitor(sim.FromSeconds(1e-3), 50*sim.Millisecond)
	c, err := cluster.New(cfg, m, qtrace.Options{Observer: qtrace.Tee(s, mon)})
	if err != nil {
		t.Fatal(err)
	}
	s.ObserveMulti(c.Multi())
	s.ObserveSLO(mon)
	const queries = 200
	for i := 0; i < queries; i++ {
		c.SubmitAt(sim.Time(i) * sim.FromSeconds(1e-4))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var snap Snapshot
				if err := json.Unmarshal([]byte(get(t, "http://"+s.Addr()+"/progress")), &snap); err != nil {
					t.Errorf("mid-run /progress: %v", err)
					return
				}
				if snap.SLO != nil && snap.SLO.Breaches > snap.SLO.Queries {
					t.Errorf("snapshot breaches %d > queries %d", snap.SLO.Breaches, snap.SLO.Queries)
					return
				}
				get(t, "http://"+s.Addr()+"/debug/vars")
			}
		}()
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	st := mon.Stats()
	if st.Queries != queries {
		t.Fatalf("monitor saw %d completions, want %d", st.Queries, queries)
	}
	vars := get(t, "http://"+s.Addr()+"/debug/vars")
	for _, want := range []string{"slo_breaches_total", "slo_burn_pct", "slo_window_p99_ms"} {
		if !strings.Contains(vars, want) {
			t.Errorf("/debug/vars missing %q", want)
		}
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, "http://"+s.Addr()+"/progress")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.SLO == nil || snap.SLO.Queries != queries {
		t.Fatalf("final snapshot SLO block = %+v", snap.SLO)
	}
}

// TestSLOWindowEvictionAtCap crosses the maxSLOWindows retention cap: the
// oldest windows age out, but no longer silently — the eviction counter
// surfaces in Stats, the table gains a suffix warning, and the expvar is
// published. Cumulative burn counters must be unaffected by eviction.
func TestSLOWindowEvictionAtCap(t *testing.T) {
	width := sim.Millisecond
	m := NewSLOMonitor(width, 10*sim.Millisecond)
	const populated = maxSLOWindows + 576
	for i := 0; i < populated; i++ {
		m.QueryDoneAt(i, sim.Time(i)*width, 20*sim.Millisecond) // every one a breach
	}
	st := m.Stats()
	if st.Queries != populated || st.Breaches != populated {
		t.Fatalf("queries=%d breaches=%d, want %d cumulative despite eviction",
			st.Queries, st.Breaches, populated)
	}
	if len(st.Windows) != maxSLOWindows {
		t.Fatalf("%d windows retained, want the cap %d", len(st.Windows), maxSLOWindows)
	}
	if st.WindowsEvicted != populated-maxSLOWindows {
		t.Fatalf("WindowsEvicted = %d, want %d", st.WindowsEvicted, populated-maxSLOWindows)
	}
	// The retained rows are the newest suffix.
	wantStart := sim.Time(populated-maxSLOWindows) * width
	if st.Windows[0].StartMs != wantStart.Milliseconds() {
		t.Errorf("oldest retained window starts at %.3f ms, want %.3f ms",
			st.Windows[0].StartMs, wantStart.Milliseconds())
	}
	tbl := m.Table()
	if len(tbl.Notes) != 3 || !strings.Contains(tbl.Notes[2], "576 populated windows evicted") {
		t.Errorf("table notes = %v, want eviction warning", tbl.Notes)
	}

	// Sparse gap: only populated windows count as evictions.
	m2 := NewSLOMonitor(width, 10*sim.Millisecond)
	m2.QueryDoneAt(0, 0, 5*sim.Millisecond)
	m2.QueryDoneAt(1, sim.Time(2*maxSLOWindows)*width, 5*sim.Millisecond)
	if got := m2.Stats().WindowsEvicted; got != 1 {
		t.Errorf("sparse eviction counted %d windows, want 1 (nil gaps are free)", got)
	}

	// Below the cap nothing is evicted and the table carries no warning.
	m3 := NewSLOMonitor(width, 10*sim.Millisecond)
	m3.QueryDoneAt(0, 0, 20*sim.Millisecond)
	if st := m3.Stats(); st.WindowsEvicted != 0 {
		t.Errorf("uncapped monitor reports %d evictions", st.WindowsEvicted)
	}
	if notes := m3.Table().Notes; len(notes) != 2 {
		t.Errorf("uncapped table notes = %v, want no eviction warning", notes)
	}

	// The expvar surfaces the counter for live scrapes.
	s := New()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.ObserveSLO(m)
	vars := get(t, "http://"+s.Addr()+"/debug/vars")
	if !strings.Contains(vars, `"slo_windows_evicted": 576`) {
		t.Errorf("/debug/vars missing slo_windows_evicted: %.200s", vars)
	}
}
