package mem

import (
	"repro/internal/sim"
)

// Port is the bulk-access view of a memory resource: a capacity-limited,
// contended pipe with separate effective efficiencies for streaming and
// random access. Accelerator data paths use Ports to account
// multi-megabyte transfers without per-line events; the efficiencies are
// validated against the request-level Controller model by tests in this
// package.
//
// Port is a thin efficiency adapter over the shared sim.Connection layer:
// all serialisation, queueing and statistics live in the connection, which
// registers itself in the engine's central stats registry.
type Port struct {
	conn      sim.Connection
	streamEff float64
	randomEff float64
}

// NewPort creates a port with the given peak bandwidth (bytes/second),
// per-transfer latency, and effective efficiencies for streaming vs.
// random access patterns.
func NewPort(eng *sim.Engine, name string, peakBytesPerSec float64, latency sim.Time, streamEff, randomEff float64) *Port {
	if streamEff <= 0 || streamEff > 1 || randomEff <= 0 || randomEff > 1 {
		panic("mem: port efficiencies must be in (0,1]")
	}
	return &Port{
		conn:      sim.NewLink(eng, name, peakBytesPerSec, latency),
		streamEff: streamEff,
		randomEff: randomEff,
	}
}

// Stream accounts a sequential bulk transfer of n bytes and returns its
// completion time (contention with other users of the port included).
func (p *Port) Stream(n int64) sim.Time {
	return p.conn.TransferEff(n, p.streamEff)
}

// Random accounts a random-access bulk transfer of n bytes.
func (p *Port) Random(n int64) sim.Time {
	return p.conn.TransferEff(n, p.randomEff)
}

// EffectiveStreamBandwidth reports peak × stream efficiency, in bytes/s.
func (p *Port) EffectiveStreamBandwidth() float64 {
	return p.conn.BytesPerSec() * p.streamEff
}

// EffectiveRandomBandwidth reports peak × random efficiency, in bytes/s.
func (p *Port) EffectiveRandomBandwidth() float64 {
	return p.conn.BytesPerSec() * p.randomEff
}

// TotalBytes reports payload bytes moved through the port.
func (p *Port) TotalBytes() uint64 { return p.conn.ResourceStats().Bytes }

// BusyTime reports occupied capacity time.
func (p *Port) BusyTime() sim.Time { return p.conn.ResourceStats().Busy }

// QueuedDelay reports accumulated contention delay.
func (p *Port) QueuedDelay() sim.Time { return p.conn.ResourceStats().Wait }

// NextFree reports when the port next has free capacity.
func (p *Port) NextFree() sim.Time { return p.conn.NextFree() }

// Link exposes the underlying connection for shared-resource wiring
// (several ports can be layered over one physical channel via NewPortOn).
func (p *Port) Link() sim.Connection { return p.conn }

// NewPortOn layers a port with its own efficiencies over an existing
// connection, sharing its capacity with all other users — used to model
// several agents contending for one physical channel.
func NewPortOn(conn sim.Connection, streamEff, randomEff float64) *Port {
	if streamEff <= 0 || streamEff > 1 || randomEff <= 0 || randomEff > 1 {
		panic("mem: port efficiencies must be in (0,1]")
	}
	return &Port{conn: conn, streamEff: streamEff, randomEff: randomEff}
}
