package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in the simulation calendar. Events are
// created by Engine.At and Engine.Schedule and may be cancelled before they
// fire.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among same-time events
	fn     func()
	eng    *Engine
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// When reports the simulated time the event is scheduled for.
func (ev *Event) When() Time { return ev.at }

// Cancel prevents the event from firing and removes it from the calendar
// immediately, so long-lived simulations that schedule-and-cancel (e.g.
// timeout guards) do not accumulate dead events in the heap until their
// nominal time is reached. Cancelling an event that already fired (or was
// already cancelled) is a no-op.
func (ev *Event) Cancel() {
	if ev.cancel {
		return
	}
	ev.cancel = true
	if ev.index >= 0 && ev.eng != nil {
		heap.Remove(&ev.eng.pq, ev.index)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation kernel. All model
// components attached to an Engine share its virtual clock; the engine
// dispatches events in nondecreasing time order, FIFO among ties.
//
// The engine is deliberately not safe for concurrent use: determinism is a
// core requirement for the reproducibility of the experiments, so the whole
// simulation executes on one goroutine.
type Engine struct {
	now      Time
	seq      uint64
	pq       eventHeap
	executed uint64
	running  bool
	stats    *StatsRegistry
}

// NewEngine returns an engine with the clock at time zero and an empty
// calendar.
func NewEngine() *Engine {
	return &Engine{stats: NewStatsRegistry()}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Stats returns the engine's central resource registry: every shared
// resource (link, stream buffer, request queue, window) constructed on
// this engine registers itself here under a hierarchical name.
func (e *Engine) Stats() *StatsRegistry {
	if e.stats == nil {
		e.stats = NewStatsRegistry() // tolerate zero-value engines in tests
	}
	return e.stats
}

// Executed reports how many events have been dispatched so far; useful for
// progress reporting and as a runaway-simulation guard in tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports the number of events currently scheduled. Cancelled
// events are removed from the calendar eagerly and do not count.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping would
// corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Schedule schedules fn to run after delay from the current time.
// A negative delay panics.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Step dispatches the single earliest event. It reports false when the
// calendar is empty.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the calendar drains. It panics on re-entrant
// invocation (calling Run from inside an event callback).
func (e *Engine) Run() {
	e.RunUntil(MaxTime)
}

// RunUntil dispatches events with time ≤ deadline, then advances the clock
// to min(deadline, time of last event). Events scheduled beyond the deadline
// stay in the calendar.
func (e *Engine) RunUntil(deadline Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.cancel {
			heap.Pop(&e.pq)
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.at
		e.executed++
		next.fn()
	}
	if deadline != MaxTime && deadline > e.now {
		e.now = deadline
	}
}

// Advance moves the clock forward by d without dispatching events. It is
// intended for driving the engine from tests and from analytic fast-paths
// that account for long busy periods without per-cycle events.
func (e *Engine) Advance(d Time) {
	if d < 0 {
		panic("sim: negative advance")
	}
	target := e.now + d
	if len(e.pq) > 0 && e.pq[0].at < target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event scheduled at %v", d, e.pq[0].at))
	}
	e.now = target
}
