package cbir

import (
	"fmt"
	"math"

	"repro/internal/kernels"
)

// Product quantization (PQ) is the compression baseline the paper's
// motivation argues against (§IV-A): binary codes and product quantization
// "reduce the dimensionality of feature vectors, leading to orders of
// magnitude reduction in data visited; however, these methods
// significantly penalize the recall accuracy". This file implements PQ so
// the repository can quantify that trade-off directly: the motivation
// experiment compares IVF + exact rerank (what ReACH accelerates) against
// IVF-PQ at matched probe counts.

// PQParams configures a product quantizer.
type PQParams struct {
	// Subspaces (m) splits the D-dimensional vector into m sub-vectors.
	Subspaces int
	// CentroidsPerSub (k*) is the codebook size per subspace (8-bit codes
	// use 256).
	CentroidsPerSub int
	// KMeansIters bounds the per-subspace clustering.
	KMeansIters int
	Seed        int64
}

// DefaultPQParams returns an 8-subspace, 8-bit-per-subspace quantizer:
// a 96-dim float32 vector (384 B) compresses to 8 bytes — 48×.
func DefaultPQParams() PQParams {
	return PQParams{Subspaces: 8, CentroidsPerSub: 256, KMeansIters: 15, Seed: 7}
}

// PQ is a trained product quantizer.
type PQ struct {
	m      int // subspaces
	subDim int
	k      int               // centroids per subspace
	books  []*kernels.Matrix // m codebooks, each k × subDim
}

// TrainPQ fits codebooks on training vectors.
func TrainPQ(train *kernels.Matrix, p PQParams) (*PQ, error) {
	if p.Subspaces <= 0 || train.Cols%p.Subspaces != 0 {
		return nil, fmt.Errorf("cbir: D=%d not divisible into %d subspaces", train.Cols, p.Subspaces)
	}
	if p.CentroidsPerSub <= 0 || p.CentroidsPerSub > train.Rows {
		return nil, fmt.Errorf("cbir: need 1 <= k* (%d) <= n (%d)", p.CentroidsPerSub, train.Rows)
	}
	subDim := train.Cols / p.Subspaces
	pq := &PQ{m: p.Subspaces, subDim: subDim, k: p.CentroidsPerSub}
	for s := 0; s < p.Subspaces; s++ {
		sub := kernels.NewMatrix(train.Rows, subDim)
		for i := 0; i < train.Rows; i++ {
			copy(sub.Row(i), train.Row(i)[s*subDim:(s+1)*subDim])
		}
		km, err := KMeans(sub, p.CentroidsPerSub, p.KMeansIters, p.Seed+int64(s))
		if err != nil {
			return nil, err
		}
		pq.books = append(pq.books, km.Centroids)
	}
	return pq, nil
}

// CodeBytes reports the compressed size of one vector (one byte per
// subspace for k* ≤ 256; two otherwise).
func (pq *PQ) CodeBytes() int64 {
	per := 1
	if pq.k > 256 {
		per = 2
	}
	return int64(pq.m * per)
}

// CompressionRatio reports float32 bytes over code bytes.
func (pq *PQ) CompressionRatio() float64 {
	return float64(pq.m*pq.subDim*4) / float64(pq.CodeBytes())
}

// Encode quantizes one vector to its code (nearest codebook entry per
// subspace).
func (pq *PQ) Encode(v []float32) []uint16 {
	if len(v) != pq.m*pq.subDim {
		panic(fmt.Sprintf("cbir: PQ encode dim %d, want %d", len(v), pq.m*pq.subDim))
	}
	code := make([]uint16, pq.m)
	for s := 0; s < pq.m; s++ {
		sub := v[s*pq.subDim : (s+1)*pq.subDim]
		best, bestD := 0, float32(math.MaxFloat32)
		for c := 0; c < pq.k; c++ {
			if d := kernels.SquaredL2(sub, pq.books[s].Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		code[s] = uint16(best)
	}
	return code
}

// EncodeAll encodes a whole matrix.
func (pq *PQ) EncodeAll(vs *kernels.Matrix) [][]uint16 {
	out := make([][]uint16, vs.Rows)
	for i := 0; i < vs.Rows; i++ {
		out[i] = pq.Encode(vs.Row(i))
	}
	return out
}

// Decode reconstructs the approximation of a code.
func (pq *PQ) Decode(code []uint16) []float32 {
	out := make([]float32, 0, pq.m*pq.subDim)
	for s := 0; s < pq.m; s++ {
		out = append(out, pq.books[s].Row(int(code[s]))...)
	}
	return out
}

// DistanceTable precomputes, for one query, the squared distance from each
// query sub-vector to every codebook entry — the ADC (asymmetric distance
// computation) table. Scoring a code is then m table lookups and adds.
func (pq *PQ) DistanceTable(q []float32) *kernels.Matrix {
	t := kernels.NewMatrix(pq.m, pq.k)
	for s := 0; s < pq.m; s++ {
		sub := q[s*pq.subDim : (s+1)*pq.subDim]
		row := t.Row(s)
		for c := 0; c < pq.k; c++ {
			row[c] = kernels.SquaredL2(sub, pq.books[s].Row(c))
		}
	}
	return t
}

// ADC scores one code against a precomputed distance table.
func ADC(table *kernels.Matrix, code []uint16) float32 {
	var sum float32
	for s, c := range code {
		sum += table.At(s, int(c))
	}
	return sum
}

// PQIndex is an IVF index whose stored vectors are PQ codes — the
// compressed alternative to the paper's exact-rerank design.
type PQIndex struct {
	ivf   *Index
	pq    *PQ
	codes [][]uint16
}

// BuildPQIndex clusters the database and PQ-encodes every vector.
func BuildPQIndex(vectors *kernels.Matrix, m, kmeansIters int, seed int64, p PQParams) (*PQIndex, error) {
	ivf, err := BuildIndex(vectors, m, kmeansIters, seed)
	if err != nil {
		return nil, err
	}
	pq, err := TrainPQ(vectors, p)
	if err != nil {
		return nil, err
	}
	return &PQIndex{ivf: ivf, pq: pq, codes: pq.EncodeAll(vectors)}, nil
}

// PQ exposes the quantizer.
func (ix *PQIndex) PQ() *PQ { return ix.pq }

// Search runs shortlist → candidates → ADC rerank over codes.
func (ix *PQIndex) Search(queries *kernels.Matrix, p SearchParams) ([][]kernels.Neighbor, error) {
	shortlists, err := ix.ivf.Shortlist(queries, p.Probes)
	if err != nil {
		return nil, err
	}
	out := make([][]kernels.Neighbor, queries.Rows)
	for b := 0; b < queries.Rows; b++ {
		table := ix.pq.DistanceTable(queries.Row(b))
		cands := ix.ivf.Candidates(shortlists[b], p.Candidates)
		sel := kernels.NewTopK(p.K)
		for _, id := range cands {
			sel.Offer(id, ADC(table, ix.codes[id]))
		}
		out[b] = sel.Results()
	}
	return out, nil
}

// RecallAtK evaluates the compressed index against exhaustive search on
// the original vectors.
func (ix *PQIndex) RecallAtK(queries *kernels.Matrix, p SearchParams) (float64, error) {
	found, err := ix.Search(queries, p)
	if err != nil {
		return 0, err
	}
	var sum float64
	for b := 0; b < queries.Rows; b++ {
		truth := kernels.BruteForceKNN(ix.ivf.Vectors, queries.Row(b), p.K)
		sum += kernels.RecallAtK(found[b], truth)
	}
	return sum / float64(queries.Rows), nil
}

// QuantizationError reports the mean squared reconstruction error over a
// sample of the database — a direct measure of how much information the
// compression destroys.
func (ix *PQIndex) QuantizationError(sample int) float64 {
	n := ix.ivf.Vectors.Rows
	if sample > n {
		sample = n
	}
	var sum float64
	step := n / sample
	if step == 0 {
		step = 1
	}
	count := 0
	for i := 0; i < n; i += step {
		rec := ix.pq.Decode(ix.codes[i])
		sum += float64(kernels.SquaredL2(rec, ix.ivf.Vectors.Row(i)))
		count++
	}
	return sum / float64(count)
}
