package mem

import (
	"fmt"

	"repro/internal/sim"
)

// Request is one line-granularity memory access submitted to a Controller.
type Request struct {
	Addr   int64
	Write  bool
	Done   func(completed sim.Time)
	issued sim.Time
}

// Fire implements sim.Handler: the controller schedules the request itself
// as its completion event (no per-request closure), firing Done at the
// access's completion instant.
func (r *Request) Fire(eng *sim.Engine, _ uint64) { r.Done(eng.Now()) }

// Controller is an FR-FCFS (first-ready, first-come-first-served) memory
// controller with bounded read and write queues, matching the paper's
// Table II (64/64-entry read/write request queues). FR-FCFS prioritises
// requests that hit an open row, falling back to the oldest request.
//
// The request queues are shared-layer sim.Queues registered in the central
// stats registry as "<name>.rdq" / "<name>.wrq", so occupancy, queueing
// delay and stall counts surface uniformly in reports.
type Controller struct {
	eng   *sim.Engine
	name  string
	dimms []*DIMM

	readQ  *sim.Queue
	writeQ *sim.Queue

	busy bool

	// interleave maps request addresses to DIMMs. Cacheline interleaving
	// spreads consecutive lines across DIMMs (high aggregate bandwidth to
	// the chip); tile interleaving keeps large contiguous tiles on one
	// DIMM (what GAM programs for near-memory kernels, §III-B).
	interleave InterleavePolicy
	tileBytes  int64
	served     uint64
}

// InterleavePolicy selects how addresses map to DIMMs behind a controller.
type InterleavePolicy int

const (
	// InterleaveCacheline stripes consecutive cache lines across DIMMs.
	InterleaveCacheline InterleavePolicy = iota
	// InterleaveTile keeps tiles of tileBytes contiguous on one DIMM.
	InterleaveTile
)

func (p InterleavePolicy) String() string {
	switch p {
	case InterleaveCacheline:
		return "cacheline"
	case InterleaveTile:
		return "tile"
	default:
		return fmt.Sprintf("InterleavePolicy(%d)", int(p))
	}
}

// NewController builds a controller over the given DIMMs.
func NewController(eng *sim.Engine, name string, dimms []*DIMM, readQ, writeQ int) *Controller {
	if len(dimms) == 0 {
		panic("mem: controller needs at least one DIMM")
	}
	if readQ <= 0 || writeQ <= 0 {
		panic("mem: queue depths must be positive")
	}
	return &Controller{
		eng:        eng,
		name:       name,
		dimms:      dimms,
		readQ:      sim.NewQueue(eng, name+".rdq", readQ),
		writeQ:     sim.NewQueue(eng, name+".wrq", writeQ),
		interleave: InterleaveCacheline,
		tileBytes:  1 << 20,
	}
}

// SetInterleave reprograms the address mapping — the memory-space
// reorganisation GAM performs when near-memory kernels launch (§III-B).
// tileBytes is used only by InterleaveTile.
func (c *Controller) SetInterleave(p InterleavePolicy, tileBytes int64) {
	c.interleave = p
	if tileBytes > 0 {
		c.tileBytes = tileBytes
	}
}

// Interleave reports the current policy.
func (c *Controller) Interleave() InterleavePolicy { return c.interleave }

// dimmFor maps an address to its DIMM under the current policy.
func (c *Controller) dimmFor(addr int64) *DIMM {
	n := int64(len(c.dimms))
	switch c.interleave {
	case InterleaveTile:
		return c.dimms[(addr/c.tileBytes)%n]
	default:
		line := addr / c.dimms[0].geom.LineSize
		return c.dimms[line%n]
	}
}

// Submit enqueues a request. It reports false (and drops the request) when
// the corresponding queue is full — callers model back-pressure by retrying
// after a delay. Done fires at the request's completion time.
func (c *Controller) Submit(r *Request) bool {
	if r == nil {
		panic("mem: nil request")
	}
	q := c.readQ
	if r.Write {
		q = c.writeQ
	}
	r.issued = c.eng.Now()
	if !q.Offer(r) {
		return false
	}
	if !c.busy {
		c.busy = true
		c.eng.ScheduleCall(0, c, 0)
	}
	return true
}

// Fire implements sim.Handler: every controller event is an arbitration
// pass, so the controller itself is the (single, preallocated) handler.
func (c *Controller) Fire(*sim.Engine, uint64) { c.arbitrate() }

// arbitrate issues one request per invocation using FR-FCFS and
// re-schedules itself while work remains. Reads have priority over writes
// unless the write queue is above half occupancy (write drain), a common
// controller heuristic.
func (c *Controller) arbitrate() {
	r := c.pick()
	if r == nil {
		c.busy = false
		return
	}
	d := c.dimmFor(r.Addr)
	done := d.Access(r.Addr, r.Write)
	c.served++
	if r.Done != nil {
		c.eng.AtCall(done, r, 0)
	}
	// Issue the next request once this one's command slot is consumed.
	// Approximating the command bus as one issue per burst slot keeps
	// arbitration events bounded by request count.
	next := c.eng.Now() + d.timing.BurstTime()
	if done < next {
		next = done
	}
	c.eng.AtCall(next, c, 0)
}

// pick selects the next request: row-hit first (FR), then oldest (FCFS).
func (c *Controller) pick() *Request {
	drainWrites := c.writeQ.Len() > c.writeQ.Capacity()/2 || c.readQ.Len() == 0
	primary, secondary := c.readQ, c.writeQ
	if drainWrites && c.writeQ.Len() > 0 {
		primary, secondary = c.writeQ, c.readQ
	}
	for _, q := range []*sim.Queue{primary, secondary} {
		if q.Len() == 0 {
			continue
		}
		// First ready: earliest queued request whose row is open AND whose
		// bank is available no later than the oldest request's bank — a
		// row hit on a busy bank must not jump a ready oldest request.
		oldest := q.At(0).(*Request)
		oldestReady := c.dimmFor(oldest.Addr).bankReady(oldest.Addr)
		for i := 0; i < q.Len(); i++ {
			r := q.At(i).(*Request)
			d := c.dimmFor(r.Addr)
			bi, row := d.decode(r.Addr)
			if d.banks[bi].openRow == row && d.banks[bi].readyAt <= oldestReady {
				return q.RemoveAt(i).(*Request)
			}
		}
		// Fall back to the oldest.
		return q.RemoveAt(0).(*Request)
	}
	return nil
}

// QueueOccupancy reports current read/write queue lengths.
func (c *Controller) QueueOccupancy() (reads, writes int) {
	return c.readQ.Len(), c.writeQ.Len()
}

// Served reports completed requests.
func (c *Controller) Served() uint64 { return c.served }

// StallEvents reports how many submissions were rejected on full queues.
func (c *Controller) StallEvents() uint64 {
	return c.readQ.Stalls() + c.writeQ.Stalls()
}

// DIMMs exposes the controller's DIMMs (read-only use).
func (c *Controller) DIMMs() []*DIMM { return c.dimms }
