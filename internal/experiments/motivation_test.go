package experiments

import (
	"strings"
	"testing"
)

func TestMotivationCompressionCostsRecall(t *testing.T) {
	r, err := Motivation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(r.Rows))
	}
	exact := r.Rows[0]
	if exact.Recall < 0.85 {
		t.Errorf("exact-rerank recall = %.3f, want >= 0.85", exact.Recall)
	}
	// The PQ rows form a strictly-worsening chain (8B → 4B codes); the
	// binary-codes row is an independent family and only needs to show
	// the same trade-off against the exact baseline.
	prev := exact
	for _, row := range r.Rows[1:3] {
		if row.BytesVisited >= prev.BytesVisited {
			t.Errorf("%s visits %d bytes, not below %s's %d",
				row.Name, row.BytesVisited, prev.Name, prev.BytesVisited)
		}
		if row.Recall >= prev.Recall {
			t.Errorf("%s recall %.3f not below %s's %.3f",
				row.Name, row.Recall, prev.Name, prev.Recall)
		}
		if row.CompressionRatio < 10 {
			t.Errorf("%s compression = %.0fx, want orders of magnitude", row.Name, row.CompressionRatio)
		}
		prev = row
	}
	bin := r.Rows[3]
	if bin.Recall >= exact.Recall {
		t.Errorf("binary-codes recall %.3f not below exact %.3f", bin.Recall, exact.Recall)
	}
	if bin.CompressionRatio < 10 || bin.BytesVisited >= exact.BytesVisited {
		t.Errorf("binary-codes row not compressive: %+v", bin)
	}
	var sb strings.Builder
	if err := r.Table().Render(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "ReACH design point") {
		t.Error("table missing the design-point row")
	}
}
