package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/qtrace"
	"repro/internal/workload"
)

// TestAddJobsSurfacesErrorKeepsRest: an unfinished job mid-batch must not
// hide the finished jobs after it, and the first error must come back to
// the caller instead of being dropped.
func TestAddJobsSurfacesErrorKeepsRest(t *testing.T) {
	run, err := experiments.RunPipeline(workload.DefaultModel(), experiments.ReACHMapping(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	notDone := core.NewJob(99) // never submitted, so never done

	tl := NewTimeline()
	jobs := []*core.Job{run.Jobs[0], notDone, run.Jobs[1]}
	addErr := tl.AddJobs(jobs)
	if addErr == nil {
		t.Fatal("not-done job produced no error")
	}
	if !strings.Contains(addErr.Error(), "99") {
		t.Errorf("error %q does not name the offending job", addErr)
	}

	// Both completed jobs must still be in the timeline: compare against a
	// timeline built from only the good jobs.
	want := NewTimeline()
	if err := want.AddJobs([]*core.Job{run.Jobs[0], run.Jobs[1]}); err != nil {
		t.Fatal(err)
	}
	if tl.Events() != want.Events() {
		t.Fatalf("events after mid-batch error = %d, want %d (jobs dropped)",
			tl.Events(), want.Events())
	}
}

// TestAddCountersAndSpans: sampled runs merge into the timeline as "C"
// counter events and per-category span lanes.
func TestAddCountersAndSpans(t *testing.T) {
	spec := experiments.PipelineSpec("p", workload.DefaultModel(), experiments.ReACHMapping(), 2, 2)
	spec.Metrics = &metrics.Options{Spans: true}
	run, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline()
	if err := tl.AddJobs(run.Jobs); err != nil {
		t.Fatal(err)
	}
	before := tl.Events()
	tl.AddCounters(run.Obs.Sampler)
	if tl.Events() <= before {
		t.Fatal("AddCounters added no events")
	}
	if run.Obs.Spans.Len() == 0 {
		t.Fatal("pipeline run recorded no GAM spans")
	}
	mid := tl.Events()
	tl.AddSpans(run.Obs.Spans)
	if got := tl.Events() - mid; got != run.Obs.Spans.Len() {
		t.Fatalf("AddSpans added %d events, want %d", got, run.Obs.Spans.Len())
	}
	var sawDispatchLane bool
	for _, l := range tl.Lanes() {
		if l == metrics.CatDispatch {
			sawDispatchLane = true
		}
	}
	if !sawDispatchLane {
		t.Error("no dispatch span lane in timeline")
	}
}

// TestAddQueries: a traced run merges into the timeline as one lane per
// query, each carrying the end-to-end query slice (with its dominant
// attribution) plus every recorded phase interval.
func TestAddQueries(t *testing.T) {
	spec := experiments.PipelineSpec("p", workload.DefaultModel(), experiments.ReACHMapping(), 2, 3)
	spec.QTrace = &qtrace.Options{}
	run, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline()
	if err := tl.AddJobs(run.Jobs); err != nil {
		t.Fatal(err)
	}
	before := tl.Events()
	tl.AddQueries(run.QLog)
	wantEvents := 0
	for _, q := range run.QLog.Queries() {
		wantEvents += 1 + len(q.Intervals) // query slice + its intervals
	}
	if got := tl.Events() - before; got != wantEvents {
		t.Fatalf("AddQueries added %d events, want %d", got, wantEvents)
	}
	queryLanes := 0
	for _, l := range tl.Lanes() {
		if strings.HasPrefix(l, "query ") {
			queryLanes++
		}
	}
	if queryLanes != 3 {
		t.Fatalf("query lanes = %d, want 3", queryLanes)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"query 0"`, `"dominant"`, qtrace.PhaseQueue, qtrace.PhaseExec} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %q", want)
		}
	}
}
