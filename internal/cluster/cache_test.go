package cluster

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/qtrace"
	"repro/internal/sim"
)

// cachedConfig is the default deployment with the front-end cache on and a
// single-content universe, so every query after the first warm-up finds
// the cache populated — the sharpest setting for lifecycle assertions.
func cachedConfig() config.ClusterConfig {
	cfg := config.DefaultCluster()
	cfg.ContentItems = 1
	cfg.CacheEntries = 4
	cfg.CacheTTLMS = 10_000
	return cfg
}

// TestFECacheLRUEviction pins the eviction order: at capacity, filling a
// new content evicts the least-recently-used entry, and a lookup refreshes
// recency.
func TestFECacheLRUEviction(t *testing.T) {
	c := newFECache(2, sim.FromSeconds(1))
	c.fill(10, 0)
	c.fill(20, 1)
	// Touch 10 so 20 becomes the LRU entry.
	if hit, _ := c.lookup(10, 2); !hit {
		t.Fatal("content 10 missing right after fill")
	}
	c.fill(30, 3) // must evict 20
	if hit, _ := c.lookup(20, 4); hit {
		t.Fatal("content 20 survived eviction at capacity")
	}
	for _, want := range []int{10, 30} {
		if hit, _ := c.lookup(want, 4); !hit {
			t.Fatalf("content %d evicted, want 20 (the LRU entry) evicted", want)
		}
	}
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestFECacheTTLBoundary pins the freshness semantics: an entry is served
// up to — but not at — the TTL boundary. age == ttl is stale.
func TestFECacheTTLBoundary(t *testing.T) {
	ttl := sim.Time(100)
	c := newFECache(2, ttl)
	c.fill(7, 0)
	if hit, age := c.lookup(7, 99); !hit || age != 99 {
		t.Fatalf("lookup at age 99 = (%v, %d), want hit at age 99", hit, age)
	}
	c.fill(7, 0) // reset recency bookkeeping at the same fill time
	if hit, _ := c.lookup(7, 100); hit {
		t.Fatal("lookup exactly at the TTL boundary hit; age == ttl must be stale")
	}
	st := c.stats()
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	// The expired entry was removed: the next lookup is a plain miss.
	if hit, _ := c.lookup(7, 101); hit {
		t.Fatal("expired entry still resident")
	}
	if st := c.stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 after post-expiry lookup", st.Misses)
	}
}

// TestClusterCacheDisabled: CacheEntries == 0 builds no cache at all —
// the accessors report it off, empty and idle.
func TestClusterCacheDisabled(t *testing.T) {
	c := buildAndRun(t, config.DefaultCluster(), 8, sim.FromSeconds(1e-3))
	if c.CacheEnabled() {
		t.Fatal("CacheEnabled with CacheEntries == 0")
	}
	if st := c.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v, want zero", st)
	}
	if c.PeakPending() != 0 {
		t.Fatalf("disabled cache reported peak pending %d", c.PeakPending())
	}
}

// TestClusterCacheHitServes: with one content and a long TTL, every query
// after the first finds the merged result cached and completes from the
// front-end tier in exactly the configured hit latency, carrying a
// cache-hit interval in its timeline.
func TestClusterCacheHitServes(t *testing.T) {
	cfg := cachedConfig()
	const n = 8
	c := buildAndRun(t, cfg, n, sim.FromSeconds(1)) // gaps dwarf the scatter
	st := c.CacheStats()
	if st.Hits != n-1 || st.Misses != 1 || st.Lookups != n {
		t.Fatalf("cache stats %+v, want %d hits / 1 miss / %d lookups", st, n-1, n)
	}
	hitLat := sim.FromSeconds(cfg.CacheHitUS * 1e-6)
	for id := 1; id < n; id++ {
		q := c.QLog().Query(id)
		if q.Latency() != hitLat {
			t.Fatalf("hit query %d latency %v, want the hit latency %v", id, q.Latency(), hitLat)
		}
		if d := q.Dominant(); d.Phase != qtrace.PhaseCacheHit || len(q.Attribution) != 1 {
			t.Fatalf("hit query %d attribution %+v, want one %s interval", id, q.Attribution, qtrace.PhaseCacheHit)
		}
		if len(q.Intervals) != 1 || q.Intervals[0].Detail != detCacheHit {
			t.Fatalf("hit query %d intervals %+v, want one %q interval", id, q.Intervals, detCacheHit)
		}
	}
	if st.MeanServeAge <= 0 {
		t.Fatal("hits served but mean serve age is zero")
	}
}

// TestClusterCoalescedIdenticalResults: queries arriving while a scatter
// for their content is in flight attach to it and all complete together,
// the attach latency after the lead's merge — the backend saw exactly one
// scatter.
func TestClusterCoalescedIdenticalResults(t *testing.T) {
	cfg := cachedConfig()
	const n = 4
	c, err := New(cfg, testModel(), qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.SubmitAt(sim.Time(i) * sim.Microsecond) // all inside the lead's scatter
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.Coalesced != n-1 || st.Hits != 0 {
		t.Fatalf("cache stats %+v, want %d coalesced and 0 hits", st, n-1)
	}
	lead := c.QLog().Query(0)
	attach := sim.FromSeconds(cfg.CoalesceUS * 1e-6)
	for id := 1; id < n; id++ {
		q := c.QLog().Query(id)
		if q.Done != lead.Done+attach {
			t.Fatalf("coalesced query %d done at %v, want lead merge %v + attach %v",
				id, q.Done, lead.Done, attach)
		}
		if len(q.Intervals) != 1 || q.Intervals[0].Detail != detCoalesce {
			t.Fatalf("coalesced query %d intervals %+v, want one %q interval", id, q.Intervals, detCoalesce)
		}
	}
	if c.PeakPending() != 1 {
		t.Fatalf("peak pending %d, want 1 (one content in flight)", c.PeakPending())
	}
}

// TestClusterCacheExpiredRefetch: a query arriving past the TTL finds the
// entry stale, counts as expired, and scatters like a cold miss.
func TestClusterCacheExpiredRefetch(t *testing.T) {
	cfg := cachedConfig()
	cfg.CacheTTLMS = 1 // expires long before the second arrival
	c, err := New(cfg, testModel(), qtrace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.SubmitAt(0)
	c.SubmitAt(sim.FromSeconds(2))
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.CacheStats()
	if st.Expired != 1 || st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 expired / 0 hits / 1 miss", st)
	}
	// Both queries scattered: neither completed at the short hit latency.
	hitLat := sim.FromSeconds(cfg.CacheHitUS * 1e-6)
	for id := 0; id < 2; id++ {
		if lat := c.QLog().Query(id).Latency(); lat <= hitLat {
			t.Fatalf("query %d latency %v at or below the hit latency — served from a stale cache?", id, lat)
		}
	}
}

// TestClusterCacheResourceRegistered: the enabled cache joins the shared
// stats registry as a cache-kind resource whose utilization is the hit
// rate.
func TestClusterCacheResourceRegistered(t *testing.T) {
	c := buildAndRun(t, cachedConfig(), 8, sim.FromSeconds(1))
	res, ok := c.Engine().Stats().Lookup("cluster.fe.cache")
	if !ok {
		t.Fatal("cluster.fe.cache missing from the stats registry")
	}
	rs := res.ResourceStats()
	st := c.CacheStats()
	if rs.Kind != sim.KindCache {
		t.Fatalf("registered kind %q, want %q", rs.Kind, sim.KindCache)
	}
	if rs.Ops != st.Lookups || rs.Stalls != st.Misses+st.Expired {
		t.Fatalf("resource stats %+v disagree with cache stats %+v", rs, st)
	}
	if rs.Utilization != st.HitRate || rs.Occupancy != 1 || rs.MaxOccupancy != 1 {
		t.Fatalf("resource stats %+v, want hit-rate utilization and one resident entry", rs)
	}
}

// TestClusterCacheParallelDomainsInvariant extends the tentpole's
// determinism bar to the cache-on path: the cache and singleflight state
// live in the front-end domain and are consulted in arrival order, so
// identical configs differing only in ParallelDomains produce
// byte-identical snapshots, latencies and cache counters.
func TestClusterCacheParallelDomainsInvariant(t *testing.T) {
	snap := func(pj int) (string, string, CacheStats) {
		cfg := config.DefaultCluster()
		cfg.CacheEntries = 8
		cfg.ParallelDomains = pj
		c := buildAndRun(t, cfg, 24, sim.FromSeconds(5e-4))
		var b bytes.Buffer
		for _, n := range c.Nodes() {
			if err := n.WriteSnapshot(&b); err != nil {
				t.Fatal(err)
			}
		}
		sk := c.QLog().Sketch()
		lat := sk.Quantile(0.5).String() + "/" + sk.Quantile(0.99).String()
		return b.String(), lat, c.CacheStats()
	}
	s1, l1, cs1 := snap(1)
	if cs1.Hits+cs1.Coalesced == 0 {
		t.Fatal("cache-on invariance run exercised neither hits nor coalescing")
	}
	for _, pj := range []int{4, 8} {
		s, l, cs := snap(pj)
		if s != s1 {
			t.Fatalf("ParallelDomains=%d produced different node snapshots than serial", pj)
		}
		if l != l1 {
			t.Fatalf("ParallelDomains=%d latencies %s diverged from serial %s", pj, l, l1)
		}
		if cs != cs1 {
			t.Fatalf("ParallelDomains=%d cache stats %+v diverged from serial %+v", pj, cs, cs1)
		}
	}
}
