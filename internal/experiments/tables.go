package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/fpga"
	"repro/internal/report"
	"repro/internal/workload"
)

// TableI renders the paper's Table I from the workload model.
func TableI(m workload.Model) *report.Table {
	t := &report.Table{
		Title:   "Table I — memory and compute requirements per CBIR stage",
		Columns: []string{"Stage", "Memory requirement", "Computation requirement"},
	}
	for _, row := range workload.TableI(m) {
		t.AddRow(row.Stage, row.MemoryNote, row.Compute+" — "+row.ComputeNote)
	}
	return t
}

// TableII renders the experimental system configuration.
func TableII(cfg config.SystemConfig) *report.Table {
	t := &report.Table{
		Title:   "Table II — experimental setup of the compute hierarchy system",
		Columns: []string{"Component", "Parameters"},
	}
	t.AddRow("CPU", fmt.Sprintf("1 x86-64 OoO core @ %.0f GHz, %d-wide issue, %dKB L1, %dMB shared L2",
		cfg.CPU.FreqMHz/1000, cfg.CPU.IssueWidth, cfg.CPU.L1Bytes/1024, cfg.CPU.SharedL2/(1<<20)))
	t.AddRow("Memory Controller", fmt.Sprintf("%d MCs, %d/%d-entry read/write request queue, FR-FCFS",
		cfg.Memory.Controllers, cfg.Memory.ReadQueueDepth, cfg.Memory.WriteQueueDepth))
	t.AddRow("Memory System", fmt.Sprintf("%d DDR4 DIMMs, %d for near-memory accelerators and %d for on-chip accelerator",
		cfg.Memory.HostDIMMs+cfg.Memory.NearMemDIMMs, cfg.Memory.NearMemDIMMs, cfg.Memory.HostDIMMs))
	t.AddRow("Storage System", fmt.Sprintf("%d NVMe SSD attached with PCIe gen3x16", cfg.Storage.SSDs))
	t.AddRow("On-chip Accelerator", fmt.Sprintf("Virtex UltraScale+, %.0f GB/s to shared cache", cfg.OnChip.NoCGBps))
	t.AddRow("Near-Memory Accelerator", fmt.Sprintf("Zynq UltraScale+, %.0f GB/s bandwidth to DDR4", cfg.Memory.NearMemGBps))
	t.AddRow("Near-Storage Accelerator", fmt.Sprintf("Zynq UltraScale+ with %dGB DRAM, %.0f GB/s effective bandwidth to NVMe SSD",
		cfg.Storage.NSBufferBytes/(1<<30), cfg.Storage.DeviceGBps))
	return t
}

// TableIII renders the FPGA kernel table (utilisation, frequency, power)
// plus this reproduction's calibrated throughput columns.
func TableIII() *report.Table {
	t := &report.Table{
		Title: "Table III — FPGA utilisation, frequency and power per kernel",
		Columns: []string{"FPGA", "Kernel", "Util (ff,lut,dsp,bram)", "Freq",
			"Power (W)", "MACs/cyc", "Stream B/cyc"},
	}
	for _, k := range fpga.TableIII() {
		power := report.F(k.PowerW, 2)
		if k.PowerNSW > 0 {
			power = fmt.Sprintf("%v/%v", k.PowerW, k.PowerNSW)
		}
		t.AddRow(
			k.Device.Name,
			k.Class.String(),
			fmt.Sprintf("(%.0f%%,%.0f%%,%.0f%%,%.0f%%)", k.Util.FF, k.Util.LUT, k.Util.DSP, k.Util.BRAM),
			fmt.Sprintf("%.0f MHz", k.FreqMHz),
			power,
			report.F(k.MACsPerCycle, 0),
			report.F(k.StreamBytesPerCycle, 0),
		)
	}
	t.AddNote("utilisation/frequency/power are the paper's published values; MACs/cyc and stream B/cyc are this reproduction's calibration (DESIGN.md)")
	return t
}

// TableIV renders the energy-model constants standing in for the paper's
// tool chain.
func TableIV(costs energy.Costs) *report.Table {
	t := &report.Table{
		Title:   "Table IV — energy model (paper tools → calibrated constants)",
		Columns: []string{"Component", "Paper reference", "This reproduction"},
	}
	t.AddRow("FPGA Accelerators", "Xilinx SDAccel 2019.1 + XPE power calculator",
		"Table III kernel power × busy time")
	t.AddRow("Cache", "CACTI 6.5",
		fmt.Sprintf("%.2f nJ/B per access", costs.CachePerByte*1e9))
	t.AddRow("DRAM", "Micron DDR4 power calculator",
		fmt.Sprintf("%.2f nJ/B per traversal + %.2f W/DIMM background", costs.DRAMPerByte*1e9, costs.DRAMBackgroundWPerDIMM))
	t.AddRow("Storage", "NVMe SSDs (Seagate Nytro) with PCIe Gen3x16",
		fmt.Sprintf("%.2f nJ/B read + %.2f W/device idle", costs.SSDPerByte*1e9, costs.SSDIdleW))
	t.AddRow("Interconnect", "PCIe switch + links, memory channels",
		fmt.Sprintf("PCIe %.2f nJ/B, MC/interconnect %.2f nJ/B, AIMbus %.2f nJ/B",
			costs.PCIePerByte*1e9, costs.MCPerByte*1e9, costs.AIMBusPerByte*1e9))
	return t
}
