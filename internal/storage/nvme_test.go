package storage

import (
	"testing"

	"repro/internal/sim"
)

func TestQueuePairValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := DefaultQueuePairConfig()
	bad.Depth = 0
	if _, err := NewQueuePair(eng, "qp0", bad); err == nil {
		t.Error("depth 0 accepted")
	}
	bad = DefaultQueuePairConfig()
	bad.LinkBytesPerSec = 0
	if _, err := NewQueuePair(eng, "qp0", bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

// The micro-model must reproduce the package's bulk constants: with deep
// queues and large sequential commands, the effective host bandwidth lands
// near the 12 GB/s (0.75 × raw) used throughout; small scattered commands
// land substantially lower — the basis of the gather derating.
func TestQueuePairJustifiesBulkEfficiencies(t *testing.T) {
	run := func(depth int, cmdBytes int64, commands int) float64 {
		eng := sim.NewEngine()
		cfg := DefaultQueuePairConfig()
		cfg.Depth = depth
		qp, err := NewQueuePair(eng, "qp0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		qp.RunReads(commands, cmdBytes)
		return qp.EffectiveBandwidth()
	}

	// Large sequential reads (1 MiB) at QD32.
	seq := run(32, 1<<20, 400)
	if seq < 10e9 || seq > 16e9 {
		t.Errorf("sequential QD32 bandwidth = %.1f GB/s, want ~12 (0.75 of raw)", seq/1e9)
	}
	// 64 KiB gather stripes at QD32: meaningfully lower than sequential.
	gather := run(32, 64<<10, 4000)
	if gather >= seq {
		t.Errorf("gather bandwidth (%.1f GB/s) not below sequential (%.1f GB/s)", gather/1e9, seq/1e9)
	}
	ratio := gather / seq
	if ratio < 0.4 || ratio > 0.95 {
		t.Errorf("gather/sequential = %.2f, want in [0.4, 0.95] (config uses 0.75)", ratio)
	}
	// 4 KiB random reads: far below link speed — per-command overheads
	// dominate.
	small := run(32, 4<<10, 8000)
	if small > 0.5*seq {
		t.Errorf("4K read bandwidth = %.1f GB/s, should collapse vs %.1f", small/1e9, seq/1e9)
	}
}

func TestQueueDepthScaling(t *testing.T) {
	run := func(depth int) float64 {
		eng := sim.NewEngine()
		cfg := DefaultQueuePairConfig()
		cfg.Depth = depth
		qp, _ := NewQueuePair(eng, "qp0", cfg)
		qp.RunReads(500, 128<<10)
		return qp.EffectiveBandwidth()
	}
	qd1, qd8, qd32 := run(1), run(8), run(32)
	if qd8 <= qd1 {
		t.Errorf("QD8 (%.1f GB/s) not above QD1 (%.1f GB/s)", qd8/1e9, qd1/1e9)
	}
	if qd32 < qd8 {
		t.Errorf("QD32 (%.1f GB/s) below QD8 (%.1f GB/s)", qd32/1e9, qd8/1e9)
	}
	// QD1 serialises command latency with transfers: must be a small
	// fraction of the link.
	if qd1 > 8e9 {
		t.Errorf("QD1 bandwidth = %.1f GB/s, should be latency-bound", qd1/1e9)
	}
}

func TestQueuePairAccounting(t *testing.T) {
	eng := sim.NewEngine()
	qp, _ := NewQueuePair(eng, "qp0", DefaultQueuePairConfig())
	if qp.EffectiveBandwidth() != 0 {
		t.Error("bandwidth before any command not 0")
	}
	done := qp.RunReads(10, 4096)
	if done <= 0 {
		t.Error("no time elapsed")
	}
	if qp.Completed() != 10 {
		t.Errorf("completed = %d, want 10", qp.Completed())
	}
	if d := qp.RunReads(0, 4096); d != eng.Now() {
		t.Error("zero commands took time")
	}
}
