package experiments

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// StageResult is one cell of the Figs. 9-11 sweeps.
type StageResult struct {
	Level     accel.Level
	Instances int
	Runtime   sim.Time
	EnergyJ   float64
}

// RunStage executes a single pipeline stage in isolation at one level with
// n instances and reports its runtime and energy (background included over
// the stage runtime).
func RunStage(stage string, l accel.Level, n int, m workload.Model) (*StageResult, error) {
	var cfg config.SystemConfig
	switch l {
	case accel.OnChip:
		cfg = config.Default().WithInstances(1, 0, 0)
	case accel.NearMemory:
		cfg = config.Default().WithInstances(0, n, 0)
	case accel.NearStorage:
		cfg = config.Default().WithInstances(0, 0, n)
	default:
		return nil, fmt.Errorf("experiments: cannot run a stage on %v", l)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	j := core.NewJob(0)
	if _, err := addStage(sys, j, stage, l, m, nil); err != nil {
		return nil, err
	}
	if err := sys.GAM().Submit(j); err != nil {
		return nil, err
	}
	sys.Run()
	if !j.Done() {
		return nil, fmt.Errorf("experiments: stage %s at %v did not complete", stage, l)
	}
	sys.Background(stage, j.Latency())
	return &StageResult{
		Level:     l,
		Instances: n,
		Runtime:   j.Latency(),
		EnergyJ:   sys.Meter().Total(),
	}, nil
}

// StageSweep holds a Figs. 9-11 style sweep: near-memory and near-storage
// results over instance counts, normalised to the single on-chip
// accelerator.
type StageSweep struct {
	Stage    string
	Counts   []int
	OnChip   *StageResult
	NearMem  map[int]*StageResult
	NearStor map[int]*StageResult
}

// NormRuntime reports runtime(level, n) / runtime(on-chip).
func (s *StageSweep) NormRuntime(l accel.Level, n int) float64 {
	r := s.result(l, n)
	if r == nil || s.OnChip.Runtime == 0 {
		return 0
	}
	return float64(r.Runtime) / float64(s.OnChip.Runtime)
}

// NormEnergy reports energy(level, n) / energy(on-chip).
func (s *StageSweep) NormEnergy(l accel.Level, n int) float64 {
	r := s.result(l, n)
	if r == nil || s.OnChip.EnergyJ == 0 {
		return 0
	}
	return r.EnergyJ / s.OnChip.EnergyJ
}

func (s *StageSweep) result(l accel.Level, n int) *StageResult {
	switch l {
	case accel.NearMemory:
		return s.NearMem[n]
	case accel.NearStorage:
		return s.NearStor[n]
	default:
		return s.OnChip
	}
}

// SweepCounts is the instance axis of Figs. 9-11.
func SweepCounts() []int { return []int{1, 2, 4, 8, 16} }

// RunStageSweep produces the data behind one of Figs. 9-11.
func RunStageSweep(stage string, m workload.Model) (*StageSweep, error) {
	sweep := &StageSweep{
		Stage:    stage,
		Counts:   SweepCounts(),
		NearMem:  make(map[int]*StageResult),
		NearStor: make(map[int]*StageResult),
	}
	onchip, err := RunStage(stage, accel.OnChip, 1, m)
	if err != nil {
		return nil, err
	}
	sweep.OnChip = onchip
	for _, n := range sweep.Counts {
		nm, err := RunStage(stage, accel.NearMemory, n, m)
		if err != nil {
			return nil, err
		}
		sweep.NearMem[n] = nm
		ns, err := RunStage(stage, accel.NearStorage, n, m)
		if err != nil {
			return nil, err
		}
		sweep.NearStor[n] = ns
	}
	return sweep, nil
}

// Table renders the sweep in the layout of Figs. 9-11: one row per
// instance count, normalised runtime and energy for both levels.
func (s *StageSweep) Table(figure string) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("%s — %s runtime/energy vs on-chip (normalised)", figure, s.Stage),
		Columns: []string{"ACCs", "NearMem runtime", "NearMem energy",
			"NearStor runtime", "NearStor energy"},
	}
	for _, n := range s.Counts {
		t.AddRow(
			fmt.Sprintf("%d", n),
			report.F(s.NormRuntime(accel.NearMemory, n), 2),
			report.F(s.NormEnergy(accel.NearMemory, n), 2),
			report.F(s.NormRuntime(accel.NearStorage, n), 2),
			report.F(s.NormEnergy(accel.NearStorage, n), 2),
		)
	}
	t.AddNote("on-chip baseline: %.1f ms, %.2f J (normalised to 1.0)",
		s.OnChip.Runtime.Milliseconds(), s.OnChip.EnergyJ)
	return t
}

// Fig9 reproduces the feature-extraction sweep.
func Fig9(m workload.Model) (*StageSweep, error) { return RunStageSweep(StageFE, m) }

// Fig10 reproduces the shortlist-retrieval sweep.
func Fig10(m workload.Model) (*StageSweep, error) { return RunStageSweep(StageSL, m) }

// Fig11 reproduces the rerank sweep.
func Fig11(m workload.Model) (*StageSweep, error) { return RunStageSweep(StageRR, m) }
