package main

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsSmokeArtifacts validates the files `make metrics-smoke`
// produced: the CSV time-series schema, the Chrome-trace JSON (counters
// and GAM spans present), and the bottleneck-attribution report. Skipped
// unless METRICS_SMOKE_DIR points at the smoke output directory.
func TestMetricsSmokeArtifacts(t *testing.T) {
	dir := os.Getenv("METRICS_SMOKE_DIR")
	if dir == "" {
		t.Skip("METRICS_SMOKE_DIR not set; run via `make metrics-smoke`")
	}

	t.Run("csv-schema", func(t *testing.T) {
		f, err := os.Open(filepath.Join(dir, "metrics.csv"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		r := csv.NewReader(f)
		header, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		want := metrics.CSVHeader()
		if strings.Join(header, ",") != strings.Join(want, ",") {
			t.Fatalf("CSV header %v, want %v", header, want)
		}
		rows := 0
		lastTime := map[string]float64{} // per run: time_us must be non-decreasing
		for {
			row, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("row %d: %v", rows, err)
			}
			rows++
			ts, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatalf("row %d bad time_us %q", rows, row[2])
			}
			if prev, ok := lastTime[row[0]]; ok && ts < prev {
				t.Fatalf("row %d: time_us went backwards within run %s", rows, row[0])
			}
			lastTime[row[0]] = ts
			for _, col := range []int{5, 6, 7, 10} { // occupancy/ops/bytes/stalls
				if _, err := strconv.ParseUint(row[col], 10, 64); err != nil {
					t.Fatalf("row %d col %d not an integer: %q", rows, col, row[col])
				}
			}
		}
		if rows == 0 {
			t.Fatal("CSV has no data rows")
		}
		if len(lastTime) < 2 {
			t.Fatalf("expected multiple sampled runs, got %d", len(lastTime))
		}
	})

	t.Run("trace-json", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal(raw, &events); err != nil {
			t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
		}
		var counters, spans, slices int
		for _, e := range events {
			switch e["ph"] {
			case "C":
				counters++
			case "X":
				slices++
				if cat, _ := e["cat"].(string); strings.HasPrefix(cat, "gam.") {
					spans++
				}
			}
		}
		if counters == 0 || spans == 0 || slices == 0 {
			t.Fatalf("trace missing event classes: %d counters, %d gam spans, %d slices",
				counters, spans, slices)
		}
	})

	t.Run("bottleneck-report", func(t *testing.T) {
		raw, err := os.ReadFile(filepath.Join(dir, "report.txt"))
		if err != nil {
			t.Fatal(err)
		}
		out := string(raw)
		if !strings.Contains(out, "Bottleneck attribution") {
			t.Fatal("report has no bottleneck-attribution tables")
		}
		if !strings.Contains(out, "crit_path") {
			t.Fatal("bottleneck table missing critical-path column")
		}
	})
}
