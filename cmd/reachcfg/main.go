// Command reachcfg validates and prints ReACH system configurations, and
// checks that a set of kernel templates fits the FPGA at each compute
// level — the static half of the ReACH configuration step (paper Fig. 6).
//
// Usage:
//
//	reachcfg -print                  # dump the Table II defaults as JSON
//	reachcfg -check sys.json         # validate a config file
//	reachcfg -fit CNN-VU9P,GEMM-VU9P # can these share one device?
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/fpga"
)

func main() {
	var (
		printDefault = flag.Bool("print", false, "print the default (Table II) configuration as JSON")
		check        = flag.String("check", "", "validate a configuration JSON file")
		fit          = flag.String("fit", "", "comma-separated template names to co-locate on one device")
	)
	flag.Parse()

	switch {
	case *printDefault:
		if err := config.Default().Save("/dev/stdout"); err != nil {
			fatal(err)
		}
	case *check != "":
		cfg, err := config.Load(*check)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid (%d on-chip, %d near-memory, %d near-storage accelerators)\n",
			*check, cfg.Instances.OnChip, cfg.Instances.NearMemory, cfg.Instances.NearStorage)
	case *fit != "":
		if err := checkFit(strings.Split(*fit, ",")); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func checkFit(names []string) error {
	reg := fpga.NewRegistry()
	var total fpga.Utilization
	var dev *fpga.Device
	for _, raw := range names {
		name := strings.TrimSpace(raw)
		t, err := reg.Lookup(name)
		if err != nil {
			return err
		}
		if dev == nil {
			dev = t.Device
		} else if dev != t.Device {
			return fmt.Errorf("templates target different devices (%s vs %s)", dev.Name, t.Device.Name)
		}
		total = total.Add(t.Util)
	}
	if dev == nil {
		return fmt.Errorf("no templates given")
	}
	fmt.Printf("device %s combined utilisation: ff=%.0f%% lut=%.0f%% dsp=%.0f%% bram=%.0f%%\n",
		dev.Name, total.FF, total.LUT, total.DSP, total.BRAM)
	if total.Fits() {
		fmt.Println("fits: yes — kernels can be co-resident (no reconfiguration needed)")
	} else {
		fmt.Println("fits: no — partial reconfiguration required between kernels")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reachcfg:", err)
	os.Exit(1)
}
