package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/sim"
)

// NodeState tracks a task node through the GAM.
type NodeState int

const (
	// NodePending: dependencies outstanding.
	NodePending NodeState = iota
	// NodeReady: in the scheduling queue.
	NodeReady
	// NodeRunning: dispatched to a device.
	NodeRunning
	// NodeDone: completed and outputs forwarded.
	NodeDone
)

func (s NodeState) String() string {
	switch s {
	case NodePending:
		return "pending"
	case NodeReady:
		return "ready"
	case NodeRunning:
		return "running"
	case NodeDone:
		return "done"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// TaskNode is one schedulable task within a job: an accelerator task spec,
// its target compute level, and its dependencies. All nodes of a job share
// the job's software thread (the paper's task group).
type TaskNode struct {
	Spec  accel.Task
	Level accel.Level
	// Pin >= 0 forces a specific instance index at the level; -1 lets GAM
	// pick any idle instance.
	Pin int
	// OutBytes is the payload DMAed to each dependent on completion (a
	// stream enqueue). The transfer is charged once per dependent
	// (broadcast/collect duplication, §III-B).
	OutBytes int64
	// NotBefore delays dispatch until the given simulated time — used for
	// tasks whose host-side input (a CPU→level stream enqueue) is still in
	// flight.
	NotBefore sim.Time
	// SinkToHost marks a terminal node whose OutBytes are collected back
	// to the CPU before the job can complete (a Collect stream ending at
	// the host).
	SinkToHost bool

	job        *Job
	deps       int
	dependents []*TaskNode
	state      NodeState

	// Event-dispatch state, filled in by the GAM so the node can serve as
	// its own preallocated sim.Handler (no per-event closures): the owning
	// GAM, the device the node was dispatched to, and the wait estimate the
	// device returned at dispatch time.
	gam      *GAM
	acc      accel.Accelerator
	estimate sim.Time

	// blockCause remembers why the latest dispatch pass skipped this ready
	// node — the cause tag the eventual dispatch span and query-trace queue
	// interval carry. Only written when span or query instrumentation is
	// enabled.
	blockCause string

	// Timeline, filled in by the GAM.
	ReadyAt      sim.Time
	DispatchedAt sim.Time
	CompletedAt  sim.Time // device-side completion
	DetectedAt   sim.Time // GAM learns of completion (poll / interrupt)
	Instance     string   // device the task ran on
	Polls        int      // status packets it took to observe completion
}

// State reports the node's scheduling state.
func (n *TaskNode) State() NodeState { return n.state }

// Job is one request from the host application (one query batch in the
// case study): a DAG of task nodes the GAM decomposes and schedules.
type Job struct {
	ID    int
	Nodes []*TaskNode
	// QueryID is the GAM-assigned end-to-end tracing identity: monotonic per
	// GAM in submission order, set by Submit whether or not a query log is
	// attached. Unlike ID (caller-chosen, possibly reused across experiment
	// repetitions) it is unique within a system's lifetime.
	QueryID int
	// Priority orders dispatch between jobs contending for the same
	// level: higher first, ties by submission order. The knob behind
	// §III's "allow GAM to balance the hardware resources during
	// runtime" in multi-tenant deployments.
	Priority int

	remaining int
	// SubmittedAt/FinishedAt bound the job's latency.
	SubmittedAt sim.Time
	FinishedAt  sim.Time
	done        bool
	onDone      func(*Job)
	gam         *GAM // owning GAM, set at Submit; the job is its own completion-event handler
}

// NewJob creates an empty job.
func NewJob(id int) *Job {
	return &Job{ID: id}
}

// AddTask appends a node with dependencies on the given prior nodes (all
// must belong to this job).
func (j *Job) AddTask(spec accel.Task, level accel.Level, deps ...*TaskNode) *TaskNode {
	n := &TaskNode{
		Spec:  spec,
		Level: level,
		Pin:   -1,
		job:   j,
	}
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.job != j {
			panic("core: cross-job dependency")
		}
		d.dependents = append(d.dependents, n)
		n.deps++
	}
	j.Nodes = append(j.Nodes, n)
	j.remaining++
	return n
}

// Done reports whether every node completed.
func (j *Job) Done() bool { return j.done }

// Latency reports submission-to-finish time (zero before completion).
func (j *Job) Latency() sim.Time {
	if !j.done {
		return 0
	}
	return j.FinishedAt - j.SubmittedAt
}

// FirstDispatch reports the earliest task dispatch of the job — the
// instant it left the GAM's scheduling queues and first touched
// hardware. The gap from SubmittedAt is pure queue wait, which is what
// the cluster's straggler attribution charges to "queue". Returns
// (0, false) while no task has been dispatched yet.
func (j *Job) FirstDispatch() (sim.Time, bool) {
	var first sim.Time
	seen := false
	for _, n := range j.Nodes {
		if n.state != NodeRunning && n.state != NodeDone {
			continue
		}
		if !seen || n.DispatchedAt < first {
			first = n.DispatchedAt
			seen = true
		}
	}
	return first, seen
}

// CriticalPath decomposes the finished job's latency along the chain of
// task nodes that determined its finish time: starting from the
// last-detected node and walking back through each node's last-finishing
// dependency. Per chain node, ready-to-dispatch time is charged to queue
// and dispatch-to-detection to exec; everything between segments
// (dependency DMA, the terminal host collect) lands in xfer. The three
// always tile the job exactly: queue+exec+xfer == Latency(). This is the
// honest queue-wait metric for multi-task jobs — FirstDispatch misses
// contention on every node after the first, which under saturation is
// where almost all of the waiting happens. Zero-valued before completion.
func (j *Job) CriticalPath() (queue, exec, xfer sim.Time) {
	if !j.done {
		return
	}
	var n *TaskNode
	for _, c := range j.Nodes {
		if n == nil || c.DetectedAt > n.DetectedAt {
			n = c
		}
	}
	end := j.FinishedAt
	for n != nil {
		xfer += end - n.DetectedAt
		queue += n.DispatchedAt - n.ReadyAt
		exec += n.DetectedAt - n.DispatchedAt
		end = n.ReadyAt
		// The chain predecessor is the dependency detected last — the one
		// whose output delivery released this node into the ready queue.
		var pred *TaskNode
		for _, c := range j.Nodes {
			if c == n {
				continue
			}
			for _, d := range c.dependents {
				if d == n && (pred == nil || c.DetectedAt > pred.DetectedAt) {
					pred = c
				}
			}
		}
		if pred == nil {
			xfer += end - j.SubmittedAt
		}
		n = pred
	}
	return
}

// OnDone registers a completion callback (fired at finish time).
func (j *Job) OnDone(fn func(*Job)) { j.onDone = fn }

// Validate checks the job is non-empty and acyclic (DAG check via Kahn's
// algorithm over the declared dependencies).
func (j *Job) Validate() error {
	if len(j.Nodes) == 0 {
		return fmt.Errorf("core: job %d has no tasks", j.ID)
	}
	indeg := make(map[*TaskNode]int, len(j.Nodes))
	for _, n := range j.Nodes {
		if err := n.Spec.Validate(); err != nil {
			return fmt.Errorf("core: job %d: %w", j.ID, err)
		}
		indeg[n] = n.deps
	}
	var queue []*TaskNode
	for _, n := range j.Nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range n.dependents {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(j.Nodes) {
		return fmt.Errorf("core: job %d dependency graph has a cycle", j.ID)
	}
	return nil
}
