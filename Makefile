# Development workflow for the ReACH reproduction.
#
#   make check       — everything CI runs: formatting, build, vet, race tests
#   make test        — fast tier-1 gate (what ROADMAP.md calls the verify step)
#   make bench       — root + sim benchmarks with allocation stats
#   make bench-smoke — 1x pass over every benchmark, so benchmark code
#                      compiles and runs in CI without paying full benchtime
#   make metrics-smoke — end-to-end observability check: run reachsim with
#                      -metrics/-spans/-trace and validate the CSV schema,
#                      the Chrome-trace JSON and the bottleneck report

GO ?= go
SMOKE_DIR := metrics-smoke-out

.PHONY: check fmt-check build vet test race bench bench-smoke metrics-smoke

check: fmt-check build vet race

# gofmt -l prints offending files; any output fails the target.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' . ./internal/sim/

bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./internal/sim/
	$(GO) test -bench BenchmarkFullEvaluation -benchtime 1x -run '^$$' .

# End-to-end observability smoke: a sampled experiment sweep (CSV dump +
# bottleneck tables) and an instrumented trace (counter lanes + GAM spans),
# then schema/JSON validation via the env-gated test in cmd/reachsim.
metrics-smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/reachsim -exp fig9 -metrics $(SMOKE_DIR)/metrics.csv \
		-metrics-interval 200us -spans > $(SMOKE_DIR)/report.txt
	$(GO) run ./cmd/reachsim -trace $(SMOKE_DIR)/trace.json -spans \
		-metrics-interval 500us
	METRICS_SMOKE_DIR=$$PWD/$(SMOKE_DIR) $(GO) test -run TestMetricsSmokeArtifacts -v ./cmd/reachsim/
