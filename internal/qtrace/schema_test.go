package qtrace

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"
)

// phaseConstants parses qtrace.go and returns the string value of every
// Phase* constant — the authoritative list the exporter docs must track.
func phaseConstants(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "qtrace.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Phase") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("%s: %v", name.Name, err)
				}
				phases[name.Name] = v
			}
		}
	}
	if len(phases) < 6 {
		t.Fatalf("parsed only %d Phase constants: %v", len(phases), phases)
	}
	return phases
}

// TestPhaseConstantsDocumented pins the exporter schema docs to the Phase
// constants: adding a new Phase* without documenting its CSV/JSONL value
// in export.go and EXPERIMENTS.md fails here, which is the point — the
// cluster phases went undocumented for two PRs before this gate existed.
func TestPhaseConstantsDocumented(t *testing.T) {
	phases := phaseConstants(t)
	for _, doc := range []string{"export.go", "../../EXPERIMENTS.md"} {
		src, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		for name, value := range phases {
			if !strings.Contains(text, `"`+value+`"`) {
				t.Errorf("%s: phase constant %s (value %q) is not documented", doc, name, value)
			}
		}
	}
}

// TestClusterStagesDocumented extends the same gate to the cluster stage
// labels that appear in the stage column since PR 6.
func TestClusterStagesDocumented(t *testing.T) {
	for _, doc := range []string{"export.go", "../../EXPERIMENTS.md"} {
		src, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, stage := range []string{"FeatureExtraction", "ShortlistRetrieval", "Rerank", "fe-cache", "fe-coalesce"} {
			if !strings.Contains(string(src), stage) {
				t.Errorf("%s: cluster label %q is not documented", doc, stage)
			}
		}
	}
}
