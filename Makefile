# Development workflow for the ReACH reproduction.
#
#   make check       — everything CI runs: formatting, build, vet, race tests
#   make test        — fast tier-1 gate (what ROADMAP.md calls the verify step)
#   make bench       — root + sim benchmarks with allocation stats
#   make bench-smoke — 1x pass over every benchmark, so benchmark code
#                      compiles and runs in CI without paying full benchtime

GO ?= go

.PHONY: check fmt-check build vet test race bench bench-smoke

check: fmt-check build vet race

# gofmt -l prints offending files; any output fails the target.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' . ./internal/sim/

bench-smoke:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' ./internal/sim/
	$(GO) test -bench BenchmarkFullEvaluation -benchtime 1x -run '^$$' .
