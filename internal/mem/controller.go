package mem

import (
	"fmt"

	"repro/internal/sim"
)

// Request is one line-granularity memory access submitted to a Controller.
type Request struct {
	Addr   int64
	Write  bool
	Done   func(completed sim.Time)
	issued sim.Time
}

// Controller is an FR-FCFS (first-ready, first-come-first-served) memory
// controller with bounded read and write queues, matching the paper's
// Table II (64/64-entry read/write request queues). FR-FCFS prioritises
// requests that hit an open row, falling back to the oldest request.
type Controller struct {
	eng   *sim.Engine
	name  string
	dimms []*DIMM

	readQ  []*Request
	writeQ []*Request
	readQDepth,
	writeQDepth int

	busy bool

	// interleave maps request addresses to DIMMs. Cacheline interleaving
	// spreads consecutive lines across DIMMs (high aggregate bandwidth to
	// the chip); tile interleaving keeps large contiguous tiles on one
	// DIMM (what GAM programs for near-memory kernels, §III-B).
	interleave  InterleavePolicy
	tileBytes   int64
	served      uint64
	stallEvents uint64
}

// InterleavePolicy selects how addresses map to DIMMs behind a controller.
type InterleavePolicy int

const (
	// InterleaveCacheline stripes consecutive cache lines across DIMMs.
	InterleaveCacheline InterleavePolicy = iota
	// InterleaveTile keeps tiles of tileBytes contiguous on one DIMM.
	InterleaveTile
)

func (p InterleavePolicy) String() string {
	switch p {
	case InterleaveCacheline:
		return "cacheline"
	case InterleaveTile:
		return "tile"
	default:
		return fmt.Sprintf("InterleavePolicy(%d)", int(p))
	}
}

// NewController builds a controller over the given DIMMs.
func NewController(eng *sim.Engine, name string, dimms []*DIMM, readQ, writeQ int) *Controller {
	if len(dimms) == 0 {
		panic("mem: controller needs at least one DIMM")
	}
	if readQ <= 0 || writeQ <= 0 {
		panic("mem: queue depths must be positive")
	}
	return &Controller{
		eng:         eng,
		name:        name,
		dimms:       dimms,
		readQDepth:  readQ,
		writeQDepth: writeQ,
		interleave:  InterleaveCacheline,
		tileBytes:   1 << 20,
	}
}

// SetInterleave reprograms the address mapping — the memory-space
// reorganisation GAM performs when near-memory kernels launch (§III-B).
// tileBytes is used only by InterleaveTile.
func (c *Controller) SetInterleave(p InterleavePolicy, tileBytes int64) {
	c.interleave = p
	if tileBytes > 0 {
		c.tileBytes = tileBytes
	}
}

// Interleave reports the current policy.
func (c *Controller) Interleave() InterleavePolicy { return c.interleave }

// dimmFor maps an address to its DIMM under the current policy.
func (c *Controller) dimmFor(addr int64) *DIMM {
	n := int64(len(c.dimms))
	switch c.interleave {
	case InterleaveTile:
		return c.dimms[(addr/c.tileBytes)%n]
	default:
		line := addr / c.dimms[0].geom.LineSize
		return c.dimms[line%n]
	}
}

// Submit enqueues a request. It reports false (and drops the request) when
// the corresponding queue is full — callers model back-pressure by retrying
// after a delay. Done fires at the request's completion time.
func (c *Controller) Submit(r *Request) bool {
	if r == nil {
		panic("mem: nil request")
	}
	q := &c.readQ
	depth := c.readQDepth
	if r.Write {
		q = &c.writeQ
		depth = c.writeQDepth
	}
	if len(*q) >= depth {
		c.stallEvents++
		return false
	}
	r.issued = c.eng.Now()
	*q = append(*q, r)
	if !c.busy {
		c.busy = true
		c.eng.Schedule(0, c.arbitrate)
	}
	return true
}

// arbitrate issues one request per invocation using FR-FCFS and
// re-schedules itself while work remains. Reads have priority over writes
// unless the write queue is above half occupancy (write drain), a common
// controller heuristic.
func (c *Controller) arbitrate() {
	r := c.pick()
	if r == nil {
		c.busy = false
		return
	}
	d := c.dimmFor(r.Addr)
	done := d.Access(r.Addr, r.Write)
	c.served++
	if r.Done != nil {
		c.eng.At(done, func() { r.Done(done) })
	}
	// Issue the next request once this one's command slot is consumed.
	// Approximating the command bus as one issue per burst slot keeps
	// arbitration events bounded by request count.
	next := c.eng.Now() + d.timing.BurstTime()
	if done < next {
		next = done
	}
	c.eng.At(next, c.arbitrate)
}

// pick selects the next request: row-hit first (FR), then oldest (FCFS).
func (c *Controller) pick() *Request {
	drainWrites := len(c.writeQ) > c.writeQDepth/2 || len(c.readQ) == 0
	primary, secondary := &c.readQ, &c.writeQ
	if drainWrites && len(c.writeQ) > 0 {
		primary, secondary = &c.writeQ, &c.readQ
	}
	for _, q := range []*[]*Request{primary, secondary} {
		if len(*q) == 0 {
			continue
		}
		// First ready: earliest queued request whose row is open AND whose
		// bank is available no later than the oldest request's bank — a
		// row hit on a busy bank must not jump a ready oldest request.
		oldestReady := c.dimmFor((*q)[0].Addr).bankReady((*q)[0].Addr)
		for i, r := range *q {
			d := c.dimmFor(r.Addr)
			bi, row := d.decode(r.Addr)
			if d.banks[bi].openRow == row && d.banks[bi].readyAt <= oldestReady {
				*q = append((*q)[:i], (*q)[i+1:]...)
				return r
			}
		}
		// Fall back to the oldest.
		r := (*q)[0]
		*q = (*q)[1:]
		return r
	}
	return nil
}

// QueueOccupancy reports current read/write queue lengths.
func (c *Controller) QueueOccupancy() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// Served reports completed requests.
func (c *Controller) Served() uint64 { return c.served }

// StallEvents reports how many submissions were rejected on full queues.
func (c *Controller) StallEvents() uint64 { return c.stallEvents }

// DIMMs exposes the controller's DIMMs (read-only use).
func (c *Controller) DIMMs() []*DIMM { return c.dimms }
