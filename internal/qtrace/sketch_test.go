package qtrace

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// exactQuantile is the reference the sketch is tested against: the
// nearest-rank quantile over a sorted copy (the same convention as
// sim.Histogram: idx = int(q*n)-1 clamped to [0, n-1]).
func exactQuantile(samples []sim.Time, q float64) sim.Time {
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestSketchQuantileErrorBound is the property test behind the documented
// guarantee: across random workloads spanning the trackable range, every
// queried quantile is within relative error Alpha of the exact
// nearest-rank quantile.
func TestSketchQuantileErrorBound(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for _, alpha := range []float64{0.01, 0.005} {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(5000)
			s := NewSketch(alpha)
			samples := make([]sim.Time, n)
			for i := range samples {
				// Log-uniform over [10 ns, 100 s]: exercises buckets across
				// seven orders of magnitude, like a saturating load sweep.
				exp := rng.Float64() * 7
				v := sim.Time(10e-9 * math.Pow(10, exp) * float64(sim.Second))
				samples[i] = v
				s.Add(v)
			}
			for _, q := range quantiles {
				got := s.Quantile(q)
				want := exactQuantile(samples, q)
				// The documented bound: α relative error plus the ±1 ps
				// quantization of the picosecond time grid.
				relErr := math.Abs(float64(got)-float64(want)) / float64(want)
				if relErr > alpha+1/float64(want) {
					t.Fatalf("alpha=%v trial=%d n=%d q=%v: got %v want %v (rel err %.4f > %.4f)",
						alpha, trial, n, q, got, want, relErr, alpha)
				}
			}
		}
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch(0)
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty sketch not all-zero: count=%d p50=%v mean=%v", s.Count(), s.Quantile(0.5), s.Mean())
	}
}

func TestSketchSingleSample(t *testing.T) {
	s := NewSketch(0)
	v := 3 * sim.Millisecond
	s.Add(v)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if relErr := math.Abs(float64(got)-float64(v)) / float64(v); relErr > s.Alpha() {
			t.Fatalf("q=%v: got %v want %v within %v", q, got, v, s.Alpha())
		}
	}
	if s.Min() != v || s.Max() != v || s.Mean() != v || s.Sum() != v {
		t.Fatalf("exact stats wrong: min=%v max=%v mean=%v sum=%v", s.Min(), s.Max(), s.Mean(), s.Sum())
	}
}

func TestSketchAllEqual(t *testing.T) {
	s := NewSketch(0)
	v := 250 * sim.Microsecond
	for i := 0; i < 1000; i++ {
		s.Add(v)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		got := s.Quantile(q)
		if relErr := math.Abs(float64(got)-float64(v)) / float64(v); relErr > s.Alpha() {
			t.Fatalf("q=%v: got %v want %v within %v", q, got, v, s.Alpha())
		}
	}
}

// TestSketchOverflow: samples beyond the trackable maximum land in the
// overflow bucket; quantiles that reach it report the trackable maximum
// (a lower bound), and the exact Max is preserved.
func TestSketchOverflow(t *testing.T) {
	s := NewSketch(0)
	huge := 50000 * sim.Second
	for i := 0; i < 10; i++ {
		s.Add(sim.Millisecond)
		s.Add(huge)
	}
	if s.OverflowCount() != 10 {
		t.Fatalf("overflow count = %d, want 10", s.OverflowCount())
	}
	if got := s.Quantile(1); got != sketchMax {
		t.Fatalf("p100 = %v, want the trackable max %v", got, sketchMax)
	}
	if got := s.Quantile(0.25); got >= sketchMax {
		t.Fatalf("p25 = %v landed in overflow; should be near 1 ms", got)
	}
	if s.Max() != huge {
		t.Fatalf("exact max lost: %v", s.Max())
	}
}

// TestSketchZeroAndNegative: sub-nanosecond and negative samples collapse
// into the zero bucket without panicking.
func TestSketchZeroAndNegative(t *testing.T) {
	s := NewSketch(0)
	s.Add(0)
	s.Add(-5)
	s.Add(sim.Nanosecond / 2)
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("p50 of zero-bucket samples = %v, want 0", got)
	}
}

// TestSketchAddNoAllocs gates the hot path: Add must not allocate.
func TestSketchAddNoAllocs(t *testing.T) {
	s := NewSketch(0)
	v := sim.Millisecond
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(v)
		v += sim.Microsecond
	})
	if allocs > 0 {
		t.Fatalf("Sketch.Add allocates %.1f/op, want 0", allocs)
	}
}
