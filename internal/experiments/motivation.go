package experiments

import (
	"fmt"

	"repro/internal/cbir"
	"repro/internal/report"
	"repro/internal/workload"
)

// MotivationRow is one point of the recall-vs-compression comparison.
type MotivationRow struct {
	Name             string
	CompressionRatio float64 // 1.0 = full-precision vectors
	BytesVisited     int64   // per query, rerank stage
	Recall           float64
}

// MotivationResult backs the paper's §IV-A argument: compression methods
// (binary codes, product quantisation) cut the data visited by orders of
// magnitude but "significantly penalize the recall accuracy" — which is
// why ReACH keeps full-precision vectors on storage and accelerates the
// exact rerank instead.
type MotivationResult struct {
	Rows []MotivationRow
}

// Motivation runs the functional comparison on a scaled dataset: the exact
// IVF pipeline versus IVF-PQ at two code rates, all at matched probe and
// candidate counts. The four index builds are independent (the dataset and
// queries are only read), so they run in parallel; Rows keeps the fixed
// order exact, PQ 8B, PQ 4B, binary.
func Motivation(opts ...Option) (*MotivationResult, error) {
	ds := workload.Synthetic(workload.SyntheticParams{
		N: 8192, D: 32, Clusters: 32, Spread: 0.12, Seed: 2020,
	})
	queries := ds.Queries(16, 0.03, 909)
	params := cbir.SearchParams{Probes: 10, Candidates: 2560, K: 10}
	vecBytes := int64(ds.D()) * 4

	pqRow := func(name string, p cbir.PQParams) (MotivationRow, error) {
		ix, err := cbir.BuildPQIndex(ds.Vectors, 32, 20, 11, p)
		if err != nil {
			return MotivationRow{}, err
		}
		recall, err := ix.RecallAtK(queries, params)
		if err != nil {
			return MotivationRow{}, err
		}
		return MotivationRow{
			Name:             name,
			CompressionRatio: ix.PQ().CompressionRatio(),
			BytesVisited:     int64(params.Candidates) * ix.PQ().CodeBytes(),
			Recall:           recall,
		}, nil
	}
	builders := []motivationBuilder{
		{"motivation exact", func() (MotivationRow, error) {
			ix, err := cbir.BuildIndex(ds.Vectors, 32, 20, 11)
			if err != nil {
				return MotivationRow{}, err
			}
			recall, err := ix.RecallAtK(queries, params)
			if err != nil {
				return MotivationRow{}, err
			}
			return MotivationRow{
				Name:             "IVF + exact rerank (ReACH design point)",
				CompressionRatio: 1,
				BytesVisited:     int64(params.Candidates) * vecBytes,
				Recall:           recall,
			}, nil
		}},
		{"motivation pq8", func() (MotivationRow, error) {
			return pqRow("IVF-PQ, 8B codes", cbir.PQParams{Subspaces: 8, CentroidsPerSub: 256, KMeansIters: 12, Seed: 12})
		}},
		{"motivation pq4", func() (MotivationRow, error) {
			return pqRow("IVF-PQ, 4B codes", cbir.PQParams{Subspaces: 4, CentroidsPerSub: 256, KMeansIters: 12, Seed: 13})
		}},
		{"motivation binary", func() (MotivationRow, error) {
			// Binary codes (64-bit SimHash): the most aggressive compression.
			ix, err := cbir.BuildBinaryIndex(ds.Vectors, 32, 20, 11, 64)
			if err != nil {
				return MotivationRow{}, err
			}
			recall, err := ix.RecallAtK(queries, params)
			if err != nil {
				return MotivationRow{}, err
			}
			return MotivationRow{
				Name:             "IVF + binary codes (64-bit SimHash)",
				CompressionRatio: ix.Encoder().CompressionRatio(),
				BytesVisited:     int64(params.Candidates) * ix.Encoder().CodeBytes(),
				Recall:           recall,
			}, nil
		}},
	}
	rows, err := mapRuns(buildOptions(opts), builders,
		func(i int) string { return builders[i].name },
		func(b motivationBuilder) (MotivationRow, error) { return b.build() })
	if err != nil {
		return nil, err
	}
	return &MotivationResult{Rows: rows}, nil
}

// motivationBuilder is one independently-buildable row of the comparison.
type motivationBuilder struct {
	name  string
	build func() (MotivationRow, error)
}

// ExactRecall returns the full-precision row's recall.
func (r *MotivationResult) ExactRecall() float64 { return r.Rows[0].Recall }

// Table renders the comparison.
func (r *MotivationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Motivation (§IV-A) — compression trades recall for data visited",
		Columns: []string{"Method", "Compression", "Bytes visited/query", "Recall@10"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			row.Name,
			fmt.Sprintf("%.0fx", row.CompressionRatio),
			fmt.Sprintf("%d", row.BytesVisited),
			report.F(row.Recall, 3),
		)
	}
	t.AddNote("ReACH's answer: keep full-precision vectors sedentary on storage and move the exact rerank to them")
	return t
}
