// Package accel models the three ReACH compute levels — the on-chip
// accelerator (paper §II-A), the AIM-based near-memory accelerators
// (§II-B) and the near-storage accelerators (§II-C) — each wiring an FPGA
// fabric to its level-specific data path, and the Platform that owns the
// shared resources they contend for (host memory channels, the AIMbus, the
// host PCIe link, the SSD array, the on-chip network).
package accel

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Level identifies a ReACH compute level (plus the host CPU endpoint), as
// in the public API's Listing 1.
type Level int

const (
	// OnChip is the cache-coherent on-chip accelerator.
	OnChip Level = iota
	// NearMemory is an AIM module attached to a DRAM DIMM.
	NearMemory
	// NearStorage is an FPGA attached to an NVMe SSD.
	NearStorage
	// CPU is the host endpoint (source/sink of streams, not an
	// accelerator).
	CPU
)

func (l Level) String() string {
	switch l {
	case OnChip:
		return "OnChip"
	case NearMemory:
		return "NearMem"
	case NearStorage:
		return "NearStor"
	case CPU:
		return "CPU"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Platform owns the simulated hardware shared by all accelerator
// instances. Construct one per experiment.
type Platform struct {
	Eng   *sim.Engine
	Cfg   config.SystemConfig
	Meter *energy.Meter

	// NoC is the on-chip crossbar (CPU, LLC, GAM, on-chip accelerators).
	NoC *noc.Crossbar
	// LLC is the shared cache model (hit/miss bookkeeping for the on-chip
	// paths and GAM's forced writebacks).
	LLC *cache.Cache
	// HostMem is the aggregate host-DRAM bandwidth (the channels backing
	// the CPU/on-chip DIMMs, cacheline-interleaved).
	HostMem *mem.Port
	// NearDIMMs holds one dedicated port per near-memory DIMM (Table II:
	// 18 GB/s each).
	NearDIMMs []*mem.Port
	// AIMBus is the shared inter-DIMM accelerator bus, registered as
	// "mem.aimbus".
	AIMBus sim.Connection
	// Storage is the SSD array behind the shared host PCIe link.
	Storage *storage.Array
	// DevBuffers holds the near-storage accelerators' private DRAM buffer
	// ports, one per SSD.
	DevBuffers []*mem.Port

	nextID map[Level]int
}

// NewPlatform builds the hardware described by cfg, charging energy to
// meter.
func NewPlatform(eng *sim.Engine, cfg config.SystemConfig, meter *energy.Meter) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{
		Eng:    eng,
		Cfg:    cfg,
		Meter:  meter,
		nextID: make(map[Level]int),
	}

	p.NoC = noc.New(eng, "noc", 20*sim.Nanosecond)
	p.NoC.MustAddPort("cpu", cfg.OnChip.NoCGBps*config.GBps)
	p.NoC.MustAddPort("llc", cfg.OnChip.NoCGBps*config.GBps)
	p.NoC.MustAddPort("gam", cfg.OnChip.NoCGBps*config.GBps)

	llc, err := cache.New("llc", cfg.CPU.SharedL2, cfg.CPU.L2Assoc, int64(cfg.CPU.L2LineBytes))
	if err != nil {
		return nil, err
	}
	p.LLC = llc

	// Host DRAM: the host-side DIMMs sit behind the memory controllers'
	// channels; pairs of DIMMs share a channel, so aggregate bandwidth is
	// channels × per-channel rate.
	hostChannels := (cfg.Memory.HostDIMMs + 1) / 2
	hostBW := float64(hostChannels) * cfg.Memory.ChannelGBps * config.GBps
	p.HostMem = mem.NewPort(eng, "mem.host", hostBW, 60*sim.Nanosecond,
		cfg.Memory.StreamEfficieny, cfg.Memory.RandomEfficieny)

	for i := 0; i < cfg.Memory.NearMemDIMMs; i++ {
		p.NearDIMMs = append(p.NearDIMMs, mem.NewPort(eng,
			fmt.Sprintf("mem.aimdimm%d", i),
			cfg.Memory.NearMemGBps*config.GBps, 45*sim.Nanosecond,
			0.95, cfg.Memory.RandomEfficieny))
	}
	p.AIMBus = sim.NewLink(eng, "mem.aimbus", cfg.Memory.AIMBusGBps*config.GBps, 80*sim.Nanosecond)

	ssdCfg := storage.SSDConfig{
		InternalBytesPerSec: cfg.Storage.DeviceGBps * config.GBps,
		FlashChannels:       cfg.Storage.FlashChannels,
		PageBytes:           cfg.Storage.PageBytes,
		PageReadLatency:     sim.FromSeconds(cfg.Storage.ReadLatencyUS * 1e-6),
		RandomIOPS:          cfg.Storage.RandomIOPS,
		GatherGrainBytes:    cfg.Storage.GatherGrainBytes,
		PassThroughLatency:  2 * sim.Microsecond,
	}
	p.Storage = storage.NewArray(eng, cfg.Storage.SSDs, ssdCfg,
		cfg.Storage.HostPCIeRawGBps*config.GBps,
		cfg.Storage.HostPCIeGBps/cfg.Storage.HostPCIeRawGBps,
		5*sim.Microsecond)
	p.Storage.GatherEff = cfg.Storage.HostGatherEff

	for i := 0; i < cfg.Storage.SSDs; i++ {
		// The private device DRAM buffer: a single DDR4 channel's worth.
		p.DevBuffers = append(p.DevBuffers, mem.NewPort(eng,
			fmt.Sprintf("mem.nsbuf%d", i),
			cfg.Memory.ChannelGBps*config.GBps, 60*sim.Nanosecond,
			cfg.Memory.StreamEfficieny, cfg.Memory.RandomEfficieny))
	}
	return p, nil
}

// id produces sequential instance names per level.
func (p *Platform) id(l Level) string {
	n := p.nextID[l]
	p.nextID[l] = n + 1
	switch l {
	case OnChip:
		return fmt.Sprintf("onchip%d", n)
	case NearMemory:
		return fmt.Sprintf("nm%d", n)
	default:
		return fmt.Sprintf("ns%d", n)
	}
}
