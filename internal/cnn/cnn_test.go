package cnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernels"
)

func TestVGG16Shape(t *testing.T) {
	s := VGG16()
	convs, pools, fcs := 0, 0, 0
	for _, l := range s.Layers {
		switch l.Kind {
		case Conv:
			convs++
		case Pool:
			pools++
		case FC:
			fcs++
		}
	}
	if convs != 13 || pools != 5 || fcs != 3 {
		t.Errorf("VGG16 layers = %d conv, %d pool, %d fc; want 13/5/3", convs, pools, fcs)
	}
}

func TestVGG16MatchesPublishedTotals(t *testing.T) {
	s := VGG16()
	// ~138 M parameters.
	params := s.TotalParams()
	if params < 135_000_000 || params > 141_000_000 {
		t.Errorf("VGG16 params = %d, want ~138M", params)
	}
	// 552 MB float32 (Table I; decimal megabytes).
	bytes := s.ParamBytes()
	if bytes < 545e6 || bytes > 560e6 {
		t.Errorf("VGG16 param bytes = %d (%.1f MB), Table I says 552 MB", bytes, float64(bytes)/1e6)
	}
	// ~15.5 G multiply-accumulates per image (the commonly cited VGG16
	// compute cost).
	macs := s.TotalMACs()
	if macs < 15.2e9 || macs > 15.8e9 {
		t.Errorf("VGG16 MACs = %v, want ~15.5e9", macs)
	}
	// Compressed: ~11.3 MB (Table I).
	cb := s.CompressedParamBytes()
	if cb < 11.0e6 || cb > 11.6e6 {
		t.Errorf("compressed params = %d (%.1f MB), Table I says 11.3 MB", cb, float64(cb)/1e6)
	}
}

func TestVGG16LayerAccounting(t *testing.T) {
	s := VGG16()
	l := s.Layers[0] // conv1_1: 224×224, 3→64, 3×3
	if got := l.MACs(); got != 224*224*3*64*9 {
		t.Errorf("conv1_1 MACs = %v", got)
	}
	if got := l.Params(); got != 3*64*9+64 {
		t.Errorf("conv1_1 params = %d", got)
	}
	if got := l.OutputElems(); got != 64*224*224 {
		t.Errorf("conv1_1 output elems = %d", got)
	}
	if s.ActivationBytes() <= 0 {
		t.Error("activation bytes not positive")
	}
	// fc6 dominates parameters: 25088×4096.
	var fc6 LayerSpec
	for _, l := range s.Layers {
		if l.Name == "fc6" {
			fc6 = l
		}
	}
	if fc6.Params() != int64(25088)*4096+4096 {
		t.Errorf("fc6 params = %d", fc6.Params())
	}
}

func TestLayerKindStrings(t *testing.T) {
	if Conv.String() != "Conv-ReLU" || Pool.String() != "Pool" || FC.String() != "FCN" {
		t.Error("layer kind strings wrong")
	}
	if LayerKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestMiniVGGForwardShape(t *testing.T) {
	spec := MiniVGG(16, 24)
	net, err := NewNetwork(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, h, w := net.InputShape()
	if c != 3 || h != 16 || w != 16 {
		t.Fatalf("input shape %d/%d/%d", c, h, w)
	}
	img := kernels.NewTensor3(3, 16, 16)
	rng := rand.New(rand.NewSource(1))
	for i := range img.Data {
		img.Data[i] = rng.Float32()
	}
	out, err := net.Forward(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 24 {
		t.Errorf("output dim = %d, want 24", len(out))
	}
}

func TestForwardDeterministic(t *testing.T) {
	spec := MiniVGG(16, 8)
	n1, _ := NewNetwork(spec, 7)
	n2, _ := NewNetwork(spec, 7)
	img := kernels.NewTensor3(3, 16, 16)
	for i := range img.Data {
		img.Data[i] = float32(i%13) / 13
	}
	a, _ := n1.Forward(img)
	b, _ := n2.Forward(img)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed networks diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	n3, _ := NewNetwork(spec, 8)
	c, _ := n3.Forward(img)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical outputs")
	}
}

func TestForwardRejectsWrongShape(t *testing.T) {
	net, _ := NewNetwork(MiniVGG(16, 8), 1)
	if _, err := net.Forward(kernels.NewTensor3(3, 8, 8)); err == nil {
		t.Error("wrong input shape accepted")
	}
}

func TestNewNetworkRejectsBadSpec(t *testing.T) {
	if _, err := NewNetwork(&Spec{Name: "empty"}, 1); err == nil {
		t.Error("empty spec accepted")
	}
	bad := &Spec{Name: "fc-first", Layers: []LayerSpec{{Kind: FC, FCIn: 4, FCOut: 2}}}
	if _, err := NewNetwork(bad, 1); err == nil {
		t.Error("spec not starting with Conv accepted")
	}
}

func TestFeatureExtractor(t *testing.T) {
	net, _ := NewNetwork(MiniVGG(16, 32), 11)
	fe := NewFeatureExtractor(net, 12, 13)
	if fe.Dim() != 12 {
		t.Fatalf("dim = %d", fe.Dim())
	}
	img := kernels.NewTensor3(3, 16, 16)
	for i := range img.Data {
		img.Data[i] = float32(i%7) / 7
	}
	feat, err := fe.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(feat) != 12 {
		t.Fatalf("feature dim = %d", len(feat))
	}
	if n := kernels.SquaredNorm(feat); math.Abs(float64(n)-1) > 1e-5 {
		t.Errorf("feature norm² = %v, want 1 (L2-normalised)", n)
	}
	// Distinct images produce distinct features.
	img2 := kernels.NewTensor3(3, 16, 16)
	for i := range img2.Data {
		img2.Data[i] = float32((i+3)%11) / 11
	}
	feat2, _ := fe.Extract(img2)
	if kernels.SquaredL2(feat, feat2) == 0 {
		t.Error("distinct images mapped to identical features")
	}
}

func TestMiniVGGPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MiniVGG(7) accepted")
		}
	}()
	MiniVGG(7, 8)
}
