package sim

import "testing"

// assertDrained is the shared benchmark postcondition: the calendar must be
// empty (no leaked events) and the engine must have dispatched exactly the
// expected number of events — an Executed()-based runaway guard that turns
// an accidental self-rescheduling loop into a benchmark failure instead of
// a silently inflated ns/op.
func assertDrained(b *testing.B, e *Engine, wantExecuted uint64) {
	b.Helper()
	if p := e.Pending(); p != 0 {
		b.Fatalf("calendar not drained: %d events pending", p)
	}
	if got := e.Executed(); got != wantExecuted {
		b.Fatalf("executed %d events, want %d (runaway or dropped dispatch)", got, wantExecuted)
	}
}

// BenchmarkEngineEvents measures raw event dispatch throughput — the
// simulator's fundamental cost unit — on the closure (func()) API. The
// single fire closure is created once, so this isolates calendar cost.
func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	var fire func()
	count := 0
	fire = func() {
		count++
		if count < b.N {
			e.Schedule(Nanosecond, fire)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, fire)
	e.Run()
	b.StopTimer()
	assertDrained(b, e, uint64(b.N))
}

// chainHandler re-schedules itself until n events have fired — the
// closure-free analogue of BenchmarkEngineEvents' fire loop.
type chainHandler struct {
	count, n int
}

func (h *chainHandler) Fire(e *Engine, _ uint64) {
	h.count++
	if h.count < h.n {
		e.ScheduleCall(Nanosecond, h, 0)
	}
}

// BenchmarkEngineScheduleCall measures the allocation-free fast path:
// schedule + dispatch through a preallocated Handler.
func BenchmarkEngineScheduleCall(b *testing.B) {
	e := NewEngine()
	h := &chainHandler{n: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleCall(0, h, 0)
	e.Run()
	b.StopTimer()
	assertDrained(b, e, uint64(b.N))
}

// BenchmarkEngineFanOut measures heap behaviour with many pending events.
func BenchmarkEngineFanOut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97)*Nanosecond, func() {})
		}
		e.Run()
		if i == 0 {
			assertDrained(b, e, 1000)
		}
	}
}

// BenchmarkEngineCancelHeavy exercises the slot free list with the
// timeout-guard pattern: every unit of work schedules a guard event that is
// cancelled when the work completes first, so half of all scheduled events
// are removed mid-heap and their slots recycled.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := NewEngine()
	h := &countHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		guard := e.ScheduleCall(Microsecond, h, 1)
		e.ScheduleCall(Nanosecond, h, 0)
		e.RunUntil(e.Now() + Nanosecond)
		guard.Cancel()
	}
	b.StopTimer()
	assertDrained(b, e, uint64(b.N)) // every guard cancelled, every work event fired
}

// BenchmarkLinkTransfers measures the contended-link fast path.
func BenchmarkLinkTransfers(b *testing.B) {
	e := NewEngine()
	l := NewLink(e, "bench", 1e9, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Transfer(4096)
	}
}

// BenchmarkTokenQueue measures the stream-buffer primitive.
func BenchmarkTokenQueue(b *testing.B) {
	e := NewEngine()
	q := NewTokenQueue(e, "bench", 8)
	sink := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(i, nil)
		q.Get(sink)
	}
}
