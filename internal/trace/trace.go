// Package trace exports simulated ReACH executions as Chrome trace-event
// JSON (the chrome://tracing / Perfetto format), one lane per accelerator
// instance plus a GAM control lane. Loading the file into a trace viewer
// shows the pipeline visually: stage overlap across batches, the polling
// gaps between device completion and GAM detection, and the inter-level
// transfer windows.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Event is one Chrome trace event (the subset of fields we emit).
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"` // "X" = complete event
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// metadata event for lane naming.
type metaEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// Timeline accumulates events from completed jobs.
type Timeline struct {
	events []Event
	lanes  map[string]int // instance name → tid
	order  []string
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{lanes: make(map[string]int)}
}

func (t *Timeline) lane(name string) int {
	if id, ok := t.lanes[name]; ok {
		return id
	}
	id := len(t.lanes) + 1
	t.lanes[name] = id
	t.order = append(t.order, name)
	return id
}

func us(ts sim.Time) float64 { return ts.Seconds() * 1e6 }

// AddJob records every node of a completed job: one "X" slice per task on
// its instance lane (dispatch → device completion) and a second short
// slice for the GAM detection gap when polling delayed it.
func (t *Timeline) AddJob(j *core.Job) error {
	if !j.Done() {
		return fmt.Errorf("trace: job %d not complete", j.ID)
	}
	for _, n := range j.Nodes {
		lane := t.lane(n.Instance)
		t.events = append(t.events, Event{
			Name:  fmt.Sprintf("%s (job %d)", n.Spec.Name, j.ID),
			Cat:   n.Spec.Stage,
			Phase: "X",
			TS:    us(n.DispatchedAt),
			Dur:   us(n.CompletedAt - n.DispatchedAt),
			PID:   1,
			TID:   lane,
			Args: map[string]any{
				"stage":  n.Spec.Stage,
				"level":  n.Level.String(),
				"bytes":  n.Spec.Bytes,
				"macs":   n.Spec.MACs,
				"polls":  n.Polls,
				"source": n.Spec.Source.String(),
			},
		})
		if gap := n.DetectedAt - n.CompletedAt; gap > 0 {
			t.events = append(t.events, Event{
				Name:  "await GAM status",
				Cat:   "gam",
				Phase: "X",
				TS:    us(n.CompletedAt),
				Dur:   us(gap),
				PID:   1,
				TID:   lane,
				Args:  map[string]any{"polls": n.Polls},
			})
		}
	}
	// Job span on the GAM lane.
	t.events = append(t.events, Event{
		Name:  fmt.Sprintf("job %d", j.ID),
		Cat:   "job",
		Phase: "X",
		TS:    us(j.SubmittedAt),
		Dur:   us(j.FinishedAt - j.SubmittedAt),
		PID:   1,
		TID:   t.lane("GAM"),
	})
	return nil
}

// Events reports how many events were recorded.
func (t *Timeline) Events() int { return len(t.events) }

// Lanes lists the lanes in first-seen order.
func (t *Timeline) Lanes() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// WriteJSON emits the trace in Chrome trace-event array format.
func (t *Timeline) WriteJSON(w io.Writer) error {
	var all []any
	// Lane-name metadata first, in deterministic order.
	names := make([]string, 0, len(t.lanes))
	for n := range t.lanes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		all = append(all, metaEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   t.lanes[n],
			Args:  map[string]any{"name": n},
		})
	}
	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	for _, e := range evs {
		all = append(all, e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(all)
}
