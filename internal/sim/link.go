package sim

import (
	"fmt"
	"math"
)

// Link is the canonical Connection: a shared, serialised bandwidth
// resource — a DDR4 channel, the AIMbus, a PCIe link, a NoC port, an SSD's
// internal flash interconnect.
//
// Transfers reserve capacity in FIFO order: a transfer issued while the
// link is busy queues behind the in-flight ones. This captures the
// first-order contention behaviour that the ReACH evaluation depends on
// (host IO saturation in the rerank stage, DRAM channel sharing in
// shortlist retrieval) without per-flit events, so multi-gigabyte streams
// simulate in microseconds of wall time.
//
// Every link registers itself in its engine's StatsRegistry and is
// instrumented at this base layer: payload bytes, busy time, accumulated
// queueing delay, and bounded wait/service-time histograms.
type Link struct {
	eng  *Engine
	name string

	bytesPerSec float64 // payload capacity
	latency     Time    // propagation/serialisation latency added per transfer

	nextFree Time // time at which the link's capacity is next available

	// accounting
	totalBytes     uint64
	busy           Time
	transfers      uint64
	queuedDelay    Time // accumulated time transfers spent waiting for capacity
	firstActivity  Time
	lastActivity   Time
	everTransfered bool
	waitHist       *Histogram
	serviceHist    *Histogram
}

// NewLink creates a link on eng with the given payload bandwidth (bytes per
// second) and fixed per-transfer latency, registered on eng's registry
// under name.
func NewLink(eng *Engine, name string, bytesPerSec float64, latency Time) *Link {
	if eng == nil {
		panic("sim: NewLink with nil engine")
	}
	if bytesPerSec <= 0 || math.IsNaN(bytesPerSec) || math.IsInf(bytesPerSec, 0) {
		panic(fmt.Sprintf("sim: link %q invalid bandwidth %v B/s", name, bytesPerSec))
	}
	if latency < 0 {
		panic(fmt.Sprintf("sim: link %q negative latency", name))
	}
	l := &Link{
		eng:         eng,
		bytesPerSec: bytesPerSec,
		latency:     latency,
		waitHist:    NewBoundedHistogram(statHistogramCap),
		serviceHist: NewBoundedHistogram(statHistogramCap),
	}
	l.name = eng.Stats().Register(name, l)
	return l
}

// Name reports the link's registered name.
func (l *Link) Name() string { return l.name }

// BytesPerSec reports the link's configured payload bandwidth.
func (l *Link) BytesPerSec() float64 { return l.bytesPerSec }

// Latency reports the link's fixed per-transfer latency.
func (l *Link) Latency() Time { return l.latency }

// duration returns the capacity occupancy time of a transfer of n bytes.
func (l *Link) duration(n int64) Time {
	if n <= 0 {
		return 0
	}
	d := float64(n) / l.bytesPerSec * float64(Second)
	if d >= float64(math.MaxInt64) {
		return MaxTime
	}
	t := Time(d + 0.5)
	if t == 0 {
		t = 1 // every nonempty transfer occupies at least one picosecond
	}
	return t
}

// reserve is the single serialisation point every transfer flavour routes
// through: it queues the occupancy behind in-flight work (FIFO), accounts
// waiting and service time, and returns the occupancy's end time (link
// latency excluded).
func (l *Link) reserve(start Time, occupancy Time, payload int64) Time {
	begin := start
	if l.nextFree > begin {
		l.queuedDelay += l.nextFree - begin
		begin = l.nextFree
	}
	end := begin + occupancy
	l.nextFree = end
	if payload > 0 {
		l.totalBytes += uint64(payload)
		l.busy += occupancy
		l.transfers++
		if !l.everTransfered {
			l.firstActivity = begin
			l.everTransfered = true
		}
		l.lastActivity = end
		l.waitHist.Add(begin - start)
		l.serviceHist.Add(occupancy)
	}
	return end
}

// Transfer reserves capacity for n bytes starting no earlier than now, and
// returns the simulated time at which the last byte arrives at the far end
// (including the link latency). The caller typically schedules its
// continuation at that time:
//
//	done := link.Transfer(bytes)
//	eng.At(done, func() { ... })
//
// Zero or negative sizes complete immediately at now+latency.
func (l *Link) Transfer(n int64) Time {
	return l.TransferAt(l.eng.Now(), n)
}

// TransferAt is Transfer with an explicit earliest start time, used when a
// producer knows data becomes available only at a future instant. start
// must not precede the current simulated time.
func (l *Link) TransferAt(start Time, n int64) Time {
	if now := l.eng.Now(); start < now {
		panic(fmt.Sprintf("sim: link %q TransferAt %v before now %v", l.name, start, now))
	}
	return l.reserve(start, l.duration(n), n) + l.latency
}

// TransferEff reserves capacity for n payload bytes moved at the given
// efficiency (0 < eff ≤ 1) of the link's peak bandwidth: the capacity
// occupancy is n/eff bytes' worth of time while accounting still records n
// payload bytes. This is how bulk models express row-miss or random-access
// inefficiency without per-line events.
func (l *Link) TransferEff(n int64, eff float64) Time {
	if eff <= 0 || eff > 1 || math.IsNaN(eff) {
		panic(fmt.Sprintf("sim: link %q invalid efficiency %v", l.name, eff))
	}
	return l.reserve(l.eng.Now(), l.duration(int64(float64(n)/eff+0.5)), n) + l.latency
}

// Occupy reserves the link's capacity for an explicit duration carrying the
// given payload byte count, queueing behind in-flight transfers. It is the
// primitive for occupancy not directly derivable from bandwidth — e.g.
// IOPS-limited random reads on an SSD.
func (l *Link) Occupy(d Time, payload int64) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: link %q negative occupancy", l.name))
	}
	return l.reserve(l.eng.Now(), d, payload) + l.latency
}

// NextFree reports when the link's capacity next becomes available.
func (l *Link) NextFree() Time { return l.nextFree }

// TotalBytes reports the total payload bytes moved over the link.
func (l *Link) TotalBytes() uint64 { return l.totalBytes }

// Transfers reports how many nonempty transfers the link carried.
func (l *Link) Transfers() uint64 { return l.transfers }

// BusyTime reports the total time the link's capacity was occupied.
func (l *Link) BusyTime() Time { return l.busy }

// QueuedDelay reports accumulated waiting time across all transfers —
// a direct measure of contention on the link.
func (l *Link) QueuedDelay() Time { return l.queuedDelay }

// Utilization reports busy time as a fraction of the link's active window
// (first transfer start to last transfer end). Returns 0 before any
// transfer.
func (l *Link) Utilization() float64 {
	if !l.everTransfered || l.lastActivity <= l.firstActivity {
		return 0
	}
	return float64(l.busy) / float64(l.lastActivity-l.firstActivity)
}

// ResourceStats implements Resource with the base-layer instrumentation.
func (l *Link) ResourceStats() ResourceStats {
	return ResourceStats{
		Kind:        KindConnection,
		Ops:         l.transfers,
		Bytes:       l.totalBytes,
		Busy:        l.busy,
		Wait:        l.queuedDelay,
		Utilization: l.Utilization(),
		WaitHist:    l.waitHist,
		ServiceHist: l.serviceHist,
	}
}

// Reset clears accounting and availability, as if the link were newly
// created at the current simulated time.
func (l *Link) Reset() {
	l.nextFree = l.eng.Now()
	l.totalBytes = 0
	l.busy = 0
	l.transfers = 0
	l.queuedDelay = 0
	l.everTransfered = false
	l.firstActivity = 0
	l.lastActivity = 0
	l.waitHist = NewBoundedHistogram(statHistogramCap)
	l.serviceHist = NewBoundedHistogram(statHistogramCap)
}
