package metrics

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// MultiSampler is the cluster-scale counterpart of Sampler: a barrier-
// driven sampler over a sim.MultiEngine. It never schedules events — a
// sampler tick in any domain calendar would change the barrier round
// structure, which is part of the deterministic output — and instead
// implements sim.BarrierObserver: the coordinator invokes it between
// rounds, when every domain is quiescent, and it records a sample
// whenever the cluster frontier has advanced at least one interval since
// the previous sample (plus a closing sample when the run drains).
//
// Each sample instant appends, with the frontier time as the shared
// axis:
//
//   - one Point per resource in the shared StatsRegistry — per-node GAM
//     queues, accelerator links and memories (names prefixed "nodeN."),
//     the cluster ingress/egress cross links and the front-end result
//     cache — exactly as the single-engine Sampler would;
//   - one synthetic per-domain series "sim.domainN" (kind "domain"),
//     the domain's own stream driven off its own clock: Busy is the
//     domain clock, Wait its lag behind the frontier, Occupancy the
//     calendar population, Stalls the inbound mailbox depth at the
//     barrier, Ops the cumulative events executed.
//
// Because barriers are worker-independent, the recorded samples are
// byte-identical at any SetWorkers width; and because appends reuse the
// chunked columns and the registry walk is cached, the steady state is
// allocation-free (TestMultiSamplerZeroAllocSteadyState).
type MultiSampler struct {
	me       *sim.MultiEngine
	interval sim.Time

	times  column // frontier instants, shared time axis for every series
	rounds column // barrier round counter at each sample
	doms   []*Series
	seriesSet

	walkFn func(name string, res sim.Resource)
}

// NewMultiSampler creates a barrier sampler over me; interval <= 0 means
// DefaultInterval. Install it with me.SetBarrierObserver (AttachMulti
// does both).
func NewMultiSampler(me *sim.MultiEngine, interval sim.Time) *MultiSampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	s := &MultiSampler{
		me:        me,
		interval:  interval,
		seriesSet: newSeriesSet(),
	}
	s.walkFn = s.record
	for i := 0; i < me.Domains(); i++ {
		se := &Series{Name: fmt.Sprintf("sim.domain%d", i), Kind: sim.KindDomain}
		s.doms = append(s.doms, se)
		s.series[se.Name] = se
		s.ordered = append(s.ordered, se)
	}
	return s
}

// Interval reports the sampling period (a lower bound on sample spacing:
// samples land on barrier instants).
func (s *MultiSampler) Interval() sim.Time { return s.interval }

// Samples reports how many sample instants were recorded.
func (s *MultiSampler) Samples() int { return s.times.len() }

// Time reports the frontier time of the i-th sample instant.
func (s *MultiSampler) Time(i int) sim.Time { return sim.Time(s.times.at(i)) }

// Round reports the barrier round counter at the i-th sample instant.
func (s *MultiSampler) Round(i int) uint64 { return uint64(s.rounds.at(i)) }

// OnBarrier implements sim.BarrierObserver: sample when the frontier has
// advanced a full interval past the previous sample, and always on the
// terminating barrier (unless the frontier has not moved since the last
// sample, so repeated Run invocations do not duplicate instants).
func (s *MultiSampler) OnBarrier(m *sim.MultiEngine, mailboxes []int, final bool) {
	now := m.Now()
	if n := s.times.len(); n > 0 {
		last := sim.Time(s.times.at(n - 1))
		if final {
			if now == last {
				return
			}
		} else if now < last+s.interval {
			return
		}
	}
	s.times.append(int64(now))
	s.rounds.append(int64(m.Rounds()))
	for i, se := range s.doms {
		d := m.Domain(i)
		se.occupancy.append(int64(d.Pending()))
		se.ops.append(int64(d.Executed()))
		se.bytes.append(0)
		se.busy.append(int64(d.Now()))
		se.wait.append(int64(now - d.Now()))
		mb := 0
		if i < len(mailboxes) {
			mb = mailboxes[i]
		}
		se.stalls.append(int64(mb))
	}
	m.Stats().Walk(s.walkFn)
	s.samples++
}

// Series returns every recorded series — registry resources plus the
// synthetic "sim.domainN" streams — sorted by name, the deterministic
// export order.
func (s *MultiSampler) Series() []*Series { return s.sorted() }

// Lookup finds one series by resource (or synthetic domain) name.
func (s *MultiSampler) Lookup(name string) (*Series, bool) {
	se, ok := s.series[name]
	return se, ok
}

// MultiRecorder bundles one cluster run's observability state: the
// barrier sampler and (when spans are enabled) one GAM span log per
// node. Each log is only ever appended to by its owning node's event
// domain, so recording stays synchronization-free; MergedSpans restores
// one deterministic order at export time.
type MultiRecorder struct {
	Sampler *MultiSampler
	// Spans has one entry per node when Options.Spans was set (nil
	// otherwise). Populated by the model layer that owns the nodes.
	Spans []*SpanLog
}

// AttachMulti creates a MultiRecorder on me and installs its sampler as
// the barrier observer. When o.Spans is set the caller wires the
// per-node logs (e.g. cluster.AttachSpans) into Spans before the run.
func AttachMulti(me *sim.MultiEngine, o Options) *MultiRecorder {
	r := &MultiRecorder{Sampler: NewMultiSampler(me, o.Interval)}
	me.SetBarrierObserver(r.Sampler)
	return r
}

// MergedSpans flattens the per-node logs into one deterministic order:
// by start time, ties broken by node index then emission order — the
// same (time, domain, seq) shape the barrier uses for cross-domain
// events.
func (r *MultiRecorder) MergedSpans() []Span { return MergeSpans(r.Spans) }

// MergeSpans merges per-producer span logs into one stable (start,
// producer, emission) order. Nil logs are skipped.
func MergeSpans(logs []*SpanLog) []Span {
	var out []Span
	for _, l := range logs {
		out = append(out, l.Spans()...)
	}
	// Stable sort on start time alone: equal starts keep concatenation
	// order, which is (producer index, emission order).
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
